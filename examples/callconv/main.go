// Callconv: show calling-convention overhead as a dead-instruction source.
// A caller saves two registers around a subroutine call and restores them
// afterwards; on the path where the caller immediately overwrites a
// restored register, that restore (and transitively its save) is
// dynamically dead. The deadness oracle attributes these instances to
// their provenance, reproducing the paper's observation that convention
// code contributes to the dead-instruction population.
//
//	go run ./examples/callconv
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	// parser is the suite's most call-heavy benchmark.
	prof, err := workload.ByName("parser")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Profile(prof, nil, core.DefaultBudget)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("benchmark %s: %d dynamic instructions, %d dead (%.1f%%)\n\n",
		prof.Name, s.Total, s.Dead, 100*s.DeadFraction())

	fmt.Println("dead instances by compiler-level cause:")
	for prov := program.Provenance(0); int(prov) < program.NumProvenances; prov++ {
		pc := s.ByProv[prov]
		if pc.Dyn == 0 {
			continue
		}
		fmt.Printf("  %-12v %8d dead of %8d instances (%.1f%% dead)\n",
			prov, pc.Dead, pc.Dyn, 100*float64(pc.Dead)/float64(pc.Dyn))
	}

	saves := s.ByProv[program.ProvCallSave]
	restores := s.ByProv[program.ProvCallRestore]
	fmt.Printf("\ncalling convention: %d of %d saves and %d of %d restores are dead\n",
		saves.Dead, saves.Dyn, restores.Dead, restores.Dyn)

	// The dead restores are partially dead: the same static restore is
	// useful whenever the caller does not overwrite the register.
	profStats := res.Analysis.StaticProfile(res.Trace)
	partial := 0
	for _, st := range profStats {
		if res.Prog.ProvenanceOf(st.PC) == program.ProvCallRestore && st.Dead < st.Dyn {
			partial++
		}
	}
	fmt.Printf("dead-producing restore statics that are PARTIALLY dead: %d\n", partial)

	dist := res.Analysis.ResolveDistances(true)
	fmt.Printf("\ndeadness outcomes resolve quickly: median %d instructions, %.1f%% within a ROB\n",
		dist.P50, 100*dist.WithinROB)
}
