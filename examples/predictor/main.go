// Predictor: train and evaluate the dead-instruction predictor on one
// benchmark, comparing three designs at the same table geometry:
//
//   - the paper's control-flow-informed predictor (path signatures built
//     from the branch predictor's lookahead);
//   - a per-PC confidence counter with no future control flow;
//   - the CFI predictor fed oracle (actual) future directions.
//
// go run ./examples/predictor [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/emu"
	"repro/internal/workload"
)

func main() {
	name := "twolf"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	prof, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog, _, err := prof.Compile(nil)
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	an, err := deadness.Analyze(tr)
	if err != nil {
		log.Fatal(err)
	}
	sum := an.Summarize(tr, prog)
	fmt.Printf("benchmark %s: %d dynamic instructions, %d dead (%.1f%%)\n\n",
		name, sum.Total, sum.Dead, 100*sum.DeadFraction())

	cfi := dip.DefaultConfig()
	counter := dip.DefaultConfig()
	counter.PathLen = 0

	rows := []struct {
		label string
		opt   dip.Options
	}{
		{"CFI (predicted future paths)", dip.Options{Config: cfi}},
		{"counter (no control flow)   ", dip.Options{Config: counter}},
		{"CFI (oracle future paths)   ", dip.Options{Config: cfi, UseActualPath: true}},
	}
	for _, row := range rows {
		r, err := dip.Evaluate(tr, an, row.opt)
		if err != nil {
			fmt.Println("evaluate:", err)
			return
		}
		fmt.Printf("%s  %.2f KB  coverage %5.1f%%  accuracy %5.1f%%  (%d false positives)\n",
			row.label, row.opt.Config.StateKB(),
			100*r.Coverage(), 100*r.Accuracy(), r.FalsePositives())
	}

	fmt.Println("\nThe counter cannot tell useful from useless instances of the same")
	fmt.Println("static instruction; the path signature separates them, and actual")
	fmt.Println("future directions bound what better branch prediction would buy.")
}
