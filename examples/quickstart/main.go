// Quickstart: assemble an r64 program, execute it, and ask the deadness
// oracle which dynamic instructions produced values nobody ever used.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
)

// The loop computes a running sum. The shifted value r3 is consumed only
// when the branch skips — which never happens until the very last
// iteration — so almost every instance of the slli is dynamically dead.
const src = `
main:
    addi r1, r0, 10      # i = 10
    addi r2, r0, 0       # sum = 0
loop:
    slli r3, r1, 3       # dead unless the loop is about to exit
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    add  r2, r2, r3      # the only consumer of r3
    out  r2
    halt
`

func main() {
	prog, err := asm.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled program:")
	fmt.Print(prog.Disassemble())

	tr, m, err := emu.Collect(prog, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %d dynamic instructions, output = %v\n", tr.Len(), m.Outputs)

	an, err := deadness.Analyze(tr)
	if err != nil {
		log.Fatal(err)
	}
	sum := an.Summarize(tr, prog)
	fmt.Printf("dead instructions: %d of %d (%.1f%%), %d first-level / %d transitive\n",
		sum.Dead, sum.Total, 100*sum.DeadFraction(), sum.FirstLevel, sum.Transitive)

	fmt.Println("\nper-static-instruction deadness:")
	for _, st := range an.StaticProfile(tr) {
		fmt.Printf("  pc %2d  %-24v %3d executions, %3d dead (%.0f%%)\n",
			st.PC, prog.Insts[st.PC], st.Dyn, st.Dead, 100*st.Ratio())
	}
}
