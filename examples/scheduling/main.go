// Scheduling: demonstrate the paper's claim that compiler instruction
// scheduling *creates* partially dead instructions. The same IR is
// compiled twice — with and without speculative hoisting — and the dead
// fractions and per-provenance attribution are compared.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	prof, err := workload.ByName("crafty")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmark: crafty (branchy, diamond-heavy synthetic)")
	withHoist := prof.Opts
	noHoist := prof.Opts
	noHoist.MaxHoist = 0

	for _, cfg := range []struct {
		name string
		opts compiler.Options
	}{
		{"scheduler ON ", withHoist},
		{"scheduler OFF", noHoist},
	} {
		prog, passes, err := prof.Compile(&cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		tr, _, err := emu.Collect(prog, 500_000)
		if err != nil {
			log.Fatal(err)
		}
		an, err := deadness.Analyze(tr)
		if err != nil {
			log.Fatal(err)
		}
		s := an.Summarize(tr, prog)
		fmt.Printf("\n%s  (%d instructions hoisted above branches)\n", cfg.name, passes.Hoisted)
		fmt.Printf("  dynamic instructions: %d\n", s.Total)
		fmt.Printf("  dead:                 %d (%.1f%%)\n", s.Dead, 100*s.DeadFraction())
		fmt.Printf("  dead by cause:\n")
		for prov := program.Provenance(0); int(prov) < program.NumProvenances; prov++ {
			pc := s.ByProv[prov]
			if pc.Dyn == 0 {
				continue
			}
			fmt.Printf("    %-8v %8d dead of %8d instances (%.1f%%)\n",
				prov, pc.Dead, pc.Dyn, 100*float64(pc.Dead)/float64(pc.Dyn))
		}
	}

	fmt.Println("\nThe hoisted instructions execute on both branch paths but are")
	fmt.Println("useful on one — exactly the partially dead instructions the paper")
	fmt.Println("attributes to compile-time code motion.")
}
