// Contention: run the full out-of-order machine over one benchmark with
// dead-instruction elimination off and on, on both the amply provisioned
// baseline and the resource-contended configuration, and report the
// utilization and performance differences of experiments E8/E9.
//
//	go run ./examples/contention [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func main() {
	name := "crafty"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w := core.NewWorkspace(0)

	machines := []struct {
		label string
		cfg   pipeline.Config
	}{
		{"baseline (ample resources)", pipeline.BaselineConfig()},
		{"contended (small PRF/IQ/ports)", pipeline.ContendedConfig()},
	}
	for _, mc := range machines {
		base, err := w.RunMachine(name, mc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg := mc.cfg
		cfg.Elim = true
		elim, err := w.RunMachine(name, cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s — %s\n", name, mc.label)
		fmt.Printf("  %-28s %12s %12s %9s\n", "", "elim off", "elim on", "delta")
		row := func(label string, a, b int64) {
			fmt.Printf("  %-28s %12d %12d %8.1f%%\n", label, a, b,
				100*(float64(b)/float64(a)-1))
		}
		row("cycles", base.Cycles, elim.Cycles)
		row("physical reg allocations", base.PhysAllocs, elim.PhysAllocs)
		row("register file reads", base.RFReads, elim.RFReads)
		row("register file writes", base.RFWrites, elim.RFWrites)
		row("data cache accesses", int64(base.Cache.Accesses), int64(elim.Cache.Accesses))
		row("free-list stall cycles", base.StallFreeList, elim.StallFreeList)
		fmt.Printf("  IPC %.3f -> %.3f (speedup %+.1f%%), %d eliminated, %d recoveries\n\n",
			base.IPC(), elim.IPC(), 100*(elim.IPC()/base.IPC()-1),
			elim.Eliminated, elim.DeadMispredicts)
	}

	fmt.Println("On the ample machine elimination mostly saves utilization; once")
	fmt.Println("resources contend, freeing them earlier becomes time.")
}
