// System-level property tests: random IR programs are pushed through the
// whole stack (compile → emulate → link → oracle → pipeline) and checked
// against invariants that must hold for any program.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/compiler"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// buildRandom compiles a random function and produces its analyzed trace.
func buildRandom(t *testing.T, seed int64) (*trace.Trace, *deadness.Analysis) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := compiler.RandomFunc(rng, 3+rng.Intn(8))
	p, _, err := compiler.Compile(f, compiler.Options{MaxHoist: 2, MaxLICM: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, a
}

func TestOracleInvariantsOnRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		tr, a := buildRandom(t, int64(seed))
		recs := tr.Records()
		for seq := range recs {
			r := &recs[seq]
			kind := a.Kind[seq]

			// Only candidates may be dead.
			if !a.Candidate[seq] && kind.Dead() {
				t.Fatalf("seed %d seq %d: non-candidate %v classified %v",
					seed, seq, r.Op, kind)
			}
			// Control flow and outputs are never candidates.
			if (r.Op.IsControl() || r.Op == isa.OUT || r.Op == isa.HALT) && a.Candidate[seq] {
				t.Fatalf("seed %d seq %d: %v is a candidate", seed, seq, r.Op)
			}
			// First-level dead values were never read; transitive ones were.
			if kind == deadness.FirstLevel && a.EverRead[seq] {
				t.Fatalf("seed %d seq %d: first-level dead but read", seed, seq)
			}
			if kind == deadness.Transitive && !a.EverRead[seq] {
				t.Fatalf("seed %d seq %d: transitive dead but never read", seed, seq)
			}
			// Resolve points are causal.
			if res := a.Resolve[seq]; int(res) <= seq {
				t.Fatalf("seed %d seq %d: resolve %d not after the instruction", seed, seq, res)
			}

			// A producer read by a live instruction must be live
			// (usefulness is transitively closed).
			if kind.Dead() {
				continue
			}
			check := func(p int32) {
				if p == trace.NoProducer {
					return
				}
				if a.Candidate[p] && a.Kind[p].Dead() {
					t.Fatalf("seed %d: live seq %d reads dead producer %d", seed, seq, p)
				}
			}
			if !a.Candidate[seq] || !a.Kind[seq].Dead() {
				// seq is live (or not a candidate): its producers feed a
				// useful root eventually only if seq itself is useful.
				// Direct check: live instructions never read dead values.
				check(r.Src1)
				check(r.Src2)
				for _, p := range r.MemProducers() {
					check(p)
				}
			}
		}
	}
}

func TestPipelineInvariantsOnRandomPrograms(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	configs := []func() pipeline.Config{
		pipeline.BaselineConfig,
		pipeline.ContendedConfig,
		func() pipeline.Config {
			c := pipeline.ContendedConfig()
			c.Elim = true
			return c
		},
		func() pipeline.Config {
			c := pipeline.BaselineConfig()
			c.Elim = true
			c.OracleElim = true
			return c
		},
		func() pipeline.Config {
			c := pipeline.BaselineConfig()
			c.PhysRegs = 36
			c.IQSize = 4
			c.LSQSize = 4
			c.ROBSize = 16
			return c
		},
	}
	for seed := 0; seed < seeds; seed++ {
		tr, a := buildRandom(t, int64(100+seed))
		for ci, mk := range configs {
			cfg := mk()
			st, err := pipeline.Run(tr, a, cfg)
			if err != nil {
				t.Fatalf("seed %d config %d: %v", seed, ci, err)
			}
			if st.Committed != int64(tr.Len()) {
				t.Fatalf("seed %d config %d: committed %d of %d",
					seed, ci, st.Committed, tr.Len())
			}
			if st.IPC() <= 0 || st.IPC() > float64(cfg.CommitWidth) {
				t.Fatalf("seed %d config %d: IPC %v out of range", seed, ci, st.IPC())
			}
			if st.PhysFrees != st.PhysAllocs {
				t.Fatalf("seed %d config %d: allocs %d != frees %d",
					seed, ci, st.PhysAllocs, st.PhysFrees)
			}
			if !cfg.Elim && (st.Eliminated != 0 || st.DeadPredictions != 0) {
				t.Fatalf("seed %d config %d: elimination without Elim", seed, ci)
			}
			if cfg.OracleElim && st.DeadMispredicts != 0 {
				t.Fatalf("seed %d config %d: oracle mispredicted", seed, ci)
			}
			if st.Eliminated > st.DeadPredictions {
				t.Fatalf("seed %d config %d: eliminated %d > predictions %d",
					seed, ci, st.Eliminated, st.DeadPredictions)
			}
		}
	}
}

func TestEncodingRoundTripsCompiledPrograms(t *testing.T) {
	for seed := 0; seed < 30; seed++ {
		rng := rand.New(rand.NewSource(int64(500 + seed)))
		f := compiler.RandomFunc(rng, 2+rng.Intn(6))
		p, _, err := compiler.Compile(f, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		words, err := isa.EncodeProgram(p.Insts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := isa.DecodeProgram(words)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range back {
			if back[i] != p.Insts[i] {
				t.Fatalf("seed %d: instruction %d mismatch", seed, i)
			}
		}
	}
}
