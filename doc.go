// Package repro reproduces "Dynamic dead-instruction detection and
// elimination" (Butts & Sohi, ASPLOS 2002) as a self-contained Go library:
// an r64 RISC ISA with assembler and functional emulator, an optimizing
// compiler whose code motion creates partially dead instructions, a
// deadness oracle, branch predictors, the paper's dead-instruction
// predictor, and a cycle-level out-of-order pipeline implementing the
// elimination mechanism.
//
// See DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-versus-measured results. The root package holds
// the benchmark harness (bench_test.go) that regenerates every reproduced
// table and figure; the implementation lives under internal/.
package repro
