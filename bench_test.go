// Benchmark harness: one testing.B benchmark per reproduced table/figure
// (experiments E1-E21, see DESIGN.md), plus micro-benchmarks of the
// substrates. Each experiment benchmark reports its headline metrics with
// b.ReportMetric, so `go test -bench=.` regenerates the numbers recorded
// in EXPERIMENTS.md (at a reduced instruction budget; use cmd/experiments
// for the full-budget tables).
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchBudget trades fidelity for wall-clock time; the shapes survive well
// below the full 1M-instruction budget.
const benchBudget = 250_000

func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		w := core.NewWorkspace(benchBudget)
		e, err := w.RunExperiment(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, m := range metrics {
				v, ok := e.Metrics[m]
				if !ok {
					b.Fatalf("experiment %s has no metric %q: %v", id, m, e.Metrics)
				}
				b.ReportMetric(100*v, m+"_%")
			}
		}
	}
}

func BenchmarkE1DeadFraction(b *testing.B) {
	runExperiment(b, "e1", "dead_min", "dead_max", "dead_mean")
}

func BenchmarkE2PartiallyDead(b *testing.B) {
	runExperiment(b, "e2", "dead_from_partial_mean")
}

func BenchmarkE3SchedulingAblation(b *testing.B) {
	runExperiment(b, "e3", "dead_mean_with_hoist", "dead_mean_no_hoist")
}

func BenchmarkE4Locality(b *testing.B) {
	runExperiment(b, "e4", "top16_coverage_mean", "mostly_dead_share_mean")
}

func BenchmarkE5Predictor(b *testing.B) {
	runExperiment(b, "e5", "coverage_mean", "accuracy_mean")
}

func BenchmarkE6CFIAblation(b *testing.B) {
	runExperiment(b, "e6", "cfi_accuracy_mean", "counter_accuracy_mean",
		"cfi_coverage_mean", "counter_coverage_mean")
}

func BenchmarkE7StateSweep(b *testing.B) {
	runExperiment(b, "e7")
}

func BenchmarkE8Resources(b *testing.B) {
	runExperiment(b, "e8", "alloc_reduction_mean", "rf_read_reduction_mean",
		"rf_write_reduction_mean", "dcache_reduction_mean")
}

func BenchmarkE9Speedup(b *testing.B) {
	runExperiment(b, "e9", "speedup_mean", "speedup_max")
}

func BenchmarkE10Sensitivity(b *testing.B) {
	runExperiment(b, "e10", "speedup_at_40_regs", "speedup_uncontended")
}

func BenchmarkE11BpredSensitivity(b *testing.B) {
	runExperiment(b, "e11", "coverage_static-taken", "coverage_gshare-4k", "coverage_oracle")
}

func BenchmarkE12StaticDCE(b *testing.B) {
	runExperiment(b, "e12", "dead_mean", "dead_mean_dce")
}

func BenchmarkE13OracleLimit(b *testing.B) {
	runExperiment(b, "e13", "dip_speedup_mean", "oracle_speedup_mean", "captured_mean")
}

func BenchmarkE14Confidence(b *testing.B) {
	runExperiment(b, "e14", "coverage_b2_t2", "accuracy_b2_t2")
}

func BenchmarkE15MemoryDepth(b *testing.B) {
	runExperiment(b, "e15", "flat_speedup_mean", "deep_speedup_mean")
}

func BenchmarkE16ResolveDistance(b *testing.B) {
	runExperiment(b, "e16", "within_rob_mean")
}

func BenchmarkE17StaticHints(b *testing.B) {
	runExperiment(b, "e17", "hint50_coverage_mean", "hint50_accuracy_mean",
		"dip_coverage_mean", "dip_accuracy_mean")
}

func BenchmarkE18WindowBias(b *testing.B) {
	runExperiment(b, "e18", "dead_mean_at_10000", "dead_mean_full")
}

func BenchmarkE19IneffRates(b *testing.B) {
	runExperiment(b, "e19", "ineff_mean", "silent_store_rate_mean")
}

func BenchmarkE20SteerPredictors(b *testing.B) {
	runExperiment(b, "e20", "steer_coverage_bimodal-4k", "steer_accuracy_bimodal-4k")
}

func BenchmarkE21ClusteredIPC(b *testing.B) {
	runExperiment(b, "e21", "speedup_steer_mean", "narrow_share_mean")
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

// benchProgram is a small mixed loop used by the substrate benchmarks.
const benchProgramSrc = `
.data
buf: .space 4096
.text
main:
    addi r1, r0, 5000
    la   r2, buf
    addi r5, r0, 0
loop:
    andi r3, r1, 511
    slli r3, r3, 3
    add  r3, r2, r3
    sd   r1, 0(r3)
    ld   r4, 0(r3)
    add  r5, r5, r4
    andi r6, r1, 7
    bne  r6, r0, skip
    xor  r5, r5, r1
skip:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r5
    halt
`

func BenchmarkEmulator(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	insts := 0
	for i := 0; i < b.N; i++ {
		m := emu.New(prog)
		if err := m.Run(1_000_000, nil); err != nil {
			b.Fatal(err)
		}
		insts = m.Steps
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkDeadnessOracle measures the fused single-pass substrate: one
// walk derives both the def-use links and the oracle's forward facts.
// Re-running on the same trace re-derives the links, so each iteration
// does the full raw-trace-to-analysis work.
func BenchmarkDeadnessOracle(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deadness.LinkAndAnalyze(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkCollectAnalyzed measures the streaming emulate→analyze path
// end to end: completed chunks feed the fused oracle — in-line on one
// CPU, through the shard scheduler otherwise — as the emulator produces
// them. Each iteration releases the trace, the real caller lifecycle, so
// chunk arenas recycle through the pool instead of piling onto the GC.
func BenchmarkCollectAnalyzed(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	insts := 0
	for i := 0; i < b.N; i++ {
		tr, _, _, err := emu.CollectAnalyzed(prog, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		insts = tr.Len()
		tr.Release()
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkAnalyzeShards sweeps the sharded analyzer over a pre-collected
// trace, isolating the analyze stage's scaling curve (forward shards +
// boundary reconciliation + three-phase reverse). shards=1 still runs the
// full sharded machinery, so the delta against BenchmarkDeadnessOracle is
// the sharding overhead and the curve across counts is the parallel win.
func BenchmarkAnalyzeShards(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := deadness.LinkAndAnalyzeSharded(tr, shards); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
		})
	}
}

// BenchmarkDeadnessOracleLegacy measures the two-pass path (Link, then
// Analyze) the fused pass replaced, for the speedup comparison.
func BenchmarkDeadnessOracleLegacy(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Link(); err != nil {
			b.Fatal(err)
		}
		if _, err := deadness.Analyze(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkDIPLookup(b *testing.B) {
	p, err := dip.New(dip.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for pc := 0; pc < 256; pc++ {
		p.Update(pc, uint16(pc&3), true)
		p.Update(pc, uint16(pc&3), true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(i&1023, uint16(i&3))
	}
}

func BenchmarkGshare(b *testing.B) {
	g := bpred.NewGshare(12, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := i & 4095
		g.Update(pc, g.Predict(pc) != (i&7 == 0))
	}
}

func BenchmarkPipeline(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	an, err := deadness.Analyze(tr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.ContendedConfig()
	cfg.Elim = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(tr, an, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e3, "Kinst/s")
}

// ineffProgramSrc is an ineffectuality-dense loop: one silent store and a
// three-deep x+0 chain per iteration alongside effectual work, so the
// steered machine has both clusters busy and the analysis walk sees hint
// bits on most records.
const ineffProgramSrc = `
.data
buf: .space 64
.text
main:
    addi r1, r0, 8000
    la   r2, buf
    addi r3, r0, 9
    sd   r3, 0(r2)
loop:
    sd   r3, 0(r2)
    add  r4, r3, r0
    add  r5, r4, r0
    add  r6, r5, r0
    add  r7, r1, r6
    sd   r7, 8(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r6
    halt
`

// BenchmarkClusteredPipeline compares the timing model with and without
// the two-cluster steered configuration, on a mostly-live trace (the
// steering overhead bound: clustered must stay within a few percent of
// single-cluster when there is little to steer) and on an
// ineffectuality-dense trace (where the IPC delta and narrow-cluster
// occupancy are the payoff).
func BenchmarkClusteredPipeline(b *testing.B) {
	for _, pr := range []struct{ name, src string }{
		{"live", benchProgramSrc},
		{"ineff", ineffProgramSrc},
	} {
		prog, err := asm.Assemble("bench", pr.src)
		if err != nil {
			b.Fatal(err)
		}
		tr, _, err := emu.Collect(prog, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		an, err := deadness.Analyze(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			cfg  pipeline.Config
		}{
			{"single", pipeline.ContendedConfig()},
			{"clustered", pipeline.ClusteredConfig()},
		} {
			b.Run(pr.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				var st pipeline.Stats
				for i := 0; i < b.N; i++ {
					st, err = pipeline.Run(tr, an, mode.cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(st.IPC(), "IPC")
				if mode.cfg.Clustered() {
					b.ReportMetric(100*float64(st.SteeredNarrow)/float64(st.Committed), "narrow_%")
				}
				b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e3, "Kinst/s")
			})
		}
	}
}

// BenchmarkIneffAnalysis measures the fused link+analyze walk on an
// ineffectuality-dense trace: the same single pass derives the deadness
// and the Ineff fact columns, so the Minst/s delta against
// BenchmarkDeadnessOracle (mostly hint-free records) bounds the cost of
// carrying the second column.
func BenchmarkIneffAnalysis(b *testing.B) {
	prog, err := asm.Assemble("bench", ineffProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s deadness.Summary
	for i := 0; i < b.N; i++ {
		a, err := deadness.LinkAndAnalyze(tr)
		if err != nil {
			b.Fatal(err)
		}
		s = a.Summarize(tr, nil)
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
	b.ReportMetric(100*s.IneffFraction(), "ineff_%")
}

// BenchmarkTraceSaveLoad measures trace serialization round trips in both
// on-disk formats: v1 (records only, links re-derived on load) and the v2
// linked format the persistent artifact tier writes (links stored, Load
// skips the re-link pass). The delta between the two load paths is the
// warm-start win per trace byte.
func BenchmarkTraceSaveLoad(b *testing.B) {
	prog, err := asm.Assemble("bench", benchProgramSrc)
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Link(); err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		save func(*trace.Trace, *bytes.Buffer) error
	}{
		{"v1", func(tr *trace.Trace, buf *bytes.Buffer) error { return tr.Save(buf) }},
		{"linked", func(tr *trace.Trace, buf *bytes.Buffer) error { return tr.SaveLinked(buf) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := v.save(tr, &buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := v.save(tr, &buf); err != nil {
					b.Fatal(err)
				}
				back, err := trace.Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				back.Release()
			}
		})
	}
}

// BenchmarkProfileDiskCache measures the persistent artifact tier's
// headline trade, run against run: "cold" is the first -cache-dir run
// (build the profile from scratch — emulate + link + analyze — and
// write it through to a fresh cache directory), "warm" is the second
// run over the populated directory (load the profile from disk instead
// of rebuilding). The cold/warm ns-per-op ratio is the warm-start
// speedup recorded in BENCH_7.json; the warm arm also asserts the
// zero-rebuild contract via the artifact counters.
func BenchmarkProfileDiskCache(b *testing.B) {
	const bench = "gzip"
	dir := b.TempDir()
	seed := core.NewWorkspace(benchBudget)
	if err := seed.OpenDiskCache(dir, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.ProfileOf(bench); err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cold, err := os.MkdirTemp(b.TempDir(), "cold")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			w := core.NewWorkspace(benchBudget)
			if err := w.OpenDiskCache(cold, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := w.ProfileOf(bench); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				ks := w.ArtifactStats().Kinds[core.KindProfile]
				if ks.Misses != 1 || ks.DiskWrites == 0 {
					b.Fatalf("cold iteration did not build and persist the profile: %+v", ks)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := core.NewWorkspace(benchBudget)
			if err := w.OpenDiskCache(dir, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := w.ProfileOf(bench); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				ks := w.ArtifactStats().Kinds[core.KindProfile]
				if ks.Misses != 0 || ks.DiskHits != 1 {
					b.Fatalf("warm iteration rebuilt the profile: %+v", ks)
				}
			}
		}
	})
}

// BenchmarkCoalescedLoad measures the service tier's redundant-work
// elimination end to end over real HTTP: each iteration flushes the
// daemon workspace's resident artifacts and issues profile requests
// against the cold cache. "solo" is the one-request baseline, "burst8"
// fires 8 identical requests concurrently (they coalesce into a single
// flight, so ns/op should track solo, not 8x it), and "serial8" issues
// the same 8 back to back (one build, then memory hits — no
// coalescing). builds/burst counts profile-kind cache misses per
// iteration: the burst8 contract is ~1 build for 8 requests, with the
// other 7 visible in coalesced/burst.
func BenchmarkCoalescedLoad(b *testing.B) {
	run := func(b *testing.B, requests int, concurrent bool) {
		w := core.NewWorkspaceWorkers(benchBudget, 2)
		mc := metrics.New()
		w.Metrics = mc
		s := server.New(server.Config{Workspace: w, QueueDepth: 32, Metrics: mc})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body := `{"bench":"gzip"}`
		post := func() error {
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("profile request: status %d", resp.StatusCode)
			}
			return nil
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.FlushSpill()
			b.StartTimer()
			if concurrent {
				var wg sync.WaitGroup
				errc := make(chan error, requests)
				for r := 0; r < requests; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						errc <- post()
					}()
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					if err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for r := 0; r < requests; r++ {
					if err := post(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.StopTimer()
		builds := w.ArtifactStats().Kinds[core.KindProfile].Misses
		b.ReportMetric(float64(builds)/float64(b.N), "builds/burst")
		b.ReportMetric(float64(mc.Counter(metrics.CounterServerCoalesced))/float64(b.N), "coalesced/burst")
	}
	b.Run("solo", func(b *testing.B) { run(b, 1, false) })
	b.Run("burst8", func(b *testing.B) { run(b, 8, true) })
	b.Run("serial8", func(b *testing.B) { run(b, 8, false) })
}

// BenchmarkEngineAllExperiments runs the full 18-experiment engine on a
// shared concurrent workspace, reporting how many machine simulations ran
// versus how many were served from the (benchmark, config) memo — the
// dedup the engine exists to provide. It runs after the substrate
// micro-benchmarks (Go executes benchmarks in source order): its heap
// footprint dwarfs theirs, and running it first leaves enough retained
// pool memory behind to depress every later measurement by 10-20%.
func BenchmarkEngineAllExperiments(b *testing.B) {
	ids := core.ExperimentIDs()
	for i := 0; i < b.N; i++ {
		w := core.NewWorkspace(benchBudget)
		mc := metrics.New()
		w.Metrics = mc
		if _, err := w.RunExperiments(context.Background(), ids); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(mc.Counter(core.CounterMachineSims)), "sims")
			b.ReportMetric(float64(mc.Counter(core.CounterMachineMemoHits)), "memo-hits")
			b.ReportMetric(float64(mc.Counter(core.CounterProfileBuilds)), "profiles")
		}
	}
}

func BenchmarkWorkloadCompile(b *testing.B) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := prof.Compile(nil); err != nil {
			b.Fatal(err)
		}
	}
}
