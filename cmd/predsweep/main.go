// Command predsweep evaluates dead-instruction predictor configurations
// over the benchmark suite: the default CFI design point, the no-CFI
// counter baseline, oracle-path signatures, and a state-budget sweep.
// Evaluations run through a shared workspace, so each benchmark's trace
// and oracle analysis build once and are reused by every configuration;
// independent evaluations run concurrently, bounded by -j.
//
// Usage:
//
//	predsweep [-bench name] [-n budget] [-mode point|sweep|assoc|cfi|steer]
//	          [-path n] [-slots n] [-steer-dir name] [-j workers]
//	          [-cache-budget bytes] [-cache-dir dir] [-disk-budget bytes]
//	          [-remote-cache url]
//
// -mode steer evaluates the cluster-steering predictor (dip.FlavorSteer):
// every registered direction predictor reinterpreted over ineffectuality
// outcomes, or just the one named by -steer-dir.
//
// Traces, oracle analyses, and predictor evaluations derive through the
// workspace's content-addressed artifact cache; -cache-budget bounds its
// resident bytes, -cache-dir attaches a persistent disk tier shared
// across runs and processes (bounded by -disk-budget), and -remote-cache
// attaches a warm deadd daemon as a third tier, so a sweep re-invoked
// after a warm run loads its profiles instead of re-emulating. The FAULTS / FAULTS_SEED environment variables arm the
// deterministic fault injector; malformed rules abort at startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/bpred"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dip"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: whole suite)")
	mode := flag.String("mode", "point", "point, sweep, assoc, cfi, or steer")
	pathLen := flag.Int("path", -1, "override signature path length")
	slots := flag.Int("slots", -1, "override signature slots per entry")
	steerDir := flag.String("steer-dir", "", "restrict -mode steer to one direction predictor")
	wsFlags := cliflags.RegisterWorkspace(flag.CommandLine, "predsweep")
	flag.Parse()
	if *pathLen >= 0 {
		overridePath = *pathLen
	}
	if *slots > 0 {
		overrideSlots = *slots
	}

	names := core.SuiteNames()
	if *bench != "" {
		if _, err := workload.ByName(*bench); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		names = []string{*bench}
	}

	w, err := wsFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := cliflags.ArmFaults(nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *mode {
	case "point":
		err = point(w, names)
	case "cfi":
		err = cfi(w, names)
	case "sweep":
		err = sweep(w, names)
	case "assoc":
		err = assoc(w, names)
	case "steer":
		err = steerSweep(w, names, *steerDir)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

var overridePath = -1
var overrideSlots = -1

func defaultCfg() dip.Config {
	cfg := dip.DefaultConfig()
	if overridePath >= 0 {
		cfg.PathLen = overridePath
	}
	if overrideSlots > 0 {
		cfg.SigSlots = overrideSlots
	}
	return cfg
}

// evalAll evaluates one predictor spec over every benchmark through the
// workspace pool, returning results in suite order.
func evalAll(w *core.Workspace, names []string, spec dip.Spec) ([]dip.Result, error) {
	out := make([]dip.Result, len(names))
	err := w.Pool().ForEach(context.Background(), len(names), func(i int) error {
		r, err := w.EvalPredictor(names[i], spec)
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func point(w *core.Workspace, names []string) error {
	cfg := defaultCfg()
	results, err := evalAll(w, names, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
	if err != nil {
		return err
	}
	tb := stats.NewTable("bench", "dead", "covered", "cov%", "acc%", "false+", "br-acc%")
	var covs, accs []float64
	for i, name := range names {
		res := results[i]
		covs = append(covs, res.Coverage())
		accs = append(accs, res.Accuracy())
		tb.AddRow(name, fmt.Sprint(res.Dead), fmt.Sprint(res.TruePos),
			stats.Pct(res.Coverage()), stats.Pct(res.Accuracy()),
			fmt.Sprint(res.FalsePositives()), stats.Pct(res.BranchAccuracy))
	}
	tb.AddRow("MEAN", "", "", stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)), "", "")
	fmt.Printf("config %s (%.2f KB)\n\n%s", cfg.Name(), cfg.StateKB(), tb)
	return nil
}

func cfi(w *core.Workspace, names []string) error {
	withCFI := defaultCfg()
	noCFI := defaultCfg()
	noCFI.PathLen = 0
	as, err := evalAll(w, names, dip.Spec{Flavor: dip.FlavorCFI, Config: withCFI})
	if err != nil {
		return err
	}
	bs, err := evalAll(w, names, dip.Spec{Flavor: dip.FlavorCounter, Config: noCFI})
	if err != nil {
		return err
	}
	os_, err := evalAll(w, names, dip.Spec{Flavor: dip.FlavorOracle, Config: withCFI})
	if err != nil {
		return err
	}
	tb := stats.NewTable("bench", "cfi-cov%", "cfi-acc%", "ctr-cov%", "ctr-acc%", "oracle-cov%", "oracle-acc%")
	for i, name := range names {
		a, b, o := as[i], bs[i], os_[i]
		tb.AddRow(name,
			stats.Pct(a.Coverage()), stats.Pct(a.Accuracy()),
			stats.Pct(b.Coverage()), stats.Pct(b.Accuracy()),
			stats.Pct(o.Coverage()), stats.Pct(o.Accuracy()))
	}
	fmt.Print(tb)
	return nil
}

// assoc sweeps set associativity at a roughly constant entry count.
func assoc(w *core.Workspace, names []string) error {
	tb := stats.NewTable("config", "KB", "cov%", "acc%")
	for _, ways := range []int{1, 2, 4, 8} {
		cfg := defaultCfg()
		cfg.Ways = ways
		// Keep total entries at 512.
		cfg.LogSets = 9
		for v := ways; v > 1; v >>= 1 {
			cfg.LogSets--
		}
		results, err := evalAll(w, names, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
		if err != nil {
			return err
		}
		var covs, accs []float64
		for _, res := range results {
			covs = append(covs, res.Coverage())
			accs = append(accs, res.Accuracy())
		}
		tb.AddRow(cfg.Name(), fmt.Sprintf("%.2f", cfg.StateKB()),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
	}
	fmt.Print(tb)
	return nil
}

// steerSweep evaluates the cluster-steering predictor over the registered
// direction predictors (or the one named by -steer-dir): the trace-level
// twin of the two-cluster machine's steering stage.
func steerSweep(w *core.Workspace, names []string, only string) error {
	dirs := bpred.DirNames()
	if only != "" {
		dirs = []string{only}
	}
	tb := stats.NewTable("steer predictor", "ineff", "steered", "cov%", "acc%", "state-KB")
	for _, dir := range dirs {
		spec := dip.Spec{Flavor: dip.FlavorSteer, Dir: dir}
		if err := spec.Validate(); err != nil {
			return err
		}
		results, err := evalAll(w, names, spec)
		if err != nil {
			return err
		}
		var covs, accs []float64
		ineff, steered, bits := 0, 0, 0
		for _, res := range results {
			covs = append(covs, res.Coverage())
			accs = append(accs, res.Accuracy())
			ineff += res.Dead
			steered += res.Predicted
			bits = res.StateBits
		}
		tb.AddRow(dir, fmt.Sprint(ineff), fmt.Sprint(steered),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)),
			fmt.Sprintf("%.2f", float64(bits)/8192))
	}
	fmt.Print(tb)
	return nil
}

func sweep(w *core.Workspace, names []string) error {
	tb := stats.NewTable("config", "KB", "cov%", "acc%")
	for _, cfg := range dip.SweepConfigs() {
		if overridePath >= 0 {
			cfg.PathLen = overridePath
		}
		results, err := evalAll(w, names, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
		if err != nil {
			return err
		}
		var covs, accs []float64
		for _, res := range results {
			covs = append(covs, res.Coverage())
			accs = append(accs, res.Accuracy())
		}
		tb.AddRow(cfg.Name(), fmt.Sprintf("%.2f", cfg.StateKB()),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
	}
	fmt.Print(tb)
	return nil
}
