// Command predsweep evaluates dead-instruction predictor configurations
// over the benchmark suite: the default CFI design point, the no-CFI
// counter baseline, oracle-path signatures, and a state-budget sweep.
//
// Usage:
//
//	predsweep [-bench name] [-n budget] [-mode point|sweep|cfi]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dip"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: whole suite)")
	budget := flag.Int("n", core.DefaultBudget, "dynamic instruction budget")
	mode := flag.String("mode", "point", "point, sweep, assoc, or cfi")
	pathLen := flag.Int("path", -1, "override signature path length")
	slots := flag.Int("slots", -1, "override signature slots per entry")
	flag.Parse()
	if *pathLen >= 0 {
		overridePath = *pathLen
	}
	if *slots > 0 {
		overrideSlots = *slots
	}

	profiles := workload.Suite()
	if *bench != "" {
		p, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profiles = []workload.Profile{p}
	}

	switch *mode {
	case "point":
		point(profiles, *budget)
	case "cfi":
		cfi(profiles, *budget)
	case "sweep":
		sweep(profiles, *budget)
	case "assoc":
		assoc(profiles, *budget)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

var overridePath = -1
var overrideSlots = -1

func defaultCfg() dip.Config {
	cfg := dip.DefaultConfig()
	if overridePath >= 0 {
		cfg.PathLen = overridePath
	}
	if overrideSlots > 0 {
		cfg.SigSlots = overrideSlots
	}
	return cfg
}

func point(profiles []workload.Profile, budget int) {
	cfg := defaultCfg()
	tb := stats.NewTable("bench", "dead", "covered", "cov%", "acc%", "false+", "br-acc%")
	var covs, accs []float64
	for _, p := range profiles {
		res, err := core.EvalPredictor(p, cfg, budget, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		covs = append(covs, res.Coverage())
		accs = append(accs, res.Accuracy())
		tb.AddRow(p.Name, fmt.Sprint(res.Dead), fmt.Sprint(res.TruePos),
			stats.Pct(res.Coverage()), stats.Pct(res.Accuracy()),
			fmt.Sprint(res.FalsePositives()), stats.Pct(res.BranchAccuracy))
	}
	tb.AddRow("MEAN", "", "", stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)), "", "")
	fmt.Printf("config %s (%.2f KB)\n\n%s", cfg.Name(), cfg.StateKB(), tb)
}

func cfi(profiles []workload.Profile, budget int) {
	withCFI := defaultCfg()
	noCFI := defaultCfg()
	noCFI.PathLen = 0
	tb := stats.NewTable("bench", "cfi-cov%", "cfi-acc%", "ctr-cov%", "ctr-acc%", "oracle-cov%", "oracle-acc%")
	for _, p := range profiles {
		a, err := core.EvalPredictor(p, withCFI, budget, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := core.EvalPredictor(p, noCFI, budget, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o, err := core.EvalPredictor(p, withCFI, budget, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tb.AddRow(p.Name,
			stats.Pct(a.Coverage()), stats.Pct(a.Accuracy()),
			stats.Pct(b.Coverage()), stats.Pct(b.Accuracy()),
			stats.Pct(o.Coverage()), stats.Pct(o.Accuracy()))
	}
	fmt.Print(tb)
}

// assoc sweeps set associativity at a roughly constant entry count.
func assoc(profiles []workload.Profile, budget int) {
	tb := stats.NewTable("config", "KB", "cov%", "acc%")
	for _, ways := range []int{1, 2, 4, 8} {
		cfg := defaultCfg()
		cfg.Ways = ways
		// Keep total entries at 512.
		cfg.LogSets = 9
		for w := ways; w > 1; w >>= 1 {
			cfg.LogSets--
		}
		var covs, accs []float64
		for _, p := range profiles {
			res, err := core.EvalPredictor(p, cfg, budget, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			covs = append(covs, res.Coverage())
			accs = append(accs, res.Accuracy())
		}
		tb.AddRow(cfg.Name(), fmt.Sprintf("%.2f", cfg.StateKB()),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
	}
	fmt.Print(tb)
}

func sweep(profiles []workload.Profile, budget int) {
	tb := stats.NewTable("config", "KB", "cov%", "acc%")
	for _, cfg := range dip.SweepConfigs() {
		if overridePath >= 0 {
			cfg.PathLen = overridePath
		}
		var covs, accs []float64
		for _, p := range profiles {
			res, err := core.EvalPredictor(p, cfg, budget, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			covs = append(covs, res.Coverage())
			accs = append(accs, res.Accuracy())
		}
		tb.AddRow(cfg.Name(), fmt.Sprintf("%.2f", cfg.StateKB()),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
	}
	fmt.Print(tb)
}
