// Command r64asm assembles, disassembles, and runs r64 programs.
//
// Usage:
//
//	r64asm -in prog.s              assemble and disassemble
//	r64asm -in prog.s -run         assemble and execute, printing outputs
//	r64asm -in prog.s -out p.bin   assemble to binary instruction words
//	r64asm -dis p.bin              disassemble a binary image
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

func main() {
	in := flag.String("in", "", "assembly source file")
	out := flag.String("out", "", "write encoded instruction words (binary)")
	dis := flag.String("dis", "", "disassemble a binary image")
	run := flag.Bool("run", false, "execute the program and print outputs")
	budget := flag.Int("n", 10_000_000, "execution budget")
	flag.Parse()

	switch {
	case *dis != "":
		disassemble(*dis)
	case *in != "":
		src, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		p, err := asm.Assemble(*in, string(src))
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			writeBinary(*out, p)
			return
		}
		if *run {
			execute(p, *budget)
			return
		}
		fmt.Print(p.Disassemble())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func writeBinary(path string, p *program.Program) {
	words, err := isa.EncodeProgram(p.Insts)
	if err != nil {
		fatal(err)
	}
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d instructions (%d bytes)\n", len(words), len(buf))
}

func disassemble(path string) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if len(buf)%8 != 0 {
		fatal(fmt.Errorf("image size %d is not a multiple of 8", len(buf)))
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	insts, err := isa.DecodeProgram(words)
	if err != nil {
		fatal(err)
	}
	for pc, in := range insts {
		fmt.Printf("%5d:  %v\n", pc, in)
	}
}

func execute(p *program.Program, budget int) {
	m := emu.New(p)
	if err := m.Run(budget, nil); err != nil {
		fatal(err)
	}
	fmt.Printf("halted after %d instructions\n", m.Steps)
	for i, v := range m.Outputs {
		fmt.Printf("out[%d] = %d (%#x)\n", i, v, v)
	}
}
