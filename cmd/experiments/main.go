// Command experiments regenerates every reproduced table and figure
// (E1-E18 in DESIGN.md) and prints them in the format EXPERIMENTS.md
// records. Independent experiments run concurrently over a shared
// workspace — machine runs are memoized by (benchmark, config), so sweeps
// and elim-pairs shared across experiments simulate exactly once — and
// results print in deterministic ID order regardless of -j.
//
// Usage:
//
//	experiments [-e id[,id...]] [-n budget] [-j workers] [-v] [-md | -json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	ids := flag.String("e", "", "comma-separated experiment ids (default: all)")
	budget := flag.Int("n", core.DefaultBudget, "per-benchmark dynamic instruction budget")
	md := flag.Bool("md", false, "emit markdown sections (EXPERIMENTS.md body)")
	asJSON := flag.Bool("json", false, "emit machine-readable metrics")
	workers := flag.Int("j", 0, "max concurrently executing heavy tasks (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-phase progress lines and a run summary to stderr")
	flag.Parse()

	list := core.ExperimentIDs()
	if *ids != "" {
		list = strings.Split(*ids, ",")
	}
	for i, id := range list {
		list[i] = strings.TrimSpace(strings.ToLower(id))
	}

	w := core.NewWorkspaceWorkers(*budget, *workers)
	mc := metrics.New()
	if *verbose {
		mc.SetVerbose(os.Stderr)
	}
	w.Metrics = mc

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exps, err := w.RunExperiments(ctx, list)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *asJSON:
		printJSON(exps, mc)
	case *md:
		for _, e := range exps {
			fmt.Printf("## %s — %s\n\n", strings.ToUpper(e.ID), e.Title)
			fmt.Printf("Paper claim: *%s*\n\n```\n%s```\n\n", e.Claim, e.Table)
			if e.Figure != nil {
				fmt.Printf("```\n%s```\n\n", e.Figure)
			}
		}
	default:
		for _, e := range exps {
			fmt.Printf("=== %s: %s (%.1fs)\n", strings.ToUpper(e.ID), e.Title, e.Wall.Seconds())
			fmt.Printf("claim: %s\n\n%s\n", e.Claim, e.Table)
			if e.Figure != nil {
				fmt.Printf("%s\n", e.Figure)
			}
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "\n--- run summary (%d workers) ---\n", w.Pool().Workers())
		mc.WriteText(os.Stderr)
	}
}

// printJSON emits the machine-readable form: the experiments array is
// deterministic (identical for any -j), while the run section carries the
// wall-clock phase report and memoization counters of this particular run.
func printJSON(exps []*core.Experiment, mc *metrics.Collector) {
	type jsonExp struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Claim   string             `json:"claim"`
		Metrics map[string]float64 `json:"metrics"`
	}
	out := struct {
		Experiments []jsonExp       `json:"experiments"`
		Run         metrics.Summary `json:"run"`
	}{Run: mc.Summary()}
	for _, e := range exps {
		out.Experiments = append(out.Experiments, jsonExp{e.ID, e.Title, e.Claim, e.Metrics})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
