// Command experiments regenerates every reproduced table and figure
// (E1-E10 in DESIGN.md) and prints them in the format EXPERIMENTS.md
// records.
//
// Usage:
//
//	experiments [-e id[,id...]] [-n budget] [-md]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	ids := flag.String("e", "", "comma-separated experiment ids (default: all)")
	budget := flag.Int("n", core.DefaultBudget, "per-benchmark dynamic instruction budget")
	md := flag.Bool("md", false, "emit markdown sections (EXPERIMENTS.md body)")
	asJSON := flag.Bool("json", false, "emit machine-readable metrics")
	flag.Parse()

	list := core.ExperimentIDs()
	if *ids != "" {
		list = strings.Split(*ids, ",")
	}
	w := core.NewWorkspace(*budget)
	type jsonExp struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Claim   string             `json:"claim"`
		Metrics map[string]float64 `json:"metrics"`
	}
	var collected []jsonExp
	for _, id := range list {
		start := time.Now()
		e, err := w.RunExperiment(strings.TrimSpace(strings.ToLower(id)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			collected = append(collected, jsonExp{e.ID, e.Title, e.Claim, e.Metrics})
			continue
		}
		if *md {
			fmt.Printf("## %s — %s\n\n", strings.ToUpper(e.ID), e.Title)
			fmt.Printf("Paper claim: *%s*\n\n```\n%s```\n\n", e.Claim, e.Table)
			if e.Figure != nil {
				fmt.Printf("```\n%s```\n\n", e.Figure)
			}
		} else {
			fmt.Printf("=== %s: %s (%.1fs)\n", strings.ToUpper(e.ID), e.Title, time.Since(start).Seconds())
			fmt.Printf("claim: %s\n\n%s\n", e.Claim, e.Table)
			if e.Figure != nil {
				fmt.Printf("%s\n", e.Figure)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
