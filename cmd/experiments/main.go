// Command experiments regenerates every reproduced table and figure
// (E1-E21 in DESIGN.md) and prints them in the format EXPERIMENTS.md
// records. Independent experiments run concurrently over a shared
// workspace — machine runs are memoized by (benchmark, config), so sweeps
// and elim-pairs shared across experiments simulate exactly once — and
// results print in deterministic ID order regardless of -j.
//
// Usage:
//
//	experiments [-only id[,id...]] [-skip id[,id...]] [-n budget] [-j workers]
//	            [-cache-budget bytes] [-cache-dir dir] [-disk-budget bytes]
//	            [-remote-cache url] [-v] [-md | -json] [-keep-going]
//	            [-timeout d] [-retries n]
//
// Experiment selection: -only restricts the run to the listed ids, -skip
// excludes ids from whatever -only selected (default: all); both validate
// against the known experiment ids up front. -e is a legacy alias of
// -only.
//
// The workspace derives programs, profiles, predictor evaluations, and
// machine runs through a content-addressed artifact cache; -cache-budget
// bounds its resident bytes (suffixes KiB/MiB/GiB; 0 = unlimited), with
// least-recently-used artifacts evicted and rebuilt deterministically on
// demand. -cache-dir additionally attaches a persistent disk tier shared
// across runs (and safely across concurrent processes): artifacts write
// through on build, cold misses load from disk instead of rebuilding, and
// evictions spill to disk; -disk-budget bounds the directory, with the
// oldest entries garbage-collected beyond it. -remote-cache attaches a
// warm deadd daemon as a third tier behind memory and disk (lookup
// order: memory, disk, remote, build): verified remote hits also warm
// the local disk tier, and freshly built artifacts push back to the
// daemon. Per-kind hit/miss/eviction counters — and the disk and remote
// tiers' hit/miss/write/verify-failure/GC counters — appear in the -v
// run summary and the -json "artifacts" section.
//
// Failure handling: each experiment attempt is bounded by -timeout,
// transient failures (see internal/faults) retry up to -retries attempts
// with exponential backoff, and -keep-going switches to partial-results
// mode — every experiment runs, failures are reported per experiment, and
// the exit code is 3 instead of 1 when at least one experiment succeeded.
// The FAULTS / FAULTS_SEED environment variables arm the deterministic
// fault injector for resilience testing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/artifact"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Exit codes: 0 all experiments succeeded, 1 run failed, 2 bad usage or
// environment, 3 partial success under -keep-going.
const (
	exitOK      = 0
	exitFailed  = 1
	exitUsage   = 2
	exitPartial = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	ids := flag.String("e", "", "alias of -only (legacy)")
	skip := flag.String("skip", "", "comma-separated experiment ids to exclude")
	wsFlags := cliflags.RegisterWorkspace(flag.CommandLine, "experiments")
	md := flag.Bool("md", false, "emit markdown sections (EXPERIMENTS.md body)")
	asJSON := flag.Bool("json", false, "emit machine-readable metrics")
	verbose := flag.Bool("v", false, "print per-phase progress lines and a run summary to stderr")
	keepGoing := flag.Bool("keep-going", false, "run every experiment even after failures; report failures per experiment")
	timeout := flag.Duration("timeout", 0, "deadline per experiment attempt (0 = none)")
	retries := flag.Int("retries", 1, "attempts per experiment; failures classified transient are retried with backoff")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopCPU, err := metrics.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	defer stopCPU()
	defer func() {
		if err := metrics.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *only != "" && *ids != "" && *only != *ids {
		fmt.Fprintln(os.Stderr, "experiments: -e is an alias of -only; pass one of them")
		return exitUsage
	}
	if *only == "" {
		*only = *ids
	}
	list, err := selectExperiments(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}

	w, err := wsFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	mc := metrics.New()
	if *verbose {
		mc.SetVerbose(os.Stderr)
	}
	w.Metrics = mc
	w.KeepGoing = *keepGoing
	w.Timeout = *timeout
	if *retries > 1 {
		p := core.DefaultRetryPolicy()
		p.MaxAttempts = *retries
		w.Retry = p
	}

	if _, err := cliflags.ArmFaults(mc, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exps, err := w.RunExperiments(ctx, list)
	mc.RecordMemStats()
	if err != nil && !*keepGoing {
		fmt.Fprintln(os.Stderr, err)
		return exitFailed
	}

	failed := 0
	switch {
	case *asJSON:
		if !printJSON(exps, w.ArtifactStats(), mc) {
			return exitFailed
		}
		for _, e := range exps {
			if e.Err != nil {
				failed++
			}
		}
	case *md:
		for _, e := range exps {
			if e.Err != nil {
				failed++
				fmt.Printf("## %s — FAILED\n\n```\n%v\n```\n\n", strings.ToUpper(e.ID), e.Err)
				continue
			}
			fmt.Printf("## %s — %s\n\n", strings.ToUpper(e.ID), e.Title)
			fmt.Printf("Paper claim: *%s*\n\n```\n%s```\n\n", e.Claim, e.Table)
			if e.Figure != nil {
				fmt.Printf("```\n%s```\n\n", e.Figure)
			}
		}
	default:
		for _, e := range exps {
			if e.Err != nil {
				failed++
				fmt.Printf("=== %s: FAILED after %d attempt(s)\n%v\n\n", strings.ToUpper(e.ID), e.Attempts, e.Err)
				continue
			}
			fmt.Printf("=== %s: %s (%.1fs)\n", strings.ToUpper(e.ID), e.Title, e.Wall.Seconds())
			fmt.Printf("claim: %s\n\n%s\n", e.Claim, e.Table)
			if e.Figure != nil {
				fmt.Printf("%s\n", e.Figure)
			}
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "\n--- run summary (%d workers) ---\n", w.Pool().Workers())
		mc.WriteText(os.Stderr)
	}
	switch {
	case failed == 0:
		return exitOK
	case failed == len(exps):
		fmt.Fprintf(os.Stderr, "all %d experiments failed\n", failed)
		return exitFailed
	default:
		fmt.Fprintf(os.Stderr, "%d of %d experiments failed\n", failed, len(exps))
		return exitPartial
	}
}

// selectExperiments resolves the -only / -skip id lists against the
// known experiment ids, preserving declaration order. Unknown ids are a
// usage error up front, not a per-experiment failure mid-run.
func selectExperiments(only, skip string) ([]string, error) {
	known := make(map[string]bool)
	for _, id := range core.ExperimentIDs() {
		known[id] = true
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		if csv == "" {
			return set, nil
		}
		for _, id := range strings.Split(csv, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if id == "" {
				continue
			}
			if !known[id] {
				return nil, fmt.Errorf("experiments: -%s: unknown experiment %q (have %s)",
					flagName, id, strings.Join(core.ExperimentIDs(), ","))
			}
			set[id] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var list []string
	for _, id := range core.ExperimentIDs() {
		if len(onlySet) > 0 && !onlySet[id] {
			continue
		}
		if skipSet[id] {
			continue
		}
		list = append(list, id)
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("experiments: -only/-skip selected no experiments")
	}
	return list, nil
}

// printJSON emits the machine-readable form: the experiments array is
// deterministic (identical for any -j), while the run section carries the
// wall-clock phase report and counters of this particular run, and the
// artifacts section the per-kind cache hit/miss/eviction statistics and
// residency.
// Failed experiments (partial-results mode) carry error and attempts in
// place of metrics.
func printJSON(exps []*core.Experiment, arts artifact.Stats, mc *metrics.Collector) bool {
	type jsonExp struct {
		ID       string             `json:"id"`
		Title    string             `json:"title,omitempty"`
		Claim    string             `json:"claim,omitempty"`
		Metrics  map[string]float64 `json:"metrics,omitempty"`
		Error    string             `json:"error,omitempty"`
		Attempts int                `json:"attempts,omitempty"`
	}
	out := struct {
		Experiments []jsonExp       `json:"experiments"`
		Artifacts   artifact.Stats  `json:"artifacts"`
		Run         metrics.Summary `json:"run"`
	}{Artifacts: arts, Run: mc.Summary()}
	for _, e := range exps {
		je := jsonExp{ID: e.ID, Title: e.Title, Claim: e.Claim, Metrics: e.Metrics}
		if e.Err != nil {
			// Keep only the first line: injected-panic errors embed stacks.
			je.Error, _, _ = strings.Cut(e.Err.Error(), "\n")
			je.Attempts = e.Attempts
		}
		out.Experiments = append(out.Experiments, je)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	return true
}
