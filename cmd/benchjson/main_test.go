package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkEmulator-8   	     100	  11860 ns/op	  44.27 Minst/s	  1024 B/op	   3 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if e.Name != "Emulator" || e.Iterations != 100 {
		t.Fatalf("got %+v", e)
	}
	want := map[string]float64{"ns/op": 11860, "Minst/s": 44.27, "B/op": 1024, "allocs/op": 3}
	for unit, v := range want {
		if e.Metrics[unit] != v {
			t.Errorf("%s = %g, want %g", unit, e.Metrics[unit], v)
		}
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	repro	12.3s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted non-benchmark line %q", line)
		}
	}
	// Sub-benchmark names keep their slash path, only the -P suffix drops.
	e, ok = parseLine("BenchmarkAnalyzeShards/shards=4-2 10 5 ns/op")
	if !ok || e.Name != "AnalyzeShards/shards=4" {
		t.Fatalf("sub-benchmark name: %+v ok=%v", e, ok)
	}
}

func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"ns/op": -1, "B/op": -1, "allocs/op": -1,
		"Minst/s": +1, "MB/s": +1,
		"chunks": 0, "ratio": 0,
	}
	for unit, want := range cases {
		if got := metricDirection(unit); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", unit, got, want)
		}
	}
}

// writeBaseline marshals a report into a temp file and returns its path.
func writeBaseline(t *testing.T, base report) string {
	t.Helper()
	buf, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCompare(t *testing.T, base report, rep report, tol float64) (string, bool) {
	t.Helper()
	var sb strings.Builder
	regressed, err := compareReports(&sb, writeBaseline(t, base), rep, tol)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The headline guarantee: no metric combination may ever surface as
	// Inf/NaN in the human-facing table.
	for _, bad := range []string{"Inf", "NaN", "inf", "nan"} {
		if strings.Contains(out, bad) {
			t.Fatalf("output contains %q:\n%s", bad, out)
		}
	}
	return out, regressed
}

func bench(name string, metrics map[string]float64) entry {
	return entry{Name: name, Iterations: 1, Metrics: metrics}
}

// Zero-valued baseline metrics must not produce a bogus relative delta,
// and must not silently skip the regression verdict: climbing off a zero
// allocs/op baseline is a regression, a rate appearing from zero is not.
func TestCompareZeroBaseline(t *testing.T) {
	base := report{Benchmarks: []entry{
		bench("Alloc", map[string]float64{"allocs/op": 0}),
		bench("Rate", map[string]float64{"Minst/s": 0}),
		bench("Flat", map[string]float64{"allocs/op": 0}),
	}}
	rep := report{Benchmarks: []entry{
		bench("Alloc", map[string]float64{"allocs/op": 7}),
		bench("Rate", map[string]float64{"Minst/s": 42}),
		bench("Flat", map[string]float64{"allocs/op": 0}),
	}}
	out, regressed := runCompare(t, base, rep, 0.25)
	if !regressed {
		t.Errorf("allocs/op 0 -> 7 not flagged as regression:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Errorf("zero baseline missing n/a marker:\n%s", out)
	}
	if strings.Contains(out, "+0.0%") {
		t.Errorf("zero baseline rendered as misleading +0.0%%:\n%s", out)
	}
	// The rate appearing from zero is an improvement, so only the Alloc
	// row may carry the REGRESSION note.
	if got := strings.Count(out, "REGRESSION"); got != 1 {
		t.Errorf("want exactly 1 REGRESSION note, got %d:\n%s", got, out)
	}
}

// One-sided sets: benchmarks present in only one report must be listed,
// never dropped or compared as zeros.
func TestCompareOneSidedSets(t *testing.T) {
	base := report{Benchmarks: []entry{
		bench("Shared", map[string]float64{"ns/op": 100, "B/op": 64}),
		bench("OnlyOld", map[string]float64{"ns/op": 50}),
	}}
	rep := report{Benchmarks: []entry{
		bench("Shared", map[string]float64{"ns/op": 110}),
		bench("OnlyNew", map[string]float64{"ns/op": 80}),
	}}
	out, regressed := runCompare(t, base, rep, 0.25)
	if regressed {
		t.Errorf("+10%% within 25%% tolerance flagged as regression:\n%s", out)
	}
	if !strings.Contains(out, "OnlyNew") || !strings.Contains(out, "(no baseline)") {
		t.Errorf("new-only benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "OnlyOld") || !strings.Contains(out, "(missing from new run)") {
		t.Errorf("baseline-only benchmark dropped silently:\n%s", out)
	}
	// Shared lost its B/op column: the row must surface as gone.
	if !strings.Contains(out, "gone") {
		t.Errorf("dropped metric column not reported:\n%s", out)
	}
}

func TestCompareRegressionDirections(t *testing.T) {
	base := report{Benchmarks: []entry{
		bench("Time", map[string]float64{"ns/op": 100}),
		bench("Rate", map[string]float64{"Minst/s": 100}),
		bench("Aux", map[string]float64{"chunks": 100}),
	}}
	// Time +50% (regression), rate -50% (regression), info -90% (no
	// direction, never flagged).
	rep := report{Benchmarks: []entry{
		bench("Time", map[string]float64{"ns/op": 150}),
		bench("Rate", map[string]float64{"Minst/s": 50}),
		bench("Aux", map[string]float64{"chunks": 10}),
	}}
	out, regressed := runCompare(t, base, rep, 0.25)
	if !regressed {
		t.Errorf("regressions not flagged:\n%s", out)
	}
	if got := strings.Count(out, "REGRESSION"); got != 2 {
		t.Errorf("want 2 REGRESSION notes, got %d:\n%s", got, out)
	}

	// Improvements beyond tolerance stay quiet.
	rep = report{Benchmarks: []entry{
		bench("Time", map[string]float64{"ns/op": 40}),
		bench("Rate", map[string]float64{"Minst/s": 300}),
		bench("Aux", map[string]float64{"chunks": 10}),
	}}
	out, regressed = runCompare(t, base, rep, 0.25)
	if regressed {
		t.Errorf("improvement flagged as regression:\n%s", out)
	}
}

func TestFmtDelta(t *testing.T) {
	cases := []struct {
		oldV, newV float64
		dir        int
		wantCol    string
		wantNote   bool
	}{
		{0, 0, -1, "=", false},
		{0, 5, -1, "n/a", true},
		{0, 5, +1, "n/a", false},
		{0, 5, 0, "n/a", false},
		{100, 150, -1, "   +50.0%", true},
		{100, 110, -1, "   +10.0%", false},
		{100, 50, +1, "   -50.0%", true},
	}
	for _, c := range cases {
		col, note := fmtDelta(c.oldV, c.newV, c.dir, 0.25)
		if col != c.wantCol || (note != "") != c.wantNote {
			t.Errorf("fmtDelta(%g, %g, %d) = (%q, %q), want (%q, note=%v)",
				c.oldV, c.newV, c.dir, col, note, c.wantCol, c.wantNote)
		}
	}
}
