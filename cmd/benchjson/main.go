// Command benchjson converts `go test -bench` output on stdin into a JSON
// report, so benchmark numbers can be checked in and diffed across PRs
// (see BENCH_2.json and the `make bench` target).
//
// Usage:
//
//	go test -bench Substrate -benchmem . | go run ./cmd/benchjson -o BENCH_2.json
//
// Each benchmark line ("BenchmarkFoo-8  100  11860 ns/op  44.27 Minst/s")
// becomes one entry: the name with the Benchmark prefix and -GOMAXPROCS
// suffix stripped, the iteration count, and every value/unit metric pair,
// including the -benchmem B/op and allocs/op columns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	GoOS       string  `json:"goos,omitempty"`
	GoArch     string  `json:"goarch,omitempty"`
	Package    string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// everything else (headers, PASS/ok lines, test noise).
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var rep report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if e, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
