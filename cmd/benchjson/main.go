// Command benchjson converts `go test -bench` output on stdin into a JSON
// report, so benchmark numbers can be checked in and diffed across PRs
// (see BENCH_6.json and the `make bench` / `make bench-compare` targets).
//
// Usage:
//
//	go test -bench Substrate -benchmem . | go run ./cmd/benchjson -o BENCH_6.json
//	go test -bench Substrate -benchmem . | go run ./cmd/benchjson -compare BENCH_6.json -tol 0.25
//
// With -compare, the parsed report is diffed against a committed baseline
// report: every shared (benchmark, metric) pair prints old, new, and the
// relative delta, and pairs that got worse by more than -tol flag a
// regression (exit code 1). Time- and allocation-like units (ns/op, B/op,
// allocs/op) regress upward; rate units (anything per second) regress
// downward; other units are informational only. Benchmark numbers vary
// with host hardware, so CI runs the comparison non-gating — the table is
// for humans, the exit code for local use.
//
// Each benchmark line ("BenchmarkFoo-8  100  11860 ns/op  44.27 Minst/s")
// becomes one entry: the name with the Benchmark prefix and -GOMAXPROCS
// suffix stripped, the iteration count, and every value/unit metric pair,
// including the -benchmem B/op and allocs/op columns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	GoOS       string  `json:"goos,omitempty"`
	GoArch     string  `json:"goarch,omitempty"`
	Package    string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// everything else (headers, PASS/ok lines, test noise).
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline report to diff against")
	tol := flag.Float64("tol", 0.25, "relative regression tolerance for -compare")
	flag.Parse()

	var rep report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if e, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" && *compare == "" {
		os.Stdout.Write(buf)
		return
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *compare != "" {
		regressed, err := compareReports(os.Stdout, *compare, rep, *tol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
	}
}

// metricDirection classifies a unit: -1 when lower is better (times,
// bytes, allocation counts), +1 when higher is better (rates), 0 for
// units with no regression semantics.
func metricDirection(unit string) int {
	switch {
	case unit == "ns/op" || unit == "B/op" || unit == "allocs/op":
		return -1
	case strings.HasSuffix(unit, "/s"):
		return +1
	}
	return 0
}

// compareReports diffs the new report against the baseline file and
// reports whether any directional metric regressed beyond tol.
func compareReports(w io.Writer, baselinePath string, rep report, tol float64) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseline := make(map[string]entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseline[e.Name] = e
	}

	fmt.Fprintf(w, "comparison against %s (tolerance %.0f%%):\n", baselinePath, 100*tol)
	fmt.Fprintf(w, "%-28s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	regressed := false
	seen := make(map[string]bool, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		seen[e.Name] = true
		b, ok := baseline[e.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s (no baseline)\n", e.Name)
			continue
		}
		units := make([]string, 0, len(e.Metrics))
		for unit := range e.Metrics {
			if _, ok := b.Metrics[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			oldV, newV := b.Metrics[unit], e.Metrics[unit]
			dir := metricDirection(unit)
			deltaCol, note := fmtDelta(oldV, newV, dir, tol)
			if note != "" {
				regressed = true
			}
			fmt.Fprintf(w, "%-28s %-12s %14.4g %14.4g %9s%s\n",
				e.Name, unit, oldV, newV, deltaCol, note)
		}
		// Metrics the baseline had but the new run lost (e.g. a dropped
		// -benchmem column) would otherwise vanish silently.
		gone := make([]string, 0)
		for unit := range b.Metrics {
			if _, ok := e.Metrics[unit]; !ok {
				gone = append(gone, unit)
			}
		}
		sort.Strings(gone)
		for _, unit := range gone {
			fmt.Fprintf(w, "%-28s %-12s %14.4g %14s %9s\n",
				e.Name, unit, b.Metrics[unit], "-", "gone")
		}
	}
	// Benchmarks present only in the baseline: surface them instead of
	// silently comparing a shrunken suite against a full one.
	missing := make([]string, 0)
	for name := range baseline {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "%-28s (missing from new run)\n", name)
	}
	return regressed, nil
}

// fmtDelta renders the relative-change column and decides regression. A
// zero (or non-finite) baseline has no meaningful relative delta — the
// naive (new-old)/old is Inf or NaN — so those rows print "n/a" and are
// judged by direction alone: appearing from zero on a lower-is-better
// unit (say allocs/op climbing off 0) is a regression, while any growth
// of a higher-is-better rate from zero is not.
func fmtDelta(oldV, newV float64, dir int, tol float64) (col, note string) {
	if math.IsNaN(oldV) || math.IsNaN(newV) || math.IsInf(oldV, 0) || math.IsInf(newV, 0) {
		return "n/a", ""
	}
	if oldV == 0 {
		if newV == 0 {
			return "=", ""
		}
		if dir < 0 {
			return "n/a", "  REGRESSION"
		}
		return "n/a", ""
	}
	delta := (newV - oldV) / oldV
	if dir != 0 && float64(dir)*-delta > tol {
		note = "  REGRESSION"
	}
	return fmt.Sprintf("%+8.1f%%", 100*delta), note
}
