// Command deadload is the deterministic load generator for deadd: it
// fires a seeded mix of profile, predictor-evaluation, and experiment
// requests at a running daemon, spreads them over client tokens so the
// fair queue has something to arbitrate, honors 429 Retry-After
// backpressure, and prints a JSON report. A nonzero exit means the run
// saw invalid responses (or, with -strict, any failed request).
//
// Usage:
//
//	deadload [-addr url] [-n requests] [-c concurrency] [-clients n]
//	         [-mix kinds] [-burst n] [-stream] [-timeout d] [-seed n]
//	         [-strict]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7311", "deadd base URL")
	n := flag.Int("n", 30, "total requests")
	c := flag.Int("c", 4, "concurrent requests")
	clients := flag.Int("clients", 0, "distinct client tokens (0 = one per concurrency slot)")
	mix := flag.String("mix", "", "comma-separated request kinds: profile,predeval,experiment (empty = all)")
	burst := flag.Int("burst", 1, "repeat each planned request this many consecutive times (duplicate bursts exercise the daemon's request coalescing)")
	stream := flag.Bool("stream", false, "request ?stream=1 chunked progress responses")
	timeout := flag.Duration("timeout", time.Minute, "per-request timeout, passed as ?timeout= (0 = none)")
	seed := flag.Uint64("seed", 1, "seed for the deterministic request sequence")
	strict := flag.Bool("strict", false, "exit nonzero if any request failed, not just on invalid responses")
	flag.Parse()

	var kinds []string
	if *mix != "" {
		for _, k := range strings.Split(*mix, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds = append(kinds, k)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := server.RunLoad(ctx, *addr, server.LoadConfig{
		Requests:    *n,
		Concurrency: *c,
		Clients:     *clients,
		Mix:         kinds,
		Burst:       *burst,
		Stream:      *stream,
		Timeout:     *timeout,
		Seed:        *seed,
	})
	if err != nil && rep == nil {
		fmt.Fprintln(os.Stderr, "deadload:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deadload:", err)
	}
	switch {
	case rep.Invalid > 0 || rep.ShedNoHint > 0:
		os.Exit(1)
	case *strict && rep.Failed > 0:
		os.Exit(1)
	}
}
