// Command workgen materializes a synthetic suite benchmark as r64
// assembly source, so the generated programs can be inspected, archived,
// or fed back through cmd/r64asm.
//
// Usage:
//
//	workgen -bench gcc                  # print assembly to stdout
//	workgen -bench gcc -o gcc.s         # write to a file
//	workgen -bench gcc -hoist 0         # compile without the scheduler
//	workgen -list                       # list suite benchmarks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	out := flag.String("o", "", "output file (default stdout)")
	hoist := flag.Int("hoist", -1, "override scheduler hoisting limit (-1 = profile default)")
	licm := flag.Int("licm", -1, "override LICM limit (-1 = profile default)")
	regs := flag.Int("regs", -1, "override allocatable registers (-1 = profile default)")
	list := flag.Bool("list", false, "list suite benchmarks")
	flag.Parse()

	if *list {
		for _, p := range workload.Suite() {
			fmt.Printf("%-8s seed=%d nests=%d iters=%d diamonds=%.2f mem=%.2f\n",
				p.Name, p.Seed, p.LoopNests, p.OuterIters, p.DiamondProb, p.MemProb)
		}
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := prof.Opts
	if *hoist >= 0 {
		opts.MaxHoist = *hoist
	}
	if *licm >= 0 {
		opts.MaxLICM = *licm
	}
	if *regs >= 0 {
		opts.NumRegs = *regs
	}
	prog, st, err := prof.Compile(&opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	src := fmt.Sprintf("# %s: %d instructions, %d hoisted, %d LICM, %d spilled vregs\n%s",
		prof.Name, len(prog.Insts), st.Hoisted, st.LICMMoved, st.Spilled, asm.Format(prog))
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d instructions)\n", *out, len(prog.Insts))
}
