// Command deadprof prints the trace-level deadness profile of one
// benchmark or the whole suite: dead-instruction fraction, first-level vs
// transitive breakdown, per-cause attribution, and static locality.
// Profiles build concurrently through a bounded pool; rows print in suite
// order regardless of -j.
//
// Usage:
//
//	deadprof [-bench name] [-n budget] [-hoist n] [-licm n] [-regs n]
//	         [-locality] [-mix] [-j workers]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/deadness"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: whole suite)")
	budget := flag.Int("n", 1_000_000, "dynamic instruction budget")
	hoist := flag.Int("hoist", -1, "override scheduler hoisting limit (-1 = profile default)")
	licm := flag.Int("licm", -1, "override LICM limit (-1 = profile default)")
	regs := flag.Int("regs", -1, "override allocatable registers (-1 = profile default)")
	locality := flag.Bool("locality", false, "print static locality details")
	mix := flag.Bool("mix", false, "print the dynamic instruction-class mix instead")
	workers := flag.Int("j", 0, "max concurrently building profiles (0 = GOMAXPROCS)")
	analyzeShards := flag.Int("analyze-shards", 0, "analyze-stage shard count (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the profiling runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	profiles := workload.Suite()
	if *bench != "" {
		p, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profiles = []workload.Profile{p}
	}

	// Compiler-option overrides make these profiles distinct from the
	// workspace defaults, so build them directly through a bounded pool
	// (no memo to share) and render sequentially from the indexed results.
	stopCPU, err := metrics.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pool := core.NewPool(*workers)
	results := make([]*core.ProfileResult, len(profiles))
	err = pool.ForEach(context.Background(), len(profiles), func(i int) error {
		p := profiles[i]
		opts := p.Opts
		if *hoist >= 0 {
			opts.MaxHoist = *hoist
		}
		if *licm >= 0 {
			opts.MaxLICM = *licm
		}
		if *regs >= 0 {
			opts.NumRegs = *regs
		}
		res, err := core.ProfileShards(p, &opts, *budget, *analyzeShards)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		results[i] = res
		return nil
	})
	stopCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := metrics.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	if *mix {
		printMix(profiles, results)
		return
	}

	tb := stats.NewTable("bench", "dyn", "dead%", "first%", "trans%",
		"alu", "loads", "stores", "hoist-dead", "spill-dead", "statics")
	for i, p := range profiles {
		res := results[i]
		s := res.Summary
		tb.AddRow(p.Name,
			fmt.Sprint(s.Total),
			stats.Pct(s.DeadFraction()),
			stats.Pct(frac(s.FirstLevel, s.Dead)),
			stats.Pct(frac(s.Transitive, s.Dead)),
			fmt.Sprint(s.DeadALU),
			fmt.Sprint(s.DeadLoads),
			fmt.Sprint(s.DeadStores),
			fmt.Sprint(s.ByProv[program.ProvHoisted].Dead),
			fmt.Sprint(s.ByProv[program.ProvSpill].Dead+s.ByProv[program.ProvReload].Dead),
			fmt.Sprint(res.Locality.DeadStatics),
		)
		if *locality {
			fmt.Printf("%s locality: %d dead statics, %.1f%% of dead from partially dead statics\n",
				p.Name, res.Locality.DeadStatics, 100*res.Locality.DeadFromPartial)
			for i, pt := range res.Locality.CoveragePoints {
				fmt.Printf("  top %4d statics cover %.1f%% of dead instances\n",
					pt, 100*res.Locality.CoverageAt[i])
			}
		}
	}
	fmt.Print(tb)
}

// printMix emits the suite characterization table: dynamic instruction
// class distribution and branch behaviour.
func printMix(profiles []workload.Profile, results []*core.ProfileResult) {
	tb := stats.NewTable("bench", "dyn", "alu%", "muldiv%", "load%", "store%",
		"branch%", "taken%", "jump%")
	for i, p := range profiles {
		m := deadness.ComputeMix(results[i].Trace)
		tb.AddRow(p.Name, fmt.Sprint(m.Total),
			stats.Pct(m.Fraction(m.ALU)), stats.Pct(m.Fraction(m.MulDiv)),
			stats.Pct(m.Fraction(m.Loads)), stats.Pct(m.Fraction(m.Stores)),
			stats.Pct(m.Fraction(m.Branches)), stats.Pct(m.TakenRate()),
			stats.Pct(m.Fraction(m.Jumps)))
	}
	fmt.Print(tb)
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
