// Command deadprof prints the trace-level deadness profile of one
// benchmark or the whole suite: dead-instruction fraction, first-level vs
// transitive breakdown, per-cause attribution, and static locality.
// Profiles build concurrently through a workspace pool; rows print in
// suite order regardless of -j.
//
// Profiles derive through the workspace's content-addressed artifact
// cache: -cache-budget bounds its resident bytes, -cache-dir attaches a
// persistent disk tier shared across runs and processes, and
// -remote-cache attaches a warm deadd daemon as a third tier (lookup
// order: memory, disk, remote, build), so a repeated invocation loads
// its profiles instead of re-emulating (use -artifacts to see the
// hit/miss/disk/remote counters proving it).
//
// Usage:
//
//	deadprof [-bench name] [-n budget] [-hoist n] [-licm n] [-regs n]
//	         [-locality] [-mix] [-j workers] [-cache-budget bytes]
//	         [-cache-dir dir] [-disk-budget bytes] [-remote-cache url]
//	         [-artifacts]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/deadness"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchRow is the plain data one benchmark contributes to the tables,
// captured while its profile is pinned so no row render touches an
// evictable trace.
type benchRow struct {
	summary  deadness.Summary
	locality deadness.Locality
	mix      deadness.Mix
}

func main() {
	bench := flag.String("bench", "", "benchmark name (default: whole suite)")
	hoist := flag.Int("hoist", -1, "override scheduler hoisting limit (-1 = profile default)")
	licm := flag.Int("licm", -1, "override LICM limit (-1 = profile default)")
	regs := flag.Int("regs", -1, "override allocatable registers (-1 = profile default)")
	locality := flag.Bool("locality", false, "print static locality details")
	mix := flag.Bool("mix", false, "print the dynamic instruction-class mix instead")
	wsFlags := cliflags.RegisterWorkspace(flag.CommandLine, "deadprof")
	artStats := flag.Bool("artifacts", false, "print the artifact-cache counter snapshot (JSON) to stderr at exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the profiling runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	profiles := workload.Suite()
	if *bench != "" {
		p, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profiles = []workload.Profile{p}
	}

	w, err := wsFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := cliflags.ArmFaults(nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	stopCPU, err := metrics.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	needMix := *mix
	rows := make([]benchRow, len(profiles))
	err = w.Pool().ForEach(context.Background(), len(profiles), func(i int) error {
		p := profiles[i]
		// No override leaves opts nil, so the profile artifact (in memory
		// and on disk) is the same one deadsim and experiments derive.
		var opts *compiler.Options
		if *hoist >= 0 || *licm >= 0 || *regs >= 0 {
			o := p.Opts
			if *hoist >= 0 {
				o.MaxHoist = *hoist
			}
			if *licm >= 0 {
				o.MaxLICM = *licm
			}
			if *regs >= 0 {
				o.NumRegs = *regs
			}
			opts = &o
		}
		err := w.WithProfileOptions(p.Name, opts, func(res *core.ProfileResult) error {
			rows[i] = benchRow{summary: res.Summary, locality: res.Locality}
			if needMix {
				rows[i].mix = deadness.ComputeMix(res.Trace)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		return nil
	})
	stopCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := metrics.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()
	if *artStats {
		defer func() {
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			enc.Encode(w.ArtifactStats())
		}()
	}

	if *mix {
		printMix(profiles, rows)
		return
	}

	tb := stats.NewTable("bench", "dyn", "dead%", "first%", "trans%",
		"alu", "loads", "stores", "hoist-dead", "spill-dead", "statics")
	for i, p := range profiles {
		s := rows[i].summary
		loc := rows[i].locality
		tb.AddRow(p.Name,
			fmt.Sprint(s.Total),
			stats.Pct(s.DeadFraction()),
			stats.Pct(frac(s.FirstLevel, s.Dead)),
			stats.Pct(frac(s.Transitive, s.Dead)),
			fmt.Sprint(s.DeadALU),
			fmt.Sprint(s.DeadLoads),
			fmt.Sprint(s.DeadStores),
			fmt.Sprint(s.ByProv[program.ProvHoisted].Dead),
			fmt.Sprint(s.ByProv[program.ProvSpill].Dead+s.ByProv[program.ProvReload].Dead),
			fmt.Sprint(loc.DeadStatics),
		)
		if *locality {
			fmt.Printf("%s locality: %d dead statics, %.1f%% of dead from partially dead statics\n",
				p.Name, loc.DeadStatics, 100*loc.DeadFromPartial)
			for i, pt := range loc.CoveragePoints {
				fmt.Printf("  top %4d statics cover %.1f%% of dead instances\n",
					pt, 100*loc.CoverageAt[i])
			}
		}
	}
	fmt.Print(tb)
}

// printMix emits the suite characterization table: dynamic instruction
// class distribution and branch behaviour.
func printMix(profiles []workload.Profile, rows []benchRow) {
	tb := stats.NewTable("bench", "dyn", "alu%", "muldiv%", "load%", "store%",
		"branch%", "taken%", "jump%")
	for i, p := range profiles {
		m := rows[i].mix
		tb.AddRow(p.Name, fmt.Sprint(m.Total),
			stats.Pct(m.Fraction(m.ALU)), stats.Pct(m.Fraction(m.MulDiv)),
			stats.Pct(m.Fraction(m.Loads)), stats.Pct(m.Fraction(m.Stores)),
			stats.Pct(m.Fraction(m.Branches)), stats.Pct(m.TakenRate()),
			stats.Pct(m.Fraction(m.Jumps)))
	}
	fmt.Print(tb)
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
