// Command deadsim runs the cycle-level out-of-order pipeline over one
// benchmark (or the whole suite) and reports timing and resource
// utilization, with dead-instruction elimination off, on, or both.
// Independent (benchmark, elim-mode) runs execute concurrently through
// the workspace pool; rows print in suite order regardless of -j.
//
// Usage:
//
//	deadsim [-bench name] [-n budget] [-machine baseline|contended|deep]
//	        [-regs n] [-elim off|on|both] [-clusters 1|2] [-steer predictor]
//	        [-j workers] [-cache-budget bytes] [-cache-dir dir]
//	        [-disk-budget bytes] [-remote-cache url] [-v]
//
// -clusters 2 reorganizes the selected machine as a full-width cluster
// plus a single-issue narrow cluster fed by the ineffectuality steering
// predictor (-steer names it; see experiments E19-E21), and the table
// gains per-cluster commit and steering columns.
//
// Profiles and machine runs derive through the workspace's
// content-addressed artifact cache; -cache-budget bounds its resident
// bytes, -cache-dir attaches a persistent disk tier shared across runs
// and processes (bounded by -disk-budget), and -remote-cache attaches a
// warm deadd daemon as a third tier (lookup order: memory, disk, remote,
// build), so repeated invocations load artifacts instead of recomputing
// them. The -v run summary includes the per-kind cache, disk-tier, and
// remote-tier counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: whole suite)")
	machine := flag.String("machine", "contended", "baseline, contended, or deep")
	regs := flag.Int("regs", 0, "override physical register count")
	elim := flag.String("elim", "both", "off, on, or both")
	clusters := flag.Int("clusters", 1, "execution clusters: 1 (classic) or 2 (steered narrow cluster)")
	steer := flag.String("steer", "", "steering direction predictor for -clusters 2 (default "+pipeline.SteerDirDefault+")")
	wsFlags := cliflags.RegisterWorkspace(flag.CommandLine, "deadsim")
	verbose := flag.Bool("v", false, "print per-phase progress lines and a run summary to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulations to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	var cfg pipeline.Config
	switch *machine {
	case "baseline":
		cfg = pipeline.BaselineConfig()
	case "contended":
		cfg = pipeline.ContendedConfig()
	case "deep":
		cfg = pipeline.DeepMemoryConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(1)
	}
	if *regs > 0 {
		cfg.PhysRegs = *regs
	}
	if *clusters == 2 {
		cfg.Clusters = 2
		cfg.NarrowIssueWidth = 1
		cfg.NarrowALUs = 1
		cfg.SteerDir = *steer
	} else if *clusters != 1 || *steer != "" {
		if *clusters != 1 {
			fmt.Fprintf(os.Stderr, "unsupported cluster count %d (1 or 2)\n", *clusters)
		} else {
			fmt.Fprintln(os.Stderr, "-steer requires -clusters 2")
		}
		os.Exit(1)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	names := core.SuiteNames()
	if *bench != "" {
		if _, err := workload.ByName(*bench); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		names = []string{*bench}
	}

	w, err := wsFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mc := metrics.New()
	if *verbose {
		mc.SetVerbose(os.Stderr)
	}
	w.Metrics = mc
	if _, err := cliflags.ArmFaults(mc, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// One task per (benchmark, elim-mode) pair, fanned through the pool;
	// results land by index so the table stays in suite order.
	type task struct {
		name string
		mode string
		cfg  pipeline.Config
	}
	var tasks []task
	for _, name := range names {
		if *elim == "off" || *elim == "both" {
			tasks = append(tasks, task{name, "off", cfg})
		}
		if *elim == "on" || *elim == "both" {
			c := cfg
			c.Elim = true
			tasks = append(tasks, task{name, "on", c})
		}
	}
	if len(tasks) == 0 {
		fmt.Fprintf(os.Stderr, "unknown elim mode %q\n", *elim)
		os.Exit(1)
	}

	stopCPU, err := metrics.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	results := make([]pipeline.Stats, len(tasks))
	err = w.Pool().ForEach(context.Background(), len(tasks), func(i int) error {
		st, err := w.RunMachine(tasks[i].name, tasks[i].cfg)
		results[i] = st
		return err
	})
	stopCPU()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cols := []string{"bench", "elim", "IPC", "cycles", "allocs", "rf-reads",
		"rf-writes", "dcache", "eliminated", "recoveries", "freelist-stall"}
	if *clusters == 2 {
		cols = append(cols, "narrow", "narrow-IPC", "steer-misp")
	}
	tb := stats.NewTable(cols...)
	for i, tk := range tasks {
		st := results[i]
		row := []string{tk.name, tk.mode,
			fmt.Sprintf("%.3f", st.IPC()), fmt.Sprint(st.Cycles),
			fmt.Sprint(st.PhysAllocs), fmt.Sprint(st.RFReads), fmt.Sprint(st.RFWrites),
			fmt.Sprint(st.Cache.Accesses), fmt.Sprint(st.Eliminated),
			fmt.Sprint(st.DeadMispredicts), fmt.Sprint(st.StallFreeList)}
		if *clusters == 2 {
			row = append(row, fmt.Sprint(st.ClusterCommitted[1]),
				fmt.Sprintf("%.3f", st.ClusterIPC(1)), fmt.Sprint(st.SteerMispredicts))
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb)

	if *verbose {
		mc.RecordMemStats()
		fmt.Fprintf(os.Stderr, "\n--- run summary (%d workers) ---\n", w.Pool().Workers())
		mc.WriteText(os.Stderr)
	}
	if err := metrics.WriteHeapProfile(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
