// Command deadsim runs the cycle-level out-of-order pipeline over one
// benchmark (or the whole suite) and reports timing and resource
// utilization, with dead-instruction elimination off, on, or both.
//
// Usage:
//
//	deadsim [-bench name] [-n budget] [-machine baseline|contended]
//	        [-regs n] [-elim off|on|both]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (default: whole suite)")
	budget := flag.Int("n", core.DefaultBudget, "dynamic instruction budget")
	machine := flag.String("machine", "contended", "baseline, contended, or deep")
	regs := flag.Int("regs", 0, "override physical register count")
	elim := flag.String("elim", "both", "off, on, or both")
	flag.Parse()

	var cfg pipeline.Config
	switch *machine {
	case "baseline":
		cfg = pipeline.BaselineConfig()
	case "contended":
		cfg = pipeline.ContendedConfig()
	case "deep":
		cfg = pipeline.DeepMemoryConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(1)
	}
	if *regs > 0 {
		cfg.PhysRegs = *regs
	}

	names := core.SuiteNames()
	if *bench != "" {
		if _, err := workload.ByName(*bench); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		names = []string{*bench}
	}

	w := core.NewWorkspace(*budget)
	tb := stats.NewTable("bench", "elim", "IPC", "cycles", "allocs", "rf-reads",
		"rf-writes", "dcache", "eliminated", "recoveries", "freelist-stall")
	addRow := func(name, mode string, st pipeline.Stats) {
		tb.AddRow(name, mode,
			fmt.Sprintf("%.3f", st.IPC()), fmt.Sprint(st.Cycles),
			fmt.Sprint(st.PhysAllocs), fmt.Sprint(st.RFReads), fmt.Sprint(st.RFWrites),
			fmt.Sprint(st.Cache.Accesses), fmt.Sprint(st.Eliminated),
			fmt.Sprint(st.DeadMispredicts), fmt.Sprint(st.StallFreeList))
	}
	for _, name := range names {
		if *elim == "off" || *elim == "both" {
			st, err := w.RunMachine(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			addRow(name, "off", st)
		}
		if *elim == "on" || *elim == "both" {
			c := cfg
			c.Elim = true
			st, err := w.RunMachine(name, c)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			addRow(name, "on", st)
		}
	}
	fmt.Print(tb)
}
