// Command deadd is the experiment service daemon: a long-lived HTTP+JSON
// server over a shared workspace, serving experiment, predictor-
// evaluation, and profile queries with admission control, backpressure,
// and graceful degradation (see internal/server).
//
// Usage:
//
//	deadd [-addr host:port] [-queue n] [-request-timeout d] [-max-timeout d]
//	      [-retries n] [-drain-timeout d] [-n budget] [-j workers]
//	      [-analyze-shards n] [-cache-budget bytes] [-cache-dir dir]
//	      [-disk-budget bytes] [-remote-cache url] [-v]
//
// Endpoints: GET /healthz, /readyz, /metricz; POST /v1/experiment,
// /v1/experiments, /v1/predeval, /v1/profile — all POST endpoints accept
// ?timeout= per-request deadlines and ?stream=1 chunked NDJSON progress.
// GET and PUT /v1/artifact/{kind}/{digest} transfer encoded artifacts
// (CRC-framed), so a peer workspace started with -remote-cache pointed
// here warm-starts from this daemon's cache instead of rebuilding.
// Identical pending POST requests coalesce into a single execution;
// requests beyond the worker and queue capacity are shed with 429 +
// Retry-After; queued requests are granted round-robin across client
// tokens (X-Client-Token header).
//
// On SIGTERM/SIGINT the daemon drains: readiness flips to 503, new work
// is rejected, in-flight work finishes (or is cancelled at
// -drain-timeout), resident artifacts spill to the -cache-dir disk tier,
// and a final JSON metrics dump ({"run": ..., "artifacts": ...}) goes to
// stdout before a zero exit. The FAULTS / FAULTS_SEED environment
// variables arm the fault injector (sites server.accept and
// server.handle belong to the daemon); malformed rules abort startup.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7311", "listen address")
	queue := flag.Int("queue", 16, "admission queue depth (waiting requests beyond the workers; 0 = shed when all workers busy)")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "default per-request execution deadline (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "clamp on client-requested ?timeout= deadlines (0 = no clamp)")
	retries := flag.Int("retries", 3, "attempts per request; transient failures retry with backoff")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long graceful drain waits for in-flight work before cancelling it")
	wsFlags := cliflags.RegisterWorkspace(flag.CommandLine, "deadd")
	verbose := flag.Bool("v", false, "tee per-phase engine progress lines to stderr")
	flag.Parse()

	w, err := wsFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Partial-results mode: a multi-experiment request reports failures
	// per experiment instead of failing the whole request.
	w.KeepGoing = true
	mc := metrics.New()
	w.Metrics = mc

	if _, err := cliflags.ArmFaults(mc, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	retry := core.RetryPolicy{}
	if *retries > 1 {
		retry = core.DefaultRetryPolicy()
		retry.MaxAttempts = *retries
	}
	cfg := server.Config{
		Workspace:      w,
		QueueDepth:     *queue,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		Retry:          retry,
		Metrics:        mc,
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	s := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deadd:", err)
		return 2
	}
	hs := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "deadd: serving on http://%s (workers=%d queue=%d)\n",
		ln.Addr(), w.Pool().Workers(), *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "deadd: %v: draining (timeout %s)\n", got, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "deadd:", err)
		return 1
	}

	// Graceful drain: readiness flips first so load balancers stop
	// routing, then in-flight work finishes or is deadline-cancelled,
	// then resident artifacts spill to the disk tier.
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	forced := s.Drain(dctx)
	hs.Shutdown(context.Background())
	if forced != nil {
		fmt.Fprintf(os.Stderr, "deadd: drain deadline passed, cancelled in-flight work: %v\n", forced)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "deadd:", err)
	}

	mc.RecordMemStats()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Run       metrics.Summary `json:"run"`
		Artifacts artifact.Stats  `json:"artifacts"`
	}{mc.Summary(), w.ArtifactStats()})
	return 0
}
