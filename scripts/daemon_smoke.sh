#!/usr/bin/env bash
# Daemon smoke: build deadd + deadload + deadprof, start the daemon with
# a temporary persistent cache, run a load burst against it, run one E19
# ineffectuality experiment through the experiment endpoint, warm-start a
# second process from the daemon's cache over HTTP, SIGTERM the daemon,
# and assert (1) E19 dispatches and returns a non-error result, (2) a
# remote warm start that rebuilt nothing (profile-kind misses == 0,
# remote hits recorded), (3) a zero exit after graceful drain, and (4) a
# non-zero artifact disk-write count in the final metrics dump — proving
# the drain-time spill to the disk tier ran.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${DEADD_ADDR:-127.0.0.1:7391}"
BUDGET="${DEADD_BUDGET:-60000}"
REQUESTS="${DEADLOAD_N:-12}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/deadd" ./cmd/deadd
go build -o "$WORK/deadload" ./cmd/deadload
go build -o "$WORK/deadprof" ./cmd/deadprof

"$WORK/deadd" -addr "$ADDR" -n "$BUDGET" -cache-dir "$WORK/cache" \
    >"$WORK/deadd.out" 2>"$WORK/deadd.err" &
DEADD_PID=$!

# Wait for readiness (the daemon binds before serving, so this is quick).
ready=0
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.2
done
if [ "$ready" != 1 ]; then
    echo "daemon_smoke: deadd never became ready" >&2
    cat "$WORK/deadd.err" >&2
    kill "$DEADD_PID" 2>/dev/null || true
    exit 1
fi

"$WORK/deadload" -addr "http://$ADDR" -n "$REQUESTS" -c 4 -seed 3 -strict

# Ineffectuality experiment over the real process boundary: E19 must
# dispatch through the daemon's experiment endpoint and come back with a
# rendered result, not an error.
e19="$(curl -fsS -X POST -d '{"id":"e19"}' "http://$ADDR/v1/experiment")"
if ! echo "$e19" | grep -q '"e19"'; then
    echo "daemon_smoke: E19 response missing experiment id:" >&2
    echo "$e19" >&2
    exit 1
fi
if echo "$e19" | grep -q '"error"'; then
    echo "daemon_smoke: E19 returned an error:" >&2
    echo "$e19" >&2
    exit 1
fi

# Remote warm start: make sure the daemon holds gzip's profile, then run
# deadprof as a second process with the daemon as its remote artifact
# tier and the same budget (profile keys include it). The profile must
# arrive over HTTP — zero profile-kind builds, at least one remote hit.
curl -fsS -X POST -d '{"bench":"gzip"}' "http://$ADDR/v1/profile" >/dev/null
"$WORK/deadprof" -bench gzip -n "$BUDGET" -remote-cache "http://$ADDR" \
    -artifacts >"$WORK/deadprof.out" 2>"$WORK/deadprof.err"
prof_block="$(sed -n '/"profile": {/,/}/p' "$WORK/deadprof.err")"
if ! echo "$prof_block" | grep -q '"misses": 0'; then
    echo "daemon_smoke: remote warm start rebuilt the profile:" >&2
    cat "$WORK/deadprof.err" >&2
    exit 1
fi
if ! echo "$prof_block" | grep -Eq '"remote_hits": [1-9]'; then
    echo "daemon_smoke: remote warm start recorded no remote hits:" >&2
    cat "$WORK/deadprof.err" >&2
    exit 1
fi

kill -TERM "$DEADD_PID"
status=0
wait "$DEADD_PID" || status=$?
if [ "$status" != 0 ]; then
    echo "daemon_smoke: deadd exited $status after SIGTERM, want 0" >&2
    cat "$WORK/deadd.err" >&2
    exit 1
fi

# The final dump must record artifact disk writes (write-through during
# the run plus the drain-time spill).
if ! grep -Eq '"disk_writes": *[1-9]' "$WORK/deadd.out"; then
    echo "daemon_smoke: no artifact disk writes in the final metrics dump:" >&2
    cat "$WORK/deadd.out" >&2
    exit 1
fi

echo "daemon_smoke: OK (E19 via daemon, remote warm start, exit 0 after drain, disk writes recorded)"
