GO ?= go

.PHONY: build test vet race bench bench-compare bench-all check fuzz chaos soak smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race-detector runs multiply wall time 10-20x; on a slow or
# single-core host internal/core can exceed go test's default 10m
# per-package timeout, so give it explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (which includes the concurrent-vs-sequential engine test).
check: vet race

# fuzz runs the untrusted-input fuzz targets for a short budget each:
# trace deserialization and assembler parsing. CI runs this non-gating;
# raise FUZZTIME for local soaking.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz '^FuzzTraceLoad$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -fuzz '^FuzzAsmParse$$' -fuzztime $(FUZZTIME) ./internal/asm

# chaos runs the fault-injection soak on its own under the race detector.
chaos:
	$(GO) test -race -timeout 30m -run '^TestChaosSoak$$' -v ./internal/core

# soak runs the daemon chaos soak: the full HTTP service path (admission,
# backpressure, retries, drain) under injected faults, with completed
# responses held bit-identical to a clean direct run.
soak:
	$(GO) test -race -timeout 30m -run '^TestServerChaosSoak$$' -v ./internal/server

# smoke starts a real deadd with a temp persistent cache, drives it with
# deadload, SIGTERMs it, and asserts a clean drain (exit 0) that spilled
# artifacts to disk.
smoke:
	./scripts/daemon_smoke.sh

# SUBSTRATE_BENCHES are the per-substrate throughput benchmarks tracked in
# the committed BENCH_*.json reports: emulator, fused oracle (plus its
# legacy two-pass comparison and the ineffectuality-dense variant), the
# analyze shard-count sweep, pipeline timing model (single-cluster and
# two-cluster steered), trace serialization round trips, the persistent
# artifact tier's cold/warm comparison, the service tier's
# request-coalescing burst comparison, and the full experiment engine.
SUBSTRATE_BENCHES = ^(BenchmarkEmulator|BenchmarkCollectAnalyzed|BenchmarkDeadnessOracle|BenchmarkDeadnessOracleLegacy|BenchmarkIneffAnalysis|BenchmarkAnalyzeShards|BenchmarkPipeline|BenchmarkClusteredPipeline|BenchmarkTraceSaveLoad|BenchmarkProfileDiskCache|BenchmarkCoalescedLoad|BenchmarkEngineAllExperiments)$$

# BENCH_BASELINE is the committed report that bench-compare diffs against;
# BENCH_TOL is the relative regression tolerance (benchmarks vary with
# host hardware, so keep it loose).
BENCH_BASELINE ?= BENCH_10.json
BENCH_TOL ?= 0.25

# bench regenerates $(BENCH_BASELINE) from the substrate benchmarks (with
# -benchmem, so allocation counts are tracked alongside throughput).
bench:
	$(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCHES)' -benchmem . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCH_BASELINE)

# bench-compare reruns the substrate benchmarks and diffs them against the
# committed baseline without overwriting it: every shared metric prints
# old/new/delta, and a metric more than $(BENCH_TOL) worse flags a
# regression (nonzero exit). CI runs this non-gating.
bench-compare:
	$(GO) test -run '^$$' -bench '$(SUBSTRATE_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -tol $(BENCH_TOL)

# bench-all runs every benchmark once, as a smoke test.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
