GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (which includes the concurrent-vs-sequential engine test).
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x ./...
