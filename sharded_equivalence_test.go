// Sharded-vs-serial equivalence guard: the sharded analyze pass
// (deadness.LinkAndAnalyzeSharded and the streaming scheduler behind
// emu.CollectAnalyzedShards) must reproduce the serial fused pass — and
// therefore the seed's []Record reference — bit for bit: every producer
// link, every Analysis fact, for every shard count and every
// chunk-boundary shape, including traces truncated exactly on a chunk
// boundary. Run under -race this also exercises the shard scheduler's
// ownership discipline (disjoint fact ranges, channel handoff, join).
package repro_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// shardCounts is the sweep the issue pins: serial-equivalent single
// shard, the smallest true split, one per CPU, and more shards than the
// trace has chunks.
func shardCounts(tr *trace.Trace) []int {
	return []int{1, 2, runtime.NumCPU(), tr.NumChunks() + 7}
}

func TestShardedAnalysisMatchesSerial(t *testing.T) {
	const budget = 120_000
	for _, prof := range workload.Suite() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			raw, recs := collectRaw(t, prof, budget)
			if err := refLink(recs); err != nil {
				t.Fatal(err)
			}
			ref := refAnalyze(recs)

			for _, shards := range shardCounts(raw) {
				tr := raw.Clone()
				a, err := deadness.LinkAndAnalyzeSharded(tr, shards)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstRef(t, "sharded/"+itoa(shards), tr, a, recs, ref)
			}

			// Streaming scheduler path: chunks dispatched to shard workers
			// while the emulator is still producing.
			prog, _, err := prof.Compile(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3} {
				tr, a, _, err := emu.CollectAnalyzedShards(prog, budget, shards)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstRef(t, "stream-sharded/"+itoa(shards), tr, a, recs, ref)
				tr.Release()
			}
		})
	}
}

// TestShardedChunkBoundaryShapes sweeps synthetic traces whose lengths
// straddle every chunk-layout edge — in particular lengths that are exact
// chunk multiples, so a truncated trace's cut lands precisely on a chunk
// (and shard) boundary — against the reference, for several shard counts.
func TestShardedChunkBoundaryShapes(t *testing.T) {
	const cs = trace.ChunkSize
	lengths := []int{1, 2, cs - 1, cs, cs + 1, 2 * cs, 2*cs + 1, 3*cs + cs/3}
	for _, n := range lengths {
		for _, halted := range []bool{false, true} {
			name := "trunc"
			if halted {
				name = "halt"
			}
			t.Run(name+"/"+itoa(n), func(t *testing.T) {
				recs := synthRecords(n, halted)
				ref := append([]trace.Record(nil), recs...)
				if err := refLink(ref); err != nil {
					t.Fatal(err)
				}
				refA := refAnalyze(ref)

				for _, shards := range []int{1, 2, 3, 64} {
					tr := trace.FromRecords(recs)
					a, err := deadness.LinkAndAnalyzeSharded(tr, shards)
					if err != nil {
						t.Fatal(err)
					}
					checkAgainstRef(t, "sharded/"+itoa(shards), tr, a, ref, refA)

					// Pin the unresolved→n sentinel rewrite directly: the
					// internal sentinel is 0, no real resolve point can be
					// 0 (a resolver strictly follows its producer), and
					// end-of-trace resolution must surface as exactly n.
					sawEnd := false
					for seq, r := range a.Resolve {
						if r == 0 {
							t.Fatalf("shards=%d: seq %d: unresolved sentinel leaked", shards, seq)
						}
						if r == int32(n) {
							sawEnd = true
						}
					}
					if n > 0 && !sawEnd {
						t.Errorf("shards=%d: no record resolved at the trace end", shards)
					}
				}
			})
		}
	}
}

// TestShardedStreamLifecycleUnderFaults is the chaos regression for the
// stream teardown paths: with per-instruction faults injected at
// emu.step, both the serial in-line path and the sharded scheduler must
// release their pooled resources (writer-map pages, chunk arenas) on
// every abort, and a clean run afterwards must still match the
// fault-free analysis bit for bit. Run under -race this catches leaked
// worker goroutines touching freed state.
func TestShardedStreamLifecycleUnderFaults(t *testing.T) {
	prof := workload.Suite()[0]
	prog, _, err := prof.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 60_000

	// Fault-free reference run.
	cleanTr, clean, _, err := emu.CollectAnalyzedShards(prog, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanTr.Release()

	for _, shards := range []int{1, 2, 4} {
		aborted := 0
		for seed := uint64(1); seed <= 12; seed++ {
			in := faults.NewInjector(seed).
				Arm(faults.SiteEmuStep, faults.Rule{Kind: faults.Permanent, Rate: 0.0002, Max: 1})
			faults.Set(in)
			tr, a, _, err := emu.CollectAnalyzedShards(prog, budget, shards)
			faults.Set(nil)
			if err != nil {
				aborted++
				if tr != nil || a != nil {
					t.Fatalf("shards=%d seed=%d: non-nil results alongside error %v", shards, seed, err)
				}
				continue
			}
			// The injector's schedule let this run finish: it must be
			// indistinguishable from the fault-free run.
			if a.Candidates() != clean.Candidates() || tr.Len() != cleanTr.Len() {
				t.Fatalf("shards=%d seed=%d: clean run diverged after faults", shards, seed)
			}
			tr.Release()
		}
		if aborted == 0 {
			t.Fatalf("shards=%d: injector never fired; chaos test is vacuous", shards)
		}

		// After every abort, pooled state must be intact: a fresh run
		// still produces the exact fault-free analysis.
		tr, a, _, err := emu.CollectAnalyzedShards(prog, budget, shards)
		if err != nil {
			t.Fatalf("shards=%d: post-chaos run: %v", shards, err)
		}
		for seq := 0; seq < tr.Len(); seq++ {
			if a.Kind[seq] != clean.Kind[seq] || a.Resolve[seq] != clean.Resolve[seq] ||
				a.EverRead[seq] != clean.EverRead[seq] || a.Candidate[seq] != clean.Candidate[seq] {
				t.Fatalf("shards=%d: post-chaos analysis diverges at seq %d", shards, seq)
			}
		}
		tr.Release()
	}
}

// TestShardedStreamLifecycleUnderCancellation is the companion regression
// to the fault-injection lifecycle test above, for the other way a stream
// dies early: the caller's context is cancelled mid-collection (a daemon
// client disconnecting). The abort must surface context.Canceled with nil
// results, release every pooled resource the partial run held (trace
// chunk arenas, writer-map pages), and leave the pools intact — a clean
// run afterwards must match the fault-free analysis bit for bit.
func TestShardedStreamLifecycleUnderCancellation(t *testing.T) {
	prof := workload.Suite()[0]
	prog, _, err := prof.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 60_000

	// Fault-free reference run.
	cleanTr, clean, _, err := emu.CollectAnalyzedShardsCtx(context.Background(), prog, budget, 1, nil, prof.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanTr.Release()

	for _, shards := range []int{1, 2, 4} {
		aborted := 0
		// Sweep cancellation points from "before the first instruction"
		// up through mid-emulation; wall-clock delays make individual
		// trials nondeterministic, so the assertions only distinguish
		// "aborted cleanly" from "completed identically".
		// The -1 sentinel cancels before the call even starts — the one
		// trial guaranteed to abort however fast the collection runs.
		delays := []time.Duration{-1, 0, 20 * time.Microsecond, 100 * time.Microsecond,
			500 * time.Microsecond, 2 * time.Millisecond}
		for _, d := range delays {
			ctx, cancel := context.WithCancel(context.Background())
			var timer *time.Timer
			if d < 0 {
				cancel()
			} else {
				timer = time.AfterFunc(d, cancel)
			}
			tr, a, _, err := emu.CollectAnalyzedShardsCtx(ctx, prog, budget, shards, nil, prof.Name)
			if timer != nil {
				timer.Stop()
			}
			cancel()
			if err != nil {
				aborted++
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("shards=%d delay=%v: error %v, want context.Canceled", shards, d, err)
				}
				if tr != nil || a != nil {
					t.Fatalf("shards=%d delay=%v: non-nil results alongside cancellation", shards, d)
				}
				continue
			}
			if a.Candidates() != clean.Candidates() || tr.Len() != cleanTr.Len() {
				t.Fatalf("shards=%d delay=%v: completed run diverged from reference", shards, d)
			}
			tr.Release()
		}
		if aborted == 0 {
			t.Fatalf("shards=%d: no trial was cancelled mid-collection; test is vacuous", shards)
		}

		// After every abort, pooled state must be intact: a fresh run
		// still produces the exact fault-free analysis.
		tr, a, _, err := emu.CollectAnalyzedShardsCtx(context.Background(), prog, budget, shards, nil, prof.Name)
		if err != nil {
			t.Fatalf("shards=%d: post-cancellation run: %v", shards, err)
		}
		for seq := 0; seq < tr.Len(); seq++ {
			if a.Kind[seq] != clean.Kind[seq] || a.Resolve[seq] != clean.Resolve[seq] ||
				a.EverRead[seq] != clean.EverRead[seq] || a.Candidate[seq] != clean.Candidate[seq] {
				t.Fatalf("shards=%d: post-cancellation analysis diverges at seq %d", shards, seq)
			}
		}
		tr.Release()
	}
}

// TestLinkAndAnalyzeShardedError pins deterministic error surfacing: a
// malformed record (bad memory width) must abort the sharded pass with
// the same lowest-sequence error the serial pass reports, regardless of
// shard count, and leave the stream reusable-free (Close idempotent).
func TestLinkAndAnalyzeShardedError(t *testing.T) {
	const cs = trace.ChunkSize
	recs := synthRecords(2*cs+100, true)
	// Corrupt one record in the second chunk.
	bad := cs + 500
	for recs[bad].Op.IsMem() {
		bad++
	}
	recs[bad].Op = lastLoadOp(recs)
	recs[bad].Addr, recs[bad].Width = 0x2000, 3 // no opcode has width 3

	serialTr := trace.FromRecords(recs)
	_, serialErr := deadness.LinkAndAnalyze(serialTr)
	if serialErr == nil {
		t.Fatal("serial pass accepted malformed record")
	}
	for _, shards := range []int{1, 2, 64} {
		tr := trace.FromRecords(recs)
		_, err := deadness.LinkAndAnalyzeSharded(tr, shards)
		if err == nil {
			t.Fatalf("shards=%d: malformed record accepted", shards)
		}
		if err.Error() != serialErr.Error() {
			t.Errorf("shards=%d: error %q, serial %q", shards, err, serialErr)
		}
	}
}

// lastLoadOp picks a load opcode present in the synthetic trace so the
// corrupted record exercises the width check, not the opcode switch.
func lastLoadOp(recs []trace.Record) isa.Op {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Op.IsLoad() {
			return recs[i].Op
		}
	}
	return isa.LD
}

// TestProfileAdoptionUnderCancellation is the end-to-end adoption
// regression: a request that initiates a cold profile build and is
// cancelled mid-build must not doom the build when another request is
// waiting on it — the survivor adopts the in-flight work (one build
// total, counted in artifact_adoptions) and receives a result
// bit-identical to a clean run, with the cancelled requester's pooled
// resources released.
func TestProfileAdoptionUnderCancellation(t *testing.T) {
	const budget = 60_000
	bench := workload.Suite()[0].Name

	// Fault-free reference.
	clean := core.NewWorkspace(budget)
	var want deadness.Summary
	if err := clean.WithProfile(bench, func(p *core.ProfileResult) error {
		want = p.Summary
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Hold the build's start open so the second request reliably joins
	// while the first one's build is in flight.
	in := faults.NewInjector(3).Arm(faults.SiteWorkspaceMemo,
		faults.Rule{Kind: faults.Delay, Rate: 1, Max: 1, Delay: 150 * time.Millisecond})
	faults.Set(in)
	defer faults.Set(nil)

	w := core.NewWorkspaceWorkers(budget, 2)
	octx, ocancel := context.WithCancel(context.Background())
	defer ocancel()
	ownerErr := make(chan error, 1)
	go func() {
		ownerErr <- w.WithProfileCtx(octx, bench, func(*core.ProfileResult) error { return nil })
	}()
	var got deadness.Summary
	waiterErr := make(chan error, 1)
	go func() {
		waiterErr <- w.WithProfileCtx(context.Background(), bench, func(p *core.ProfileResult) error {
			got = p.Summary
			return nil
		})
	}()

	// Both requests share one in-flight build once a waiter is counted;
	// then cancel the first requester mid-build.
	deadline := time.Now().Add(10 * time.Second)
	for w.ArtifactStats().Kinds[core.KindProfile].InflightWaits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never attached to the in-flight build")
		}
		time.Sleep(time.Millisecond)
	}
	ocancel()

	if err := <-ownerErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled requester: %v", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("surviving requester failed after the originator's cancellation: %v", err)
	}
	if got != want {
		t.Errorf("adopted build diverges from clean run:\n got %+v\nwant %+v", got, want)
	}
	st := w.ArtifactStats().Kinds[core.KindProfile]
	if st.Misses != 1 {
		t.Errorf("profile builds = %d, want exactly 1 (adoption, not restart)", st.Misses)
	}
	if st.Adoptions != 1 {
		t.Errorf("adoptions = %d, want 1", st.Adoptions)
	}
	if in.Fired(faults.SiteWorkspaceMemo) == 0 {
		t.Error("delay fault never fired; the mid-build window is vacuous")
	}
}
