package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Add("x", 1)
	c.SetVerbose(nil)
	sp := c.Start("simulate", "gzip")
	if sp != nil {
		t.Fatal("nil collector returned a live span")
	}
	sp.End(100)
	if got := c.Counter("x"); got != 0 {
		t.Errorf("nil counter = %d", got)
	}
	if s := c.Summary(); s.Phases != nil || s.Counters != nil {
		t.Errorf("nil summary = %+v", s)
	}
	c.WriteText(&bytes.Buffer{})
}

func TestCountersAndSpans(t *testing.T) {
	c := New()
	c.Add("hits", 2)
	c.Add("hits", 3)
	if got := c.Counter("hits"); got != 5 {
		t.Errorf("hits = %d, want 5", got)
	}

	sp := c.Start("emulate", "gzip")
	time.Sleep(time.Millisecond)
	sp.End(1000)
	sp = c.Start("emulate", "vpr")
	sp.End(500)

	s := c.Summary()
	p, ok := s.Phases["emulate"]
	if !ok {
		t.Fatalf("no emulate phase: %+v", s)
	}
	if p.Count != 2 || p.Insts != 1500 {
		t.Errorf("emulate phase = %+v", p)
	}
	if p.WallSeconds <= 0 || p.MInstPerSec <= 0 {
		t.Errorf("no wall time or throughput recorded: %+v", p)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("n", 1)
				sp := c.Start("analyze", "bench")
				sp.End(10)
			}
		}()
	}
	wg.Wait()
	if got := c.Counter("n"); got != 1600 {
		t.Errorf("n = %d, want 1600", got)
	}
	if p := c.Summary().Phases["analyze"]; p.Count != 1600 || p.Insts != 16000 {
		t.Errorf("analyze phase = %+v", p)
	}
}

// TestSnapshotUnderConcurrentUpdate hammers counters, spans, and memory
// snapshots from writer goroutines while readers take JSON summaries, and
// asserts every observed snapshot is internally consistent: counters and
// phase aggregates only move forward between snapshots, phase invariants
// (non-negative wall, insts = 10×count for this workload) hold in every
// snapshot, and the final state matches the work performed exactly. Run
// with -race: this is the regression for torn snapshots — a summary taken
// mid-update must never observe a half-applied span or counter.
func TestSnapshotUnderConcurrentUpdate(t *testing.T) {
	c := New()
	const (
		writers          = 8
		readersN         = 4
		opsPerWriter     = 400
		instsPerSpan     = 10
		countersPerWrite = 2 // "reqs" +1, "bytes" +3
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: take snapshots continuously, checking monotonicity against
	// the previous snapshot and internal invariants of each one.
	type view struct {
		reqs, bytes int64
		count       int64
		insts       int64
	}
	errs := make(chan string, readersN*4)
	for r := 0; r < readersN; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev view
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Round-trip through JSON, the same path the daemon's
				// /metricz endpoint serves.
				b, err := json.Marshal(c.Summary())
				if err != nil {
					errs <- "marshal: " + err.Error()
					return
				}
				var s Summary
				if err := json.Unmarshal(b, &s); err != nil {
					errs <- "unmarshal: " + err.Error()
					return
				}
				cur := view{
					reqs:  s.Counters["reqs"],
					bytes: s.Counters["bytes"],
					count: s.Phases["work"].Count,
					insts: s.Phases["work"].Insts,
				}
				if cur.reqs < prev.reqs || cur.bytes < prev.bytes ||
					cur.count < prev.count || cur.insts < prev.insts {
					errs <- "snapshot went backwards"
					return
				}
				if cur.bytes != 3*cur.reqs {
					// Both counters are bumped by the same writer loop
					// iteration, but not atomically together — a snapshot
					// may observe reqs ahead of bytes by at most the
					// number of writers mid-iteration.
					if cur.bytes > 3*cur.reqs || 3*cur.reqs-cur.bytes > 3*writers {
						errs <- "counter pair torn beyond in-flight writers"
						return
					}
				}
				if cur.insts != instsPerSpan*cur.count {
					errs <- "phase insts decoupled from phase count"
					return
				}
				if p := s.Phases["work"]; p.WallSeconds < 0 {
					errs <- "negative wall time"
					return
				}
				prev = cur
			}
		}()
	}

	var writerWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for j := 0; j < opsPerWriter; j++ {
				c.Add("reqs", 1)
				c.Add("bytes", 3)
				sp := c.Start("work", "t")
				sp.End(instsPerSpan)
				if j%64 == 0 {
					c.RecordMemStats()
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	s := c.Summary()
	if s.Counters["reqs"] != writers*opsPerWriter || s.Counters["bytes"] != 3*writers*opsPerWriter {
		t.Errorf("final counters = %d/%d, want %d/%d",
			s.Counters["reqs"], s.Counters["bytes"], writers*opsPerWriter, 3*writers*opsPerWriter)
	}
	if p := s.Phases["work"]; p.Count != writers*opsPerWriter || p.Insts != instsPerSpan*writers*opsPerWriter {
		t.Errorf("final phase = %+v", p)
	}
	if s.Mem == nil {
		t.Error("RecordMemStats never landed in the summary")
	}
}

func TestVerboseAndText(t *testing.T) {
	c := New()
	var buf bytes.Buffer
	c.SetVerbose(&buf)
	sp := c.Start("simulate", "gzip [elim]")
	sp.End(250_000)
	if out := buf.String(); !strings.Contains(out, "simulate") || !strings.Contains(out, "gzip [elim]") {
		t.Errorf("verbose line = %q", out)
	}

	c.Add("machine_memo_hits", 7)
	var txt bytes.Buffer
	c.WriteText(&txt)
	if out := txt.String(); !strings.Contains(out, "simulate") || !strings.Contains(out, "machine_memo_hits") {
		t.Errorf("text summary = %q", out)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	c := New()
	c.Start("compile", "gzip").End(0)
	c.Add("profile_builds", 1)
	b, err := json.Marshal(c.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Phases["compile"].Count != 1 || s.Counters["profile_builds"] != 1 {
		t.Errorf("round-tripped summary = %+v", s)
	}
}

func TestFmtBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{{-5, "0B"}, {12, "12B"}, {2048, "2.0KiB"}, {3 << 20, "3.0MiB"}} {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestNilCollectorObserveIsSafe(t *testing.T) {
	var c *Collector
	c.Observe("server_latency.profile", time.Millisecond) // must not panic
	if s := c.Summary(); s.Histograms != nil {
		t.Errorf("nil histogram summary = %+v", s.Histograms)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	c := New()
	// 100 observations, 1ms..100ms: the quantiles of a uniform ramp are
	// known to within one power-of-two bucket.
	for i := 1; i <= 100; i++ {
		c.Observe("lat", time.Duration(i)*time.Millisecond)
	}
	h := c.Summary().Histograms["lat"]
	if h.Count != 100 {
		t.Fatalf("count = %d, want 100", h.Count)
	}
	if h.MaxMs != 100 {
		t.Errorf("max = %vms, want exactly 100", h.MaxMs)
	}
	wantMean := 50.5
	if h.MeanMs < wantMean-0.01 || h.MeanMs > wantMean+0.01 {
		t.Errorf("mean = %vms, want %vms", h.MeanMs, wantMean)
	}
	// Power-of-two buckets bound the interpolation error by 2x.
	check := func(name string, got, exact float64) {
		if got < exact/2 || got > exact*2 {
			t.Errorf("%s = %vms, want within 2x of %vms", name, got, exact)
		}
	}
	check("p50", h.P50Ms, 50)
	check("p95", h.P95Ms, 95)
	check("p99", h.P99Ms, 99)
	if h.P50Ms > h.P95Ms || h.P95Ms > h.P99Ms || h.P99Ms > h.MaxMs {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", h.P50Ms, h.P95Ms, h.P99Ms, h.MaxMs)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	c := New()
	c.Observe("one", 7*time.Millisecond)
	h := c.Summary().Histograms["one"]
	if h.Count != 1 || h.P50Ms != 7 || h.P99Ms != 7 || h.MaxMs != 7 {
		t.Errorf("single observation: %+v, want every quantile clamped to 7ms", h)
	}

	c.Observe("zero", 0)
	c.Observe("zero", -time.Second) // clamped, not panicking
	hz := c.Summary().Histograms["zero"]
	if hz.Count != 2 || hz.MaxMs != 0 {
		t.Errorf("zero observations: %+v", hz)
	}

	// A huge duration lands in the top bucket without overflow.
	c.Observe("big", 365*24*time.Hour)
	if hb := c.Summary().Histograms["big"]; hb.Count != 1 {
		t.Errorf("big observation: %+v", hb)
	}
}

func TestHistogramTextAndJSON(t *testing.T) {
	c := New()
	c.Observe("server_latency.profile", 3*time.Millisecond)
	var buf bytes.Buffer
	c.WriteText(&buf)
	if !strings.Contains(buf.String(), "server_latency.profile") {
		t.Errorf("WriteText omitted histograms:\n%s", buf.String())
	}
	b, err := json.Marshal(c.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Histograms["server_latency.profile"].Count != 1 {
		t.Errorf("histogram lost in JSON round trip: %s", b)
	}
}
