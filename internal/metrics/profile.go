package metrics

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function that flushes and closes it. An empty path is a no-op with
// a non-nil stop, so command-line wiring can call it unconditionally.
func StartCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("metrics: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a forced GC, so the
// profile reflects live data rather than collectable garbage. An empty
// path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("metrics: heap profile: %w", err)
	}
	return nil
}
