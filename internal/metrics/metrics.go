// Package metrics provides run observability for the experiment engine:
// per-phase wall time, dynamic-instruction throughput, allocation deltas,
// and named counters (memoization hits, simulation counts).
//
// A Collector is safe for concurrent use and nil-safe: every method on a
// nil *Collector is a no-op, so instrumented code can pass a collector
// through unconditionally and callers that do not care pay nothing.
package metrics

import (
	"fmt"
	"io"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sort"
	"sync"
	"time"
)

// Canonical phase names used by the experiment engine. PhaseAnalyze covers
// the fused link+analyze pass over a raw trace (the separate "link" phase
// disappeared when the substrate became single-pass); PhaseLink remains for
// callers that still link without analyzing (e.g. trace deserialization).
const (
	PhaseCompile  = "compile"
	PhaseEmulate  = "emulate"
	PhaseLink     = "link"
	PhaseAnalyze  = "analyze"
	PhaseSimulate = "simulate"
)

// Canonical counter names for the failure model: injected faults (the
// fault injector also emits a per-site/kind breakdown under
// "faults_injected.<site>.<kind>"), retries of transient failures, and
// experiments that exhausted their attempts.
const (
	CounterFaultsInjected     = "faults_injected"
	CounterRetries            = "retries"
	CounterExperimentFailures = "experiment_failures"
)

// Canonical counter names for the experiment service daemon
// (internal/server): admitted requests, requests shed by the bounded
// admission queue (429 backpressure), the live queue depth (incremented
// on enqueue, decremented on dequeue or abandonment — a gauge carried on
// the counter substrate), completed and failed requests, server-level
// retries of transient failures, and streaming progress subscriptions.
const (
	CounterServerAdmitted   = "server_admitted"
	CounterServerShed       = "server_shed"
	CounterServerQueueDepth = "server_queue_depth"
	CounterServerCompleted  = "server_completed"
	CounterServerFailed     = "server_failed"
	CounterServerRetries    = "server_retries"
	CounterServerStreams    = "server_streams"
	// CounterServerCoalesced counts requests that subscribed to another
	// identical pending request's execution instead of occupying their own
	// queue slot — each is one admission, one execution, and (on a cold
	// artifact) one build that the service tier did not repeat.
	CounterServerCoalesced = "server_coalesced"
	// Artifact-endpoint traffic: remote-tier reads served (hit/miss) and
	// artifact payloads accepted from clients.
	CounterServerArtifactHits   = "server_artifact_hits"
	CounterServerArtifactMisses = "server_artifact_misses"
	CounterServerArtifactPuts   = "server_artifact_puts"
	// CounterServerArtifactSpillthrough counts the GET hits served straight
	// from the disk tier's mapped entry file — the framed bytes on disk ARE
	// the wire format, so the response skips the decode/re-encode/re-frame
	// round trip (a subset of server_artifact_hits).
	CounterServerArtifactSpillthrough = "server_artifact_spillthrough"
)

// Histogram names recorded by the daemon, one per endpoint under
// "<name>.<endpoint>": end-to-end request latency, time spent waiting for
// an admission slot, and execution time after admission. The split makes
// "slow because queued" and "slow because the work is slow"
// distinguishable in /metricz without a profiler.
const (
	HistServerLatency   = "server_latency"
	HistServerQueueWait = "server_queue_wait"
	HistServerExec      = "server_exec"
)

// Phase aggregates every span recorded under one phase name (compile,
// emulate, link, analyze, simulate, ...).
type Phase struct {
	Count      int64
	Wall       time.Duration
	Insts      int64
	AllocBytes int64
}

// MInstPerSec is the phase's aggregate dynamic-instruction throughput in
// millions per second of wall time (0 when no instructions were recorded).
func (p Phase) MInstPerSec() float64 {
	if p.Insts == 0 || p.Wall <= 0 {
		return 0
	}
	return float64(p.Insts) / p.Wall.Seconds() / 1e6
}

// Collector accumulates phase timings, counters, and latency histograms.
type Collector struct {
	mu       sync.Mutex
	verbose  io.Writer
	phases   map[string]*Phase
	counters map[string]int64
	hists    map[string]*histogram
	mem      *MemStats
}

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds observations whose microsecond count has bit length i (i.e.
// power-of-two-width buckets, 1µs granularity at the bottom, ~4.5 years
// at the top — nothing saturates).
const histBuckets = 48

// histogram records counts per power-of-two microsecond bucket plus
// exact count/sum/max. Guarded by the collector lock; an update is one
// bit-length and four adds.
type histogram struct {
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

func histIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	i := bitLen64(us)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bitLen64 is bits.Len64, inlined to keep the import set stable.
func bitLen64(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// Observe folds one duration into the named histogram.
func (c *Collector) Observe(name string, d time.Duration) {
	if c == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		if c.hists == nil {
			c.hists = make(map[string]*histogram)
		}
		h = &histogram{}
		c.hists[name] = h
	}
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[histIndex(d)]++
	c.mu.Unlock()
}

// quantile estimates the q-quantile (q in [0,1]) by walking the
// cumulative bucket counts and interpolating linearly inside the target
// bucket, clamped to the exact observed maximum. Call with c.mu held.
func (h *histogram) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < rank {
			continue
		}
		// Bucket i spans [2^(i-1), 2^i) µs (bucket 0 is <1µs).
		var lo, hi float64
		if i > 0 {
			lo = float64(uint64(1) << (i - 1))
			hi = float64(uint64(1) << i)
		} else {
			lo, hi = 0, 1
		}
		frac := (rank - prev) / float64(n)
		d := time.Duration((lo + frac*(hi-lo)) * float64(time.Microsecond))
		if d > h.max {
			d = h.max
		}
		return d
	}
	return h.max
}

// MemStats is the end-of-run process memory snapshot carried by the run
// report. PeakHeapBytes is the OS-reserved heap footprint (HeapSys): the
// runtime seldom returns heap pages mid-run, so it reads as the high-water
// mark of the run's memory demand; TotalAllocBytes is cumulative
// allocation over the whole run.
type MemStats struct {
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	PeakHeapBytes   uint64 `json:"peak_heap_bytes"`
	HeapInuseBytes  uint64 `json:"heap_inuse_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

// RecordMemStats snapshots process memory into the collector via
// runtime.ReadMemStats. The read stops the world, so call it once at the
// end of a run, not per phase (phase-level allocation deltas come from the
// stop-the-world-free runtime/metrics counter instead).
func (c *Collector) RecordMemStats() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m := &MemStats{
		TotalAllocBytes: ms.TotalAlloc,
		PeakHeapBytes:   ms.HeapSys,
		HeapInuseBytes:  ms.HeapInuse,
		NumGC:           ms.NumGC,
	}
	c.mu.Lock()
	c.mem = m
	c.mu.Unlock()
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		phases:   make(map[string]*Phase),
		counters: make(map[string]int64),
	}
}

// SetVerbose directs a one-line progress message per completed span to w
// (nil disables). Call before concurrent use.
func (c *Collector) SetVerbose(w io.Writer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.verbose = w
	c.mu.Unlock()
}

// Add increments a named counter.
func (c *Collector) Add(counter string, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[counter] += n
	c.mu.Unlock()
}

// Counter returns a counter's current value.
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Span is one in-flight timed region; close it with End.
type Span struct {
	c      *Collector
	phase  string
	detail string
	start  time.Time
	alloc0 uint64
}

// Start opens a span under the given phase name. The detail string only
// appears in verbose progress lines, not in the aggregate.
func (c *Collector) Start(phase, detail string) *Span {
	if c == nil {
		return nil
	}
	return &Span{
		c:      c,
		phase:  phase,
		detail: detail,
		start:  time.Now(),
		alloc0: heapAllocBytes(),
	}
}

// End closes the span, folding its wall time, the given dynamic
// instruction count, and the heap-allocation delta into the phase
// aggregate. The allocation delta reads a process-global counter, so under
// concurrency it attributes other goroutines' allocations too — treat it
// as an upper bound, exact only for serial runs.
func (s *Span) End(insts int64) {
	if s == nil {
		return
	}
	wall := time.Since(s.start)
	alloc := int64(heapAllocBytes() - s.alloc0)
	c := s.c
	c.mu.Lock()
	p := c.phases[s.phase]
	if p == nil {
		p = &Phase{}
		c.phases[s.phase] = p
	}
	p.Count++
	p.Wall += wall
	p.Insts += insts
	p.AllocBytes += alloc
	w := c.verbose
	c.mu.Unlock()
	if w != nil {
		thr := ""
		if insts > 0 && wall > 0 {
			thr = fmt.Sprintf("  %6.1f Minst/s", float64(insts)/wall.Seconds()/1e6)
		}
		fmt.Fprintf(w, "%-10s %-36s %8.3fs%s  +%s\n",
			s.phase, s.detail, wall.Seconds(), thr, fmtBytes(alloc))
	}
}

// PhaseSummary is the JSON form of one phase aggregate.
type PhaseSummary struct {
	Count       int64   `json:"count"`
	WallSeconds float64 `json:"wall_seconds"`
	Insts       int64   `json:"instructions,omitempty"`
	MInstPerSec float64 `json:"minst_per_sec,omitempty"`
	AllocBytes  int64   `json:"alloc_bytes"`
}

// HistogramSummary is the JSON form of one latency histogram: count,
// mean, interpolated p50/p95/p99, and the exact observed maximum, all in
// milliseconds.
type HistogramSummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary is the JSON-serializable snapshot of a collector. Mem is
// present only after RecordMemStats.
type Summary struct {
	Phases     map[string]PhaseSummary     `json:"phases,omitempty"`
	Counters   map[string]int64            `json:"counters,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	Mem        *MemStats                   `json:"mem,omitempty"`
}

// Summary snapshots the collector.
func (c *Collector) Summary() Summary {
	if c == nil {
		return Summary{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{
		Phases:   make(map[string]PhaseSummary, len(c.phases)),
		Counters: make(map[string]int64, len(c.counters)),
	}
	for name, p := range c.phases {
		s.Phases[name] = PhaseSummary{
			Count:       p.Count,
			WallSeconds: p.Wall.Seconds(),
			Insts:       p.Insts,
			MInstPerSec: p.MInstPerSec(),
			AllocBytes:  p.AllocBytes,
		}
	}
	for name, v := range c.counters {
		s.Counters[name] = v
	}
	if len(c.hists) > 0 {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		s.Histograms = make(map[string]HistogramSummary, len(c.hists))
		for name, h := range c.hists {
			hs := HistogramSummary{
				Count: h.count,
				P50Ms: ms(h.quantile(0.50)),
				P95Ms: ms(h.quantile(0.95)),
				P99Ms: ms(h.quantile(0.99)),
				MaxMs: ms(h.max),
			}
			if h.count > 0 {
				hs.MeanMs = ms(h.sum) / float64(h.count)
			}
			s.Histograms[name] = hs
		}
	}
	if c.mem != nil {
		m := *c.mem
		s.Mem = &m
	}
	return s
}

// WriteText renders the summary as an aligned text block (phases sorted by
// name, then counters), for end-of-run verbose output.
func (c *Collector) WriteText(w io.Writer) {
	if c == nil {
		return
	}
	s := c.Summary()
	names := make([]string, 0, len(s.Phases))
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := s.Phases[name]
		fmt.Fprintf(w, "%-10s %5d calls %9.3fs", name, p.Count, p.WallSeconds)
		if p.MInstPerSec > 0 {
			fmt.Fprintf(w, "  %8.1f Minst/s", p.MInstPerSec)
		}
		fmt.Fprintf(w, "  +%s\n", fmtBytes(p.AllocBytes))
	}
	ctrs := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		ctrs = append(ctrs, name)
	}
	sort.Strings(ctrs)
	for _, name := range ctrs {
		fmt.Fprintf(w, "%-28s %d\n", name, s.Counters[name])
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		fmt.Fprintf(w, "%-28s n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			name, h.Count, h.MeanMs, h.P50Ms, h.P95Ms, h.P99Ms, h.MaxMs)
	}
	if s.Mem != nil {
		fmt.Fprintf(w, "%-10s total=%s peak=%s inuse=%s gc=%d\n", "memory",
			fmtBytes(int64(s.Mem.TotalAllocBytes)), fmtBytes(int64(s.Mem.PeakHeapBytes)),
			fmtBytes(int64(s.Mem.HeapInuseBytes)), s.Mem.NumGC)
	}
}

var allocSampleName = "/gc/heap/allocs:bytes"

// heapAllocBytes reads the cumulative heap allocation counter; unlike
// runtime.ReadMemStats it does not stop the world.
func heapAllocBytes() uint64 {
	sample := []runtimemetrics.Sample{{Name: allocSampleName}}
	runtimemetrics.Read(sample)
	if sample[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

func fmtBytes(n int64) string {
	switch {
	case n < 0:
		return "0B"
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
}
