package compiler

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// DefaultAllocatable returns the machine registers available to the
// allocator: r1..r26. r27/r28 are reserved as spill temporaries, r29/r30
// for the global and stack base pointers, r31 as the link register, and r0
// is the zero register.
func DefaultAllocatable() []isa.Reg {
	regs := make([]isa.Reg, 0, 26)
	for r := isa.Reg(1); r <= 26; r++ {
		regs = append(regs, r)
	}
	return regs
}

// Assignment maps every virtual register either to a machine register or
// to a spill slot (an 8-byte stack location).
type Assignment struct {
	// Phys[v] is the machine register of v, valid when !Spilled[v].
	Phys []isa.Reg
	// Spilled[v] reports v lives in memory; Slot[v] is its slot index.
	Spilled []bool
	Slot    []int
	// NumSlots is the number of spill slots used.
	NumSlots int
	// NumSpilled counts spilled virtual registers (reported by the
	// spill-pressure experiments).
	NumSpilled int
}

type interval struct {
	v          VReg
	start, end int
}

// Allocate runs linear-scan register allocation over the function using
// the given allocatable register set (DefaultAllocatable if nil).
//
// Intervals are per-vreg [first definition/live-in point, last use/live-out
// point] over a linearization of the blocks in ID order; the allocator
// spills the interval with the furthest end point when it runs out of
// registers — the classic Poletto/Sarkar heuristic.
func Allocate(f *Func, allocatable []isa.Reg) (*Assignment, error) {
	if allocatable == nil {
		allocatable = DefaultAllocatable()
	}
	if len(allocatable) < 2 {
		return nil, fmt.Errorf("compiler: need at least 2 allocatable registers, have %d",
			len(allocatable))
	}
	nv := f.NumVRegs()
	live := ComputeLiveness(f)

	const unset = -1
	starts := make([]int, nv)
	ends := make([]int, nv)
	for v := 0; v < nv; v++ {
		starts[v], ends[v] = unset, unset
	}
	touch := func(v VReg, pos int) {
		if starts[v] == unset || pos < starts[v] {
			starts[v] = pos
		}
		if pos > ends[v] {
			ends[v] = pos
		}
	}

	pos := 0
	var scratch []VReg
	for _, b := range f.Blocks {
		blockStart := pos
		for _, in := range b.Instrs {
			for _, u := range in.Uses(scratch[:0]) {
				touch(u, pos)
			}
			if in.HasDst() {
				touch(in.Dst, pos)
			}
			pos++
		}
		for _, u := range b.Term.Uses(scratch[:0]) {
			touch(u, pos)
		}
		pos++ // terminator position
		blockEnd := pos - 1
		for v := VReg(0); int(v) < nv; v++ {
			if live.LiveIn(b.ID, v) {
				touch(v, blockStart)
			}
			if live.LiveOut(b.ID, v) {
				touch(v, blockEnd)
			}
		}
	}

	var ivs []interval
	for v := 0; v < nv; v++ {
		if starts[v] != unset {
			ivs = append(ivs, interval{VReg(v), starts[v], ends[v]})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})

	asn := &Assignment{
		Phys:    make([]isa.Reg, nv),
		Spilled: make([]bool, nv),
		Slot:    make([]int, nv),
	}
	free := make([]isa.Reg, len(allocatable))
	copy(free, allocatable)
	var active []interval // sorted by end

	expire := func(now int) {
		i := 0
		for ; i < len(active); i++ {
			if active[i].end >= now {
				break
			}
			free = append(free, asn.Phys[active[i].v])
		}
		active = active[i:]
	}
	insertActive := func(iv interval) {
		at := sort.Search(len(active), func(i int) bool { return active[i].end > iv.end })
		active = append(active, interval{})
		copy(active[at+1:], active[at:])
		active[at] = iv
	}
	spill := func(v VReg) {
		asn.Spilled[v] = true
		asn.Slot[v] = asn.NumSlots
		asn.NumSlots++
		asn.NumSpilled++
	}

	for _, iv := range ivs {
		expire(iv.start)
		if len(free) > 0 {
			asn.Phys[iv.v] = free[len(free)-1]
			free = free[:len(free)-1]
			insertActive(iv)
			continue
		}
		// Spill the interval that ends last.
		victim := active[len(active)-1]
		if victim.end > iv.end {
			asn.Phys[iv.v] = asn.Phys[victim.v]
			spill(victim.v)
			active = active[:len(active)-1]
			insertActive(iv)
		} else {
			spill(iv.v)
		}
	}
	return asn, nil
}
