package compiler

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// lowerer emits machine code for one function under a register assignment.
type lowerer struct {
	f   *Func
	asn *Assignment

	insts []isa.Inst
	prov  []program.Provenance

	blockPC []int
	fixups  []fixup
}

type fixup struct {
	pc     int // instruction to patch
	target int // block ID
}

// Lower translates an allocated function to an r64 program. Spilled
// virtual registers live at StackBase + 8*slot, addressed off RSP; the
// reserved temporaries RTmp0/RTmp1 stage reloads and spill stores.
func Lower(f *Func, asn *Assignment) (*program.Program, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	lo := &lowerer{f: f, asn: asn, blockPC: make([]int, len(f.Blocks))}
	if f.Entry != 0 {
		return nil, fmt.Errorf("compiler: entry block must be block 0, got %d", f.Entry)
	}
	for _, b := range f.Blocks {
		lo.blockPC[b.ID] = len(lo.insts)
		if err := lo.block(b); err != nil {
			return nil, fmt.Errorf("compiler: block %d: %w", b.ID, err)
		}
	}
	for _, fx := range lo.fixups {
		lo.insts[fx.pc].Imm = int32(lo.blockPC[fx.target] - (fx.pc + 1))
	}
	p := &program.Program{
		Name:  f.Name,
		Insts: lo.insts,
		Prov:  lo.prov,
		Data:  append([]byte(nil), f.Data...),
		Entry: 0,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (lo *lowerer) emit(in isa.Inst, prov program.Provenance) {
	lo.insts = append(lo.insts, in)
	lo.prov = append(lo.prov, prov)
}

// src stages virtual register v into a readable machine register, emitting
// a reload into tmp when v is spilled.
func (lo *lowerer) src(v VReg, tmp isa.Reg) isa.Reg {
	if !lo.asn.Spilled[v] {
		return lo.asn.Phys[v]
	}
	lo.emit(isa.Inst{
		Op: isa.LD, Rd: tmp, Rs1: isa.RSP, Imm: int32(8 * lo.asn.Slot[v]),
	}, program.ProvReload)
	return tmp
}

// dst returns the machine register an instruction should write, staging
// through tmp for spilled destinations; the caller must then call
// finishDst to store the staged value.
func (lo *lowerer) dst(v VReg, tmp isa.Reg) isa.Reg {
	if lo.asn.Spilled[v] {
		return tmp
	}
	return lo.asn.Phys[v]
}

func (lo *lowerer) finishDst(v VReg, tmp isa.Reg) {
	if lo.asn.Spilled[v] {
		lo.emit(isa.Inst{
			Op: isa.SD, Rs1: isa.RSP, Rs2: tmp, Imm: int32(8 * lo.asn.Slot[v]),
		}, program.ProvSpill)
	}
}

func fitsImm32(v int64) bool { return v >= -1<<31 && v < 1<<31 }

// materialize emits the shortest constant-materialization sequence into
// rd. The first instruction carries the IR instruction's provenance; any
// additional instructions are glue.
func (lo *lowerer) materialize(rd isa.Reg, v int64, prov program.Provenance) {
	switch {
	case fitsImm32(v):
		lo.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.RZero, Imm: int32(v)}, prov)
	case v >= -1<<47 && v < 1<<47:
		lo.emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(v >> 16)}, prov)
		lo.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(v & 0xffff)}, program.ProvGlue)
	default:
		lo.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.RZero, Imm: int32(v >> 32)}, prov)
		lo.emit(isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 16}, program.ProvGlue)
		lo.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32((v >> 16) & 0xffff)}, program.ProvGlue)
		lo.emit(isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 16}, program.ProvGlue)
		lo.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(v & 0xffff)}, program.ProvGlue)
	}
}

func (lo *lowerer) block(b *Block) error {
	for i, in := range b.Instrs {
		prov := b.Prov[i]
		switch in.Kind {
		case KConst:
			rd := lo.dst(in.Dst, isa.RTmp0)
			lo.materialize(rd, in.Imm, prov)
			lo.finishDst(in.Dst, isa.RTmp0)
		case KALU:
			ra := lo.src(in.A, isa.RTmp0)
			rb := lo.src(in.B, isa.RTmp1)
			rd := lo.dst(in.Dst, isa.RTmp0)
			lo.emit(isa.Inst{Op: in.Op, Rd: rd, Rs1: ra, Rs2: rb}, prov)
			lo.finishDst(in.Dst, isa.RTmp0)
		case KALUImm:
			if !fitsImm32(in.Imm) {
				return fmt.Errorf("immediate %d of %v does not fit", in.Imm, in)
			}
			var ra isa.Reg
			if in.Op != isa.LUI {
				ra = lo.src(in.A, isa.RTmp0)
			}
			rd := lo.dst(in.Dst, isa.RTmp0)
			lo.emit(isa.Inst{Op: in.Op, Rd: rd, Rs1: ra, Imm: int32(in.Imm)}, prov)
			lo.finishDst(in.Dst, isa.RTmp0)
		case KLoad:
			if !fitsImm32(in.Imm) {
				return fmt.Errorf("offset %d of %v does not fit", in.Imm, in)
			}
			ra := lo.src(in.A, isa.RTmp0)
			rd := lo.dst(in.Dst, isa.RTmp0)
			lo.emit(isa.Inst{Op: in.Op, Rd: rd, Rs1: ra, Imm: int32(in.Imm)}, prov)
			lo.finishDst(in.Dst, isa.RTmp0)
		case KStore:
			if !fitsImm32(in.Imm) {
				return fmt.Errorf("offset %d of %v does not fit", in.Imm, in)
			}
			ra := lo.src(in.A, isa.RTmp0)
			rb := lo.src(in.B, isa.RTmp1)
			lo.emit(isa.Inst{Op: in.Op, Rs1: ra, Rs2: rb, Imm: int32(in.Imm)}, prov)
		case KOut:
			ra := lo.src(in.A, isa.RTmp0)
			lo.emit(isa.Inst{Op: isa.OUT, Rs1: ra}, prov)
		default:
			return fmt.Errorf("unhandled instruction kind %v", in.Kind)
		}
	}

	next := b.ID + 1
	switch b.Term.Kind {
	case THalt:
		lo.emit(isa.Inst{Op: isa.HALT}, program.ProvNormal)
	case TJump:
		if b.Term.To != next {
			lo.fixups = append(lo.fixups, fixup{len(lo.insts), b.Term.To})
			lo.emit(isa.Inst{Op: isa.JAL, Rd: isa.RZero}, program.ProvNormal)
		}
	case TBranch:
		ra := lo.src(b.Term.A, isa.RTmp0)
		rb := lo.src(b.Term.B, isa.RTmp1)
		lo.fixups = append(lo.fixups, fixup{len(lo.insts), b.Term.To})
		lo.emit(isa.Inst{Op: b.Term.Op, Rs1: ra, Rs2: rb}, program.ProvNormal)
		if b.Term.Else != next {
			lo.fixups = append(lo.fixups, fixup{len(lo.insts), b.Term.Else})
			lo.emit(isa.Inst{Op: isa.JAL, Rd: isa.RZero}, program.ProvNormal)
		}
	case TCall:
		// The return lands on the instruction after the JAL, which then
		// proceeds to the continuation block.
		lo.fixups = append(lo.fixups, fixup{len(lo.insts), b.Term.To})
		lo.emit(isa.Inst{Op: isa.JAL, Rd: isa.RLink}, program.ProvNormal)
		if b.Term.Else != next {
			lo.fixups = append(lo.fixups, fixup{len(lo.insts), b.Term.Else})
			lo.emit(isa.Inst{Op: isa.JAL, Rd: isa.RZero}, program.ProvNormal)
		}
	case TRet:
		lo.emit(isa.Inst{Op: isa.JALR, Rd: isa.RZero, Rs1: isa.RLink}, program.ProvNormal)
	}
	return nil
}
