package compiler

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func TestLivenessStraightLine(t *testing.T) {
	f := NewFunc("l")
	b := f.NewBlock()
	a := f.NewVReg()
	c := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: a, Imm: 1})
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: c, A: a, Imm: 1})
	b.Append(Instr{Kind: KOut, A: c})
	l := ComputeLiveness(f)
	if l.LiveIn(0, a) || l.LiveIn(0, c) {
		t.Error("defined-before-use regs live-in")
	}
	if l.LiveOut(0, a) || l.LiveOut(0, c) {
		t.Error("regs live-out of exit block")
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	f := sumFunc(10)
	l := ComputeLiveness(f)
	// In block 1 (the loop), i(0), acc(1), zero(2) are live-in: all are
	// used in the block or its terminator and live around the back edge.
	for v := VReg(0); v < 3; v++ {
		if !l.LiveIn(1, v) {
			t.Errorf("v%d not live into loop", v)
		}
	}
	// acc is live out of the loop (used by exit's out).
	if !l.LiveOut(1, 1) {
		t.Error("acc not live out of loop")
	}
}

func TestLiveAcrossPoints(t *testing.T) {
	f := NewFunc("p")
	b := f.NewBlock()
	a := f.NewVReg()
	c := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: a, Imm: 1})                      // point 0
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: c, A: a, Imm: 1}) // point 1
	b.Append(Instr{Kind: KOut, A: c})                                  // point 2
	l := ComputeLiveness(f)
	pts := liveAcross(f, l, 0)
	if pts[0].has(a) {
		t.Error("a live before its def")
	}
	if !pts[1].has(a) {
		t.Error("a dead before its use")
	}
	if pts[2].has(a) {
		t.Error("a live after last use")
	}
	if !pts[2].has(c) {
		t.Error("c dead before out")
	}
}

func TestDominators(t *testing.T) {
	f := diamondFunc() // 0 -> 1,2 -> 3
	d := ComputeDominators(f)
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, true}, {0, 3, true},
		{1, 3, false}, {2, 3, false}, {3, 3, true}, {1, 2, false},
	}
	for _, c := range cases {
		if got := d.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFindLoops(t *testing.T) {
	f := sumFunc(10) // block 1 branches to itself
	loops := FindLoops(f, ComputeDominators(f))
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || !l.Contains(1) || l.Contains(0) || l.Contains(2) {
		t.Errorf("loop = %+v", l)
	}
	if len(l.EntryPreds) != 1 || l.EntryPreds[0] != 0 {
		t.Errorf("entry preds = %v", l.EntryPreds)
	}
}

func TestFindLoopsNested(t *testing.T) {
	// 0 -> 1(outer hdr) -> 2(inner hdr, self-loop) -> 3(latch->1) -> 4
	f := NewFunc("nest")
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	v := f.NewVReg()
	b0.Append(Instr{Kind: KConst, Dst: v, Imm: 2})
	b0.Term = Terminator{Kind: TJump, To: b1.ID}
	b1.Term = Terminator{Kind: TJump, To: b2.ID}
	b2.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: v, A: v, Imm: -1})
	b2.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: v, B: v, To: b2.ID, Else: b3.ID}
	b3.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: v, B: v, To: b1.ID, Else: b4.ID}
	b4.Term = Terminator{Kind: THalt}

	loops := FindLoops(f, ComputeDominators(f))
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		switch l.Header {
		case 2:
			inner = l
		case 1:
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("headers wrong: %+v", loops)
	}
	if len(inner.Blocks) != 1 {
		t.Errorf("inner loop blocks = %v", inner.Blocks)
	}
	if !outer.Contains(2) || !outer.Contains(3) || outer.Contains(0) || outer.Contains(4) {
		t.Errorf("outer loop blocks = %v", outer.Blocks)
	}
}

func TestHoistMovesThenSideComputation(t *testing.T) {
	f := diamondFunc()
	moved := Hoist(f, 3)
	if moved == 0 {
		t.Fatal("nothing hoisted")
	}
	// The slli (and possibly the add chain head) moved into block 0 with
	// hoisted provenance.
	entry := f.Blocks[0]
	found := false
	for i, in := range entry.Instrs {
		if in.Kind == KALUImm && in.Op == isa.SLLI {
			found = true
			if entry.Prov[i] != program.ProvHoisted {
				t.Errorf("hoisted instr provenance = %v", entry.Prov[i])
			}
		}
	}
	if !found {
		t.Error("slli not hoisted into entry")
	}
	// Semantics preserved.
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	checkEquivRaw(t, diamondFunc(), f)
}

func TestHoistRespectsBranchOperands(t *testing.T) {
	// then-block redefines a branch operand; it must not move above the
	// branch that reads it.
	f := NewFunc("h")
	entry := f.NewBlock()
	then := f.NewBlock()
	join := f.NewBlock()
	a := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: a, Imm: 1})
	entry.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: a, B: a, To: then.ID, Else: join.ID}
	then.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: a, A: a, Imm: 5})
	then.Term = Terminator{Kind: TJump, To: join.ID}
	join.Append(Instr{Kind: KOut, A: a})

	if moved := Hoist(f, 3); moved != 0 {
		t.Errorf("hoisted %d instrs that redefine branch operands", moved)
	}
}

func TestHoistRespectsOtherPathLiveness(t *testing.T) {
	// x is live into the else path (used by join via else's definition
	// order): hoisting then's redefinition would clobber it.
	f := NewFunc("h2")
	entry := f.NewBlock()
	then := f.NewBlock()
	join := f.NewBlock()
	a := f.NewVReg()
	x := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: a, Imm: 1})
	entry.Append(Instr{Kind: KConst, Dst: x, Imm: 42})
	entry.Term = Terminator{Kind: TBranch, Op: isa.BEQ, A: a, B: a, To: then.ID, Else: join.ID}
	then.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: x, A: a, Imm: 7}) // redefines x
	then.Term = Terminator{Kind: TJump, To: join.ID}
	join.Append(Instr{Kind: KOut, A: x}) // x live into join (the "other" succ)

	before, err := Interpret(f, 1000)
	if err != nil {
		t.Fatal(err)
	}
	Hoist(f, 3)
	after, err := Interpret(f, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatalf("hoisting changed semantics: %v -> %v", before, after)
	}
}

func TestHoistSkipsMemoryOps(t *testing.T) {
	f := NewFunc("hm")
	f.Data = make([]byte, 16)
	entry := f.NewBlock()
	then := f.NewBlock()
	join := f.NewBlock()
	a := f.NewVReg()
	base := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: a, Imm: 1})
	entry.Append(Instr{Kind: KConst, Dst: base, Imm: int64(program.DataBase)})
	entry.Term = Terminator{Kind: TBranch, Op: isa.BEQ, A: a, B: a, To: then.ID, Else: join.ID}
	then.Append(Instr{Kind: KStore, Op: isa.SD, A: base, B: a})
	then.Term = Terminator{Kind: TJump, To: join.ID}
	join.Term = Terminator{Kind: THalt}

	if moved := Hoist(f, 3); moved != 0 {
		t.Errorf("hoisted %d memory operations", moved)
	}
}

func TestLICMMovesInvariant(t *testing.T) {
	// loop: t = a*b (invariant); acc += t; i--
	f := NewFunc("licm")
	entry := f.NewBlock()
	loop := f.NewBlock()
	exit := f.NewBlock()
	a := f.NewVReg()
	b := f.NewVReg()
	i := f.NewVReg()
	acc := f.NewVReg()
	tv := f.NewVReg()
	zero := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: a, Imm: 6})
	entry.Append(Instr{Kind: KConst, Dst: b, Imm: 7})
	entry.Append(Instr{Kind: KConst, Dst: i, Imm: 10})
	entry.Append(Instr{Kind: KConst, Dst: acc, Imm: 0})
	entry.Append(Instr{Kind: KConst, Dst: zero, Imm: 0})
	entry.Term = Terminator{Kind: TJump, To: loop.ID}
	loop.Append(Instr{Kind: KALU, Op: isa.MUL, Dst: tv, A: a, B: b})
	loop.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: acc, A: acc, B: tv})
	loop.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: i, A: i, Imm: -1})
	loop.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: i, B: zero, To: loop.ID, Else: exit.ID}
	exit.Append(Instr{Kind: KOut, A: acc})

	ref := f.Clone()
	moved := LICM(f, 8)
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	// The mul now sits in the entry block with LICM provenance.
	last := len(f.Blocks[0].Instrs) - 1
	if in := f.Blocks[0].Instrs[last]; in.Op != isa.MUL {
		t.Errorf("entry tail = %v, want mul", in)
	}
	if f.Blocks[0].Prov[last] != program.ProvLICM {
		t.Errorf("prov = %v, want licm", f.Blocks[0].Prov[last])
	}
	checkEquivRaw(t, ref, f)
}

func TestLICMKeepsVariant(t *testing.T) {
	f := sumFunc(10) // acc += i is not invariant (i changes)
	if moved := LICM(f, 8); moved != 0 {
		t.Errorf("moved %d variant instructions", moved)
	}
}

func TestAllocateWithoutPressure(t *testing.T) {
	f := sumFunc(10)
	asn, err := Allocate(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if asn.NumSpilled != 0 {
		t.Errorf("spilled %d with 26 regs for 3 vregs", asn.NumSpilled)
	}
	// Simultaneously-live vregs get distinct registers.
	if asn.Phys[0] == asn.Phys[1] || asn.Phys[1] == asn.Phys[2] || asn.Phys[0] == asn.Phys[2] {
		t.Errorf("overlapping intervals share a register: %v", asn.Phys[:3])
	}
}

func TestAllocateSpillsUnderPressure(t *testing.T) {
	f := sumFunc(10)
	asn, err := Allocate(f, DefaultAllocatable()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if asn.NumSpilled == 0 {
		t.Error("no spills with 2 regs for 3 overlapping vregs")
	}
	if asn.NumSlots != asn.NumSpilled {
		t.Errorf("slots = %d, spilled = %d", asn.NumSlots, asn.NumSpilled)
	}
}

func TestAllocateRejectsTinyRegFile(t *testing.T) {
	if _, err := Allocate(sumFunc(3), DefaultAllocatable()[:1]); err == nil {
		t.Error("1-register allocation accepted")
	}
}

func TestLowerRejectsHugeImmediates(t *testing.T) {
	f := NewFunc("imm")
	b := f.NewBlock()
	v := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: v, Imm: 0})
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: v, A: v, Imm: 1 << 40})
	asn, err := Allocate(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(f, asn); err == nil {
		t.Error("huge ALU immediate accepted")
	}
}

func TestSpillCodeProvenance(t *testing.T) {
	f := sumFunc(50)
	p, st, err := Compile(f, Options{NumRegs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spilled == 0 {
		t.Fatal("expected spills")
	}
	var spills, reloads int
	for pc := range p.Insts {
		switch p.ProvenanceOf(pc) {
		case program.ProvSpill:
			spills++
		case program.ProvReload:
			reloads++
		}
	}
	if spills == 0 || reloads == 0 {
		t.Errorf("spill/reload provenance missing: %d/%d", spills, reloads)
	}
}

// checkEquivRaw interprets two IR functions and compares outputs.
func checkEquivRaw(t *testing.T, a, b *Func) {
	t.Helper()
	wa, err := Interpret(a, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := Interpret(b, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(wa) != len(wb) {
		t.Fatalf("output lengths differ: %v vs %v", wa, wb)
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, wa, wb)
		}
	}
}
