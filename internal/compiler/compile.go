package compiler

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// Options selects the optimization pipeline. The zero value disables both
// code-motion passes and uses the full register file.
type Options struct {
	// MaxHoist is the per-branch limit for speculative hoisting;
	// 0 disables the pass.
	MaxHoist int
	// MaxLICM is the per-loop limit for loop-invariant code motion;
	// 0 disables the pass.
	MaxLICM int
	// NumRegs limits the allocatable machine registers (2..26) to induce
	// spill pressure; 0 means all 26.
	NumRegs int
	// Fold runs block-local constant folding and copy propagation before
	// DCE.
	Fold bool
	// DCE runs static dead-code elimination after the code-motion passes
	// (experiment E12's ablation).
	DCE bool
}

// DefaultOptions is the "production compiler" configuration used by the
// workload suite: aggressive hoisting and LICM with the full register file.
func DefaultOptions() Options {
	return Options{MaxHoist: 3, MaxLICM: 8}
}

// Clone deep-copies the function so passes can mutate freely.
func (f *Func) Clone() *Func {
	g := &Func{
		Name:     f.Name,
		Entry:    f.Entry,
		Data:     append([]byte(nil), f.Data...),
		nextVReg: f.nextVReg,
	}
	g.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{
			ID:     b.ID,
			Instrs: append([]Instr(nil), b.Instrs...),
			Prov:   append([]program.Provenance(nil), b.Prov...),
			Term:   b.Term,
		}
		g.Blocks[i] = nb
	}
	return g
}

// PassStats reports what the optimization pipeline did.
type PassStats struct {
	Hoisted    int
	LICMMoved  int
	Folded     int
	DCERemoved int
	Spilled    int
	SpillSlots int
}

// Compile translates an IR function to a program under the given options.
// The input function is not modified.
func Compile(f *Func, opts Options) (*program.Program, PassStats, error) {
	var st PassStats
	if err := f.Validate(); err != nil {
		return nil, st, err
	}
	work := f.Clone()
	if opts.MaxLICM > 0 {
		st.LICMMoved = LICM(work, opts.MaxLICM)
	}
	if opts.MaxHoist > 0 {
		st.Hoisted = Hoist(work, opts.MaxHoist)
	}
	if opts.Fold {
		st.Folded = Fold(work)
	}
	if opts.DCE {
		st.DCERemoved = DCE(work)
	}
	var regs []isa.Reg
	if opts.NumRegs > 0 {
		all := DefaultAllocatable()
		if opts.NumRegs > len(all) {
			opts.NumRegs = len(all)
		}
		regs = all[:opts.NumRegs]
	}
	asn, err := Allocate(work, regs)
	if err != nil {
		return nil, st, err
	}
	st.Spilled = asn.NumSpilled
	st.SpillSlots = asn.NumSlots
	p, err := Lower(work, asn)
	if err != nil {
		return nil, st, err
	}
	return p, st, nil
}
