package compiler

import "repro/internal/program"

// Hoist is the speculative instruction scheduler: it moves side-effect-free
// instructions from a conditional branch's successors up into the branch's
// block, so they issue earlier regardless of the branch direction. This is
// the compile-time code motion the paper identifies as a major creator of
// partially dead instructions — on the path that does not use the hoisted
// result, the instance is dynamically dead.
//
// An instruction I at the head region of successor S (whose only
// predecessor is B) may be hoisted when:
//
//   - I is side-effect-free (ALU or constant);
//   - none of I's sources is defined by an instruction kept in S before I;
//   - I's destination is not read by an instruction kept in S before I
//     (which would have observed the pre-branch value);
//   - I's destination is not an operand of B's branch;
//   - I's destination is not live into the other successor (writing it
//     early must not clobber a value the other path needs).
//
// maxPerBranch bounds how many instructions move above one branch. The
// pass returns the number of instructions hoisted.
func Hoist(f *Func, maxPerBranch int) int {
	if maxPerBranch <= 0 {
		return 0
	}
	preds := f.Preds()
	live := ComputeLiveness(f)
	depth := loopDepths(f)
	moved := 0
	for _, b := range f.Blocks {
		if b.Term.Kind != TBranch || b.Term.To == b.Term.Else {
			continue
		}
		for _, pair := range [2][2]int{{b.Term.To, b.Term.Else}, {b.Term.Else, b.Term.To}} {
			s, other := pair[0], pair[1]
			if len(preds[s]) != 1 {
				continue
			}
			// Never move code to a more deeply nested position: hoisting
			// loop-exit code above a latch branch would execute it on
			// every iteration. Real schedulers only speculate sideways or
			// upward in the loop nest.
			if depth[b.ID] > depth[s] {
				continue
			}
			n := hoistFrom(f, live, b, f.Blocks[s], other, maxPerBranch)
			if n > 0 {
				// Hoisting moves defs out of s, which can make their
				// registers live into s; recompute before the next
				// successor (or block) consults the sets.
				live = ComputeLiveness(f)
				moved += n
			}
		}
	}
	return moved
}

func hoistFrom(f *Func, live *Liveness, b, s *Block, other, limit int) int {
	branchUses := newBitset(f.NumVRegs())
	for _, u := range b.Term.Uses(nil) {
		branchUses.set(u)
	}
	keptDefs := newBitset(f.NumVRegs())
	keptUses := newBitset(f.NumVRegs())

	var keepInstrs []Instr
	var keepProv []program.Provenance
	var hoisted []Instr
	var scratch []VReg
	for i, in := range s.Instrs {
		ok := len(hoisted) < limit && in.SideEffectFree() &&
			!branchUses.has(in.Dst) &&
			!live.LiveIn(other, in.Dst) &&
			!keptUses.has(in.Dst)
		if ok {
			scratch = in.Uses(scratch[:0])
			for _, u := range scratch {
				if keptDefs.has(u) {
					ok = false
					break
				}
			}
		}
		if ok {
			hoisted = append(hoisted, in)
			continue
		}
		keepInstrs = append(keepInstrs, in)
		keepProv = append(keepProv, s.Prov[i])
		if in.HasDst() {
			keptDefs.set(in.Dst)
		}
		for _, u := range in.Uses(scratch[:0]) {
			keptUses.set(u)
		}
	}
	if len(hoisted) == 0 {
		return 0
	}
	for _, in := range hoisted {
		b.AppendProv(in, program.ProvHoisted)
	}
	s.Instrs = keepInstrs
	s.Prov = keepProv
	return len(hoisted)
}
