package compiler

// Dominators holds the immediate-dominator tree of a function's CFG,
// computed with the classic iterative bitset algorithm (adequate for the
// block counts this compiler sees).
type Dominators struct {
	// dom[b] is the set of blocks dominating b (including b itself).
	dom []bitsetInt
}

type bitsetInt []uint64

func newBitsetInt(n int) bitsetInt { return make(bitsetInt, (n+63)/64) }

func (s bitsetInt) set(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s bitsetInt) has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }
func (s bitsetInt) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}
func (s bitsetInt) intersectInto(o bitsetInt) bool {
	changed := false
	for i := range s {
		n := s[i] & o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// ComputeDominators computes the dominator sets of every block reachable
// from the entry. Unreachable blocks dominate nothing and are dominated by
// everything (the usual convention of the iterative algorithm).
func ComputeDominators(f *Func) *Dominators {
	n := len(f.Blocks)
	preds := f.Preds()
	d := &Dominators{dom: make([]bitsetInt, n)}
	for i := range d.dom {
		d.dom[i] = newBitsetInt(n)
		if i == f.Entry {
			d.dom[i].set(i)
		} else {
			d.dom[i].fill()
		}
	}
	tmp := newBitsetInt(n)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if i == f.Entry {
				continue
			}
			tmp.fill()
			for _, p := range preds[i] {
				tmp.intersectInto(d.dom[p])
			}
			tmp.set(i)
			if d.dom[i].intersectInto(tmp) {
				changed = true
			}
		}
	}
	return d
}

// Dominates reports whether block a dominates block b.
func (d *Dominators) Dominates(a, b int) bool { return d.dom[b].has(a) }

// Loop is one natural loop.
type Loop struct {
	Header int
	// Blocks contains every block in the loop, including the header.
	Blocks map[int]bool
	// EntryPreds are the header's predecessors outside the loop.
	EntryPreds []int
}

// Contains reports whether block id belongs to the loop.
func (l *Loop) Contains(id int) bool { return l.Blocks[id] }

// FindLoops discovers the natural loops of the function: for every back
// edge t→h (where h dominates t), the loop is h plus all blocks that reach
// t without passing through h. Loops sharing a header are merged.
func FindLoops(f *Func, d *Dominators) []*Loop {
	preds := f.Preds()
	retSites := f.returnSites()
	byHeader := make(map[int]*Loop)
	var order []int
	for _, b := range f.Blocks {
		for _, s := range f.cfgSuccs(b, retSites) {
			if !d.Dominates(s, b.ID) {
				continue
			}
			// Back edge b.ID -> s.
			loop, ok := byHeader[s]
			if !ok {
				loop = &Loop{Header: s, Blocks: map[int]bool{s: true}}
				byHeader[s] = loop
				order = append(order, s)
			}
			// Walk backward from the tail collecting the body.
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if loop.Blocks[x] {
					continue
				}
				loop.Blocks[x] = true
				stack = append(stack, preds[x]...)
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, h := range order {
		loop := byHeader[h]
		for _, p := range preds[loop.Header] {
			if !loop.Blocks[p] {
				loop.EntryPreds = append(loop.EntryPreds, p)
			}
		}
		loops = append(loops, loop)
	}
	return loops
}

// loopDepths returns, per block, the number of natural loops containing it
// (0 = not in any loop).
func loopDepths(f *Func) []int {
	depth := make([]int, len(f.Blocks))
	for _, l := range FindLoops(f, ComputeDominators(f)) {
		for id := range l.Blocks {
			depth[id]++
		}
	}
	return depth
}
