package compiler

import (
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// sumFunc builds: for i = n..1 { acc += i }; out acc.
func sumFunc(n int64) *Func {
	f := NewFunc("sum")
	entry := f.NewBlock() // 0
	loop := f.NewBlock()  // 1
	exit := f.NewBlock()  // 2

	i := f.NewVReg()
	acc := f.NewVReg()
	zero := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: i, Imm: n})
	entry.Append(Instr{Kind: KConst, Dst: acc, Imm: 0})
	entry.Append(Instr{Kind: KConst, Dst: zero, Imm: 0})
	entry.Term = Terminator{Kind: TJump, To: loop.ID}

	loop.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: acc, A: acc, B: i})
	loop.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: i, A: i, Imm: -1})
	loop.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: i, B: zero, To: loop.ID, Else: exit.ID}

	exit.Append(Instr{Kind: KOut, A: acc})
	return f
}

// diamondFunc builds an if/else whose then-side computes an extra value:
//
//	t = a * 3
//	if a < b { x = t + 1 } else { x = a }
//	out x
func diamondFunc() *Func {
	f := NewFunc("diamond")
	entry := f.NewBlock()
	then := f.NewBlock()
	els := f.NewBlock()
	join := f.NewBlock()

	a := f.NewVReg()
	b := f.NewVReg()
	t := f.NewVReg()
	x := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: a, Imm: 5})
	entry.Append(Instr{Kind: KConst, Dst: b, Imm: 9})
	entry.Term = Terminator{Kind: TBranch, Op: isa.BLT, A: a, B: b, To: then.ID, Else: els.ID}

	then.Append(Instr{Kind: KALUImm, Op: isa.SLLI, Dst: t, A: a, Imm: 1})
	then.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: x, A: t, B: a})
	then.Term = Terminator{Kind: TJump, To: join.ID}

	els.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: x, A: a, Imm: 0})
	els.Term = Terminator{Kind: TJump, To: join.ID}

	join.Append(Instr{Kind: KOut, A: x})
	return f
}

// memFunc builds: store 3 values to data, load them back summed.
func memFunc() *Func {
	f := NewFunc("mem")
	f.Data = make([]byte, 64)
	b := f.NewBlock()
	base := f.NewVReg()
	v := f.NewVReg()
	sum := f.NewVReg()
	tmp := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: base, Imm: int64(program.DataBase)})
	b.Append(Instr{Kind: KConst, Dst: sum, Imm: 0})
	for k := int64(0); k < 3; k++ {
		b.Append(Instr{Kind: KConst, Dst: v, Imm: 10 + k})
		b.Append(Instr{Kind: KStore, Op: isa.SD, A: base, B: v, Imm: 8 * k})
	}
	for k := int64(0); k < 3; k++ {
		b.Append(Instr{Kind: KLoad, Op: isa.LD, Dst: tmp, A: base, Imm: 8 * k})
		b.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: sum, A: sum, B: tmp})
	}
	b.Append(Instr{Kind: KOut, A: sum})
	return f
}

// runCompiled compiles and executes on the emulator, returning outputs.
func runCompiled(t *testing.T, f *Func, opts Options) []uint64 {
	t.Helper()
	p, _, err := Compile(f, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, m, err := emu.Collect(p, 10_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m.Outputs
}

// checkEquiv verifies interpreter and compiled outputs agree under the
// given options.
func checkEquiv(t *testing.T, f *Func, opts Options) []uint64 {
	t.Helper()
	want, err := Interpret(f, 10_000_000)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	got := runCompiled(t, f, opts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("outputs differ under %+v:\n got %v\nwant %v", opts, got, want)
	}
	return got
}

func allOptionSets() []Options {
	return []Options{
		{},                                      // -O0
		{MaxHoist: 3},                           // hoist only
		{MaxLICM: 8},                            // licm only
		DefaultOptions(),                        // both
		{MaxHoist: 3, MaxLICM: 8, NumRegs: 3},   // heavy spills
		{MaxHoist: 10, MaxLICM: 20, NumRegs: 4}, // aggressive + spills
	}
}

func TestSumCompiles(t *testing.T) {
	out := checkEquiv(t, sumFunc(10), Options{})
	if len(out) != 1 || out[0] != 55 {
		t.Fatalf("sum(10) = %v, want [55]", out)
	}
}

func TestEquivalenceAcrossOptionSets(t *testing.T) {
	funcs := map[string]*Func{
		"sum":     sumFunc(100),
		"diamond": diamondFunc(),
		"mem":     memFunc(),
	}
	for name, f := range funcs {
		for _, opts := range allOptionSets() {
			t.Run(name, func(t *testing.T) {
				checkEquiv(t, f, opts)
			})
		}
	}
}

func TestInterpretBudget(t *testing.T) {
	f := NewFunc("spin")
	b := f.NewBlock()
	b.Term = Terminator{Kind: TJump, To: b.ID}
	if _, err := Interpret(f, 100); err != ErrInterpBudget {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestValidateCatchesBadIR(t *testing.T) {
	f := NewFunc("bad")
	b := f.NewBlock()
	b.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: 0, A: 0, B: 0}) // unallocated vregs
	if err := f.Validate(); err == nil {
		t.Error("unallocated vregs accepted")
	}

	f2 := NewFunc("bad2")
	b2 := f2.NewBlock()
	v := f2.NewVReg()
	b2.Append(Instr{Kind: KALU, Op: isa.ADDI, Dst: v, A: v, B: v}) // imm op as KALU
	if err := f2.Validate(); err == nil {
		t.Error("mismatched op kind accepted")
	}

	f3 := NewFunc("bad3")
	b3 := f3.NewBlock()
	b3.Term = Terminator{Kind: TJump, To: 99}
	if err := f3.Validate(); err == nil {
		t.Error("out-of-range jump accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := sumFunc(5)
	g := f.Clone()
	g.Blocks[0].Instrs[0].Imm = 999
	g.Blocks[0].Prov[0] = program.ProvHoisted
	if f.Blocks[0].Instrs[0].Imm == 999 {
		t.Error("instruction slice shared")
	}
	if f.Blocks[0].Prov[0] == program.ProvHoisted {
		t.Error("provenance slice shared")
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	f := diamondFunc()
	before := len(f.Blocks[1].Instrs)
	if _, _, err := Compile(f, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks[1].Instrs) != before {
		t.Error("Compile mutated its input function")
	}
}
