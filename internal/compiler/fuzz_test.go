package compiler

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/emu"
)

// fuzzOptionSets are the compiler configurations differential-tested
// against the IR interpreter.
var fuzzOptionSets = []Options{
	{},
	{MaxHoist: 2},
	{MaxLICM: 4},
	{MaxHoist: 3, MaxLICM: 8},
	{MaxHoist: 3, MaxLICM: 8, NumRegs: 4},
	{MaxHoist: 1, NumRegs: 2},
	{MaxHoist: 3, MaxLICM: 8, Fold: true, DCE: true},
	{Fold: true, DCE: true, NumRegs: 3},
}

// TestFuzzCompilerEquivalence generates random IR functions and checks
// that compiled execution matches direct interpretation under every
// optimization configuration — the compiler's end-to-end correctness
// property.
func TestFuzzCompilerEquivalence(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		f := RandomFunc(rng, 2+rng.Intn(10))
		if err := f.Validate(); err != nil {
			t.Fatalf("seed %d: invalid IR: %v", seed, err)
		}
		want, err := Interpret(f, 1_000_000)
		if err != nil {
			t.Fatalf("seed %d: interpret: %v", seed, err)
		}
		for _, opts := range fuzzOptionSets {
			p, _, err := Compile(f, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: compile: %v", seed, opts, err)
			}
			_, m, err := emu.Collect(p, 2_000_000)
			if err != nil {
				t.Fatalf("seed %d opts %+v: run: %v", seed, opts, err)
			}
			if !m.Halted {
				t.Fatalf("seed %d opts %+v: did not halt", seed, opts)
			}
			if !reflect.DeepEqual(m.Outputs, want) {
				t.Fatalf("seed %d opts %+v: outputs differ\n got %v\nwant %v",
					seed, opts, m.Outputs, want)
			}
		}
	}
}

// TestFuzzPassesPreserveSemantics applies each pass in isolation to random
// functions and re-interprets, pinning miscompiles to a single pass.
func TestFuzzPassesPreserveSemantics(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		f := RandomFunc(rng, 2+rng.Intn(10))
		want, err := Interpret(f, 1_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		passes := []struct {
			name string
			run  func(*Func)
		}{
			{"hoist", func(g *Func) { Hoist(g, 3) }},
			{"licm", func(g *Func) { LICM(g, 8) }},
			{"hoist+licm", func(g *Func) { LICM(g, 8); Hoist(g, 3) }},
		}
		for _, pass := range passes {
			g := f.Clone()
			pass.run(g)
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d pass %s: broke validity: %v", seed, pass.name, err)
			}
			got, err := Interpret(g, 1_000_000)
			if err != nil {
				t.Fatalf("seed %d pass %s: %v", seed, pass.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d pass %s: outputs differ\n got %v\nwant %v",
					seed, pass.name, got, want)
			}
		}
	}
}

func TestRandomFuncAlwaysTerminates(t *testing.T) {
	for seed := 0; seed < 50; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		f := RandomFunc(rng, 12)
		if _, err := Interpret(f, 5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomFuncDeterministic(t *testing.T) {
	a := RandomFunc(rand.New(rand.NewSource(42)), 8)
	b := RandomFunc(rand.New(rand.NewSource(42)), 8)
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("block counts differ")
	}
	for i := range a.Blocks {
		if !reflect.DeepEqual(a.Blocks[i].Instrs, b.Blocks[i].Instrs) {
			t.Fatalf("block %d differs", i)
		}
	}
}
