package compiler_test

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/isa"
)

// Example builds a tiny IR function, compiles it, and shows that the
// interpreter and the generated machine code agree.
func Example() {
	f := compiler.NewFunc("triple")
	b := f.NewBlock()
	x := f.NewVReg()
	y := f.NewVReg()
	b.Append(compiler.Instr{Kind: compiler.KConst, Dst: x, Imm: 14})
	b.Append(compiler.Instr{Kind: compiler.KALUImm, Op: isa.SLLI, Dst: y, A: x, Imm: 1})
	b.Append(compiler.Instr{Kind: compiler.KALU, Op: isa.ADD, Dst: y, A: y, B: x})
	b.Append(compiler.Instr{Kind: compiler.KOut, A: y})

	out, err := compiler.Interpret(f, 1000)
	if err != nil {
		log.Fatal(err)
	}
	prog, passes, err := compiler.Compile(f, compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreted output %v, compiled to %d instructions (%d hoisted)\n",
		out, len(prog.Insts), passes.Hoisted)
	// Output: interpreted output [42], compiled to 5 instructions (0 hoisted)
}

// ExampleHoist demonstrates the scheduler moving a then-side computation
// above its branch — the transformation that creates partially dead
// instructions.
func ExampleHoist() {
	f := compiler.NewFunc("diamond")
	entry := f.NewBlock()
	then := f.NewBlock()
	join := f.NewBlock()
	a := f.NewVReg()
	t := f.NewVReg()
	entry.Append(compiler.Instr{Kind: compiler.KConst, Dst: a, Imm: 5})
	entry.Term = compiler.Terminator{
		Kind: compiler.TBranch, Op: isa.BLT, A: a, B: a,
		To: then.ID, Else: join.ID,
	}
	then.Append(compiler.Instr{Kind: compiler.KALUImm, Op: isa.SLLI, Dst: t, A: a, Imm: 2})
	then.Append(compiler.Instr{Kind: compiler.KOut, A: t})
	then.Term = compiler.Terminator{Kind: compiler.TJump, To: join.ID}

	moved := compiler.Hoist(f, 2)
	fmt.Printf("hoisted %d instruction(s); then-block now has %d\n",
		moved, len(f.Blocks[then.ID].Instrs))
	// Output: hoisted 1 instruction(s); then-block now has 1
}
