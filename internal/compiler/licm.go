package compiler

import (
	"sort"

	"repro/internal/program"
)

// LICM performs loop-invariant code motion: side-effect-free instructions
// whose operands are not defined anywhere in a loop move to the loop's
// entry predecessor. Like hoisting, the motion is speculative with respect
// to the loop's internal control flow — an invariant computed on entry is
// dynamically dead in traversals that never reach its consumer.
//
// An instruction I in loop block X is moved when:
//
//   - I is side-effect-free;
//   - no instruction in the loop defines I's sources;
//   - I is the loop's only definition of its destination;
//   - I's destination is not live into the loop header (so no path can
//     observe the pre-loop value);
//   - I's destination is not live on any loop exit edge (its value is
//     consumed entirely inside the loop, so executing it early can only
//     change dead values outside).
//
// The loop must have exactly one entry predecessor, which acts as the
// preheader. maxPerLoop bounds the motion per loop. Returns the number of
// instructions moved.
func LICM(f *Func, maxPerLoop int) int {
	if maxPerLoop <= 0 {
		return 0
	}
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	moved := 0
	for _, loop := range loops {
		if len(loop.EntryPreds) != 1 {
			continue
		}
		pre := f.Blocks[loop.EntryPreds[0]]
		// The preheader must fall into the header unconditionally;
		// otherwise code appended to it would speculate across a branch
		// whose other path we have not analyzed.
		if pre.Term.Kind != TJump || pre.Term.To != loop.Header {
			continue
		}
		moved += licmLoop(f, loop, pre, maxPerLoop)
	}
	return moved
}

func licmLoop(f *Func, loop *Loop, pre *Block, limit int) int {
	live := ComputeLiveness(f)
	nv := f.NumVRegs()

	// Deterministic block order (loop.Blocks is a set).
	ids := make([]int, 0, len(loop.Blocks))
	for id := range loop.Blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Count definitions inside the loop.
	defCount := make([]int, nv)
	for _, id := range ids {
		for _, in := range f.Blocks[id].Instrs {
			if in.HasDst() {
				defCount[in.Dst]++
			}
		}
	}
	// Registers live on any exit edge.
	retSites := f.returnSites()
	exitLive := newBitset(nv)
	for _, id := range ids {
		for _, s := range f.cfgSuccs(f.Blocks[id], retSites) {
			if !loop.Contains(s) {
				exitLive.orInto(live.In[s])
			}
		}
	}

	moved := 0
	var scratch []VReg
	// Iterate to a fixpoint so chains of invariants move together.
	for changed := true; changed && moved < limit; {
		changed = false
		for _, id := range ids {
			blk := f.Blocks[id]
			var keep []Instr
			var keepProv []program.Provenance
			for i, in := range blk.Instrs {
				ok := moved < limit && in.SideEffectFree() &&
					defCount[in.Dst] == 1 &&
					!live.LiveIn(loop.Header, in.Dst) &&
					!exitLive.has(in.Dst)
				if ok {
					scratch = in.Uses(scratch[:0])
					for _, u := range scratch {
						if defCount[u] > 0 {
							ok = false
							break
						}
					}
				}
				if !ok {
					keep = append(keep, in)
					keepProv = append(keepProv, blk.Prov[i])
					continue
				}
				pre.AppendProv(in, program.ProvLICM)
				defCount[in.Dst]--
				moved++
				changed = true
			}
			blk.Instrs = keep
			blk.Prov = keepProv
		}
	}
	return moved
}
