package compiler

import "repro/internal/program"

// DCE removes statically dead code: side-effect-free instructions whose
// destination is not live immediately after them, iterated to a fixpoint.
//
// Its role in this reproduction is the contrast of experiment E12: static
// dead-code elimination can only remove instructions that are dead on
// *every* path, while the paper's subject — dynamically dead instructions
// — are mostly produced by static instructions that are useful on some
// paths. Running DCE therefore removes the fully-dead leftovers but
// barely moves the dynamic dead-instruction fraction.
//
// It returns the number of instructions removed.
func DCE(f *Func) int {
	removed := 0
	for {
		live := ComputeLiveness(f)
		changed := false
		for _, b := range f.Blocks {
			points := liveAcross(f, live, b.ID)
			var keep []Instr
			var keepProv []program.Provenance
			for i, in := range b.Instrs {
				if in.SideEffectFree() && !points[i+1].has(in.Dst) {
					removed++
					changed = true
					continue
				}
				keep = append(keep, in)
				keepProv = append(keepProv, b.Prov[i])
			}
			b.Instrs = keep
			b.Prov = keepProv
		}
		if !changed {
			return removed
		}
	}
}
