package compiler

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// ErrInterpBudget is returned when IR interpretation exceeds its step
// budget.
var ErrInterpBudget = errors.New("compiler: interpreter budget exhausted")

// Interpret executes the IR function directly and returns its outputs.
// It is the compiler's reference semantics: lowering is correct when the
// compiled program, run on the emulator, produces the same outputs.
func Interpret(f *Func, budget int) ([]uint64, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	regs := make([]uint64, f.NumVRegs())
	mem := make(map[uint64]byte, len(f.Data))
	for i, b := range f.Data {
		mem[program.DataBase+uint64(i)] = b
	}
	load := func(addr uint64, w int) uint64 {
		var v uint64
		for i := 0; i < w; i++ {
			v |= uint64(mem[addr+uint64(i)]) << (8 * i)
		}
		return v
	}
	store := func(addr uint64, w int, v uint64) {
		for i := 0; i < w; i++ {
			mem[addr+uint64(i)] = byte(v >> (8 * i))
		}
	}

	var outputs []uint64
	var callStack []int
	steps := 0
	cur := f.Entry
	for {
		b := f.Blocks[cur]
		for _, in := range b.Instrs {
			steps++
			if steps > budget {
				return outputs, ErrInterpBudget
			}
			switch in.Kind {
			case KConst:
				regs[in.Dst] = uint64(in.Imm)
			case KALU:
				regs[in.Dst] = aluEval(in.Op, regs[in.A], regs[in.B])
			case KALUImm:
				regs[in.Dst] = aluImmEval(in.Op, regs[in.A], in.Imm)
			case KLoad:
				regs[in.Dst] = load(regs[in.A]+uint64(in.Imm), in.Op.MemWidth())
			case KStore:
				store(regs[in.A]+uint64(in.Imm), in.Op.MemWidth(), regs[in.B])
			case KOut:
				outputs = append(outputs, regs[in.A])
			default:
				return nil, fmt.Errorf("compiler: interpret: bad kind %v", in.Kind)
			}
		}
		steps++
		if steps > budget {
			return outputs, ErrInterpBudget
		}
		switch b.Term.Kind {
		case THalt:
			return outputs, nil
		case TJump:
			cur = b.Term.To
		case TBranch:
			if branchEval(b.Term.Op, regs[b.Term.A], regs[b.Term.B]) {
				cur = b.Term.To
			} else {
				cur = b.Term.Else
			}
		case TCall:
			callStack = append(callStack, b.Term.Else)
			cur = b.Term.To
		case TRet:
			if len(callStack) == 0 {
				return outputs, fmt.Errorf("compiler: interpret: return with empty call stack in block %d", cur)
			}
			cur = callStack[len(callStack)-1]
			callStack = callStack[:len(callStack)-1]
		}
	}
}

// aluEval mirrors the emulator's register-register semantics.
//
// Invariant: the eval helpers below are only reached for opcodes the
// interpreter's dispatch already classified (ALU, ALU-immediate, branch),
// so their trailing switch panics are unreachable for any IR that passed
// Func.Validate. They stay panics deliberately — hitting one means the
// classifier and the evaluator disagree, which is a bug in this package,
// not a condition a caller can provoke or handle.
func aluEval(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SLL:
		return a << (b & 63)
	case isa.SRL:
		return a >> (b & 63)
	case isa.SRA:
		return uint64(int64(a) >> (b & 63))
	case isa.SLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case isa.SLTU:
		if a < b {
			return 1
		}
		return 0
	case isa.MUL:
		return a * b
	case isa.DIVU:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case isa.REMU:
		if b == 0 {
			return a
		}
		return a % b
	}
	panic(fmt.Sprintf("compiler: aluEval bad op %v", op))
}

// aluImmEval mirrors the emulator's register-immediate semantics.
func aluImmEval(op isa.Op, a uint64, imm int64) uint64 {
	ui := uint64(imm)
	switch op {
	case isa.ADDI:
		return a + ui
	case isa.ANDI:
		return a & ui
	case isa.ORI:
		return a | ui
	case isa.XORI:
		return a ^ ui
	case isa.SLTI:
		if int64(a) < imm {
			return 1
		}
		return 0
	case isa.SLLI:
		return a << (ui & 63)
	case isa.SRLI:
		return a >> (ui & 63)
	case isa.SRAI:
		return uint64(int64(a) >> (ui & 63))
	case isa.LUI:
		return uint64(imm) << 16
	}
	panic(fmt.Sprintf("compiler: aluImmEval bad op %v", op))
}

func branchEval(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	}
	panic(fmt.Sprintf("compiler: branchEval bad op %v", op))
}
