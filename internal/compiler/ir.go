// Package compiler implements a small optimizing compiler from a three-
// address intermediate representation to r64 machine code. Its purpose in
// this reproduction is twofold:
//
//  1. It is the code generator behind internal/workload's synthetic
//     benchmark suite, producing realistic machine code (address
//     arithmetic, spills, branch diamonds, loop nests).
//  2. Its optimization passes — speculative hoisting above branches and
//     loop-invariant code motion — are the *compiler scheduling* the paper
//     identifies as a major creator of partially dead instructions, and
//     the register allocator's spill code is another. Each emitted
//     instruction carries a program.Provenance tag so the deadness oracle
//     can attribute dead instances to their cause (experiment E3).
//
// The IR is unstructured three-address code over virtual registers: a
// function is a list of basic blocks, each a sequence of Instr values
// closed by a Terminator. Virtual registers may be redefined (no SSA).
package compiler

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// VReg names a virtual register. NoReg marks an unused operand.
type VReg int32

// NoReg is the absent-operand sentinel.
const NoReg VReg = -1

func (v VReg) String() string {
	if v == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(v))
}

// Kind discriminates IR instruction forms.
type Kind uint8

const (
	// KConst materializes Imm into Dst.
	KConst Kind = iota
	// KALU is Dst = Op(A, B) for a register-register isa opcode.
	KALU
	// KALUImm is Dst = Op(A, Imm) for an immediate isa opcode.
	KALUImm
	// KLoad is Dst = mem[A + Imm] with Op's width.
	KLoad
	// KStore is mem[A + Imm] = B with Op's width.
	KStore
	// KOut reports A as a program output.
	KOut
)

func (k Kind) String() string {
	switch k {
	case KConst:
		return "const"
	case KALU:
		return "alu"
	case KALUImm:
		return "aluimm"
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KOut:
		return "out"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instr is one IR instruction.
type Instr struct {
	Kind Kind
	// Op is the isa opcode for KALU/KALUImm/KLoad/KStore.
	Op  isa.Op
	Dst VReg
	A   VReg
	B   VReg
	Imm int64
}

// HasDst reports whether the instruction defines Dst.
func (in Instr) HasDst() bool {
	switch in.Kind {
	case KConst, KALU, KALUImm, KLoad:
		return true
	}
	return false
}

// Uses appends the virtual registers the instruction reads to dst.
func (in Instr) Uses(dst []VReg) []VReg {
	switch in.Kind {
	case KALU:
		dst = append(dst, in.A, in.B)
	case KALUImm, KLoad, KOut:
		dst = append(dst, in.A)
	case KStore:
		dst = append(dst, in.A, in.B)
	}
	return dst
}

// SideEffectFree reports whether the instruction can be executed
// speculatively: it writes only Dst and touches no memory or output.
func (in Instr) SideEffectFree() bool {
	switch in.Kind {
	case KConst, KALU, KALUImm:
		return true
	}
	return false
}

func (in Instr) String() string {
	switch in.Kind {
	case KConst:
		return fmt.Sprintf("%v = const %d", in.Dst, in.Imm)
	case KALU:
		return fmt.Sprintf("%v = %v %v, %v", in.Dst, in.Op, in.A, in.B)
	case KALUImm:
		return fmt.Sprintf("%v = %v %v, %d", in.Dst, in.Op, in.A, in.Imm)
	case KLoad:
		return fmt.Sprintf("%v = %v [%v+%d]", in.Dst, in.Op, in.A, in.Imm)
	case KStore:
		return fmt.Sprintf("%v [%v+%d] = %v", in.Op, in.A, in.Imm, in.B)
	case KOut:
		return fmt.Sprintf("out %v", in.A)
	}
	return "?"
}

// TermKind discriminates block terminators.
type TermKind uint8

const (
	// TJump transfers unconditionally to To.
	TJump TermKind = iota
	// TBranch transfers to To when Op(A,B) holds, else to Else.
	TBranch
	// TCall transfers to the subroutine entry To, arranging for a matching
	// TRet to resume at Else. Subroutines share the caller's register
	// space (they are labeled code regions, as in assembly) and must be
	// leaves: a path from a subroutine entry to another TCall before its
	// TRet would clobber the link register when lowered.
	TCall
	// TRet resumes after the most recent TCall.
	TRet
	// THalt ends the program.
	THalt
)

// Terminator closes a basic block.
type Terminator struct {
	Kind TermKind
	// Op is a conditional branch opcode (BEQ/BNE/BLT/BGE) for TBranch.
	Op   isa.Op
	A, B VReg
	// To is the jump target (TJump), taken target (TBranch), or callee
	// entry (TCall).
	To int
	// Else is the not-taken target (TBranch) or the block a matching TRet
	// resumes at (TCall).
	Else int
}

// Succs returns the statically known successor block IDs. A TCall lists
// both the callee entry and the post-return continuation; a TRet has no
// static successors (see Func.CFGSuccs for the conservative call-graph
// closure used by the dataflow passes).
func (t Terminator) Succs() []int {
	switch t.Kind {
	case TJump:
		return []int{t.To}
	case TBranch:
		return []int{t.To, t.Else}
	case TCall:
		return []int{t.To, t.Else}
	}
	return nil
}

// Uses appends the virtual registers the terminator reads.
func (t Terminator) Uses(dst []VReg) []VReg {
	if t.Kind == TBranch {
		dst = append(dst, t.A, t.B)
	}
	return dst
}

// Block is one IR basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Terminator
	// Prov tags each instruction's provenance (parallel to Instrs).
	// Instructions added by the builder are ProvNormal; passes tag what
	// they move or create.
	Prov []program.Provenance
}

// Func is one IR function — the unit the compiler translates. Build with
// NewFunc and the Block/instruction helpers.
type Func struct {
	Name   string
	Blocks []*Block
	Entry  int
	// Data is the initialized data segment the generated code addresses
	// (loaded at program.DataBase).
	Data     []byte
	nextVReg VReg
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func {
	return &Func{Name: name}
}

// NewBlock appends a new empty block (terminator THalt until set) and
// returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Term: Terminator{Kind: THalt}}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewVReg allocates a fresh virtual register.
func (f *Func) NewVReg() VReg {
	v := f.nextVReg
	f.nextVReg++
	return v
}

// NumVRegs returns the number of allocated virtual registers.
func (f *Func) NumVRegs() int { return int(f.nextVReg) }

// Append adds an instruction to the block with ProvNormal provenance.
func (b *Block) Append(in Instr) {
	b.AppendProv(in, program.ProvNormal)
}

// AppendProv adds an instruction with an explicit provenance tag.
func (b *Block) AppendProv(in Instr, prov program.Provenance) {
	b.Instrs = append(b.Instrs, in)
	b.Prov = append(b.Prov, prov)
}

// Validate checks structural sanity: operands allocated, targets in range,
// opcode kinds consistent.
func (f *Func) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("compiler: func %q has no blocks", f.Name)
	}
	if f.Entry < 0 || f.Entry >= len(f.Blocks) {
		return fmt.Errorf("compiler: func %q entry %d out of range", f.Name, f.Entry)
	}
	checkReg := func(v VReg) error {
		if v < 0 || int(v) >= f.NumVRegs() {
			return fmt.Errorf("vreg %v out of range", v)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Prov) != len(b.Instrs) {
			return fmt.Errorf("compiler: block %d provenance length mismatch", b.ID)
		}
		for i, in := range b.Instrs {
			where := func(err error) error {
				return fmt.Errorf("compiler: block %d instr %d (%v): %w", b.ID, i, in, err)
			}
			if in.HasDst() {
				if err := checkReg(in.Dst); err != nil {
					return where(err)
				}
			}
			for _, u := range in.Uses(nil) {
				if err := checkReg(u); err != nil {
					return where(err)
				}
			}
			switch in.Kind {
			case KALU:
				if !in.Op.IsALUReg() {
					return where(fmt.Errorf("op %v is not reg-reg ALU", in.Op))
				}
			case KALUImm:
				if !in.Op.IsALUImm() {
					return where(fmt.Errorf("op %v is not imm ALU", in.Op))
				}
			case KLoad:
				if !in.Op.IsLoad() {
					return where(fmt.Errorf("op %v is not a load", in.Op))
				}
			case KStore:
				if !in.Op.IsStore() {
					return where(fmt.Errorf("op %v is not a store", in.Op))
				}
			}
		}
		switch b.Term.Kind {
		case TCall:
			if !f.validTarget(b.Term.To) || !f.validTarget(b.Term.Else) {
				return fmt.Errorf("compiler: block %d call targets %d/%d out of range",
					b.ID, b.Term.To, b.Term.Else)
			}
		case TBranch:
			if !b.Term.Op.IsCondBranch() {
				return fmt.Errorf("compiler: block %d branch op %v", b.ID, b.Term.Op)
			}
			for _, u := range b.Term.Uses(nil) {
				if err := checkReg(u); err != nil {
					return fmt.Errorf("compiler: block %d terminator: %w", b.ID, err)
				}
			}
			if !f.validTarget(b.Term.To) || !f.validTarget(b.Term.Else) {
				return fmt.Errorf("compiler: block %d branch targets %d/%d out of range",
					b.ID, b.Term.To, b.Term.Else)
			}
		case TJump:
			if !f.validTarget(b.Term.To) {
				return fmt.Errorf("compiler: block %d jump target %d out of range", b.ID, b.Term.To)
			}
		}
	}
	return nil
}

func (f *Func) validTarget(id int) bool { return id >= 0 && id < len(f.Blocks) }

// Preds computes the predecessor lists of every block over the
// conservative CFG (including call and return edges).
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	ret := f.returnSites()
	for _, b := range f.Blocks {
		for _, s := range f.cfgSuccs(b, ret) {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// returnSites lists the continuation blocks of every TCall; a TRet may
// dynamically resume at any of them, so the dataflow passes treat all of
// them as TRet successors (a safe over-approximation).
func (f *Func) returnSites() []int {
	var sites []int
	for _, b := range f.Blocks {
		if b.Term.Kind == TCall {
			sites = append(sites, b.Term.Else)
		}
	}
	return sites
}

// cfgSuccs returns the conservative successor list of b: the static
// successors, with every return site substituted for a TRet.
func (f *Func) cfgSuccs(b *Block, retSites []int) []int {
	if b.Term.Kind == TRet {
		return retSites
	}
	return b.Term.Succs()
}
