package compiler

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
)

func TestDCERemovesUnusedChain(t *testing.T) {
	f := NewFunc("dce")
	b := f.NewBlock()
	live := f.NewVReg()
	d1 := f.NewVReg()
	d2 := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: live, Imm: 7})
	b.Append(Instr{Kind: KConst, Dst: d1, Imm: 1})                       // dead
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: d2, A: d1, Imm: 2}) // dead, cascades
	b.Append(Instr{Kind: KOut, A: live})

	removed := DCE(f)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if len(b.Instrs) != 2 {
		t.Fatalf("remaining = %v", b.Instrs)
	}
	out, err := Interpret(f, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("outputs = %v", out)
	}
}

func TestDCEKeepsStoresAndOuts(t *testing.T) {
	f := memFunc()
	before := 0
	for _, b := range f.Blocks {
		before += len(b.Instrs)
	}
	if removed := DCE(f); removed != 0 {
		t.Errorf("removed %d instructions from a fully live function", removed)
	}
	after := 0
	for _, b := range f.Blocks {
		after += len(b.Instrs)
	}
	if after != before {
		t.Errorf("instruction count changed: %d -> %d", before, after)
	}
}

func TestDCECannotRemovePartiallyDead(t *testing.T) {
	// t is used on the then path only: dynamically dead whenever the
	// branch goes the other way, but statically live — DCE must keep it.
	f := diamondFunc()
	Hoist(f, 3) // move then-side computation above the branch
	hoisted := len(f.Blocks[0].Instrs)
	if DCE(f) != 0 {
		t.Error("DCE removed partially dead instructions")
	}
	if len(f.Blocks[0].Instrs) != hoisted {
		t.Error("entry block changed")
	}
}

func TestDCEPreservesSemanticsOnRandomFunctions(t *testing.T) {
	for seed := 0; seed < 100; seed++ {
		rng := rand.New(rand.NewSource(int64(3000 + seed)))
		f := RandomFunc(rng, 2+rng.Intn(8))
		want, err := Interpret(f, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		g := f.Clone()
		DCE(g)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := Interpret(g, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: outputs differ", seed)
		}
	}
}

func TestCompileWithDCE(t *testing.T) {
	f := NewFunc("d")
	b := f.NewBlock()
	live := f.NewVReg()
	dead := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: live, Imm: 3})
	b.Append(Instr{Kind: KConst, Dst: dead, Imm: 4})
	b.Append(Instr{Kind: KOut, A: live})
	p, st, err := Compile(f, Options{DCE: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.DCERemoved != 1 {
		t.Errorf("DCERemoved = %d, want 1", st.DCERemoved)
	}
	// const + out + halt
	if len(p.Insts) != 3 {
		t.Errorf("compiled length = %d, want 3", len(p.Insts))
	}
}
