package compiler

// bitset is a fixed-capacity bit vector over virtual register numbers.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(v VReg)      { s[v/64] |= 1 << (uint(v) % 64) }
func (s bitset) clear(v VReg)    { s[v/64] &^= 1 << (uint(v) % 64) }
func (s bitset) has(v VReg) bool { return s[v/64]&(1<<(uint(v)%64)) != 0 }

// orInto sets s |= o and reports whether s changed.
func (s bitset) orInto(o bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) copyFrom(o bitset) { copy(s, o) }

// Liveness holds per-block live-in/live-out virtual register sets.
type Liveness struct {
	In  []bitset
	Out []bitset
}

// LiveIn reports whether v is live at the entry of block id.
func (l *Liveness) LiveIn(id int, v VReg) bool { return l.In[id].has(v) }

// LiveOut reports whether v is live at the exit of block id.
func (l *Liveness) LiveOut(id int, v VReg) bool { return l.Out[id].has(v) }

// ComputeLiveness runs the standard backward iterative dataflow:
//
//	out[b] = union(in[s] for s in succs(b))
//	in[b]  = use[b] | (out[b] &^ def[b])
//
// where use[b] are registers read before any write in b (including the
// terminator) and def[b] are registers written in b.
func ComputeLiveness(f *Func) *Liveness {
	n := len(f.Blocks)
	nv := f.NumVRegs()
	use := make([]bitset, n)
	def := make([]bitset, n)
	for i, b := range f.Blocks {
		u, d := newBitset(nv), newBitset(nv)
		var scratch []VReg
		for _, in := range b.Instrs {
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				if !d.has(r) {
					u.set(r)
				}
			}
			if in.HasDst() {
				d.set(in.Dst)
			}
		}
		for _, r := range b.Term.Uses(nil) {
			if !d.has(r) {
				u.set(r)
			}
		}
		use[i], def[i] = u, d
	}

	l := &Liveness{In: make([]bitset, n), Out: make([]bitset, n)}
	for i := 0; i < n; i++ {
		l.In[i] = newBitset(nv)
		l.Out[i] = newBitset(nv)
	}
	retSites := f.returnSites()
	tmp := newBitset(nv)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range f.cfgSuccs(b, retSites) {
				if l.Out[i].orInto(l.In[s]) {
					changed = true
				}
			}
			// in = use | (out &^ def)
			tmp.copyFrom(l.Out[i])
			for w := range tmp {
				tmp[w] &^= def[i][w]
				tmp[w] |= use[i][w]
			}
			if l.In[i].orInto(tmp) {
				changed = true
			}
		}
	}
	return l
}

// liveAcross computes, for block id, the set of registers live immediately
// before each instruction index (0..len(Instrs)); index len(Instrs) is the
// point just before the terminator. Used by the register allocator's
// interval construction and by the hoisting pass.
func liveAcross(f *Func, l *Liveness, id int) []bitset {
	b := f.Blocks[id]
	n := len(b.Instrs)
	points := make([]bitset, n+1)
	cur := newBitset(f.NumVRegs())
	cur.copyFrom(l.Out[id])
	for _, r := range b.Term.Uses(nil) {
		cur.set(r)
	}
	points[n] = cur
	for i := n - 1; i >= 0; i-- {
		next := newBitset(f.NumVRegs())
		next.copyFrom(points[i+1])
		in := b.Instrs[i]
		if in.HasDst() {
			next.clear(in.Dst)
		}
		for _, r := range in.Uses(nil) {
			next.set(r)
		}
		points[i] = next
	}
	return points
}
