package compiler

import (
	"testing"

	"repro/internal/isa"
)

// callFunc builds: x = 3; call double; call double; out x
// where the subroutine doubles x (shared register space).
func callFunc() *Func {
	f := NewFunc("call")
	entry := f.NewBlock()  // 0
	cont1 := f.NewBlock()  // 1
	cont2 := f.NewBlock()  // 2
	callee := f.NewBlock() // 3

	x := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: x, Imm: 3})
	entry.Term = Terminator{Kind: TCall, To: callee.ID, Else: cont1.ID}

	cont1.Term = Terminator{Kind: TCall, To: callee.ID, Else: cont2.ID}

	cont2.Append(Instr{Kind: KOut, A: x})
	cont2.Term = Terminator{Kind: THalt}

	callee.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: x, A: x, B: x})
	callee.Term = Terminator{Kind: TRet}
	return f
}

func TestCallInterpreted(t *testing.T) {
	out, err := Interpret(callFunc(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 12 {
		t.Fatalf("output = %v, want [12]", out)
	}
}

func TestCallCompiles(t *testing.T) {
	for _, opts := range allOptionSets() {
		out := checkEquiv(t, callFunc(), opts)
		if out[0] != 12 {
			t.Fatalf("opts %+v: output = %v, want [12]", opts, out)
		}
	}
}

func TestCallWithLoopInCallee(t *testing.T) {
	// The callee contains a loop; the caller calls it from inside a loop.
	f := NewFunc("callloop")
	entry := f.NewBlock()   // 0
	loop := f.NewBlock()    // 1: outer loop header / call site
	cont := f.NewBlock()    // 2: after call: decrement, branch
	exit := f.NewBlock()    // 3
	callee := f.NewBlock()  // 4: inner loop
	calleeX := f.NewBlock() // 5: ret

	i := f.NewVReg()
	j := f.NewVReg()
	acc := f.NewVReg()
	zero := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: i, Imm: 5})
	entry.Append(Instr{Kind: KConst, Dst: acc, Imm: 0})
	entry.Append(Instr{Kind: KConst, Dst: zero, Imm: 0})
	entry.Term = Terminator{Kind: TJump, To: loop.ID}

	loop.Append(Instr{Kind: KConst, Dst: j, Imm: 3})
	loop.Term = Terminator{Kind: TCall, To: callee.ID, Else: cont.ID}

	cont.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: i, A: i, Imm: -1})
	cont.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: i, B: zero, To: loop.ID, Else: exit.ID}

	exit.Append(Instr{Kind: KOut, A: acc})
	exit.Term = Terminator{Kind: THalt}

	callee.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: acc, A: acc, B: j})
	callee.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: j, A: j, Imm: -1})
	callee.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: j, B: zero, To: callee.ID, Else: calleeX.ID}

	calleeX.Term = Terminator{Kind: TRet}

	// Each call adds 3+2+1=6; five calls: 30.
	out := checkEquiv(t, f, Options{})
	if out[0] != 30 {
		t.Fatalf("output = %v, want [30]", out)
	}
	for _, opts := range allOptionSets() {
		checkEquiv(t, f, opts)
	}
}

func TestCallLivenessAcrossCall(t *testing.T) {
	// A value live across the call must not share a register with callee
	// values: the allocator sees the conservative call/return edges.
	f := callFunc()
	live := ComputeLiveness(f)
	// x (vreg 0) is live into the callee and into both continuations.
	if !live.LiveIn(3, 0) {
		t.Error("x not live into callee")
	}
	if !live.LiveIn(1, 0) || !live.LiveIn(2, 0) {
		t.Error("x not live into continuations")
	}
}

func TestRetWithEmptyStackRejected(t *testing.T) {
	f := NewFunc("badret")
	b := f.NewBlock()
	v := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: v, Imm: 1})
	b.Term = Terminator{Kind: TRet}
	if _, err := Interpret(f, 100); err == nil {
		t.Error("return with empty call stack accepted")
	}
}

func TestCallValidation(t *testing.T) {
	f := NewFunc("badcall")
	b := f.NewBlock()
	b.Term = Terminator{Kind: TCall, To: 99, Else: 0}
	if err := f.Validate(); err == nil {
		t.Error("out-of-range call target accepted")
	}
}

func TestHoistDoesNotCrossCalls(t *testing.T) {
	f := callFunc()
	before := len(f.Blocks[3].Instrs)
	Hoist(f, 3)
	if len(f.Blocks[3].Instrs) != before {
		t.Error("hoisting moved callee instructions")
	}
}
