package compiler

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/program"
)

// RandomFunc generates a structurally valid, always-terminating IR function
// from a seeded source of randomness. It exists for differential testing:
// the function's interpreted outputs must match its compiled outputs under
// every optimization configuration (see the fuzz tests), and its traces
// exercise the deadness oracle's invariants on shapes no hand-written
// program covers.
//
// size controls how many constructs (straight-line bursts, diamonds,
// bounded loops) are generated; every loop has a constant trip count, so
// the function always halts.
func RandomFunc(rng *rand.Rand, size int) *Func {
	if size < 1 {
		size = 1
	}
	g := &randGen{rng: rng, f: NewFunc("random")}
	g.f.Data = make([]byte, 512)
	rng.Read(g.f.Data)
	g.cur = g.f.NewBlock()

	// Seed pool with constants and a memory base register.
	g.base = g.def(Instr{Kind: KConst, Imm: int64(program.DataBase)})
	for i := 0; i < 4; i++ {
		g.pool = append(g.pool, g.def(Instr{Kind: KConst, Imm: int64(rng.Int31()) - 1<<30}))
	}

	for i := 0; i < size; i++ {
		switch rng.Intn(6) {
		case 0:
			g.diamond()
		case 1:
			g.loop()
		case 2:
			g.memory()
		case 3:
			g.call()
		default:
			g.burst()
		}
	}

	// Output everything still in the pool so results are observable.
	for _, v := range g.pool {
		g.cur.Append(Instr{Kind: KOut, A: v})
	}
	g.cur.Term = Terminator{Kind: THalt}
	return g.f
}

type randGen struct {
	rng     *rand.Rand
	f       *Func
	cur     *Block
	pool    []VReg
	base    VReg
	callees []int // entry blocks of generated leaf subroutines
}

func (g *randGen) def(in Instr) VReg {
	v := g.f.NewVReg()
	in.Dst = v
	g.cur.Append(in)
	return v
}

func (g *randGen) pick() VReg { return g.pool[g.rng.Intn(len(g.pool))] }

func (g *randGen) put(v VReg) {
	if len(g.pool) < 12 {
		g.pool = append(g.pool, v)
		return
	}
	g.pool[g.rng.Intn(len(g.pool))] = v
}

var randALUOps = []isa.Op{
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA,
	isa.SLT, isa.SLTU, isa.MUL, isa.DIVU, isa.REMU,
}

var randImmOps = []isa.Op{
	isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI, isa.SLLI, isa.SRLI,
	isa.SRAI, isa.LUI,
}

var randBranchOps = []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}

// randInstr emits one random computation into the current block.
func (g *randGen) randInstr() VReg {
	if g.rng.Intn(3) == 0 {
		op := randImmOps[g.rng.Intn(len(randImmOps))]
		imm := int64(g.rng.Intn(4096) - 2048)
		if op == isa.SLLI || op == isa.SRLI || op == isa.SRAI {
			imm = int64(g.rng.Intn(64))
		}
		return g.def(Instr{Kind: KALUImm, Op: op, A: g.pick(), Imm: imm})
	}
	op := randALUOps[g.rng.Intn(len(randALUOps))]
	return g.def(Instr{Kind: KALU, Op: op, A: g.pick(), B: g.pick()})
}

// burst emits a short straight-line run.
func (g *randGen) burst() {
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.put(g.randInstr())
	}
}

// memory emits a store/load pair through a masked in-bounds address.
func (g *randGen) memory() {
	// addr = base + ((v & 63) << 3): 8-byte aligned within the data page.
	idx := g.def(Instr{Kind: KALUImm, Op: isa.ANDI, A: g.pick(), Imm: 63})
	idx = g.def(Instr{Kind: KALUImm, Op: isa.SLLI, A: idx, Imm: 3})
	addr := g.def(Instr{Kind: KALU, Op: isa.ADD, A: g.base, B: idx})
	widths := []isa.Op{isa.SB, isa.SH, isa.SW, isa.SD}
	w := g.rng.Intn(len(widths))
	g.cur.Append(Instr{Kind: KStore, Op: widths[w], A: addr, B: g.pick(),
		Imm: int64(g.rng.Intn(16))})
	loads := []isa.Op{isa.LB, isa.LH, isa.LW, isa.LD}
	v := g.def(Instr{Kind: KLoad, Op: loads[g.rng.Intn(len(loads))], A: addr,
		Imm: int64(g.rng.Intn(16))})
	g.put(v)
}

// diamond emits an if/else with random arms.
func (g *randGen) diamond() {
	then := g.f.NewBlock()
	els := g.f.NewBlock()
	join := g.f.NewBlock()
	op := randBranchOps[g.rng.Intn(len(randBranchOps))]
	g.cur.Term = Terminator{Kind: TBranch, Op: op, A: g.pick(), B: g.pick(),
		To: then.ID, Else: els.ID}

	// Arms may redefine pool values (defined before the branch, so the
	// join sees a well-defined value either way) but may not grow the pool.
	for _, arm := range []*Block{then, els} {
		g.cur = arm
		for i := 0; i < g.rng.Intn(3); i++ {
			target := g.pick()
			op := randALUOps[g.rng.Intn(len(randALUOps))]
			g.cur.Append(Instr{Kind: KALU, Op: op, Dst: target, A: g.pick(), B: g.pick()})
		}
		g.cur.Term = Terminator{Kind: TJump, To: join.ID}
	}
	g.cur = join
}

// call invokes a leaf subroutine (sharing the register space), creating a
// new one or reusing an earlier one — multiple call sites exercise the
// conservative return edges in the dataflow passes and the return-address
// stack in the pipeline.
func (g *randGen) call() {
	var entry int
	if len(g.callees) > 0 && g.rng.Intn(2) == 0 {
		entry = g.callees[g.rng.Intn(len(g.callees))]
	} else {
		caller := g.cur
		callee := g.f.NewBlock()
		g.cur = callee
		// Leaf body: straight-line redefinitions of pre-existing values.
		for k := 0; k < 1+g.rng.Intn(4); k++ {
			target := g.pick()
			op := randALUOps[g.rng.Intn(len(randALUOps))]
			g.cur.Append(Instr{Kind: KALU, Op: op, Dst: target, A: g.pick(), B: g.pick()})
		}
		g.cur.Term = Terminator{Kind: TRet}
		g.callees = append(g.callees, callee.ID)
		g.cur = caller
		entry = callee.ID
	}
	cont := g.f.NewBlock()
	g.cur.Term = Terminator{Kind: TCall, To: entry, Else: cont.ID}
	g.cur = cont
}

// loop emits a counted loop with a small constant trip count.
func (g *randGen) loop() {
	trips := 1 + g.rng.Intn(6)
	i := g.def(Instr{Kind: KConst, Imm: int64(trips)})
	zero := g.def(Instr{Kind: KConst, Imm: 0})

	header := g.f.NewBlock()
	exit := g.f.NewBlock()
	g.cur.Term = Terminator{Kind: TJump, To: header.ID}
	g.cur = header
	for k := 0; k < 1+g.rng.Intn(3); k++ {
		// Loop bodies may define new values, but only redefinitions of
		// pre-loop values survive in the pool (they are defined on every
		// path); fresh values stay local to the body.
		target := g.pick()
		op := randALUOps[g.rng.Intn(len(randALUOps))]
		g.cur.Append(Instr{Kind: KALU, Op: op, Dst: target, A: g.pick(), B: g.pick()})
	}
	g.cur.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: i, A: i, Imm: -1})
	g.cur.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: i, B: zero,
		To: header.ID, Else: exit.ID}
	g.cur = exit
}
