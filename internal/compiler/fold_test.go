package compiler

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
)

func TestFoldConstantChain(t *testing.T) {
	f := NewFunc("fold")
	b := f.NewBlock()
	a := f.NewVReg()
	c := f.NewVReg()
	d := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: a, Imm: 6})
	b.Append(Instr{Kind: KConst, Dst: c, Imm: 7})
	b.Append(Instr{Kind: KALU, Op: isa.MUL, Dst: d, A: a, B: c})
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: d, A: d, Imm: 100})
	b.Append(Instr{Kind: KOut, A: d})

	if n := Fold(f); n == 0 {
		t.Fatal("nothing folded")
	}
	if in := b.Instrs[2]; in.Kind != KConst || in.Imm != 42 {
		t.Errorf("mul not folded: %v", in)
	}
	if in := b.Instrs[3]; in.Kind != KConst || in.Imm != 142 {
		t.Errorf("addi not folded: %v", in)
	}
	out, err := Interpret(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 142 {
		t.Errorf("output = %v", out)
	}
}

func TestFoldCopyPropagation(t *testing.T) {
	f := NewFunc("copy")
	b := f.NewBlock()
	src := f.NewVReg()
	cp := f.NewVReg()
	use := f.NewVReg()
	b.Append(Instr{Kind: KLoad, Op: isa.LD, Dst: src, A: src}) // non-const source
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: cp, A: src, Imm: 0})
	b.Append(Instr{Kind: KALU, Op: isa.XOR, Dst: use, A: cp, B: cp})
	b.Append(Instr{Kind: KOut, A: use})
	Fold(f)
	if in := b.Instrs[2]; in.A != src || in.B != src {
		t.Errorf("copy not propagated: %v", in)
	}
}

func TestFoldCopyKilledByRedefinition(t *testing.T) {
	// cp = src; src = src+1; use cp  -> cp must NOT resolve to the new src.
	f := NewFunc("kill")
	b := f.NewBlock()
	src := f.NewVReg()
	cp := f.NewVReg()
	use := f.NewVReg()
	b.Append(Instr{Kind: KLoad, Op: isa.LD, Dst: src, A: src})
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: cp, A: src, Imm: 0})
	b.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: src, A: src, Imm: 1})
	b.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: use, A: cp, B: src})
	b.Append(Instr{Kind: KOut, A: use})
	ref := f.Clone()
	Fold(f)
	if in := f.Blocks[0].Instrs[3]; in.A != cp {
		t.Errorf("stale copy propagated across redefinition: %v", in)
	}
	checkEquivRaw(t, ref, f)
}

func TestFoldIsBlockLocal(t *testing.T) {
	// The constant fact must not survive into a block with another
	// predecessor.
	f := NewFunc("local")
	entry := f.NewBlock()
	loop := f.NewBlock()
	exit := f.NewBlock()
	x := f.NewVReg()
	zero := f.NewVReg()
	entry.Append(Instr{Kind: KConst, Dst: x, Imm: 3})
	entry.Append(Instr{Kind: KConst, Dst: zero, Imm: 0})
	entry.Term = Terminator{Kind: TJump, To: loop.ID}
	loop.Append(Instr{Kind: KALUImm, Op: isa.ADDI, Dst: x, A: x, Imm: -1})
	loop.Term = Terminator{Kind: TBranch, Op: isa.BNE, A: x, B: zero, To: loop.ID, Else: exit.ID}
	exit.Append(Instr{Kind: KOut, A: x})

	Fold(f)
	if in := f.Blocks[loop.ID].Instrs[0]; in.Kind != KALUImm {
		t.Errorf("loop-carried variable folded to constant: %v", in)
	}
	out, err := Interpret(f, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Errorf("output = %v", out)
	}
}

func TestFoldLUI(t *testing.T) {
	f := NewFunc("lui")
	b := f.NewBlock()
	x := f.NewVReg()
	b.Append(Instr{Kind: KALUImm, Op: isa.LUI, Dst: x, Imm: 3})
	b.Append(Instr{Kind: KOut, A: x})
	Fold(f)
	if in := b.Instrs[0]; in.Kind != KConst || in.Imm != 3<<16 {
		t.Errorf("lui not normalized: %v", in)
	}
}

func TestFoldDivideByZeroSemantics(t *testing.T) {
	f := NewFunc("div0")
	b := f.NewBlock()
	a := f.NewVReg()
	z := f.NewVReg()
	d := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: a, Imm: 9})
	b.Append(Instr{Kind: KConst, Dst: z, Imm: 0})
	b.Append(Instr{Kind: KALU, Op: isa.DIVU, Dst: d, A: a, B: z})
	b.Append(Instr{Kind: KOut, A: d})
	ref := f.Clone()
	Fold(f)
	checkEquivRaw(t, ref, f)
}

func TestFuzzFoldPreservesSemantics(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(5000 + seed)))
		f := RandomFunc(rng, 2+rng.Intn(10))
		want, err := Interpret(f, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		g := f.Clone()
		Fold(g)
		DCE(g)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := Interpret(g, 1_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: outputs differ\n got %v\nwant %v", seed, got, want)
		}
	}
}

func TestCompileWithFold(t *testing.T) {
	f := NewFunc("cf")
	b := f.NewBlock()
	a := f.NewVReg()
	c := f.NewVReg()
	d := f.NewVReg()
	b.Append(Instr{Kind: KConst, Dst: a, Imm: 20})
	b.Append(Instr{Kind: KConst, Dst: c, Imm: 22})
	b.Append(Instr{Kind: KALU, Op: isa.ADD, Dst: d, A: a, B: c})
	b.Append(Instr{Kind: KOut, A: d})
	p, st, err := Compile(f, Options{Fold: true, DCE: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Folded == 0 || st.DCERemoved != 2 {
		t.Errorf("stats = %+v", st)
	}
	// After folding + DCE: one constant, out, halt.
	if len(p.Insts) != 3 {
		t.Errorf("compiled to %d instructions, want 3", len(p.Insts))
	}
}
