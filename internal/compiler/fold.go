package compiler

import "repro/internal/isa"

// Fold performs block-local constant folding and copy propagation:
//
//   - a register known to hold a constant within a block substitutes into
//     later instructions, folding ALU operations whose operands are all
//     constant into KConst;
//   - register-immediate forms with a constant source rewrite to KConst;
//   - copies (ADDI dst, src, 0 and OR/ADD with the known-zero register)
//     propagate their source forward.
//
// The analysis is deliberately block-local (knowledge resets at block
// entry), so it needs no dataflow fixpoint and can never be invalidated by
// unseen predecessors. Fold only rewrites instructions; pair it with DCE
// to delete the definitions it made unused. It returns the number of
// instructions rewritten or simplified.
func Fold(f *Func) int {
	changed := 0
	nv := f.NumVRegs()
	constVal := make([]int64, nv)
	isConst := make([]bool, nv)
	copyOf := make([]VReg, nv)

	for _, b := range f.Blocks {
		for i := range isConst {
			isConst[i] = false
			copyOf[i] = NoReg
		}
		resolve := func(v VReg) VReg {
			// Follow at most one copy link; links always point at an
			// earlier definition that is itself resolved.
			if c := copyOf[v]; c != NoReg {
				return c
			}
			return v
		}
		kill := func(v VReg) {
			isConst[v] = false
			copyOf[v] = NoReg
			// Any copy pointing at v is now stale.
			for r := range copyOf {
				if copyOf[r] == v {
					copyOf[r] = NoReg
				}
			}
		}

		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Propagate copies into sources.
			switch in.Kind {
			case KALU, KStore:
				if na := resolve(in.A); na != in.A {
					in.A = na
					changed++
				}
				if nb := resolve(in.B); nb != in.B {
					in.B = nb
					changed++
				}
			case KALUImm, KLoad, KOut:
				if in.Kind == KALUImm && in.Op == isa.LUI {
					break
				}
				if na := resolve(in.A); na != in.A {
					in.A = na
					changed++
				}
			}

			// Fold constant computations.
			switch in.Kind {
			case KALU:
				if isConst[in.A] && isConst[in.B] {
					v := aluEval(in.Op, uint64(constVal[in.A]), uint64(constVal[in.B]))
					*in = Instr{Kind: KConst, Dst: in.Dst, Imm: int64(v)}
					changed++
				}
			case KALUImm:
				if in.Op == isa.LUI {
					v := aluImmEval(in.Op, 0, in.Imm)
					*in = Instr{Kind: KConst, Dst: in.Dst, Imm: int64(v)}
					changed++
				} else if isConst[in.A] {
					v := aluImmEval(in.Op, uint64(constVal[in.A]), in.Imm)
					*in = Instr{Kind: KConst, Dst: in.Dst, Imm: int64(v)}
					changed++
				}
			}

			// Update facts about the destination.
			if !in.HasDst() {
				continue
			}
			kill(in.Dst)
			switch {
			case in.Kind == KConst:
				isConst[in.Dst] = true
				constVal[in.Dst] = in.Imm
			case in.Kind == KALUImm && in.Op == isa.ADDI && in.Imm == 0 && in.A != in.Dst:
				copyOf[in.Dst] = resolve(in.A)
			}
		}

		// Terminator sources see the same propagation.
		if b.Term.Kind == TBranch {
			if na := resolve(b.Term.A); na != b.Term.A {
				b.Term.A = na
				changed++
			}
			if nb := resolve(b.Term.B); nb != b.Term.B {
				b.Term.B = nb
				changed++
			}
		}
	}
	return changed
}
