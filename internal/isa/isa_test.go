package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op                                              Op
		aluReg, aluImm, load, store, condBr, jump, dest bool
	}{
		{NOP, false, false, false, false, false, false, false},
		{ADD, true, false, false, false, false, false, true},
		{REMU, true, false, false, false, false, false, true},
		{ADDI, false, true, false, false, false, false, true},
		{LUI, false, true, false, false, false, false, true},
		{LB, false, false, true, false, false, false, true},
		{LD, false, false, true, false, false, false, true},
		{SB, false, false, false, true, false, false, false},
		{SD, false, false, false, true, false, false, false},
		{BEQ, false, false, false, false, true, false, false},
		{BGE, false, false, false, false, true, false, false},
		{JAL, false, false, false, false, false, true, true},
		{JALR, false, false, false, false, false, true, true},
		{OUT, false, false, false, false, false, false, false},
		{HALT, false, false, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsALUReg(); got != tt.aluReg {
			t.Errorf("%v.IsALUReg() = %v, want %v", tt.op, got, tt.aluReg)
		}
		if got := tt.op.IsALUImm(); got != tt.aluImm {
			t.Errorf("%v.IsALUImm() = %v, want %v", tt.op, got, tt.aluImm)
		}
		if got := tt.op.IsLoad(); got != tt.load {
			t.Errorf("%v.IsLoad() = %v, want %v", tt.op, got, tt.load)
		}
		if got := tt.op.IsStore(); got != tt.store {
			t.Errorf("%v.IsStore() = %v, want %v", tt.op, got, tt.store)
		}
		if got := tt.op.IsCondBranch(); got != tt.condBr {
			t.Errorf("%v.IsCondBranch() = %v, want %v", tt.op, got, tt.condBr)
		}
		if got := tt.op.IsJump(); got != tt.jump {
			t.Errorf("%v.IsJump() = %v, want %v", tt.op, got, tt.jump)
		}
		if got := tt.op.HasDest(); got != tt.dest {
			t.Errorf("%v.HasDest() = %v, want %v", tt.op, got, tt.dest)
		}
	}
}

func TestMemWidth(t *testing.T) {
	widths := map[Op]int{
		LB: 1, SB: 1, LH: 2, SH: 2, LW: 4, SW: 4, LD: 8, SD: 8,
		ADD: 0, BEQ: 0, NOP: 0, HALT: 0,
	}
	for op, want := range widths {
		if got := op.MemWidth(); got != want {
			t.Errorf("%v.MemWidth() = %d, want %d", op, got, want)
		}
	}
}

func TestEveryOpHasAName(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		s := o.String()
		if s == "" || s[0] == 'o' && len(s) > 2 && s[:3] == "op(" {
			t.Errorf("opcode %d has no name", uint8(o))
		}
	}
}

func TestDest(t *testing.T) {
	if _, ok := (Inst{Op: ADD, Rd: 3}).Dest(); !ok {
		t.Error("add r3 should have a destination")
	}
	if _, ok := (Inst{Op: ADD, Rd: RZero}).Dest(); ok {
		t.Error("add r0 should have no effective destination")
	}
	if _, ok := (Inst{Op: SD, Rd: 3}).Dest(); ok {
		t.Error("store should have no destination")
	}
}

func TestSources(t *testing.T) {
	tests := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Inst{Op: ADD, Rd: 1, Rs1: 0, Rs2: 3}, []Reg{3}},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2}, []Reg{2}},
		{Inst{Op: LUI, Rd: 1, Rs1: 9}, nil}, // LUI ignores rs1
		{Inst{Op: LD, Rd: 1, Rs1: 2}, []Reg{2}},
		{Inst{Op: SD, Rs1: 2, Rs2: 4}, []Reg{2, 4}},
		{Inst{Op: BEQ, Rs1: 5, Rs2: 6}, []Reg{5, 6}},
		{Inst{Op: JAL, Rd: 31}, nil},
		{Inst{Op: JALR, Rd: 31, Rs1: 7}, []Reg{7}},
		{Inst{Op: OUT, Rs1: 8}, []Reg{8}},
		{Inst{Op: HALT}, nil},
	}
	for _, tt := range tests {
		got := tt.in.Sources(nil)
		if len(got) != len(tt.want) {
			t.Errorf("%v.Sources() = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%v.Sources() = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}).Validate(); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	if err := (Inst{Op: numOps}).Validate(); err == nil {
		t.Error("invalid opcode accepted")
	}
	if err := (Inst{Op: ADD, Rd: 32}).Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func randInst(r *rand.Rand) Inst {
	return Inst{
		Op:  Op(r.Intn(NumOps)),
		Rd:  Reg(r.Intn(NumRegs)),
		Rs1: Reg(r.Intn(NumRegs)),
		Rs2: Reg(r.Intn(NumRegs)),
		Imm: int32(r.Uint32()),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %#x: %v", w, err)
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(uint64(0xff)); err == nil {
		t.Error("unknown opcode accepted")
	}
	w := MustEncode(Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3})
	if _, err := Decode(w | 1<<23); err == nil {
		t.Error("reserved bits accepted")
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	insts := make([]Inst, 100)
	for i := range insts {
		insts[i] = randInst(r)
	}
	words, err := EncodeProgram(insts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if back[i] != insts[i] {
			t.Fatalf("instruction %d: got %v, want %v", i, back[i], insts[i])
		}
	}
}

func TestEncodeProgramReportsBadInstruction(t *testing.T) {
	_, err := EncodeProgram([]Inst{{Op: ADD}, {Op: numOps}})
	if err == nil {
		t.Fatal("expected error for invalid instruction")
	}
}

func TestStringForms(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Inst{Op: LUI, Rd: 4, Imm: 16}, "lui r4, 16"},
		{Inst{Op: LD, Rd: 1, Rs1: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Inst{Op: SW, Rs1: 2, Rs2: 5, Imm: -4}, "sw r5, -4(r2)"},
		{Inst{Op: BNE, Rs1: 1, Rs2: 0, Imm: 12}, "bne r1, r0, 12"},
		{Inst{Op: JAL, Rd: 31, Imm: -3}, "jal r31, -3"},
		{Inst{Op: JALR, Rd: 0, Rs1: 31}, "jalr r0, r31, 0"},
		{Inst{Op: OUT, Rs1: 9}, "out r9"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
