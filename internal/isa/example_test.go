package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

func ExampleEncode() {
	in := isa.Inst{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2}
	word, _ := isa.Encode(in)
	back, _ := isa.Decode(word)
	fmt.Printf("%#016x decodes to %v\n", word, back)
	// Output: 0x0000000000082301 decodes to add r3, r1, r2
}

func ExampleInst_Sources() {
	in := isa.Inst{Op: isa.SD, Rs1: 2, Rs2: 5, Imm: 8}
	fmt.Println(in, "reads", in.Sources(nil))
	// Output: sd r5, 8(r2) reads [r2 r5]
}

func ExampleOp_MemWidth() {
	for _, op := range []isa.Op{isa.LB, isa.LH, isa.LW, isa.LD, isa.ADD} {
		fmt.Printf("%v:%d ", op, op.MemWidth())
	}
	fmt.Println()
	// Output: lb:1 lh:2 lw:4 ld:8 add:0
}
