package isa

// OpFlags packs the per-opcode classification predicates into one word,
// so per-record hot loops (the deadness oracle's forward and reverse
// passes, rename and issue in the pipeline model) pay one table load and
// a bit test instead of a chain of range comparisons per predicate.
type OpFlags uint16

const (
	FlagReadsRs1 OpFlags = 1 << iota
	FlagReadsRs2
	FlagHasDest
	FlagControl
	FlagCondBranch
	FlagLoad
	FlagStore
	FlagMem
	// FlagRoot marks instructions with architectural side effects beyond
	// producing a value (control flow, OUT, HALT) — the usefulness roots
	// of the deadness analysis.
	FlagRoot
)

// Has reports whether every bit of mask is set.
func (f OpFlags) Has(mask OpFlags) bool { return f&mask == mask }

// Any reports whether at least one bit of mask is set.
func (f OpFlags) Any(mask OpFlags) bool { return f&mask != 0 }

var opFlags [NumOps]OpFlags
var memWidths [NumOps]uint8

// The tables are derived from the predicate methods once at startup, so
// the range-based methods stay the single source of truth.
func init() {
	for i := 0; i < NumOps; i++ {
		o := Op(i)
		var f OpFlags
		if o.ReadsRs1() {
			f |= FlagReadsRs1
		}
		if o.ReadsRs2() {
			f |= FlagReadsRs2
		}
		if o.HasDest() {
			f |= FlagHasDest
		}
		if o.IsControl() {
			f |= FlagControl
		}
		if o.IsCondBranch() {
			f |= FlagCondBranch
		}
		if o.IsLoad() {
			f |= FlagLoad
		}
		if o.IsStore() {
			f |= FlagStore
		}
		if o.IsMem() {
			f |= FlagMem
		}
		if o.IsControl() || o == OUT || o == HALT {
			f |= FlagRoot
		}
		opFlags[i] = f
		memWidths[i] = uint8(o.MemWidth())
	}
}

// Flags returns the packed classification bits of o.
func (o Op) Flags() OpFlags { return opFlags[o] }

// MemWidthFast is the table-lookup form of MemWidth.
func (o Op) MemWidthFast() uint8 { return memWidths[o] }
