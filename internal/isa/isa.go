// Package isa defines r64, the RISC instruction set used throughout this
// repository. r64 is a 64-bit load/store architecture with 32 integer
// registers, fixed-width instruction words, and the minimal feature set
// needed to reproduce the dead-instruction study: ALU operations, immediate
// forms, loads and stores of several widths, conditional branches, jumps,
// an OUT instruction that roots program outputs, and HALT.
//
// Program counters are expressed in instruction units (PC+1 is the next
// instruction), which keeps every other package free of byte arithmetic.
package isa

import "fmt"

// Reg names one of the 32 architectural integer registers. R0 is hardwired
// to zero: writes to it are discarded and reads always return 0.
type Reg uint8

// NumRegs is the architectural integer register count.
const NumRegs = 32

// Register aliases used by the compiler and the assembler. They are plain
// conventions; the hardware treats all registers except R0 identically.
const (
	RZero Reg = 0  // hardwired zero
	RTmp0 Reg = 27 // reserved spill/reload temporary
	RTmp1 Reg = 28 // reserved spill/reload temporary
	RGbl  Reg = 29 // global data base pointer
	RSP   Reg = 30 // stack (spill area) pointer
	RLink Reg = 31 // link register written by JAL/JALR
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op enumerates the r64 opcodes.
type Op uint8

// Opcode space. The groupings (ALU, immediate, memory, control) are
// contiguous so the classification helpers below stay branch-free.
const (
	NOP Op = iota

	// Register-register ALU.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT  // set if signed less-than
	SLTU // set if unsigned less-than
	MUL
	DIVU // unsigned divide; division by zero yields all-ones
	REMU // unsigned remainder; remainder by zero yields rs1

	// Register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLLI
	SRLI
	SRAI
	LUI // rd = imm << 16

	// Memory. Loads are zero-extending except the signed variants.
	LB
	LH
	LW
	LD
	SB
	SH
	SW
	SD

	// Control transfer. Branch and jump displacements are in instruction
	// units relative to the next instruction (PC+1+imm).
	BEQ
	BNE
	BLT // signed
	BGE // signed
	JAL
	JALR

	// OUT reports rs1 as a program output; it is the usefulness root that
	// keeps final results of a workload alive for the deadness oracle.
	OUT
	// HALT stops execution.
	HALT

	numOps // sentinel; keep last
)

// NumOps is the number of defined opcodes (for table sizing).
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	MUL: "mul", DIVU: "divu", REMU: "remu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", LUI: "lui",
	LB: "lb", LH: "lh", LW: "lw", LD: "ld",
	SB: "sb", SH: "sh", SW: "sw", SD: "sd",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JAL: "jal", JALR: "jalr",
	OUT: "out", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// IsALUReg reports register-register ALU operations.
func (o Op) IsALUReg() bool { return o >= ADD && o <= REMU }

// IsALUImm reports register-immediate ALU operations (including LUI).
func (o Op) IsALUImm() bool { return o >= ADDI && o <= LUI }

// IsLoad reports memory loads.
func (o Op) IsLoad() bool { return o >= LB && o <= LD }

// IsStore reports memory stores.
func (o Op) IsStore() bool { return o >= SB && o <= SD }

// IsMem reports loads and stores.
func (o Op) IsMem() bool { return o >= LB && o <= SD }

// IsCondBranch reports conditional branches.
func (o Op) IsCondBranch() bool { return o >= BEQ && o <= BGE }

// IsJump reports unconditional control transfers.
func (o Op) IsJump() bool { return o == JAL || o == JALR }

// IsControl reports every instruction that can redirect the PC.
func (o Op) IsControl() bool { return o >= BEQ && o <= JALR }

// MemWidth returns the access size in bytes for memory operations and 0
// otherwise.
func (o Op) MemWidth() int {
	switch o {
	case LB, SB:
		return 1
	case LH, SH:
		return 2
	case LW, SW:
		return 4
	case LD, SD:
		return 8
	}
	return 0
}

// HasDest reports whether the instruction writes a destination register.
// Writes to R0 are still "writes" architecturally but have no effect; the
// emulator and pipeline treat rd==R0 as no destination.
func (o Op) HasDest() bool {
	return o.IsALUReg() || o.IsALUImm() || o.IsLoad() || o.IsJump()
}

// ReadsRs1 reports whether the instruction reads its first source register.
func (o Op) ReadsRs1() bool {
	switch {
	case o.IsALUReg():
		return true
	case o.IsALUImm():
		return o != LUI
	case o.IsMem():
		return true // base address
	case o.IsCondBranch():
		return true
	case o == JALR:
		return true
	case o == OUT:
		return true
	}
	return false
}

// ReadsRs2 reports whether the instruction reads its second source
// register. For stores, rs2 holds the data being stored.
func (o Op) ReadsRs2() bool {
	return o.IsALUReg() || o.IsStore() || o.IsCondBranch()
}

// HasImm reports whether the instruction carries an immediate operand.
func (o Op) HasImm() bool {
	return o.IsALUImm() || o.IsMem() || o.IsCondBranch() || o.IsJump()
}

// Inst is one decoded r64 instruction. The zero value is a NOP.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// Dest returns the destination register and whether the instruction has an
// effective destination (writes to R0 are ineffective and reported false).
func (in Inst) Dest() (Reg, bool) {
	if in.Op.HasDest() && in.Rd != RZero {
		return in.Rd, true
	}
	return RZero, false
}

// Sources appends the architectural source registers that the instruction
// actually reads (excluding R0, which has no producer) to dst and returns
// the extended slice. dst may be nil.
func (in Inst) Sources(dst []Reg) []Reg {
	if in.Op.ReadsRs1() && in.Rs1 != RZero {
		dst = append(dst, in.Rs1)
	}
	if in.Op.ReadsRs2() && in.Rs2 != RZero {
		dst = append(dst, in.Rs2)
	}
	return dst
}

// Validate reports a descriptive error when the instruction is malformed
// (unknown opcode or out-of-range register).
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return fmt.Errorf("isa: register out of range in %v", in)
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	o := in.Op
	switch {
	case o == NOP:
		return "nop"
	case o == HALT:
		return "halt"
	case o == OUT:
		return fmt.Sprintf("out %v", in.Rs1)
	case o.IsALUReg():
		return fmt.Sprintf("%v %v, %v, %v", o, in.Rd, in.Rs1, in.Rs2)
	case o == LUI:
		return fmt.Sprintf("lui %v, %d", in.Rd, in.Imm)
	case o.IsALUImm():
		return fmt.Sprintf("%v %v, %v, %d", o, in.Rd, in.Rs1, in.Imm)
	case o.IsLoad():
		return fmt.Sprintf("%v %v, %d(%v)", o, in.Rd, in.Imm, in.Rs1)
	case o.IsStore():
		return fmt.Sprintf("%v %v, %d(%v)", o, in.Rs2, in.Imm, in.Rs1)
	case o.IsCondBranch():
		return fmt.Sprintf("%v %v, %v, %d", o, in.Rs1, in.Rs2, in.Imm)
	case o == JAL:
		return fmt.Sprintf("jal %v, %d", in.Rd, in.Imm)
	case o == JALR:
		return fmt.Sprintf("jalr %v, %v, %d", in.Rd, in.Rs1, in.Imm)
	}
	return fmt.Sprintf("%v rd=%v rs1=%v rs2=%v imm=%d", o, in.Rd, in.Rs1, in.Rs2, in.Imm)
}
