package isa

import "fmt"

// Instruction word layout (64-bit words, little bit indexes first):
//
//	bits  0..7   opcode
//	bits  8..12  rd
//	bits 13..17  rs1
//	bits 18..22  rs2
//	bits 23..31  reserved, must be zero
//	bits 32..63  imm (two's-complement 32-bit)
//
// A 64-bit word is deliberately generous — the point of the encoding in
// this reproduction is a well-tested, lossless binary form for program
// images, not code density.
const (
	opShift  = 0
	rdShift  = 8
	rs1Shift = 13
	rs2Shift = 18
	immShift = 32

	regMask  = 0x1f
	opMask   = 0xff
	rsvdMask = uint64(0x1ff) << 23
)

// Encode packs the instruction into its 64-bit binary form. Encode of a
// valid instruction always round-trips through Decode.
func Encode(in Inst) (uint64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	w := uint64(in.Op)&opMask<<opShift |
		uint64(in.Rd)&regMask<<rdShift |
		uint64(in.Rs1)&regMask<<rs1Shift |
		uint64(in.Rs2)&regMask<<rs2Shift |
		uint64(uint32(in.Imm))<<immShift
	return w, nil
}

// MustEncode is Encode for instructions known to be valid; it panics on a
// malformed instruction and exists for tests and generators.
func MustEncode(in Inst) uint64 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 64-bit instruction word. It rejects unknown opcodes and
// nonzero reserved bits so corrupted images fail loudly.
func Decode(w uint64) (Inst, error) {
	if w&rsvdMask != 0 {
		return Inst{}, fmt.Errorf("isa: reserved bits set in word %#016x", w)
	}
	in := Inst{
		Op:  Op(w >> opShift & opMask),
		Rd:  Reg(w >> rdShift & regMask),
		Rs1: Reg(w >> rs1Shift & regMask),
		Rs2: Reg(w >> rs2Shift & regMask),
		Imm: int32(uint32(w >> immShift)),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: unknown opcode %d in word %#016x", uint8(in.Op), w)
	}
	return in, nil
}

// EncodeProgram encodes a sequence of instructions into words.
func EncodeProgram(insts []Inst) ([]uint64, error) {
	words := make([]uint64, len(insts))
	for i, in := range insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeProgram decodes a sequence of instruction words.
func DecodeProgram(words []uint64) ([]Inst, error) {
	insts := make([]Inst, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		insts[i] = in
	}
	return insts, nil
}
