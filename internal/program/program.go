// Package program models a loadable r64 program image: the static
// instruction sequence, initialized data, symbolic labels, and per-
// instruction provenance recording which compiler transformation produced
// each instruction. It also derives the static control-flow graph used by
// the deadness oracle's cause attribution and by the compiler tests.
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// DataBase is the default address of the initialized data segment. The
// emulator initializes RGbl to this address before the first instruction.
const DataBase uint64 = 0x10_0000

// StackBase is the default top of the spill/stack area; RSP starts here and
// grows down.
const StackBase uint64 = 0x80_0000

// Provenance records which transformation produced a static instruction.
// The deadness oracle aggregates dead dynamic instances by provenance to
// attribute dead instructions to their compiler-level cause (experiment E3).
type Provenance uint8

const (
	// ProvNormal marks instructions emitted directly from source IR.
	ProvNormal Provenance = iota
	// ProvHoisted marks instructions speculatively hoisted above a branch
	// by the instruction scheduler.
	ProvHoisted
	// ProvLICM marks loop-invariant instructions moved to a preheader.
	ProvLICM
	// ProvSpill marks stores inserted by the register allocator.
	ProvSpill
	// ProvReload marks loads inserted by the register allocator.
	ProvReload
	// ProvGlue marks address arithmetic, constant materialization, and
	// other codegen bookkeeping.
	ProvGlue
	// ProvCallSave marks calling-convention register saves around calls.
	ProvCallSave
	// ProvCallRestore marks the matching restores.
	ProvCallRestore

	numProv
)

// NumProvenances is the number of provenance classes.
const NumProvenances = int(numProv)

var provNames = [...]string{
	ProvNormal: "normal", ProvHoisted: "hoisted", ProvLICM: "licm",
	ProvSpill: "spill", ProvReload: "reload", ProvGlue: "glue",
	ProvCallSave: "callsave", ProvCallRestore: "callrestore",
}

func (p Provenance) String() string {
	if int(p) < len(provNames) {
		return provNames[p]
	}
	return fmt.Sprintf("prov(%d)", uint8(p))
}

// Program is a complete loadable image. PCs are instruction indexes into
// Insts. The zero value is an empty program.
type Program struct {
	Name  string
	Insts []isa.Inst
	// Prov has one entry per instruction when non-nil; a nil Prov means
	// every instruction is ProvNormal.
	Prov []Provenance
	// Labels maps symbolic names to instruction indexes.
	Labels map[string]int
	// Data holds the initialized data segment, loaded at DataBase.
	Data []byte
	// Entry is the initial PC.
	Entry int
}

// ProvenanceOf returns the provenance of the instruction at pc.
func (p *Program) ProvenanceOf(pc int) Provenance {
	if p.Prov == nil || pc < 0 || pc >= len(p.Prov) {
		return ProvNormal
	}
	return p.Prov[pc]
}

// Validate checks structural well-formedness: instruction validity, branch
// targets in range, provenance table length, and a terminating HALT
// reachable in the instruction stream.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	if p.Prov != nil && len(p.Prov) != len(p.Insts) {
		return fmt.Errorf("program %q: provenance table length %d != %d instructions",
			p.Name, len(p.Prov), len(p.Insts))
	}
	if p.Entry < 0 || p.Entry >= len(p.Insts) {
		return fmt.Errorf("program %q: entry %d out of range", p.Name, p.Entry)
	}
	sawHalt := false
	for pc, in := range p.Insts {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("program %q pc=%d: %w", p.Name, pc, err)
		}
		if in.Op == isa.HALT {
			sawHalt = true
		}
		if in.Op.IsCondBranch() || in.Op == isa.JAL {
			if t := pc + 1 + int(in.Imm); t < 0 || t >= len(p.Insts) {
				return fmt.Errorf("program %q pc=%d: %v targets %d, out of range",
					p.Name, pc, in, t)
			}
		}
	}
	if !sawHalt {
		return fmt.Errorf("program %q: no HALT instruction", p.Name)
	}
	return nil
}

// BranchTarget returns the static target of a direct control transfer at
// pc (conditional branch or JAL) and true, or 0 and false for any other
// instruction (including JALR, whose target is dynamic).
func (p *Program) BranchTarget(pc int) (int, bool) {
	in := p.Insts[pc]
	if in.Op.IsCondBranch() || in.Op == isa.JAL {
		return pc + 1 + int(in.Imm), true
	}
	return 0, false
}

// LabelAt returns the (sorted, deterministic) first label naming pc, if any.
func (p *Program) LabelAt(pc int) (string, bool) {
	var names []string
	for name, at := range p.Labels {
		if at == pc {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	return names[0], true
}

// Disassemble renders the whole program, one instruction per line, with
// labels and PCs, primarily for debugging and the r64asm tool.
func (p *Program) Disassemble() string {
	var out []byte
	for pc, in := range p.Insts {
		if name, ok := p.LabelAt(pc); ok {
			out = append(out, fmt.Sprintf("%s:\n", name)...)
		}
		out = append(out, fmt.Sprintf("%5d:  %v\n", pc, in)...)
	}
	return string(out)
}
