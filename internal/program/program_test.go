package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildProg constructs a small program with a diamond and a loop:
//
//	0: addi r1, r0, 3      (B0)
//	1: beq  r1, r0, +2  -> 4
//	2: addi r2, r0, 1      (B1)
//	3: jal  r0, +1      -> 5
//	4: addi r2, r0, 2      (B2)
//	5: addi r1, r1, -1     (B3, loop body)
//	6: bne  r1, r0, -2  -> 5
//	7: halt                (B4)
func buildProg() *Program {
	return &Program{
		Name: "diamond",
		Insts: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Imm: 3},
			{Op: isa.BEQ, Rs1: 1, Imm: 2},
			{Op: isa.ADDI, Rd: 2, Imm: 1},
			{Op: isa.JAL, Rd: 0, Imm: 1},
			{Op: isa.ADDI, Rd: 2, Imm: 2},
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: -1},
			{Op: isa.BNE, Rs1: 1, Imm: -2},
			{Op: isa.HALT},
		},
		Labels: map[string]int{"main": 0, "loop": 5},
	}
}

func TestValidateOK(t *testing.T) {
	if err := buildProg().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	p := buildProg()
	p.Insts[1].Imm = 100 // branch out of range
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range branch not caught: %v", err)
	}

	p = buildProg()
	p.Insts[7] = isa.Inst{Op: isa.NOP} // no halt
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "HALT") {
		t.Errorf("missing HALT not caught: %v", err)
	}

	p = buildProg()
	p.Prov = make([]Provenance, 3)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "provenance") {
		t.Errorf("provenance mismatch not caught: %v", err)
	}

	p = &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Error("empty program not caught")
	}

	p = buildProg()
	p.Entry = 99
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Errorf("bad entry not caught: %v", err)
	}
}

func TestProvenanceOf(t *testing.T) {
	p := buildProg()
	if got := p.ProvenanceOf(0); got != ProvNormal {
		t.Errorf("nil Prov: got %v", got)
	}
	p.Prov = make([]Provenance, len(p.Insts))
	p.Prov[2] = ProvHoisted
	if got := p.ProvenanceOf(2); got != ProvHoisted {
		t.Errorf("got %v, want hoisted", got)
	}
	if got := p.ProvenanceOf(-1); got != ProvNormal {
		t.Errorf("out of range: got %v", got)
	}
}

func TestProvenanceNames(t *testing.T) {
	for p := Provenance(0); p < numProv; p++ {
		if s := p.String(); strings.HasPrefix(s, "prov(") {
			t.Errorf("provenance %d has no name", uint8(p))
		}
	}
}

func TestCFGStructure(t *testing.T) {
	p := buildProg()
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 5 {
		t.Fatalf("got %d blocks, want 5: %+v", len(g.Blocks), g.Blocks)
	}
	type want struct {
		start, end int
		succs      []int
	}
	wants := []want{
		{0, 1, []int{1, 2}}, // B0: fallthrough B1, branch B2
		{2, 3, []int{3}},    // B1: jal to 5
		{4, 4, []int{3}},    // B2: fallthrough to 5
		{5, 6, []int{4, 3}}, // B3: fallthrough halt, branch self
		{7, 7, nil},         // B4: halt
	}
	for i, w := range wants {
		b := g.Blocks[i]
		if b.Start != w.start || b.End != w.end {
			t.Errorf("block %d = [%d,%d], want [%d,%d]", i, b.Start, b.End, w.start, w.end)
		}
		if len(b.Succs) != len(w.succs) {
			t.Errorf("block %d succs = %v, want %v", i, b.Succs, w.succs)
			continue
		}
		for j := range w.succs {
			if b.Succs[j] != w.succs[j] {
				t.Errorf("block %d succs = %v, want %v", i, b.Succs, w.succs)
			}
		}
	}
	// Preds are the reverse of succs.
	if len(g.Blocks[3].Preds) != 3 { // from B1, B2, and itself
		t.Errorf("block 3 preds = %v, want 3 preds", g.Blocks[3].Preds)
	}
	// Every PC maps into its containing block.
	for pc := range p.Insts {
		b := g.Blocks[g.BlockOf(pc)]
		if pc < b.Start || pc > b.End {
			t.Errorf("BlockOf(%d) = block [%d,%d]", pc, b.Start, b.End)
		}
	}
	if g.Blocks[0].Len() != 2 {
		t.Errorf("block 0 len = %d, want 2", g.Blocks[0].Len())
	}
}

func TestCFGEmptyProgram(t *testing.T) {
	if _, err := BuildCFG(&Program{Name: "empty"}); err == nil {
		t.Error("empty program accepted")
	}
}

func TestLabelAtAndDisassemble(t *testing.T) {
	p := buildProg()
	if name, ok := p.LabelAt(5); !ok || name != "loop" {
		t.Errorf("LabelAt(5) = %q,%v", name, ok)
	}
	if _, ok := p.LabelAt(3); ok {
		t.Error("LabelAt(3) should be empty")
	}
	dis := p.Disassemble()
	if !strings.Contains(dis, "loop:") || !strings.Contains(dis, "halt") {
		t.Errorf("disassembly missing content:\n%s", dis)
	}
}

func TestBranchTarget(t *testing.T) {
	p := buildProg()
	if tgt, ok := p.BranchTarget(1); !ok || tgt != 4 {
		t.Errorf("BranchTarget(1) = %d,%v; want 4,true", tgt, ok)
	}
	if _, ok := p.BranchTarget(0); ok {
		t.Error("ADDI has no branch target")
	}
}
