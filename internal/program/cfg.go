package program

import (
	"fmt"

	"repro/internal/isa"
)

// Block is one basic block of the static control-flow graph: a maximal
// straight-line run of instructions entered only at the first and left only
// at the last.
type Block struct {
	ID    int
	Start int // first instruction PC (inclusive)
	End   int // last instruction PC (inclusive)
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start + 1 }

// CFG is the static control-flow graph of a program.
type CFG struct {
	Blocks  []Block
	blockOf []int // PC -> block ID
}

// BlockOf returns the ID of the block containing pc.
func (g *CFG) BlockOf(pc int) int { return g.blockOf[pc] }

// BuildCFG derives the basic-block graph. JALR successors are unknown
// statically and yield no successor edges (the instruction still ends its
// block); HALT ends a block with no successors.
func BuildCFG(p *Program) (*CFG, error) {
	n := len(p.Insts)
	if n == 0 {
		return nil, fmt.Errorf("program %q: empty", p.Name)
	}
	leader := make([]bool, n)
	leader[p.Entry] = true
	leader[0] = true
	for pc, in := range p.Insts {
		if t, ok := p.BranchTarget(pc); ok {
			leader[t] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
		if (in.Op == isa.JALR || in.Op == isa.HALT) && pc+1 < n {
			leader[pc+1] = true
		}
	}

	g := &CFG{blockOf: make([]int, n)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			id := len(g.Blocks)
			g.Blocks = append(g.Blocks, Block{ID: id, Start: start, End: pc - 1})
			for i := start; i < pc; i++ {
				g.blockOf[i] = id
			}
			start = pc
		}
	}

	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := p.Insts[b.End]
		switch {
		case last.Op == isa.HALT, last.Op == isa.JALR:
			// No static successors.
		case last.Op == isa.JAL:
			t, _ := p.BranchTarget(b.End)
			b.Succs = append(b.Succs, g.blockOf[t])
		case last.Op.IsCondBranch():
			if b.End+1 < n {
				b.Succs = append(b.Succs, g.blockOf[b.End+1])
			}
			t, _ := p.BranchTarget(b.End)
			b.Succs = append(b.Succs, g.blockOf[t])
		default:
			if b.End+1 < n {
				b.Succs = append(b.Succs, g.blockOf[b.End+1])
			}
		}
	}
	for i := range g.Blocks {
		for _, s := range g.Blocks[i].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, i)
		}
	}
	return g, nil
}
