package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Environment knobs read by FromEnv. They let any binary in the repo run
// under injection without new flags:
//
//	FAULTS       comma-separated rules "site:kind:rate[:max[:delay]]",
//	             e.g. "pool.task:transient:0.05,emu.step:panic:0.001:2"
//	FAULTS_SEED  decimal seed for the deterministic schedule (default 1)
const (
	EnvSpec = "FAULTS"
	EnvSeed = "FAULTS_SEED"
)

// FromEnv builds an injector from the FAULTS / FAULTS_SEED environment
// variables. It returns (nil, nil) when FAULTS is unset or empty.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvSpec)
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	if s := os.Getenv(EnvSeed); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad %s %q: %w", EnvSeed, s, err)
		}
		seed = v
	}
	return FromSpec(spec, seed)
}

// FromSpec parses a rule spec (the FAULTS syntax) into an injector.
func FromSpec(spec string, seed uint64) (*Injector, error) {
	in := NewInjector(seed)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faults: rule %q: want site:kind:rate[:max[:delay]]", field)
		}
		site := Site(parts[0])
		if !IsKnownSite(site) {
			return nil, fmt.Errorf("faults: rule %q: unknown site %q (known sites: %s)",
				field, parts[0], joinSites(KnownSites()))
		}
		kind, err := parseKind(parts[1])
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %w", field, err)
		}
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faults: rule %q: rate must be in [0,1]", field)
		}
		r := Rule{Kind: kind, Rate: rate}
		if len(parts) > 3 && parts[3] != "" {
			if r.Max, err = strconv.Atoi(parts[3]); err != nil || r.Max < 0 {
				return nil, fmt.Errorf("faults: rule %q: bad max %q", field, parts[3])
			}
		}
		if len(parts) > 4 && parts[4] != "" {
			if r.Delay, err = time.ParseDuration(parts[4]); err != nil {
				return nil, fmt.Errorf("faults: rule %q: bad delay %q: %w", field, parts[4], err)
			}
		}
		in.Arm(site, r)
	}
	return in, nil
}

// joinSites renders the known-site list for unknown-site errors, so a
// typo'd rule shows what it could have named.
func joinSites(sites []Site) string {
	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = string(s)
	}
	return strings.Join(names, ", ")
}

func parseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "transient":
		return Transient, nil
	case "permanent", "error":
		return Permanent, nil
	case "panic":
		return Panic, nil
	case "delay":
		return Delay, nil
	case "corrupt":
		return Corrupt, nil
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}
