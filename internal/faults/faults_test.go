package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// schedule records which of the first n opportunities at a site fire.
func schedule(in *Injector, site Site, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Fire(site) != nil
	}
	return out
}

func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	arm := func(seed uint64) *Injector {
		return NewInjector(seed).Arm(SitePoolTask, Rule{Kind: Transient, Rate: 0.3})
	}
	a := schedule(arm(42), SitePoolTask, 500)
	b := schedule(arm(42), SitePoolTask, 500)
	if !equalBools(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := schedule(arm(43), SitePoolTask, 500)
	if equalBools(a, c) {
		t.Error("different seeds produced identical schedules (astronomically unlikely)")
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := NewInjector(7).
		Arm(SitePoolTask, Rule{Kind: Transient, Rate: 0.3}).
		Arm(SiteEmuStep, Rule{Kind: Transient, Rate: 0.3})
	a := schedule(in, SitePoolTask, 300)
	b := schedule(in, SiteEmuStep, 300)
	if equalBools(a, b) {
		t.Error("two sites share a schedule; site must perturb the hash")
	}
}

func TestRateBounds(t *testing.T) {
	in := NewInjector(1).Arm(SitePoolTask, Rule{Kind: Transient, Rate: 0})
	for i := 0; i < 100; i++ {
		if in.Fire(SitePoolTask) != nil {
			t.Fatal("rate 0 fired")
		}
	}
	in = NewInjector(1).Arm(SitePoolTask, Rule{Kind: Transient, Rate: 1})
	for i := 0; i < 100; i++ {
		if in.Fire(SitePoolTask) == nil {
			t.Fatal("rate 1 did not fire")
		}
	}
	if in.Seen(SitePoolTask) != 100 || in.Fired(SitePoolTask) != 100 {
		t.Errorf("seen=%d fired=%d, want 100/100", in.Seen(SitePoolTask), in.Fired(SitePoolTask))
	}
}

func TestMaxCapsFirings(t *testing.T) {
	in := NewInjector(1).Arm(SitePoolTask, Rule{Kind: Permanent, Rate: 1, Max: 3})
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Fire(SitePoolTask) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want Max=3", fired)
	}
}

func TestErrorAttributionAndTransience(t *testing.T) {
	in := NewInjector(1).Arm(SiteTraceLoad, Rule{Kind: Transient, Rate: 1})
	err := in.Fire(SiteTraceLoad)
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteTraceLoad || fe.Seq != 0 {
		t.Fatalf("bad attribution: %v", err)
	}
	if !IsTransient(err) {
		t.Error("transient fault not recognized by IsTransient")
	}
	if !IsTransient(fmt.Errorf("wrapped twice: %w", fmt.Errorf("once: %w", err))) {
		t.Error("IsTransient must see through wrapping")
	}

	perm := (&Injector{}).Fire(SitePoolTask) // zero injector: no rules
	if perm != nil {
		t.Fatal("zero injector fired")
	}
	in = NewInjector(1).Arm(SitePoolTask, Rule{Kind: Permanent, Rate: 1})
	if IsTransient(in.Fire(SitePoolTask)) {
		t.Error("permanent fault reported transient")
	}
}

func TestIsTransientExcludesContextErrors(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Error("context errors must never be transient")
	}
	// Even a transient fault wrapped together with cancellation must not
	// retry: the caller's deadline wins.
	both := fmt.Errorf("%w: %w", context.Canceled, &Error{Site: SitePoolTask, Kind: Transient})
	if IsTransient(both) {
		t.Error("cancellation in the chain must veto retry")
	}
}

func TestPanicKindCarriesTypedValue(t *testing.T) {
	in := NewInjector(1).Arm(SiteEmuStep, Rule{Kind: Panic, Rate: 1})
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Site != SiteEmuStep || fe.Kind != Panic {
			t.Errorf("panic value = %v, want *Error at emu.step", r)
		}
	}()
	in.Fire(SiteEmuStep)
	t.Fatal("panic rule did not panic")
}

func TestDelayKindSleepsAndSucceeds(t *testing.T) {
	in := NewInjector(1).Arm(SitePoolTask, Rule{Kind: Delay, Rate: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire(SitePoolTask); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("slept %v, want >= 20ms", d)
	}
}

func TestMangleFlipsExactlyOneBit(t *testing.T) {
	in := NewInjector(9).Arm(SiteTraceLoad, Rule{Kind: Corrupt, Rate: 1})
	buf := make([]byte, 24)
	orig := bytes.Clone(buf)
	if !in.Mangle(SiteTraceLoad, buf) {
		t.Fatal("rate-1 corrupt rule did not mangle")
	}
	diff := 0
	for i := range buf {
		for b := 0; b < 8; b++ {
			if (buf[i]^orig[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bits flipped, want exactly 1", diff)
	}
	if in.Mangle(SiteTraceLoad, nil) {
		t.Error("empty buffer cannot be mangled")
	}
	// Fire-only rules must not mangle, and vice versa.
	in = NewInjector(9).Arm(SiteTraceLoad, Rule{Kind: Transient, Rate: 1})
	if in.Mangle(SiteTraceLoad, buf) {
		t.Error("transient rule mangled a buffer")
	}
}

func TestMetricsCounters(t *testing.T) {
	mc := metrics.New()
	in := NewInjector(1).Arm(SitePoolTask, Rule{Kind: Transient, Rate: 1, Max: 4})
	in.Metrics = mc
	for i := 0; i < 10; i++ {
		in.Fire(SitePoolTask)
	}
	if n := mc.Counter(metrics.CounterFaultsInjected); n != 4 {
		t.Errorf("faults_injected = %d, want 4", n)
	}
	breakdown := metrics.CounterFaultsInjected + ".pool.task.transient"
	if n := mc.Counter(breakdown); n != 4 {
		t.Errorf("%s = %d, want 4", breakdown, n)
	}
}

func TestGlobalInstall(t *testing.T) {
	if Enabled() {
		t.Fatal("injector already installed at test start")
	}
	if err := Fire(SitePoolTask); err != nil {
		t.Fatal("disabled Fire must return nil")
	}
	if Mangle(SiteTraceLoad, []byte{0}) {
		t.Fatal("disabled Mangle must report false")
	}
	in := NewInjector(1).Arm(SitePoolTask, Rule{Kind: Permanent, Rate: 1})
	Set(in)
	defer Set(nil)
	if Active() != in {
		t.Fatal("Active did not return the installed injector")
	}
	if err := Fire(SitePoolTask); err == nil {
		t.Fatal("installed injector did not fire")
	}
}

func TestFromSpec(t *testing.T) {
	in, err := FromSpec("pool.task:transient:0.5:2, emu.step:delay:1:0:5ms ,trace.load:corrupt:0.25", 3)
	if err != nil {
		t.Fatal(err)
	}
	sites := in.Sites()
	if len(sites) != 3 {
		t.Fatalf("parsed %d sites, want 3: %v", len(sites), sites)
	}
	for _, bad := range []string{
		"pool.task",                  // too few fields
		"pool.task:meteor:0.5",       // unknown kind
		"pool.task:transient:1.5",    // rate out of range
		"pool.task:transient:x",      // non-numeric rate
		"pool.task:transient:0.5:-1", // negative max
		"pool.task:delay:1:0:zzz",    // bad duration
		"pool.tsk:transient:0.5",     // typo'd site name
	} {
		_, err := FromSpec(bad, 1)
		if err == nil {
			t.Errorf("FromSpec(%q) accepted invalid rule", bad)
			continue
		}
		// Every parse error must quote the offending rule so a typo in a
		// multi-rule $FAULTS is attributable at a glance.
		if !strings.Contains(err.Error(), fmt.Sprintf("%q", bad)) {
			t.Errorf("FromSpec(%q) error does not quote the rule: %v", bad, err)
		}
	}
	if in, err := FromSpec("  ", 1); err != nil || len(in.Sites()) != 0 {
		t.Errorf("blank spec: in=%v err=%v, want empty injector", in, err)
	}
	// A bad rule mid-spec must name that rule, not a neighbor.
	_, err = FromSpec("pool.task:transient:0.5,emu.stepp:transient:0.5", 1)
	if err == nil || !strings.Contains(err.Error(), `"emu.stepp:transient:0.5"`) {
		t.Errorf("mid-spec typo not attributed to its rule: %v", err)
	}
}

func TestSiteRegistry(t *testing.T) {
	for _, s := range []Site{SitePoolTask, SiteTraceLoad, SiteEmuStep,
		SiteWorkspaceMemo, SiteSimulate, SiteArtifactDisk} {
		if !IsKnownSite(s) {
			t.Errorf("builtin site %q not registered", s)
		}
	}
	// Unknown sites are rejected with the known-site list in the message...
	_, err := FromSpec("custom.site:transient:0.5", 1)
	if err == nil {
		t.Fatal("unregistered site accepted")
	}
	if !strings.Contains(err.Error(), string(SitePoolTask)) {
		t.Errorf("unknown-site error does not list known sites: %v", err)
	}
	// ...until a subsystem registers them.
	RegisterSite("custom.site")
	in, err := FromSpec("custom.site:transient:1:1", 1)
	if err != nil {
		t.Fatalf("registered site rejected: %v", err)
	}
	if err := in.Fire("custom.site"); err == nil {
		t.Error("rate-1 rule at registered site did not fire")
	}
	sites := KnownSites()
	if !sort.SliceIsSorted(sites, func(i, j int) bool { return sites[i] < sites[j] }) {
		t.Errorf("KnownSites not sorted: %v", sites)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvSpec, "")
	if in, err := FromEnv(); in != nil || err != nil {
		t.Fatalf("unset FAULTS: got %v, %v; want nil, nil", in, err)
	}
	t.Setenv(EnvSpec, "pool.task:transient:0.5")
	t.Setenv(EnvSeed, "99")
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("FromEnv: %v, %v", in, err)
	}
	if in.seed != 99 {
		t.Errorf("seed = %d, want 99", in.seed)
	}
	t.Setenv(EnvSeed, "not-a-number")
	if _, err := FromEnv(); err == nil {
		t.Error("bad FAULTS_SEED accepted")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Transient: "transient", Permanent: "permanent",
		Panic: "panic", Delay: "delay", Corrupt: "corrupt",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still stringify")
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
