// Package faults is a deterministic, site-addressed fault injector for
// resilience testing. Production code calls Fire (or Mangle) at named
// injection sites; with no injector installed these compile down to one
// atomic pointer load returning nil, so the happy path pays nothing. An
// installed Injector decides each firing opportunity by hashing
// (seed, site, opportunity index), so a given seed reproduces the same
// fault schedule for the same sequence of opportunities at a site.
//
// The injector distinguishes transient faults (retryable — see
// IsTransient) from permanent ones, and can also panic, delay, or corrupt
// a byte buffer in flight, which is how trace-record corruption is
// modeled. The chaos soak in internal/core drives the full experiment
// suite with an injector installed at every site class.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Site names one injection point. Sites are addressed by string so new
// subsystems can add their own without touching this package.
type Site string

// Injection sites instrumented across the repository.
const (
	// SitePoolTask fires inside core.Pool.Do once a task holds a slot.
	SitePoolTask Site = "pool.task"
	// SiteTraceLoad fires per record during trace deserialization; Corrupt
	// rules at this site mangle the record bytes instead of erroring.
	SiteTraceLoad Site = "trace.load"
	// SiteEmuStep fires per committed instruction in emu.Run.
	SiteEmuStep Site = "emu.step"
	// SiteWorkspaceMemo fires when a workspace memo entry is built (profile
	// builds and machine-run entries alike).
	SiteWorkspaceMemo Site = "workspace.memo"
	// SiteSimulate fires before each pipeline simulation in the workspace.
	SiteSimulate Site = "core.simulate"
	// SiteArtifactDisk fires on the persistent artifact tier's disk paths:
	// once per write attempt (a fault abandons persistence for that
	// artifact — the in-memory result is unaffected), once per rename, and
	// once per readback (a fault degrades the lookup to a rebuild).
	// Corrupt rules at this site mangle the payload bytes in flight, which
	// the store's integrity verification must catch on readback.
	SiteArtifactDisk Site = "artifact.disk"
)

// knownSites is the registry FromSpec validates rule sites against: a
// typo'd site name in $FAULTS would otherwise parse fine and silently
// never fire, which makes a chaos run vacuous without anyone noticing.
// Subsystems outside this package register their sites in an init
// function (see internal/server).
var (
	knownMu    sync.Mutex
	knownSites = map[Site]bool{
		SitePoolTask:      true,
		SiteTraceLoad:     true,
		SiteEmuStep:       true,
		SiteWorkspaceMemo: true,
		SiteSimulate:      true,
		SiteArtifactDisk:  true,
	}
)

// RegisterSite adds injection sites to the known-site registry so FAULTS
// rules naming them pass validation. Registration only affects spec
// parsing: Fire and Mangle work at any site string.
func RegisterSite(sites ...Site) {
	knownMu.Lock()
	defer knownMu.Unlock()
	for _, s := range sites {
		knownSites[s] = true
	}
}

// KnownSites returns every registered site, sorted by name.
func KnownSites() []Site {
	knownMu.Lock()
	defer knownMu.Unlock()
	out := make([]Site, 0, len(knownSites))
	for s := range knownSites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsKnownSite reports whether the site has been registered.
func IsKnownSite(s Site) bool {
	knownMu.Lock()
	defer knownMu.Unlock()
	return knownSites[s]
}

// Kind is the failure mode a rule injects.
type Kind int

const (
	// Transient is a typed retryable error (IsTransient reports true).
	Transient Kind = iota
	// Permanent is a typed non-retryable error.
	Permanent
	// Panic panics with an *Error as the panic value so recovery layers
	// can still attribute the failure to its site.
	Panic
	// Delay sleeps for the rule's Delay and then succeeds.
	Delay
	// Corrupt mangles the caller's buffer (Mangle sites only); at Fire
	// sites it behaves like Permanent.
	Corrupt
)

// String names the kind for error text and counters.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Error is an injected fault. Site and Seq identify exactly which firing
// opportunity produced it, which is what the chaos soak asserts on.
type Error struct {
	Site Site
	Kind Kind
	Seq  uint64 // the site's firing-opportunity index that fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s fault at %s (opportunity %d)", e.Kind, e.Site, e.Seq)
}

// Transient reports whether the fault is retryable.
func (e *Error) Transient() bool { return e.Kind == Transient || e.Kind == Delay }

// IsTransient reports whether err should be retried: it or any error in
// its chain exposes `Transient() bool` returning true. Context
// cancellation and deadline expiry are never transient.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// Rule arms one failure mode at a site.
type Rule struct {
	Kind Kind
	// Rate is the per-opportunity injection probability in [0, 1].
	Rate float64
	// Max bounds how many times this rule fires (0 = unlimited).
	Max int
	// Delay is the sleep for Delay-kind rules.
	Delay time.Duration

	fired int
}

// Injector holds a seeded fault schedule. Install it with Set; it is safe
// for concurrent use. The zero Injector injects nothing.
type Injector struct {
	// Metrics, when non-nil, counts injections under
	// metrics.CounterFaultsInjected and a per-site/kind breakdown.
	Metrics *metrics.Collector

	seed uint64

	mu    sync.Mutex
	rules map[Site][]*Rule
	seen  map[Site]uint64 // firing opportunities observed per site
	fired map[Site]uint64 // injections performed per site
}

// NewInjector creates an injector whose decisions derive from seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		rules: make(map[Site][]*Rule),
		seen:  make(map[Site]uint64),
		fired: make(map[Site]uint64),
	}
}

// Arm adds a rule at a site and returns the injector for chaining.
func (in *Injector) Arm(site Site, r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rules == nil {
		in.rules = make(map[Site][]*Rule)
		in.seen = make(map[Site]uint64)
		in.fired = make(map[Site]uint64)
	}
	rc := r
	in.rules[site] = append(in.rules[site], &rc)
	return in
}

// Seen returns how many firing opportunities the site has presented.
func (in *Injector) Seen(site Site) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen[site]
}

// Fired returns how many faults were injected at the site.
func (in *Injector) Fired(site Site) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Sites returns the sites with at least one armed rule.
func (in *Injector) Sites() []Site {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Site, 0, len(in.rules))
	for s := range in.rules {
		out = append(out, s)
	}
	return out
}

// decide consumes one firing opportunity and returns the rule to apply,
// if any, plus the opportunity index.
func (in *Injector) decide(site Site) (*Rule, uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rules == nil { // zero Injector: nothing armed, nothing counted
		return nil, 0
	}
	n := in.seen[site]
	in.seen[site] = n + 1
	for i, r := range in.rules[site] {
		if r.Rate <= 0 || (r.Max > 0 && r.fired >= r.Max) {
			continue
		}
		if unitFloat(in.seed, site, n, uint64(i)) >= r.Rate {
			continue
		}
		r.fired++
		in.fired[site]++
		in.Metrics.Add(metrics.CounterFaultsInjected, 1)
		in.Metrics.Add(metrics.CounterFaultsInjected+"."+string(site)+"."+r.Kind.String(), 1)
		return r, n
	}
	return nil, n
}

// Fire consumes one firing opportunity at site and injects per the
// matched rule, if any: it returns the typed error (or panics, or sleeps)
// for a fired rule and nil otherwise.
func (in *Injector) Fire(site Site) error {
	r, seq := in.decide(site)
	if r == nil {
		return nil
	}
	ferr := &Error{Site: site, Kind: r.Kind, Seq: seq}
	switch r.Kind {
	case Panic:
		panic(ferr)
	case Delay:
		time.Sleep(r.Delay)
		return nil
	default:
		return ferr
	}
}

// Mangle consumes one firing opportunity at site; when a Corrupt rule
// fires it flips one deterministic bit of buf and reports true.
func (in *Injector) Mangle(site Site, buf []byte) bool {
	if len(buf) == 0 {
		return false
	}
	in.mu.Lock()
	if in.rules == nil {
		in.mu.Unlock()
		return false
	}
	var hit *Rule
	n := in.seen[site]
	in.seen[site] = n + 1
	for i, r := range in.rules[site] {
		if r.Kind != Corrupt || r.Rate <= 0 || (r.Max > 0 && r.fired >= r.Max) {
			continue
		}
		if unitFloat(in.seed, site, n, uint64(i)) < r.Rate {
			r.fired++
			in.fired[site]++
			hit = r
			break
		}
	}
	in.mu.Unlock()
	if hit == nil {
		return false
	}
	in.Metrics.Add(metrics.CounterFaultsInjected, 1)
	in.Metrics.Add(metrics.CounterFaultsInjected+"."+string(site)+"."+Corrupt.String(), 1)
	h := mix(in.seed ^ siteHash(site) ^ (n * 0x9e3779b97f4a7c15))
	buf[h%uint64(len(buf))] ^= 1 << ((h >> 32) % 8)
	return true
}

// active is the installed injector; nil means injection is disabled and
// every hook is a single atomic load.
var active atomic.Pointer[Injector]

// Set installs in as the process-wide injector (nil disarms). Install
// before starting the work under test: sites sample the injector at
// well-defined points, and swapping it mid-run makes the schedule
// dependent on goroutine interleaving.
func Set(in *Injector) { active.Store(in) }

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Fire consumes one firing opportunity at site on the installed injector.
// It returns nil (fast) when injection is disabled.
func Fire(site Site) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.Fire(site)
}

// Mangle gives the installed injector a chance to corrupt buf in place,
// reporting whether it did. It is a no-op when injection is disabled.
func Mangle(site Site, buf []byte) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	return in.Mangle(site, buf)
}

// siteHash is FNV-1a over the site name.
func siteHash(site Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// mix is the splitmix64 finalizer: a cheap, well-distributed hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps (seed, site, opportunity, rule) to a uniform [0, 1).
func unitFloat(seed uint64, site Site, n, rule uint64) float64 {
	h := mix(seed ^ siteHash(site) ^ mix(n) ^ (rule << 56))
	return float64(h>>11) / float64(1<<53)
}
