package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dip"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// TestServerChaosSoak holds the daemon to the chaos contract of the
// engine's own soak (core.TestChaosSoak), through the full HTTP stack:
// with faults injected at the server's own sites (server.accept,
// server.handle) and the engine sites underneath (pool.task,
// workspace.memo, core.simulate), a deterministic load run against a
// small, shed-prone admission queue must
//
//  1. terminate, with every request either completing or failing with a
//     structured status (no hangs, no invalid responses),
//  2. serve completed responses bit-identical to what a clean direct
//     workspace produces for the same spec — retries, shed-retry loops,
//     evictions, and injected faults must never surface a corrupted
//     result,
//  3. attach Retry-After to every 429,
//  4. drain cleanly afterwards, spilling resident artifacts to the
//     disk tier.
//
// Run with -race via `make soak`: the injector schedule and the
// admission interleavings make this the concurrency soak for the whole
// service path.
func TestServerChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs the suite through the daemon")
	}
	const budget = 60_000

	// --- clean references, computed before any fault is armed ---
	expIDs := []string{"e1", "e2", "e5"}
	clean := core.NewWorkspaceWorkers(budget, 0)
	cleanExps, err := clean.RunExperiments(context.Background(), expIDs)
	if err != nil {
		t.Fatalf("clean experiments: %v", err)
	}
	wantRender := make(map[string]string, len(expIDs))
	for _, e := range cleanExps {
		wantRender[e.ID] = e.Render()
	}
	wantProfile := make(map[string][]byte)
	for _, bench := range core.SuiteNames() {
		var ps ProfileStats
		err := clean.WithProfile(bench, func(p *core.ProfileResult) error {
			ps = ProfileStats{Bench: bench, Budget: budget, Summary: p.Summary,
				Locality: p.Locality, DeadFraction: p.Summary.DeadFraction()}
			return nil
		})
		if err != nil {
			t.Fatalf("clean profile %s: %v", bench, err)
		}
		b, _ := json.Marshal(ps)
		wantProfile[bench] = b
	}
	cfiSpec := dip.Spec{Flavor: dip.FlavorCFI, Config: dip.DefaultConfig()}
	wantEval := make(map[string]dip.Result)
	for _, bench := range core.SuiteNames() {
		r, err := clean.EvalPredictor(bench, cfiSpec)
		if err != nil {
			t.Fatalf("clean predeval %s: %v", bench, err)
		}
		wantEval[bench] = r
	}

	// --- arm chaos ---
	in := faults.NewInjector(1789).
		Arm(SiteAccept, faults.Rule{Kind: faults.Transient, Rate: 0.08, Max: 6}).
		Arm(SiteHandle, faults.Rule{Kind: faults.Transient, Rate: 0.15, Max: 10}).
		Arm(faults.SitePoolTask, faults.Rule{Kind: faults.Transient, Rate: 0.05, Max: 8}).
		Arm(faults.SiteWorkspaceMemo, faults.Rule{Kind: faults.Transient, Rate: 0.1, Max: 8}).
		Arm(faults.SiteSimulate, faults.Rule{Kind: faults.Transient, Rate: 0.05, Max: 4})
	mc := metrics.New()
	in.Metrics = mc
	faults.Set(in)
	defer faults.Set(nil)

	// --- the daemon under test: shed-prone queue, retrying policy,
	// disk tier for the drain spill ---
	w := core.NewWorkspaceWorkers(budget, 2)
	w.KeepGoing = true
	w.Metrics = mc
	w.CacheBudget = 16 << 20
	if err := w.OpenDiskCache(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workspace:      w,
		Workers:        2,
		QueueDepth:     2,
		DefaultTimeout: time.Minute,
		Retry:          core.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Metrics:        mc,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	verify := func(kind string, body []byte) error {
		switch kind {
		case "experiment":
			var er ExperimentResult
			if err := json.Unmarshal(body, &er); err != nil {
				return err
			}
			if want, ok := wantRender[er.ID]; !ok || er.Render != want {
				return fmt.Errorf("experiment %s render diverges from clean run", er.ID)
			}
		case "profile":
			var ps ProfileStats
			if err := json.Unmarshal(body, &ps); err != nil {
				return err
			}
			got, _ := json.Marshal(ps)
			if !bytes.Equal(got, wantProfile[ps.Bench]) {
				return fmt.Errorf("profile %s diverges from clean run:\nserver: %s\nclean:  %s",
					ps.Bench, got, wantProfile[ps.Bench])
			}
		case "predeval":
			var pr PredEvalResult
			if err := json.Unmarshal(body, &pr); err != nil {
				return err
			}
			if !reflect.DeepEqual(pr.Result, wantEval[pr.Bench]) {
				return fmt.Errorf("predeval %s diverges from clean run: %+v vs %+v",
					pr.Bench, pr.Result, wantEval[pr.Bench])
			}
		}
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, ts.URL, LoadConfig{
		Requests:       36,
		Concurrency:    6,
		Clients:        3,
		Burst:          3,
		Seed:           11,
		Timeout:        time.Minute,
		MaxShedRetries: 4,
		Verify:         verify,
	})
	if err != nil {
		t.Fatalf("load run: %v (report %+v)", err, rep)
	}
	faults.Set(nil)

	// 1. Everything terminated with a structured outcome.
	if rep.Sent != 36 {
		t.Errorf("sent %d requests, want 36", rep.Sent)
	}
	if rep.OK == 0 {
		t.Fatalf("no request completed under chaos: %+v", rep)
	}
	if rep.OK+rep.Failed != rep.Sent {
		t.Errorf("OK %d + Failed %d != Sent %d", rep.OK, rep.Failed, rep.Sent)
	}

	// 2. Completed responses bit-identical to the clean workspace.
	if rep.Invalid != 0 {
		t.Errorf("%d completed responses diverged from the clean references", rep.Invalid)
	}

	// 3. Every 429 carried Retry-After.
	if rep.ShedNoHint != 0 {
		t.Errorf("%d shed responses lacked Retry-After", rep.ShedNoHint)
	}

	// Non-vacuity: the injector really fired, at the server's own sites
	// among others.
	var injected uint64
	for _, site := range in.Sites() {
		injected += in.Fired(site)
	}
	if injected == 0 {
		t.Fatal("soak is vacuous: no fault fired")
	}
	if in.Fired(SiteAccept)+in.Fired(SiteHandle) == 0 {
		t.Error("no fault fired at the server's own sites")
	}
	// The burst-3 duplicates in the plan must have coalesced at least
	// once: adjacent workers pull adjacent (identical) requests, so some
	// always overlap a pending flight.
	if got := mc.Counter(metrics.CounterServerCoalesced); got == 0 {
		t.Error("no request coalesced under the burst load")
	}
	if got := s.coal.pending(); got != 0 {
		t.Errorf("pending flights = %d after load, want 0", got)
	}

	// 4. Clean drain; resident artifacts spill to the disk tier.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain forced cancellation: %v", err)
	}
	if !s.Draining() {
		t.Error("server not draining after Drain")
	}
	var diskWrites int64
	for _, ks := range w.ArtifactStats().Kinds {
		diskWrites += ks.DiskWrites
	}
	if diskWrites == 0 {
		t.Error("no artifact spilled to the disk tier across the run and drain")
	}

	// The admission gauge must balance: nothing left queued.
	if _, queued := s.adm.snapshot(); queued != 0 {
		t.Errorf("queued = %d after drain, want 0", queued)
	}
	if got := mc.Counter(metrics.CounterServerQueueDepth); got != 0 {
		t.Errorf("queue depth gauge = %d after drain, want 0", got)
	}
}
