package server

import (
	"bytes"
	"io"
	"sync"
)

// broadcaster is an io.Writer that fans complete lines out to
// subscribers. The metrics collector's verbose stream writes here, so
// every per-span progress line the engine emits reaches each streaming
// client. Slow subscribers lose lines rather than stall the engine:
// publishes are non-blocking into a bounded per-subscriber channel.
type broadcaster struct {
	mu   sync.Mutex
	subs map[chan string]struct{}
	tee  io.Writer // optional local copy (the daemon's own stderr -v)
	buf  bytes.Buffer
}

// subBuffer bounds each subscriber's backlog of progress lines.
const subBuffer = 256

func newBroadcaster(tee io.Writer) *broadcaster {
	return &broadcaster{subs: make(map[chan string]struct{}), tee: tee}
}

// Write splits the stream into lines and publishes each complete line;
// a trailing partial line is held until its newline arrives.
func (b *broadcaster) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tee != nil {
		b.tee.Write(p)
	}
	b.buf.Write(p)
	for {
		raw := b.buf.Bytes()
		i := bytes.IndexByte(raw, '\n')
		if i < 0 {
			break
		}
		line := string(raw[:i])
		b.buf.Next(i + 1)
		for ch := range b.subs {
			select {
			case ch <- line:
			default: // subscriber too slow; drop the line
			}
		}
	}
	return len(p), nil
}

// subscribe registers a new progress-line subscriber; cancel
// unregisters it and closes the channel.
func (b *broadcaster) subscribe() (<-chan string, func()) {
	ch := make(chan string, subBuffer)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, ch)
			b.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}
