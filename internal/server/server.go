// Package server is the experiment service daemon behind cmd/deadd: an
// HTTP+JSON front end over a shared core.Workspace, serving experiment,
// predictor-evaluation, and profile queries with the robustness
// machinery a long-lived service needs — a bounded admission queue with
// load-shedding backpressure (429 + Retry-After), per-client round-robin
// fairness, per-request deadlines with transient-fault retry, streaming
// progress over chunked responses, health/readiness probes, and graceful
// drain on shutdown.
//
// Every result the daemon serves derives through the workspace's
// content-addressed artifact store, so responses are bit-identical to
// what the CLI tools produce for the same spec: an experiment response
// carries exactly Experiment.Render(), and the chaos soak holds the
// daemon to that contract under injected faults.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fault-injection sites owned by the daemon: SiteAccept fires as a
// request enters admission (a failure there is pre-execution and always
// retryable by the client), SiteHandle fires once per execution attempt
// inside the server's retry loop.
const (
	SiteAccept faults.Site = "server.accept"
	SiteHandle faults.Site = "server.handle"
)

func init() { faults.RegisterSite(SiteAccept, SiteHandle) }

// Config assembles a Server.
type Config struct {
	// Workspace executes all queries; the daemon sets KeepGoing so
	// multi-experiment requests return partial results.
	Workspace *core.Workspace
	// Workers bounds concurrently executing requests (0 = the
	// workspace pool's worker count).
	Workers int
	// QueueDepth bounds requests waiting for a worker; arrivals beyond
	// it are shed with 429 (0 = no waiting, shed when all workers busy).
	QueueDepth int
	// DefaultTimeout bounds a request that names no ?timeout (0 = none);
	// MaxTimeout clamps client-requested deadlines (0 = no clamp).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Retry re-runs transiently failing request attempts (zero value =
	// no retry).
	Retry core.RetryPolicy
	// Metrics receives the daemon's counters and, when its verbose
	// stream is routed through the server (see New), the progress lines
	// streamed to subscribers. Nil is ignored in the usual nil-safe way.
	Metrics *metrics.Collector
	// Verbose, when set, additionally tees engine progress lines to this
	// writer (the daemon's -v).
	Verbose io.Writer
}

// Server is the HTTP service; build one with New, expose Handler, and
// call Drain on shutdown.
type Server struct {
	cfg  Config
	w    *core.Workspace
	mc   *metrics.Collector
	adm  *admission
	bc   *broadcaster
	coal *coalescer
	mux  *http.ServeMux

	// baseCtx parents every request execution; baseCancel is the drain
	// deadline's hammer — cancelling it deadline-cancels in-flight work.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a Server over the given config. The workspace's metrics
// collector is routed through the server's progress broadcaster so
// streaming clients see per-span engine events.
func New(cfg Config) *Server {
	if cfg.Workspace == nil {
		panic("server: Config.Workspace is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.Workspace.Pool().Workers()
	}
	s := &Server{
		cfg:  cfg,
		w:    cfg.Workspace,
		mc:   cfg.Metrics,
		adm:  newAdmission(workers, cfg.QueueDepth, cfg.Metrics),
		bc:   newBroadcaster(cfg.Verbose),
		coal: newCoalescer(),
		mux:  http.NewServeMux(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Route engine progress lines through the broadcaster so ?stream=1
	// subscribers receive them.
	cfg.Metrics.SetVerbose(s.bc)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/predeval", s.handlePredEval)
	s.mux.HandleFunc("POST /v1/profile", s.handleProfile)
	s.mux.HandleFunc("GET /v1/artifact/{kind}/{digest}", s.handleArtifactGet)
	s.mux.HandleFunc("PUT /v1/artifact/{kind}/{digest}", s.handleArtifactPut)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs graceful shutdown: stop admitting new requests
// (readiness flips to 503, acquires fail with ErrDraining), let queued
// and in-flight requests finish, and — if ctx expires first —
// deadline-cancel whatever is still running and wait for it to unwind.
// Finally the workspace's resident artifacts spill to the disk tier, so
// a warm restart reloads them instead of recomputing. Returns ctx's
// error if the deadline forced cancellation, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.drain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.baseCancel()
		<-done // in-flight work observes cancellation and unwinds
	}
	s.w.FlushSpill()
	return forced
}

// --- probes and introspection ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	active, queued := s.adm.snapshot()
	writeJSON(w, http.StatusOK, struct {
		Run       metrics.Summary `json:"run"`
		Artifacts artifact.Stats  `json:"artifacts"`
		Active    int             `json:"active_requests"`
		Queued    int             `json:"queued_requests"`
		Draining  bool            `json:"draining"`
	}{s.mc.Summary(), s.w.ArtifactStats(), active, queued, s.draining.Load()})
}

// --- request plumbing ---

// errorBody is the JSON error envelope: what failed, how it classifies
// (transient errors are worth a client retry), and how many attempts the
// server made.
type errorBody struct {
	Error    string `json:"error"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error, attempts int) {
	kind := "permanent"
	switch {
	case faults.IsTransient(err):
		kind = "transient"
	case errors.Is(err, context.DeadlineExceeded):
		kind = "deadline"
	case errors.Is(err, context.Canceled):
		kind = "cancelled"
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Kind: kind, Attempts: attempts})
}

// clientToken identifies the requester for fair queueing: an explicit
// X-Client-Token header when the client sets one, the remote address
// otherwise.
func clientToken(r *http.Request) string {
	if tok := r.Header.Get("X-Client-Token"); tok != "" {
		return tok
	}
	return r.RemoteAddr
}

// requestTimeout resolves the request's execution deadline: ?timeout=
// parsed as a Go duration, clamped to MaxTimeout, defaulting to
// DefaultTimeout. An unparsable value is a usage error.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil || parsed <= 0 {
			return 0, fmt.Errorf("server: bad timeout %q", v)
		}
		d = parsed
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// execute runs fn under the daemon's full request discipline: the
// server.accept fault site, drain checks, coalescing with fair admission
// and load-shedding, the per-request deadline, and a retry loop for
// transient failures. key is the request's coalescing identity (endpoint
// plus canonical spec digest): requests sharing a key while one is
// pending collapse into a single execution whose result fans out to
// every subscriber (see coalesce.go). The context passed to fn dies when
// every interested client has disconnected, the deadline passes, or a
// drain deadline forces cancellation. Single-flight casualty semantics:
// a shared artifact build whose originating request disconnects is
// adopted by surviving waiters in the store itself; the retry loop keeps
// a casualty backstop for the narrow window where a cancelled build's
// error still surfaces.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, endpoint, key string, fn func(ctx context.Context) (any, error)) {
	start := time.Now()
	if err := faults.Fire(SiteAccept); err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining, 0)
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Done()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// A drain deadline abandons our wait through baseCtx (the flight
	// itself is hammered the same way in runFlight).
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	// The stream opens lazily once the flight is admitted, so a request
	// that sheds or drains before executing still gets a plain 429/503.
	stream := r.URL.Query().Get("stream") == "1"
	var fw *streamWriter
	onAdmitted := func() {
		if stream && fw == nil {
			fw = newStreamWriter(w, s.bc, s.mc)
		}
	}

	jr := s.coal.execute(s, ctx, endpoint, key, clientToken(r), timeout, onAdmitted, fn)
	if fw != nil {
		defer fw.close()
	}
	s.mc.Observe(metrics.HistServerLatency+"."+endpoint, time.Since(start))

	if jr.err != nil {
		if jr.preExec {
			var shed *ShedError
			switch {
			case errors.As(jr.err, &shed):
				w.Header().Set("Retry-After", strconv.Itoa(int(shed.RetryAfter.Seconds())))
				writeError(w, http.StatusTooManyRequests, jr.err, 0)
			case errors.Is(jr.err, ErrDraining):
				writeError(w, http.StatusServiceUnavailable, jr.err, 0)
			default: // client gave up while the flight was queued
				writeError(w, statusForContext(ctx), jr.err, 0)
			}
			return
		}
		s.mc.Add(metrics.CounterServerFailed, 1)
		if fw != nil {
			fw.event(streamEvent{Event: "error", Error: jr.err.Error(), Attempts: jr.attempts})
			return
		}
		status := http.StatusInternalServerError
		switch {
		case errors.Is(jr.err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(jr.err, context.Canceled):
			// Client gone or drain-forced; the status is best-effort.
			status = http.StatusServiceUnavailable
		case faults.IsTransient(jr.err):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, jr.err, jr.attempts)
		return
	}
	s.mc.Add(metrics.CounterServerCompleted, 1)
	if fw != nil {
		fw.event(streamEvent{Event: "result", Data: jr.res, Attempts: jr.attempts})
		return
	}
	writeJSON(w, http.StatusOK, jr.res)
}

// attempt is the retry loop around one request execution: each attempt
// fires the server.handle site, transient failures (and single-flight
// cancellation casualties — see execute) retry with the shared backoff
// schedule while our own context is live.
func (s *Server) attempt(ctx context.Context, fn func(ctx context.Context) (any, error)) (any, int, error) {
	max := s.cfg.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var res any
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, attempt, cerr
		}
		err = faults.Fire(SiteHandle)
		if err == nil {
			res, err = fn(ctx)
		}
		if err == nil {
			return res, attempt, nil
		}
		casualty := errors.Is(err, context.Canceled) && ctx.Err() == nil
		if ctx.Err() != nil || (!faults.IsTransient(err) && !casualty) || attempt >= max {
			return nil, attempt, err
		}
		s.mc.Add(metrics.CounterServerRetries, 1)
		select {
		case <-ctx.Done():
			return nil, attempt, ctx.Err()
		case <-time.After(s.cfg.Retry.Backoff(attempt)):
		}
	}
}

func statusForContext(ctx context.Context) int {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusServiceUnavailable
}

// --- streaming ---

// streamEvent is one NDJSON line of a ?stream=1 response: progress
// events carry an engine progress line; the final event is result or
// error.
type streamEvent struct {
	Event    string `json:"event"`
	Line     string `json:"line,omitempty"`
	Data     any    `json:"data,omitempty"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// streamWriter subscribes to the progress broadcaster and relays lines
// to one chunked NDJSON response while the request executes.
type streamWriter struct {
	mu     sync.Mutex
	w      http.ResponseWriter
	fl     http.Flusher
	cancel func()
	wg     sync.WaitGroup
}

func newStreamWriter(w http.ResponseWriter, bc *broadcaster, mc *metrics.Collector) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	sw := &streamWriter{w: w, fl: fl}
	ch, cancel := bc.subscribe()
	sw.cancel = cancel
	mc.Add(metrics.CounterServerStreams, 1)
	sw.wg.Add(1)
	go func() {
		defer sw.wg.Done()
		// Drain until the subscription closes: lines published before
		// close() are buffered in ch and must all reach the response,
		// even if this goroutine is first scheduled after the request
		// has already finished.
		for line := range ch {
			sw.event(streamEvent{Event: "progress", Line: line})
		}
	}()
	return sw
}

func (sw *streamWriter) event(e streamEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	sw.w.Write(append(b, '\n'))
	if sw.fl != nil {
		sw.fl.Flush()
	}
}

func (sw *streamWriter) close() {
	sw.cancel()
	sw.wg.Wait()
}

// --- endpoints ---

// ExperimentResult is the JSON form of one completed experiment. Render
// is the deterministic serialization (Experiment.Render) — the server's
// bit-identity contract with the CLI: for the same id and workspace
// configuration it is byte-for-byte what `experiments` would print from
// its tables.
type ExperimentResult struct {
	ID       string             `json:"id"`
	Title    string             `json:"title,omitempty"`
	Claim    string             `json:"claim,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Render   string             `json:"render,omitempty"`
	Attempts int                `json:"attempts,omitempty"`
	Error    string             `json:"error,omitempty"`
}

func experimentResult(e *core.Experiment) ExperimentResult {
	if e.Err != nil {
		return ExperimentResult{ID: e.ID, Error: e.Err.Error(), Attempts: e.Attempts}
	}
	return ExperimentResult{
		ID: e.ID, Title: e.Title, Claim: e.Claim,
		Metrics: e.Metrics, Render: e.Render(), Attempts: e.Attempts,
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func validExperimentIDs(ids []string) error {
	known := make(map[string]bool)
	for _, id := range core.ExperimentIDs() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[id] {
			return fmt.Errorf("server: unknown experiment %q", id)
		}
	}
	return nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if err := validExperimentIDs([]string{req.ID}); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	s.execute(w, r, "experiment", "experiment:"+req.ID, func(ctx context.Context) (any, error) {
		exps, err := s.w.RunExperiments(ctx, []string{req.ID})
		if err != nil {
			// KeepGoing surfaces single-experiment failures as both a
			// RunError and an entry with Err; prefer the concrete error.
			if len(exps) == 1 && exps[0].Err != nil {
				return nil, exps[0].Err
			}
			return nil, err
		}
		return experimentResult(exps[0]), nil
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDs []string `json:"ids"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if len(req.IDs) == 0 {
		req.IDs = core.ExperimentIDs()
	}
	if err := validExperimentIDs(req.IDs); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	s.execute(w, r, "experiments", "experiments:"+strings.Join(req.IDs, ","), func(ctx context.Context) (any, error) {
		// Partial results: under the workspace's KeepGoing mode every
		// requested experiment gets an entry, failed ones carrying their
		// error; the response reports partial=true rather than failing
		// the whole request. Without KeepGoing a failure fails the
		// request (and the completed survivors are dropped).
		exps, err := s.w.RunExperiments(ctx, req.IDs)
		var runErr *core.RunError
		if err != nil && !errors.As(err, &runErr) {
			return nil, err
		}
		if err != nil && !s.w.KeepGoing {
			return nil, err
		}
		out := struct {
			Experiments []ExperimentResult `json:"experiments"`
			Partial     bool               `json:"partial,omitempty"`
			Failed      int                `json:"failed,omitempty"`
		}{}
		for _, e := range exps {
			out.Experiments = append(out.Experiments, experimentResult(e))
			if e.Err != nil {
				out.Failed++
			}
		}
		out.Partial = out.Failed > 0
		return out, nil
	})
}

// PredEvalResult wraps a predictor evaluation with its derived rates, so
// clients need not recompute them.
type PredEvalResult struct {
	Bench    string     `json:"bench"`
	Spec     string     `json:"spec"`
	Result   dip.Result `json:"result"`
	Coverage float64    `json:"coverage"`
	Accuracy float64    `json:"accuracy"`
}

func (s *Server) handlePredEval(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Bench  string      `json:"bench"`
		Flavor string      `json:"flavor"`
		Config *dip.Config `json:"config"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if _, err := workload.ByName(req.Bench); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	spec := dip.Spec{Flavor: req.Flavor, Config: dip.DefaultConfig()}
	if spec.Flavor == "" {
		spec.Flavor = dip.FlavorCFI
	}
	if req.Config != nil {
		spec.Config = *req.Config
	}
	if _, err := spec.New(); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	s.execute(w, r, "predeval", "predeval:"+req.Bench+":"+spec.Digest(), func(ctx context.Context) (any, error) {
		res, err := s.w.EvalPredictorCtx(ctx, req.Bench, spec)
		if err != nil {
			return nil, err
		}
		return PredEvalResult{
			Bench: req.Bench, Spec: spec.Label(), Result: res,
			Coverage: res.Coverage(), Accuracy: res.Accuracy(),
		}, nil
	})
}

// ProfileStats is the profile-query response: the oracle summary and
// static locality for one benchmark.
type ProfileStats struct {
	Bench        string            `json:"bench"`
	Budget       int               `json:"budget"`
	Summary      deadness.Summary  `json:"summary"`
	Locality     deadness.Locality `json:"locality"`
	DeadFraction float64           `json:"dead_fraction"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Bench string `json:"bench"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if _, err := workload.ByName(req.Bench); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	s.execute(w, r, "profile", "profile:"+req.Bench, func(ctx context.Context) (any, error) {
		var out ProfileStats
		err := s.w.WithProfileCtx(ctx, req.Bench, func(p *core.ProfileResult) error {
			out = ProfileStats{
				Bench: req.Bench, Budget: s.w.Budget,
				Summary: p.Summary, Locality: p.Locality,
				DeadFraction: p.Summary.DeadFraction(),
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
}

// --- artifact transfer (the remote-tier wire protocol) ---

// maxArtifactBytes bounds a pushed artifact payload; profiles run tens
// of megabytes, so the cap is generous but finite.
const maxArtifactBytes = 1 << 31

// validArtifactPath checks the {kind}/{digest} route values: kind is a
// short lowercase identifier, digest a sha256 hex string — both double
// as disk-tier file names, so nothing else is allowed through.
func validArtifactPath(kind, digest string) error {
	ok := func(s string, minLen, maxLen int, hexOnly bool) bool {
		if len(s) < minLen || len(s) > maxLen {
			return false
		}
		for _, c := range s {
			switch {
			case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
			case !hexOnly && (c >= 'g' && c <= 'z' || c == '_' || c == '-'):
			default:
				return false
			}
		}
		return true
	}
	if !ok(kind, 1, 64, false) {
		return fmt.Errorf("server: bad artifact kind %q", kind)
	}
	if !ok(digest, 64, 64, true) {
		return fmt.Errorf("server: bad artifact digest %q", digest)
	}
	return nil
}

// handleArtifactGet serves one encoded artifact, CRC-framed with the
// disk tier's header, from the workspace's memory or disk tier. These
// endpoints bypass admission: they never compute, only copy bytes, and
// throttling them would defeat the remote tier's purpose of making a
// warm peer cheaper than a rebuild. They stay up during drain for the
// same reason — a draining daemon's artifacts are exactly the warm state
// a successor wants to pull.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	kind, digest := r.PathValue("kind"), r.PathValue("digest")
	if err := validArtifactPath(kind, digest); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	framed, release, spilled, err := s.w.EncodedArtifactFrame(
		artifact.Key{Kind: artifact.Kind(kind), Digest: digest})
	if err != nil {
		if errors.Is(err, artifact.ErrNotFound) {
			s.mc.Add(metrics.CounterServerArtifactMisses, 1)
			writeError(w, http.StatusNotFound, err, 0)
			return
		}
		writeError(w, http.StatusInternalServerError, err, 0)
		return
	}
	defer release()
	s.mc.Add(metrics.CounterServerArtifactHits, 1)
	if spilled {
		// Served straight off the disk tier's mapped entry file: the framed
		// bytes on disk are the wire format, no re-encode happened.
		s.mc.Add(metrics.CounterServerArtifactSpillthrough, 1)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(framed)
}

// handleArtifactPut accepts one CRC-framed encoded artifact and installs
// it into the workspace as if locally built (write-through to the disk
// tier included). A frame or decode failure is the pusher's problem: 400.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	kind, digest := r.PathValue("kind"), r.PathValue("digest")
	if err := validArtifactPath(kind, digest); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	framed, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: artifact body: %w", err), 0)
		return
	}
	payload, err := artifact.Unframe(framed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if err := s.w.InstallArtifact(artifact.Key{Kind: artifact.Kind(kind), Digest: digest}, payload); err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	s.mc.Add(metrics.CounterServerArtifactPuts, 1)
	w.WriteHeader(http.StatusCreated)
}
