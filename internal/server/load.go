package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dip"
)

// LoadConfig drives RunLoad, the deterministic load generator behind
// cmd/deadload and the daemon smoke test.
type LoadConfig struct {
	// Requests is the total request count; Concurrency how many run at
	// once; Clients how many distinct client tokens the requests spread
	// over (fair-queue keys).
	Requests    int
	Concurrency int
	Clients     int
	// Mix selects the request kinds to cycle through; empty means
	// profile, predeval, and experiment. Valid kinds: "profile",
	// "predeval", "experiment".
	Mix []string
	// Burst repeats each planned spec this many consecutive times
	// (default 1). Bursts of identical requests land on the daemon
	// near-simultaneously through adjacent workers, exercising request
	// coalescing; Requests stays the total count.
	Burst int
	// Stream requests ?stream=1 chunked progress responses.
	Stream bool
	// Timeout is the per-request client-side timeout (0 = none) and is
	// also passed to the server as ?timeout=.
	Timeout time.Duration
	// Seed drives the deterministic request sequence.
	Seed uint64
	// MaxShedRetries bounds how often one request retries after a 429,
	// honoring the server's Retry-After (default 3).
	MaxShedRetries int
	// Verify, when set, is called with each 200 response's kind and
	// body; a non-nil error marks the response invalid.
	Verify func(kind string, body []byte) error
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Sent     int            `json:"sent"`
	OK       int            `json:"ok"`
	Shed     int            `json:"shed"`          // 429 responses observed (before any retry succeeded)
	Failed   int            `json:"failed"`        // requests that never got a 200
	Invalid  int            `json:"invalid"`       // 200 responses Verify rejected
	ByStatus map[int]int    `json:"by_status"`     // final status per request
	ByKind   map[string]int `json:"by_kind"`       // requests sent per kind
	Events   int            `json:"stream_events"` // NDJSON events seen across streamed responses
	// ShedNoHint counts 429 responses that arrived without a
	// Retry-After header — always zero against a conforming server.
	ShedNoHint int `json:"shed_no_hint,omitempty"`
}

// loadRNG is a small deterministic PRNG (splitmix64) so a seeded load
// run issues an identical request sequence every time.
type loadRNG struct{ state uint64 }

func (r *loadRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// loadRequest is one planned request: kind, path, and body.
type loadRequest struct {
	kind string
	path string
	body []byte
}

// planRequests lays out the whole run's request sequence up front,
// deterministically from the seed, so two runs with the same config hit
// the server with the same work in the same order.
func planRequests(cfg LoadConfig) []loadRequest {
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = []string{"profile", "predeval", "experiment"}
	}
	benches := core.SuiteNames()
	// Cheap experiments only: the load generator is for exercising the
	// service machinery, not for regenerating every table.
	expIDs := []string{"e1", "e2", "e5"}
	burst := cfg.Burst
	if burst <= 0 {
		burst = 1
	}
	rng := &loadRNG{state: cfg.Seed ^ 0xdeadd}
	reqs := make([]loadRequest, cfg.Requests)
	for i := range reqs {
		if i%burst != 0 {
			reqs[i] = reqs[i-1]
			continue
		}
		kind := mix[(i/burst)%len(mix)]
		switch kind {
		case "predeval":
			b := benches[rng.next()%uint64(len(benches))]
			body, _ := json.Marshal(map[string]any{"bench": b, "flavor": dip.FlavorCFI})
			reqs[i] = loadRequest{kind, "/v1/predeval", body}
		case "experiment":
			id := expIDs[rng.next()%uint64(len(expIDs))]
			body, _ := json.Marshal(map[string]string{"id": id})
			reqs[i] = loadRequest{kind, "/v1/experiment", body}
		default: // profile
			b := benches[rng.next()%uint64(len(benches))]
			body, _ := json.Marshal(map[string]string{"bench": b})
			reqs[i] = loadRequest{"profile", "/v1/profile", body}
		}
	}
	return reqs
}

// RunLoad fires the configured request mix at a deadd daemon and
// reports what came back. Shed responses (429) are retried after the
// server's Retry-After hint, up to MaxShedRetries per request.
func RunLoad(ctx context.Context, baseURL string, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("deadload: -n must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = cfg.Concurrency
	}
	if cfg.MaxShedRetries <= 0 {
		cfg.MaxShedRetries = 3
	}
	for _, kind := range cfg.Mix {
		switch kind {
		case "profile", "predeval", "experiment":
		default:
			return nil, fmt.Errorf("deadload: unknown mix kind %q", kind)
		}
	}
	reqs := planRequests(cfg)
	baseURL = strings.TrimSuffix(baseURL, "/")

	rep := &LoadReport{ByStatus: make(map[int]int), ByKind: make(map[string]int)}
	var mu sync.Mutex
	var nextIdx atomic.Int64
	client := &http.Client{}

	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			token := "client-" + strconv.Itoa(wkr%cfg.Clients)
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= len(reqs) || ctx.Err() != nil {
					return
				}
				status, body, sheds, noHint, events := issue(ctx, client, baseURL, token, reqs[i], cfg)
				mu.Lock()
				rep.Sent++
				rep.ByKind[reqs[i].kind]++
				rep.ByStatus[status]++
				rep.Shed += sheds
				rep.ShedNoHint += noHint
				rep.Events += events
				switch {
				case status == http.StatusOK:
					rep.OK++
					if cfg.Verify != nil {
						if err := cfg.Verify(reqs[i].kind, body); err != nil {
							rep.Invalid++
						}
					}
				default:
					rep.Failed++
				}
				mu.Unlock()
			}
		}(wkr)
	}
	wg.Wait()
	return rep, ctx.Err()
}

// issue sends one request, retrying sheds per the server's Retry-After.
// It returns the final status, the response body (for streamed
// responses, the final result event's data), how many 429s it absorbed,
// and how many stream events it saw.
func issue(ctx context.Context, client *http.Client, baseURL, token string, lr loadRequest, cfg LoadConfig) (status int, body []byte, sheds, noHint, events int) {
	url := baseURL + lr.path
	q := ""
	if cfg.Stream {
		q = "?stream=1"
	}
	if cfg.Timeout > 0 {
		sep := "?"
		if q != "" {
			sep = "&"
		}
		q += sep + "timeout=" + cfg.Timeout.String()
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+q, bytes.NewReader(lr.body))
		if err != nil {
			return 0, nil, sheds, noHint, events
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-Token", token)
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, sheds, noHint, events
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			hint := resp.Header.Get("Retry-After")
			resp.Body.Close()
			sheds++
			if hint == "" {
				noHint++
			}
			if attempt >= cfg.MaxShedRetries {
				return resp.StatusCode, nil, sheds, noHint, events
			}
			wait := time.Second
			if ra, err := strconv.Atoi(hint); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			// Bound the honor delay so load runs stay snappy.
			if wait > 2*time.Second {
				wait = 2 * time.Second
			}
			select {
			case <-ctx.Done():
				return resp.StatusCode, nil, sheds, noHint, events
			case <-time.After(wait):
			}
			continue
		}
		if cfg.Stream && resp.StatusCode == http.StatusOK {
			st, b, n := drainStream(resp.Body)
			resp.Body.Close()
			return st, b, sheds, noHint, events + n
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, b, sheds, noHint, events
	}
}

// drainStream consumes an NDJSON progress stream, returning the
// effective status (200 only if a result event arrived), the result
// event's data, and the total event count.
func drainStream(r io.Reader) (status int, result []byte, events int) {
	dec := json.NewDecoder(r)
	status = http.StatusInternalServerError
	for {
		var e struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
			Error string          `json:"error"`
		}
		if err := dec.Decode(&e); err != nil {
			break
		}
		events++
		switch e.Event {
		case "result":
			status, result = http.StatusOK, e.Data
		case "error":
			status = http.StatusInternalServerError
		}
	}
	return status, result, events
}
