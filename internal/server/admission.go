package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ErrDraining is returned by acquire once the server has begun graceful
// shutdown: new work is rejected so in-flight work can finish.
var ErrDraining = errors.New("server: draining, not accepting new work")

// ShedError reports load-shedding backpressure: the admission queue was
// full, and the client should retry after the hinted delay.
type ShedError struct {
	// RetryAfter is the server's estimate of when a retry has a chance
	// of being admitted, derived from the queue depth and worker count.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: admission queue full, retry after %s", e.RetryAfter)
}

// ticket is one waiter in the admission queue.
type ticket struct {
	ready     chan struct{} // closed on grant
	granted   bool
	abandoned bool // waiter gave up (context ended) before grant
}

// admission is a bounded admission queue with per-client fairness:
// at most workers requests execute concurrently, at most depth more may
// wait, and waiting requests are granted round-robin across client
// tokens — a client flooding the queue gets its requests interleaved
// with everyone else's, not served as a burst. Requests beyond the
// queue bound are shed immediately (the HTTP layer turns that into
// 429 + Retry-After).
type admission struct {
	mu       sync.Mutex
	workers  int
	depth    int
	active   int
	queued   int // live (non-abandoned) queued tickets
	draining bool

	// rotation holds the client tokens that currently have queued
	// tickets, in round-robin grant order; next is the rotation cursor.
	rotation []string
	next     int
	byClient map[string][]*ticket

	mc *metrics.Collector
}

func newAdmission(workers, depth int, mc *metrics.Collector) *admission {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{
		workers:  workers,
		depth:    depth,
		byClient: make(map[string][]*ticket),
		mc:       mc,
	}
}

// acquire admits one request for the given client token, blocking in the
// fair queue when all workers are busy. It returns ErrDraining during
// shutdown, a *ShedError when the queue is full, or the context's error
// if the caller gives up while queued. On nil return the caller holds a
// worker slot and must call release exactly once.
func (a *admission) acquire(ctx context.Context, client string) error {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	// Admit inline only when a worker is free AND nobody is queued:
	// arrivals must not overtake waiters.
	if a.active < a.workers && a.queued == 0 {
		a.active++
		a.mu.Unlock()
		a.mc.Add(metrics.CounterServerAdmitted, 1)
		return nil
	}
	if a.queued >= a.depth {
		retry := a.retryAfterLocked()
		a.mu.Unlock()
		a.mc.Add(metrics.CounterServerShed, 1)
		return &ShedError{RetryAfter: retry}
	}
	t := &ticket{ready: make(chan struct{})}
	if len(a.byClient[client]) == 0 {
		a.rotation = append(a.rotation, client)
	}
	a.byClient[client] = append(a.byClient[client], t)
	a.queued++
	a.mu.Unlock()
	a.mc.Add(metrics.CounterServerQueueDepth, 1)

	select {
	case <-t.ready:
		a.mc.Add(metrics.CounterServerAdmitted, 1)
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if t.granted {
			// Grant raced the cancellation: the slot is ours, hand it on.
			a.releaseLocked()
			a.mu.Unlock()
			return ctx.Err()
		}
		t.abandoned = true
		a.queued--
		a.mu.Unlock()
		a.mc.Add(metrics.CounterServerQueueDepth, -1)
		return ctx.Err()
	}
}

// release returns a worker slot and grants the next queued ticket, if
// any, round-robin across clients.
func (a *admission) release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *admission) releaseLocked() {
	a.active--
	a.grantLocked()
}

// grantLocked hands a free worker slot to the next queued ticket in
// round-robin client order, skipping abandoned tickets. Clients whose
// queues empty leave the rotation.
func (a *admission) grantLocked() {
	for a.active < a.workers && len(a.rotation) > 0 {
		if a.next >= len(a.rotation) {
			a.next = 0
		}
		client := a.rotation[a.next]
		q := a.byClient[client]
		// Pop the client's head ticket; drop abandoned ones on the floor.
		var t *ticket
		for len(q) > 0 && t == nil {
			if q[0].abandoned {
				q = q[1:]
				continue
			}
			t = q[0]
			q = q[1:]
		}
		if len(q) == 0 {
			delete(a.byClient, client)
			a.rotation = append(a.rotation[:a.next], a.rotation[a.next+1:]...)
			// next now points at the following client; no advance needed.
		} else {
			a.byClient[client] = q
			a.next++ // move on so the next grant serves another client
		}
		if t != nil {
			t.granted = true
			a.active++
			a.queued--
			close(t.ready)
			a.mc.Add(metrics.CounterServerQueueDepth, -1)
		}
	}
}

// retryAfterLocked estimates when a shed client should retry: one
// scheduling quantum per queued-requests-per-worker, floored at one
// second so Retry-After headers stay meaningful.
func (a *admission) retryAfterLocked() time.Duration {
	d := time.Duration(1+a.queued/a.workers) * time.Second
	if d < time.Second {
		d = time.Second
	}
	return d
}

// drain switches the queue into shutdown mode: new acquires fail with
// ErrDraining; already-queued tickets still get granted as workers free
// up, so accepted work completes.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// snapshot reports the queue's instantaneous state for /metricz.
func (a *admission) snapshot() (active, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active, a.queued
}
