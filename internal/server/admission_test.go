package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestAdmissionInlineShedRelease(t *testing.T) {
	mc := metrics.New()
	a := newAdmission(2, 0, mc)
	ctx := context.Background()

	if err := a.acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	// Both workers busy, zero queue depth: the third arrival sheds.
	err := a.acquire(ctx, "c")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
	if got := mc.Counter(metrics.CounterServerShed); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	a.release()
	if err := a.acquire(ctx, "c"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if got := mc.Counter(metrics.CounterServerAdmitted); got != 3 {
		t.Errorf("admitted counter = %d, want 3", got)
	}
}

// enqueueWaiter parks one acquire in the queue and returns a channel
// that yields its grant; it blocks until the ticket is actually queued.
func enqueueWaiter(t *testing.T, a *admission, client string, record func(string)) {
	t.Helper()
	_, before := a.snapshot()
	go func() {
		if err := a.acquire(context.Background(), client); err != nil {
			t.Errorf("%s: acquire: %v", client, err)
			return
		}
		record(client)
		a.release()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, q := a.snapshot(); q > before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: ticket never queued", client)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionFairness pins the round-robin grant order: a greedy
// client that floods the queue cannot starve a light client — grants
// interleave across client tokens.
func TestAdmissionFairness(t *testing.T) {
	mc := metrics.New()
	a := newAdmission(1, 16, mc)

	// Occupy the single worker so everything below queues.
	if err := a.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var grants []string
	done := make(chan struct{})
	record := func(c string) {
		mu.Lock()
		grants = append(grants, c)
		n := len(grants)
		mu.Unlock()
		if n == 8 {
			close(done)
		}
	}

	// Greedy client queues six requests, then the light client queues
	// two. Strict FIFO would serve all six greedy requests first.
	for i := 0; i < 6; i++ {
		enqueueWaiter(t, a, "greedy", record)
	}
	for i := 0; i < 2; i++ {
		enqueueWaiter(t, a, "light", record)
	}

	a.release() // free the worker; grants chain through each release
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("grants never completed")
	}

	mu.Lock()
	defer mu.Unlock()
	// Round-robin across {greedy, light}: light's two requests must land
	// within the first four grants, not after greedy's six.
	lightSeen := 0
	for i, c := range grants[:4] {
		_ = i
		if c == "light" {
			lightSeen++
		}
	}
	if lightSeen != 2 {
		t.Errorf("grant order %v: light client served %d of first 4 grants, want 2 (starved by greedy)", grants, lightSeen)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	mc := metrics.New()
	a := newAdmission(1, 4, mc)
	if err := a.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, "w") }()
	waitQueued(t, a, 1)

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, q := a.snapshot(); q != 0 {
		t.Errorf("queued = %d after abandonment, want 0", q)
	}
	if got := mc.Counter(metrics.CounterServerQueueDepth); got != 0 {
		t.Errorf("queue depth gauge = %d, want 0", got)
	}

	// The abandoned ticket must not absorb the next grant.
	a.release()
	if err := a.acquire(context.Background(), "x"); err != nil {
		t.Fatalf("acquire after abandoned ticket: %v", err)
	}
}

func TestAdmissionDrain(t *testing.T) {
	mc := metrics.New()
	a := newAdmission(1, 4, mc)
	if err := a.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	// A request queued before the drain still gets served...
	granted := make(chan error, 1)
	go func() { granted <- a.acquire(context.Background(), "early") }()
	waitQueued(t, a, 1)

	a.drain()

	// ...while new arrivals are rejected outright.
	if err := a.acquire(context.Background(), "late"); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain = %v, want ErrDraining", err)
	}

	a.release()
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("queued-before-drain acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued-before-drain ticket never granted")
	}
}

func waitQueued(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, q := a.snapshot(); q >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d", want)
		}
		time.Sleep(time.Millisecond)
	}
}
