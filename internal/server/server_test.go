package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dip"
	"repro/internal/faults"
	"repro/internal/metrics"
)

const testBudget = 50_000

func newTestServer(t *testing.T, tune func(*Config)) (*Server, *httptest.Server, *metrics.Collector) {
	t.Helper()
	w := core.NewWorkspaceWorkers(testBudget, 2)
	w.KeepGoing = true
	mc := metrics.New()
	w.Metrics = mc
	cfg := Config{
		Workspace:      w,
		Workers:        2,
		QueueDepth:     8,
		DefaultTimeout: time.Minute,
		Retry:          core.DefaultRetryPolicy(),
		Metrics:        mc,
	}
	if tune != nil {
		tune(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, mc
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestProbesAndDrain(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Work requests are rejected outright during/after drain.
	r, _ := post(t, ts.URL+"/v1/profile", `{"bench":"`+core.SuiteNames()[0]+`"}`)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("profile after drain: status %d, want 503", r.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	cases := []struct {
		path, body string
	}{
		{"/v1/experiment", `{"id":"e999"}`},
		{"/v1/experiment", `{oops`},
		{"/v1/experiments", `{"ids":["e1","nope"]}`},
		{"/v1/profile", `{"bench":"nonesuch"}`},
		{"/v1/predeval", `{"bench":"nonesuch"}`},
		{"/v1/predeval", `{"bench":"` + core.SuiteNames()[0] + `","flavor":"alien"}`},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (body %s)", tc.path, tc.body, resp.StatusCode, body)
		}
	}
	// Bad ?timeout= is a usage error too.
	resp, _ := post(t, ts.URL+"/v1/profile?timeout=banana", `{"bench":"`+core.SuiteNames()[0]+`"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout: status %d, want 400", resp.StatusCode)
	}
}

func TestProfileEndpointMatchesDirect(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	bench := core.SuiteNames()[0]

	resp, body := post(t, ts.URL+"/v1/profile", `{"bench":"`+bench+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ProfileStats
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	// Bit-identity with a direct workspace computation at the same budget.
	ref := core.NewWorkspace(testBudget)
	var want ProfileStats
	err := ref.WithProfile(bench, func(p *core.ProfileResult) error {
		want = ProfileStats{Bench: bench, Budget: testBudget, Summary: p.Summary,
			Locality: p.Locality, DeadFraction: p.Summary.DeadFraction()}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("profile response diverges from direct run:\nserver: %s\ndirect: %s", gb, wb)
	}
	_ = s
}

func TestRequestTimeout(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	bench := core.SuiteNames()[0]
	resp, body := post(t, ts.URL+"/v1/profile?timeout=1ns", `{"bench":"`+bench+`"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Kind != "deadline" {
		t.Errorf("error kind %q, want deadline", eb.Kind)
	}
}

func TestMaxTimeoutClamp(t *testing.T) {
	s, _, _ := newTestServer(t, func(c *Config) { c.MaxTimeout = time.Second })
	req := httptest.NewRequest(http.MethodPost, "/v1/profile?timeout=10m", nil)
	d, err := s.requestTimeout(req)
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Second {
		t.Errorf("timeout = %v, want clamped to 1s", d)
	}
}

func TestStreamingProgress(t *testing.T) {
	_, ts, mc := newTestServer(t, nil)
	bench := core.SuiteNames()[0]

	resp, err := http.Post(ts.URL+"/v1/profile?stream=1", "application/json",
		strings.NewReader(`{"bench":"`+bench+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var progress, results int
	var final streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e streamEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch e.Event {
		case "progress":
			progress++
		case "result":
			results++
			final = e
		case "error":
			t.Fatalf("stream error: %s", e.Error)
		}
	}
	if results != 1 {
		t.Fatalf("result events = %d, want 1", results)
	}
	// A cold profile build emits compile/emulate/analyze spans, all of
	// which flow through the broadcaster.
	if progress == 0 {
		t.Error("no progress events on a cold build")
	}
	if final.Data == nil {
		t.Error("result event carries no data")
	}
	if got := mc.Counter(metrics.CounterServerStreams); got != 1 {
		t.Errorf("stream counter = %d, want 1", got)
	}
}

// TestClientDisconnectRecovery is the server half of the stream/chunk
// lifecycle fix: a client that disconnects mid-request cancels the
// request context, which aborts any build it initiated and releases its
// pooled trace chunks and writer-map pages; an identical request
// afterwards must succeed and match a clean workspace bit for bit.
func TestClientDisconnectRecovery(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	bench := core.SuiteNames()[0]

	// Fire a cold profile request and abandon it almost immediately,
	// repeatedly, sweeping the cancellation point across the build.
	for _, after := range []time.Duration{0, 200 * time.Microsecond, 2 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/profile",
			strings.NewReader(`{"bench":"`+bench+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		time.Sleep(after)
		cancel()
		wg.Wait()
	}

	// The pools must be intact: a clean request succeeds and matches a
	// direct run.
	resp, body := post(t, ts.URL+"/v1/profile", `{"bench":"`+bench+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: status %d: %s", resp.StatusCode, body)
	}
	var got ProfileStats
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	ref := core.NewWorkspace(testBudget)
	var want deadnessSummaryProbe
	if err := ref.WithProfile(bench, func(p *core.ProfileResult) error {
		want = deadnessSummaryProbe{p.Summary.Total, p.Summary.Dead}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got.Summary.Total != want.total || got.Summary.Dead != want.dead {
		t.Errorf("post-disconnect profile diverges: got %d/%d, want %d/%d",
			got.Summary.Dead, got.Summary.Total, want.dead, want.total)
	}
}

type deadnessSummaryProbe struct{ total, dead int }

func TestShedUnderBurst(t *testing.T) {
	_, ts, mc := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 0
	})
	benches := core.SuiteNames()

	// Hold the single worker for a deterministic interval per admitted
	// request via a delay fault at server.handle (fired after admission,
	// so the slot stays occupied through the sleep). Without this the
	// test hinges on a cold build outlasting goroutine scheduling skew.
	faults.Set(faults.NewInjector(1).Arm(SiteHandle,
		faults.Rule{Kind: faults.Delay, Rate: 1, Delay: 50 * time.Millisecond}))
	t.Cleanup(func() { faults.Set(nil) })

	// Burst cold requests for DISTINCT benches at a single worker with no
	// queue: identical requests would coalesce instead of queueing, so
	// every request here names its own bench, and all but the one holding
	// the worker shed with 429 + Retry-After.
	const burst = 8
	statuses := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json",
				strings.NewReader(`{"bench":"`+benches[i%len(benches)]+`"}`))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	close(start)
	wg.Wait()

	sheds := 0
	for i, st := range statuses {
		if st == http.StatusTooManyRequests {
			sheds++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After header")
			}
		}
	}
	if sheds == 0 {
		t.Fatal("no request was shed; backpressure test is vacuous")
	}
	if got := mc.Counter(metrics.CounterServerShed); int(got) != sheds {
		t.Errorf("shed counter = %d, observed %d sheds", got, sheds)
	}
}

func TestMetricz(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	bench := core.SuiteNames()[0]
	if resp, _ := post(t, ts.URL+"/v1/profile", `{"bench":"`+bench+`"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Run      metrics.Summary `json:"run"`
		Draining bool            `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Run.Counters[metrics.CounterServerCompleted] < 1 {
		t.Errorf("completed counter = %d, want >= 1", m.Run.Counters[metrics.CounterServerCompleted])
	}
	if m.Draining {
		t.Error("draining reported on a live server")
	}
}

// TestCoalescedBurstBitIdentical is the coalescing contract: identical
// concurrent requests collapse into one execution (one build, no shed
// even with a zero-depth queue) and every subscriber receives
// byte-identical response bodies.
func TestCoalescedBurstBitIdentical(t *testing.T) {
	s, ts, mc := newTestServer(t, func(c *Config) {
		c.Workers = 1
		// No queue at all: any concurrent duplicate that failed to
		// coalesce would shed with 429, so all-200 below proves the
		// duplicates bypassed admission entirely.
		c.QueueDepth = 0
	})
	bench := core.SuiteNames()[1]

	// Hold the flight's execution open so every duplicate arrives while
	// it is pending.
	faults.Set(faults.NewInjector(7).Arm(SiteHandle,
		faults.Rule{Kind: faults.Delay, Rate: 1, Delay: 100 * time.Millisecond}))
	t.Cleanup(func() { faults.Set(nil) })

	const dup = 6
	statuses := make([]int, dup)
	bodies := make([][]byte, dup)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json",
				strings.NewReader(`{"bench":"`+bench+`"}`))
			if err != nil {
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	close(start)
	wg.Wait()

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (body %s)", i, st, bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body diverges from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := mc.Counter(metrics.CounterServerCoalesced); got == 0 {
		t.Error("no request coalesced; the burst test is vacuous")
	}
	if got := mc.Counter(metrics.CounterServerCompleted); got != dup {
		t.Errorf("completed counter = %d, want %d", got, dup)
	}
	if st := s.w.ArtifactStats().Kinds[core.KindProfile]; st.Misses != 1 {
		t.Errorf("profile builds = %d, want exactly 1 for %d identical requests", st.Misses, dup)
	}
	if got := s.coal.pending(); got != 0 {
		t.Errorf("pending flights = %d after burst, want 0", got)
	}
}

// TestArtifactTransferEndpoints exercises the remote-tier wire protocol
// end to end: a cold workspace with the daemon attached as its remote
// tier warm-starts from it (GET), and pushes what it builds back (PUT).
func TestArtifactTransferEndpoints(t *testing.T) {
	_, ts, mc := newTestServer(t, nil)
	bench := core.SuiteNames()[0]

	// Warm the daemon with one profile build.
	if resp, body := post(t, ts.URL+"/v1/profile", `{"bench":"`+bench+`"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm profile: %d: %s", resp.StatusCode, body)
	}

	// A second workspace at the same budget, with the daemon as remote
	// tier, resolves the same profile without building it.
	rc, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorkspaceWorkers(testBudget, 2)
	w2.SetRemoteTier(rc)
	var got deadnessSummaryProbe
	if err := w2.WithProfile(bench, func(p *core.ProfileResult) error {
		got = deadnessSummaryProbe{p.Summary.Total, p.Summary.Dead}
		return nil
	}); err != nil {
		t.Fatalf("remote warm start: %v", err)
	}
	if got.total == 0 {
		t.Error("remote-fetched profile is empty")
	}
	st := w2.ArtifactStats().Kinds[core.KindProfile]
	if st.RemoteHits != 1 || st.Misses != 0 {
		t.Errorf("profile remote_hits=%d misses=%d, want 1 hit and 0 misses", st.RemoteHits, st.Misses)
	}
	if hits := mc.Counter(metrics.CounterServerArtifactHits); hits == 0 {
		t.Error("daemon served no artifact GET")
	}

	// Fresh builds push back: evaluate a predictor the daemon has never
	// seen and the daemon receives the PUT.
	if _, err := w2.EvalPredictor(bench, dip.Spec{Flavor: dip.FlavorCFI, Config: dip.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	if puts := mc.Counter(metrics.CounterServerArtifactPuts); puts == 0 {
		t.Error("daemon received no artifact PUT after a fresh remote-attached build")
	}

	// Malformed paths are rejected; a well-formed unknown digest is a 404.
	for _, path := range []string{
		"/v1/artifact/Profile/" + strings.Repeat("0", 64), // uppercase kind
		"/v1/artifact/profile/shortdigest",
		"/v1/artifact/profile/" + strings.Repeat("x", 64), // non-hex digest
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/artifact/profile/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest: status %d, want 404", resp.StatusCode)
	}
	if misses := mc.Counter(metrics.CounterServerArtifactMisses); misses == 0 {
		t.Error("artifact miss counter did not move on a 404")
	}
}

// TestArtifactGetSpillThrough pins the disk-tier fast path: when the
// requested artifact lives only in the daemon's disk tier, the GET serves
// the mapped entry file bytes directly (the on-disk framing IS the wire
// framing) and counts a spill-through; a remote-attached workspace must
// decode those bytes as a normal warm start.
func TestArtifactGetSpillThrough(t *testing.T) {
	dir := t.TempDir()
	s, ts, mc := newTestServer(t, func(cfg *Config) {
		if err := cfg.Workspace.OpenDiskCache(dir, 64<<20); err != nil {
			t.Fatal(err)
		}
	})
	bench := core.SuiteNames()[0]
	if resp, body := post(t, ts.URL+"/v1/profile", `{"bench":"`+bench+`"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm profile: %d: %s", resp.StatusCode, body)
	}
	// Evict the resident tier: the only remaining copy is the spilled disk
	// entry, so the GET below must take the spill-through path.
	s.w.FlushSpill()

	rc, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorkspaceWorkers(testBudget, 2)
	w2.SetRemoteTier(rc)
	var total int
	if err := w2.WithProfile(bench, func(p *core.ProfileResult) error {
		total = p.Summary.Total
		return nil
	}); err != nil {
		t.Fatalf("remote warm start from spilled entry: %v", err)
	}
	if total == 0 {
		t.Error("spill-through-fetched profile is empty")
	}
	spills := mc.Counter(metrics.CounterServerArtifactSpillthrough)
	if spills == 0 {
		t.Error("no spill-through recorded for a disk-only artifact GET")
	}
	if hits := mc.Counter(metrics.CounterServerArtifactHits); hits < spills {
		t.Errorf("spill-throughs (%d) exceed artifact hits (%d)", spills, hits)
	}
}

// TestAdoptionAcrossRequests is the server half of build adoption: a
// request that starts a cold build and disconnects does not doom the
// build when a second request for the same artifact is waiting — the
// survivor adopts the in-flight work instead of paying for a restart.
func TestAdoptionAcrossRequests(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	bench := core.SuiteNames()[2]

	// The originator: starts the cold profile build, then vanishes.
	octx, ocancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(octx, http.MethodPost, ts.URL+"/v1/profile",
			strings.NewReader(`{"bench":"`+bench+`"}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// The survivor: same request, distinct coalescing identity is NOT
	// wanted here — it must either coalesce onto the originator's flight
	// or wait on the same artifact build; both paths must survive the
	// originator's disconnect.
	done := make(chan deadnessSummaryProbe, 1)
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond) // let the originator lead
		resp, err := http.Post(ts.URL+"/v1/profile", "application/json",
			strings.NewReader(`{"bench":"`+bench+`"}`))
		if err != nil {
			errc <- err
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errc <- fmt.Errorf("survivor: status %d: %s", resp.StatusCode, body)
			return
		}
		var ps ProfileStats
		if err := json.Unmarshal(body, &ps); err != nil {
			errc <- err
			return
		}
		done <- deadnessSummaryProbe{ps.Summary.Total, ps.Summary.Dead}
	}()

	time.Sleep(5 * time.Millisecond) // mid-build for the cold profile
	ocancel()
	wg.Wait()

	select {
	case err := <-errc:
		t.Fatal(err)
	case got := <-done:
		ref := core.NewWorkspace(testBudget)
		var want deadnessSummaryProbe
		if err := ref.WithProfile(bench, func(p *core.ProfileResult) error {
			want = deadnessSummaryProbe{p.Summary.Total, p.Summary.Dead}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("survivor got %+v, want %+v", got, want)
		}
	}
	_ = s
}
