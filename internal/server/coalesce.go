package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Request coalescing: the admission queue recognizes identical pending
// requests — same endpoint and same canonical spec digest — and collapses
// them into one execution fanned out to every subscriber. The first
// request for a key becomes the flight's leader: a dedicated goroutine
// that queues through admission under the leader's client token, executes
// once, and publishes the result. Requests that arrive while the flight
// is pending subscribe instead of queueing (counted as server_coalesced):
// they occupy no admission slot, add no queue depth, and receive the same
// response bytes the leader does — responses are serialized per
// subscriber from one shared result value, so coalesced responses are
// bit-identical to independent runs by construction.
//
// Ownership is refcounted like artifact builds: a subscriber whose client
// disconnects just leaves; the flight dies only when its last subscriber
// has left, at which point it is removed from the table first so no new
// request can join a dying flight. The per-request ?timeout of the
// leader bounds the flight's execution (applied after admission, like
// every request deadline here); a subscriber's own ?timeout bounds its
// wait from the moment the flight is admitted, so "slow because queued"
// time is excluded for subscribers exactly as it is for solo requests.
// ?stream and ?timeout deliberately do not enter the coalescing key: they
// shape the response channel, not the result.

// flight is one pending coalesced execution.
type flight struct {
	key string

	// admitted closes once the flight holds an admission slot; done
	// closes after the result fields are published and the flight is out
	// of the table. A flight that fails before admission (shed, drain)
	// closes done with admitted still open — subscribers use that to keep
	// shed responses plain (no stream opens for a request that never
	// executed).
	admitted chan struct{}
	done     chan struct{}

	// Published before done closes, read-only after.
	res      any
	attempts int
	err      error

	// cancel aborts the flight's execution context; called by the last
	// departing subscriber.
	cancel context.CancelFunc

	// subs is the number of attached requests; guarded by coalescer.mu.
	subs int
}

// coalescer is the flight table.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// joinResult is what a request takes away from a flight.
type joinResult struct {
	res      any
	attempts int
	err      error
	// coalesced reports the request subscribed to an existing flight
	// rather than leading one.
	coalesced bool
	// preExec reports the error (if any) happened before execution began:
	// an admission shed, a drain rejection, or this subscriber abandoning
	// its wait. Pre-execution failures are not counted as server_failed.
	preExec bool
}

// execute runs one request through the coalescer: lead a new flight for
// the key or subscribe to the pending one, then wait for the result,
// ctx cancellation, or — once the flight is admitted — the subscriber's
// own timeout. onAdmitted runs on this request's goroutine as soon as
// the flight is admitted (and always before a post-admission result is
// returned); the streaming path uses it to open the response stream
// lazily, so requests that shed never commit a 200 status.
func (c *coalescer) execute(s *Server, ctx context.Context, endpoint, key, client string, timeout time.Duration, onAdmitted func(), fn func(context.Context) (any, error)) joinResult {
	c.mu.Lock()
	f, ok := c.flights[key]
	coalesced := ok
	if ok {
		f.subs++
		c.mu.Unlock()
		s.mc.Add(metrics.CounterServerCoalesced, 1)
	} else {
		fctx, fcancel := context.WithCancel(context.Background())
		f = &flight{
			key:      key,
			admitted: make(chan struct{}),
			done:     make(chan struct{}),
			cancel:   fcancel,
			subs:     1,
		}
		c.flights[key] = f
		c.mu.Unlock()
		go s.runFlight(f, fctx, endpoint, client, timeout, fn)
	}

	admitted := f.admitted
	var timeoutC <-chan time.Time
	for {
		select {
		case <-admitted:
			onAdmitted()
			if timeout > 0 {
				t := time.NewTimer(timeout)
				defer t.Stop()
				timeoutC = t.C
			}
			admitted = nil // fires once; a nil channel never selects
		case <-f.done:
			if f.err == nil || f.attempts > 0 {
				// The flight executed; make sure a streaming subscriber has
				// its stream open even if it never won the admitted branch.
				select {
				case <-f.admitted:
					onAdmitted()
				default:
				}
			}
			return joinResult{res: f.res, attempts: f.attempts, err: f.err, coalesced: coalesced, preExec: f.attempts == 0}
		case <-ctx.Done():
			c.leave(f)
			return joinResult{err: ctx.Err(), coalesced: coalesced, preExec: admitted != nil}
		case <-timeoutC:
			c.leave(f)
			return joinResult{err: context.DeadlineExceeded, coalesced: coalesced}
		}
	}
}

// leave detaches one subscriber. The last one out removes the flight
// from the table (so no new request joins it) and cancels its execution.
func (c *coalescer) leave(f *flight) {
	c.mu.Lock()
	f.subs--
	last := f.subs == 0
	if last && c.flights[f.key] == f {
		delete(c.flights, f.key)
	}
	c.mu.Unlock()
	if last {
		f.cancel()
	}
}

// pending reports the number of live flights (for tests).
func (c *coalescer) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}

// runFlight is the leader goroutine: admission (queue wait observed per
// endpoint), then the retried execution (execution time observed per
// endpoint), then publication. The flight leaves the table before done
// closes, so late arrivals start a fresh flight instead of reading a
// finished one — the artifact store's single-flight layer still
// deduplicates any build they share.
func (s *Server) runFlight(f *flight, fctx context.Context, endpoint, client string, timeout time.Duration, fn func(context.Context) (any, error)) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer f.cancel()
	// A drain deadline cancels flights through baseCtx.
	stop := context.AfterFunc(s.baseCtx, f.cancel)
	defer stop()

	qstart := time.Now()
	err := s.adm.acquire(fctx, client)
	s.mc.Observe(metrics.HistServerQueueWait+"."+endpoint, time.Since(qstart))
	if err != nil {
		s.finishFlight(f, nil, 0, err)
		return
	}
	defer s.adm.release()
	close(f.admitted)

	ctx := fctx
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}
	estart := time.Now()
	res, attempts, rerr := s.attempt(ctx, fn)
	s.mc.Observe(metrics.HistServerExec+"."+endpoint, time.Since(estart))
	if attempts < 1 {
		attempts = 1
	}
	s.finishFlight(f, res, attempts, rerr)
}

// finishFlight publishes the result and retires the flight.
func (s *Server) finishFlight(f *flight, res any, attempts int, err error) {
	f.res, f.attempts, f.err = res, attempts, err
	s.coal.mu.Lock()
	if s.coal.flights[f.key] == f {
		delete(s.coal.flights, f.key)
	}
	s.coal.mu.Unlock()
	close(f.done)
}
