package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dip"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// diskWorkspace creates a workspace whose artifact store persists to dir.
func diskWorkspace(t *testing.T, dir string) *Workspace {
	t.Helper()
	w := NewWorkspaceWorkers(testBudget, 2)
	if err := w.OpenDiskCache(dir, 0); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkspaceWarmStartBitIdentical is the persistent tier's acceptance
// check at the workspace level: a fresh workspace over a populated cache
// directory must produce bit-identical profiles, predictor evaluations,
// and machine runs with zero profile builds — the disk-hit counters prove
// every profile came from disk.
func TestWorkspaceWarmStartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	bench := "gzip"
	cfg := pipeline.ContendedConfig()
	spec := dip.Spec{Flavor: dip.FlavorCFI, Config: dip.DefaultConfig()}

	cold := diskWorkspace(t, dir)
	coldProf, err := cold.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}
	coldRecords := coldProf.Trace.Records()
	coldEval, err := cold.EvalPredictor(bench, spec)
	if err != nil {
		t.Fatal(err)
	}
	coldSim, err := cold.RunMachine(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.ArtifactStats().Kinds
	if cs[KindProfile].Misses != 1 || cs[KindProfile].DiskWrites != 1 {
		t.Errorf("cold profile stats = %+v", cs[KindProfile])
	}

	warm := diskWorkspace(t, dir)
	warmProf, err := warm.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmProf.Summary, coldProf.Summary) {
		t.Errorf("summaries differ:\ncold %+v\nwarm %+v", coldProf.Summary, warmProf.Summary)
	}
	if !reflect.DeepEqual(warmProf.Locality, coldProf.Locality) {
		t.Error("localities differ")
	}
	if !reflect.DeepEqual(warmProf.PassStats, coldProf.PassStats) {
		t.Error("pass stats differ")
	}
	if warmProf.Analysis.Candidates() != coldProf.Analysis.Candidates() {
		t.Error("candidate counts differ")
	}
	for _, cmp := range []struct {
		name       string
		cold, warm any
	}{
		{"Kind", coldProf.Analysis.Kind, warmProf.Analysis.Kind},
		{"Candidate", coldProf.Analysis.Candidate, warmProf.Analysis.Candidate},
		{"EverRead", coldProf.Analysis.EverRead, warmProf.Analysis.EverRead},
		{"Resolve", coldProf.Analysis.Resolve, warmProf.Analysis.Resolve},
	} {
		if !reflect.DeepEqual(cmp.cold, cmp.warm) {
			t.Errorf("analysis %s column differs after disk round trip", cmp.name)
		}
	}
	err = warm.WithProfile(bench, func(res *ProfileResult) error {
		if !reflect.DeepEqual(res.Trace.Records(), coldRecords) {
			t.Error("trace records differ after disk round trip")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	warmEval, err := warm.EvalPredictor(bench, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warmEval != coldEval {
		t.Errorf("predictor evaluations differ:\ncold %+v\nwarm %+v", coldEval, warmEval)
	}
	warmSim, err := warm.RunMachine(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warmSim != coldSim {
		t.Errorf("machine runs differ:\ncold %+v\nwarm %+v", coldSim, warmSim)
	}

	ws := warm.ArtifactStats().Kinds
	if ws[KindProfile].Misses != 0 {
		t.Errorf("warm run built %d profiles, want 0 (stats %+v)", ws[KindProfile].Misses, ws[KindProfile])
	}
	if ws[KindProfile].DiskHits != 1 {
		t.Errorf("warm profile disk hits = %d, want 1", ws[KindProfile].DiskHits)
	}
	if ws[KindPredEval].Misses != 0 || ws[KindPredEval].DiskHits != 1 {
		t.Errorf("warm predeval stats = %+v, want pure disk hit", ws[KindPredEval])
	}
	if ws[KindMachine].Misses != 0 || ws[KindMachine].DiskHits != 1 {
		t.Errorf("warm machine stats = %+v, want pure disk hit", ws[KindMachine])
	}
}

// TestWorkspaceRebuildsCorruptProfileEntry flips a byte in the persisted
// profile and warm-starts: the workspace must detect the corruption,
// rebuild the profile from scratch, and still match the original.
func TestWorkspaceRebuildsCorruptProfileEntry(t *testing.T) {
	dir := t.TempDir()
	bench := "gzip"
	cold := diskWorkspace(t, dir)
	coldProf, err := cold.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}

	profDir := filepath.Join(dir, string(KindProfile))
	files, err := os.ReadDir(profDir)
	if err != nil || len(files) != 1 {
		t.Fatalf("profile dir: %v (%d files)", err, len(files))
	}
	path := filepath.Join(profDir, files[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	warm := diskWorkspace(t, dir)
	warmProf, err := warm.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmProf.Summary, coldProf.Summary) {
		t.Error("rebuilt profile differs from original")
	}
	ws := warm.ArtifactStats().Kinds[KindProfile]
	if ws.VerifyFailures != 1 || ws.Misses != 1 || ws.DiskWrites != 1 {
		t.Errorf("corrupt-entry stats = %+v, want verify failure + rebuild + re-persist", ws)
	}
}

// TestProfileOptionVariantsArePersistedDistinctly checks the disk tier
// keys compile-option variants separately (E3/E12-style overrides), and
// that a warm start with the same override hits its own entry.
func TestProfileOptionVariantsArePersistedDistinctly(t *testing.T) {
	dir := t.TempDir()
	bench := "gzip"
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	opts := p.Opts
	opts.MaxHoist = 0

	cold := diskWorkspace(t, dir)
	base, err := cold.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}
	variant, err := cold.ProfileWithOptions(bench, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base.Summary, variant.Summary) {
		t.Log("variant summary equals base; override had no effect on this benchmark")
	}
	if got := cold.ArtifactStats().Kinds[KindProfile].DiskWrites; got != 2 {
		t.Fatalf("cold run persisted %d profile entries, want 2", got)
	}

	warm := diskWorkspace(t, dir)
	warmVariant, err := warm.ProfileWithOptions(bench, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmVariant.Summary, variant.Summary) {
		t.Error("variant profile differs after disk round trip")
	}
	if !reflect.DeepEqual(warmVariant.PassStats, variant.PassStats) {
		t.Error("variant pass stats differ after disk round trip")
	}
	ws := warm.ArtifactStats().Kinds[KindProfile]
	if ws.Misses != 0 || ws.DiskHits != 1 {
		t.Errorf("warm variant stats = %+v, want pure disk hit", ws)
	}
}
