package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/cache"
	"repro/internal/dip"
	"repro/internal/lebytes"
	"repro/internal/pipeline"
)

// Result-artifact persistence: predictor evaluations (KindPredEval) and
// machine runs (KindMachine) are small flat structs that used to travel
// as JSON on every disk and remote hop. They now serialize as versioned
// binary records — a one-byte format version, a CRC-32C of the body
// (belt-and-braces on top of the tier framing, so a record pulled out of
// any future transport still self-verifies), and the numeric fields as
// one little-endian u64 column bulk-reinterpreted via lebytes. Decode is
// strict: version, CRC, and exact length all must match, so a payload
// from a different build of the code rebuilds instead of mis-decoding.
const (
	// Version history: 1 had a 25-field machine column; 2 appended the six
	// clustering counters. Old entries fail the version check and rebuild.
	resultCodecVersion = 2
	resultHeaderSize   = 1 + 4 // version byte + CRC-32C of the body
)

var resultCRCTable = crc32.MakeTable(crc32.Castagnoli)

// putU64Column writes vals as little-endian u64s into dst (which must be
// exactly 8*len(vals) bytes), bulk-reinterpreting on little-endian hosts.
func putU64Column(dst []byte, vals []uint64) {
	if lebytes.Little {
		copy(dst, lebytes.U64(vals))
		return
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], v)
	}
}

// getU64Column reads 8*len(vals) bytes from src into vals.
func getU64Column(vals []uint64, src []byte) {
	if lebytes.Little {
		copy(lebytes.U64(vals), src)
		return
	}
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(src[i*8:])
	}
}

// sealResult prefixes body with the version byte and body CRC.
func sealResult(w io.Writer, body []byte) error {
	var hdr [resultHeaderSize]byte
	hdr[0] = resultCodecVersion
	binary.LittleEndian.PutUint32(hdr[1:], crc32.Checksum(body, resultCRCTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// openResult verifies the header and returns the body.
func openResult(payload []byte, what string) ([]byte, error) {
	if len(payload) < resultHeaderSize {
		return nil, fmt.Errorf("core: %s decode: truncated header (%d bytes)", what, len(payload))
	}
	if v := payload[0]; v != resultCodecVersion {
		return nil, fmt.Errorf("core: %s decode: unsupported version %d", what, v)
	}
	body := payload[resultHeaderSize:]
	if got, want := crc32.Checksum(body, resultCRCTable), binary.LittleEndian.Uint32(payload[1:]); got != want {
		return nil, fmt.Errorf("core: %s decode: body digest mismatch", what)
	}
	return body, nil
}

// predEvalCodec persists dip.Result: uvarint-prefixed name, then a
// six-field u64 column (counters and the branch-accuracy float bits).
type predEvalCodec struct{}

const predEvalFields = 6

func predEvalColumn(r dip.Result) [predEvalFields]uint64 {
	return [predEvalFields]uint64{
		uint64(int64(r.Candidates)),
		uint64(int64(r.Dead)),
		uint64(int64(r.Predicted)),
		uint64(int64(r.TruePos)),
		uint64(int64(r.StateBits)),
		math.Float64bits(r.BranchAccuracy),
	}
}

func (predEvalCodec) Encode(w io.Writer, v any) error {
	r, ok := v.(dip.Result)
	if !ok {
		return fmt.Errorf("core: predeval codec got %T", v)
	}
	var lb [binary.MaxVarintLen64]byte
	nn := binary.PutUvarint(lb[:], uint64(len(r.Name)))
	body := make([]byte, nn+len(r.Name)+8*predEvalFields)
	copy(body, lb[:nn])
	copy(body[nn:], r.Name)
	col := predEvalColumn(r)
	putU64Column(body[nn+len(r.Name):], col[:])
	return sealResult(w, body)
}

func (predEvalCodec) Decode(payload []byte) (any, int64, error) {
	body, err := openResult(payload, "predeval")
	if err != nil {
		return nil, 0, err
	}
	nlen, nn := binary.Uvarint(body)
	if nn <= 0 || uint64(len(body)-nn) < nlen {
		return nil, 0, fmt.Errorf("core: predeval decode: name: %w", io.ErrUnexpectedEOF)
	}
	name := string(body[nn : nn+int(nlen)])
	rest := body[nn+int(nlen):]
	if len(rest) != 8*predEvalFields {
		return nil, 0, fmt.Errorf("core: predeval decode: column is %d bytes, want %d", len(rest), 8*predEvalFields)
	}
	var col [predEvalFields]uint64
	getU64Column(col[:], rest)
	r := dip.Result{
		Name:           name,
		Candidates:     int(int64(col[0])),
		Dead:           int(int64(col[1])),
		Predicted:      int(int64(col[2])),
		TruePos:        int(int64(col[3])),
		StateBits:      int(int64(col[4])),
		BranchAccuracy: math.Float64frombits(col[5]),
	}
	return r, predEvalSize, nil
}

// machineCodec persists pipeline.Stats as a fixed 31-field u64 column.
// The field order below is part of the format: changing pipeline.Stats
// requires updating both column functions and bumping resultCodecVersion
// — TestResultCodecsCoverEveryField catches a field added without one.
type machineCodec struct{}

const machineFields = 31

func machineStatsColumn(st pipeline.Stats) [machineFields]uint64 {
	cacheCol := func(c cache.Stats) [4]uint64 {
		return [4]uint64{
			uint64(int64(c.Accesses)), uint64(int64(c.Hits)),
			uint64(int64(c.Misses)), uint64(int64(c.Writebacks)),
		}
	}
	l1, l2 := cacheCol(st.Cache), cacheCol(st.L2)
	return [machineFields]uint64{
		uint64(st.Cycles), uint64(st.Committed),
		uint64(st.PhysAllocs), uint64(st.PhysFrees),
		uint64(st.RFReads), uint64(st.RFWrites),
		l1[0], l1[1], l1[2], l1[3],
		l2[0], l2[1], l2[2], l2[3],
		uint64(st.BranchMispredicts), uint64(st.BTBMisses), uint64(st.ReturnMispredicts),
		uint64(st.Eliminated), uint64(st.DeadPredictions), uint64(st.DeadMispredicts),
		uint64(st.StallFreeList), uint64(st.StallIQ), uint64(st.StallLSQ),
		uint64(st.StallROB), uint64(st.StallRecovery),
		uint64(st.ClusterCommitted[0]), uint64(st.ClusterCommitted[1]),
		uint64(st.ClusterOccupancy[0]), uint64(st.ClusterOccupancy[1]),
		uint64(st.SteeredNarrow), uint64(st.SteerMispredicts),
	}
}

func machineStatsFromColumn(col [machineFields]uint64) pipeline.Stats {
	cacheStats := func(c []uint64) cache.Stats {
		return cache.Stats{
			Accesses: int(int64(c[0])), Hits: int(int64(c[1])),
			Misses: int(int64(c[2])), Writebacks: int(int64(c[3])),
		}
	}
	return pipeline.Stats{
		Cycles: int64(col[0]), Committed: int64(col[1]),
		PhysAllocs: int64(col[2]), PhysFrees: int64(col[3]),
		RFReads: int64(col[4]), RFWrites: int64(col[5]),
		Cache:             cacheStats(col[6:10]),
		L2:                cacheStats(col[10:14]),
		BranchMispredicts: int64(col[14]), BTBMisses: int64(col[15]), ReturnMispredicts: int64(col[16]),
		Eliminated: int64(col[17]), DeadPredictions: int64(col[18]), DeadMispredicts: int64(col[19]),
		StallFreeList: int64(col[20]), StallIQ: int64(col[21]), StallLSQ: int64(col[22]),
		StallROB: int64(col[23]), StallRecovery: int64(col[24]),
		ClusterCommitted: [2]int64{int64(col[25]), int64(col[26])},
		ClusterOccupancy: [2]int64{int64(col[27]), int64(col[28])},
		SteeredNarrow:    int64(col[29]), SteerMispredicts: int64(col[30]),
	}
}

func (machineCodec) Encode(w io.Writer, v any) error {
	st, ok := v.(pipeline.Stats)
	if !ok {
		return fmt.Errorf("core: machine codec got %T", v)
	}
	body := make([]byte, 8*machineFields)
	col := machineStatsColumn(st)
	putU64Column(body, col[:])
	return sealResult(w, body)
}

func (machineCodec) Decode(payload []byte) (any, int64, error) {
	body, err := openResult(payload, "machine")
	if err != nil {
		return nil, 0, err
	}
	if len(body) != 8*machineFields {
		return nil, 0, fmt.Errorf("core: machine decode: column is %d bytes, want %d", len(body), 8*machineFields)
	}
	var col [machineFields]uint64
	getU64Column(col[:], body)
	return machineStatsFromColumn(col), machineStatsSize, nil
}
