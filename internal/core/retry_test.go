package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// fastRetry keeps retry tests quick without changing the semantics under
// test.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func transientErr() error {
	return &faults.Error{Site: faults.SitePoolTask, Kind: faults.Transient}
}

func TestRetryTransientRetriesUpToMaxAttempts(t *testing.T) {
	mc := metrics.New()
	calls := 0
	attempts, err := retryTransient(context.Background(), fastRetry(3), mc, func(context.Context) error {
		calls++
		return transientErr()
	})
	if calls != 3 || attempts != 3 {
		t.Errorf("calls=%d attempts=%d, want 3/3", calls, attempts)
	}
	if !faults.IsTransient(err) {
		t.Errorf("final error should be the transient failure, got %v", err)
	}
	if n := mc.Counter(metrics.CounterRetries); n != 2 {
		t.Errorf("retries counter = %d, want 2 (attempts minus first)", n)
	}
}

func TestRetryTransientStopsOnSuccess(t *testing.T) {
	calls := 0
	attempts, err := retryTransient(context.Background(), fastRetry(5), nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return transientErr()
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Errorf("attempts=%d calls=%d err=%v, want 3/3/nil", attempts, calls, err)
	}
}

func TestRetryTransientDoesNotRetryPermanent(t *testing.T) {
	calls := 0
	perm := errors.New("deterministic failure")
	attempts, err := retryTransient(context.Background(), fastRetry(5), nil, func(context.Context) error {
		calls++
		return perm
	})
	if calls != 1 || attempts != 1 || !errors.Is(err, perm) {
		t.Errorf("calls=%d attempts=%d err=%v, want one attempt returning the permanent error", calls, attempts, err)
	}
}

func TestRetryTransientDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := retryTransient(ctx, fastRetry(5), nil, func(context.Context) error {
		calls++
		cancel() // op observes cancellation mid-flight
		return ctx.Err()
	})
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Errorf("calls=%d err=%v, want 1 call returning context.Canceled", calls, err)
	}

	// Already-cancelled context never runs the op at all.
	calls = 0
	_, err = retryTransient(ctx, fastRetry(5), nil, func(context.Context) error {
		calls++
		return nil
	})
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("calls=%d err=%v, want 0 calls on a dead context", calls, err)
	}
}

func TestRetryTransientHonorsCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	var err error
	go func() {
		_, err = retryTransient(ctx, p, nil, func(context.Context) error { return transientErr() })
		close(done)
	}()
	select {
	case <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry slept through cancellation")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRetryPolicyNormalization(t *testing.T) {
	p := RetryPolicy{}.normalized()
	if p.MaxAttempts != 1 || p.BaseDelay <= 0 || p.MaxDelay <= 0 {
		t.Errorf("zero policy normalized to %+v", p)
	}
	d := DefaultRetryPolicy()
	if d.MaxAttempts < 2 {
		t.Errorf("default policy retries nothing: %+v", d)
	}
}

// TestDeadlinePropagatesThroughNestedFanOut drives the real nesting used
// by experiments — coordinator → Pool.ForEach → Pool.Do leaf tasks — with
// an expired deadline and checks every layer reports the deadline rather
// than hanging or mislabeling the failure.
func TestDeadlinePropagatesThroughNestedFanOut(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	started := make(chan struct{}, 16)
	err := p.ForEach(ctx, 4, func(i int) error {
		started <- struct{}{}
		// Nested fan-out: each outer task coordinates inner leaf work.
		inner := make(chan error, 1)
		go func() {
			inner <- p.Do(ctx, func() error {
				<-ctx.Done() // simulate work outliving the deadline
				return ctx.Err()
			})
		}()
		return <-inner
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("nested fan-out error = %v, want deadline exceeded", err)
	}
	if faults.IsTransient(err) {
		t.Error("deadline expiry must not be classified transient")
	}
}

// TestWorkspaceTimeoutBoundsAttempts checks runOne's per-attempt deadline:
// a dispatch that never finishes is cut off by Workspace.Timeout instead
// of hanging the run.
func TestWorkspaceTimeoutBoundsAttempts(t *testing.T) {
	w := NewWorkspaceWorkers(1000, 2)
	w.Timeout = 20 * time.Millisecond
	done := make(chan struct{})
	go func() {
		// Unknown-experiment dispatch is instant; drive runOne's timeout
		// path with a dispatch that blocks by racing a pool slot hog.
		release := make(chan struct{})
		defer close(release)
		hog := NewPool(1)
		go hog.Do(context.Background(), func() error { <-release; return nil })
		time.Sleep(time.Millisecond) // let the hog take the slot
		_, _, err := w.runOneForTest(context.Background(), hog)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want deadline exceeded", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout did not bound the attempt")
	}
}

// runOneForTest runs a blocking task through runOne's retry/timeout
// wrapper without needing a real experiment, by dispatching into a
// saturated pool.
func (w *Workspace) runOneForTest(ctx context.Context, hog *Pool) (*Experiment, int, error) {
	attempts, err := retryTransient(ctx, w.Retry, w.Metrics, func(ctx context.Context) error {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if w.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, w.Timeout)
		}
		defer cancel()
		return hog.Do(actx, func() error { return nil })
	})
	return nil, attempts, err
}

// TestMemoEvictsTransientFailures checks the workspace memo contract:
// transient failures are forgotten (so retry rebuilds), while the success
// that follows is memoized normally.
func TestMemoEvictsTransientFailures(t *testing.T) {
	in := faults.NewInjector(5).
		Arm(faults.SiteWorkspaceMemo, faults.Rule{Kind: faults.Transient, Rate: 1, Max: 1})
	faults.Set(in)
	defer faults.Set(nil)

	w := NewWorkspaceWorkers(1000, 2)
	name := SuiteNames()[0]
	_, err := w.ProfileOf(name)
	if !faults.IsTransient(err) {
		t.Fatalf("first build should fail transiently, got %v", err)
	}
	// The entry must have been evicted: the next call rebuilds and succeeds
	// (the rule's Max=1 is spent).
	res, err := w.ProfileOf(name)
	if err != nil || res == nil {
		t.Fatalf("rebuild after transient failure: %v", err)
	}
	// And the success is memoized: a third call is a memo hit.
	mc := metrics.New()
	w.Metrics = mc
	if _, err := w.ProfileOf(name); err != nil {
		t.Fatal(err)
	}
	if mc.Counter(CounterProfileMemoHits) != 1 {
		t.Error("successful profile was not memoized")
	}
}

// TestMemoKeepsPermanentFailures: deterministic failures stay memoized —
// rebuilding would just fail again.
func TestMemoKeepsPermanentFailures(t *testing.T) {
	w := NewWorkspaceWorkers(1000, 2)
	_, err := w.ProfileOf("no-such-benchmark")
	if err == nil {
		t.Fatal("unknown benchmark must fail")
	}
	mc := metrics.New()
	w.Metrics = mc
	if _, err2 := w.ProfileOf("no-such-benchmark"); err2 == nil {
		t.Fatal("memoized failure must still fail")
	}
	if mc.Counter(CounterProfileMemoHits) != 1 {
		t.Error("permanent failure was rebuilt instead of served from memo")
	}
}
