package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/deadness"
	"repro/internal/lebytes"
	"repro/internal/trace"
)

// firstNonBool returns the index of the first byte in b that is neither 0
// nor 1, or -1 if every byte is a valid bool image; it scans a word at a
// time.
func firstNonBool(b []byte) int {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if binary.LittleEndian.Uint64(b[i:])&^0x0101010101010101 != 0 {
			break
		}
	}
	for ; i < len(b); i++ {
		if b[i] > 1 {
			return i
		}
	}
	return -1
}

// Profile persistence: a profile artifact serializes as a small JSON
// header (identity + summaries), the linked trace in the trace package's
// linked binary format, and the analysis fact arrays as raw columns.
// The program and pass stats are deliberately NOT stored — compilation is
// deterministic and cheap, so Decode recompiles through the workspace's
// program artifact instead of trusting serialized code.
//
// Layout: uvarint header length, JSON header, uvarint trace length,
// SaveLinked trace, then Kind/Candidate/EverRead/Ineff as one byte per
// record and Resolve as little-endian int32. Every section is validated
// on decode (strict JSON, the trace loader's own checks, 0/1 booleans,
// deadness.Restore's invariants); a payload that fails any of them is
// treated as corrupt and rebuilt.

// profileCodecVersion is the format generation of the profile payload.
// It gates every structural change to the layout (currently: version 2
// added the Ineff fact column): an entry written by a different
// generation — including pre-versioning entries, whose headers decode
// with Version 0 — is *stale*, not corrupt. Decode rejects it with an
// ordinary error, which the artifact tiers translate into delete +
// rebuild (Store.diskLoad), never into a corruption failure.
const profileCodecVersion = 2

// profileHeader is the JSON section of a persisted profile.
type profileHeader struct {
	Version  int `json:",omitempty"`
	Bench    string
	Budget   int
	Opts     *compiler.Options `json:",omitempty"`
	Summary  deadness.Summary
	Locality deadness.Locality
}

// maxProfileHeaderBytes bounds the untrusted header-length prefix.
const maxProfileHeaderBytes = 1 << 20

// profileCodec persists KindProfile artifacts. It holds the workspace so
// Decode can recompile the benchmark's program (served from the program
// artifact, so repeated decodes compile once).
type profileCodec struct {
	w *Workspace
}

func (c profileCodec) Encode(w io.Writer, v any) error {
	res, ok := v.(*ProfileResult)
	if !ok {
		return fmt.Errorf("core: profile codec got %T", v)
	}
	if res.Trace == nil || !res.Trace.Linked {
		return fmt.Errorf("core: profile codec requires a linked trace")
	}
	n := res.Trace.Len()
	a := res.Analysis
	if a == nil || len(a.Kind) != n || len(a.Candidate) != n || len(a.EverRead) != n ||
		len(a.Resolve) != n || len(a.Ineff) != n {
		return fmt.Errorf("core: profile codec: analysis does not match %d-record trace", n)
	}
	hdr, err := json.Marshal(profileHeader{
		Version:  profileCodecVersion,
		Bench:    res.Bench,
		Budget:   c.w.Budget,
		Opts:     res.opts,
		Summary:  res.Summary,
		Locality: res.Locality,
	})
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var lb [binary.MaxVarintLen64]byte
	if _, err := bw.Write(lb[:binary.PutUvarint(lb[:], uint64(len(hdr)))]); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(lb[:binary.PutUvarint(lb[:], uint64(res.Trace.LinkedSize()))]); err != nil {
		return err
	}
	if err := res.Trace.SaveLinked(bw); err != nil {
		return err
	}
	if lebytes.Little {
		// The analysis columns' memory images are their wire images.
		for _, col := range [5][]byte{lebytes.U8(a.Kind), lebytes.Bool(a.Candidate),
			lebytes.Bool(a.EverRead), lebytes.U8(a.Ineff), lebytes.I32(a.Resolve)} {
			if _, err := bw.Write(col); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	buf := make([]byte, n)
	for i, k := range a.Kind {
		buf[i] = byte(k)
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, col := range [2][]bool{a.Candidate, a.EverRead} {
		for i, b := range col {
			if b {
				buf[i] = 1
			} else {
				buf[i] = 0
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for i, k := range a.Ineff {
		buf[i] = byte(k)
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	rbuf := make([]byte, 4*n)
	for i, r := range a.Resolve {
		binary.LittleEndian.PutUint32(rbuf[i*4:], uint32(r))
	}
	if _, err := bw.Write(rbuf); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeSizeHint bounds the encoded size of a profile so the write path
// can allocate its buffer once: the trace section's exact length, the
// analysis columns' 7 bytes per record, and slack for the JSON header and
// length prefixes.
func (c profileCodec) EncodeSizeHint(v any) int {
	res, ok := v.(*ProfileResult)
	if !ok || res.Trace == nil || !res.Trace.Linked {
		return 0
	}
	return int(res.Trace.LinkedSize()) + 8*res.Trace.Len() + 4096
}

func (c profileCodec) Decode(payload []byte) (any, int64, error) {
	hlen, hn := binary.Uvarint(payload)
	if hn <= 0 {
		return nil, 0, fmt.Errorf("core: profile decode: header length: %w", io.ErrUnexpectedEOF)
	}
	if hlen > maxProfileHeaderBytes {
		return nil, 0, fmt.Errorf("core: profile decode: header claims %d bytes", hlen)
	}
	off := hn
	if uint64(len(payload)-off) < hlen {
		return nil, 0, fmt.Errorf("core: profile decode: header: %w", io.ErrUnexpectedEOF)
	}
	var h profileHeader
	dec := json.NewDecoder(bytes.NewReader(payload[off : off+int(hlen)]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return nil, 0, fmt.Errorf("core: profile decode: header: %w", err)
	}
	off += int(hlen)
	if h.Version != profileCodecVersion {
		// A different format generation (including pre-versioning entries,
		// which decode with Version 0) is stale, not corrupt: the caller
		// deletes the entry and rebuilds through the ordinary build path.
		return nil, 0, fmt.Errorf("core: profile decode: stale codec version %d, want %d",
			h.Version, profileCodecVersion)
	}
	if h.Bench == "" {
		return nil, 0, fmt.Errorf("core: profile decode: empty benchmark name")
	}
	if h.Budget != c.w.Budget {
		return nil, 0, fmt.Errorf("core: profile decode: entry budget %d, workspace budget %d", h.Budget, c.w.Budget)
	}
	// Recompiling the program shares no state with the payload, so it runs
	// concurrently with the trace and analysis decode below; the channel is
	// buffered so an early decode-error return never strands the goroutine.
	type compiled struct {
		cp  compiledProgram
		err error
	}
	progCh := make(chan compiled, 1)
	go func() {
		cp, err := c.w.programOf(h.Bench, h.Opts)
		progCh <- compiled{cp, err}
	}()
	tlen, tn := binary.Uvarint(payload[off:])
	if tn <= 0 {
		return nil, 0, fmt.Errorf("core: profile decode: trace length: %w", io.ErrUnexpectedEOF)
	}
	off += tn
	if tlen > uint64(len(payload)-off) {
		return nil, 0, fmt.Errorf("core: profile decode: trace section claims %d bytes, have %d", tlen, len(payload)-off)
	}
	tr, err := trace.LoadBytes(payload[off:off+int(tlen)], 0)
	if err != nil {
		return nil, 0, fmt.Errorf("core: profile decode: %w", err)
	}
	off += int(tlen)
	n := tr.Len()
	if len(payload)-off != 4*n+4*n {
		return nil, 0, fmt.Errorf("core: profile decode: analysis section is %d bytes, want %d", len(payload)-off, 8*n)
	}
	kind := make([]deadness.Kind, n)
	bools := [2][]bool{make([]bool, n), make([]bool, n)}
	ineff := make([]deadness.IneffKind, n)
	resolve := make([]int32, n)
	if lebytes.Little {
		copy(lebytes.U8(kind), payload[off:off+n])
		off += n
		for ci, col := range bools {
			if i := firstNonBool(payload[off : off+n]); i >= 0 {
				return nil, 0, fmt.Errorf("core: profile decode: bool column %d: byte %d", ci, payload[off+i])
			}
			copy(lebytes.Bool(col), payload[off:off+n])
			off += n
		}
		copy(lebytes.U8(ineff), payload[off:off+n])
		off += n
		copy(lebytes.I32(resolve), payload[off:off+4*n])
	} else {
		for i, b := range payload[off : off+n] {
			kind[i] = deadness.Kind(b)
		}
		off += n
		for ci, col := range bools {
			for i, b := range payload[off : off+n] {
				if b > 1 {
					return nil, 0, fmt.Errorf("core: profile decode: bool column %d: byte %d", ci, b)
				}
				col[i] = b == 1
			}
			off += n
		}
		for i, b := range payload[off : off+n] {
			ineff[i] = deadness.IneffKind(b)
		}
		off += n
		for i := range resolve {
			resolve[i] = int32(binary.LittleEndian.Uint32(payload[off+i*4:]))
		}
	}
	a, err := deadness.Restore(n, kind, bools[0], bools[1], resolve, ineff)
	if err != nil {
		return nil, 0, err
	}
	prog := <-progCh
	if prog.err != nil {
		return nil, 0, fmt.Errorf("core: profile decode: recompiling %s: %w", h.Bench, prog.err)
	}
	res := &ProfileResult{
		Bench:     h.Bench,
		Prog:      prog.cp.Prog,
		Trace:     tr,
		Analysis:  a,
		Summary:   h.Summary,
		Locality:  h.Locality,
		PassStats: prog.cp.Stats,
		opts:      h.Opts,
	}
	return res, res.SizeBytes(), nil
}
