package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// TestChaosSoak drives the full 18-experiment suite with the fault
// injector armed at every engine site class and asserts the graceful-
// degradation contract:
//
//  1. the run terminates (no deadlock) and leaks no goroutines,
//  2. every experiment that succeeds is bit-identical to a clean run,
//  3. every experiment that fails is attributable to an injected fault
//     through its error chain.
//
// Run with -race: the injector's schedule depends on goroutine
// interleaving, so this is also the concurrency soak for the failure
// paths.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs the full suite twice")
	}
	const budget = 60_000
	ids := ExperimentIDs()

	clean := NewWorkspaceWorkers(budget, 0)
	cleanRes, err := clean.RunExperiments(context.Background(), ids)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want := make(map[string]string, len(ids))
	for _, e := range cleanRes {
		want[e.ID] = renderExperiment(e)
	}

	before := runtime.NumGoroutine()

	// Rate-1, Max-capped rules guarantee injections regardless of how the
	// schedule lands on goroutines; the low-rate rules add seeded noise at
	// every other site class, including per-instruction emulator faults.
	in := faults.NewInjector(42).
		Arm(faults.SitePoolTask, faults.Rule{Kind: faults.Transient, Rate: 1, Max: 5}).
		Arm(faults.SitePoolTask, faults.Rule{Kind: faults.Delay, Rate: 0.02, Max: 10, Delay: time.Millisecond}).
		Arm(faults.SiteWorkspaceMemo, faults.Rule{Kind: faults.Transient, Rate: 0.3}).
		Arm(faults.SiteEmuStep, faults.Rule{Kind: faults.Transient, Rate: 0.0001, Max: 4}).
		Arm(faults.SiteSimulate, faults.Rule{Kind: faults.Panic, Rate: 1, Max: 2}).
		Arm(faults.SiteSimulate, faults.Rule{Kind: faults.Transient, Rate: 0.01})
	mc := metrics.New()
	in.Metrics = mc
	faults.Set(in)
	defer faults.Set(nil)

	w := NewWorkspaceWorkers(budget, 0)
	w.Metrics = mc
	w.KeepGoing = true
	w.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
	// Arm the artifact cache's LRU eviction too, so transient-fault
	// eviction, budget eviction, and rebuilds all interleave under
	// injection — survivors must still match the clean run bit for bit.
	w.CacheBudget = 16 << 20

	type result struct {
		res []*Experiment
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := w.RunExperiments(context.Background(), ids)
		done <- result{res, err}
	}()
	var chaotic result
	select {
	case chaotic = <-done:
	case <-time.After(5 * time.Minute):
		buf := make([]byte, 1<<20)
		t.Fatalf("chaos run deadlocked; goroutines:\n%s", buf[:runtime.Stack(buf, true)])
	}
	faults.Set(nil)

	if len(chaotic.res) != len(ids) {
		t.Fatalf("partial-results mode returned %d entries, want %d", len(chaotic.res), len(ids))
	}
	var injected uint64
	for _, site := range in.Sites() {
		injected += in.Fired(site)
	}
	if injected == 0 {
		t.Fatal("soak is vacuous: no fault fired")
	}
	if mc.Counter(metrics.CounterFaultsInjected) != int64(injected) {
		t.Errorf("metrics count %d injections, injector says %d",
			mc.Counter(metrics.CounterFaultsInjected), injected)
	}

	succeeded, failed := 0, 0
	for i, e := range chaotic.res {
		if e == nil {
			t.Fatalf("entry %d is nil under KeepGoing", i)
		}
		if e.ID != ids[i] {
			t.Fatalf("order broken at %d: got %s want %s", i, e.ID, ids[i])
		}
		if e.Err == nil {
			succeeded++
			if got := renderExperiment(e); got != want[e.ID] {
				t.Errorf("%s survived injection but diverged from the clean run:\n--- clean\n%s\n--- chaos\n%s",
					e.ID, want[e.ID], got)
			}
			continue
		}
		failed++
		var fe *faults.Error
		if !errors.As(e.Err, &fe) {
			t.Errorf("%s failed without an injected fault in its chain: %v", e.ID, e.Err)
		}
		if errors.Is(e.Err, context.Canceled) {
			t.Errorf("%s reports cancellation under KeepGoing: %v", e.ID, e.Err)
		}
		if e.Attempts < 1 {
			t.Errorf("%s failed with %d attempts recorded", e.ID, e.Attempts)
		}
	}
	t.Logf("chaos soak: %d injections, %d/%d experiments succeeded, %d retries",
		injected, succeeded, len(ids), mc.Counter(metrics.CounterRetries))
	if succeeded == 0 {
		t.Error("no experiment survived injection; retry/eviction is not recovering transients")
	}
	if failed > 0 != (chaotic.err != nil) {
		t.Errorf("error/failure mismatch: %d failures but err = %v", failed, chaotic.err)
	}
	if chaotic.err != nil {
		var re *RunError
		if !errors.As(chaotic.err, &re) {
			t.Fatalf("error is %T, want *RunError", chaotic.err)
		}
		if len(re.Failures)+len(re.Completed) != len(ids) {
			t.Errorf("RunError accounts for %d+%d experiments, want %d",
				len(re.Completed), len(re.Failures), len(ids))
		}
	}

	// Transient pool faults are retried at a level that re-runs them, so
	// the rate-1 Max-capped rule above guarantees retries happened.
	if mc.Counter(metrics.CounterRetries) == 0 {
		t.Error("no retry recorded despite guaranteed transient pool faults")
	}

	// Leak check: give coordinator goroutines a moment to unwind, then
	// compare against the pre-chaos baseline with slack for the runtime's
	// own background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+3 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestRunExperimentsPartialResultsWithoutInjection checks KeepGoing
// semantics with a plain bad ID mixed into good ones: completed work is
// returned, the failure is structured, and the error unwraps to it.
func TestRunExperimentsPartialResultsWithoutInjection(t *testing.T) {
	w := NewWorkspaceWorkers(testBudget, 0)
	w.KeepGoing = true
	res, err := w.RunExperiments(context.Background(), []string{"e1", "nope", "e6"})
	if err == nil {
		t.Fatal("bad ID must surface an error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if len(res) != 3 || res[0].Err != nil || res[2].Err != nil || res[1].Err == nil {
		t.Fatalf("partial results wrong: %+v", res)
	}
	if len(re.Completed) != 2 || len(re.Failures) != 1 || re.Failures[0].ID != "nope" {
		t.Errorf("RunError bookkeeping wrong: completed=%d failures=%+v", len(re.Completed), re.Failures)
	}
}

// TestRunExperimentsFailFastKeepsCompleted checks the default mode's
// contract: the first failure aborts the run, but the *RunError still
// carries whatever finished so callers never lose completed work.
func TestRunExperimentsFailFastKeepsCompleted(t *testing.T) {
	w := NewWorkspaceWorkers(testBudget, 1)
	res, err := w.RunExperiments(context.Background(), []string{"e1", "nope"})
	if res != nil || err == nil {
		t.Fatalf("fail-fast returned res=%v err=%v", res, err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	for _, e := range re.Completed {
		if e.Err != nil || e.ID == "" {
			t.Errorf("completed entry is not a finished experiment: %+v", e)
		}
	}
	found := false
	for _, f := range re.Failures {
		if f.ID == "nope" && f.Err != nil {
			found = true
		}
	}
	if !found {
		t.Errorf("the bad ID is missing from failures: %+v", re.Failures)
	}
}
