package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers, tasks = 3, 32
	p := NewPool(workers)
	var inFlight, peak atomic.Int64
	err := p.ForEach(context.Background(), tasks, func(int) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Error("default pool has no workers")
	}
	if got := NewPool(7).Workers(); got != 7 {
		t.Errorf("Workers() = %d, want 7", got)
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	p := NewPool(2)
	err := p.Do(context.Background(), func() error { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("panic not converted to error: %v", err)
	}
	// The slot must have been released despite the panic.
	if err := p.Do(context.Background(), func() error { return nil }); err != nil {
		t.Errorf("pool unusable after panic: %v", err)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())

	// Occupy the only slot, then cancel: the queued task must not run.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(ctx, func() error { <-release; return nil })
	}()
	for len(p.sem) == 0 {
		time.Sleep(time.Microsecond)
	}
	cancel()
	ran := false
	err := p.Do(ctx, func() error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task ran after cancellation")
	}
	close(release)
	wg.Wait()
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	const tasks = 8
	p := NewPool(tasks)
	errA, errB := errors.New("a"), errors.New("b")
	// A barrier ensures every task starts (and so actually reports its
	// error) before the first failure can cancel anything.
	var barrier sync.WaitGroup
	barrier.Add(tasks)
	err := p.ForEach(context.Background(), tasks, func(i int) error {
		barrier.Done()
		barrier.Wait()
		switch i {
		case 2:
			time.Sleep(2 * time.Millisecond)
			return errA
		case 5:
			return errB
		}
		return nil
	})
	// Both fail, but the lowest-index error wins regardless of which one
	// fired first.
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want %v", err, errA)
	}
}

func TestForEachHonoursPreCancelledContext(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.ForEach(ctx, 16, func(int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d tasks ran under a cancelled context", got)
	}
}
