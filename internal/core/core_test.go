package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dip"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// testBudget keeps core tests quick while still exercising warmed-up
// predictors and pipelines.
const testBudget = 120_000

func TestProfileRunsABenchmark(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Profile(p, nil, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 || res.Summary.Total != res.Trace.Len() {
		t.Fatalf("bad totals: %+v", res.Summary)
	}
	if res.Summary.Dead == 0 {
		t.Error("no dead instructions found in gzip")
	}
	if res.Locality.DeadStatics == 0 {
		t.Error("no dead statics")
	}
	if res.PassStats.Hoisted == 0 {
		t.Error("no hoisting recorded")
	}
}

func TestEvalPredictor(t *testing.T) {
	p, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalPredictor(p, dip.DefaultConfig(), testBudget, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dead == 0 || res.TruePos == 0 {
		t.Fatalf("predictor found nothing: %+v", res)
	}
	if res.Coverage() < 0.5 || res.Accuracy() < 0.5 {
		t.Errorf("implausibly poor predictor: %v", res)
	}
	bad := dip.Config{}
	if _, err := EvalPredictor(p, bad, testBudget, false); err == nil {
		t.Error("invalid predictor config accepted")
	}
}

func TestWorkspaceCachesProfiles(t *testing.T) {
	w := NewWorkspace(testBudget)
	a, err := w.ProfileOf("vpr")
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.ProfileOf("vpr")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("profile not cached")
	}
	if _, err := w.ProfileOf("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestWorkspaceRunMachine(t *testing.T) {
	w := NewWorkspace(testBudget)
	base, err := w.RunMachine("gzip", pipeline.ContendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Committed == 0 || base.IPC() <= 0 {
		t.Fatalf("bad stats: %+v", base)
	}
	cfg := pipeline.ContendedConfig()
	cfg.Elim = true
	elim, err := w.RunMachine("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elim.Eliminated == 0 {
		t.Error("nothing eliminated")
	}
	if elim.PhysAllocs >= base.PhysAllocs {
		t.Error("elimination did not reduce register allocations")
	}
}

func TestSuiteNames(t *testing.T) {
	names := SuiteNames()
	if len(names) != 11 || names[0] != "gzip" {
		t.Errorf("suite names = %v", names)
	}
}

func TestExperimentDispatch(t *testing.T) {
	w := NewWorkspace(testBudget)
	ids := ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("experiment ids = %v", ids)
	}
	if _, err := w.RunExperiment(context.Background(), "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	e, err := w.RunExperiment(context.Background(), "e1")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "e1" || e.Table.NumRows() != len(SuiteNames())+1 {
		t.Errorf("e1 table has %d rows", e.Table.NumRows())
	}
	if e.Metrics["dead_max"] <= e.Metrics["dead_min"] {
		t.Errorf("metrics: %+v", e.Metrics)
	}
	if !strings.Contains(e.Table.String(), "gzip") {
		t.Error("table missing benchmarks")
	}
}

func TestE5MetricsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := NewWorkspace(testBudget)
	e, err := w.E5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if e.Metrics["state_kb"] >= 5 {
		t.Errorf("predictor state %.2f KB, want < 5", e.Metrics["state_kb"])
	}
	// Short-budget coverage/accuracy are lower than the full run but must
	// still be recognizably good.
	if e.Metrics["coverage_mean"] < 0.6 || e.Metrics["accuracy_mean"] < 0.75 {
		t.Errorf("predictor metrics collapsed: %+v", e.Metrics)
	}
}

func TestE9ElimPairConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := NewWorkspace(testBudget)
	base, elim, err := w.elimPair("crafty", pipeline.ContendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Eliminated != 0 {
		t.Error("baseline eliminated instructions")
	}
	if elim.Eliminated == 0 {
		t.Error("elimination run eliminated nothing")
	}
	if base.Committed != elim.Committed {
		t.Errorf("committed differ: %d vs %d", base.Committed, elim.Committed)
	}
}
