package core

import (
	"context"
	"fmt"

	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/stats"
)

// E16 measures how quickly deadness outcomes resolve: the distance from a
// result-producing instruction to the overwrite or read that settles its
// fate. Short distances justify the mechanism's commit-time training and
// bound how long an eliminated instruction would wait for verification.
func (w *Workspace) E16(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e16",
		Title: "Resolve distance of deadness outcomes",
		Claim: "extension: outcomes resolve within a ROB's reach, so the predictor trains on timely, in-window information",
		Table: stats.NewTable("bench", "dead-resolved", "mean-dist", "p50",
			"p90", "p99", "within-ROB%", "unresolved"),
		Metrics: map[string]float64{},
	}
	results, err := overSuite(ctx, w, func(name string) (deadness.DistanceStats, error) {
		res, err := w.ProfileOf(name)
		if err != nil {
			return deadness.DistanceStats{}, err
		}
		return res.Analysis.ResolveDistances(true), nil
	})
	if err != nil {
		return nil, err
	}
	var withins []float64
	for i, name := range SuiteNames() {
		st := results[i]
		withins = append(withins, st.WithinROB)
		e.Table.AddRow(name, fmt.Sprint(st.Count),
			fmt.Sprintf("%.1f", st.Mean),
			fmt.Sprint(st.P50), fmt.Sprint(st.P90), fmt.Sprint(st.P99),
			stats.Pct(st.WithinROB), fmt.Sprint(st.Unresolved))
	}
	e.Table.AddRow("MEAN", "", "", "", "", "", stats.Pct(stats.Mean(withins)), "")
	e.Metrics["within_rob_mean"] = stats.Mean(withins)
	return e, nil
}

// E17 pits the dynamic predictor against an idealized profile-guided
// static hint (unbounded profile storage, threshold 0.9): the hint's
// accuracy is capped by the deadness ratios of partially dead
// instructions, which only future control flow can split.
func (w *Workspace) E17(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e17",
		Title: "Profile-guided static hints vs dynamic prediction",
		Claim: "extension: per-instruction hints cannot separate useful from useless instances; the dynamic CFI predictor can",
		Table: stats.NewTable("bench", "hint90-cov%", "hint90-acc%",
			"hint50-cov%", "hint50-acc%", "dip-cov%", "dip-acc%"),
		Metrics: map[string]float64{},
	}
	cfg := dip.DefaultConfig()
	type trio struct{ strict, loose, dyn dip.Result }
	results, err := overSuite(ctx, w, func(name string) (trio, error) {
		strict, err := w.EvalPredictor(name,
			dip.Spec{Flavor: dip.FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.9})
		if err != nil {
			return trio{}, err
		}
		loose, err := w.EvalPredictor(name,
			dip.Spec{Flavor: dip.FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.5})
		if err != nil {
			return trio{}, err
		}
		dyn, err := w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
		if err != nil {
			return trio{}, err
		}
		return trio{strict: strict, loose: loose, dyn: dyn}, nil
	})
	if err != nil {
		return nil, err
	}
	var sc, sa, lc, la, dc, da []float64
	for i, name := range SuiteNames() {
		r := results[i]
		sc = append(sc, r.strict.Coverage())
		sa = append(sa, r.strict.Accuracy())
		lc = append(lc, r.loose.Coverage())
		la = append(la, r.loose.Accuracy())
		dc = append(dc, r.dyn.Coverage())
		da = append(da, r.dyn.Accuracy())
		e.Table.AddRow(name,
			stats.Pct(r.strict.Coverage()), stats.Pct(r.strict.Accuracy()),
			stats.Pct(r.loose.Coverage()), stats.Pct(r.loose.Accuracy()),
			stats.Pct(r.dyn.Coverage()), stats.Pct(r.dyn.Accuracy()))
	}
	e.Table.AddRow("MEAN", stats.Pct(stats.Mean(sc)), stats.Pct(stats.Mean(sa)),
		stats.Pct(stats.Mean(lc)), stats.Pct(stats.Mean(la)),
		stats.Pct(stats.Mean(dc)), stats.Pct(stats.Mean(da)))
	e.Metrics["hint90_coverage_mean"] = stats.Mean(sc)
	e.Metrics["hint90_accuracy_mean"] = stats.Mean(sa)
	e.Metrics["hint50_coverage_mean"] = stats.Mean(lc)
	e.Metrics["hint50_accuracy_mean"] = stats.Mean(la)
	e.Metrics["dip_coverage_mean"] = stats.Mean(dc)
	e.Metrics["dip_accuracy_mean"] = stats.Mean(da)
	return e, nil
}
