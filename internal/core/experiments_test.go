package core

import (
	"strings"
	"testing"

	"repro/internal/deadness"
	"repro/internal/trace"
)

func TestSafeDivReportsZeroDenominator(t *testing.T) {
	if v, err := safeDiv(3, 4); err != nil || v != 0.75 {
		t.Errorf("safeDiv(3,4) = %v, %v", v, err)
	}
	if v, err := safeDiv(0, 5); err != nil || v != 0 {
		t.Errorf("safeDiv(0,5) = %v, %v", v, err)
	}
	_, err := safeDiv(7, 0)
	if err == nil {
		t.Fatal("safeDiv(7,0) silently returned a value")
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestReductionReportsZeroBaseline(t *testing.T) {
	if v, err := reduction(100, 75); err != nil || v != 0.25 {
		t.Errorf("reduction(100,75) = %v, %v", v, err)
	}
	if v, err := reduction(50, 50); err != nil || v != 0 {
		t.Errorf("reduction(50,50) = %v, %v", v, err)
	}
	_, err := reduction(0, 10)
	if err == nil {
		t.Fatal("reduction(0,10) silently returned a value")
	}
	if !strings.Contains(err.Error(), "zero baseline") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// refWindowedDeadFraction is the pre-optimization implementation (one
// clone per window); the fast path must match it exactly.
func refWindowedDeadFraction(t *trace.Trace, window int) (float64, error) {
	n := t.Len()
	dead, total := 0, 0
	for start := 0; start < n; start += window {
		end := min(start+window, n)
		sub := trace.FromRecords(t.Records()[start:end])
		if err := sub.Link(); err != nil {
			return 0, err
		}
		a, err := deadness.Analyze(sub)
		if err != nil {
			return 0, err
		}
		s := a.Summarize(sub, nil)
		dead += s.Dead
		total += s.Total
	}
	if total == 0 {
		return 0, nil
	}
	return float64(dead) / float64(total), nil
}

// TestWindowedDeadFractionRegression pins E18's windowed measurement to
// the reference implementation and checks the shared trace is left
// untouched (links intact) for concurrently running experiments.
func TestWindowedDeadFractionRegression(t *testing.T) {
	w := NewWorkspace(60_000)
	res, err := w.ProfileOf("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	// Snapshot a spread of records to prove the shared trace's producer
	// links survive the windowed analysis.
	idxs := []int{0, tr.Len() / 3, tr.Len() / 2, tr.Len() - 1}
	before := make([]trace.Record, len(idxs))
	for i, k := range idxs {
		before[i] = tr.At(k)
	}

	for _, win := range []int{1_000, 7_777, 10_000, tr.Len(), 2 * tr.Len()} {
		got, err := windowedDeadFraction(tr, win)
		if err != nil {
			t.Fatalf("window %d: %v", win, err)
		}
		want, err := refWindowedDeadFraction(tr, win)
		if err != nil {
			t.Fatalf("window %d (reference): %v", win, err)
		}
		if got != want {
			t.Errorf("window %d: dead fraction %v, reference %v", win, got, want)
		}
	}

	for i, k := range idxs {
		if tr.At(k) != before[i] {
			t.Errorf("shared trace mutated at record %d", k)
		}
	}
	if !tr.Linked {
		t.Error("shared trace lost its linked state")
	}

	if _, err := windowedDeadFraction(tr, 0); err == nil {
		t.Error("zero window size accepted")
	}
}
