package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/compiler"
	"repro/internal/dip"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/workload"
)

// Artifact kinds the workspace derives. They form a small DAG: a compiled
// program feeds a profile (emulated + linked + analyzed trace), which
// feeds predictor evaluations and machine runs. Every kind is addressed
// by a canonical digest of its full input spec, so two experiments asking
// for the same computation share one artifact regardless of which asked
// first.
const (
	// KindProgram is a compiled benchmark: (benchmark, compile options).
	KindProgram artifact.Kind = "program"
	// KindProfile is an emulated + analyzed trace with its summaries:
	// (benchmark, budget, compile options).
	KindProfile artifact.Kind = "profile"
	// KindPredEval is one trace-level predictor evaluation: (benchmark,
	// budget, canonical dip.Spec digest).
	KindPredEval artifact.Kind = "predeval"
	// KindMachine is one pipeline simulation: (benchmark, budget,
	// canonical pipeline.Config digest).
	KindMachine artifact.Kind = "machine"
)

// Counter names the workspace reports through its metrics collector.
// They alias the artifact store's per-kind counters: a "build" is a
// cache miss, a "memo hit" is a cache hit (including waiting on an
// in-flight build, so hits+misses is schedule-independent).
const (
	// CounterProfileBuilds counts benchmark profiles built from scratch
	// (emulate + link + analyze).
	CounterProfileBuilds = "artifact_misses." + string(KindProfile)
	// CounterProfileMemoHits counts profile requests served from the
	// artifact store.
	CounterProfileMemoHits = "artifact_hits." + string(KindProfile)
	// CounterMachineSims counts pipeline simulations actually executed.
	CounterMachineSims = "artifact_misses." + string(KindMachine)
	// CounterMachineMemoHits counts machine runs served from the store: a
	// (benchmark, config-digest) pair another experiment already simulated.
	CounterMachineMemoHits = "artifact_hits." + string(KindMachine)
)

// Workspace derives per-benchmark programs, traces, oracle analyses,
// predictor evaluations, and machine simulations through a
// content-addressed artifact store, so the experiment drivers can run
// many machine configurations over the same inputs without re-emulating
// or re-simulating. It is safe for concurrent use: each artifact is
// built exactly once (single-flight), and all heavy work is bounded by
// the workspace pool.
type Workspace struct {
	Budget int
	// Metrics, when non-nil, receives phase timings and artifact-cache
	// counters. Set it before first use; a nil collector disables
	// collection at zero cost.
	Metrics *metrics.Collector

	// AnalyzeShards sets the shard count for the parallel analyze stage
	// of every profile build (0 = GOMAXPROCS, 1 = serial). The analysis
	// is bit-identical across shard counts, so the knob deliberately does
	// NOT enter the profile artifact digest: artifacts built under any
	// setting are interchangeable. Set it before first use.
	AnalyzeShards int

	// CacheBudget, when positive, bounds the resident bytes of unpinned
	// artifacts: the least-recently-used artifacts beyond the budget are
	// evicted (profiles return their pooled trace chunks) and rebuilt
	// deterministically on the next request. Zero means no eviction.
	// Set it before first use.
	CacheBudget int64

	// Timeout bounds each experiment attempt with a deadline that
	// propagates through the pool fan-out (0 = none).
	Timeout time.Duration
	// Retry governs re-running experiments that fail transiently (see
	// faults.IsTransient). The zero policy means a single attempt.
	Retry RetryPolicy
	// KeepGoing switches RunExperiments to partial-results mode: every
	// experiment runs to completion and failures are reported per
	// experiment instead of cancelling the whole run.
	KeepGoing bool

	mu    sync.Mutex
	store *artifact.Store
	pool  *Pool
}

// programSpec keys a compiled-program artifact. Opts marshals by content
// (nil means the workload's own options), matching Profile.Compile.
type programSpec struct {
	Bench string
	Opts  *compiler.Options `json:",omitempty"`
}

// profileSpec keys a profile artifact.
type profileSpec struct {
	Bench  string
	Budget int
	Opts   *compiler.Options `json:",omitempty"`
}

// predEvalSpec keys a predictor-evaluation artifact. The predictor
// itself contributes through the canonical dip.Spec digest, so the two
// digest schemes compose and cannot drift.
type predEvalSpec struct {
	Bench      string
	Budget     int
	SpecDigest string
}

// machineSpec keys a machine-run artifact via the canonical
// pipeline.Config digest.
type machineSpec struct {
	Bench        string
	Budget       int
	ConfigDigest string
}

// compiledProgram is the program-artifact value.
type compiledProgram struct {
	Prog  *program.Program
	Stats compiler.PassStats
}

// NewWorkspace creates a workspace with the given per-benchmark dynamic
// instruction budget (DefaultBudget if 0) and a GOMAXPROCS-bounded pool.
func NewWorkspace(budget int) *Workspace {
	return NewWorkspaceWorkers(budget, 0)
}

// NewWorkspaceWorkers creates a workspace whose heavy tasks run at most
// workers at a time (GOMAXPROCS if workers <= 0).
func NewWorkspaceWorkers(budget, workers int) *Workspace {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Workspace{
		Budget: budget,
		pool:   NewPool(workers),
	}
}

// Pool returns the workspace's bounded task pool.
func (w *Workspace) Pool() *Pool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pool == nil {
		w.pool = NewPool(0)
	}
	return w.pool
}

// artifacts returns the workspace's artifact store, creating it on first
// use. The collector reference is refreshed on every access so a
// Metrics field assigned after construction still receives the store's
// counters.
func (w *Workspace) artifacts() *artifact.Store {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.store == nil {
		w.store = artifact.New(w.CacheBudget)
		// Only successes and deterministic (permanent) failures are
		// memoized: an artifact that fails transiently — an injected
		// fault, a cancelled context — is forgotten so a later attempt
		// rebuilds it, which is what makes engine-level retry effective.
		w.store.MemoErr = func(err error) bool { return !evictable(err) }
		// Register the persistable kinds. Programs are deliberately absent:
		// compiling is cheaper than encoding, and the profile codec
		// recompiles on decode anyway.
		w.store.RegisterCodec(KindProfile, profileCodec{w})
		w.store.RegisterCodec(KindPredEval, predEvalCodec{})
		w.store.RegisterCodec(KindMachine, machineCodec{})
	}
	w.store.SetMetrics(w.Metrics)
	return w.store
}

// OpenDiskCache attaches a persistent disk tier rooted at dir to the
// workspace's artifact store: profiles, predictor evaluations, and
// machine runs write through to a content-addressed on-disk cache, cold
// misses load from disk instead of rebuilding, and in-memory evictions
// spill to disk. budgetBytes bounds the directory (0 = unlimited; the
// oldest entries are garbage-collected beyond it). The directory may be
// shared with concurrent processes. Call before the first artifact
// request.
func (w *Workspace) OpenDiskCache(dir string, budgetBytes int64) error {
	d, err := artifact.OpenDisk(dir, budgetBytes)
	if err != nil {
		return err
	}
	w.artifacts().SetDisk(d)
	return nil
}

// SetRemoteTier attaches a remote artifact cache — typically an
// internal/client.Cache pointed at a warm daemon — as the third lookup
// tier behind memory and disk: cold misses fetch from it (a verified hit
// also warms the disk tier), and freshly built artifacts are pushed
// back. nil detaches. Call before the first artifact request.
func (w *Workspace) SetRemoteTier(r artifact.RemoteTier) {
	w.artifacts().SetRemote(r)
}

// RemoteTierAttached reports whether a remote artifact tier is attached.
func (w *Workspace) RemoteTierAttached() bool {
	return w.artifacts().RemoteTierAttached()
}

// ArtifactStats snapshots the workspace's artifact-cache counters and
// residency for run reports.
func (w *Workspace) ArtifactStats() artifact.Stats {
	return w.artifacts().Stats()
}

// EncodedArtifact serves the daemon's artifact GET endpoint: the encoded
// payload for a completed artifact, from memory or the disk tier.
// artifact.ErrNotFound when the workspace doesn't hold it.
func (w *Workspace) EncodedArtifact(key artifact.Key) ([]byte, error) {
	return w.artifacts().EncodedArtifact(key)
}

// EncodedArtifactFrame serves the daemon's artifact GET endpoint: the
// CRC-framed wire image for a completed artifact, served zero-copy from
// the disk tier's mapped entry file when the artifact is spilled
// (spilled=true) and encoded fresh from the resident tier otherwise.
// Call release exactly once after the bytes are written out.
func (w *Workspace) EncodedArtifactFrame(key artifact.Key) (framed []byte, release func(), spilled bool, err error) {
	return w.artifacts().EncodedFrame(key)
}

// InstallArtifact serves the daemon's artifact PUT endpoint: decode an
// encoded payload pushed by a peer and install it as if built locally.
func (w *Workspace) InstallArtifact(key artifact.Key, payload []byte) error {
	return w.artifacts().InstallEncoded(key, payload)
}

// FlushSpill evicts every unpinned resident artifact from the in-memory
// tier; with a disk tier attached each eviction spills (persists) the
// artifact before its pooled resources are released, so anything whose
// write-through was lost — e.g. to an injected artifact.disk fault —
// gets a second persistence attempt. The daemon calls it during graceful
// drain so warm state survives a restart.
func (w *Workspace) FlushSpill() {
	w.artifacts().EvictAll()
}

// programOf returns the compiled program artifact for a benchmark. The
// value is plain GC-managed data, so it needs no pinning.
func (w *Workspace) programOf(name string, opts *compiler.Options) (compiledProgram, error) {
	key := artifact.Key{Kind: KindProgram, Digest: artifact.Digest(programSpec{name, opts})}
	cp, release, err := artifact.Get(w.artifacts(), key, func() (compiledProgram, int64, error) {
		p, err := workload.ByName(name)
		if err != nil {
			return compiledProgram{}, 0, err
		}
		sp := w.Metrics.Start(metrics.PhaseCompile, name)
		prog, passStats, err := p.Compile(opts)
		sp.End(0)
		if err != nil {
			return compiledProgram{}, 0, err
		}
		return compiledProgram{prog, passStats}, programSize(prog), nil
	})
	release()
	return cp, err
}

func programSize(p *program.Program) int64 {
	const instBytes = 8 // isa.Inst: Op/Rd/Rs1/Rs2 uint8 + Imm int32
	return int64(cap(p.Insts)*instBytes + cap(p.Prov) + cap(p.Data))
}

// profileFor fetches (building on miss) the profile artifact for one
// benchmark and compile-option override, returning it pinned: the trace
// cannot be evicted until the release function runs.
//
// The context governs this requester's interest, not the build itself:
// builds run on a detached context owned by every requester currently
// waiting on them. Cancelling ctx while other requesters wait hands the
// in-flight build to the survivors (artifact_adoptions); only when the
// last interested requester disconnects is the emulation aborted and its
// pooled resources released. A cancelled build is forgotten (see
// evictable), so the next request rebuilds deterministically.
func (w *Workspace) profileFor(ctx context.Context, name string, opts *compiler.Options) (*ProfileResult, func(), error) {
	key := artifact.Key{Kind: KindProfile, Digest: artifact.Digest(profileSpec{name, w.Budget, opts})}
	return artifact.GetCtx(w.artifacts(), ctx, key, func(bctx context.Context) (*ProfileResult, int64, error) {
		return w.buildProfile(bctx, name, opts)
	})
}

// ProfileOf returns the trace-level analysis of a suite benchmark,
// building it on first use. The result is returned unpinned: the
// GC-managed fields (Summary, Locality, Analysis, PassStats, Prog) stay
// valid indefinitely, but Trace may be recycled once a cache budget is
// set — callers that read the trace must use WithProfile instead.
func (w *Workspace) ProfileOf(name string) (*ProfileResult, error) {
	res, release, err := w.profileFor(context.Background(), name, nil)
	release()
	return res, err
}

// ProfileWithOptions is ProfileOf with an explicit compile-option
// override (nil means the workload's own options); variant compilations
// (E3, E12) are distinct artifacts keyed by their options. The unpinned
// contract of ProfileOf applies.
func (w *Workspace) ProfileWithOptions(name string, opts *compiler.Options) (*ProfileResult, error) {
	res, release, err := w.profileFor(context.Background(), name, opts)
	release()
	return res, err
}

// WithProfile runs fn with the benchmark's profile pinned: the trace is
// guaranteed resident (not evicted, chunks not recycled) until fn
// returns. Use it for any consumer that reads res.Trace.
func (w *Workspace) WithProfile(name string, fn func(*ProfileResult) error) error {
	return w.WithProfileOptions(name, nil, fn)
}

// WithProfileCtx is WithProfile with cooperative cancellation of this
// requester's interest in the profile: the daemon uses it so a
// disconnected client's profile build aborts — unless other requesters
// are waiting on the same build, in which case they adopt it and it runs
// to completion for them. See profileFor.
func (w *Workspace) WithProfileCtx(ctx context.Context, name string, fn func(*ProfileResult) error) error {
	res, release, err := w.profileFor(ctx, name, nil)
	if err != nil {
		return err
	}
	defer release()
	return fn(res)
}

// WithProfileOptions is WithProfile with an explicit compile-option
// override (nil means the workload's own options).
func (w *Workspace) WithProfileOptions(name string, opts *compiler.Options, fn func(*ProfileResult) error) error {
	res, release, err := w.profileFor(context.Background(), name, opts)
	if err != nil {
		return err
	}
	defer release()
	return fn(res)
}

// buildProfile runs one profile build with panic containment. The panic
// is converted to an error here, inside the build, so the store memoizes
// it like any other deterministic failure.
func (w *Workspace) buildProfile(ctx context.Context, name string, opts *compiler.Options) (res *ProfileResult, size int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, size, err = nil, 0, recoveredError(fmt.Sprintf("core: profiling %s panicked", name), r)
		}
	}()
	if err := faults.Fire(faults.SiteWorkspaceMemo); err != nil {
		return nil, 0, fmt.Errorf("core: profiling %s: %w", name, err)
	}
	cp, err := w.programOf(name, opts)
	if err != nil {
		return nil, 0, err
	}
	res, err = profileProgramWith(ctx, name, cp.Prog, cp.Stats, w.Budget, w.AnalyzeShards, w.Metrics)
	if err != nil {
		return nil, 0, err
	}
	res.opts = opts
	return res, res.SizeBytes(), nil
}

// evictable reports whether an artifact's failure should be forgotten so
// the work can be re-attempted: transient faults and context cancellation
// or expiry (a run aborted mid-build must not poison the next run).
// Deterministic failures stay memoized — rebuilding would just fail again.
func evictable(err error) bool {
	return faults.IsTransient(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// EvalPredictor runs one predictor evaluation — any registered flavor —
// over a benchmark's trace, served from the predictor-evaluation
// artifact: specs canonicalize before digesting, so e.g. the default
// CFI point requested by E5, E6, and E11 evaluates once.
func (w *Workspace) EvalPredictor(name string, spec dip.Spec) (dip.Result, error) {
	return w.EvalPredictorCtx(context.Background(), name, spec)
}

// EvalPredictorCtx is EvalPredictor with cooperative cancellation of any
// profile build the evaluation initiates (see WithProfileCtx).
func (w *Workspace) EvalPredictorCtx(ctx context.Context, name string, spec dip.Spec) (dip.Result, error) {
	spec = spec.Canonical()
	pred, err := spec.New()
	if err != nil {
		return dip.Result{}, err
	}
	key := artifact.Key{Kind: KindPredEval, Digest: artifact.Digest(predEvalSpec{name, w.Budget, spec.Digest()})}
	r, release, err := artifact.GetCtx(w.artifacts(), ctx, key, func(bctx context.Context) (dip.Result, int64, error) {
		return w.buildPredEval(bctx, name, spec, pred)
	})
	release()
	return r, err
}

// predEvalSize is the flat footprint charged per evaluation result.
const predEvalSize = int64(128)

func (w *Workspace) buildPredEval(ctx context.Context, name string, spec dip.Spec, pred dip.Predictor) (res dip.Result, size int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, size, err = dip.Result{}, 0,
				recoveredError(fmt.Sprintf("core: evaluating %s on %s panicked", spec.Label(), name), r)
		}
	}()
	if err := faults.Fire(faults.SiteWorkspaceMemo); err != nil {
		return dip.Result{}, 0, fmt.Errorf("core: evaluating %s on %s: %w", spec.Label(), name, err)
	}
	err = w.WithProfileCtx(ctx, name, func(p *ProfileResult) error {
		sp := w.Metrics.Start("predict", name+" "+spec.Label())
		r, eerr := pred.Evaluate(p.Trace, p.Analysis)
		sp.End(int64(p.Trace.Len()))
		res = r
		return eerr
	})
	if err != nil {
		return dip.Result{}, 0, err
	}
	return res, predEvalSize, nil
}

// RunMachine simulates one benchmark on one machine configuration,
// served from the machine-run artifact keyed by (benchmark, canonical
// configuration digest): sweeps and elim-off/on pairs shared across
// experiments simulate exactly once, and repeats are served from the
// store (counted by CounterMachineMemoHits). The simulation itself runs
// on the calling goroutine — callers fanning out should do so through
// the workspace pool.
func (w *Workspace) RunMachine(name string, cfg pipeline.Config) (pipeline.Stats, error) {
	return w.RunMachineCtx(context.Background(), name, cfg)
}

// RunMachineCtx is RunMachine with cooperative cancellation of any
// profile build the simulation initiates (see WithProfileCtx). The
// pipeline simulation itself is not interruptible; the profile build
// dominates a cold request's wall time.
func (w *Workspace) RunMachineCtx(ctx context.Context, name string, cfg pipeline.Config) (pipeline.Stats, error) {
	key := artifact.Key{Kind: KindMachine, Digest: artifact.Digest(machineSpec{name, w.Budget, cfg.Digest()})}
	st, release, err := artifact.GetCtx(w.artifacts(), ctx, key, func(bctx context.Context) (pipeline.Stats, int64, error) {
		return w.simulate(bctx, name, cfg)
	})
	release()
	return st, err
}

// machineStatsSize is the flat footprint charged per simulation result.
const machineStatsSize = int64(512)

func (w *Workspace) simulate(ctx context.Context, name string, cfg pipeline.Config) (st pipeline.Stats, size int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, size, err = pipeline.Stats{}, 0,
				recoveredError(fmt.Sprintf("core: simulating %s panicked", name), r)
		}
	}()
	if err := faults.Fire(faults.SiteSimulate); err != nil {
		return pipeline.Stats{}, 0, fmt.Errorf("core: simulating %s %s: %w", name, cfg.Label(), err)
	}
	err = w.WithProfileCtx(ctx, name, func(res *ProfileResult) error {
		sp := w.Metrics.Start(metrics.PhaseSimulate, fmt.Sprintf("%s %s", name, cfg.Label()))
		s, serr := pipeline.Run(res.Trace, res.Analysis, cfg)
		sp.End(int64(res.Trace.Len()))
		if serr != nil {
			return fmt.Errorf("core: simulating %s: %w", name, serr)
		}
		st = s
		return nil
	})
	if err != nil {
		return pipeline.Stats{}, 0, err
	}
	return st, machineStatsSize, nil
}

// SuiteNames returns the benchmark names in suite order.
func SuiteNames() []string {
	profiles := workload.Suite()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// overSuite runs fn for every suite benchmark through the workspace's
// bounded pool and returns the results in suite order (the concurrency is
// invisible in the output: every per-benchmark computation is independent
// and deterministic, and errors surface in suite order).
func overSuite[T any](ctx context.Context, w *Workspace, fn func(name string) (T, error)) ([]T, error) {
	names := SuiteNames()
	out := make([]T, len(names))
	err := w.Pool().ForEach(ctx, len(names), func(i int) error {
		v, err := fn(names[i])
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
