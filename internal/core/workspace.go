package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Counter names the workspace reports through its metrics collector.
const (
	// CounterProfileBuilds counts benchmark profiles built from scratch
	// (compile + emulate + link + analyze).
	CounterProfileBuilds = "profile_builds"
	// CounterProfileMemoHits counts profile requests served from the memo.
	CounterProfileMemoHits = "profile_memo_hits"
	// CounterMachineSims counts pipeline simulations actually executed.
	CounterMachineSims = "machine_sims"
	// CounterMachineMemoHits counts machine runs served from the memo: a
	// (benchmark, config-digest) pair another experiment already simulated.
	CounterMachineMemoHits = "machine_memo_hits"
)

// Workspace caches per-benchmark traces, oracle analyses, and machine
// simulations so the experiment drivers can run many machine
// configurations over the same inputs without re-emulating or
// re-simulating. It is safe for concurrent use: each benchmark's profile
// and each (benchmark, machine-configuration) simulation is built exactly
// once, and all heavy work is bounded by the workspace pool.
type Workspace struct {
	Budget int
	// Metrics, when non-nil, receives phase timings and memoization
	// counters. Set it before first use; a nil collector disables
	// collection at zero cost.
	Metrics *metrics.Collector

	// Timeout bounds each experiment attempt with a deadline that
	// propagates through the pool fan-out (0 = none).
	Timeout time.Duration
	// Retry governs re-running experiments that fail transiently (see
	// faults.IsTransient). The zero policy means a single attempt.
	Retry RetryPolicy
	// KeepGoing switches RunExperiments to partial-results mode: every
	// experiment runs to completion and failures are reported per
	// experiment instead of cancelling the whole run.
	KeepGoing bool

	mu       sync.Mutex
	profiles map[string]*profileEntry
	machines map[machineKey]*machineEntry
	pool     *Pool
}

type profileEntry struct {
	once sync.Once
	res  *ProfileResult
	err  error
}

// machineKey identifies one memoized simulation: a benchmark run on one
// canonical machine configuration.
type machineKey struct {
	bench  string
	digest string
}

type machineEntry struct {
	once sync.Once
	st   pipeline.Stats
	err  error
}

// NewWorkspace creates a workspace with the given per-benchmark dynamic
// instruction budget (DefaultBudget if 0) and a GOMAXPROCS-bounded pool.
func NewWorkspace(budget int) *Workspace {
	return NewWorkspaceWorkers(budget, 0)
}

// NewWorkspaceWorkers creates a workspace whose heavy tasks run at most
// workers at a time (GOMAXPROCS if workers <= 0).
func NewWorkspaceWorkers(budget, workers int) *Workspace {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Workspace{
		Budget:   budget,
		profiles: make(map[string]*profileEntry),
		machines: make(map[machineKey]*machineEntry),
		pool:     NewPool(workers),
	}
}

// Pool returns the workspace's bounded task pool.
func (w *Workspace) Pool() *Pool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pool == nil {
		w.pool = NewPool(0)
	}
	return w.pool
}

// ProfileOf returns the cached trace-level analysis of a suite benchmark,
// building it on first use. Only successes and deterministic (permanent)
// failures are memoized: an entry that fails transiently — an injected
// fault, a cancelled context — is evicted so a later attempt rebuilds it,
// which is what makes engine-level retry effective. A panicking build is
// converted to an error rather than poisoning the entry.
func (w *Workspace) ProfileOf(name string) (*ProfileResult, error) {
	w.mu.Lock()
	if w.profiles == nil {
		w.profiles = make(map[string]*profileEntry)
	}
	e, ok := w.profiles[name]
	if !ok {
		e = &profileEntry{}
		w.profiles[name] = e
	}
	w.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		e.res, e.err = w.buildProfile(name)
	})
	if !built {
		w.Metrics.Add(CounterProfileMemoHits, 1)
	}
	if e.err != nil && evictable(e.err) {
		w.mu.Lock()
		if w.profiles[name] == e {
			delete(w.profiles, name)
		}
		w.mu.Unlock()
	}
	return e.res, e.err
}

// buildProfile runs one memoized profile build with panic containment.
func (w *Workspace) buildProfile(name string) (res *ProfileResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, recoveredError(fmt.Sprintf("core: profiling %s panicked", name), r)
		}
	}()
	if err := faults.Fire(faults.SiteWorkspaceMemo); err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", name, err)
	}
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	w.Metrics.Add(CounterProfileBuilds, 1)
	return profileWith(p, nil, w.Budget, w.Metrics)
}

// evictable reports whether a memo entry's failure should be forgotten so
// the work can be re-attempted: transient faults and context cancellation
// or expiry (a run aborted mid-build must not poison the next run).
// Deterministic failures stay memoized — rebuilding would just fail again.
func evictable(err error) bool {
	return faults.IsTransient(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunMachine simulates one benchmark on one machine configuration. Runs
// are memoized by (benchmark, canonical configuration digest): sweeps and
// elim-off/on pairs shared across experiments simulate exactly once, and
// repeats are served from the memo (counted by CounterMachineMemoHits).
// The simulation itself runs on the calling goroutine — callers fanning
// out should do so through the workspace pool.
func (w *Workspace) RunMachine(name string, cfg pipeline.Config) (pipeline.Stats, error) {
	key := machineKey{bench: name, digest: cfg.Digest()}
	w.mu.Lock()
	if w.machines == nil {
		w.machines = make(map[machineKey]*machineEntry)
	}
	e, ok := w.machines[key]
	if !ok {
		e = &machineEntry{}
		w.machines[key] = e
	}
	w.mu.Unlock()

	simulated := false
	e.once.Do(func() {
		simulated = true
		e.st, e.err = w.simulate(name, cfg)
	})
	if !simulated {
		w.Metrics.Add(CounterMachineMemoHits, 1)
	}
	if e.err != nil && evictable(e.err) {
		w.mu.Lock()
		if w.machines[key] == e {
			delete(w.machines, key)
		}
		w.mu.Unlock()
	}
	return e.st, e.err
}

func (w *Workspace) simulate(name string, cfg pipeline.Config) (st pipeline.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = pipeline.Stats{}, recoveredError(fmt.Sprintf("core: simulating %s panicked", name), r)
		}
	}()
	if err := faults.Fire(faults.SiteSimulate); err != nil {
		return pipeline.Stats{}, fmt.Errorf("core: simulating %s: %w", name, err)
	}
	res, err := w.ProfileOf(name)
	if err != nil {
		return pipeline.Stats{}, err
	}
	w.Metrics.Add(CounterMachineSims, 1)
	sp := w.Metrics.Start(metrics.PhaseSimulate, fmt.Sprintf("%s %s", name, cfgLabel(cfg)))
	st, err = pipeline.Run(res.Trace, res.Analysis, cfg)
	sp.End(int64(res.Trace.Len()))
	if err != nil {
		return pipeline.Stats{}, fmt.Errorf("core: simulating %s: %w", name, err)
	}
	return st, nil
}

// cfgLabel is the short human-readable form of a machine configuration
// used in verbose progress lines.
func cfgLabel(cfg pipeline.Config) string {
	mode := "base"
	switch {
	case cfg.OracleElim:
		mode = "oracle"
	case cfg.Elim:
		mode = "elim"
	}
	return fmt.Sprintf("%s r%d [%s]", mode, cfg.PhysRegs, cfg.Digest()[:8])
}

// SuiteNames returns the benchmark names in suite order.
func SuiteNames() []string {
	profiles := workload.Suite()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// overSuite runs fn for every suite benchmark through the workspace's
// bounded pool and returns the results in suite order (the concurrency is
// invisible in the output: every per-benchmark computation is independent
// and deterministic, and errors surface in suite order).
func overSuite[T any](ctx context.Context, w *Workspace, fn func(name string) (T, error)) ([]T, error) {
	names := SuiteNames()
	out := make([]T, len(names))
	err := w.Pool().ForEach(ctx, len(names), func(i int) error {
		v, err := fn(names[i])
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
