package core

import (
	"fmt"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Workspace caches per-benchmark traces and oracle analyses so the
// experiment drivers can run many machine configurations over the same
// inputs without re-emulating. It is safe for concurrent use; each
// benchmark's profile is built exactly once.
type Workspace struct {
	Budget int

	mu       sync.Mutex
	profiles map[string]*profileEntry
}

type profileEntry struct {
	once sync.Once
	res  *ProfileResult
	err  error
}

// NewWorkspace creates a workspace with the given per-benchmark dynamic
// instruction budget (DefaultBudget if 0).
func NewWorkspace(budget int) *Workspace {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Workspace{
		Budget:   budget,
		profiles: make(map[string]*profileEntry),
	}
}

// ProfileOf returns the cached trace-level analysis of a suite benchmark,
// building it on first use.
func (w *Workspace) ProfileOf(name string) (*ProfileResult, error) {
	w.mu.Lock()
	e, ok := w.profiles[name]
	if !ok {
		e = &profileEntry{}
		w.profiles[name] = e
	}
	w.mu.Unlock()

	e.once.Do(func() {
		p, err := workload.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = Profile(p, nil, w.Budget)
	})
	return e.res, e.err
}

// RunMachine simulates one benchmark on one machine configuration.
func (w *Workspace) RunMachine(name string, cfg pipeline.Config) (pipeline.Stats, error) {
	res, err := w.ProfileOf(name)
	if err != nil {
		return pipeline.Stats{}, err
	}
	st, err := pipeline.Run(res.Trace, res.Analysis, cfg)
	if err != nil {
		return pipeline.Stats{}, fmt.Errorf("core: simulating %s: %w", name, err)
	}
	return st, nil
}

// SuiteNames returns the benchmark names in suite order.
func SuiteNames() []string {
	profiles := workload.Suite()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// overSuite runs fn for every suite benchmark concurrently and returns the
// results in suite order (the concurrency is invisible in the output:
// every per-benchmark computation is independent and deterministic).
func overSuite[T any](w *Workspace, fn func(name string) (T, error)) ([]T, error) {
	names := SuiteNames()
	out := make([]T, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			out[i], errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
