package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dip"
	"repro/internal/pipeline"
)

// fillDistinct sets every field of a struct (recursively) to a distinct
// non-zero value, so a codec that drops or transposes any field fails
// DeepEqual after a round trip.
func fillDistinct(v reflect.Value, next *int) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if !f.CanSet() {
				continue
			}
			fillDistinct(f, next)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillDistinct(v.Index(i), next)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next++
		v.SetInt(int64(1000 + *next))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next++
		v.SetUint(uint64(1000 + *next))
	case reflect.Float32, reflect.Float64:
		*next++
		v.SetFloat(0.5 + float64(*next)/7)
	case reflect.String:
		*next++
		v.SetString(strings.Repeat("n", 1+*next%5) + "-name")
	case reflect.Bool:
		v.SetBool(true)
	}
}

// TestResultCodecsCoverEveryField fills every field of both result
// structs via reflection and asserts a bit-exact round trip: a field
// added to dip.Result or pipeline.Stats without updating the codec (and
// bumping its version) fails here instead of silently decoding to zero.
func TestResultCodecsCoverEveryField(t *testing.T) {
	var r dip.Result
	n := 0
	fillDistinct(reflect.ValueOf(&r).Elem(), &n)
	var buf bytes.Buffer
	if err := (predEvalCodec{}).Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, size, err := predEvalCodec{}.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if size != predEvalSize {
		t.Errorf("predeval size = %d, want %d", size, predEvalSize)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("predeval round trip:\n got %+v\nwant %+v", got, r)
	}

	var st pipeline.Stats
	n = 0
	fillDistinct(reflect.ValueOf(&st).Elem(), &n)
	buf.Reset()
	if err := (machineCodec{}).Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	got2, size2, err := machineCodec{}.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if size2 != machineStatsSize {
		t.Errorf("machine size = %d, want %d", size2, machineStatsSize)
	}
	if !reflect.DeepEqual(got2, st) {
		t.Errorf("machine round trip:\n got %+v\nwant %+v", got2, st)
	}
}

// TestResultCodecsRejectDamage: version skew, body corruption,
// truncation, and trailing bytes must all fail decode — a rebuild beats
// a wrong answer.
func TestResultCodecsRejectDamage(t *testing.T) {
	var buf bytes.Buffer
	r := dip.Result{Name: "cfi", Candidates: 10, Dead: 5, Predicted: 4, TruePos: 4, StateBits: 4096, BranchAccuracy: 0.93}
	if err := (predEvalCodec{}).Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0),
	}
	version := append([]byte(nil), good...)
	version[0] = resultCodecVersion + 1
	cases["version skew"] = version
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x10
	cases["corrupt body"] = flipped

	for name, payload := range cases {
		if _, _, err := (predEvalCodec{}).Decode(payload); err == nil {
			t.Errorf("predeval decode accepted %s payload", name)
		}
		if _, _, err := (machineCodec{}).Decode(payload); err == nil {
			t.Errorf("machine decode accepted %s payload", name)
		}
	}

	if err := (predEvalCodec{}).Encode(&buf, pipeline.Stats{}); err == nil {
		t.Error("predeval codec encoded a machine value")
	}
	if err := (machineCodec{}).Encode(&buf, dip.Result{}); err == nil {
		t.Error("machine codec encoded a predeval value")
	}
}

// TestResultCodecsAreBinary pins the satellite's point: the encoded
// records are compact binary, not JSON, and far smaller than the JSON
// they replaced.
func TestResultCodecsAreBinary(t *testing.T) {
	var buf bytes.Buffer
	r := dip.Result{Name: "global", Candidates: 1 << 20, Dead: 1 << 19, Predicted: 1 << 18, TruePos: 1 << 17, StateBits: 40960, BranchAccuracy: 0.931}
	if err := (predEvalCodec{}).Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(buf.Bytes()[resultHeaderSize:], []byte("{")) {
		t.Error("predeval encoding still looks like JSON")
	}
	wantMax := resultHeaderSize + 2 + len(r.Name) + 8*predEvalFields
	if buf.Len() > wantMax {
		t.Errorf("predeval encoding is %d bytes, want <= %d", buf.Len(), wantMax)
	}
	buf.Reset()
	if err := (machineCodec{}).Encode(&buf, pipeline.Stats{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), resultHeaderSize+8*machineFields; got != want {
		t.Errorf("machine encoding is %d bytes, want exactly %d", got, want)
	}
}
