package core

import (
	"context"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// RetryPolicy bounds how the engine re-runs transiently failing work:
// exponential backoff from BaseDelay, doubling per attempt, capped at
// MaxDelay. Only errors classified transient (faults.IsTransient) are
// retried; permanent errors, context cancellation, and deadline expiry
// fail immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (<= 1 means no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is a reasonable interactive policy: three attempts
// with 10ms/20ms backoffs.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 2 * time.Second}
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Backoff returns the delay before retrying after the given 1-based
// failed attempt: BaseDelay << (attempt-1), capped at MaxDelay (zero
// fields take the policy defaults). Exported so the server's request
// retry loop shares the engine's backoff schedule.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.normalized()
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	return min(d, p.MaxDelay)
}

// retryTransient runs op until it succeeds, fails permanently, exhausts
// the policy's attempts, or the context ends. It returns how many
// attempts ran and the final error. Each retry is counted on mc under
// metrics.CounterRetries.
func retryTransient(ctx context.Context, p RetryPolicy, mc *metrics.Collector, op func(context.Context) error) (int, error) {
	p = p.normalized()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return attempt, err
		}
		err := op(ctx)
		if err == nil {
			return attempt, nil
		}
		if ctx.Err() != nil || !faults.IsTransient(err) || attempt >= p.MaxAttempts {
			return attempt, err
		}
		mc.Add(metrics.CounterRetries, 1)
		select {
		case <-ctx.Done():
			return attempt, ctx.Err()
		case <-time.After(p.Backoff(attempt)):
		}
	}
}
