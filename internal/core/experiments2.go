package core

import (
	"context"
	"fmt"

	"repro/internal/dip"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file holds the extension experiments beyond the paper's direct
// tables (E11-E14): sensitivity and limit studies for the design choices
// DESIGN.md calls out.

// E11 measures how the dead-instruction predictor degrades with the
// quality of the underlying branch direction predictor — the path
// signatures are only as good as the predictions they are built from.
func (w *Workspace) E11(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:      "e11",
		Title:   "Sensitivity to branch-predictor quality",
		Claim:   "extension: path signatures inherit the branch predictor's accuracy; better direction prediction means better dead-instruction coverage",
		Table:   stats.NewTable("direction predictor", "branch-acc%", "coverage%", "accuracy%"),
		Metrics: map[string]float64{},
	}
	// The sweep is declarative: every registered direction predictor, by
	// name, through the same predictor-evaluation artifacts the other
	// experiments use (the gshare-4k row shares E5's artifact).
	dirs := []string{"static-taken", "bimodal-4k", "twolevel-4k", "gshare-4k", "tournament-4k"}
	cfg := dip.DefaultConfig()
	var covPts []stats.Point
	for _, dir := range dirs {
		dir := dir
		results, err := overSuite(ctx, w, func(name string) (dip.Result, error) {
			return w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg, Dir: dir})
		})
		if err != nil {
			return nil, err
		}
		var covs, accs, baccs []float64
		for _, r := range results {
			covs = append(covs, r.Coverage())
			accs = append(accs, r.Accuracy())
			baccs = append(baccs, r.BranchAccuracy)
		}
		e.Table.AddRow(dir, stats.Pct(stats.Mean(baccs)),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
		e.Metrics["coverage_"+dir] = stats.Mean(covs)
		covPts = append(covPts, stats.Point{X: 100 * stats.Mean(baccs), Y: 100 * stats.Mean(covs)})
	}
	e.Figure = &stats.Chart{
		Title: "dead-instruction coverage vs branch accuracy", XLabel: "branch accuracy %", YLabel: "coverage %",
		Series: []stats.Series{{Name: "coverage", Points: covPts}},
	}
	// Oracle future directions as the upper bound.
	oracle, err := overSuite(ctx, w, func(name string) (dip.Result, error) {
		return w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorOracle, Config: cfg})
	})
	if err != nil {
		return nil, err
	}
	var covs, accs []float64
	for _, r := range oracle {
		covs = append(covs, r.Coverage())
		accs = append(accs, r.Accuracy())
	}
	e.Table.AddRow("oracle-paths", "100.0%",
		stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
	e.Metrics["coverage_oracle"] = stats.Mean(covs)
	return e, nil
}

// E12 contrasts static dead-code elimination with dynamic deadness:
// running a classic DCE pass removes the always-dead leftovers but cannot
// touch partially dead instructions, so the dynamic dead fraction barely
// moves. The with-DCE rebuilds are independent per benchmark and run
// through the bounded pool.
func (w *Workspace) E12(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e12",
		Title: "Static DCE cannot recover dynamic deadness",
		Claim: "extension of claim 2: dynamically dead instructions are mostly useful-on-some-path, so compile-time dead-code elimination cannot remove them",
		Table: stats.NewTable("bench", "dead%", "dead%-with-DCE", "delta",
			"statically-removed"),
		Metrics: map[string]float64{},
	}
	type pair struct{ res, dce *ProfileResult }
	results, err := overSuite(ctx, w, func(name string) (pair, error) {
		res, err := w.ProfileOf(name)
		if err != nil {
			return pair{}, err
		}
		prof, err := workload.ByName(name)
		if err != nil {
			return pair{}, err
		}
		opts := prof.Opts
		opts.DCE = true
		withDCE, err := w.ProfileWithOptions(name, &opts)
		if err != nil {
			return pair{}, err
		}
		return pair{res, withDCE}, nil
	})
	if err != nil {
		return nil, err
	}
	var base, dce []float64
	for i, name := range SuiteNames() {
		res, withDCE := results[i].res, results[i].dce
		f0 := res.Summary.DeadFraction()
		f1 := withDCE.Summary.DeadFraction()
		base = append(base, f0)
		dce = append(dce, f1)
		e.Table.AddRow(name, stats.Pct(f0), stats.Pct(f1),
			fmt.Sprintf("%+.1fpp", 100*(f1-f0)),
			fmt.Sprint(withDCE.PassStats.DCERemoved))
	}
	e.Table.AddRow("MEAN", stats.Pct(stats.Mean(base)), stats.Pct(stats.Mean(dce)),
		fmt.Sprintf("%+.1fpp", 100*(stats.Mean(dce)-stats.Mean(base))), "")
	e.Metrics["dead_mean"] = stats.Mean(base)
	e.Metrics["dead_mean_dce"] = stats.Mean(dce)
	return e, nil
}

// E13 is the limit study: predictor-driven elimination against oracle
// elimination (perfect deadness knowledge, no recoveries) on the contended
// machine.
func (w *Workspace) E13(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e13",
		Title: "Predictor-driven vs oracle elimination (limit study)",
		Claim: "extension: how much of the perfect-knowledge headroom the real predictor captures",
		Table: stats.NewTable("bench", "base-IPC", "dip-IPC", "oracle-IPC",
			"dip-speedup%", "oracle-speedup%", "captured%"),
		Metrics: map[string]float64{},
	}
	cfg := pipeline.ContendedConfig()
	type triple struct{ base, dip, ora pipeline.Stats }
	results, err := overSuite(ctx, w, func(name string) (triple, error) {
		base, err := w.RunMachine(name, cfg)
		if err != nil {
			return triple{}, err
		}
		dcfg := cfg
		dcfg.Elim = true
		dipSt, err := w.RunMachine(name, dcfg)
		if err != nil {
			return triple{}, err
		}
		ocfg := cfg
		ocfg.Elim = true
		ocfg.OracleElim = true
		oraSt, err := w.RunMachine(name, ocfg)
		if err != nil {
			return triple{}, err
		}
		return triple{base, dipSt, oraSt}, nil
	})
	if err != nil {
		return nil, err
	}
	var dips, oracles, captured []float64
	for i, name := range SuiteNames() {
		base, dipSt, oraSt := results[i].base, results[i].dip, results[i].ora
		spDip := dipSt.IPC()/base.IPC() - 1
		spOra := oraSt.IPC()/base.IPC() - 1
		dips = append(dips, spDip)
		oracles = append(oracles, spOra)
		cap := 0.0
		if spOra > 0 {
			cap = spDip / spOra
		}
		captured = append(captured, cap)
		e.Table.AddRow(name,
			fmt.Sprintf("%.3f", base.IPC()),
			fmt.Sprintf("%.3f", dipSt.IPC()),
			fmt.Sprintf("%.3f", oraSt.IPC()),
			fmt.Sprintf("%+.1f%%", 100*spDip),
			fmt.Sprintf("%+.1f%%", 100*spOra),
			stats.Pct(cap))
	}
	e.Table.AddRow("MEAN", "", "", "",
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(dips)),
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(oracles)),
		stats.Pct(stats.Mean(captured)))
	e.Metrics["dip_speedup_mean"] = stats.Mean(dips)
	e.Metrics["oracle_speedup_mean"] = stats.Mean(oracles)
	e.Metrics["captured_mean"] = stats.Mean(captured)
	return e, nil
}

// E15 deepens the memory system (L2 + slow main memory) and re-measures
// the elimination speedup. The interesting result is negative: speedups
// are essentially unchanged, and the memory-bound benchmark (mcf, whose
// pointer chase misses 40% of L1 accesses) gains almost nothing — when
// the bottleneck is a serialized chain of cache misses, executing fewer
// dead instructions does not shorten the critical path. Elimination pays
// off where *bandwidth and occupancy* contend, not where latency does.
func (w *Workspace) E15(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e15",
		Title: "Memory-hierarchy depth sensitivity",
		Claim: "extension: memory depth barely changes elimination's value — gains come from bandwidth/occupancy contention, not miss latency",
		Table: stats.NewTable("bench", "flat-speedup%", "deep-speedup%",
			"deep-L1-miss%", "deep-L2-miss%"),
		Metrics: map[string]float64{},
	}
	flatCfg := pipeline.ContendedConfig()
	deepCfg := pipeline.DeepMemoryConfig()
	type row struct {
		flat, deep             float64
		l1MissRate, l2MissRate float64
	}
	results, err := overSuite(ctx, w, func(name string) (row, error) {
		fb, fe, err := w.elimPair(name, flatCfg)
		if err != nil {
			return row{}, err
		}
		db, de, err := w.elimPair(name, deepCfg)
		if err != nil {
			return row{}, err
		}
		r := row{
			flat: fe.IPC()/fb.IPC() - 1,
			deep: de.IPC()/db.IPC() - 1,
		}
		if de.Cache.Accesses > 0 {
			r.l1MissRate = 1 - de.Cache.HitRate()
		}
		if de.L2.Accesses > 0 {
			r.l2MissRate = 1 - de.L2.HitRate()
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	var flats, deeps []float64
	for i, name := range SuiteNames() {
		r := results[i]
		flats = append(flats, r.flat)
		deeps = append(deeps, r.deep)
		e.Table.AddRow(name,
			fmt.Sprintf("%+.1f%%", 100*r.flat),
			fmt.Sprintf("%+.1f%%", 100*r.deep),
			stats.Pct(r.l1MissRate), stats.Pct(r.l2MissRate))
	}
	e.Table.AddRow("MEAN",
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(flats)),
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(deeps)), "", "")
	e.Metrics["flat_speedup_mean"] = stats.Mean(flats)
	e.Metrics["deep_speedup_mean"] = stats.Mean(deeps)
	return e, nil
}

// E14 sweeps the predictor's confidence machinery: counter width and
// prediction threshold trade coverage against accuracy (and therefore
// recovery cost).
func (w *Workspace) E14(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:      "e14",
		Title:   "Predictor confidence sweep",
		Claim:   "extension: the confidence threshold trades coverage against the accuracy that keeps recoveries cheap",
		Table:   stats.NewTable("config", "coverage%", "accuracy%", "false+/Minst"),
		Metrics: map[string]float64{},
	}
	type point struct{ bits, thr int }
	var covPts, accPts []stats.Point
	for _, pt := range []point{{1, 1}, {2, 1}, {2, 2}, {2, 3}, {3, 4}, {3, 7}} {
		cfg := dip.DefaultConfig()
		cfg.CounterBits = pt.bits
		cfg.Threshold = pt.thr
		results, err := overSuite(ctx, w, func(name string) (dip.Result, error) {
			return w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
		})
		if err != nil {
			return nil, err
		}
		var covs, accs []float64
		fp, insts := 0, 0
		for _, r := range results {
			covs = append(covs, r.Coverage())
			accs = append(accs, r.Accuracy())
			fp += r.FalsePositives()
			insts += r.Candidates
		}
		e.Table.AddRow(cfg.Name(), stats.Pct(stats.Mean(covs)),
			stats.Pct(stats.Mean(accs)),
			fmt.Sprintf("%.0f", 1e6*float64(fp)/float64(insts)))
		e.Metrics[fmt.Sprintf("coverage_b%d_t%d", pt.bits, pt.thr)] = stats.Mean(covs)
		e.Metrics[fmt.Sprintf("accuracy_b%d_t%d", pt.bits, pt.thr)] = stats.Mean(accs)
		covPts = append(covPts, stats.Point{X: float64(pt.thr), Y: 100 * stats.Mean(covs)})
		accPts = append(accPts, stats.Point{X: float64(pt.thr), Y: 100 * stats.Mean(accs)})
	}
	e.Figure = &stats.Chart{
		Title: "confidence threshold tradeoff", XLabel: "threshold", YLabel: "%",
		Series: []stats.Series{{Name: "coverage", Points: covPts}, {Name: "accuracy", Points: accPts}},
	}
	return e, nil
}
