package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/faults"
)

// Pool bounds the number of concurrently executing heavy tasks (profile
// builds, machine simulations, predictor evaluations). It is a counting
// semaphore rather than a fixed set of worker goroutines so that nested
// fan-outs cannot deadlock: coordinator goroutines (one per experiment,
// one per suite benchmark) are cheap and never hold a slot while waiting
// on child tasks — only the leaf work itself occupies a slot.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool running at most workers tasks at once
// (GOMAXPROCS if workers <= 0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Do runs fn on the calling goroutine once a slot is free. A panic in fn
// is recovered and returned as an error (preserving the panic value's
// error chain, so injected faults stay attributable); a context cancelled
// while waiting for a slot returns ctx.Err() without running fn. Tasks
// must not call Do re-entrantly while holding a slot.
func (p *Pool) Do(ctx context.Context, fn func() error) (err error) {
	// Check upfront so an already-cancelled context never runs the task
	// (the select below picks randomly when both channels are ready).
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case p.sem <- struct{}{}:
	}
	defer func() { <-p.sem }()
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError("core: task panic", r)
		}
	}()
	if err := faults.Fire(faults.SitePoolTask); err != nil {
		return err
	}
	return fn()
}

// recoveredError converts a recovered panic value into an error. Error
// panic values are wrapped (not stringified) so errors.Is/As still see
// the chain — the fault injector's panics carry their site this way.
func recoveredError(prefix string, r any) error {
	if e, ok := r.(error); ok {
		return fmt.Errorf("%s: %w\n%s", prefix, e, debug.Stack())
	}
	return fmt.Errorf("%s: %v\n%s", prefix, r, debug.Stack())
}

// ForEach runs fn(i) for every i in [0, n) with the pool's concurrency
// bound. The first failure cancels the tasks still waiting for a slot.
// The returned error is deterministic: the lowest-index error that is not
// a cancellation casualty, so racing goroutine schedules cannot change
// which failure the caller sees.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Do(ctx, func() error { return fn(i) })
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}
