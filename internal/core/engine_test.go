package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// renderExperiment is Experiment.Render, kept as a free-function alias so
// the equivalence suites read naturally.
func renderExperiment(e *Experiment) string { return e.Render() }

// TestRunExperimentsConcurrentMatchesSequential runs all 18 experiments
// concurrently on a shared workspace and asserts every table, figure, and
// metric matches a sequential (-j 1) run byte-for-byte. Run it with
// -race: it is also the concurrency soak for the workspace.
func TestRunExperimentsConcurrentMatchesSequential(t *testing.T) {
	const budget = 60_000
	ids := ExperimentIDs()

	seq := NewWorkspaceWorkers(budget, 1)
	seqRes, err := seq.RunExperiments(context.Background(), ids)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}

	conc := NewWorkspaceWorkers(budget, 0)
	mc := metrics.New()
	conc.Metrics = mc
	concRes, err := conc.RunExperiments(context.Background(), ids)
	if err != nil {
		t.Fatalf("concurrent run: %v", err)
	}

	if len(seqRes) != len(ids) || len(concRes) != len(ids) {
		t.Fatalf("result counts: seq=%d conc=%d want %d", len(seqRes), len(concRes), len(ids))
	}
	for i, id := range ids {
		if seqRes[i].ID != id || concRes[i].ID != id {
			t.Fatalf("order broken at %d: seq=%s conc=%s want %s", i, seqRes[i].ID, concRes[i].ID, id)
		}
		a, b := renderExperiment(seqRes[i]), renderExperiment(concRes[i])
		if a != b {
			t.Errorf("%s diverges between -j 1 and -j N:\n--- sequential\n%s\n--- concurrent\n%s", id, a, b)
		}
	}

	// The shared workspace must have deduplicated cross-experiment machine
	// runs: E9, E13, and E15 share the contended pair, E10's 128-reg point
	// is E8's baseline pair, and so on.
	if hits := mc.Counter(CounterMachineMemoHits); hits == 0 {
		t.Error("no machine-run memoization hits across the 18 experiments")
	}
	if sims, hits := mc.Counter(CounterMachineSims), mc.Counter(CounterMachineMemoHits); sims == 0 || hits+sims == 0 {
		t.Errorf("implausible counters: sims=%d hits=%d", sims, hits)
	}
	// Three profile artifacts per benchmark: the default compile, E3's
	// no-hoist variant, and E12's with-DCE variant all flow through the
	// artifact store now, each built exactly once.
	if builds := mc.Counter(CounterProfileBuilds); builds != int64(3*len(SuiteNames())) {
		t.Errorf("profile builds = %d, want %d (three per benchmark: default, no-hoist, DCE)",
			builds, 3*len(SuiteNames()))
	}
}

func TestRunMachineMemoized(t *testing.T) {
	w := NewWorkspace(testBudget)
	mc := metrics.New()
	w.Metrics = mc

	cfg := pipeline.ContendedConfig()
	a, err := w.RunMachine("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.RunMachine("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("memoized run differs from original")
	}
	if sims, hits := mc.Counter(CounterMachineSims), mc.Counter(CounterMachineMemoHits); sims != 1 || hits != 1 {
		t.Errorf("sims=%d hits=%d, want 1 and 1", sims, hits)
	}

	// A different configuration must simulate again...
	cfg.Elim = true
	if _, err := w.RunMachine("gzip", cfg); err != nil {
		t.Fatal(err)
	}
	if sims := mc.Counter(CounterMachineSims); sims != 2 {
		t.Errorf("sims=%d after config change, want 2", sims)
	}
	// ...and an equal configuration built independently must not.
	cfg2 := pipeline.ContendedConfig()
	cfg2.Elim = true
	if _, err := w.RunMachine("gzip", cfg2); err != nil {
		t.Fatal(err)
	}
	if sims, hits := mc.Counter(CounterMachineSims), mc.Counter(CounterMachineMemoHits); sims != 2 || hits != 2 {
		t.Errorf("sims=%d hits=%d, want 2 and 2", sims, hits)
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	w := NewWorkspace(testBudget)
	if _, err := w.RunExperiments(context.Background(), []string{"e1", "nonesuch"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentsCancelledContext(t *testing.T) {
	w := NewWorkspace(testBudget)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.RunExperiments(ctx, []string{"e1"}); err == nil {
		t.Error("cancelled context produced results")
	}
}
