package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/artifact"
)

// downgradeProfileEntry rewrites the single persisted profile entry under
// dir as if a previous-generation writer had produced it: the JSON
// header's Version field is patched back to 1 and the payload re-framed
// with a correct CRC. The result is a fully intact, checksum-valid entry
// in an outdated format — exactly what a cache directory holds after a
// codec upgrade, and a different failure class from bit-rot corruption.
func downgradeProfileEntry(t *testing.T, dir string) {
	t.Helper()
	profDir := filepath.Join(dir, string(KindProfile))
	files, err := os.ReadDir(profDir)
	if err != nil || len(files) != 1 {
		t.Fatalf("profile dir: %v (%d files)", err, len(files))
	}
	path := filepath.Join(profDir, files[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := artifact.Unframe(raw)
	if err != nil {
		t.Fatalf("current entry does not unframe: %v", err)
	}
	hlen, hn := binary.Uvarint(payload)
	if hn <= 0 || hn+int(hlen) > len(payload) {
		t.Fatal("current entry has a malformed header length")
	}
	// Both version strings are the same length, so the header (and the
	// uvarint prefix) keep their size and the patch is purely in place.
	cur := fmt.Sprintf(`"Version":%d`, profileCodecVersion)
	old := fmt.Sprintf(`"Version":%d`, profileCodecVersion-1)
	hdr := payload[hn : hn+int(hlen)]
	patched := bytes.Replace(hdr, []byte(cur), []byte(old), 1)
	if bytes.Equal(patched, hdr) {
		t.Fatalf("header %q carries no %s field", hdr, cur)
	}
	copy(hdr, patched)
	if err := os.WriteFile(path, artifact.Frame(payload), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestProfileEntryStaleVersionRebuilds is the codec-migration contract: a
// valid entry written by an older codec generation is *stale*, not
// corrupt — a warm start must silently delete it and rebuild through the
// ordinary miss path, never surface a corruption error, and leave a
// current-generation entry behind for the next warm start to hit.
func TestProfileEntryStaleVersionRebuilds(t *testing.T) {
	dir := t.TempDir()
	bench := "gzip"
	cold := diskWorkspace(t, dir)
	coldProf, err := cold.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}
	downgradeProfileEntry(t, dir)

	warm := diskWorkspace(t, dir)
	warmProf, err := warm.ProfileOf(bench)
	if err != nil {
		t.Fatalf("warm start over a stale-version entry failed: %v", err)
	}
	if !reflect.DeepEqual(warmProf.Summary, coldProf.Summary) {
		t.Error("rebuilt profile differs from original")
	}
	ws := warm.ArtifactStats().Kinds[KindProfile]
	if ws.VerifyFailures != 1 || ws.Misses != 1 || ws.DiskWrites != 1 {
		t.Errorf("stale-entry stats = %+v, want one verify failure + rebuild + re-persist", ws)
	}

	// The rebuild must have left a current entry: a third workspace
	// warm-starts with zero builds.
	fresh := diskWorkspace(t, dir)
	if _, err := fresh.ProfileOf(bench); err != nil {
		t.Fatal(err)
	}
	fs := fresh.ArtifactStats().Kinds[KindProfile]
	if fs.Misses != 0 || fs.DiskHits != 1 {
		t.Errorf("post-migration stats = %+v, want pure disk hit", fs)
	}
}

// TestProfileStaleEntryCrossProcess drives the migration across real
// process boundaries: after the entry is downgraded, a re-exec'd child
// process and the parent race to warm-start the same cache directory.
// Whichever order the scheduler picks, both must produce the original
// profile — the loser of the rebuild race either rebuilds again or hits
// the winner's re-persisted entry; neither may see corruption.
func TestProfileStaleEntryCrossProcess(t *testing.T) {
	bench := "gzip"
	if dir := os.Getenv("CORE_STALE_PROFILE_CHILD"); dir != "" {
		w := diskWorkspace(t, dir)
		prof, err := w.ProfileOf(bench)
		if err != nil {
			t.Fatalf("child warm start: %v", err)
		}
		sum, err := json.Marshal(prof.Summary)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("CHILD_SUMMARY %s\n", sum)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot find test binary: %v", err)
	}
	dir := t.TempDir()
	cold := diskWorkspace(t, dir)
	coldProf, err := cold.ProfileOf(bench)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := json.Marshal(coldProf.Summary)
	if err != nil {
		t.Fatal(err)
	}
	downgradeProfileEntry(t, dir)

	cmd := exec.Command(exe, "-test.run", "^TestProfileStaleEntryCrossProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "CORE_STALE_PROFILE_CHILD="+dir)
	childOut := make(chan struct {
		out []byte
		err error
	}, 1)
	go func() {
		out, err := cmd.CombinedOutput()
		childOut <- struct {
			out []byte
			err error
		}{out, err}
	}()

	// Parent warm-starts concurrently with the child.
	warm := diskWorkspace(t, dir)
	warmProf, err := warm.ProfileOf(bench)
	if err != nil {
		t.Fatalf("parent warm start: %v", err)
	}
	if !reflect.DeepEqual(warmProf.Summary, coldProf.Summary) {
		t.Error("parent rebuilt profile differs from original")
	}

	child := <-childOut
	if child.err != nil {
		t.Fatalf("child failed: %v\n%s", child.err, child.out)
	}
	var childSum string
	for _, line := range strings.Split(string(child.out), "\n") {
		if rest, ok := strings.CutPrefix(line, "CHILD_SUMMARY "); ok {
			childSum = rest
			break
		}
	}
	if childSum == "" {
		t.Fatalf("no CHILD_SUMMARY line in child output:\n%s", child.out)
	}
	if childSum != string(wantSum) {
		t.Errorf("child summary %s\nwant %s", childSum, wantSum)
	}
}
