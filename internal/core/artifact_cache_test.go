package core

import (
	"context"
	"testing"

	"repro/internal/dip"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// TestPredEvalArtifactSharedAcrossSpecs checks that canonicalization
// makes equivalent predictor requests share one evaluation artifact:
// E5's implicit-default-dir request and E11's explicit gshare-4k row are
// the same computation.
func TestPredEvalArtifactSharedAcrossSpecs(t *testing.T) {
	w := NewWorkspace(testBudget)
	mc := metrics.New()
	w.Metrics = mc

	cfg := dip.DefaultConfig()
	a, err := w.EvalPredictor("gzip", dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.EvalPredictor("gzip", dip.Spec{Flavor: dip.FlavorCFI, Config: cfg, Dir: dip.DefaultDirName})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equivalent specs returned different results")
	}
	if hits := mc.Counter("artifact_hits." + string(KindPredEval)); hits != 1 {
		t.Errorf("predeval hits = %d, want 1 (second request served from the store)", hits)
	}
	if misses := mc.Counter("artifact_misses." + string(KindPredEval)); misses != 1 {
		t.Errorf("predeval misses = %d, want 1", misses)
	}

	// A genuinely different spec is a different artifact.
	if _, err := w.EvalPredictor("gzip", dip.Spec{Flavor: dip.FlavorOracle, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if misses := mc.Counter("artifact_misses." + string(KindPredEval)); misses != 2 {
		t.Errorf("predeval misses = %d after an oracle request, want 2", misses)
	}

	// An invalid spec is rejected before touching the store.
	if _, err := w.EvalPredictor("gzip", dip.Spec{Flavor: "nope"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestCacheBudgetEvictsAndStaysBitIdentical is the acceptance check for
// the bounded artifact cache: a run under a budget small enough to force
// evictions must produce byte-identical experiment output to an
// unbounded run, with evictions actually happening and predictor
// evaluations still deduplicating across experiments.
func TestCacheBudgetEvictsAndStaysBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	const budget = 60_000
	ids := ExperimentIDs()

	clean := NewWorkspaceWorkers(budget, 0)
	cleanRes, err := clean.RunExperiments(context.Background(), ids)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Cross-experiment dedup is asserted on the unbounded workspace: under
	// a tight budget a predeval artifact may legitimately be evicted by
	// profile churn before its reuse arrives, so its hit count there is
	// schedule-dependent.
	if hits := clean.ArtifactStats().Kinds[KindPredEval].Hits; hits == 0 {
		t.Error("no predictor-evaluation artifact hits across the unbounded suite")
	}

	w := NewWorkspaceWorkers(budget, 0)
	// Small enough that the 33 profile artifacts (3 per benchmark) churn
	// constantly; large enough to hold the handful pinned at once.
	w.CacheBudget = 8 << 20
	mc := metrics.New()
	w.Metrics = mc
	res, err := w.RunExperiments(context.Background(), ids)
	if err != nil {
		t.Fatalf("budgeted run: %v", err)
	}

	for i := range ids {
		a, b := renderExperiment(cleanRes[i]), renderExperiment(res[i])
		if a != b {
			t.Errorf("%s diverges under cache eviction:\n--- unbounded\n%s\n--- budgeted\n%s", ids[i], a, b)
		}
	}

	st := w.ArtifactStats()
	var evictions int64
	for _, ks := range st.Kinds {
		evictions += ks.Evictions
	}
	if evictions == 0 {
		t.Error("no artifact evicted under an 8 MiB budget; the test is vacuous")
	}
	if rebuilds := st.Kinds[KindProfile].Misses; rebuilds <= int64(3*len(SuiteNames())) {
		t.Errorf("profile misses = %d under churn, want rebuilds beyond the initial %d",
			rebuilds, 3*len(SuiteNames()))
	}
	if mc.Counter("artifact_evictions."+string(KindProfile)) != st.Kinds[KindProfile].Evictions {
		t.Error("metrics counter and store snapshot disagree on profile evictions")
	}
}

// TestTransientFaultEvictsOnlyPoisonedArtifact is the focused version of
// the chaos soak's eviction contract: a transient workspace.memo fault
// poisons exactly the artifact being built — survivors stay resident,
// identical, and served from the store.
func TestTransientFaultEvictsOnlyPoisonedArtifact(t *testing.T) {
	w := NewWorkspace(testBudget)
	a1, err := w.ProfileOf("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := w.ProfileOf("gcc")
	if err != nil {
		t.Fatal(err)
	}

	in := faults.NewInjector(7).
		Arm(faults.SiteWorkspaceMemo, faults.Rule{Kind: faults.Transient, Rate: 1, Max: 1})
	faults.Set(in)
	defer faults.Set(nil)

	if _, err := w.ProfileOf("mcf"); !faults.IsTransient(err) {
		t.Fatalf("poisoned build returned %v, want the injected transient", err)
	}

	mc := metrics.New()
	w.Metrics = mc
	a2, err := w.ProfileOf("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.ProfileOf("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 || b2 != b1 {
		t.Error("survivor artifacts were rebuilt; the fault must evict only the poisoned one")
	}
	if hits := mc.Counter(CounterProfileMemoHits); hits != 2 {
		t.Errorf("survivor hits = %d, want 2", hits)
	}

	// The poisoned artifact was forgotten, not memoized: the retry (the
	// injector's Max is exhausted) rebuilds it successfully.
	c, err := w.ProfileOf("mcf")
	if err != nil || c == nil {
		t.Fatalf("post-fault rebuild: res=%v err=%v", c, err)
	}
	if builds := mc.Counter(CounterProfileBuilds); builds != 1 {
		t.Errorf("rebuild count = %d, want 1 (only the poisoned artifact)", builds)
	}
}
