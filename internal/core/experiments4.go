package core

import (
	"context"
	"fmt"

	"repro/internal/deadness"
	"repro/internal/stats"
	"repro/internal/trace"
)

// E18 quantifies measurement-window bias: the deadness oracle is
// conservative at a window boundary (an unresolved value cannot be proven
// dead), so measuring dead fractions over short windows could in
// principle underestimate. The measured bias is negligible even on 10k
// windows — the flip side of E16's finding that outcomes resolve within a
// few instructions, so only a window's last handful of values are ever
// left unresolved. The suite's 1M-instruction budget is comfortably
// unbiased.
func (w *Workspace) E18(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:      "e18",
		Title:   "Measurement-window bias of the deadness oracle",
		Claim:   "extension: window bias is negligible because outcomes resolve within a few instructions (see E16); the 1M budget is unbiased",
		Table:   stats.NewTable("window", "mean-dead%", "bias-vs-full"),
		Metrics: map[string]float64{},
	}
	windows := []int{10_000, 50_000, 250_000}

	type row struct {
		full float64
		at   []float64 // one per window size
	}
	results, err := overSuite(ctx, w, func(name string) (row, error) {
		var r row
		// The windowed analysis reads the trace, so the profile stays
		// pinned (no eviction) for the duration.
		err := w.WithProfile(name, func(res *ProfileResult) error {
			r.full = res.Summary.DeadFraction()
			for _, win := range windows {
				f, err := windowedDeadFraction(res.Trace, win)
				if err != nil {
					return err
				}
				r.at = append(r.at, f)
			}
			return nil
		})
		if err != nil {
			return row{}, err
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	var fulls []float64
	for _, r := range results {
		fulls = append(fulls, r.full)
	}
	fullMean := stats.Mean(fulls)
	var pts []stats.Point
	for wi, win := range windows {
		var vals []float64
		for _, r := range results {
			vals = append(vals, r.at[wi])
		}
		m := stats.Mean(vals)
		e.Table.AddRow(fmt.Sprint(win), stats.Pct(m),
			fmt.Sprintf("%+.1fpp", 100*(m-fullMean)))
		e.Metrics[fmt.Sprintf("dead_mean_at_%d", win)] = m
		pts = append(pts, stats.Point{X: float64(win), Y: 100 * m})
	}
	e.Table.AddRow("full", stats.Pct(fullMean), "+0.0pp")
	e.Metrics["dead_mean_full"] = fullMean
	pts = append(pts, stats.Point{X: 1_000_000, Y: 100 * fullMean})
	e.Figure = &stats.Chart{
		Title: "measured dead fraction vs window size", XLabel: "window (instructions)", YLabel: "dead %",
		Series: []stats.Series{{Name: "mean dead%", Points: pts}},
	}
	return e, nil
}

// windowedDeadFraction splits the trace into disjoint windows, analyzes
// each independently (values crossing a boundary are conservatively
// live), and returns the aggregate dead fraction.
//
// The input trace is shared by every experiment running concurrently, so
// its chunks must stay untouched; each window's records are block-copied
// into one reusable scratch trace (Reset keeps the chunk storage between
// windows, Release returns the pooled arenas at the end), so the call
// allocates one window's worth of columns instead of a whole-trace copy.
func windowedDeadFraction(t *trace.Trace, window int) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("core: window size %d must be positive", window)
	}
	n := t.Len()
	sub := trace.NewWithCapacity(min(window, n))
	defer sub.Release()
	dead, total := 0, 0
	for start := 0; start < n; start += window {
		end := min(start+window, n)
		sub.Reset()
		sub.AppendRange(t, start, end)
		a, err := deadness.LinkAndAnalyze(sub)
		if err != nil {
			return 0, err
		}
		s := a.Summarize(sub, nil)
		dead += s.Dead
		total += s.Total
	}
	if total == 0 {
		return 0, nil
	}
	return float64(dead) / float64(total), nil
}
