package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dip"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Experiment is the result of one reproduced table or figure (see the
// experiment index in DESIGN.md).
type Experiment struct {
	ID    string
	Title string
	// Claim is the paper statement the experiment reproduces.
	Claim string
	Table *stats.Table
	// Figure, when non-nil, is the ASCII rendering of the experiment's
	// sweep — the analogue of the paper's figure for that experiment.
	Figure *stats.Chart
	// Metrics carries the headline numbers (percentages as fractions)
	// checked by the benchmark harness and recorded in EXPERIMENTS.md.
	Metrics map[string]float64
	// Wall is how long the experiment took; it reflects scheduling and
	// memoization, so it is excluded from deterministic comparisons.
	Wall time.Duration
	// Attempts is how many dispatch attempts ran (>1 means transient
	// failures were retried). Like Wall, it is run-specific.
	Attempts int
	// Err is the structured failure of an experiment that did not
	// complete; set only in RunExperiments' partial-results (KeepGoing)
	// mode, where such entries carry no Table, Figure, or Metrics.
	Err error
}

// ExperimentIDs lists the reproduced experiments in order.
func ExperimentIDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
		"e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21"}
}

// E1 measures the dynamic dead-instruction fraction of every benchmark and
// its breakdown by level and operation class.
func (w *Workspace) E1(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e1",
		Title: "Dynamic dead-instruction fraction",
		Claim: "3 to 16% of dynamic instructions are dead",
		Table: stats.NewTable("bench", "dyn-insts", "dead%", "first-level%",
			"transitive%", "dead-ALU", "dead-loads", "dead-stores"),
		Metrics: map[string]float64{},
	}
	var fracs []float64
	for _, name := range SuiteNames() {
		res, err := w.ProfileOf(name)
		if err != nil {
			return nil, err
		}
		s := res.Summary
		f := s.DeadFraction()
		fracs = append(fracs, f)
		firstLevel, err := safeDiv(s.FirstLevel, s.Dead)
		if err != nil {
			return nil, fmt.Errorf("e1 %s first-level share: %w", name, err)
		}
		transitive, err := safeDiv(s.Transitive, s.Dead)
		if err != nil {
			return nil, fmt.Errorf("e1 %s transitive share: %w", name, err)
		}
		e.Table.AddRow(name, fmt.Sprint(s.Total), stats.Pct(f),
			stats.Pct(firstLevel), stats.Pct(transitive),
			fmt.Sprint(s.DeadALU), fmt.Sprint(s.DeadLoads), fmt.Sprint(s.DeadStores))
	}
	e.Table.AddRow("MEAN", "", stats.Pct(stats.Mean(fracs)), "", "", "", "", "")
	e.Metrics["dead_min"] = stats.Min(fracs)
	e.Metrics["dead_max"] = stats.Max(fracs)
	e.Metrics["dead_mean"] = stats.Mean(fracs)
	return e, nil
}

// E2 shows that most dynamic dead instances come from static instructions
// that also produce useful results (partially dead statics).
func (w *Workspace) E2(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e2",
		Title: "Partially dead static instructions",
		Claim: "the majority of dead instances arise from static instructions that also produce useful results",
		Table: stats.NewTable("bench", "dead-statics", "fully-dead", "partially-dead",
			"dead-from-partial%", "mostly-dead-share%"),
		Metrics: map[string]float64{},
	}
	var fromPartial []float64
	for _, name := range SuiteNames() {
		res, err := w.ProfileOf(name)
		if err != nil {
			return nil, err
		}
		loc := res.Locality
		fromPartial = append(fromPartial, loc.DeadFromPartial)
		e.Table.AddRow(name, fmt.Sprint(loc.DeadStatics),
			fmt.Sprint(loc.FullyDeadStatics), fmt.Sprint(loc.PartiallyDeadStatics),
			stats.Pct(loc.DeadFromPartial), stats.Pct(loc.MostlyDeadShare))
	}
	e.Table.AddRow("MEAN", "", "", "", stats.Pct(stats.Mean(fromPartial)), "")
	e.Metrics["dead_from_partial_mean"] = stats.Mean(fromPartial)
	return e, nil
}

// E3 is the compiler-scheduling ablation: dead fraction with the suite's
// production options versus hoisting disabled, plus the dead volume
// attributed to each provenance class. The no-hoist rebuilds are
// independent per benchmark and run through the bounded pool.
func (w *Workspace) E3(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e3",
		Title: "Compiler scheduling creates partially dead instructions",
		Claim: "compiler optimization (specifically instruction scheduling) creates a significant portion of partially dead static instructions",
		Table: stats.NewTable("bench", "dead%", "dead%-nohoist", "delta",
			"hoist-dead", "spill-dead", "callconv-dead", "licm-dead", "normal-dead"),
		Metrics: map[string]float64{},
	}
	type pair struct{ res, noh *ProfileResult }
	results, err := overSuite(ctx, w, func(name string) (pair, error) {
		res, err := w.ProfileOf(name)
		if err != nil {
			return pair{}, err
		}
		prof, err := workload.ByName(name)
		if err != nil {
			return pair{}, err
		}
		opts := prof.Opts
		opts.MaxHoist = 0
		noh, err := w.ProfileWithOptions(name, &opts)
		if err != nil {
			return pair{}, err
		}
		return pair{res, noh}, nil
	})
	if err != nil {
		return nil, err
	}
	var with, without []float64
	for i, name := range SuiteNames() {
		s, noh := results[i].res.Summary, results[i].noh
		f0, f1 := s.DeadFraction(), noh.Summary.DeadFraction()
		with = append(with, f0)
		without = append(without, f1)
		e.Table.AddRow(name, stats.Pct(f0), stats.Pct(f1),
			fmt.Sprintf("%+.1fpp", 100*(f0-f1)),
			fmt.Sprint(s.ByProv[program.ProvHoisted].Dead),
			fmt.Sprint(s.ByProv[program.ProvSpill].Dead+s.ByProv[program.ProvReload].Dead),
			fmt.Sprint(s.ByProv[program.ProvCallSave].Dead+s.ByProv[program.ProvCallRestore].Dead),
			fmt.Sprint(s.ByProv[program.ProvLICM].Dead),
			fmt.Sprint(s.ByProv[program.ProvNormal].Dead+s.ByProv[program.ProvGlue].Dead))
	}
	e.Table.AddRow("MEAN", stats.Pct(stats.Mean(with)), stats.Pct(stats.Mean(without)),
		fmt.Sprintf("%+.1fpp", 100*(stats.Mean(with)-stats.Mean(without))), "", "", "", "", "")
	e.Metrics["dead_mean_with_hoist"] = stats.Mean(with)
	e.Metrics["dead_mean_no_hoist"] = stats.Mean(without)
	return e, nil
}

// E4 measures the static locality of dead instances.
func (w *Workspace) E4(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e4",
		Title: "Static locality of dead instances",
		Claim: "most dead instances arise from a small set of static instructions that are dead most of the time",
		Table: stats.NewTable("bench", "dead-statics", "top8-cov%", "top16-cov%",
			"top32-cov%", "top64-cov%", "mostly-dead-share%"),
		Metrics: map[string]float64{},
	}
	var top16, mostly []float64
	for _, name := range SuiteNames() {
		res, err := w.ProfileOf(name)
		if err != nil {
			return nil, err
		}
		loc := res.Locality
		covAt := func(pt int) float64 {
			for i, p := range loc.CoveragePoints {
				if p == pt {
					return loc.CoverageAt[i]
				}
			}
			return 0
		}
		top16 = append(top16, covAt(16))
		mostly = append(mostly, loc.MostlyDeadShare)
		e.Table.AddRow(name, fmt.Sprint(loc.DeadStatics),
			stats.Pct(covAt(8)), stats.Pct(covAt(16)),
			stats.Pct(covAt(32)), stats.Pct(covAt(64)),
			stats.Pct(loc.MostlyDeadShare))
	}
	e.Table.AddRow("MEAN", "", "", stats.Pct(stats.Mean(top16)), "", "",
		stats.Pct(stats.Mean(mostly)))
	e.Metrics["top16_coverage_mean"] = stats.Mean(top16)
	e.Metrics["mostly_dead_share_mean"] = stats.Mean(mostly)
	return e, nil
}

// E5 evaluates the default dead-instruction predictor.
func (w *Workspace) E5(ctx context.Context) (*Experiment, error) {
	cfg := dip.DefaultConfig()
	e := &Experiment{
		ID:    "e5",
		Title: "Dead-instruction predictor at the paper design point",
		Claim: "93% accuracy while identifying over 91% of dead instructions using less than 5 KB of state",
		Table: stats.NewTable("bench", "dead", "covered", "coverage%",
			"accuracy%", "false+", "branch-acc%"),
		Metrics: map[string]float64{},
	}
	results, err := overSuite(ctx, w, func(name string) (dip.Result, error) {
		return w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
	})
	if err != nil {
		return nil, err
	}
	var covs, accs []float64
	for i, name := range SuiteNames() {
		r := results[i]
		covs = append(covs, r.Coverage())
		accs = append(accs, r.Accuracy())
		e.Table.AddRow(name, fmt.Sprint(r.Dead), fmt.Sprint(r.TruePos),
			stats.Pct(r.Coverage()), stats.Pct(r.Accuracy()),
			fmt.Sprint(r.FalsePositives()), stats.Pct(r.BranchAccuracy))
	}
	e.Table.AddRow("MEAN", "", "", stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)), "", "")
	e.Metrics["coverage_mean"] = stats.Mean(covs)
	e.Metrics["accuracy_mean"] = stats.Mean(accs)
	e.Metrics["state_kb"] = cfg.StateKB()
	return e, nil
}

// E6 is the future-control-flow ablation: the CFI predictor against a
// plain per-PC counter at the same design point, plus the actual-path
// oracle upper bound.
func (w *Workspace) E6(ctx context.Context) (*Experiment, error) {
	withCFI := dip.DefaultConfig()
	noCFI := dip.DefaultConfig()
	noCFI.PathLen = 0
	e := &Experiment{
		ID:    "e6",
		Title: "Future control-flow information ablation",
		Claim: "high accuracy comes from leveraging future control flow (branch predictions) to distinguish useless from useful instances",
		Table: stats.NewTable("bench", "cfi-cov%", "cfi-acc%", "counter-cov%",
			"counter-acc%", "oracle-cov%", "oracle-acc%"),
		Metrics: map[string]float64{},
	}
	type trio struct{ a, b, o dip.Result }
	results, err := overSuite(ctx, w, func(name string) (trio, error) {
		a, err := w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCFI, Config: withCFI})
		if err != nil {
			return trio{}, err
		}
		b, err := w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCounter, Config: noCFI})
		if err != nil {
			return trio{}, err
		}
		o, err := w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorOracle, Config: withCFI})
		if err != nil {
			return trio{}, err
		}
		return trio{a, b, o}, nil
	})
	if err != nil {
		return nil, err
	}
	var cfiAcc, ctrAcc, cfiCov, ctrCov []float64
	for i, name := range SuiteNames() {
		a, b, o := results[i].a, results[i].b, results[i].o
		cfiAcc = append(cfiAcc, a.Accuracy())
		ctrAcc = append(ctrAcc, b.Accuracy())
		cfiCov = append(cfiCov, a.Coverage())
		ctrCov = append(ctrCov, b.Coverage())
		e.Table.AddRow(name,
			stats.Pct(a.Coverage()), stats.Pct(a.Accuracy()),
			stats.Pct(b.Coverage()), stats.Pct(b.Accuracy()),
			stats.Pct(o.Coverage()), stats.Pct(o.Accuracy()))
	}
	e.Table.AddRow("MEAN", stats.Pct(stats.Mean(cfiCov)), stats.Pct(stats.Mean(cfiAcc)),
		stats.Pct(stats.Mean(ctrCov)), stats.Pct(stats.Mean(ctrAcc)), "", "")
	e.Metrics["cfi_accuracy_mean"] = stats.Mean(cfiAcc)
	e.Metrics["counter_accuracy_mean"] = stats.Mean(ctrAcc)
	e.Metrics["cfi_coverage_mean"] = stats.Mean(cfiCov)
	e.Metrics["counter_coverage_mean"] = stats.Mean(ctrCov)
	return e, nil
}

// E7 sweeps the predictor's state budget.
func (w *Workspace) E7(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:      "e7",
		Title:   "Predictor state-budget sweep",
		Claim:   "a small table (<5 KB) suffices; coverage saturates with capacity",
		Table:   stats.NewTable("config", "state-KB", "coverage%", "accuracy%"),
		Metrics: map[string]float64{},
	}
	var covPts, accPts []stats.Point
	for _, cfg := range dip.SweepConfigs() {
		cfg := cfg
		results, err := overSuite(ctx, w, func(name string) (dip.Result, error) {
			return w.EvalPredictor(name, dip.Spec{Flavor: dip.FlavorCFI, Config: cfg})
		})
		if err != nil {
			return nil, err
		}
		var covs, accs []float64
		for _, r := range results {
			covs = append(covs, r.Coverage())
			accs = append(accs, r.Accuracy())
		}
		e.Table.AddRow(cfg.Name(), fmt.Sprintf("%.2f", cfg.StateKB()),
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)))
		e.Metrics[fmt.Sprintf("coverage_at_%.2fKB", cfg.StateKB())] = stats.Mean(covs)
		covPts = append(covPts, stats.Point{X: cfg.StateKB(), Y: 100 * stats.Mean(covs)})
		accPts = append(accPts, stats.Point{X: cfg.StateKB(), Y: 100 * stats.Mean(accs)})
	}
	e.Figure = &stats.Chart{
		Title: "predictor quality vs state budget", XLabel: "state (KB)", YLabel: "%",
		Series: []stats.Series{{Name: "coverage", Points: covPts}, {Name: "accuracy", Points: accPts}},
	}
	return e, nil
}

// elimPair runs one benchmark with elimination off and on. Both runs are
// memoized, so experiments sharing a configuration reuse the simulations.
func (w *Workspace) elimPair(name string, cfg pipeline.Config) (base, elim pipeline.Stats, err error) {
	base, err = w.RunMachine(name, cfg)
	if err != nil {
		return
	}
	cfg.Elim = true
	elim, err = w.RunMachine(name, cfg)
	return
}

// E8 measures resource-utilization reductions on the baseline machine.
func (w *Workspace) E8(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e8",
		Title: "Resource utilization reduction (baseline machine)",
		Claim: "reductions averaging over 5% and sometimes exceeding 10% in register management, register-file traffic, and data cache accesses",
		Table: stats.NewTable("bench", "eliminated%", "reg-alloc-red%",
			"rf-read-red%", "rf-write-red%", "dcache-red%", "recoveries"),
		Metrics: map[string]float64{},
	}
	cfg := pipeline.BaselineConfig()
	type pair struct{ base, elim pipeline.Stats }
	results, err := overSuite(ctx, w, func(name string) (pair, error) {
		base, elim, err := w.elimPair(name, cfg)
		return pair{base, elim}, err
	})
	if err != nil {
		return nil, err
	}
	var alloc, rfr, rfw, dc []float64
	for i, name := range SuiteNames() {
		base, elim := results[i].base, results[i].elim
		var redErr error
		red := func(metric string, b, el int64) float64 {
			v, err := reduction(b, el)
			if err != nil && redErr == nil {
				redErr = fmt.Errorf("e8 %s %s: %w", name, metric, err)
			}
			return v
		}
		ra := red("phys-allocs", base.PhysAllocs, elim.PhysAllocs)
		rr := red("rf-reads", base.RFReads, elim.RFReads)
		rw := red("rf-writes", base.RFWrites, elim.RFWrites)
		rd := red("dcache-accesses", int64(base.Cache.Accesses), int64(elim.Cache.Accesses))
		if redErr != nil {
			return nil, redErr
		}
		frac, err := safeDiv(int(elim.Eliminated), int(elim.Committed))
		if err != nil {
			return nil, fmt.Errorf("e8 %s eliminated share: %w", name, err)
		}
		alloc = append(alloc, ra)
		rfr = append(rfr, rr)
		rfw = append(rfw, rw)
		dc = append(dc, rd)
		e.Table.AddRow(name,
			stats.Pct(frac),
			stats.Pct(ra), stats.Pct(rr), stats.Pct(rw), stats.Pct(rd),
			fmt.Sprint(elim.DeadMispredicts))
	}
	e.Table.AddRow("MEAN", "", stats.Pct(stats.Mean(alloc)), stats.Pct(stats.Mean(rfr)),
		stats.Pct(stats.Mean(rfw)), stats.Pct(stats.Mean(dc)), "")
	e.Metrics["alloc_reduction_mean"] = stats.Mean(alloc)
	e.Metrics["rf_read_reduction_mean"] = stats.Mean(rfr)
	e.Metrics["rf_write_reduction_mean"] = stats.Mean(rfw)
	e.Metrics["dcache_reduction_mean"] = stats.Mean(dc)
	e.Metrics["alloc_reduction_max"] = stats.Max(alloc)
	return e, nil
}

// E9 measures the speedup on the resource-contended machine.
func (w *Workspace) E9(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e9",
		Title: "Performance on a resource-contended machine",
		Claim: "performance improves by an average of 3.6% on an architecture exhibiting resource contention",
		Table: stats.NewTable("bench", "base-IPC", "elim-IPC", "speedup%",
			"eliminated", "recoveries", "freelist-stall-red%"),
		Metrics: map[string]float64{},
	}
	cfg := pipeline.ContendedConfig()
	type pair struct{ base, elim pipeline.Stats }
	results, err := overSuite(ctx, w, func(name string) (pair, error) {
		base, elim, err := w.elimPair(name, cfg)
		return pair{base, elim}, err
	})
	if err != nil {
		return nil, err
	}
	var speedups []float64
	for i, name := range SuiteNames() {
		base, elim := results[i].base, results[i].elim
		sp := elim.IPC()/base.IPC() - 1
		speedups = append(speedups, sp)
		stallRed, err := reduction(base.StallFreeList, elim.StallFreeList)
		if err != nil {
			return nil, fmt.Errorf("e9 %s freelist-stall reduction: %w", name, err)
		}
		e.Table.AddRow(name,
			fmt.Sprintf("%.3f", base.IPC()), fmt.Sprintf("%.3f", elim.IPC()),
			fmt.Sprintf("%+.1f%%", 100*sp),
			fmt.Sprint(elim.Eliminated), fmt.Sprint(elim.DeadMispredicts),
			stats.Pct(stallRed))
	}
	e.Table.AddRow("MEAN", "", "", fmt.Sprintf("%+.1f%%", 100*stats.Mean(speedups)), "", "", "")
	e.Metrics["speedup_mean"] = stats.Mean(speedups)
	e.Metrics["speedup_max"] = stats.Max(speedups)
	e.Metrics["speedup_min"] = stats.Min(speedups)
	return e, nil
}

// E10 sweeps the degree of contention (physical register file size).
func (w *Workspace) E10(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:      "e10",
		Title:   "Speedup vs degree of resource contention",
		Claim:   "gains come from contention: an amply provisioned machine shows little speedup",
		Table:   stats.NewTable("phys-regs", "base-IPC", "elim-IPC", "speedup%"),
		Metrics: map[string]float64{},
	}
	// Sweep the register file on the otherwise amply provisioned baseline,
	// so the top end of the sweep isolates "no contention at all".
	var spPts []stats.Point
	for _, regs := range []int{40, 48, 56, 64, 96, 128} {
		cfg := pipeline.BaselineConfig()
		cfg.PhysRegs = regs
		type pair struct{ base, elim pipeline.Stats }
		results, err := overSuite(ctx, w, func(name string) (pair, error) {
			base, elim, err := w.elimPair(name, cfg)
			return pair{base, elim}, err
		})
		if err != nil {
			return nil, err
		}
		var baseIPC, elimIPC, sps []float64
		for _, r := range results {
			baseIPC = append(baseIPC, r.base.IPC())
			elimIPC = append(elimIPC, r.elim.IPC())
			sps = append(sps, r.elim.IPC()/r.base.IPC()-1)
		}
		sp := stats.Mean(sps)
		e.Table.AddRow(fmt.Sprint(regs),
			fmt.Sprintf("%.3f", stats.Mean(baseIPC)),
			fmt.Sprintf("%.3f", stats.Mean(elimIPC)),
			fmt.Sprintf("%+.1f%%", 100*sp))
		e.Metrics[fmt.Sprintf("speedup_at_%d_regs", regs)] = sp
		if regs == 128 {
			e.Metrics["speedup_uncontended"] = sp
		}
		spPts = append(spPts, stats.Point{X: float64(regs), Y: 100 * sp})
	}
	e.Figure = &stats.Chart{
		Title: "elimination speedup vs register file size", XLabel: "phys regs", YLabel: "speedup %",
		Series: []stats.Series{{Name: "speedup", Points: spPts}},
	}
	return e, nil
}

// safeDiv divides a by b. A zero denominator is reported as an explicit
// error rather than silently yielding 0: in an experiment table a 0/0
// means the underlying measurement was empty or degenerate, and masking
// it as "0%" hides the problem from the reader.
func safeDiv(a, b int) (float64, error) {
	if b == 0 {
		return 0, fmt.Errorf("core: division by zero (%d/0): empty or degenerate measurement", a)
	}
	return float64(a) / float64(b), nil
}

// reduction computes the relative reduction from base to elim. A zero
// baseline is an explicit error for the same reason as safeDiv: "0%
// reduction of nothing" would silently mask a run that measured nothing.
func reduction(base, elim int64) (float64, error) {
	if base == 0 {
		return 0, fmt.Errorf("core: reduction against a zero baseline (elim=%d)", elim)
	}
	return 1 - float64(elim)/float64(base), nil
}
