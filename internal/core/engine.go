package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// RunExperiments runs the requested experiments concurrently over the
// workspace and returns them in input order, so output stays
// deterministic no matter how the work was scheduled. Each experiment
// gets a lightweight coordinator goroutine (with panic recovery); all
// heavy per-benchmark work inside the experiments funnels through the
// workspace's bounded pool, so total parallelism stays at the pool's
// bound even with experiments × suite fan-out. The first failure cancels
// the work still pending.
func (w *Workspace) RunExperiments(ctx context.Context, ids []string) ([]*Experiment, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Build every benchmark profile once upfront: all experiments need
	// them, and preloading keeps the verbose phase report tidy.
	if err := w.Preload(ctx); err != nil {
		return nil, err
	}

	out := make([]*Experiment, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("core: experiment %s panicked: %v\n%s", id, r, debug.Stack())
					cancel()
				}
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			sp := w.Metrics.Start("experiment", id)
			start := time.Now()
			e, err := w.dispatch(ctx, id)
			sp.End(0)
			if err != nil {
				errs[i] = fmt.Errorf("experiment %s: %w", id, err)
				cancel()
				return
			}
			e.Wall = time.Since(start)
			out[i] = e
		}(i, id)
	}
	wg.Wait()

	// Deterministic error selection: lowest input index, preferring real
	// failures over cancellation casualties.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// Preload builds every suite benchmark's profile through the bounded pool.
func (w *Workspace) Preload(ctx context.Context) error {
	_, err := overSuite(ctx, w, func(name string) (struct{}, error) {
		_, err := w.ProfileOf(name)
		return struct{}{}, err
	})
	return err
}

// RunExperiment preloads the suite and dispatches one experiment by ID
// (case-sensitive, lowercase).
func (w *Workspace) RunExperiment(ctx context.Context, id string) (*Experiment, error) {
	if err := w.Preload(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	e, err := w.dispatch(ctx, id)
	if err != nil {
		return nil, err
	}
	e.Wall = time.Since(start)
	return e, nil
}

func (w *Workspace) dispatch(ctx context.Context, id string) (*Experiment, error) {
	switch id {
	case "e1":
		return w.E1(ctx)
	case "e2":
		return w.E2(ctx)
	case "e3":
		return w.E3(ctx)
	case "e4":
		return w.E4(ctx)
	case "e5":
		return w.E5(ctx)
	case "e6":
		return w.E6(ctx)
	case "e7":
		return w.E7(ctx)
	case "e8":
		return w.E8(ctx)
	case "e9":
		return w.E9(ctx)
	case "e10":
		return w.E10(ctx)
	case "e11":
		return w.E11(ctx)
	case "e12":
		return w.E12(ctx)
	case "e13":
		return w.E13(ctx)
	case "e14":
		return w.E14(ctx)
	case "e15":
		return w.E15(ctx)
	case "e16":
		return w.E16(ctx)
	case "e17":
		return w.E17(ctx)
	case "e18":
		return w.E18(ctx)
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}
