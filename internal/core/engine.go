package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// Failure is one experiment's structured failure.
type Failure struct {
	ID string
	// Err is the final error after any retries; injected faults remain
	// reachable through its chain (errors.As(*faults.Error)).
	Err error
	// Attempts is how many dispatch attempts ran.
	Attempts int
}

// RunError reports a partially failed run. It always carries the
// experiments that completed before (or despite) the failure, so callers
// never lose finished work to an unrelated error — the chaos soak relies
// on this to compare survivors against a clean run.
type RunError struct {
	// Completed holds the successfully finished experiments in input
	// order.
	Completed []*Experiment
	// Failures holds the failed experiments in input order. Experiments
	// cancelled because a sibling failed first appear with a
	// context.Canceled error.
	Failures []Failure
}

// Error summarizes the run: the failure count and the first failure that
// is not a cancellation casualty.
func (e *RunError) Error() string {
	primary := e.Failures[0].Err
	for _, f := range e.Failures {
		if !errors.Is(f.Err, context.Canceled) {
			primary = f.Err
			break
		}
	}
	return fmt.Sprintf("core: %d of %d experiments failed (%d completed): %v",
		len(e.Failures), len(e.Failures)+len(e.Completed), len(e.Completed), primary)
}

// Unwrap exposes every failure's error to errors.Is / errors.As.
func (e *RunError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// Render serializes everything deterministic about a completed
// experiment — id, title, claim, table, figure, and metrics with floats
// at full precision — so byte-for-byte comparison catches any divergence
// between runs. It is the bit-identity contract shared by the
// equivalence suites, the chaos soak, and the daemon: a server response
// for an experiment carries exactly this rendering, and must equal the
// rendering a CLI run of the same spec produces.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s title=%s claim=%s\n", e.ID, e.Title, e.Claim)
	if e.Table != nil {
		b.WriteString(e.Table.String())
	}
	if e.Figure != nil {
		b.WriteString(e.Figure.String())
	}
	keys := make([]string, 0, len(e.Metrics))
	for k := range e.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, strconv.FormatFloat(e.Metrics[k], 'g', -1, 64))
	}
	return b.String()
}

// RunExperiments runs the requested experiments concurrently over the
// workspace and returns them in input order, so output stays
// deterministic no matter how the work was scheduled. Each experiment
// gets a lightweight coordinator goroutine (with panic recovery); all
// heavy per-benchmark work inside the experiments funnels through the
// workspace's bounded pool, so total parallelism stays at the pool's
// bound even with experiments × suite fan-out.
//
// Failure semantics follow the workspace's knobs: each attempt is bounded
// by Timeout, transient failures retry per Retry, and the run degrades
// per KeepGoing. With KeepGoing false (the default) the first failure
// cancels the work still pending and RunExperiments returns (nil, *RunError)
// carrying the experiments that had already completed. With KeepGoing
// true every experiment runs to completion; the returned slice has one
// entry per requested ID — failed entries carry Err and no Table — and
// the error is a *RunError describing the failures (nil if none).
func (w *Workspace) RunExperiments(ctx context.Context, ids []string) ([]*Experiment, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Build every benchmark profile once upfront: all experiments need
	// them, and preloading keeps the verbose phase report tidy. Transient
	// build failures retry here; under KeepGoing a benchmark that still
	// fails is left for the experiments that need it to report.
	if err := w.Preload(ctx); err != nil && !w.KeepGoing {
		return nil, err
	}

	out := make([]*Experiment, len(ids))
	failures := make([]*Failure, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			e, attempts, err := w.runOne(ctx, id)
			if err != nil {
				failures[i] = &Failure{ID: id, Err: fmt.Errorf("experiment %s: %w", id, err), Attempts: attempts}
				w.Metrics.Add(metrics.CounterExperimentFailures, 1)
				if !w.KeepGoing {
					cancel()
				}
				return
			}
			e.Attempts = attempts
			out[i] = e
		}(i, id)
	}
	wg.Wait()

	runErr := &RunError{}
	for i, f := range failures {
		if f != nil {
			runErr.Failures = append(runErr.Failures, *f)
		} else if out[i] != nil {
			runErr.Completed = append(runErr.Completed, out[i])
		}
	}
	if len(runErr.Failures) == 0 {
		return out, nil
	}
	if !w.KeepGoing {
		return nil, runErr
	}
	// Partial-results mode: every requested ID gets an entry; failed ones
	// carry their error in place of tables and metrics.
	for i, f := range failures {
		if f != nil {
			out[i] = &Experiment{ID: f.ID, Err: f.Err, Attempts: f.Attempts}
		}
	}
	return out, runErr
}

// runOne runs one experiment with per-attempt deadlines and transient
// retry, reporting wall time across all attempts.
func (w *Workspace) runOne(ctx context.Context, id string) (*Experiment, int, error) {
	sp := w.Metrics.Start("experiment", id)
	start := time.Now()
	var e *Experiment
	attempts, err := retryTransient(ctx, w.Retry, w.Metrics, func(ctx context.Context) error {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if w.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, w.Timeout)
		}
		defer cancel()
		var aerr error
		e, aerr = w.dispatchSafe(actx, id)
		return aerr
	})
	sp.End(0)
	if err != nil {
		return nil, attempts, err
	}
	e.Wall = time.Since(start)
	return e, attempts, nil
}

// dispatchSafe is dispatch with panic containment: a panicking experiment
// (or an injected panic that escaped deeper recovery layers) becomes an
// error whose chain still reaches the panic value.
func (w *Workspace) dispatchSafe(ctx context.Context, id string) (e *Experiment, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, recoveredError(fmt.Sprintf("core: experiment %s panicked", id), r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w.dispatch(ctx, id)
}

// Preload builds every suite benchmark's profile through the bounded
// pool, retrying transient build failures per the workspace policy.
func (w *Workspace) Preload(ctx context.Context) error {
	_, err := overSuite(ctx, w, func(name string) (struct{}, error) {
		_, err := retryTransient(ctx, w.Retry, w.Metrics, func(context.Context) error {
			_, err := w.ProfileOf(name)
			return err
		})
		return struct{}{}, err
	})
	return err
}

// RunExperiment preloads the suite and dispatches one experiment by ID
// (case-sensitive, lowercase) under the workspace's timeout and retry
// policy.
func (w *Workspace) RunExperiment(ctx context.Context, id string) (*Experiment, error) {
	if err := w.Preload(ctx); err != nil {
		return nil, err
	}
	e, attempts, err := w.runOne(ctx, id)
	if err != nil {
		return nil, err
	}
	e.Attempts = attempts
	return e, nil
}

// IsTransient reports whether an error is worth retrying; it is
// faults.IsTransient re-exported so engine callers need not import the
// injector package.
func IsTransient(err error) bool { return faults.IsTransient(err) }

func (w *Workspace) dispatch(ctx context.Context, id string) (*Experiment, error) {
	switch id {
	case "e1":
		return w.E1(ctx)
	case "e2":
		return w.E2(ctx)
	case "e3":
		return w.E3(ctx)
	case "e4":
		return w.E4(ctx)
	case "e5":
		return w.E5(ctx)
	case "e6":
		return w.E6(ctx)
	case "e7":
		return w.E7(ctx)
	case "e8":
		return w.E8(ctx)
	case "e9":
		return w.E9(ctx)
	case "e10":
		return w.E10(ctx)
	case "e11":
		return w.E11(ctx)
	case "e12":
		return w.E12(ctx)
	case "e13":
		return w.E13(ctx)
	case "e14":
		return w.E14(ctx)
	case "e15":
		return w.E15(ctx)
	case "e16":
		return w.E16(ctx)
	case "e17":
		return w.E17(ctx)
	case "e18":
		return w.E18(ctx)
	case "e19":
		return w.E19(ctx)
	case "e20":
		return w.E20(ctx)
	case "e21":
		return w.E21(ctx)
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}
