// Package core is the facade tying the substrates together: it runs a
// workload through the emulator, the deadness oracle, the dead-instruction
// predictor, and the pipeline timing model, and exposes one driver per
// experiment (E1-E21) of DESIGN.md's experiment index.
package core

import (
	"context"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultBudget is the per-benchmark dynamic instruction budget used by
// the experiment drivers.
const DefaultBudget = 1_000_000

// ProfileResult bundles everything a trace-level analysis produces.
type ProfileResult struct {
	Bench     string
	Prog      *program.Program
	Trace     *trace.Trace
	Analysis  *deadness.Analysis
	Summary   deadness.Summary
	Locality  deadness.Locality
	PassStats compiler.PassStats

	// opts records the compile-option override the profile was built with
	// (nil = the workload's own options), so the persistent artifact tier
	// can recompile the program on decode instead of serializing it.
	opts *compiler.Options
}

// SizeBytes estimates the resident footprint charged against the
// workspace's artifact-cache budget: the columnar trace dominates, with
// the per-record analysis arrays second.
func (r *ProfileResult) SizeBytes() int64 {
	var n int64 = 4096 // summaries, locality, headers
	if r.Trace != nil {
		n += r.Trace.SizeBytes()
	}
	if r.Analysis != nil {
		n += r.Analysis.SizeBytes()
	}
	return n
}

// ReleaseArtifact returns the profile's pooled trace chunks to the
// chunk pool when the artifact store evicts it. Only unpinned profiles
// are evicted, so no reader can still hold the trace.
func (r *ProfileResult) ReleaseArtifact() {
	if r.Trace != nil {
		r.Trace.Release()
	}
}

// Profile builds a benchmark (optionally overriding its compile options),
// runs it for at most budget instructions, and runs the deadness oracle.
// The analyze stage shards across GOMAXPROCS by default; use
// ProfileShards to pin the shard count.
func Profile(p workload.Profile, opts *compiler.Options, budget int) (*ProfileResult, error) {
	return profileWith(p, opts, budget, 0, nil)
}

// ProfileShards is Profile with an explicit analyze shard count
// (0 = GOMAXPROCS, 1 = the serial in-line pass). The analysis is
// bit-identical for every shard count; the knob only trades memory and
// scheduling overhead against analyze-stage parallelism.
func ProfileShards(p workload.Profile, opts *compiler.Options, budget, shards int) (*ProfileResult, error) {
	return profileWith(p, opts, budget, shards, nil)
}

// profileWith is Profile with phase-level observability: compile, emulate,
// link, and analyze each report wall time, instruction throughput, and
// allocation deltas through the (nil-safe) collector.
func profileWith(p workload.Profile, opts *compiler.Options, budget, shards int, mc *metrics.Collector) (*ProfileResult, error) {
	sp := mc.Start(metrics.PhaseCompile, p.Name)
	prog, passStats, err := p.Compile(opts)
	sp.End(0)
	if err != nil {
		return nil, err
	}
	return profileProgramWith(context.Background(), p.Name, prog, passStats, budget, shards, mc)
}

// ProfileProgram runs the oracle analysis over an already-compiled program.
func ProfileProgram(name string, prog *program.Program, passStats compiler.PassStats, budget int) (*ProfileResult, error) {
	return profileProgramWith(context.Background(), name, prog, passStats, budget, 0, nil)
}

func profileProgramWith(ctx context.Context, name string, prog *program.Program, passStats compiler.PassStats, budget, shards int, mc *metrics.Collector) (*ProfileResult, error) {
	// The streaming path emulates and runs the sharded link+analyze pass
	// concurrently, chunks dispatched as they fill; the spans it records
	// keep emulation and the non-overlapped analysis tail separate. A ctx
	// cancellation aborts the emulation within a few thousand
	// instructions and releases every pooled resource the partial run
	// held (trace chunk arenas, writer-map pages).
	tr, a, _, err := emu.CollectAnalyzedShardsCtx(ctx, prog, budget, shards, mc, name)
	if err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", name, err)
	}
	res := &ProfileResult{
		Bench:     name,
		Prog:      prog,
		Trace:     tr,
		Analysis:  a,
		Summary:   a.Summarize(tr, prog),
		PassStats: passStats,
	}
	res.Locality = deadness.ComputeLocality(a.StaticProfile(tr), nil)
	return res, nil
}

// EvalPredictor runs a dead-instruction predictor configuration over a
// benchmark's trace (the predicted-path CFI flavor, or the oracle-path
// flavor when actualPath is set), routed through the dip.Predictor
// registry.
func EvalPredictor(p workload.Profile, cfg dip.Config, budget int, actualPath bool) (dip.Result, error) {
	spec := dip.Spec{Flavor: dip.FlavorCFI, Config: cfg}
	if actualPath {
		spec.Flavor = dip.FlavorOracle
	}
	pred, err := spec.New()
	if err != nil {
		return dip.Result{}, err
	}
	prof, err := Profile(p, nil, budget)
	if err != nil {
		return dip.Result{}, err
	}
	return pred.Evaluate(prof.Trace, prof.Analysis)
}
