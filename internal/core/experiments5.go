package core

import (
	"context"
	"fmt"

	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/stats"
)

// This file holds the ineffectuality experiments (E19-E21): the
// generalization of deadness to silent stores and trivial operations, the
// steering predictor that learns it, and the two-cluster machine that
// exploits it (DESIGN.md §11).

// E19 measures ineffectuality rates by class and provenance: how much
// dynamic work beyond the strictly dead produces no architectural change
// — stores that rewrite the bytes already in memory, and operations whose
// result equals one of their inputs.
func (w *Workspace) E19(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e19",
		Title: "Ineffectuality rates by class and provenance",
		Claim: "extension: silent stores and trivial operations widen the paper's dead fraction into a strictly larger pool of removable work",
		Table: stats.NewTable("bench", "dead%", "silent-stores", "silent%-of-stores",
			"trivial-ops", "ineff%", "dead+ineff-reach%"),
		Metrics: map[string]float64{},
	}
	results, err := overSuite(ctx, w, func(name string) (deadness.Summary, error) {
		var s deadness.Summary
		err := w.WithProfile(name, func(res *ProfileResult) error {
			s = res.Summary
			return nil
		})
		return s, err
	})
	if err != nil {
		return nil, err
	}
	var deadF, ineffF, silentRate []float64
	var pts []stats.Point
	var byProv [program.NumProvenances]deadness.ProvCount
	for i, name := range SuiteNames() {
		s := results[i]
		df, nf := s.DeadFraction(), s.IneffFraction()
		deadF = append(deadF, df)
		ineffF = append(ineffF, nf)
		sr := 0.0
		if s.Stores > 0 {
			sr = float64(s.SilentStores) / float64(s.Stores)
		}
		silentRate = append(silentRate, sr)
		// Dead and ineffectual overlap (a dead silent store is both), so the
		// combined reach is bounded above by their sum; the table reports
		// that bound as the widened pool the mechanisms can share.
		e.Table.AddRow(name, stats.Pct(df),
			fmt.Sprint(s.SilentStores), stats.Pct(sr),
			fmt.Sprint(s.TrivialOps), stats.Pct(nf), stats.Pct(df+nf))
		pts = append(pts, stats.Point{X: 100 * df, Y: 100 * nf})
		for p := range byProv {
			byProv[p].Dyn += s.ByProv[p].Dyn
			byProv[p].Silent += s.ByProv[p].Silent
			byProv[p].Trivial += s.ByProv[p].Trivial
		}
	}
	e.Table.AddRow("MEAN", stats.Pct(stats.Mean(deadF)), "", stats.Pct(stats.Mean(silentRate)),
		"", stats.Pct(stats.Mean(ineffF)), stats.Pct(stats.Mean(deadF)+stats.Mean(ineffF)))
	// Provenance attribution over the whole suite: which compiler
	// transformations emit the ineffectual work.
	for p, c := range byProv {
		if c.Silent+c.Trivial == 0 {
			continue
		}
		prov := program.Provenance(p)
		e.Table.AddRow("prov:"+prov.String(), "",
			fmt.Sprint(c.Silent), "", fmt.Sprint(c.Trivial), "", "")
		e.Metrics[fmt.Sprintf("ineff_prov_%s", prov)] =
			float64(c.Silent + c.Trivial)
	}
	e.Metrics["ineff_mean"] = stats.Mean(ineffF)
	e.Metrics["ineff_max"] = stats.Max(ineffF)
	e.Metrics["silent_store_rate_mean"] = stats.Mean(silentRate)
	e.Metrics["dead_mean"] = stats.Mean(deadF)
	e.Figure = &stats.Chart{
		Title: "ineffectual vs dead fraction per benchmark", XLabel: "dead %", YLabel: "ineffectual %",
		Series: []stats.Series{{Name: "benchmarks", Points: pts}},
	}
	return e, nil
}

// E20 sweeps the steering predictor: every registered direction predictor
// reinterpreted over ineffectuality outcomes, measuring how well a per-PC
// binary predictor learns which instances are ineffectual.
func (w *Workspace) E20(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:      "e20",
		Title:   "Steering-predictor accuracy and coverage",
		Claim:   "extension: ineffectuality is strongly PC-correlated, so small per-PC predictors steer accurately; history-indexed tables add little",
		Table:   stats.NewTable("steer predictor", "coverage%", "accuracy%", "state-KB"),
		Metrics: map[string]float64{},
	}
	dirs := []string{"static-taken", "bimodal-4k", "twolevel-4k", "gshare-4k", "tournament-4k"}
	var covPts, accPts []stats.Point
	for _, dir := range dirs {
		dir := dir
		results, err := overSuite(ctx, w, func(name string) (dip.Result, error) {
			return w.EvalPredictorCtx(ctx, name, dip.Spec{Flavor: dip.FlavorSteer, Dir: dir})
		})
		if err != nil {
			return nil, err
		}
		var covs, accs []float64
		bits := 0
		for _, r := range results {
			covs = append(covs, r.Coverage())
			accs = append(accs, r.Accuracy())
			bits = r.StateBits
		}
		kb := float64(bits) / 8192
		e.Table.AddRow(dir, stats.Pct(stats.Mean(covs)), stats.Pct(stats.Mean(accs)),
			fmt.Sprintf("%.2f", kb))
		e.Metrics["steer_coverage_"+dir] = stats.Mean(covs)
		e.Metrics["steer_accuracy_"+dir] = stats.Mean(accs)
		covPts = append(covPts, stats.Point{X: kb, Y: 100 * stats.Mean(covs)})
		accPts = append(accPts, stats.Point{X: kb, Y: 100 * stats.Mean(accs)})
	}
	e.Figure = &stats.Chart{
		Title: "steering quality vs state budget", XLabel: "state (KB)", YLabel: "%",
		Series: []stats.Series{{Name: "coverage", Points: covPts}, {Name: "accuracy", Points: accPts}},
	}
	return e, nil
}

// E21 pits the two-cluster steered machine against the paper's
// elimination-only mechanism on the contended configuration: elimination
// removes dead work outright, steering degrades ineffectual work onto
// narrow lanes, and the two compose.
func (w *Workspace) E21(ctx context.Context) (*Experiment, error) {
	e := &Experiment{
		ID:    "e21",
		Title: "Two-cluster steering vs elimination-only",
		Claim: "extension: steering predicted-ineffectual work to a narrow cluster relieves full-width issue pressure and composes with dead-instruction elimination",
		Table: stats.NewTable("bench", "base-IPC", "elim-IPC", "steer-IPC", "both-IPC",
			"narrow-share%", "steer-misp%"),
		Metrics: map[string]float64{},
	}
	contended := pipeline.ContendedConfig()
	clustered := pipeline.ClusteredConfig()
	type quad struct{ base, elim, steer, both pipeline.Stats }
	results, err := overSuite(ctx, w, func(name string) (quad, error) {
		var q quad
		var err error
		if q.base, q.elim, err = w.elimPair(name, contended); err != nil {
			return q, err
		}
		if q.steer, err = w.RunMachineCtx(ctx, name, clustered); err != nil {
			return q, err
		}
		cfg := clustered
		cfg.Elim = true
		q.both, err = w.RunMachineCtx(ctx, name, cfg)
		return q, err
	})
	if err != nil {
		return nil, err
	}
	var spElim, spSteer, spBoth, narrowShare []float64
	for i, name := range SuiteNames() {
		q := results[i]
		spElim = append(spElim, q.elim.IPC()/q.base.IPC()-1)
		spSteer = append(spSteer, q.steer.IPC()/q.base.IPC()-1)
		spBoth = append(spBoth, q.both.IPC()/q.base.IPC()-1)
		share := 0.0
		if q.steer.Committed > 0 {
			share = float64(q.steer.ClusterCommitted[1]) / float64(q.steer.Committed)
		}
		narrowShare = append(narrowShare, share)
		misp := 0.0
		if q.steer.SteeredNarrow > 0 {
			misp = float64(q.steer.SteerMispredicts) / float64(q.steer.SteeredNarrow)
		}
		e.Table.AddRow(name,
			fmt.Sprintf("%.3f", q.base.IPC()), fmt.Sprintf("%.3f", q.elim.IPC()),
			fmt.Sprintf("%.3f", q.steer.IPC()), fmt.Sprintf("%.3f", q.both.IPC()),
			stats.Pct(share), stats.Pct(misp))
	}
	e.Table.AddRow("MEAN (speedup)", "",
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(spElim)),
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(spSteer)),
		fmt.Sprintf("%+.1f%%", 100*stats.Mean(spBoth)),
		stats.Pct(stats.Mean(narrowShare)), "")
	e.Metrics["speedup_elim_mean"] = stats.Mean(spElim)
	e.Metrics["speedup_steer_mean"] = stats.Mean(spSteer)
	e.Metrics["speedup_both_mean"] = stats.Mean(spBoth)
	e.Metrics["narrow_share_mean"] = stats.Mean(narrowShare)
	return e, nil
}
