package bpred

import (
	"math/rand"
	"testing"
)

func TestTournamentLearnsBias(t *testing.T) {
	p := NewTournament(10, 8)
	for i := 0; i < 20; i++ {
		p.Update(5, true)
	}
	if !p.Predict(5) {
		t.Error("did not learn taken bias")
	}
}

func TestTournamentLearnsAlternation(t *testing.T) {
	// Alternating branches favor the global component; the chooser must
	// route to it.
	p := NewTournament(12, 10)
	taken := false
	correct := 0
	const n = 3000
	for i := 0; i < n; i++ {
		taken = !taken
		if p.Predict(9) == taken {
			correct++
		}
		p.Update(9, taken)
	}
	if correct < n*85/100 {
		t.Errorf("alternation accuracy = %d/%d", correct, n)
	}
}

func TestTournamentBeatsComponentsOnMixedStream(t *testing.T) {
	// A mix of heavily biased branches (bimodal-friendly) and pattern
	// branches (gshare-friendly) with deliberate aliasing pressure: the
	// chooser should do at least as well as the best single component.
	run := func(p DirPredictor) int {
		rng := rand.New(rand.NewSource(3))
		correct := 0
		for i := 0; i < 20000; i++ {
			pc := rng.Intn(64)
			var taken bool
			if pc%2 == 0 {
				taken = true // biased
			} else {
				taken = i%3 == 0 // short pattern
			}
			if p.Predict(pc) == taken {
				correct++
			}
			p.Update(pc, taken)
		}
		return correct
	}
	tour := run(NewTournament(10, 8))
	gsh := run(NewGshare(10, 8))
	bim := run(NewBimodal(10))
	best := gsh
	if bim > best {
		best = bim
	}
	// Allow a small warmup deficit.
	if tour < best-300 {
		t.Errorf("tournament %d far below best component %d (gshare %d, bimodal %d)",
			tour, best, gsh, bim)
	}
}

func TestTournamentStateBitsAndName(t *testing.T) {
	p := NewTournament(4, 4)
	want := (2*16 + 4) + 2*16 + 2*16 // gshare + bimodal + chooser
	if got := p.StateBits(); got != want {
		t.Errorf("StateBits = %d, want %d", got, want)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}
