package bpred

import (
	"strings"
	"testing"
)

func TestDirRegistry(t *testing.T) {
	names := DirNames()
	if len(names) == 0 {
		t.Fatal("no registered direction predictors")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("DirNames not sorted: %v", names)
		}
	}
	for _, name := range names {
		d, err := NewDirByName(name)
		if err != nil || d == nil {
			t.Errorf("NewDirByName(%q) = %v, %v", name, d, err)
		}
	}
	// Two constructions are independent instances, not shared state.
	a, _ := NewDirByName("gshare-4k")
	b, _ := NewDirByName("gshare-4k")
	if a == b {
		t.Error("NewDirByName returned a shared predictor instance")
	}

	_, err := NewDirByName("no-such-predictor")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "gshare-4k") {
		t.Errorf("error %q does not list the registered names", err)
	}
}
