package bpred

import "fmt"

// BTB is a direct-mapped, tagged branch target buffer. The pipeline charges
// a fetch redirect when a taken control transfer misses in the BTB even if
// its direction was predicted correctly.
type BTB struct {
	tags    []int32
	targets []int32
	mask    int
	tagBits int
}

// NewBTB creates a BTB with 2^logEntries entries and tagBits-bit tags.
func NewBTB(logEntries, tagBits int) *BTB {
	n := 1 << logEntries
	b := &BTB{
		tags:    make([]int32, n),
		targets: make([]int32, n),
		mask:    n - 1,
		tagBits: tagBits,
	}
	for i := range b.tags {
		b.tags[i] = -1
	}
	return b
}

func (b *BTB) split(pc int) (idx int, tag int32) {
	idx = pc & b.mask
	tag = int32((pc >> logOf(b.mask+1)) & (1<<b.tagBits - 1))
	return
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc int) (target int, ok bool) {
	idx, tag := b.split(pc)
	if b.tags[idx] != tag {
		return 0, false
	}
	return int(b.targets[idx]), true
}

// Update records the observed target of a taken control transfer.
func (b *BTB) Update(pc, target int) {
	idx, tag := b.split(pc)
	b.tags[idx] = tag
	b.targets[idx] = int32(target)
}

// StateBits returns the hardware budget of the BTB in bits, assuming
// 32-bit targets.
func (b *BTB) StateBits() int { return len(b.tags) * (b.tagBits + 32) }

// Name identifies the configuration.
func (b *BTB) Name() string { return fmt.Sprintf("btb-%d", len(b.tags)) }

func logOf(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// Stats wraps a direction predictor and counts accuracy.
type Stats struct {
	DirPredictor
	Lookups    int
	Mispredict int
}

// NewStats wraps p.
func NewStats(p DirPredictor) *Stats { return &Stats{DirPredictor: p} }

// PredictAndTrain predicts pc, trains with the actual outcome, and records
// accuracy. It returns the prediction.
func (s *Stats) PredictAndTrain(pc int, taken bool) bool {
	pred := s.Predict(pc)
	s.Lookups++
	if pred != taken {
		s.Mispredict++
	}
	s.Update(pc, taken)
	return pred
}

// Accuracy returns the fraction of correct predictions.
func (s *Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return 1 - float64(s.Mispredict)/float64(s.Lookups)
}
