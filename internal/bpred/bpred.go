// Package bpred implements the branch direction predictors and branch
// target buffer used by the pipeline front end, and — central to this
// reproduction — the source of the *future control-flow information* that
// the dead-instruction predictor consumes: predicted directions for the
// next few branches after a given instruction.
package bpred

import "fmt"

// Counter is an n-bit saturating counter. Width is fixed at 2 bits, the
// standard Smith counter; Taken is the MSB.
type Counter uint8

const counterMax = 3

// Inc saturates upward.
func (c *Counter) Inc() {
	if *c < counterMax {
		*c++
	}
}

// Dec saturates downward.
func (c *Counter) Dec() {
	if *c > 0 {
		*c--
	}
}

// Taken reports the predicted direction.
func (c Counter) Taken() bool { return c >= 2 }

// Train moves the counter toward the outcome.
func (c *Counter) Train(taken bool) {
	if taken {
		c.Inc()
	} else {
		c.Dec()
	}
}

// DirPredictor predicts conditional branch directions.
//
// Predict must not mutate state: all history updates happen in Update,
// with the branch's actual outcome. This matches a trace-driven front end
// where global history is repaired at resolution.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc int) bool
	// Update trains the predictor with the actual outcome.
	Update(pc int, taken bool)
	// StateBits returns the hardware budget of the predictor in bits.
	StateBits() int
	// Name identifies the configuration for reports.
	Name() string
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	counters []Counter
	mask     int
}

// NewBimodal creates a bimodal predictor with 2^logEntries counters,
// initialized weakly taken.
func NewBimodal(logEntries int) *Bimodal {
	n := 1 << logEntries
	b := &Bimodal{counters: make([]Counter, n), mask: n - 1}
	for i := range b.counters {
		b.counters[i] = 2
	}
	return b
}

func (b *Bimodal) index(pc int) int { return pc & b.mask }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc int) bool { return b.counters[b.index(pc)].Taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc int, taken bool) { b.counters[b.index(pc)].Train(taken) }

// StateBits implements DirPredictor.
func (b *Bimodal) StateBits() int { return 2 * len(b.counters) }

// Name implements DirPredictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.counters)) }

// Gshare XORs global history with the PC to index a counter table.
type Gshare struct {
	counters []Counter
	mask     uint32
	ghr      uint32
	histBits int
}

// NewGshare creates a gshare predictor with 2^logEntries counters and
// histBits bits of global history.
func NewGshare(logEntries, histBits int) *Gshare {
	n := 1 << logEntries
	g := &Gshare{counters: make([]Counter, n), mask: uint32(n - 1), histBits: histBits}
	for i := range g.counters {
		g.counters[i] = 2
	}
	return g
}

func (g *Gshare) index(pc int) uint32 {
	h := g.ghr & (1<<g.histBits - 1)
	return (uint32(pc) ^ h) & g.mask
}

// Predict implements DirPredictor.
func (g *Gshare) Predict(pc int) bool { return g.counters[g.index(pc)].Taken() }

// Update implements DirPredictor; it trains the counter and shifts the
// outcome into the global history register.
func (g *Gshare) Update(pc int, taken bool) {
	g.counters[g.index(pc)].Train(taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
}

// StateBits implements DirPredictor.
func (g *Gshare) StateBits() int { return 2*len(g.counters) + g.histBits }

// Name implements DirPredictor.
func (g *Gshare) Name() string {
	return fmt.Sprintf("gshare-%d-h%d", len(g.counters), g.histBits)
}

// TwoLevel is a local-history (PAg-style) predictor: a PC-indexed table of
// per-branch history registers selects entries in a shared pattern table.
type TwoLevel struct {
	hist     []uint16
	pattern  []Counter
	histBits int
	hMask    int
	pMask    uint32
}

// NewTwoLevel creates a local predictor with 2^logHist history registers of
// histBits bits each, and a 2^histBits-entry pattern table.
func NewTwoLevel(logHist, histBits int) *TwoLevel {
	if histBits > 16 {
		histBits = 16
	}
	p := &TwoLevel{
		hist:     make([]uint16, 1<<logHist),
		pattern:  make([]Counter, 1<<histBits),
		histBits: histBits,
		hMask:    1<<logHist - 1,
		pMask:    uint32(1<<histBits - 1),
	}
	for i := range p.pattern {
		p.pattern[i] = 2
	}
	return p
}

// Predict implements DirPredictor.
func (p *TwoLevel) Predict(pc int) bool {
	h := uint32(p.hist[pc&p.hMask]) & p.pMask
	return p.pattern[h].Taken()
}

// Update implements DirPredictor.
func (p *TwoLevel) Update(pc int, taken bool) {
	hi := pc & p.hMask
	h := uint32(p.hist[hi]) & p.pMask
	p.pattern[h].Train(taken)
	p.hist[hi] = p.hist[hi]<<1 | boolBit(taken)
}

// StateBits implements DirPredictor.
func (p *TwoLevel) StateBits() int {
	return len(p.hist)*p.histBits + 2*len(p.pattern)
}

// Name implements DirPredictor.
func (p *TwoLevel) Name() string {
	return fmt.Sprintf("twolevel-%d-h%d", len(p.hist), p.histBits)
}

// Static predicts a fixed direction; the zero value predicts not-taken.
type Static struct{ TakenAlways bool }

// Predict implements DirPredictor.
func (s Static) Predict(int) bool { return s.TakenAlways }

// Update implements DirPredictor (no state).
func (Static) Update(int, bool) {}

// StateBits implements DirPredictor.
func (Static) StateBits() int { return 0 }

// Name implements DirPredictor.
func (s Static) Name() string {
	if s.TakenAlways {
		return "static-taken"
	}
	return "static-nottaken"
}

func boolBit(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
