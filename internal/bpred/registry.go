package bpred

import (
	"fmt"
	"sort"
)

// dirMakers is the registry of named direction-predictor configurations.
// Names are stable identifiers used in experiment tables (E11) and in
// dip.Spec digests, so renaming one changes artifact addresses.
var dirMakers = map[string]func() DirPredictor{
	"static-taken":  func() DirPredictor { return Static{TakenAlways: true} },
	"bimodal-4k":    func() DirPredictor { return NewBimodal(12) },
	"twolevel-4k":   func() DirPredictor { return NewTwoLevel(12, 10) },
	"gshare-4k":     func() DirPredictor { return NewGshare(12, 10) },
	"tournament-4k": func() DirPredictor { return NewTournament(12, 10) },
}

// DirNames lists the registered direction-predictor names, sorted.
func DirNames() []string {
	names := make([]string, 0, len(dirMakers))
	for name := range dirMakers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewDirByName builds a fresh instance of a registered direction
// predictor. Instances are stateful, so every evaluation that needs
// deterministic results must construct its own.
func NewDirByName(name string) (DirPredictor, error) {
	mk, ok := dirMakers[name]
	if !ok {
		return nil, fmt.Errorf("bpred: unknown direction predictor %q (have %v)", name, DirNames())
	}
	return mk(), nil
}
