package bpred_test

import (
	"fmt"

	"repro/internal/bpred"
)

func ExampleGshare() {
	g := bpred.NewGshare(10, 6)
	// An alternating branch is unpredictable without history; gshare
	// learns it.
	taken := false
	correct := 0
	for i := 0; i < 1000; i++ {
		taken = !taken
		if g.Predict(0x44) == taken {
			correct++
		}
		g.Update(0x44, taken)
	}
	fmt.Println("learned the alternation:", correct > 900)
	// Output: learned the alternation: true
}

func ExampleRAS() {
	r := bpred.NewRAS(8)
	r.Push(101) // call site A returns to 101
	r.Push(205) // nested call returns to 205
	t1, _ := r.Pop()
	t2, _ := r.Pop()
	fmt.Println(t1, t2)
	// Output: 205 101
}
