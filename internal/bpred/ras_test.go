package bpred

import "testing"

func TestRASPushPop(t *testing.T) {
	r := NewRAS(8)
	r.Push(100)
	r.Push(200)
	if tgt, ok := r.Pop(); !ok || tgt != 200 {
		t.Errorf("pop = %d,%v; want 200,true", tgt, ok)
	}
	if tgt, ok := r.Pop(); !ok || tgt != 100 {
		t.Errorf("pop = %d,%v; want 100,true", tgt, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty stack succeeded")
	}
	if r.Underflows != 1 {
		t.Errorf("underflows = %d, want 1", r.Underflows)
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if tgt, _ := r.Pop(); tgt != 3 {
		t.Errorf("pop = %d, want 3", tgt)
	}
	if tgt, _ := r.Pop(); tgt != 2 {
		t.Errorf("pop = %d, want 2", tgt)
	}
	// The overwritten entry is gone.
	if _, ok := r.Pop(); ok {
		t.Error("stale entry survived overflow")
	}
}

func TestRASMinimumDepth(t *testing.T) {
	r := NewRAS(0)
	if r.Depth() != 1 {
		t.Errorf("depth = %d, want clamped 1", r.Depth())
	}
	r.Push(7)
	if tgt, ok := r.Pop(); !ok || tgt != 7 {
		t.Errorf("pop = %d,%v", tgt, ok)
	}
}

func TestRASNestedPattern(t *testing.T) {
	// Simulate call/return nesting: targets must come back LIFO.
	r := NewRAS(16)
	var expect []int
	for depth := 0; depth < 10; depth++ {
		pc := 1000 + depth
		r.Push(pc)
		expect = append(expect, pc)
	}
	for i := len(expect) - 1; i >= 0; i-- {
		if tgt, ok := r.Pop(); !ok || tgt != expect[i] {
			t.Fatalf("pop %d = %d,%v; want %d", i, tgt, ok, expect[i])
		}
	}
}
