package bpred

import (
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	var c Counter
	c.Dec()
	if c != 0 {
		t.Errorf("dec below zero: %d", c)
	}
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c != counterMax {
		t.Errorf("inc above max: %d", c)
	}
	if !c.Taken() {
		t.Error("saturated counter not taken")
	}
	c = 1
	if c.Taken() {
		t.Error("weak not-taken reported taken")
	}
}

func TestCounterHysteresis(t *testing.T) {
	c := Counter(2) // weakly taken
	c.Train(false)
	if c.Taken() {
		t.Error("one not-taken should flip weak counter")
	}
	c = Counter(3)
	c.Train(false)
	if !c.Taken() {
		t.Error("strong counter flipped by single outcome")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	for i := 0; i < 10; i++ {
		b.Update(42, true)
	}
	if !b.Predict(42) {
		t.Error("did not learn taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(42, false)
	}
	if b.Predict(42) {
		t.Error("did not learn not-taken bias")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(4) // 16 entries
	for i := 0; i < 8; i++ {
		b.Update(3, true)
	}
	if !b.Predict(3 + 16) { // aliases to the same counter
		t.Error("aliased PC should share the counter")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// A branch alternating T,N,T,N is unpredictable for bimodal but
	// learnable with history.
	g := NewGshare(12, 8)
	taken := false
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken = !taken
		if g.Predict(7) == taken {
			correct++
		}
		g.Update(7, taken)
	}
	// After warmup it should be nearly perfect.
	if correct < n*9/10 {
		t.Errorf("gshare alternation accuracy = %d/%d", correct, n)
	}
}

func TestTwoLevelLearnsShortPattern(t *testing.T) {
	p := NewTwoLevel(10, 8)
	pattern := []bool{true, true, false}
	correct := 0
	const n = 3000
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		if p.Predict(9) == taken {
			correct++
		}
		p.Update(9, taken)
	}
	if correct < n*9/10 {
		t.Errorf("two-level pattern accuracy = %d/%d", correct, n)
	}
}

func TestStatic(t *testing.T) {
	if (Static{}).Predict(5) {
		t.Error("zero-value Static should predict not-taken")
	}
	if !(Static{TakenAlways: true}).Predict(5) {
		t.Error("static-taken wrong")
	}
}

func TestStateBits(t *testing.T) {
	if got := NewBimodal(10).StateBits(); got != 2048 {
		t.Errorf("bimodal bits = %d, want 2048", got)
	}
	if got := NewGshare(10, 8).StateBits(); got != 2048+8 {
		t.Errorf("gshare bits = %d, want 2056", got)
	}
	if got := NewTwoLevel(4, 8).StateBits(); got != 16*8+2*256 {
		t.Errorf("twolevel bits = %d", got)
	}
	if got := (Static{}).StateBits(); got != 0 {
		t.Errorf("static bits = %d", got)
	}
}

func TestNames(t *testing.T) {
	for _, p := range []DirPredictor{
		NewBimodal(4), NewGshare(4, 4), NewTwoLevel(4, 4), Static{},
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestPredictIsPure(t *testing.T) {
	// Predicting many times without updating must not change the answer.
	f := func(pc uint16) bool {
		g := NewGshare(8, 6)
		first := g.Predict(int(pc))
		for i := 0; i < 5; i++ {
			if g.Predict(int(pc)) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(4, 8)
	if _, ok := b.Lookup(100); ok {
		t.Error("empty BTB hit")
	}
	b.Update(100, 7)
	if tgt, ok := b.Lookup(100); !ok || tgt != 7 {
		t.Errorf("lookup = %d,%v; want 7,true", tgt, ok)
	}
	// A conflicting PC (same index, different tag) evicts.
	b.Update(100+16*3, 9)
	if _, ok := b.Lookup(100); ok {
		t.Error("evicted entry still hits")
	}
	if tgt, ok := b.Lookup(100 + 48); !ok || tgt != 9 {
		t.Errorf("new entry = %d,%v", tgt, ok)
	}
	if b.StateBits() != 16*(8+32) {
		t.Errorf("btb bits = %d", b.StateBits())
	}
}

func TestStatsAccuracy(t *testing.T) {
	s := NewStats(Static{TakenAlways: true})
	outcomes := []bool{true, true, false, true}
	for i, o := range outcomes {
		s.PredictAndTrain(i, o)
	}
	if s.Lookups != 4 || s.Mispredict != 1 {
		t.Errorf("lookups=%d mispredict=%d", s.Lookups, s.Mispredict)
	}
	if s.Accuracy() != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", s.Accuracy())
	}
	empty := NewStats(Static{})
	if empty.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}
