package bpred

import "fmt"

// Tournament is a McFarling-style hybrid: a global (gshare) and a local
// (bimodal) component, with a per-PC chooser table of 2-bit counters that
// learns which component to trust for each branch. It is the strongest
// direction predictor in this repository and is used by the branch-
// predictor-sensitivity ablation (experiment E11): better future-direction
// predictions mean cleaner path signatures for the dead-instruction
// predictor.
type Tournament struct {
	global  *Gshare
	local   *Bimodal
	chooser []Counter // >=2 selects global
	mask    int
}

// NewTournament builds a tournament predictor with 2^logEntries entries in
// each component and the chooser.
func NewTournament(logEntries, histBits int) *Tournament {
	n := 1 << logEntries
	t := &Tournament{
		global:  NewGshare(logEntries, histBits),
		local:   NewBimodal(logEntries),
		chooser: make([]Counter, n),
		mask:    n - 1,
	}
	for i := range t.chooser {
		t.chooser[i] = 2 // weakly prefer global
	}
	return t
}

// Predict implements DirPredictor.
func (t *Tournament) Predict(pc int) bool {
	if t.chooser[pc&t.mask].Taken() {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update implements DirPredictor: both components train; the chooser moves
// toward whichever component was right when they disagree.
func (t *Tournament) Update(pc int, taken bool) {
	g := t.global.Predict(pc)
	l := t.local.Predict(pc)
	if g != l {
		t.chooser[pc&t.mask].Train(g == taken)
	}
	t.global.Update(pc, taken)
	t.local.Update(pc, taken)
}

// StateBits implements DirPredictor.
func (t *Tournament) StateBits() int {
	return t.global.StateBits() + t.local.StateBits() + 2*len(t.chooser)
}

// Name implements DirPredictor.
func (t *Tournament) Name() string {
	return fmt.Sprintf("tournament-%d", len(t.chooser))
}
