package bpred

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/trace"
)

func collectTrace(t *testing.T, src string) *trace.Trace {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func loopTrace(t *testing.T) *trace.Trace {
	// 5-iteration countdown loop: bne taken 4 times, then not taken.
	// Dynamic stream: addi(0), then per iteration addi(pc1), bne(pc2),
	// branches at seqs 2, 4, 6, 8, 10.
	return collectTrace(t, `
main:
    addi r1, r0, 5
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r1
    halt
`)
}

func TestActualSigAfter(t *testing.T) {
	tr := loopTrace(t)
	l := NewLookahead(Static{TakenAlways: true}, tr, 8)
	// From the very start, the next 5 branches are T,T,T,T,N.
	if sig := l.ActualSigAfter(-1); sig != 0b01111 {
		t.Errorf("sig = %05b, want 01111", sig)
	}
	// After the second branch (seq 4): T,T,N remain.
	if sig := l.ActualSigAfter(4); sig != 0b011 {
		t.Errorf("sig after seq 4 = %03b, want 011", sig)
	}
	// Past the last branch: empty.
	if sig := l.ActualSigAfter(tr.Len()); sig != 0 {
		t.Errorf("sig past end = %b, want 0", sig)
	}
}

func TestSigAfterWithStaticPredictor(t *testing.T) {
	tr := loopTrace(t)
	l := NewLookahead(Static{TakenAlways: true}, tr, 4)
	if sig := l.SigAfter(-1); sig != 0b1111 {
		t.Errorf("sig = %04b, want 1111", sig)
	}
	// Only one branch beyond seq 8.
	if sig := l.SigAfter(8); sig != 0b0001 {
		t.Errorf("sig after 8 = %04b, want 0001", sig)
	}
}

func TestPredictionsAreCachedAndCounted(t *testing.T) {
	tr := loopTrace(t)
	b := NewBimodal(4)
	b.Update(2, false)
	b.Update(2, false) // strongly not-taken at the loop branch PC
	l := NewLookahead(b, tr, 8)
	// First signature predicts all 5 branches in order, training each with
	// its actual outcome: NT,NT,T,T,T vs outcomes T,T,T,T,NT.
	if sig := l.SigAfter(-1); sig != 0b11100 {
		t.Errorf("sig = %05b, want 11100", sig)
	}
	if l.Branches != 5 || l.Mispredicts != 3 {
		t.Errorf("branches=%d mispredicts=%d, want 5,3", l.Branches, l.Mispredicts)
	}
	// Re-requesting signatures does not re-predict or re-train.
	_ = l.SigAfter(-1)
	_ = l.SigAfter(4)
	if l.Branches != 5 || l.Mispredicts != 3 {
		t.Errorf("caching broken: branches=%d mispredicts=%d", l.Branches, l.Mispredicts)
	}
}

func TestPredAt(t *testing.T) {
	tr := loopTrace(t)
	l := NewLookahead(Static{TakenAlways: true}, tr, 4)
	pred, err := l.PredAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if !pred {
		t.Error("static-taken should predict taken")
	}
	if l.Branches != 1 {
		t.Errorf("branches = %d, want 1", l.Branches)
	}
	var nbe *NotBranchError
	if _, err := l.PredAt(0); !errors.As(err, &nbe) || nbe.Pos != 0 {
		t.Errorf("PredAt on a non-branch returned %v, want *NotBranchError", err)
	}
}

func TestEnsureThroughTrainsAll(t *testing.T) {
	tr := loopTrace(t)
	l := NewLookahead(Static{TakenAlways: true}, tr, 4)
	l.EnsureThrough(tr.Len() - 1)
	if l.Branches != 5 {
		t.Errorf("branches = %d, want 5", l.Branches)
	}
	if l.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1 (the final not-taken)", l.Mispredicts)
	}
	if acc := l.Accuracy(); acc != 0.8 {
		t.Errorf("accuracy = %v, want 0.8", acc)
	}
}

func TestDepthClamping(t *testing.T) {
	tr := loopTrace(t)
	if l := NewLookahead(Static{}, tr, 0); l.depth != 1 {
		t.Errorf("depth 0 clamped to %d, want 1", l.depth)
	}
	if l := NewLookahead(Static{}, tr, 99); l.depth != 16 {
		t.Errorf("depth 99 clamped to %d, want 16", l.depth)
	}
}

func TestGshareLookaheadOnNestedLoop(t *testing.T) {
	tr := collectTrace(t, `
main:
    addi r2, r0, 200   # outer counter
outer:
    addi r1, r0, 3     # inner counter
inner:
    addi r1, r1, -1
    bne  r1, r0, inner
    addi r2, r2, -1
    bne  r2, r0, outer
    out  r2
    halt
`)
	l := NewLookahead(NewGshare(12, 10), tr, 8)
	for seq := 0; seq < tr.Len(); seq++ {
		_ = l.SigAfter(seq)
	}
	l.EnsureThrough(tr.Len() - 1)
	if l.Branches != 200*3+200 {
		t.Fatalf("branches = %d", l.Branches)
	}
	if l.Accuracy() < 0.9 {
		t.Errorf("gshare accuracy on nested loop = %v, want >= 0.9", l.Accuracy())
	}
}

func TestEmptyTraceLookahead(t *testing.T) {
	l := NewLookahead(Static{}, &trace.Trace{}, 4)
	if sig := l.SigAfter(0); sig != 0 {
		t.Errorf("sig on empty trace = %b", sig)
	}
	if l.Accuracy() != 0 {
		t.Error("accuracy on empty trace should be 0")
	}
}
