package bpred

// RAS is a return-address stack: call instructions push their return PC,
// return instructions pop a predicted target. The stack is a fixed-depth
// circular buffer; overflow silently overwrites the oldest entry (the
// standard hardware behaviour — deep recursion mispredicts on the way
// out), and underflow returns no prediction.
type RAS struct {
	buf  []int32
	top  int // next push slot
	size int // valid entries, capped at depth

	Pushes, Pops, Underflows int
}

// NewRAS creates a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth < 1 {
		depth = 1
	}
	return &RAS{buf: make([]int32, depth)}
}

// Push records a call's return PC.
func (r *RAS) Push(retPC int) {
	r.Pushes++
	r.buf[r.top] = int32(retPC)
	r.top = (r.top + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
}

// Pop predicts the target of a return; ok is false when the stack is
// empty (no prediction).
func (r *RAS) Pop() (target int, ok bool) {
	r.Pops++
	if r.size == 0 {
		r.Underflows++
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.size--
	return int(r.buf[r.top]), true
}

// Depth returns the stack capacity.
func (r *RAS) Depth() int { return len(r.buf) }
