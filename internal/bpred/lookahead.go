package bpred

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Lookahead walks a committed trace and exposes, for any point in the
// stream, the *predicted* directions of upcoming conditional branches.
// This is the "future control flow information (i.e., branch predictions)"
// the paper's dead-instruction predictor keys on: in hardware the front end
// has already predicted those branches by the time an instruction renames.
//
// Branches are predicted exactly once, lazily and strictly in trace order,
// and the direction predictor is trained immediately with the actual
// outcome (the standard trace-driven "immediate update" idealization: a
// real front end would use speculatively-updated history repaired on
// mispredicts, which behaves the same on the correct path that a committed
// trace represents). Because every prediction is cached, the signature a
// consumer saw at rename and the direction the same branch was fetched
// with are always the same bit.
type Lookahead struct {
	dir   DirPredictor
	depth int

	// The conditional branches of the trace, extracted once into dense
	// parallel arrays (positions ascending): everything lookahead queries
	// touch, without walking the trace again.
	branchPos   []int
	branchPC    []int32
	branchTaken []bool
	preds       []bool // cached predictions for branchPos[:len(preds)]

	// Branches and Mispredicts count predicted conditional branches.
	Branches    int
	Mispredicts int
}

// NewLookahead creates a lookahead of the given depth (1..16 bits of path
// signature) over a linked trace.
func NewLookahead(dir DirPredictor, t *trace.Trace, depth int) *Lookahead {
	if depth < 1 {
		depth = 1
	}
	if depth > 16 {
		depth = 16
	}
	l := &Lookahead{dir: dir, depth: depth}
	n := 0
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		for i := 0; i < c.Len(); i++ {
			if c.Op[i].IsCondBranch() {
				n++
			}
		}
	}
	l.branchPos = make([]int, 0, n)
	l.branchPC = make([]int32, 0, n)
	l.branchTaken = make([]bool, 0, n)
	l.preds = make([]bool, 0, n)
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		for i := 0; i < c.Len(); i++ {
			if c.Op[i].IsCondBranch() {
				l.branchPos = append(l.branchPos, base+i)
				l.branchPC = append(l.branchPC, c.PC[i])
				l.branchTaken = append(l.branchTaken, c.Taken[i])
			}
		}
	}
	return l
}

// ensure predicts branches in order through index idx (inclusive).
func (l *Lookahead) ensure(idx int) {
	for len(l.preds) <= idx && len(l.preds) < len(l.branchPos) {
		bi := len(l.preds)
		pc, taken := int(l.branchPC[bi]), l.branchTaken[bi]
		pred := l.dir.Predict(pc)
		l.Branches++
		if pred != taken {
			l.Mispredicts++
		}
		l.dir.Update(pc, taken)
		l.preds = append(l.preds, pred)
	}
}

// branchIdxAfter returns the index into branchPos of the first conditional
// branch strictly after trace position seq.
func (l *Lookahead) branchIdxAfter(seq int) int {
	return sort.SearchInts(l.branchPos, seq+1)
}

// NotBranchError is the typed error for a lookahead query at a trace
// position that does not hold a conditional branch.
type NotBranchError struct {
	Pos int
}

func (e *NotBranchError) Error() string {
	return fmt.Sprintf("bpred: trace position %d is not a conditional branch", e.Pos)
}

// PredAt returns the predicted direction of the conditional branch at
// trace position pos. Querying a position that is not a conditional
// branch returns a *NotBranchError: callers index into traces they did
// not construct, so a misaligned position must be reportable, not fatal.
func (l *Lookahead) PredAt(pos int) (bool, error) {
	idx := sort.SearchInts(l.branchPos, pos)
	if idx >= len(l.branchPos) || l.branchPos[idx] != pos {
		return false, &NotBranchError{Pos: pos}
	}
	l.ensure(idx)
	return l.preds[idx], nil
}

// SigAfter returns the path signature at trace position seq: bit i is the
// predicted direction of the (i+1)-th conditional branch after seq. When
// fewer than depth branches remain, missing bits are zero.
func (l *Lookahead) SigAfter(seq int) uint16 {
	idx := l.branchIdxAfter(seq)
	l.ensure(idx + l.depth - 1)
	var sig uint16
	for i := 0; i < l.depth && idx+i < len(l.branchPos); i++ {
		if l.preds[idx+i] {
			sig |= 1 << i
		}
	}
	return sig
}

// ActualSigAfter returns the path signature at seq built from the
// branches' actual outcomes — the oracle upper bound of control-flow
// information.
func (l *Lookahead) ActualSigAfter(seq int) uint16 {
	idx := l.branchIdxAfter(seq)
	var sig uint16
	for i := 0; i < l.depth && idx+i < len(l.branchPos); i++ {
		if l.branchTaken[idx+i] {
			sig |= 1 << i
		}
	}
	return sig
}

// EnsureThrough predicts (and trains on) every conditional branch at trace
// position ≤ seq, so accuracy counters cover the walked region even when
// no signature was requested there.
func (l *Lookahead) EnsureThrough(seq int) {
	l.ensure(l.branchIdxAfter(seq) - 1)
}

// Accuracy returns the direction-prediction accuracy so far.
func (l *Lookahead) Accuracy() float64 {
	if l.Branches == 0 {
		return 0
	}
	return 1 - float64(l.Mispredicts)/float64(l.Branches)
}
