package artifact

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(kind Kind, spec string) Key {
	return Key{Kind: kind, Digest: Digest(spec)}
}

// tracked is an artifact value whose eviction is observable: the store
// must call ReleaseArtifact exactly once per eviction, after the last
// pin is gone.
type tracked struct {
	name string
	log  *[]string
}

func (v *tracked) ReleaseArtifact() { *v.log = append(*v.log, v.name) }

func TestDigestCanonical(t *testing.T) {
	type spec struct {
		A string
		B int
	}
	if Digest(spec{"x", 1}) != Digest(spec{"x", 1}) {
		t.Error("equal specs digest differently")
	}
	if Digest(spec{"x", 1}) == Digest(spec{"x", 2}) {
		t.Error("different specs share a digest")
	}
	if key("a", "s") == key("b", "s") {
		t.Error("kinds do not separate keys")
	}
}

func TestGetSingleFlight(t *testing.T) {
	s := New(0)
	var builds atomic.Int64
	const n = 32

	var wg sync.WaitGroup
	start := make(chan struct{})
	vals := make([]int, n)
	errs := make([]error, n)
	k := key("profile", "gzip")
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, release, err := Get(s, k, func() (int, int64, error) {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the in-flight window
				return 42, 8, nil
			})
			defer release()
			vals[i], errs[i] = v, err
		}(i)
	}
	close(start)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for one key under %d concurrent requests", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("request %d: val=%d err=%v", i, vals[i], errs[i])
		}
	}
	ks := s.Stats().Kinds["profile"]
	if ks.Misses != 1 || ks.Hits != n-1 {
		t.Errorf("counters: hits=%d misses=%d, want %d/1", ks.Hits, ks.Misses, n-1)
	}
	if ks.InflightWaits > ks.Hits {
		t.Errorf("inflight waits %d exceed hits %d", ks.InflightWaits, ks.Hits)
	}
}

// TestLRUEvictionOrder scripts a deterministic sequence of gets and
// releases against a small budget and asserts the exact eviction order
// (least recently released first), that pinned artifacts are never
// victims, and that an evicted artifact rebuilds on the next request.
func TestLRUEvictionOrder(t *testing.T) {
	s := New(8)
	var log []string
	builds := map[string]int{}
	get := func(name string) func() {
		_, release, err := Get(s, key("profile", name), func() (*tracked, int64, error) {
			builds[name]++
			return &tracked{name, &log}, 4, nil
		})
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		return release
	}

	get("a")()
	get("b")()
	get("c")() // 12 bytes > 8: evicts a
	if want := []string{"a"}; !sameSeq(log, want) {
		t.Fatalf("eviction log %v, want %v", log, want)
	}
	get("b")()       // touch b: LRU order becomes [c, b]
	get("d")()       // 12 > 8: evicts c, not the recently used b
	relE := get("e") // pinned: resident but not evictable
	get("f")()       // b, d unpinned: both evicted to make room
	if want := []string{"a", "c", "b", "d"}; !sameSeq(log, want) {
		t.Fatalf("eviction log %v, want %v", log, want)
	}
	relE()
	if st := s.Stats(); st.ResidentBytes != 8 {
		t.Errorf("resident bytes = %d, want 8 (e + f)", st.ResidentBytes)
	}

	// The evicted artifact is rebuilt on demand.
	get("a")()
	if builds["a"] != 2 {
		t.Errorf("a built %d times, want 2 (original + post-eviction rebuild)", builds["a"])
	}
	if ks := s.Stats().Kinds["profile"]; ks.Evictions < 4 {
		t.Errorf("evictions = %d, want >= 4", ks.Evictions)
	}
}

// TestEvictThenRecomputeBitIdentical checks the pure-function contract
// the experiment engine relies on: a value rebuilt after eviction is
// identical to the cold-store value.
func TestEvictThenRecomputeBitIdentical(t *testing.T) {
	mk := func(budget int64) func(name string) string {
		s := New(budget)
		return func(name string) string {
			v, release, err := Get(s, key("profile", name), func() (string, int64, error) {
				return strings.Repeat(name, 3), 6, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			release()
			return v
		}
	}
	cold := mk(0)
	churn := mk(6) // only one artifact fits: every get evicts the prior one
	for _, name := range []string{"aa", "bb", "aa", "cc", "aa"} {
		if c, h := cold(name), churn(name); c != h {
			t.Fatalf("%s: churned store returned %q, cold store %q", name, h, c)
		}
	}
}

func TestErrorMemoizationPolicy(t *testing.T) {
	errPerm := errors.New("permanent")
	errTransient := errors.New("transient")

	s := New(0)
	s.MemoErr = func(err error) bool { return errors.Is(err, errPerm) }
	builds := map[string]int{}
	get := func(name string, fail error) error {
		_, release, err := Get(s, key("run", name), func() (int, int64, error) {
			builds[name]++
			return 0, 1, fail
		})
		release()
		return err
	}

	// Transient failures are forgotten: every request rebuilds.
	if err := get("t", errTransient); !errors.Is(err, errTransient) {
		t.Fatalf("first transient get: %v", err)
	}
	if err := get("t", errTransient); !errors.Is(err, errTransient) {
		t.Fatalf("second transient get: %v", err)
	}
	if builds["t"] != 2 {
		t.Errorf("transient failure built %d times, want 2 (not memoized)", builds["t"])
	}

	// Permanent failures stay memoized: one build, repeated error.
	if err := get("p", errPerm); !errors.Is(err, errPerm) {
		t.Fatalf("first permanent get: %v", err)
	}
	if err := get("p", nil); !errors.Is(err, errPerm) {
		t.Fatalf("memoized permanent get returned %v, want the original error", err)
	}
	if builds["p"] != 1 {
		t.Errorf("permanent failure built %d times, want 1 (memoized)", builds["p"])
	}
}

func TestPanicNeverMemoized(t *testing.T) {
	s := New(0)
	s.MemoErr = func(error) bool { return true } // even an always-memoize policy
	calls := 0
	get := func() (int, error) {
		v, release, err := Get(s, key("run", "x"), func() (int, int64, error) {
			calls++
			if calls == 1 {
				panic("boom")
			}
			return 7, 1, nil
		})
		release()
		return v, err
	}
	if _, err := get(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("first get: err = %v, want a contained panic", err)
	}
	if v, err := get(); err != nil || v != 7 {
		t.Fatalf("post-panic rebuild: v=%d err=%v", v, err)
	}
}

func TestTypeMismatchFailsLoudly(t *testing.T) {
	s := New(0)
	k := key("run", "x")
	_, release, err := Get(s, k, func() (int, int64, error) { return 1, 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	release()
	_, release2, err := Get(s, k, func() (string, int64, error) { return "", 1, nil })
	release2()
	if err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("type mismatch err = %v, want a loud failure", err)
	}
}

func TestEvictAll(t *testing.T) {
	s := New(0)
	var log []string
	for _, name := range []string{"a", "b"} {
		_, release, err := Get(s, key("profile", name), func() (*tracked, int64, error) {
			return &tracked{name, &log}, 4, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	s.EvictAll()
	if len(log) != 2 {
		t.Errorf("EvictAll released %d artifacts, want 2 (%v)", len(log), log)
	}
	if st := s.Stats(); st.ResidentBytes != 0 {
		t.Errorf("resident bytes = %d after EvictAll", st.ResidentBytes)
	}
}

// TestConcurrentChurn hammers a tiny-budget store from many goroutines
// (run with -race): gets, releases, and evictions interleave, and the
// counters must still balance — every request is exactly one hit or miss.
func TestConcurrentChurn(t *testing.T) {
	s := New(10)
	var requests atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("it-%d", (g+i)%7)
				requests.Add(1)
				v, release, err := Get(s, key("churn", name), func() (string, int64, error) {
					return name + name, 4, nil
				})
				if err != nil || v != name+name {
					t.Errorf("get %s: v=%q err=%v", name, v, err)
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	ks := s.Stats().Kinds["churn"]
	if total := ks.Hits + ks.Misses; total != requests.Load() {
		t.Errorf("hits+misses = %d, want %d requests", total, requests.Load())
	}
	if ks.Evictions == 0 {
		t.Error("churn over a tiny budget evicted nothing")
	}
}

func sameSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
