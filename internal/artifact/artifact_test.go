package artifact

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(kind Kind, spec string) Key {
	return Key{Kind: kind, Digest: Digest(spec)}
}

// tracked is an artifact value whose eviction is observable: the store
// must call ReleaseArtifact exactly once per eviction, after the last
// pin is gone.
type tracked struct {
	name string
	log  *[]string
}

func (v *tracked) ReleaseArtifact() { *v.log = append(*v.log, v.name) }

func TestDigestCanonical(t *testing.T) {
	type spec struct {
		A string
		B int
	}
	if Digest(spec{"x", 1}) != Digest(spec{"x", 1}) {
		t.Error("equal specs digest differently")
	}
	if Digest(spec{"x", 1}) == Digest(spec{"x", 2}) {
		t.Error("different specs share a digest")
	}
	if key("a", "s") == key("b", "s") {
		t.Error("kinds do not separate keys")
	}
}

func TestGetSingleFlight(t *testing.T) {
	s := New(0)
	var builds atomic.Int64
	const n = 32

	var wg sync.WaitGroup
	start := make(chan struct{})
	vals := make([]int, n)
	errs := make([]error, n)
	k := key("profile", "gzip")
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, release, err := Get(s, k, func() (int, int64, error) {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the in-flight window
				return 42, 8, nil
			})
			defer release()
			vals[i], errs[i] = v, err
		}(i)
	}
	close(start)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for one key under %d concurrent requests", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("request %d: val=%d err=%v", i, vals[i], errs[i])
		}
	}
	ks := s.Stats().Kinds["profile"]
	if ks.Misses != 1 || ks.Hits != n-1 {
		t.Errorf("counters: hits=%d misses=%d, want %d/1", ks.Hits, ks.Misses, n-1)
	}
	if ks.InflightWaits > ks.Hits {
		t.Errorf("inflight waits %d exceed hits %d", ks.InflightWaits, ks.Hits)
	}
}

// TestLRUEvictionOrder scripts a deterministic sequence of gets and
// releases against a small budget and asserts the exact eviction order
// (least recently released first), that pinned artifacts are never
// victims, and that an evicted artifact rebuilds on the next request.
func TestLRUEvictionOrder(t *testing.T) {
	s := New(8)
	var log []string
	builds := map[string]int{}
	get := func(name string) func() {
		_, release, err := Get(s, key("profile", name), func() (*tracked, int64, error) {
			builds[name]++
			return &tracked{name, &log}, 4, nil
		})
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		return release
	}

	get("a")()
	get("b")()
	get("c")() // 12 bytes > 8: evicts a
	if want := []string{"a"}; !sameSeq(log, want) {
		t.Fatalf("eviction log %v, want %v", log, want)
	}
	get("b")()       // touch b: LRU order becomes [c, b]
	get("d")()       // 12 > 8: evicts c, not the recently used b
	relE := get("e") // pinned: resident but not evictable
	get("f")()       // b, d unpinned: both evicted to make room
	if want := []string{"a", "c", "b", "d"}; !sameSeq(log, want) {
		t.Fatalf("eviction log %v, want %v", log, want)
	}
	relE()
	if st := s.Stats(); st.ResidentBytes != 8 {
		t.Errorf("resident bytes = %d, want 8 (e + f)", st.ResidentBytes)
	}

	// The evicted artifact is rebuilt on demand.
	get("a")()
	if builds["a"] != 2 {
		t.Errorf("a built %d times, want 2 (original + post-eviction rebuild)", builds["a"])
	}
	if ks := s.Stats().Kinds["profile"]; ks.Evictions < 4 {
		t.Errorf("evictions = %d, want >= 4", ks.Evictions)
	}
}

// TestEvictThenRecomputeBitIdentical checks the pure-function contract
// the experiment engine relies on: a value rebuilt after eviction is
// identical to the cold-store value.
func TestEvictThenRecomputeBitIdentical(t *testing.T) {
	mk := func(budget int64) func(name string) string {
		s := New(budget)
		return func(name string) string {
			v, release, err := Get(s, key("profile", name), func() (string, int64, error) {
				return strings.Repeat(name, 3), 6, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			release()
			return v
		}
	}
	cold := mk(0)
	churn := mk(6) // only one artifact fits: every get evicts the prior one
	for _, name := range []string{"aa", "bb", "aa", "cc", "aa"} {
		if c, h := cold(name), churn(name); c != h {
			t.Fatalf("%s: churned store returned %q, cold store %q", name, h, c)
		}
	}
}

func TestErrorMemoizationPolicy(t *testing.T) {
	errPerm := errors.New("permanent")
	errTransient := errors.New("transient")

	s := New(0)
	s.MemoErr = func(err error) bool { return errors.Is(err, errPerm) }
	builds := map[string]int{}
	get := func(name string, fail error) error {
		_, release, err := Get(s, key("run", name), func() (int, int64, error) {
			builds[name]++
			return 0, 1, fail
		})
		release()
		return err
	}

	// Transient failures are forgotten: every request rebuilds.
	if err := get("t", errTransient); !errors.Is(err, errTransient) {
		t.Fatalf("first transient get: %v", err)
	}
	if err := get("t", errTransient); !errors.Is(err, errTransient) {
		t.Fatalf("second transient get: %v", err)
	}
	if builds["t"] != 2 {
		t.Errorf("transient failure built %d times, want 2 (not memoized)", builds["t"])
	}

	// Permanent failures stay memoized: one build, repeated error.
	if err := get("p", errPerm); !errors.Is(err, errPerm) {
		t.Fatalf("first permanent get: %v", err)
	}
	if err := get("p", nil); !errors.Is(err, errPerm) {
		t.Fatalf("memoized permanent get returned %v, want the original error", err)
	}
	if builds["p"] != 1 {
		t.Errorf("permanent failure built %d times, want 1 (memoized)", builds["p"])
	}
}

func TestPanicNeverMemoized(t *testing.T) {
	s := New(0)
	s.MemoErr = func(error) bool { return true } // even an always-memoize policy
	calls := 0
	get := func() (int, error) {
		v, release, err := Get(s, key("run", "x"), func() (int, int64, error) {
			calls++
			if calls == 1 {
				panic("boom")
			}
			return 7, 1, nil
		})
		release()
		return v, err
	}
	if _, err := get(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("first get: err = %v, want a contained panic", err)
	}
	if v, err := get(); err != nil || v != 7 {
		t.Fatalf("post-panic rebuild: v=%d err=%v", v, err)
	}
}

func TestTypeMismatchFailsLoudly(t *testing.T) {
	s := New(0)
	k := key("run", "x")
	_, release, err := Get(s, k, func() (int, int64, error) { return 1, 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	release()
	_, release2, err := Get(s, k, func() (string, int64, error) { return "", 1, nil })
	release2()
	if err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("type mismatch err = %v, want a loud failure", err)
	}
}

func TestEvictAll(t *testing.T) {
	s := New(0)
	var log []string
	for _, name := range []string{"a", "b"} {
		_, release, err := Get(s, key("profile", name), func() (*tracked, int64, error) {
			return &tracked{name, &log}, 4, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	s.EvictAll()
	if len(log) != 2 {
		t.Errorf("EvictAll released %d artifacts, want 2 (%v)", len(log), log)
	}
	if st := s.Stats(); st.ResidentBytes != 0 {
		t.Errorf("resident bytes = %d after EvictAll", st.ResidentBytes)
	}
}

// TestConcurrentChurn hammers a tiny-budget store from many goroutines
// (run with -race): gets, releases, and evictions interleave, and the
// counters must still balance — every request is exactly one hit or miss.
func TestConcurrentChurn(t *testing.T) {
	s := New(10)
	var requests atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("it-%d", (g+i)%7)
				requests.Add(1)
				v, release, err := Get(s, key("churn", name), func() (string, int64, error) {
					return name + name, 4, nil
				})
				if err != nil || v != name+name {
					t.Errorf("get %s: v=%q err=%v", name, v, err)
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	ks := s.Stats().Kinds["churn"]
	if total := ks.Hits + ks.Misses; total != requests.Load() {
		t.Errorf("hits+misses = %d, want %d requests", total, requests.Load())
	}
	if ks.Evictions == 0 {
		t.Error("churn over a tiny budget evicted nothing")
	}
}

// TestAdoptionSurvivesOriginatorCancel is the handoff contract: the
// requester that started a build disconnects mid-build, a second waiter
// is already attached, and the build must complete once for the survivor
// — no casualty, no re-run.
func TestAdoptionSurvivesOriginatorCancel(t *testing.T) {
	s := New(0)
	var builds atomic.Int64
	buildGate := make(chan struct{}) // held closed until the waiter has joined and the owner left
	buildDied := make(chan struct{}) // closed if the build's detached ctx is cancelled
	k := key("profile", "adopt")

	ownerCtx, ownerCancel := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		_, _, err := GetCtx(s, ownerCtx, k, func(bctx context.Context) (int, int64, error) {
			builds.Add(1)
			close(started)
			select {
			case <-buildGate:
				return 99, 8, nil
			case <-bctx.Done():
				close(buildDied)
				return 0, 0, bctx.Err()
			}
		})
		ownerDone <- err
	}()
	<-started

	// Second requester attaches to the in-flight build.
	waiterDone := make(chan int, 1)
	go func() {
		v, release, err := GetCtx(s, context.Background(), k, func(context.Context) (int, int64, error) {
			builds.Add(1)
			return -1, 8, nil
		})
		if err != nil {
			t.Errorf("adopting waiter: %v", err)
		}
		release()
		waiterDone <- v
	}()
	// Wait until the waiter is registered (InflightWaits ticks when it
	// joins the in-flight entry).
	for s.Stats().Kinds["profile"].InflightWaits == 0 {
		time.Sleep(time.Millisecond)
	}

	ownerCancel()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled owner got %v, want context.Canceled", err)
	}
	close(buildGate)
	if v := <-waiterDone; v != 99 {
		t.Fatalf("adopting waiter got %d, want 99 from the adopted build", v)
	}
	select {
	case <-buildDied:
		t.Fatal("build context was cancelled despite a surviving waiter")
	default:
	}
	ks := s.Stats().Kinds["profile"]
	if builds.Load() != 1 || ks.Misses != 1 {
		t.Errorf("builds=%d misses=%d, want 1/1 (adopted, not re-run)", builds.Load(), ks.Misses)
	}
	if ks.Adoptions != 1 {
		t.Errorf("adoptions=%d, want 1", ks.Adoptions)
	}
}

// TestLastWaiterCancelsBuild: with no surviving waiters the detached
// build must be cancelled promptly, its error forgotten (per MemoErr),
// and the next request rebuilds cleanly.
func TestLastWaiterCancelsBuild(t *testing.T) {
	s := New(0)
	s.MemoErr = func(err error) bool { return !errors.Is(err, context.Canceled) }
	var builds atomic.Int64
	k := key("profile", "lone")

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := GetCtx(s, ctx, k, func(bctx context.Context) (int, int64, error) {
			builds.Add(1)
			close(started)
			<-bctx.Done() // must fire: the sole waiter leaves
			return 0, 0, bctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole requester got %v, want context.Canceled", err)
	}

	// The cancelled build's error must not be memoized: rebuild succeeds.
	deadline := time.After(5 * time.Second)
	for {
		v, release, err := Get(s, k, func() (int, int64, error) {
			builds.Add(1)
			return 7, 8, nil
		})
		if err == nil {
			release()
			if v != 7 {
				t.Fatalf("rebuild returned %d, want 7", v)
			}
			break
		}
		// The detached builder may not have finished unwinding yet; a
		// request landing in that window waits it out and sees Canceled.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rebuild: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("cancelled build error stayed memoized")
		case <-time.After(time.Millisecond):
		}
	}
	if ks := s.Stats().Kinds["profile"]; ks.Adoptions != 0 {
		t.Errorf("adoptions=%d, want 0 (no survivor adopted anything)", ks.Adoptions)
	}
}

// fakeRemote is an in-memory RemoteTier.
type fakeRemote struct {
	mu      sync.Mutex
	entries map[Key][]byte
	fetches int
	stores  int
	failing bool
}

func newFakeRemote() *fakeRemote { return &fakeRemote{entries: make(map[Key][]byte)} }

func (r *fakeRemote) Fetch(key Key) ([]byte, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fetches++
	if r.failing {
		return nil, false, errors.New("remote unavailable")
	}
	p, ok := r.entries[key]
	return p, ok, nil
}

func (r *fakeRemote) Store(key Key, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stores++
	if r.failing {
		return errors.New("remote unavailable")
	}
	r.entries[key] = append([]byte(nil), payload...)
	return nil
}

// TestRemoteTierRoundTrip: a build in one store pushes to the remote; a
// second cold store fetches it instead of rebuilding, bit-identical.
func TestRemoteTierRoundTrip(t *testing.T) {
	remote := newFakeRemote()
	k := key("run", "shared")
	codec := JSONCodec[string]{Size: 8}

	s1 := New(0)
	s1.RegisterCodec("run", codec)
	s1.SetRemote(remote)
	v1, rel1, err := Get(s1, k, func() (string, int64, error) { return "payload", 8, nil })
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	ks1 := s1.Stats().Kinds["run"]
	if ks1.Misses != 1 || ks1.RemoteMisses != 1 || ks1.RemoteWrites != 1 {
		t.Fatalf("producer counters: %+v, want miss/remote-miss/remote-write = 1/1/1", ks1)
	}

	s2 := New(0)
	s2.RegisterCodec("run", codec)
	s2.SetRemote(remote)
	v2, rel2, err := Get(s2, k, func() (string, int64, error) {
		t.Error("consumer rebuilt despite a remote hit")
		return "", 8, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if v1 != v2 {
		t.Fatalf("remote round trip: %q != %q", v1, v2)
	}
	ks2 := s2.Stats().Kinds["run"]
	if ks2.RemoteHits != 1 || ks2.Misses != 0 {
		t.Fatalf("consumer counters: %+v, want remote_hits=1 misses=0", ks2)
	}

	// A failing remote degrades to a local rebuild, counted as a failure.
	remote.failing = true
	s3 := New(0)
	s3.RegisterCodec("run", codec)
	s3.SetRemote(remote)
	v3, rel3, err := Get(s3, k, func() (string, int64, error) { return "payload", 8, nil })
	if err != nil || v3 != "payload" {
		t.Fatalf("degraded get: v=%q err=%v", v3, err)
	}
	rel3()
	if ks3 := s3.Stats().Kinds["run"]; ks3.RemoteFailures == 0 || ks3.Misses != 1 {
		t.Fatalf("degraded counters: %+v, want remote_failures>0 misses=1", ks3)
	}
}

// TestRemoteHitWarmsDisk: a remote fetch lands the payload on the local
// disk tier, so the next cold start is disk-local.
func TestRemoteHitWarmsDisk(t *testing.T) {
	remote := newFakeRemote()
	k := key("run", "warm")
	codec := JSONCodec[int]{Size: 4}
	payload, err := encodeToBytes(codec, 41)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Store(k, payload); err != nil {
		t.Fatal(err)
	}

	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(0)
	s.RegisterCodec("run", codec)
	s.SetDisk(disk)
	s.SetRemote(remote)
	v, rel, err := Get(s, k, func() (int, int64, error) {
		t.Error("rebuilt despite remote entry")
		return 0, 4, nil
	})
	if err != nil || v != 41 {
		t.Fatalf("remote get: v=%d err=%v", v, err)
	}
	rel()
	if !disk.Has(k) {
		t.Fatal("remote hit did not warm the disk tier")
	}
	ks := s.Stats().Kinds["run"]
	if ks.RemoteHits != 1 || ks.DiskWrites != 1 {
		t.Fatalf("counters: %+v, want remote_hits=1 disk_writes=1", ks)
	}
}

// TestEncodedArtifactAndInstall exercises the daemon-side halves of the
// remote protocol against resident and disk-backed state.
func TestEncodedArtifactAndInstall(t *testing.T) {
	codec := JSONCodec[string]{Size: 8}
	k := key("run", "enc")

	s := New(0)
	s.RegisterCodec("run", codec)
	if _, err := s.EncodedArtifact(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store EncodedArtifact err = %v, want ErrNotFound", err)
	}
	_, rel, err := Get(s, k, func() (string, int64, error) { return "body", 8, nil })
	if err != nil {
		t.Fatal(err)
	}
	rel()
	payload, err := s.EncodedArtifact(k)
	if err != nil {
		t.Fatal(err)
	}

	s2 := New(0)
	s2.RegisterCodec("run", codec)
	if err := s2.InstallEncoded(k, payload); err != nil {
		t.Fatal(err)
	}
	v, rel2, err := Get(s2, k, func() (string, int64, error) {
		t.Error("rebuilt despite installed artifact")
		return "", 8, nil
	})
	if err != nil || v != "body" {
		t.Fatalf("installed get: v=%q err=%v", v, err)
	}
	rel2()

	if err := s2.InstallEncoded(k, []byte("{not json")); err == nil {
		t.Fatal("corrupt payload installed without error")
	}
	if err := s2.InstallEncoded(key("nokind", "x"), payload); err == nil {
		t.Fatal("install with no codec succeeded")
	}
}

// TestFrameRoundTrip pins the wire framing to the disk format semantics:
// a mangled byte anywhere must fail verification.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the artifact payload bytes")
	framed := Frame(payload)
	got, err := Unframe(framed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip: %q != %q", got, payload)
	}
	for i := range framed {
		bad := append([]byte(nil), framed...)
		bad[i] ^= 0x40
		if _, err := Unframe(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, err := Unframe(framed[:diskHeaderSize-1]); err == nil {
		t.Fatal("truncated header went undetected")
	}
}

func sameSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
