//go:build unix

package artifact

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file at path into memory and returns its bytes plus a
// release function that must be called exactly once when the caller is
// done with them. The mapping is private (copy-on-write), so fault
// injection mangling the returned bytes never reaches the file, and it is
// writable only to permit that mangling. Mapping replaces a read that
// would otherwise allocate and copy the whole entry through a syscall
// loop — on the warm-start path the decoder consumes the pages directly.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("entry too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
