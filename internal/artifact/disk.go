package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// Disk is the persistent tier of the artifact store: a content-addressed
// on-disk cache whose filenames are the in-memory store's keys
// (<dir>/<kind>/<digest>). It is safe to share one directory between
// concurrent processes:
//
//   - Writes go to an O_EXCL temp file in the same directory and land via
//     atomic rename, so a reader never observes a half-written entry under
//     a final name, and two writers racing on one key both leave a
//     complete, identical file (artifacts are pure functions of their
//     spec, so last-rename-wins is harmless).
//   - Every entry embeds a CRC-32C of its payload (hardware-accelerated on
//     the platforms this repository targets, so verification costs a small
//     fraction of the decode it guards); Read re-hashes on the way in and
//     deletes any entry that fails verification, so a torn or bit-flipped
//     file degrades to a rebuild, never a wrong answer.
//   - GC rescans the directory before evicting, so entries written by
//     other processes are accounted (and aged) correctly.
//
// A Disk does essentially no in-memory bookkeeping beyond an approximate
// byte total; coordination between processes happens entirely through the
// filesystem.
type Disk struct {
	dir    string
	budget int64

	mu   sync.Mutex
	used int64 // approximate; corrected by each GC rescan
}

// Entry header: magic, format version, payload length, payload CRC-32C.
const (
	diskMagic      = 0x64617274 // "dart"
	diskVersion    = 1
	diskHeaderSize = 4 + 4 + 8 + 4
)

// crcTable is the Castagnoli polynomial, chosen over IEEE because Go's
// implementation uses the dedicated CPU instruction where available.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// tmpPrefix marks in-flight temp files. They are invisible to Read (no
// key resolves to them) and stale ones are swept by GC.
const tmpPrefix = ".tmp-"

// staleTempAge is how old an orphaned temp file (a crashed or
// fault-injected writer) must be before GC removes it.
const staleTempAge = 10 * time.Minute

// CorruptError reports an entry that failed integrity verification on
// readback. The entry has already been deleted when the error is
// returned; the caller's recovery is a rebuild.
type CorruptError struct {
	Key    Key
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("artifact: disk entry %s failed verification: %s", e.Key, e.Reason)
}

// OpenDisk opens (creating if needed) a disk tier rooted at dir, bounded
// to budgetBytes of entry data (0 = unlimited).
func OpenDisk(dir string, budgetBytes int64) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: disk cache dir is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: opening disk cache: %w", err)
	}
	d := &Disk{dir: dir, budget: budgetBytes}
	entries, _, err := d.scan()
	if err != nil {
		return nil, err
	}
	var used int64
	for _, e := range entries {
		used += e.size
	}
	d.used = used
	return d, nil
}

// Dir returns the cache directory.
func (d *Disk) Dir() string { return d.dir }

// Budget returns the configured disk byte budget (0 = unlimited).
func (d *Disk) Budget() int64 { return d.budget }

// UsedBytes returns the approximate bytes of entry data on disk.
func (d *Disk) UsedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// path maps a key to its entry file.
func (d *Disk) path(key Key) string {
	return filepath.Join(d.dir, string(key.Kind), key.Digest)
}

// Has reports whether an entry exists under the key's filename (without
// verifying its integrity — Read does that).
func (d *Disk) Has(key Key) bool {
	_, err := os.Stat(d.path(key))
	return err == nil
}

// Write persists payload under key: header + payload to an O_EXCL temp
// file in the entry's directory, then atomic rename to the final name.
// A failure leaves no entry under the final name (and the error is
// recoverable by definition: the in-memory artifact is unaffected).
func (d *Disk) Write(key Key, payload []byte) error {
	if err := faults.Fire(faults.SiteArtifactDisk); err != nil {
		return fmt.Errorf("artifact: disk write %s: %w", key, err)
	}
	sum := crc32.Checksum(payload, crcTable)
	if faults.Enabled() {
		// Model a torn or corrupted write: the digest above is already
		// fixed, so a mangled copy lands on disk with a mismatched hash
		// that readback verification must catch.
		cp := append([]byte(nil), payload...)
		if faults.Mangle(faults.SiteArtifactDisk, cp) {
			payload = cp
		}
	}

	kindDir := filepath.Join(d.dir, string(key.Kind))
	if err := os.MkdirAll(kindDir, 0o755); err != nil {
		return fmt.Errorf("artifact: disk write %s: %w", key, err)
	}
	// CreateTemp opens with O_EXCL, so concurrent writers (same or other
	// process) each own a distinct temp file.
	f, err := os.CreateTemp(kindDir, tmpPrefix+key.Digest+"-*")
	if err != nil {
		return fmt.Errorf("artifact: disk write %s: %w", key, err)
	}
	tmp := f.Name()
	var hdr [diskHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], diskMagic)
	binary.LittleEndian.PutUint32(hdr[4:], diskVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:], sum)
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(payload)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		// A second firing opportunity models rename failure: the temp file
		// is complete but never becomes visible.
		werr = faults.Fire(faults.SiteArtifactDisk)
	}
	if werr == nil {
		werr = os.Rename(tmp, d.path(key))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact: disk write %s: %w", key, werr)
	}

	d.mu.Lock()
	d.used += int64(diskHeaderSize + len(payload))
	d.mu.Unlock()
	return nil
}

// ReadView returns the verified payload stored under key as a view over
// the entry's mapped pages, plus a release function the caller must call
// exactly once when done. The view is only valid until release; callers
// that decode the payload must finish (or copy) before releasing. It
// returns an error wrapping fs.ErrNotExist when no entry exists, and a
// *CorruptError — after deleting the entry — when verification fails;
// both degrade to a rebuild at the store layer.
func (d *Disk) ReadView(key Key) ([]byte, func(), error) {
	data, release, err := mapFile(d.path(key))
	if err != nil {
		return nil, nil, err
	}
	if err := faults.Fire(faults.SiteArtifactDisk); err != nil {
		// An injected read fault is a degraded lookup, not corruption:
		// leave the entry alone and let the caller rebuild.
		release()
		return nil, nil, fmt.Errorf("artifact: disk read %s: %w", key, err)
	}
	// The mapping is private, so mangling models corruption without
	// touching the file (the entry's deletion below is what removes it).
	faults.Mangle(faults.SiteArtifactDisk, data)
	payload, reason := verifyEntry(data)
	if reason != "" {
		release()
		d.remove(key)
		return nil, nil, &CorruptError{Key: key, Reason: reason}
	}
	return payload, release, nil
}

// Read returns the verified payload stored under key as a private copy,
// with the same error semantics as ReadView.
func (d *Disk) Read(key Key) ([]byte, error) {
	view, release, err := d.ReadView(key)
	if err != nil {
		return nil, err
	}
	payload := append([]byte(nil), view...)
	release()
	return payload, nil
}

// FrameView returns the verified entry stored under key as a view of the
// complete framed image — header included — over the entry's mapped
// pages, plus a release function the caller must call exactly once. The
// on-disk entry format and the remote-cache wire format are the same
// framing (see Frame), so a server can write the view straight to the
// wire without unframing and re-framing. Error semantics match ReadView.
func (d *Disk) FrameView(key Key) ([]byte, func(), error) {
	data, release, err := mapFile(d.path(key))
	if err != nil {
		return nil, nil, err
	}
	if err := faults.Fire(faults.SiteArtifactDisk); err != nil {
		release()
		return nil, nil, fmt.Errorf("artifact: disk read %s: %w", key, err)
	}
	faults.Mangle(faults.SiteArtifactDisk, data)
	if _, reason := verifyEntry(data); reason != "" {
		release()
		d.remove(key)
		return nil, nil, &CorruptError{Key: key, Reason: reason}
	}
	return data, release, nil
}

// Frame wraps payload in the disk tier's entry format (magic, version,
// length, CRC-32C of the payload). The same framing travels over the
// remote-cache wire (internal/client ↔ the daemon's /v1/artifact
// endpoints), so transport corruption is caught by exactly the machinery
// that catches disk corruption.
func Frame(payload []byte) []byte {
	out := make([]byte, diskHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], diskMagic)
	binary.LittleEndian.PutUint32(out[4:], diskVersion)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.Checksum(payload, crcTable))
	copy(out[diskHeaderSize:], payload)
	return out
}

// Unframe verifies a framed image (see Frame) and returns its payload,
// aliasing data. It returns an error naming the first integrity failure.
func Unframe(data []byte) ([]byte, error) {
	payload, reason := verifyEntry(data)
	if reason != "" {
		return nil, fmt.Errorf("artifact: frame verification failed: %s", reason)
	}
	return payload, nil
}

// verifyEntry checks an entry image end to end and returns its payload,
// or a non-empty reason describing the first integrity failure.
func verifyEntry(data []byte) (payload []byte, reason string) {
	if len(data) < diskHeaderSize {
		return nil, fmt.Sprintf("truncated header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != diskMagic {
		return nil, fmt.Sprintf("bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != diskVersion {
		return nil, fmt.Sprintf("unsupported entry version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n != uint64(len(data)-diskHeaderSize) {
		return nil, fmt.Sprintf("payload length %d, have %d bytes", n, len(data)-diskHeaderSize)
	}
	payload = data[diskHeaderSize:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[16:]) {
		return nil, "payload digest mismatch"
	}
	return payload, ""
}

// remove deletes an entry file and adjusts the accounting.
func (d *Disk) remove(key Key) {
	st, err := os.Stat(d.path(key))
	if err != nil {
		return
	}
	if os.Remove(d.path(key)) == nil {
		d.mu.Lock()
		d.used -= st.Size()
		if d.used < 0 {
			d.used = 0
		}
		d.mu.Unlock()
	}
}

// diskEntry is one scanned entry file.
type diskEntry struct {
	key   Key
	path  string
	size  int64
	mtime time.Time
}

// scan walks the cache directory, returning every entry file plus any
// stale temp files (in-flight writers abandoned by a crash or an injected
// rename failure).
func (d *Disk) scan() (entries []diskEntry, staleTemps []string, err error) {
	kinds, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("artifact: scanning disk cache: %w", err)
	}
	now := time.Now()
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		kind := Kind(kd.Name())
		files, err := os.ReadDir(filepath.Join(d.dir, kd.Name()))
		if err != nil {
			continue // raced with a concurrent GC; the rescan heals it
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue // deleted between ReadDir and Info
			}
			path := filepath.Join(d.dir, kd.Name(), f.Name())
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				if now.Sub(info.ModTime()) > staleTempAge {
					staleTemps = append(staleTemps, path)
				}
				continue
			}
			entries = append(entries, diskEntry{
				key:   Key{Kind: kind, Digest: f.Name()},
				path:  path,
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	return entries, staleTemps, nil
}

// GC enforces the disk budget: when the directory holds more entry bytes
// than the budget allows, the oldest entries (by modification time, which
// for never-rewritten content-addressed entries is write order) are
// deleted until the total fits. It rescans the directory first, so
// entries written by other processes sharing the cache are aged on equal
// footing. It returns the keys evicted by this call.
func (d *Disk) GC() []Key {
	if d.budget <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, staleTemps, err := d.scan()
	if err != nil {
		return nil
	}
	for _, p := range staleTemps {
		os.Remove(p)
	}
	var total int64
	for _, e := range entries {
		total += e.size
	}
	d.used = total
	if total <= d.budget {
		return nil
	}
	// Oldest first; ties break on path so concurrent GCs in different
	// processes converge on the same victims.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	var evicted []Key
	for _, e := range entries {
		if d.used <= d.budget {
			break
		}
		if err := os.Remove(e.path); err != nil && !isNotExist(err) {
			continue
		}
		// Removed here or already removed by a racing GC: either way the
		// bytes are gone from the directory.
		d.used -= e.size
		evicted = append(evicted, e.key)
	}
	if d.used < 0 {
		d.used = 0
	}
	return evicted
}

func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
