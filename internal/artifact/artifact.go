// Package artifact is a typed, content-addressed derivation cache: every
// value the experiment engine computes — compiled programs, emulated and
// analyzed trace profiles, predictor evaluations, machine runs — is an
// artifact addressed by its kind and a canonical digest of the full input
// spec that produced it. The store provides single-flight computation
// (concurrent requesters of one artifact block on one producer), per-kind
// hit/miss/eviction/in-flight counters, and LRU eviction under a
// configurable byte budget, so sweep-heavy workloads reuse work across
// experiments while peak memory stays bounded.
//
// Artifacts are pure functions of their spec: a rebuild after eviction
// must be bit-identical to the original, which is what makes eviction
// invisible to the experiment outputs.
//
// A store may additionally be backed by a persistent disk tier (SetDisk):
// kinds with a registered Codec write through to a content-addressed
// on-disk cache on build, cold misses load from disk instead of
// rebuilding, and LRU-evicted artifacts spill to disk rather than being
// dropped. Disk entries are integrity-verified on readback and the disk
// tier is safe to share between concurrent processes; see Disk.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Kind names one artifact type. Per-kind counters are reported as
// "artifact_hits.<kind>", "artifact_misses.<kind>",
// "artifact_evictions.<kind>", and "artifact_inflight_waits.<kind>".
type Kind string

// Key is an artifact's content address: its kind plus the canonical
// digest of the full input spec that produces it.
type Key struct {
	Kind   Kind
	Digest string
}

func (k Key) String() string { return string(k.Kind) + ":" + k.Digest }

// Digest canonically fingerprints an input spec. Specs must be plain
// exported data (JSON is the stable canonical encoding, as it is for
// pipeline.Config.Digest); two specs describing the same inputs produce
// equal digests.
func Digest(spec any) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("artifact: spec not digestible: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Releaser is implemented by artifact values that recycle pooled
// resources (e.g. a profile's columnar trace chunks) when the store
// evicts them. ReleaseArtifact is called only once the artifact has no
// pinned readers, so implementations may return arenas to a sync.Pool.
type Releaser interface {
	ReleaseArtifact()
}

// KindStats is the per-kind counter snapshot carried by Stats.
type KindStats struct {
	// Hits counts requests served from an existing artifact, including
	// requesters that waited on an in-flight build (so Hits+Misses is
	// schedule-independent; InflightWaits breaks out the waiters).
	Hits int64 `json:"hits"`
	// Misses counts builds actually executed (including rebuilds after
	// eviction or a forgotten transient failure).
	Misses int64 `json:"misses"`
	// Evictions counts artifacts dropped by the LRU byte budget.
	Evictions int64 `json:"evictions"`
	// InflightWaits counts requesters that blocked on another goroutine's
	// in-flight build of the same artifact.
	InflightWaits int64 `json:"inflight_waits"`

	// Disk-tier counters, populated only when the store has a persistent
	// tier and a codec for the kind. DiskHits counts requests served by
	// loading a verified disk entry (those do NOT count as Misses: no
	// build ran). DiskMisses counts disk lookups that found nothing
	// usable, DiskWrites successful persists, VerifyFailures entries
	// rejected (and deleted) by integrity verification, and
	// DiskGCEvictions entries deleted by the disk byte-budget GC.
	DiskHits        int64 `json:"disk_hits,omitempty"`
	DiskMisses      int64 `json:"disk_misses,omitempty"`
	DiskWrites      int64 `json:"disk_writes,omitempty"`
	VerifyFailures  int64 `json:"disk_verify_failures,omitempty"`
	DiskGCEvictions int64 `json:"disk_gc_evictions,omitempty"`
}

// Stats is a snapshot of the store.
type Stats struct {
	Kinds map[Kind]KindStats `json:"kinds"`
	// ResidentBytes is the total size of completed artifacts currently
	// held; BudgetBytes is the configured bound (0 = unlimited).
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes,omitempty"`
	// DiskUsedBytes/DiskBudgetBytes describe the persistent tier when one
	// is attached (see SetDisk).
	DiskUsedBytes   int64 `json:"disk_used_bytes,omitempty"`
	DiskBudgetBytes int64 `json:"disk_budget_bytes,omitempty"`
}

// entry is one artifact slot: in-flight until done is closed, then either
// a resident value or a memoized error.
type entry struct {
	key  Key
	done chan struct{}

	// Written by the builder before done closes, read-only after.
	val      any
	size     int64
	err      error
	panicked bool
	fromDisk bool // loaded from the persistent tier, already on disk

	// Guarded by the store lock.
	refs       int    // pinned readers (builder + hit requesters)
	resident   bool   // counted in usedBytes, evictable when refs == 0
	prev, next *entry // LRU list links, set only while unpinned
}

// Store is a content-addressed artifact cache with single-flight
// computation and LRU eviction. The zero value is unusable; create with
// New.
type Store struct {
	// MemoErr, when non-nil, reports whether a build error should stay
	// memoized (rebuilding a deterministic failure would just fail again).
	// Errors it rejects — and all errors when nil — are forgotten, so the
	// next request rebuilds; this is what makes engine-level retry of
	// transient faults effective. Set before first use.
	MemoErr func(error) bool

	budget int64

	mu    sync.Mutex
	mc    *metrics.Collector
	items map[Key]*entry
	used  int64
	stats map[Kind]*KindStats
	// lru is a doubly-linked list of unpinned resident entries; head is
	// the least recently released, tail the most recent.
	head, tail *entry
	// Persistent tier (nil = memory only) and the per-kind codec registry
	// deciding which kinds it persists.
	disk   *Disk
	codecs map[Kind]Codec
}

// New creates a store bounded to budgetBytes of resident artifact data
// (0 = unlimited). The budget is soft: pinned artifacts are never
// evicted, so concurrent pins can exceed it transiently.
func New(budgetBytes int64) *Store {
	return &Store{
		budget: budgetBytes,
		items:  make(map[Key]*entry),
		stats:  make(map[Kind]*KindStats),
	}
}

// Budget returns the configured byte budget (0 = unlimited).
func (s *Store) Budget() int64 { return s.budget }

// RegisterCodec makes kind persistable through the disk tier. Register
// codecs (and attach the disk with SetDisk) before first use: kinds
// without a codec are never written to or read from disk.
func (s *Store) RegisterCodec(kind Kind, c Codec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.codecs == nil {
		s.codecs = make(map[Kind]Codec)
	}
	s.codecs[kind] = c
}

// SetDisk attaches a persistent disk tier (nil detaches). With a tier
// attached, kinds with a registered codec write through on build, satisfy
// cold misses from disk, and spill to disk when the in-memory LRU evicts
// them. Set before first use.
func (s *Store) SetDisk(d *Disk) {
	s.mu.Lock()
	s.disk = d
	s.mu.Unlock()
}

// DiskTier returns the attached persistent tier, or nil.
func (s *Store) DiskTier() *Disk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk
}

// SetMetrics directs per-kind counters to mc as well (nil disables).
// Safe to call between operations.
func (s *Store) SetMetrics(mc *metrics.Collector) {
	s.mu.Lock()
	s.mc = mc
	s.mu.Unlock()
}

// Stats snapshots the per-kind counters and resident size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Kinds:         make(map[Kind]KindStats, len(s.stats)),
		ResidentBytes: s.used,
		BudgetBytes:   s.budget,
	}
	for k, ks := range s.stats {
		out.Kinds[k] = *ks
	}
	if s.disk != nil {
		// Lock order Store.mu → Disk.mu is safe: the disk tier never
		// calls back into the store.
		out.DiskBudgetBytes = s.disk.Budget()
		out.DiskUsedBytes = s.disk.UsedBytes()
	}
	return out
}

// bump increments one per-kind disk counter without the store lock held
// on entry.
func (s *Store) bump(prefix string, k Kind, sel func(*KindStats) *int64) {
	s.mu.Lock()
	s.count(prefix, k, sel(s.kindStats(k)))
	s.mu.Unlock()
}

// count bumps one per-kind counter pair (snapshot + collector). Call with
// s.mu held; the collector add happens outside the critical section via
// the returned func when non-trivial contention matters — counters are
// low-rate, so we just add inline (Collector has its own lock).
func (s *Store) count(prefix string, k Kind, slot *int64) {
	*slot++
	if s.mc != nil {
		s.mc.Add(prefix+"."+string(k), 1)
	}
}

// kindStats returns the mutable per-kind counters; call with s.mu held.
func (s *Store) kindStats(k Kind) *KindStats {
	ks := s.stats[k]
	if ks == nil {
		ks = &KindStats{}
		s.stats[k] = ks
	}
	return ks
}

// Get returns the artifact at key, computing it with build at most once
// no matter how many goroutines ask concurrently. The artifact is pinned
// until the returned release function is called: a pinned artifact is
// never evicted, so values holding pooled resources (see Releaser) stay
// valid until released. release is always non-nil and idempotent.
//
// build returns the value and its resident size in bytes. A build error
// is propagated to every concurrent requester; whether it stays memoized
// is decided by the store's MemoErr. A panicking build is converted to an
// error (never memoized) so waiters are not deadlocked.
func Get[T any](s *Store, key Key, build func() (T, int64, error)) (T, func(), error) {
	s.mu.Lock()
	e, ok := s.items[key]
	if ok {
		e.refs++
		s.unlink(e) // pinned entries leave the LRU list
		building := false
		select {
		case <-e.done:
		default:
			building = true
		}
		ks := s.kindStats(key.Kind)
		s.count("artifact_hits", key.Kind, &ks.Hits)
		if building {
			s.count("artifact_inflight_waits", key.Kind, &ks.InflightWaits)
		}
		s.mu.Unlock()
		if building {
			<-e.done
		}
		return finishGet[T](s, e)
	}

	e = &entry{key: key, done: make(chan struct{}), refs: 1}
	s.items[key] = e
	codec := s.codecs[key.Kind]
	disk := s.disk
	s.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				// Never memoize a panic; surface it as an error so every
				// waiter unblocks instead of deadlocking on done.
				e.val, e.size = nil, 0
				e.err = fmt.Errorf("artifact: building %s panicked: %v", key, r)
				e.panicked = true
			}
			close(e.done)
		}()
		if disk != nil && codec != nil {
			if v, size, ok := s.diskLoad(key, disk, codec); ok {
				e.val, e.size, e.fromDisk = v, size, true
				return
			}
			s.bump("artifact_disk_misses", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskMisses })
		}
		// Misses counts builds actually executed, so a disk hit above does
		// not register one: "zero misses" on a warm run means zero rebuilds.
		s.bump("artifact_misses", key.Kind, func(ks *KindStats) *int64 { return &ks.Misses })
		var v T
		v, e.size, e.err = build()
		e.val = v
	}()

	s.mu.Lock()
	if e.err != nil {
		memo := !e.panicked && s.MemoErr != nil && s.MemoErr(e.err)
		if !memo && s.items[key] == e {
			delete(s.items, key)
		}
	} else {
		e.resident = true
		s.used += e.size
	}
	s.mu.Unlock()
	if e.err == nil && !e.fromDisk && disk != nil && codec != nil {
		// Write through while the value is pinned by this Get: persistence
		// must encode before any eviction can release pooled resources.
		s.persist(key, e.val, disk, codec)
	}
	return finishGet[T](s, e)
}

// diskLoad tries to satisfy a cold miss from the persistent tier. It
// reports ok only for an entry that passed integrity verification and
// decoded cleanly; any failure (including a corrupt entry, which Read has
// already deleted) degrades to a rebuild.
func (s *Store) diskLoad(key Key, d *Disk, c Codec) (v any, size int64, ok bool) {
	payload, release, err := d.ReadView(key)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			s.bump("artifact_disk_verify_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.VerifyFailures })
		}
		return nil, 0, false
	}
	v, size, err = c.Decode(payload)
	release()
	if err != nil {
		// The bytes were intact (digest verified) but the codec rejected
		// them — a stale format from another build of the code. Delete so
		// the rebuild's write-through replaces it.
		d.remove(key)
		s.bump("artifact_disk_verify_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.VerifyFailures })
		return nil, 0, false
	}
	s.bump("artifact_disk_hits", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskHits })
	return v, size, true
}

// persist writes an artifact through to the disk tier (if not already
// present) and runs the byte-budget GC. Persistence is best-effort: a
// failed write leaves the in-memory artifact untouched.
func (s *Store) persist(key Key, v any, d *Disk, c Codec) {
	if d.Has(key) {
		return
	}
	payload, err := encodeToBytes(c, v)
	if err != nil {
		return
	}
	if err := d.Write(key, payload); err != nil {
		return
	}
	s.bump("artifact_disk_writes", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskWrites })
	for _, k := range d.GC() {
		s.bump("artifact_disk_gc_evictions", k.Kind, func(ks *KindStats) *int64 { return &ks.DiskGCEvictions })
	}
}

// finishGet reads a completed entry and hands the caller its pin.
func finishGet[T any](s *Store, e *entry) (T, func(), error) {
	if e.err != nil {
		var zero T
		s.release(e)
		return zero, func() {}, e.err
	}
	var released sync.Once
	rel := func() { released.Do(func() { s.release(e) }) }
	v, ok := e.val.(T)
	if !ok {
		// Two different value types under one key is a caller bug; fail
		// loudly rather than corrupting the typed contract.
		rel()
		var zero T
		return zero, func() {}, fmt.Errorf("artifact: %s holds %T, requested %T", e.key, e.val, v)
	}
	return v, rel, nil
}

// release unpins the entry; the last unpin of a resident entry makes it
// evictable (appended at the MRU end of the LRU list) and triggers budget
// enforcement.
func (s *Store) release(e *entry) {
	s.mu.Lock()
	e.refs--
	var victims []*entry
	if e.refs == 0 && e.resident && s.items[e.key] == e {
		s.pushTail(e)
		victims = s.evictOverBudgetLocked()
	}
	s.mu.Unlock()
	s.releaseVictims(victims)
}

// EvictAll drops every unpinned resident artifact regardless of budget,
// releasing pooled resources. Useful at the end of a run.
func (s *Store) EvictAll() {
	s.mu.Lock()
	var victims []*entry
	for s.head != nil {
		victims = append(victims, s.evictHeadLocked())
	}
	s.mu.Unlock()
	s.releaseVictims(victims)
}

// releaseVictims spills evicted values to the disk tier (if attached and
// not already present there) and then runs their Releasers, all outside
// the store lock. The spill must precede the Releaser: releasing may
// recycle pooled resources the encoder still needs.
func (s *Store) releaseVictims(victims []*entry) {
	s.mu.Lock()
	disk := s.disk
	s.mu.Unlock()
	for _, v := range victims {
		if disk != nil && v.err == nil {
			if c := s.codecFor(v.key.Kind); c != nil {
				s.persist(v.key, v.val, disk, c)
			}
		}
		if r, ok := v.val.(Releaser); ok {
			r.ReleaseArtifact()
		}
	}
}

// codecFor returns the registered codec for kind, or nil.
func (s *Store) codecFor(kind Kind) Codec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codecs[kind]
}

// evictOverBudgetLocked drops least-recently-used unpinned entries until
// the resident size fits the budget. Call with s.mu held; the caller
// runs the victims' Releasers outside the lock.
func (s *Store) evictOverBudgetLocked() []*entry {
	if s.budget <= 0 {
		return nil
	}
	var victims []*entry
	for s.used > s.budget && s.head != nil {
		victims = append(victims, s.evictHeadLocked())
	}
	return victims
}

// evictHeadLocked removes the LRU head from the list, the map, and the
// resident accounting. Call with s.mu held and s.head != nil.
func (s *Store) evictHeadLocked() *entry {
	e := s.head
	s.unlink(e)
	delete(s.items, e.key)
	e.resident = false
	s.used -= e.size
	ks := s.kindStats(e.key.Kind)
	s.count("artifact_evictions", e.key.Kind, &ks.Evictions)
	return e
}

// pushTail appends e at the MRU end. Call with s.mu held.
func (s *Store) pushTail(e *entry) {
	e.prev, e.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

// unlink removes e from the LRU list if present. Call with s.mu held.
func (s *Store) unlink(e *entry) {
	if s.head != e && e.prev == nil && e.next == nil {
		return // not in the list
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
