// Package artifact is a typed, content-addressed derivation cache: every
// value the experiment engine computes — compiled programs, emulated and
// analyzed trace profiles, predictor evaluations, machine runs — is an
// artifact addressed by its kind and a canonical digest of the full input
// spec that produced it. The store provides single-flight computation
// (concurrent requesters of one artifact block on one producer), per-kind
// hit/miss/eviction/in-flight counters, and LRU eviction under a
// configurable byte budget, so sweep-heavy workloads reuse work across
// experiments while peak memory stays bounded.
//
// Artifacts are pure functions of their spec: a rebuild after eviction
// must be bit-identical to the original, which is what makes eviction
// invisible to the experiment outputs.
//
// A store may additionally be backed by a persistent disk tier (SetDisk):
// kinds with a registered Codec write through to a content-addressed
// on-disk cache on build, cold misses load from disk instead of
// rebuilding, and LRU-evicted artifacts spill to disk rather than being
// dropped. Disk entries are integrity-verified on readback and the disk
// tier is safe to share between concurrent processes; see Disk.
//
// A third, remote tier (SetRemote) sits behind memory and disk: cold
// misses that both inner tiers miss are fetched from a remote cache (an
// HTTP daemon, see internal/client), and freshly built artifacts are
// pushed back so a fleet of processes shares one warm cache. Remote
// payloads reuse the disk tier's framed encoding, so integrity is
// CRC-verified end to end and a corrupt fetch degrades to a local
// rebuild.
//
// Builds run on a detached context owned by the set of requesters
// currently waiting on them: when one requester disconnects, surviving
// waiters adopt the in-flight build (counted as artifact_adoptions)
// instead of watching it die with its originator and re-running it; only
// when the last waiter leaves is the build cancelled.
package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// ErrNotFound reports that no artifact (resident or on disk) exists under
// a key, from EncodedArtifact.
var ErrNotFound = errors.New("artifact: not found")

// Kind names one artifact type. Per-kind counters are reported as
// "artifact_hits.<kind>", "artifact_misses.<kind>",
// "artifact_evictions.<kind>", and "artifact_inflight_waits.<kind>".
type Kind string

// Key is an artifact's content address: its kind plus the canonical
// digest of the full input spec that produces it.
type Key struct {
	Kind   Kind
	Digest string
}

func (k Key) String() string { return string(k.Kind) + ":" + k.Digest }

// Digest canonically fingerprints an input spec. Specs must be plain
// exported data (JSON is the stable canonical encoding, as it is for
// pipeline.Config.Digest); two specs describing the same inputs produce
// equal digests.
func Digest(spec any) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("artifact: spec not digestible: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Releaser is implemented by artifact values that recycle pooled
// resources (e.g. a profile's columnar trace chunks) when the store
// evicts them. ReleaseArtifact is called only once the artifact has no
// pinned readers, so implementations may return arenas to a sync.Pool.
type Releaser interface {
	ReleaseArtifact()
}

// KindStats is the per-kind counter snapshot carried by Stats.
type KindStats struct {
	// Hits counts requests served from an existing artifact, including
	// requesters that waited on an in-flight build (so Hits+Misses is
	// schedule-independent; InflightWaits breaks out the waiters).
	Hits int64 `json:"hits"`
	// Misses counts builds actually executed (including rebuilds after
	// eviction or a forgotten transient failure).
	Misses int64 `json:"misses"`
	// Evictions counts artifacts dropped by the LRU byte budget.
	Evictions int64 `json:"evictions"`
	// InflightWaits counts requesters that blocked on another goroutine's
	// in-flight build of the same artifact.
	InflightWaits int64 `json:"inflight_waits"`

	// Disk-tier counters, populated only when the store has a persistent
	// tier and a codec for the kind. DiskHits counts requests served by
	// loading a verified disk entry (those do NOT count as Misses: no
	// build ran). DiskMisses counts disk lookups that found nothing
	// usable, DiskWrites successful persists, VerifyFailures entries
	// rejected (and deleted) by integrity verification, and
	// DiskGCEvictions entries deleted by the disk byte-budget GC.
	DiskHits        int64 `json:"disk_hits,omitempty"`
	DiskMisses      int64 `json:"disk_misses,omitempty"`
	DiskWrites      int64 `json:"disk_writes,omitempty"`
	VerifyFailures  int64 `json:"disk_verify_failures,omitempty"`
	DiskGCEvictions int64 `json:"disk_gc_evictions,omitempty"`

	// Adoptions counts in-flight builds handed off to surviving waiters
	// after a requester (including the one that started the build)
	// disconnected — each adopted build is one avoided re-run.
	Adoptions int64 `json:"adoptions,omitempty"`

	// Remote-tier counters, populated only when the store has a remote
	// tier and a codec for the kind. RemoteHits counts requests served by
	// a verified remote fetch (not Misses: no build ran), RemoteMisses
	// remote lookups that found nothing, RemoteWrites successful pushes of
	// freshly built artifacts, and RemoteFailures transport or
	// verification errors (each of which degrades to a local rebuild).
	RemoteHits     int64 `json:"remote_hits,omitempty"`
	RemoteMisses   int64 `json:"remote_misses,omitempty"`
	RemoteWrites   int64 `json:"remote_writes,omitempty"`
	RemoteFailures int64 `json:"remote_failures,omitempty"`
}

// RemoteTier is a remote artifact cache (the third tier, behind memory
// and disk). Fetch returns the framed-and-verified payload for key, with
// found=false for a clean miss; Store pushes a payload built locally.
// Implementations must verify payload integrity on fetch (see
// internal/client); the store treats any error as a degraded lookup and
// rebuilds locally.
type RemoteTier interface {
	Fetch(key Key) (payload []byte, found bool, err error)
	Store(key Key, payload []byte) error
}

// Stats is a snapshot of the store.
type Stats struct {
	Kinds map[Kind]KindStats `json:"kinds"`
	// ResidentBytes is the total size of completed artifacts currently
	// held; BudgetBytes is the configured bound (0 = unlimited).
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes,omitempty"`
	// DiskUsedBytes/DiskBudgetBytes describe the persistent tier when one
	// is attached (see SetDisk).
	DiskUsedBytes   int64 `json:"disk_used_bytes,omitempty"`
	DiskBudgetBytes int64 `json:"disk_budget_bytes,omitempty"`
}

// entry is one artifact slot: in-flight until done is closed, then either
// a resident value or a memoized error.
type entry struct {
	key  Key
	done chan struct{}

	// Written by the builder before done closes, read-only after.
	val        any
	size       int64
	err        error
	panicked   bool
	fromDisk   bool // loaded from the persistent tier, already on disk
	fromRemote bool // fetched from the remote tier (disk copy warmed on the way in)

	// buildCancel aborts the detached build context; called by the last
	// waiter to disconnect, and by the builder itself on completion.
	buildCancel context.CancelFunc

	// Guarded by the store lock.
	refs       int    // pinned readers (builder + hit requesters)
	waiters    int    // requesters blocked on the in-flight build
	adopted    bool   // a requester left while others stayed (counted once)
	resident   bool   // counted in usedBytes, evictable when refs == 0
	prev, next *entry // LRU list links, set only while unpinned
}

// Store is a content-addressed artifact cache with single-flight
// computation and LRU eviction. The zero value is unusable; create with
// New.
type Store struct {
	// MemoErr, when non-nil, reports whether a build error should stay
	// memoized (rebuilding a deterministic failure would just fail again).
	// Errors it rejects — and all errors when nil — are forgotten, so the
	// next request rebuilds; this is what makes engine-level retry of
	// transient faults effective. Set before first use.
	MemoErr func(error) bool

	budget int64

	mu    sync.Mutex
	mc    *metrics.Collector
	items map[Key]*entry
	used  int64
	stats map[Kind]*KindStats
	// lru is a doubly-linked list of unpinned resident entries; head is
	// the least recently released, tail the most recent.
	head, tail *entry
	// Persistent tier (nil = memory only), remote tier (nil = none), and
	// the per-kind codec registry deciding which kinds they carry.
	disk   *Disk
	remote RemoteTier
	codecs map[Kind]Codec
}

// New creates a store bounded to budgetBytes of resident artifact data
// (0 = unlimited). The budget is soft: pinned artifacts are never
// evicted, so concurrent pins can exceed it transiently.
func New(budgetBytes int64) *Store {
	return &Store{
		budget: budgetBytes,
		items:  make(map[Key]*entry),
		stats:  make(map[Kind]*KindStats),
	}
}

// Budget returns the configured byte budget (0 = unlimited).
func (s *Store) Budget() int64 { return s.budget }

// RegisterCodec makes kind persistable through the disk tier. Register
// codecs (and attach the disk with SetDisk) before first use: kinds
// without a codec are never written to or read from disk.
func (s *Store) RegisterCodec(kind Kind, c Codec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.codecs == nil {
		s.codecs = make(map[Kind]Codec)
	}
	s.codecs[kind] = c
}

// SetDisk attaches a persistent disk tier (nil detaches). With a tier
// attached, kinds with a registered codec write through on build, satisfy
// cold misses from disk, and spill to disk when the in-memory LRU evicts
// them. Set before first use.
func (s *Store) SetDisk(d *Disk) {
	s.mu.Lock()
	s.disk = d
	s.mu.Unlock()
}

// DiskTier returns the attached persistent tier, or nil.
func (s *Store) DiskTier() *Disk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk
}

// SetRemote attaches a remote cache tier (nil detaches). With a tier
// attached, kinds with a registered codec are fetched remotely when both
// memory and disk miss (a verified fetch also warms the disk tier), and
// freshly built artifacts are pushed back. Set before first use.
func (s *Store) SetRemote(r RemoteTier) {
	s.mu.Lock()
	s.remote = r
	s.mu.Unlock()
}

// RemoteTierAttached reports whether a remote tier is attached.
func (s *Store) RemoteTierAttached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote != nil
}

// SetMetrics directs per-kind counters to mc as well (nil disables).
// Safe to call between operations.
func (s *Store) SetMetrics(mc *metrics.Collector) {
	s.mu.Lock()
	s.mc = mc
	s.mu.Unlock()
}

// Stats snapshots the per-kind counters and resident size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Kinds:         make(map[Kind]KindStats, len(s.stats)),
		ResidentBytes: s.used,
		BudgetBytes:   s.budget,
	}
	for k, ks := range s.stats {
		out.Kinds[k] = *ks
	}
	if s.disk != nil {
		// Lock order Store.mu → Disk.mu is safe: the disk tier never
		// calls back into the store.
		out.DiskBudgetBytes = s.disk.Budget()
		out.DiskUsedBytes = s.disk.UsedBytes()
	}
	return out
}

// bump increments one per-kind disk counter without the store lock held
// on entry.
func (s *Store) bump(prefix string, k Kind, sel func(*KindStats) *int64) {
	s.mu.Lock()
	s.count(prefix, k, sel(s.kindStats(k)))
	s.mu.Unlock()
}

// count bumps one per-kind counter pair (snapshot + collector). Call with
// s.mu held; the collector add happens outside the critical section via
// the returned func when non-trivial contention matters — counters are
// low-rate, so we just add inline (Collector has its own lock).
func (s *Store) count(prefix string, k Kind, slot *int64) {
	*slot++
	if s.mc != nil {
		s.mc.Add(prefix+"."+string(k), 1)
	}
}

// kindStats returns the mutable per-kind counters; call with s.mu held.
func (s *Store) kindStats(k Kind) *KindStats {
	ks := s.stats[k]
	if ks == nil {
		ks = &KindStats{}
		s.stats[k] = ks
	}
	return ks
}

// Get returns the artifact at key, computing it with build at most once
// no matter how many goroutines ask concurrently. It is GetCtx with a
// background context: the requester never disconnects, so it always
// waits the build out.
func Get[T any](s *Store, key Key, build func() (T, int64, error)) (T, func(), error) {
	return GetCtx(s, context.Background(), key, func(context.Context) (T, int64, error) {
		return build()
	})
}

// GetCtx returns the artifact at key, computing it with build at most
// once no matter how many goroutines ask concurrently. The artifact is
// pinned until the returned release function is called: a pinned
// artifact is never evicted, so values holding pooled resources (see
// Releaser) stay valid until released. release is always non-nil and
// idempotent.
//
// The build runs on a goroutine of its own under a detached context that
// is cancelled only when the last interested requester has disconnected:
// if ctx is cancelled while other requesters still wait on the same
// in-flight build, they adopt it (counted once per build as
// artifact_adoptions) and the build keeps running for them; GetCtx then
// returns ctx.Err() to the departed requester. The build callback
// receives that detached context, not ctx.
//
// build returns the value and its resident size in bytes. A build error
// is propagated to every concurrent requester; whether it stays memoized
// is decided by the store's MemoErr. A panicking build is converted to an
// error (never memoized) so waiters are not deadlocked.
func GetCtx[T any](s *Store, ctx context.Context, key Key, build func(context.Context) (T, int64, error)) (T, func(), error) {
	s.mu.Lock()
	e, ok := s.items[key]
	if ok {
		e.refs++
		s.unlink(e) // pinned entries leave the LRU list
		building := false
		select {
		case <-e.done:
		default:
			building = true
		}
		ks := s.kindStats(key.Kind)
		s.count("artifact_hits", key.Kind, &ks.Hits)
		if building {
			s.count("artifact_inflight_waits", key.Kind, &ks.InflightWaits)
			e.waiters++
		}
		s.mu.Unlock()
		if building {
			if err := s.waitBuild(ctx, e); err != nil {
				var zero T
				return zero, func() {}, err
			}
		}
		return finishGet[T](s, e)
	}

	// The build context is detached from the requester deliberately:
	// ownership belongs to the waiter set (refcounted via e.waiters), not
	// to whichever request happened to arrive first.
	bctx, cancel := context.WithCancel(context.Background())
	e = &entry{key: key, done: make(chan struct{}), refs: 2, waiters: 1, buildCancel: cancel}
	s.items[key] = e
	codec := s.codecs[key.Kind]
	disk := s.disk
	remote := s.remote
	s.mu.Unlock()

	go s.runBuild(e, bctx, disk, remote, codec, func(bctx context.Context) (any, int64, error) {
		return build(bctx)
	})

	if err := s.waitBuild(ctx, e); err != nil {
		var zero T
		return zero, func() {}, err
	}
	return finishGet[T](s, e)
}

// runBuild executes one detached single-flight build: disk tier, then
// remote tier, then the build callback. It owns one pin (released here,
// before done closes, so the last requester release is what triggers
// eviction — synchronously, as callers of Get have always observed) and
// is the only writer of the entry's value fields until done closes.
func (s *Store) runBuild(e *entry, bctx context.Context, disk *Disk, remote RemoteTier, codec Codec, build func(context.Context) (any, int64, error)) {
	key := e.key
	func() {
		defer func() {
			if r := recover(); r != nil {
				// Never memoize a panic; surface it as an error so every
				// waiter unblocks instead of deadlocking on done.
				e.val, e.size = nil, 0
				e.err = fmt.Errorf("artifact: building %s panicked: %v", key, r)
				e.panicked = true
			}
		}()
		if disk != nil && codec != nil {
			if v, size, ok := s.diskLoad(key, disk, codec); ok {
				e.val, e.size, e.fromDisk = v, size, true
				return
			}
			s.bump("artifact_disk_misses", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskMisses })
		}
		if remote != nil && codec != nil {
			if v, size, ok := s.remoteLoad(key, remote, codec, disk); ok {
				e.val, e.size, e.fromRemote = v, size, true
				return
			}
		}
		// Misses counts builds actually executed, so a disk or remote hit
		// above does not register one: "zero misses" on a warm run means
		// zero rebuilds.
		s.bump("artifact_misses", key.Kind, func(ks *KindStats) *int64 { return &ks.Misses })
		e.val, e.size, e.err = build(bctx)
	}()
	e.buildCancel()

	s.mu.Lock()
	if e.err != nil {
		memo := !e.panicked && s.MemoErr != nil && s.MemoErr(e.err)
		if !memo && s.items[key] == e {
			delete(s.items, key)
		}
	} else {
		e.resident = true
		s.used += e.size
	}
	s.mu.Unlock()
	if e.err == nil && !e.fromDisk && disk != nil && codec != nil {
		// Write through while the value is pinned by the builder:
		// persistence must encode before any eviction can release pooled
		// resources. (A remote hit lands on disk inside remoteLoad, payload
		// intact, so it is excluded alongside disk hits.)
		if !e.fromRemote {
			s.persist(key, e.val, disk, codec)
		}
	}
	if e.err == nil && !e.fromDisk && !e.fromRemote && remote != nil && codec != nil {
		// Push only freshly built artifacts: anything from disk or remote
		// was either already pushed or came from the remote itself.
		s.remoteStore(key, e.val, remote, codec)
	}
	s.release(e)
	close(e.done)
}

// waitBuild blocks until e's in-flight build completes (returning nil
// with the caller's pin intact) or ctx is cancelled first. On
// cancellation it drops the caller's pin and waiter slot: if other
// waiters survive they adopt the build; if the caller was the last, the
// detached build context is cancelled and the build dies promptly.
func (s *Store) waitBuild(ctx context.Context, e *entry) error {
	select {
	case <-e.done:
		s.mu.Lock()
		e.waiters--
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	select {
	case <-e.done:
		// The build completed while we noticed the cancellation; serving
		// the finished value is strictly better than an error.
		e.waiters--
		s.mu.Unlock()
		return nil
	default:
	}
	e.waiters--
	e.refs--
	last := e.waiters == 0
	if !last && !e.adopted {
		e.adopted = true
		ks := s.kindStats(e.key.Kind)
		s.count("artifact_adoptions", e.key.Kind, &ks.Adoptions)
	}
	s.mu.Unlock()
	if last {
		e.buildCancel()
	}
	return ctx.Err()
}

// diskLoad tries to satisfy a cold miss from the persistent tier. It
// reports ok only for an entry that passed integrity verification and
// decoded cleanly; any failure (including a corrupt entry, which Read has
// already deleted) degrades to a rebuild.
func (s *Store) diskLoad(key Key, d *Disk, c Codec) (v any, size int64, ok bool) {
	payload, release, err := d.ReadView(key)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			s.bump("artifact_disk_verify_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.VerifyFailures })
		}
		return nil, 0, false
	}
	v, size, err = c.Decode(payload)
	release()
	if err != nil {
		// The bytes were intact (digest verified) but the codec rejected
		// them — a stale format from another build of the code. Delete so
		// the rebuild's write-through replaces it.
		d.remove(key)
		s.bump("artifact_disk_verify_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.VerifyFailures })
		return nil, 0, false
	}
	s.bump("artifact_disk_hits", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskHits })
	return v, size, true
}

// persist writes an artifact through to the disk tier (if not already
// present) and runs the byte-budget GC. Persistence is best-effort: a
// failed write leaves the in-memory artifact untouched.
func (s *Store) persist(key Key, v any, d *Disk, c Codec) {
	if d.Has(key) {
		return
	}
	payload, err := encodeToBytes(c, v)
	if err != nil {
		return
	}
	if err := d.Write(key, payload); err != nil {
		return
	}
	s.bump("artifact_disk_writes", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskWrites })
	for _, k := range d.GC() {
		s.bump("artifact_disk_gc_evictions", k.Kind, func(ks *KindStats) *int64 { return &ks.DiskGCEvictions })
	}
}

// remoteLoad tries to satisfy a cold miss from the remote tier. A
// verified fetch also warms the disk tier with the raw payload (counted
// as a disk write), so the next cold start in this process needs no
// network at all. Any failure — transport, verification, codec — is a
// degraded lookup that falls back to a local build.
func (s *Store) remoteLoad(key Key, r RemoteTier, c Codec, d *Disk) (v any, size int64, ok bool) {
	payload, found, err := r.Fetch(key)
	if err != nil {
		s.bump("artifact_remote_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.RemoteFailures })
		return nil, 0, false
	}
	if !found {
		s.bump("artifact_remote_misses", key.Kind, func(ks *KindStats) *int64 { return &ks.RemoteMisses })
		return nil, 0, false
	}
	v, size, err = c.Decode(payload)
	if err != nil {
		s.bump("artifact_remote_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.RemoteFailures })
		return nil, 0, false
	}
	s.bump("artifact_remote_hits", key.Kind, func(ks *KindStats) *int64 { return &ks.RemoteHits })
	if d != nil && !d.Has(key) {
		if err := d.Write(key, payload); err == nil {
			s.bump("artifact_disk_writes", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskWrites })
			for _, k := range d.GC() {
				s.bump("artifact_disk_gc_evictions", k.Kind, func(ks *KindStats) *int64 { return &ks.DiskGCEvictions })
			}
		}
	}
	return v, size, true
}

// remoteStore pushes a freshly built artifact to the remote tier,
// best-effort: a failed push leaves the local artifact untouched.
func (s *Store) remoteStore(key Key, v any, r RemoteTier, c Codec) {
	payload, err := encodeToBytes(c, v)
	if err != nil {
		return
	}
	if err := r.Store(key, payload); err != nil {
		s.bump("artifact_remote_failures", key.Kind, func(ks *KindStats) *int64 { return &ks.RemoteFailures })
		return
	}
	s.bump("artifact_remote_writes", key.Kind, func(ks *KindStats) *int64 { return &ks.RemoteWrites })
}

// EncodedArtifact returns the canonical encoded payload for key, from
// the resident tier (encoding under a pin) or, failing that, the disk
// tier. It returns ErrNotFound when neither tier holds the artifact or
// the kind has no codec. This is the daemon-side read of the remote
// protocol: what it returns is byte-for-byte what a local persist would
// have written.
func (s *Store) EncodedArtifact(key Key) ([]byte, error) {
	s.mu.Lock()
	codec := s.codecs[key.Kind]
	disk := s.disk
	e, ok := s.items[key]
	if ok {
		select {
		case <-e.done:
			ok = e.err == nil
		default:
			ok = false // in-flight; fall through to disk
		}
	}
	if ok && codec != nil {
		e.refs++
		s.unlink(e)
		s.mu.Unlock()
		payload, err := encodeToBytes(codec, e.val)
		s.release(e)
		return payload, err
	}
	s.mu.Unlock()
	if codec == nil {
		return nil, ErrNotFound
	}
	if disk != nil {
		if payload, err := disk.Read(key); err == nil {
			return payload, nil
		}
	}
	return nil, ErrNotFound
}

// EncodedFrame returns the CRC-framed wire image for key plus a release
// function the caller must call exactly once after the bytes are written
// out. A resident artifact encodes under a pin and frames the copy
// (release is then a no-op); otherwise the disk tier's mapped entry file
// is served as-is with spilled=true — the framed bytes on disk ARE the
// wire format, so the spill-through path performs no decode, re-encode,
// or frame copy. ErrNotFound when neither tier holds the artifact.
func (s *Store) EncodedFrame(key Key) (framed []byte, release func(), spilled bool, err error) {
	s.mu.Lock()
	codec := s.codecs[key.Kind]
	disk := s.disk
	e, ok := s.items[key]
	if ok {
		select {
		case <-e.done:
			ok = e.err == nil
		default:
			ok = false // in-flight; fall through to disk
		}
	}
	if ok && codec != nil {
		e.refs++
		s.unlink(e)
		s.mu.Unlock()
		payload, err := encodeToBytes(codec, e.val)
		s.release(e)
		if err != nil {
			return nil, nil, false, err
		}
		return Frame(payload), func() {}, false, nil
	}
	s.mu.Unlock()
	if codec == nil {
		return nil, nil, false, ErrNotFound
	}
	if disk != nil {
		if framed, release, err := disk.FrameView(key); err == nil {
			return framed, release, true, nil
		}
	}
	return nil, nil, false, ErrNotFound
}

// InstallEncoded decodes payload (which has already passed frame
// verification) and installs it as a completed resident artifact,
// writing through to the disk tier. If the key is already resident or
// building, the duplicate decode is discarded (its pooled resources
// released) — the existing entry wins, but the disk write-through still
// happens if the entry file is missing. This is the daemon-side write of
// the remote protocol.
func (s *Store) InstallEncoded(key Key, payload []byte) error {
	s.mu.Lock()
	codec := s.codecs[key.Kind]
	disk := s.disk
	s.mu.Unlock()
	if codec == nil {
		return fmt.Errorf("artifact: no codec registered for kind %q", key.Kind)
	}
	v, size, err := codec.Decode(payload)
	if err != nil {
		return err
	}

	s.mu.Lock()
	if _, exists := s.items[key]; exists {
		s.mu.Unlock()
		if r, ok := v.(Releaser); ok {
			r.ReleaseArtifact()
		}
	} else {
		done := make(chan struct{})
		close(done)
		e := &entry{key: key, done: done, refs: 1, resident: true, val: v, size: size}
		s.items[key] = e
		s.used += size
		s.mu.Unlock()
		s.release(e)
	}

	if disk != nil && !disk.Has(key) {
		if err := disk.Write(key, payload); err == nil {
			s.bump("artifact_disk_writes", key.Kind, func(ks *KindStats) *int64 { return &ks.DiskWrites })
			for _, k := range disk.GC() {
				s.bump("artifact_disk_gc_evictions", k.Kind, func(ks *KindStats) *int64 { return &ks.DiskGCEvictions })
			}
		}
	}
	return nil
}

// finishGet reads a completed entry and hands the caller its pin.
func finishGet[T any](s *Store, e *entry) (T, func(), error) {
	if e.err != nil {
		var zero T
		s.release(e)
		return zero, func() {}, e.err
	}
	var released sync.Once
	rel := func() { released.Do(func() { s.release(e) }) }
	v, ok := e.val.(T)
	if !ok {
		// Two different value types under one key is a caller bug; fail
		// loudly rather than corrupting the typed contract.
		rel()
		var zero T
		return zero, func() {}, fmt.Errorf("artifact: %s holds %T, requested %T", e.key, e.val, v)
	}
	return v, rel, nil
}

// release unpins the entry; the last unpin of a resident entry makes it
// evictable (appended at the MRU end of the LRU list) and triggers budget
// enforcement.
func (s *Store) release(e *entry) {
	s.mu.Lock()
	e.refs--
	var victims []*entry
	if e.refs == 0 && e.resident && s.items[e.key] == e {
		s.pushTail(e)
		victims = s.evictOverBudgetLocked()
	}
	s.mu.Unlock()
	s.releaseVictims(victims)
}

// EvictAll drops every unpinned resident artifact regardless of budget,
// releasing pooled resources. Useful at the end of a run.
func (s *Store) EvictAll() {
	s.mu.Lock()
	var victims []*entry
	for s.head != nil {
		victims = append(victims, s.evictHeadLocked())
	}
	s.mu.Unlock()
	s.releaseVictims(victims)
}

// releaseVictims spills evicted values to the disk tier (if attached and
// not already present there) and then runs their Releasers, all outside
// the store lock. The spill must precede the Releaser: releasing may
// recycle pooled resources the encoder still needs.
func (s *Store) releaseVictims(victims []*entry) {
	s.mu.Lock()
	disk := s.disk
	s.mu.Unlock()
	for _, v := range victims {
		if disk != nil && v.err == nil {
			if c := s.codecFor(v.key.Kind); c != nil {
				s.persist(v.key, v.val, disk, c)
			}
		}
		if r, ok := v.val.(Releaser); ok {
			r.ReleaseArtifact()
		}
	}
}

// codecFor returns the registered codec for kind, or nil.
func (s *Store) codecFor(kind Kind) Codec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codecs[kind]
}

// evictOverBudgetLocked drops least-recently-used unpinned entries until
// the resident size fits the budget. Call with s.mu held; the caller
// runs the victims' Releasers outside the lock.
func (s *Store) evictOverBudgetLocked() []*entry {
	if s.budget <= 0 {
		return nil
	}
	var victims []*entry
	for s.used > s.budget && s.head != nil {
		victims = append(victims, s.evictHeadLocked())
	}
	return victims
}

// evictHeadLocked removes the LRU head from the list, the map, and the
// resident accounting. Call with s.mu held and s.head != nil.
func (s *Store) evictHeadLocked() *entry {
	e := s.head
	s.unlink(e)
	delete(s.items, e.key)
	e.resident = false
	s.used -= e.size
	ks := s.kindStats(e.key.Kind)
	s.count("artifact_evictions", e.key.Kind, &ks.Evictions)
	return e
}

// pushTail appends e at the MRU end. Call with s.mu held.
func (s *Store) pushTail(e *entry) {
	e.prev, e.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

// unlink removes e from the LRU list if present. Call with s.mu held.
func (s *Store) unlink(e *entry) {
	if s.head != e && e.prev == nil && e.next == nil {
		return // not in the list
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
