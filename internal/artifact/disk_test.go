package artifact

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// payload is the JSON-persistable test artifact.
type payload struct {
	Name string
	N    int
}

func payloadCodec() Codec { return JSONCodec[payload]{Size: 64} }

// diskStore builds a store backed by a disk tier at dir.
func diskStore(t *testing.T, dir string, memBudget, diskBudget int64) *Store {
	t.Helper()
	s := New(memBudget)
	s.RegisterCodec("profile", payloadCodec())
	d, err := OpenDisk(dir, diskBudget)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDisk(d)
	return s
}

func getPayload(t *testing.T, s *Store, k Key, builds *atomic.Int64) payload {
	t.Helper()
	v, release, err := Get(s, k, func() (payload, int64, error) {
		if builds != nil {
			builds.Add(1)
		}
		return payload{Name: k.Digest[:8], N: 42}, 64, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	release()
	return v
}

func TestDiskWriteReadRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key("profile", "gzip")
	data := []byte("hello artifact tier")
	if d.Has(k) {
		t.Error("Has before write")
	}
	if err := d.Write(k, data); err != nil {
		t.Fatal(err)
	}
	if !d.Has(k) {
		t.Error("no entry after write")
	}
	if got, want := d.UsedBytes(), int64(diskHeaderSize+len(data)); got != want {
		t.Errorf("UsedBytes = %d, want %d", got, want)
	}
	back, err := d.Read(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Errorf("read back %q, want %q", back, data)
	}
	// A fresh Disk over the same directory sees the entry (cross-process
	// warm start) and accounts its bytes from the scan.
	d2, err := OpenDisk(d.Dir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.UsedBytes(); got != int64(diskHeaderSize+len(data)) {
		t.Errorf("rescanned UsedBytes = %d", got)
	}
	if _, err := d2.Read(k); err != nil {
		t.Errorf("fresh Disk cannot read existing entry: %v", err)
	}
}

func TestDiskReadMissing(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(key("profile", "nope")); !isNotExist(err) {
		t.Errorf("missing entry: got %v, want fs.ErrNotExist", err)
	}
}

// TestDiskCorruptionRecovery flips or removes bytes in a stored entry —
// header, body, truncation — and requires detection, deletion, and a
// bit-identical rebuild on the next write/read cycle.
func TestDiskCorruptionRecovery(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"header magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"header length", func(b []byte) []byte { b[8] ^= 0x01; return b }},
		{"stored digest", func(b []byte) []byte { b[16] ^= 0x80; return b }},
		{"body bit flip", func(b []byte) []byte { b[diskHeaderSize+3] ^= 0x10; return b }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDisk(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			k := key("profile", "gzip")
			data := []byte("profile bytes profile bytes")
			if err := d.Write(k, data); err != nil {
				t.Fatal(err)
			}
			path := d.path(k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(raw), 0o600); err != nil {
				t.Fatal(err)
			}
			_, err = d.Read(k)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("corrupt entry read: got %v, want *CorruptError", err)
			}
			if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
				t.Error("corrupt entry not deleted")
			}
			// Rebuild: a fresh write must round-trip bit-identically.
			if err := d.Write(k, data); err != nil {
				t.Fatal(err)
			}
			back, err := d.Read(k)
			if err != nil {
				t.Fatal(err)
			}
			if string(back) != string(data) {
				t.Error("rebuilt entry differs")
			}
		})
	}
}

func TestDiskGCOldestFirst(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100)
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = key("profile", fmt.Sprint("bench", i))
		if err := d.Write(keys[i], data); err != nil {
			t.Fatal(err)
		}
		// Stagger mtimes so age order is unambiguous: keys[0] oldest.
		mt := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(d.path(keys[i]), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	entrySize := int64(diskHeaderSize + len(data))
	// Budget for two entries: GC must delete the two oldest.
	d2, err := OpenDisk(dir, 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	evicted := d2.GC()
	if len(evicted) != 2 {
		t.Fatalf("GC evicted %d entries, want 2: %v", len(evicted), evicted)
	}
	for i, k := range []Key{keys[0], keys[1]} {
		if evicted[i] != k {
			t.Errorf("evicted[%d] = %v, want oldest %v", i, evicted[i], k)
		}
	}
	for _, k := range keys[2:] {
		if !d2.Has(k) {
			t.Errorf("newer entry %v evicted", k)
		}
	}
	if got := d2.UsedBytes(); got != 2*entrySize {
		t.Errorf("UsedBytes after GC = %d, want %d", got, 2*entrySize)
	}
}

func TestDiskGCSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	kindDir := filepath.Join(dir, "profile")
	if err := os.MkdirAll(kindDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(kindDir, tmpPrefix+"deadbeef-123")
	fresh := filepath.Join(kindDir, tmpPrefix+"cafef00d-456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	d.GC()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file not swept")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("in-flight temp file swept")
	}
}

// TestStoreWarmStartFromDisk is the tier contract end to end: a second
// store over the same directory serves Get from disk with zero builds.
func TestStoreWarmStartFromDisk(t *testing.T) {
	dir := t.TempDir()
	k := key("profile", "gzip")

	var builds atomic.Int64
	cold := diskStore(t, dir, 0, 0)
	want := getPayload(t, cold, k, &builds)
	if builds.Load() != 1 {
		t.Fatalf("cold run built %d times", builds.Load())
	}
	cs := cold.Stats().Kinds["profile"]
	if cs.DiskWrites != 1 || cs.DiskMisses != 1 || cs.DiskHits != 0 {
		t.Errorf("cold stats = %+v", cs)
	}

	warm := diskStore(t, dir, 0, 0)
	got := getPayload(t, warm, k, &builds)
	if builds.Load() != 1 {
		t.Fatalf("warm run rebuilt (%d builds total)", builds.Load())
	}
	if got != want {
		t.Errorf("warm value %+v differs from cold %+v", got, want)
	}
	ws := warm.Stats().Kinds["profile"]
	if ws.DiskHits != 1 || ws.Misses != 0 || ws.DiskWrites != 0 {
		t.Errorf("warm stats = %+v", ws)
	}
	if warm.Stats().DiskUsedBytes == 0 {
		t.Error("warm stats report zero disk bytes")
	}
}

// TestStoreRebuildsCorruptDiskEntry corrupts the on-disk entry between
// runs: the warm store must detect it, count a verify failure, rebuild,
// and re-persist — never serve wrong bytes.
func TestStoreRebuildsCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	k := key("profile", "gzip")
	var builds atomic.Int64
	cold := diskStore(t, dir, 0, 0)
	want := getPayload(t, cold, k, &builds)

	path := cold.DiskTier().path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[diskHeaderSize] ^= 0x40
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	warm := diskStore(t, dir, 0, 0)
	got := getPayload(t, warm, k, &builds)
	if got != want {
		t.Errorf("rebuilt value %+v differs from original %+v", got, want)
	}
	if builds.Load() != 2 {
		t.Errorf("corrupt entry: %d builds total, want 2 (cold + rebuild)", builds.Load())
	}
	ws := warm.Stats().Kinds["profile"]
	if ws.VerifyFailures != 1 || ws.Misses != 1 || ws.DiskWrites != 1 {
		t.Errorf("rebuild stats = %+v", ws)
	}
	// Third store: the rebuilt write-through must serve a clean disk hit.
	third := diskStore(t, dir, 0, 0)
	if got := getPayload(t, third, k, &builds); got != want {
		t.Error("third run differs")
	}
	if builds.Load() != 2 {
		t.Error("third run rebuilt despite repaired entry")
	}
}

// TestStoreRejectsUndecodablePayload covers the second validation layer:
// bytes whose digest verifies but whose codec decode fails (a stale
// format) are deleted and rebuilt.
func TestStoreRejectsUndecodablePayload(t *testing.T) {
	dir := t.TempDir()
	k := key("profile", "gzip")
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A well-formed entry whose payload is not a payload JSON document.
	if err := d.Write(k, []byte(`{"Unknown":"field"}`)); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	s := diskStore(t, dir, 0, 0)
	getPayload(t, s, k, &builds)
	if builds.Load() != 1 {
		t.Error("undecodable payload served without rebuild")
	}
	ks := s.Stats().Kinds["profile"]
	if ks.VerifyFailures != 1 {
		t.Errorf("stats = %+v, want one verify failure", ks)
	}
}

// TestStoreSpillOnEvict removes the disk entry behind the store's back
// and then evicts: the LRU victim must be re-encoded and spilled before
// its Releaser runs.
func TestStoreSpillOnEvict(t *testing.T) {
	dir := t.TempDir()
	s := New(100) // budget below two 64-byte artifacts
	s.RegisterCodec("profile", payloadCodec())
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDisk(d)

	k1, k2 := key("profile", "gzip"), key("profile", "vpr")
	getPayload(t, s, k1, nil)
	// Drop k1's write-through entry so the upcoming eviction must spill.
	if err := os.Remove(d.path(k1)); err != nil {
		t.Fatal(err)
	}
	getPayload(t, s, k2, nil) // release pushes over budget, evicts k1
	if !d.Has(k1) {
		t.Error("evicted artifact not spilled to disk")
	}
	// And the spilled entry must be servable.
	var builds atomic.Int64
	getPayload(t, s, k1, &builds)
	if builds.Load() != 0 {
		t.Error("spilled artifact rebuilt instead of loaded")
	}
}

// TestStoreDiskGCCounters drives the disk budget low enough that the
// write-through GC evicts, and checks the per-kind counter.
func TestStoreDiskGCCounters(t *testing.T) {
	dir := t.TempDir()
	// Each JSON payload entry is ~48+30 bytes; budget for ~one entry.
	s := diskStore(t, dir, 0, 100)
	for i := 0; i < 4; i++ {
		k := key("profile", fmt.Sprint("bench", i))
		getPayload(t, s, k, nil)
	}
	ks := s.Stats().Kinds["profile"]
	if ks.DiskGCEvictions == 0 {
		t.Errorf("stats = %+v, want disk GC evictions", ks)
	}
	if used, budget := s.DiskTier().UsedBytes(), int64(100); used > budget {
		t.Errorf("disk used %d over budget %d after GC", used, budget)
	}
}

// TestDiskConcurrentStores runs two Store instances over one directory
// from many goroutines (the in-process model of two processes sharing a
// cache). Values must be correct everywhere and the directory must end
// consistent; run under -race this also proves the locking.
func TestDiskConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	stores := [2]*Store{diskStore(t, dir, 0, 0), diskStore(t, dir, 0, 0)}

	const goroutines = 8
	const keysN = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := stores[g%2]
			for i := 0; i < keysN; i++ {
				k := key("profile", fmt.Sprint("bench", i))
				v, release, err := Get(s, k, func() (payload, int64, error) {
					return payload{Name: k.Digest[:8], N: 42}, 64, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if v.Name != k.Digest[:8] {
					errs <- fmt.Errorf("wrong value for %v: %+v", k, v)
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every key must have landed exactly one verified entry.
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keysN; i++ {
		k := key("profile", fmt.Sprint("bench", i))
		if _, err := d.Read(k); err != nil {
			t.Errorf("entry %v unreadable after concurrent churn: %v", k, err)
		}
	}
}

// TestDiskFaultInjection arms every failure mode at artifact.disk:
// transient write/read faults and in-flight payload corruption. Gets must
// always succeed (persistence is best-effort, corrupt readbacks rebuild),
// and once the injector is disarmed every surviving file must verify.
func TestDiskFaultInjection(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			dir := t.TempDir()
			in := faults.NewInjector(seed).
				Arm(faults.SiteArtifactDisk, faults.Rule{Kind: faults.Transient, Rate: 0.3}).
				Arm(faults.SiteArtifactDisk, faults.Rule{Kind: faults.Corrupt, Rate: 0.3})
			faults.Set(in)
			defer faults.Set(nil)

			for round := 0; round < 2; round++ {
				s := diskStore(t, dir, 0, 0)
				for i := 0; i < 5; i++ {
					k := key("profile", fmt.Sprint("bench", i))
					v, release, err := Get(s, k, func() (payload, int64, error) {
						return payload{Name: k.Digest[:8], N: 42}, 64, nil
					})
					if err != nil {
						t.Fatalf("round %d: Get under faults failed: %v", round, err)
					}
					if v.Name != k.Digest[:8] {
						t.Fatalf("round %d: wrong value %+v", round, v)
					}
					release()
				}
			}
			if in.Fired(faults.SiteArtifactDisk) == 0 {
				t.Error("no faults fired")
			}

			// A Corrupt-rule write deliberately lands mangled bytes under a
			// clean rename (the torn-write model), so surviving files need
			// not all verify — but every one must either verify or be
			// detected as corrupt and deleted, never read back wrong.
			faults.Set(nil)
			d, err := OpenDisk(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			entries, _, err := d.scan()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				_, err := d.Read(e.key)
				var ce *CorruptError
				if err != nil && !errors.As(err, &ce) {
					t.Errorf("entry %v: %v", e.key, err)
				}
				if errors.As(err, &ce) {
					if _, statErr := os.Stat(e.path); !os.IsNotExist(statErr) {
						t.Errorf("corrupt entry %v not deleted", e.key)
					}
				}
			}
		})
	}
}

// TestDiskCrossProcess shares one cache directory with real child
// processes: the test binary re-execs itself (the ARTIFACT_DISK_CHILD
// branch below) so OS-level atomicity — O_EXCL temps, rename, rescan —
// is exercised across process boundaries, not just goroutines. A cold
// child populates the directory; two concurrent warm children must then
// serve every key from disk with zero builds.
func TestDiskCrossProcess(t *testing.T) {
	const keysN = 5
	if dir := os.Getenv("ARTIFACT_DISK_CHILD"); dir != "" {
		s := New(0)
		s.RegisterCodec("profile", payloadCodec())
		d, err := OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		s.SetDisk(d)
		for i := 0; i < keysN; i++ {
			k := key("profile", fmt.Sprint("bench", i))
			v, release, err := Get(s, k, func() (payload, int64, error) {
				return payload{Name: k.Digest[:8], N: 42}, 64, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if v.Name != k.Digest[:8] {
				t.Fatalf("wrong value for %v: %+v", k, v)
			}
			release()
		}
		out, err := json.Marshal(s.Stats().Kinds["profile"])
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("CHILD_STATS %s\n", out)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot find test binary: %v", err)
	}
	dir := t.TempDir()
	spawn := func() ([]byte, error) {
		cmd := exec.Command(exe, "-test.run", "^TestDiskCrossProcess$", "-test.v")
		cmd.Env = append(os.Environ(), "ARTIFACT_DISK_CHILD="+dir)
		return cmd.CombinedOutput()
	}
	childStats := func(out []byte) (KindStats, error) {
		var ks KindStats
		for _, line := range strings.Split(string(out), "\n") {
			if rest, ok := strings.CutPrefix(line, "CHILD_STATS "); ok {
				return ks, json.Unmarshal([]byte(rest), &ks)
			}
		}
		return ks, fmt.Errorf("no CHILD_STATS line in output:\n%s", out)
	}

	cold, err := spawn()
	if err != nil {
		t.Fatalf("cold child failed: %v\n%s", err, cold)
	}
	ks, err := childStats(cold)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Misses != keysN || ks.DiskWrites != keysN {
		t.Errorf("cold child stats = %+v", ks)
	}

	type res struct {
		out []byte
		err error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			out, err := spawn()
			results <- res{out, err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("warm child failed: %v\n%s", r.err, r.out)
		}
		ks, err := childStats(r.out)
		if err != nil {
			t.Fatal(err)
		}
		if ks.Misses != 0 || ks.DiskHits != keysN {
			t.Errorf("warm child stats = %+v (want 0 builds, %d disk hits)", ks, keysN)
		}
	}
}
