//go:build !unix

package artifact

import "os"

// mapFile reads the file at path into memory. Platforms without mmap
// support fall back to a plain read; the release function is a no-op.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
