package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Codec serializes one artifact kind for the persistent disk tier. A kind
// with no registered codec is simply never persisted (e.g. compiled
// programs, which are cheaper to rebuild than to encode).
//
// Encode/Decode must round-trip bit-identically: a decoded artifact is
// served in place of a rebuild, and the store's contract is that the two
// are indistinguishable. Decode receives the full payload that already
// passed content-digest verification — as bytes, so codecs can slice
// sections in place instead of re-buffering a stream — but it must still
// validate structure: a file written by a different build of the code is
// untrusted input, so return an error rather than a malformed value.
// The payload may be a view over mapped file pages that the store
// releases when Decode returns, so the decoded value must not retain
// references into it. The
// returned size is the resident footprint charged against the in-memory
// budget, exactly as the builder would have reported it.
type Codec interface {
	Encode(w io.Writer, v any) error
	Decode(payload []byte) (v any, size int64, err error)
}

// JSONCodec persists a flat result struct as canonical JSON — the same
// encoding the spec digests use. Size is the fixed resident footprint the
// kind charges per value (e.g. predEvalSize, machineStatsSize).
type JSONCodec[T any] struct {
	Size int64
}

// Encode writes v (which must be a T) as JSON.
func (c JSONCodec[T]) Encode(w io.Writer, v any) error {
	t, ok := v.(T)
	if !ok {
		return fmt.Errorf("artifact: json codec holds %T, got %T", t, v)
	}
	return json.NewEncoder(w).Encode(t)
}

// Decode reads one strict JSON document: unknown fields and trailing
// garbage are rejected so a truncated or mismatched payload cannot decode
// to a zero-filled "success".
func (c JSONCodec[T]) Decode(payload []byte) (any, int64, error) {
	var t T
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, 0, fmt.Errorf("artifact: json codec: %w", err)
	}
	// The payload must be exactly one document.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, 0, fmt.Errorf("artifact: json codec: trailing data after document")
	}
	return t, c.Size, nil
}

// EncodeSizeHinter is an optional Codec extension: a codec that can bound
// its encoded size up front lets the write path allocate the encode
// buffer once instead of growing (and re-zeroing) it through doublings —
// for multi-megabyte artifacts the growth copies cost more than the
// encode itself. The hint need not be exact; it is a capacity reservation.
type EncodeSizeHinter interface {
	EncodeSizeHint(v any) int
}

// encodeToBytes runs a codec into memory, for the write path (the payload
// digest must be computed over the full encoding before any byte lands on
// disk).
func encodeToBytes(c Codec, v any) ([]byte, error) {
	var buf bytes.Buffer
	if h, ok := c.(EncodeSizeHinter); ok {
		if n := h.EncodeSizeHint(v); n > 0 {
			buf.Grow(n)
		}
	}
	if err := c.Encode(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
