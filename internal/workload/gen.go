// Package workload generates the deterministic synthetic benchmark suite
// standing in for the paper's SPEC CPU2000 programs. Each benchmark is
// built as compiler IR from a seeded random program generator and compiled
// through the full optimization pipeline, so its machine code exhibits the
// phenomena the paper studies with realistic provenance:
//
//   - partially dead assignments (a value computed unconditionally but
//     overwritten on one side of a diamond);
//   - speculatively hoisted computations that are dead whenever the branch
//     takes the other path (created by the compiler's scheduler, not by
//     the generator — disable hoisting and they disappear, experiment E3);
//   - spill/reload traffic whose stores can die;
//   - dead stores (arrays written and rewritten without intervening
//     loads);
//   - loop-nest control with predictable periodic and data-dependent
//     branch behaviour, so deadness correlates with future control flow.
//
// Every profile is fully deterministic: the same Profile always produces
// bit-identical IR and machine code.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/program"
)

// Profile describes one synthetic benchmark's shape.
type Profile struct {
	Name string
	Seed int64

	// LoopNests is the number of sequential top-level loops.
	LoopNests int
	// OuterIters is the trip count of each top-level loop.
	OuterIters int
	// InnerIters, when nonzero, nests an inner loop of this trip count
	// inside roughly half the outer loop bodies.
	InnerIters int
	// Patterns is the number of code patterns emitted per loop body.
	Patterns int

	// DiamondProb is the probability a pattern is an if/else diamond.
	DiamondProb float64
	// ThenBias is the probability the diamond condition selects the
	// then-path; values far from 0.5 give predictable branches.
	ThenBias float64
	// DataBranchProb makes a diamond's condition depend on loaded data
	// rather than the induction variable (harder to predict).
	DataBranchProb float64
	// OverwriteProb is the probability a diamond uses the "partially dead
	// assignment" flavor: a pre-branch definition overwritten on the
	// then-path.
	OverwriteProb float64

	// MemProb is the probability a non-diamond pattern is an array
	// load-compute-store; ChaseProb makes it a pointer chase instead.
	MemProb   float64
	ChaseProb float64
	// DeadStoreProb makes an emitted store target the write-only array
	// (never loaded, so the store dies when overwritten or at trace end).
	DeadStoreProb float64
	// SinkProb is the probability a pattern's result is folded into the
	// live output accumulator; unfolded results die.
	SinkProb float64
	// CallProb is the probability a pattern is a subroutine call wrapped
	// in calling-convention register saves and restores. The restores are
	// partially dead: a post-call diamond overwrites one of the restored
	// registers on its then-path (the calling-convention deadness the
	// paper attributes to save/restore overhead).
	CallProb float64

	// ArrayWords sizes each data array in 8-byte words (power of two);
	// 0 selects defaultArrayWords. Memory-bound profiles use arrays larger
	// than the L1 (or L2) to produce realistic miss rates.
	ArrayWords int

	// Compilation defaults for this benchmark.
	Opts compiler.Options
}

// defaultArrayWords is the per-array size when a profile does not override
// it: 4 KB arrays that mostly fit in a 16 KB L1.
const defaultArrayWords = 512

func (p Profile) arrayWords() int {
	if p.ArrayWords > 0 {
		return p.ArrayWords
	}
	return defaultArrayWords
}

// Build generates the benchmark's IR. The result is valid (Func.Validate
// passes) and always terminates when interpreted or executed.
func (p Profile) Build() (*compiler.Func, error) {
	if p.LoopNests < 1 || p.OuterIters < 1 || p.Patterns < 1 {
		return nil, fmt.Errorf("workload %q: degenerate profile %+v", p.Name, p)
	}
	if n := p.arrayWords(); n&(n-1) != 0 {
		return nil, fmt.Errorf("workload %q: ArrayWords %d must be a power of two", p.Name, n)
	}
	g := &gen{
		prof: p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		f:    compiler.NewFunc(p.Name),
		nw:   p.arrayWords(),
	}
	g.build()
	if err := g.f.Validate(); err != nil {
		return nil, fmt.Errorf("workload %q: generated invalid IR: %w", p.Name, err)
	}
	return g.f, nil
}

// Compile builds and compiles the benchmark. A nil opts uses the profile's
// own options.
func (p Profile) Compile(opts *compiler.Options) (*program.Program, compiler.PassStats, error) {
	f, err := p.Build()
	if err != nil {
		return nil, compiler.PassStats{}, err
	}
	o := p.Opts
	if opts != nil {
		o = *opts
	}
	return compiler.Compile(f, o)
}

type gen struct {
	prof Profile
	rng  *rand.Rand
	f    *compiler.Func

	cur *compiler.Block // current mainline block

	// Unconditionally defined values available as operands.
	pool []compiler.VReg
	// sink accumulates live results; it is OUT at program end.
	sink compiler.VReg
	// zero and one are shared constants.
	zero compiler.VReg
	// baseA/baseB/baseDead are array base addresses; ring is the pointer-
	// chase cursor.
	baseA, baseB, baseDead compiler.VReg
	ring                   compiler.VReg
	// baseSave addresses the calling-convention save area; callSites
	// numbers the call regions (each gets two private slots); subs lists
	// generated subroutine entry blocks for reuse across call sites.
	baseSave  compiler.VReg
	callSites int
	subs      []int
	// nw is the per-array size in words; array offsets derive from it.
	nw int
}

func (g *gen) offB() int    { return 8 * g.nw }
func (g *gen) offRing() int { return 16 * g.nw }
func (g *gen) offDead() int { return 24 * g.nw }
func (g *gen) offSave() int { return 32 * g.nw }

// saveArea is the size of the calling-convention save region appended to
// the data segment (two 8-byte slots per call site).
const saveArea = 4096

func (g *gen) build() {
	f := g.f
	// Data: array A with pseudo-random values, array B zeroed, a pointer
	// ring for chasing, and a scratch array.
	f.Data = make([]byte, 32*g.nw+saveArea)
	for i := 0; i < g.nw; i++ {
		binary.LittleEndian.PutUint64(f.Data[8*i:], g.rng.Uint64()>>32)
	}
	perm := g.rng.Perm(g.nw)
	for i := 0; i < g.nw; i++ {
		next := program.DataBase + uint64(g.offRing()) + 8*uint64(perm[i])
		binary.LittleEndian.PutUint64(f.Data[g.offRing()+8*i:], next)
	}

	g.cur = f.NewBlock()
	g.zero = g.constant(0)
	g.sink = g.constant(int64(g.rng.Uint32()))
	g.baseA = g.constant(int64(program.DataBase))
	g.baseB = g.constant(int64(program.DataBase) + int64(g.offB()))
	g.baseDead = g.constant(int64(program.DataBase) + int64(g.offDead()))
	g.baseSave = g.constant(int64(program.DataBase) + int64(g.offSave()))
	g.ring = g.f.NewVReg()
	g.cur.Append(compiler.Instr{
		Kind: compiler.KALUImm, Op: isa.ADDI, Dst: g.ring, A: g.baseA, Imm: int64(g.offRing()),
	})
	for i := 0; i < 6; i++ {
		g.pool = append(g.pool, g.constant(int64(g.rng.Int31())))
	}

	for n := 0; n < g.prof.LoopNests; n++ {
		g.loopNest(g.prof.OuterIters, true)
		// Programs report progress between phases, like real benchmarks
		// writing output; this also roots the accumulator chain so that
		// usefulness does not hinge on reaching the final HALT.
		g.cur.Append(compiler.Instr{Kind: compiler.KOut, A: g.sink})
	}

	// Outputs: the sink plus a few pool members stay live to the end.
	g.cur.Append(compiler.Instr{Kind: compiler.KOut, A: g.sink})
	for i := 0; i < 4 && i < len(g.pool); i++ {
		g.cur.Append(compiler.Instr{Kind: compiler.KOut, A: g.pool[len(g.pool)-1-i]})
	}
	g.cur.Term = compiler.Terminator{Kind: compiler.THalt}
}

func (g *gen) constant(v int64) compiler.VReg {
	r := g.f.NewVReg()
	g.cur.Append(compiler.Instr{Kind: compiler.KConst, Dst: r, Imm: v})
	return r
}

func (g *gen) pick() compiler.VReg {
	return g.pool[g.rng.Intn(len(g.pool))]
}

// alu emits dst = op(a, b) in the current block.
func (g *gen) alu(op isa.Op, dst, a, b compiler.VReg) {
	g.cur.Append(compiler.Instr{Kind: compiler.KALU, Op: op, Dst: dst, A: a, B: b})
}

func (g *gen) aluImm(op isa.Op, dst, a compiler.VReg, imm int64) {
	g.cur.Append(compiler.Instr{Kind: compiler.KALUImm, Op: op, Dst: dst, A: a, Imm: imm})
}

var aluOps = []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.OR, isa.AND, isa.ADD, isa.SUB, isa.MUL}

func (g *gen) randALUOp() isa.Op { return aluOps[g.rng.Intn(len(aluOps))] }

// foldSink merges v into the live accumulator with probability SinkProb;
// otherwise v's last definition is left to die.
func (g *gen) foldSink(v compiler.VReg) {
	if g.rng.Float64() < g.prof.SinkProb {
		g.alu(isa.XOR, g.sink, g.sink, v)
	}
}

// loopNest emits one counted loop; outer selects top-level loops that may
// nest an inner loop.
func (g *gen) loopNest(iters int, outer bool) {
	f := g.f
	i := f.NewVReg()
	limit := g.constant(int64(iters))
	g.cur.Append(compiler.Instr{Kind: compiler.KConst, Dst: i, Imm: 0})

	header := f.NewBlock()
	exit := f.NewBlock()
	g.cur.Term = compiler.Terminator{Kind: compiler.TJump, To: header.ID}
	g.cur = header

	// Body patterns; inner loops get smaller bodies so nests do not
	// explode the dynamic instruction count.
	patterns := g.prof.Patterns
	if !outer {
		patterns = min(3, patterns)
	}
	nested := false
	for k := 0; k < patterns; k++ {
		switch r := g.rng.Float64(); {
		case r < g.prof.DiamondProb:
			g.diamond(i)
		case outer && g.rng.Float64() < g.prof.CallProb:
			g.callRegion(i)
		case outer && g.prof.InnerIters > 0 && !nested && g.rng.Float64() < 0.5:
			nested = true
			g.loopNest(g.prof.InnerIters, false)
		case g.rng.Float64() < g.prof.ChaseProb:
			g.chase()
		case g.rng.Float64() < g.prof.MemProb:
			g.arrayStep(i)
		default:
			g.chainStep(i)
		}
	}

	// Latch: i++; if i < limit goto header.
	g.aluImm(isa.ADDI, i, i, 1)
	g.cur.Term = compiler.Terminator{
		Kind: compiler.TBranch, Op: isa.BLT, A: i, B: limit,
		To: header.ID, Else: exit.ID,
	}
	g.cur = exit
}

// chainStep emits a short dependent ALU chain ending in a new pool value.
func (g *gen) chainStep(i compiler.VReg) {
	v := g.f.NewVReg()
	g.alu(g.randALUOp(), v, g.pick(), g.pick())
	n := 1 + g.rng.Intn(3)
	for k := 0; k < n; k++ {
		g.alu(g.randALUOp(), v, v, g.pick())
	}
	g.aluImm(isa.ADDI, v, v, int64(g.rng.Intn(64)))
	g.addPool(v)
	g.foldSink(v)
	_ = i
}

// arrayStep loads A[i mod n], combines, stores the result to B, and reads
// it back into the live accumulator, so plain stores are useful. With
// probability DeadStoreProb, the store is guarded by an overwriting
// diamond — a second store to the same address on the then-path — making
// the first store *partially dead*: its bytes die exactly when the branch
// takes the overwriting path, the memory analog of a partially dead
// assignment.
func (g *gen) arrayStep(i compiler.VReg) {
	f := g.f
	idx := f.NewVReg()
	addr := f.NewVReg()
	v := f.NewVReg()
	g.aluImm(isa.ANDI, idx, i, int64(g.nw-1))
	g.aluImm(isa.SLLI, idx, idx, 3)
	g.alu(isa.ADD, addr, g.baseA, idx)
	g.cur.Append(compiler.Instr{Kind: compiler.KLoad, Op: isa.LD, Dst: v, A: addr})
	g.alu(g.randALUOp(), v, v, g.pick())

	addrB := f.NewVReg()
	g.alu(isa.ADD, addrB, g.baseB, idx)
	g.cur.Append(compiler.Instr{Kind: compiler.KStore, Op: isa.SD, A: addrB, B: v})

	if g.rng.Float64() < g.prof.DeadStoreProb {
		then := f.NewBlock()
		join := f.NewBlock()
		g.periodicBranch(i, then.ID, join.ID)
		g.cur = then
		v2 := f.NewVReg()
		g.alu(g.randALUOp(), v2, v, g.pick())
		g.cur.Append(compiler.Instr{Kind: compiler.KStore, Op: isa.SD, A: addrB, B: v2})
		g.cur.Term = compiler.Terminator{Kind: compiler.TJump, To: join.ID}
		g.cur = join
	}

	w := f.NewVReg()
	g.cur.Append(compiler.Instr{Kind: compiler.KLoad, Op: isa.LD, Dst: w, A: addrB})
	g.foldSink(w)
}

// periodicBranch closes the current block with a periodic condition on the
// induction variable, taking the then target roughly per ThenBias.
func (g *gen) periodicBranch(i compiler.VReg, then, els int) {
	period := 1 << (1 + g.rng.Intn(3)) // 2, 4, or 8
	k := g.rng.Intn(period)
	cond := g.f.NewVReg()
	g.aluImm(isa.ANDI, cond, i, int64(period-1))
	kv := g.constant(int64(k))
	op := isa.BEQ
	if g.prof.ThenBias > 0.5 {
		op = isa.BNE // then-path taken (period-1)/period of the time
	}
	g.cur.Term = compiler.Terminator{
		Kind: compiler.TBranch, Op: op, A: cond, B: kv,
		To: then, Else: els,
	}
}

// chase advances the pointer ring: ring = mem[ring].
func (g *gen) chase() {
	g.cur.Append(compiler.Instr{Kind: compiler.KLoad, Op: isa.LD, Dst: g.ring, A: g.ring})
	v := g.f.NewVReg()
	g.aluImm(isa.ANDI, v, g.ring, 0xff)
	g.foldSink(v)
}

// callRegion emits a subroutine call bracketed by calling-convention
// saves and restores of two working registers. The subroutine (shared
// across call sites with 50% probability) clobbers pool registers, so the
// convention is semantically necessary; the deadness arises afterwards,
// when a periodic diamond overwrites one restored register before any
// read — making that restore (and transitively its save) dead exactly on
// the overwriting path.
func (g *gen) callRegion(i compiler.VReg) {
	f := g.f
	s1, s2 := g.pick(), g.pick()
	for tries := 0; s2 == s1 && tries < 8; tries++ {
		s2 = g.pick()
	}
	if s1 == s2 {
		return // degenerate pool; skip the pattern
	}
	slot := int64((g.callSites * 16) % saveArea)
	g.callSites++
	g.cur.AppendProv(compiler.Instr{
		Kind: compiler.KStore, Op: isa.SD, A: g.baseSave, B: s1, Imm: slot,
	}, program.ProvCallSave)
	g.cur.AppendProv(compiler.Instr{
		Kind: compiler.KStore, Op: isa.SD, A: g.baseSave, B: s2, Imm: slot + 8,
	}, program.ProvCallSave)

	// Find or build a leaf subroutine that clobbers pool registers.
	var entry int
	if len(g.subs) > 0 && g.rng.Float64() < 0.5 {
		entry = g.subs[g.rng.Intn(len(g.subs))]
	} else {
		caller := g.cur
		callee := f.NewBlock()
		g.cur = callee
		for k := 0; k < 2+g.rng.Intn(3); k++ {
			g.alu(g.randALUOp(), g.pick(), g.pick(), g.pick())
		}
		g.alu(isa.XOR, g.sink, g.sink, g.pick())
		g.cur.Term = compiler.Terminator{Kind: compiler.TRet}
		g.subs = append(g.subs, callee.ID)
		g.cur = caller
		entry = callee.ID
	}
	cont := f.NewBlock()
	g.cur.Term = compiler.Terminator{Kind: compiler.TCall, To: entry, Else: cont.ID}
	g.cur = cont

	// Restore the convention registers.
	g.cur.AppendProv(compiler.Instr{
		Kind: compiler.KLoad, Op: isa.LD, Dst: s1, A: g.baseSave, Imm: slot,
	}, program.ProvCallRestore)
	g.cur.AppendProv(compiler.Instr{
		Kind: compiler.KLoad, Op: isa.LD, Dst: s2, A: g.baseSave, Imm: slot + 8,
	}, program.ProvCallRestore)

	// The caller overwrites one restored register on a periodic path,
	// killing that restore's value before any read.
	then := f.NewBlock()
	join := f.NewBlock()
	g.periodicBranch(i, then.ID, join.ID)
	g.cur = then
	g.alu(g.randALUOp(), s1, g.pick(), g.pick())
	g.cur.Term = compiler.Terminator{Kind: compiler.TJump, To: join.ID}
	g.cur = join
	g.foldSink(s1)
	g.foldSink(s2)
}

// diamond emits an if/else whose shape creates path-correlated deadness.
func (g *gen) diamond(i compiler.VReg) {
	f := g.f
	then := f.NewBlock()
	els := f.NewBlock()
	join := f.NewBlock()

	overwrite := g.rng.Float64() < g.prof.OverwriteProb
	var x compiler.VReg
	if overwrite {
		// Partially dead assignment: x defined here, overwritten in then.
		x = f.NewVReg()
		g.alu(g.randALUOp(), x, g.pick(), g.pick())
	}

	if g.rng.Float64() < g.prof.DataBranchProb {
		// Data-dependent: load A[i mod n] and compare against a threshold
		// chosen to approximate ThenBias over A's uniform values.
		cond := f.NewVReg()
		addr := f.NewVReg()
		g.aluImm(isa.ANDI, cond, i, int64(g.nw-1))
		g.aluImm(isa.SLLI, cond, cond, 3)
		g.alu(isa.ADD, addr, g.baseA, cond)
		g.cur.Append(compiler.Instr{Kind: compiler.KLoad, Op: isa.LD, Dst: cond, A: addr})
		thr := g.constant(int64(float64(1<<32) * g.prof.ThenBias))
		g.cur.Term = compiler.Terminator{
			Kind: compiler.TBranch, Op: isa.BLT, A: cond, B: thr,
			To: then.ID, Else: els.ID,
		}
	} else {
		// Periodic: the then-path recurs with a short, learnable period.
		g.periodicBranch(i, then.ID, els.ID)
	}

	// then-arm: computation whose inputs are available before the branch —
	// exactly what the scheduler will hoist.
	g.cur = then
	t := f.NewVReg()
	g.alu(g.randALUOp(), t, g.pick(), g.pick())
	g.aluImm(isa.SLLI, t, t, int64(1+g.rng.Intn(4)))
	if overwrite {
		g.aluImm(isa.ADDI, x, t, 1)
	} else {
		g.alu(isa.XOR, g.sink, g.sink, t)
	}
	g.cur.Term = compiler.Terminator{Kind: compiler.TJump, To: join.ID}

	// else-arm: cheap alternative.
	g.cur = els
	if overwrite && g.rng.Float64() < 0.3 {
		g.aluImm(isa.ADDI, x, x, 3)
	}
	g.cur.Term = compiler.Terminator{Kind: compiler.TJump, To: join.ID}

	g.cur = join
	if overwrite {
		g.foldSink(x)
	}
}

func (g *gen) addPool(v compiler.VReg) {
	const maxPool = 10
	if len(g.pool) < maxPool {
		g.pool = append(g.pool, v)
		return
	}
	g.pool[g.rng.Intn(len(g.pool))] = v
}
