package workload

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/program"
)

// Benchmark is one compiled suite member.
type Benchmark struct {
	Profile Profile
	Prog    *program.Program
	Stats   compiler.PassStats
}

// opts builds a benchmark's production-compiler configuration. numRegs
// below the full 26 models reserved/ABI registers and induces the spill
// pressure real allocators face.
func opts(hoist, numRegs int) compiler.Options {
	return compiler.Options{MaxHoist: hoist, MaxLICM: 8, NumRegs: numRegs}
}

// Suite returns the profiles of the eleven SPEC CPU2000-named synthetic
// benchmarks evaluated by every experiment. Iteration counts are sized so
// each program commits roughly 0.5-0.8M instructions before halting, and
// the shape knobs are tuned so the suite spans the paper's reported 3-16%
// dynamic dead-instruction range with varied branch predictability and
// memory behaviour (see the TestSuiteDeadFractions tuning guard).
func Suite() []Profile {
	return []Profile{
		{
			Name: "gzip", Seed: 101,
			LoopNests: 3, OuterIters: 1100, InnerIters: 8, Patterns: 7,
			DiamondProb: 0.35, ThenBias: 0.25, DataBranchProb: 0.1,
			OverwriteProb: 0.45, MemProb: 0.5, ChaseProb: 0.05,
			DeadStoreProb: 0.3, SinkProb: 1.0, CallProb: 0.06,
			Opts: opts(2, 20),
		},
		{
			Name: "vpr", Seed: 102,
			LoopNests: 4, OuterIters: 520, InnerIters: 6, Patterns: 8,
			DiamondProb: 0.2, ThenBias: 0.8, DataBranchProb: 0.2,
			OverwriteProb: 0.45, MemProb: 0.4, ChaseProb: 0.05,
			DeadStoreProb: 0.04, SinkProb: 0.97, CallProb: 0.05,
			Opts: opts(2, 20),
		},
		{
			Name: "gcc", Seed: 103,
			LoopNests: 8, OuterIters: 285, InnerIters: 5, Patterns: 9,
			DiamondProb: 0.4, ThenBias: 0.42, DataBranchProb: 0.25,
			OverwriteProb: 0.5, MemProb: 0.45, ChaseProb: 0.1,
			DeadStoreProb: 0.15, SinkProb: 0.92, CallProb: 0.2,
			ArrayWords: 2048, // 16 KB arrays: contends with the L1
			Opts:       opts(2, 16),
		},
		{
			Name: "mcf", Seed: 104,
			LoopNests: 2, OuterIters: 10000, InnerIters: 0, Patterns: 7,
			DiamondProb: 0.2, ThenBias: 0.3, DataBranchProb: 0.3,
			OverwriteProb: 0.4, MemProb: 0.75, ChaseProb: 0.5,
			DeadStoreProb: 0.4, SinkProb: 1.0, CallProb: 0.03,
			ArrayWords: 16384, // 128 KB arrays: the pointer chase lives in memory
			Opts:       opts(1, 22),
		},
		{
			Name: "crafty", Seed: 105,
			LoopNests: 5, OuterIters: 455, InnerIters: 6, Patterns: 9,
			DiamondProb: 0.62, ThenBias: 0.3, DataBranchProb: 0.15,
			OverwriteProb: 0.5, MemProb: 0.3, ChaseProb: 0.0,
			DeadStoreProb: 0.1, SinkProb: 0.88, CallProb: 0.15,
			Opts: opts(3, 18),
		},
		{
			Name: "parser", Seed: 106,
			LoopNests: 4, OuterIters: 730, InnerIters: 5, Patterns: 8,
			DiamondProb: 0.2, ThenBias: 0.7, DataBranchProb: 0.4,
			OverwriteProb: 0.45, MemProb: 0.5, ChaseProb: 0.15,
			DeadStoreProb: 0.08, SinkProb: 0.96, CallProb: 0.15,
			Opts: opts(2, 22),
		},
		{
			Name: "perlbmk", Seed: 107,
			LoopNests: 6, OuterIters: 425, InnerIters: 4, Patterns: 9,
			DiamondProb: 0.35, ThenBias: 0.6, DataBranchProb: 0.3,
			OverwriteProb: 0.5, MemProb: 0.35, ChaseProb: 0.1,
			DeadStoreProb: 0.15, SinkProb: 0.96, CallProb: 0.2,
			Opts: opts(2, 18),
		},
		{
			Name: "gap", Seed: 108,
			LoopNests: 3, OuterIters: 615, InnerIters: 8, Patterns: 8,
			DiamondProb: 0.18, ThenBias: 0.8, DataBranchProb: 0.1,
			OverwriteProb: 0.4, MemProb: 0.45, ChaseProb: 0.05,
			DeadStoreProb: 0.1, SinkProb: 1.0, CallProb: 0.12,
			Opts: opts(2, 20),
		},
		{
			Name: "vortex", Seed: 109,
			LoopNests: 5, OuterIters: 480, InnerIters: 5, Patterns: 8,
			DiamondProb: 0.3, ThenBias: 0.3, DataBranchProb: 0.2,
			OverwriteProb: 0.45, MemProb: 0.65, ChaseProb: 0.2,
			DeadStoreProb: 0.45, SinkProb: 1.0, CallProb: 0.15,
			ArrayWords: 4096, // 32 KB arrays: spills past the L1
			Opts:       opts(2, 20),
		},
		{
			Name: "bzip2", Seed: 110,
			LoopNests: 3, OuterIters: 580, InnerIters: 10, Patterns: 7,
			DiamondProb: 0.58, ThenBias: 0.22, DataBranchProb: 0.05,
			OverwriteProb: 0.5, MemProb: 0.5, ChaseProb: 0.0,
			DeadStoreProb: 0.3, SinkProb: 0.97, CallProb: 0.05,
			Opts: opts(2, 18),
		},
		{
			Name: "twolf", Seed: 111,
			LoopNests: 5, OuterIters: 400, InnerIters: 6, Patterns: 8,
			DiamondProb: 0.4, ThenBias: 0.55, DataBranchProb: 0.25,
			OverwriteProb: 0.5, MemProb: 0.4, ChaseProb: 0.1,
			DeadStoreProb: 0.2, SinkProb: 0.96, CallProb: 0.1,
			Opts: opts(2, 18),
		},
	}
}

// ByName returns the suite profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// BuildSuite compiles every profile with its default options.
func BuildSuite() ([]Benchmark, error) {
	profiles := Suite()
	out := make([]Benchmark, 0, len(profiles))
	for _, p := range profiles {
		prog, st, err := p.Compile(nil)
		if err != nil {
			return nil, fmt.Errorf("workload %q: %w", p.Name, err)
		}
		out = append(out, Benchmark{Profile: p, Prog: prog, Stats: st})
	}
	return out, nil
}
