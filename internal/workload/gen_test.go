package workload

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/deadness"
	"repro/internal/emu"
)

func TestSuiteBuildsAndValidates(t *testing.T) {
	benches, err := BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 11 {
		t.Fatalf("suite size = %d, want 11", len(benches))
	}
	for _, b := range benches {
		if err := b.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", b.Profile.Name, err)
		}
		if len(b.Prog.Insts) < 50 {
			t.Errorf("%s: suspiciously small (%d instructions)",
				b.Profile.Name, len(b.Prog.Insts))
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := p.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Insts, b.Insts) {
		t.Error("two builds of the same profile differ")
	}
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Error("data segments differ")
	}
}

func TestBenchmarksTerminateAndProduceOutput(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog, _, err := p.Compile(nil)
			if err != nil {
				t.Fatal(err)
			}
			_, m, err := emu.Collect(prog, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Halted {
				t.Fatal("did not halt within 5M instructions")
			}
			if len(m.Outputs) == 0 {
				t.Error("no outputs")
			}
		})
	}
}

func TestOptimizationPreservesSemantics(t *testing.T) {
	// The compiled program at every optimization level must produce the
	// IR interpreter's outputs.
	for _, name := range []string{"gzip", "mcf", "crafty"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := compiler.Interpret(f, 20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []compiler.Options{
			{},
			{MaxHoist: 3},
			{MaxLICM: 8},
			p.Opts,
			{MaxHoist: 3, MaxLICM: 8, NumRegs: 8},
		} {
			prog, _, err := p.Compile(&opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			_, m, err := emu.Collect(prog, 20_000_000)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !reflect.DeepEqual(m.Outputs, want) {
				t.Errorf("%s: outputs differ under %+v", name, opts)
			}
		}
	}
}

func TestHoistingHappensInSuite(t *testing.T) {
	benches, err := BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	hoisted := 0
	for _, b := range benches {
		if b.Stats.Hoisted > 0 {
			hoisted++
		}
	}
	// mcf is memory-bound with almost no diamonds; everything else should
	// give the scheduler something to move.
	if hoisted < len(benches)-1 {
		t.Errorf("scheduler hoisted in only %d of %d benchmarks", hoisted, len(benches))
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("gzip"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDegenerateProfileRejected(t *testing.T) {
	if _, err := (Profile{Name: "x"}).Build(); err == nil {
		t.Error("degenerate profile accepted")
	}
}

// TestSuiteDeadFractions is the tuning guard for experiment E1: the suite
// must span the paper's 3-16% dynamic dead-instruction range.
func TestSuiteDeadFractions(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var minF, maxF float64 = 1, 0
	for _, p := range Suite() {
		p := p
		prog, _, err := p.Compile(nil)
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := emu.Collect(prog, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		a, err := deadness.Analyze(tr)
		if err != nil {
			t.Fatal(err)
		}
		s := a.Summarize(tr, prog)
		f := s.DeadFraction()
		t.Logf("%-8s dead %.2f%% (n=%d, first=%d trans=%d loads=%d stores=%d)",
			p.Name, 100*f, tr.Len(), s.FirstLevel, s.Transitive, s.DeadLoads, s.DeadStores)
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
		if f < 0.02 || f > 0.20 {
			t.Errorf("%s: dead fraction %.2f%% outside the plausible band [2%%, 20%%]",
				p.Name, 100*f)
		}
	}
	if minF > 0.06 {
		t.Errorf("suite minimum dead fraction %.2f%% too high — paper reports ~3%%", 100*minF)
	}
	if maxF < 0.10 {
		t.Errorf("suite maximum dead fraction %.2f%% too low — paper reports up to 16%%", 100*maxF)
	}
}
