package workload

import (
	"testing"

	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/program"
)

// analyzeProfile builds, compiles, runs, and analyzes a one-off profile.
func analyzeProfile(t *testing.T, p Profile) (*deadness.Summary, *program.Program) {
	t.Helper()
	prog, _, err := p.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summarize(tr, prog)
	return &s, prog
}

// base returns a minimal, deterministic profile to vary per test.
func base() Profile {
	return Profile{
		Name: "t", Seed: 42,
		LoopNests: 2, OuterIters: 400, Patterns: 6,
		SinkProb: 1.0,
		Opts:     opts(2, 20),
	}
}

func TestPatternStoreDiamondCreatesPartiallyDeadStores(t *testing.T) {
	p := base()
	p.MemProb = 0.9
	p.DeadStoreProb = 1.0 // every array step guards its store
	s, _ := analyzeProfile(t, p)
	if s.DeadStores == 0 {
		t.Fatal("no dead stores from the overwriting diamond")
	}
	// The guarded store is dead only when the branch overwrites: there
	// must also be live stores (partial deadness).
	if s.DeadStores >= s.ByProv[program.ProvNormal].Dyn {
		t.Error("implausible store deadness")
	}
}

func TestPatternCallRegionsProduceConventionDeadness(t *testing.T) {
	p := base()
	p.CallProb = 1.0
	s, _ := analyzeProfile(t, p)
	saves := s.ByProv[program.ProvCallSave]
	restores := s.ByProv[program.ProvCallRestore]
	if saves.Dyn == 0 || restores.Dyn == 0 {
		t.Fatal("no calling-convention code emitted")
	}
	if restores.Dead == 0 {
		t.Error("no dead restores despite post-call overwrites")
	}
	if restores.Dead == restores.Dyn {
		t.Error("every restore dead: should be partially dead")
	}
	// A dead restore implies its save is (at most) transitively dead;
	// dead saves should not exceed dead restores by much.
	if saves.Dead > restores.Dead {
		t.Errorf("dead saves (%d) exceed dead restores (%d)", saves.Dead, restores.Dead)
	}
}

func TestPatternDiamondHoistDeadness(t *testing.T) {
	p := base()
	p.DiamondProb = 0.9
	p.ThenBias = 0.2 // then-path rare: hoisted code mostly dead
	s, _ := analyzeProfile(t, p)
	hoisted := s.ByProv[program.ProvHoisted]
	if hoisted.Dyn == 0 {
		t.Fatal("nothing hoisted")
	}
	ratio := float64(hoisted.Dead) / float64(hoisted.Dyn)
	if ratio < 0.4 {
		t.Errorf("hoisted deadness ratio = %.2f, want mostly dead with rare then-path", ratio)
	}

	// Flip the bias: hoisted code should become mostly live.
	p2 := base()
	p2.DiamondProb = 0.9
	p2.ThenBias = 0.8
	s2, _ := analyzeProfile(t, p2)
	h2 := s2.ByProv[program.ProvHoisted]
	if h2.Dyn == 0 {
		t.Fatal("nothing hoisted in biased variant")
	}
	r2 := float64(h2.Dead) / float64(h2.Dyn)
	if r2 >= ratio {
		t.Errorf("then-biased hoisted deadness %.2f not below rare-then %.2f", r2, ratio)
	}
}

func TestPatternChaseIsLive(t *testing.T) {
	p := base()
	p.ChaseProb = 1.0
	p.MemProb = 1.0
	s, _ := analyzeProfile(t, p)
	// The pointer chase feeds the sink; deadness should be minimal.
	if f := s.DeadFraction(); f > 0.05 {
		t.Errorf("chase-only profile dead fraction = %.2f%%", 100*f)
	}
}

func TestArrayWordsValidation(t *testing.T) {
	p := base()
	p.ArrayWords = 1000 // not a power of two
	if _, err := p.Build(); err == nil {
		t.Error("non-power-of-two ArrayWords accepted")
	}
}
