package workload_test

import (
	"fmt"
	"log"

	"repro/internal/emu"
	"repro/internal/workload"
)

// Example builds one suite benchmark, compiles it through the full
// optimization pipeline, and runs it to completion on the emulator.
func Example() {
	prof, err := workload.ByName("vpr")
	if err != nil {
		log.Fatal(err)
	}
	prog, passes, err := prof.Compile(nil)
	if err != nil {
		log.Fatal(err)
	}
	_, m, err := emu.Collect(prog, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("halted:", m.Halted)
	fmt.Println("scheduler hoisted something:", passes.Hoisted > 0)
	fmt.Println("register allocator spilled something:", passes.Spilled > 0)
	fmt.Println("deterministic first output:", m.Outputs[0] == 0xfffffffc704c7390)
	// Output:
	// halted: true
	// scheduler hoisted something: true
	// register allocator spilled something: true
	// deterministic first output: true
}
