// Package pipeline is the cycle-level out-of-order core model: fetch with
// branch prediction, register renaming over a finite physical register
// file, an issue queue with limited-width select, functional units, a
// load/store queue with store-to-load forwarding, an L1 data cache, and
// in-order commit from a reorder buffer.
//
// The model is trace-driven: it consumes the committed-path dynamic trace
// the functional emulator produced, so values are always correct and
// wrong-path instructions are not simulated; control mispredictions charge
// their cost as a fetch redirect that lasts until the branch executes.
// Every contended resource the paper's mechanism saves — physical
// registers, register-file ports, issue slots, cache bandwidth — is
// modelled explicitly, which is what lets dead-instruction elimination
// translate into measurable utilization and IPC differences (experiments
// E8-E10).
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/dip"
)

// Config describes one machine configuration.
type Config struct {
	// FetchWidth..CommitWidth are per-cycle stage bandwidths.
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// Window capacities.
	ROBSize int
	IQSize  int
	LSQSize int
	// PhysRegs is the physical register file size (must exceed the 32
	// architectural registers).
	PhysRegs int

	// Functional units per cycle.
	IntALUs  int
	MulDivs  int
	MemPorts int

	// Register file ports per cycle; 0 means unlimited.
	RFReadPorts  int
	RFWritePorts int

	// Latencies in cycles.
	MulLatency    int
	DivLatency    int
	BTBMissBubble int
	// DeadRecoveryPenalty is the rename stall charged when a consumer
	// exposes a mispredicted-dead value.
	DeadRecoveryPenalty int

	// Branch predictor geometry (gshare), BTB, and return-address stack.
	GshareLogEntries int
	GshareHistBits   int
	BTBLogEntries    int
	RASDepth         int

	// Cache is the L1D configuration.
	Cache cache.Config
	// L2, when non-nil, adds a second-level cache; MemLatency is then the
	// flat main-memory penalty beyond the L2 (the L1's MissLatency field
	// is ignored in that case).
	L2         *cache.Config
	MemLatency int

	// Elim enables dead-instruction elimination with the given predictor.
	Elim bool
	DIP  dip.Config
	// OracleElim replaces the predictor with the deadness oracle: every
	// actually-dead candidate is eliminated and nothing else. This is the
	// limit study of experiment E13 (no mispredictions, no recoveries).
	OracleElim bool

	// Clusters selects the execution organization: 0 or 1 is the classic
	// single cluster; 2 adds a narrow degraded cluster that instructions
	// *predicted ineffectual* (silent stores, trivial ops) are steered to
	// at rename (experiments E19-E21). The clustering fields carry
	// omitempty so every single-cluster config keeps the digest it had
	// before clustering existed — E1-E18 cache keys and labels are
	// untouched.
	Clusters int `json:",omitempty"`
	// NarrowIssueWidth and NarrowALUs size the degraded cluster: its own
	// issue bandwidth and ALU pool. Memory ports and mul/div units remain
	// shared (one data cache), and narrow-cluster instructions pay one
	// extra cycle of execution latency (cross-cluster bypass), so steering
	// an effectual instruction there is a real penalty.
	NarrowIssueWidth int `json:",omitempty"`
	NarrowALUs       int `json:",omitempty"`
	// SteerDir names the bpred direction predictor reinterpreted as the
	// per-PC ineffectuality steering predictor ("taken" = ineffectual).
	// It is the hardware twin of the trace-level dip.FlavorSteer
	// evaluation, with one deliberate difference: empty selects the
	// history-free "bimodal-4k", not dip.DefaultDirName's gshare. The
	// pipeline predicts at rename but trains at commit, and the candidates
	// in flight between those points shift a global history register, so a
	// history-indexed predictor trains entries other than the ones it
	// predicted from and never converges; a PC-indexed table is immune.
	SteerDir string `json:",omitempty"`
}

// Clustered reports whether the configuration runs the two-cluster
// steered organization.
func (c Config) Clustered() bool { return c.Clusters == 2 }

// SteerDirDefault is the steering predictor an empty SteerDir selects
// (see the SteerDir field doc for why it is not dip.DefaultDirName).
const SteerDirDefault = "bimodal-4k"

// steerDirName resolves the steering predictor name.
func (c Config) steerDirName() string {
	if c.SteerDir == "" {
		return SteerDirDefault
	}
	return c.SteerDir
}

// ClusteredConfig is the two-cluster machine of experiments E19-E21: the
// contended machine reorganized as a full-width primary cluster plus a
// single-issue narrow cluster fed by the ineffectuality steering
// predictor. Total issue bandwidth matches ContendedConfig plus one
// narrow slot, so the interesting comparison is where committed work
// lands, not raw width.
func ClusteredConfig() Config {
	c := ContendedConfig()
	c.Clusters = 2
	c.NarrowIssueWidth = 1
	c.NarrowALUs = 1
	return c
}

// BaselineConfig is a generously provisioned 4-wide machine in the spirit
// of the paper's baseline: resources are large enough that elimination
// mostly saves utilization rather than time.
func BaselineConfig() Config {
	return Config{
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,

		ROBSize:  128,
		IQSize:   64,
		LSQSize:  64,
		PhysRegs: 128,

		IntALUs:  4,
		MulDivs:  2,
		MemPorts: 2,

		RFReadPorts:  0,
		RFWritePorts: 0,

		MulLatency:          3,
		DivLatency:          12,
		BTBMissBubble:       2,
		DeadRecoveryPenalty: 8,

		GshareLogEntries: 12,
		GshareHistBits:   10,
		BTBLogEntries:    9,
		RASDepth:         16,

		Cache: cache.DefaultConfig(),
		DIP:   dip.DefaultConfig(),
	}
}

// DeepMemoryConfig extends the contended machine with an L2 and a slower
// main memory (experiment E15): misses get pricier, so eliminating dead
// loads buys more.
func DeepMemoryConfig() Config {
	c := ContendedConfig()
	l2 := cache.Config{
		SizeBytes:   256 * 1024,
		LineBytes:   64,
		Ways:        8,
		HitLatency:  10,
		MissLatency: 90, // unused in a hierarchy; kept valid
	}
	c.L2 = &l2
	c.MemLatency = 80
	return c
}

// ContendedConfig is the resource-constrained machine of experiment E9:
// the same width with a small physical register file, issue queue, and
// memory/register-file bandwidth, so freeing resources earlier shows up as
// performance.
func ContendedConfig() Config {
	c := BaselineConfig()
	c.PhysRegs = 52
	c.ROBSize = 96
	c.IQSize = 20
	c.LSQSize = 24
	c.IntALUs = 3
	c.MemPorts = 2
	c.RFReadPorts = 4
	c.RFWritePorts = 2
	return c
}

// Digest returns a canonical fingerprint of the configuration: two
// configs describing the same machine (including a dereferenced L2 and
// the predictor geometry) produce equal digests. It is THE memoization /
// artifact-cache key for simulation results, and the digest every
// human-facing label derives from (see Label), so cache keys, fault
// attribution, and verbose logs can never drift apart.
func (c Config) Digest() string {
	// Every field is a plain exported value (the L2 pointer marshals by
	// content, nil as null), so JSON is a stable canonical encoding. The
	// predictor geometry contributes through its own canonical digest
	// rather than raw re-serialization, so the two digest schemes compose
	// and cannot diverge.
	shadow := struct {
		Machine Config
		DIP     string
	}{Machine: c, DIP: c.DIP.Digest()}
	shadow.Machine.DIP = dip.Config{}
	b, err := json.Marshal(shadow)
	if err != nil {
		panic(fmt.Sprintf("pipeline: config not digestible: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Label is the short human-readable form of the configuration used in
// verbose progress lines and error attribution: the elimination mode, the
// register-file size (the main contention knob the experiments sweep),
// and a digest prefix tying the label to the canonical cache key.
func (c Config) Label() string {
	mode := "base"
	switch {
	case c.OracleElim:
		mode = "oracle"
	case c.Elim:
		mode = "elim"
	}
	if c.Clustered() {
		mode += "+2c"
	}
	return fmt.Sprintf("%s r%d [%s]", mode, c.PhysRegs, c.Digest()[:8])
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.RenameWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return errors.New("pipeline: stage widths must be >= 1")
	case c.ROBSize < 4:
		return fmt.Errorf("pipeline: ROB size %d too small", c.ROBSize)
	case c.IQSize < 1 || c.LSQSize < 1:
		return errors.New("pipeline: IQ/LSQ must hold at least one entry")
	case c.PhysRegs < 34:
		return fmt.Errorf("pipeline: %d physical registers cannot back 32 architectural + rename",
			c.PhysRegs)
	case c.IntALUs < 1 || c.MulDivs < 1 || c.MemPorts < 1:
		return errors.New("pipeline: need at least one of each functional unit")
	case c.MulLatency < 1 || c.DivLatency < 1:
		return errors.New("pipeline: latencies must be >= 1")
	case c.DeadRecoveryPenalty < 1:
		return errors.New("pipeline: DeadRecoveryPenalty must be >= 1")
	case c.GshareLogEntries < 1 || c.BTBLogEntries < 1 || c.RASDepth < 1:
		return errors.New("pipeline: predictor geometry must be positive")
	case c.Clusters < 0 || c.Clusters > 2:
		return fmt.Errorf("pipeline: %d clusters unsupported (0/1 = single, 2 = steered)", c.Clusters)
	case c.Clustered() && (c.NarrowIssueWidth < 1 || c.NarrowALUs < 1):
		return errors.New("pipeline: clustered config needs NarrowIssueWidth and NarrowALUs >= 1")
	}
	if c.Clustered() {
		if _, err := bpred.NewDirByName(c.steerDirName()); err != nil {
			return err
		}
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.L2 != nil {
		if _, err := cache.NewHierarchy(c.Cache, *c.L2, c.MemLatency); err != nil {
			return err
		}
	}
	if c.Elim && !c.OracleElim {
		if err := c.DIP.Validate(); err != nil {
			return err
		}
	}
	return nil
}
