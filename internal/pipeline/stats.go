package pipeline

import "repro/internal/cache"

// Stats are the machine's counters after a run. The resource counters
// (physical-register management, register-file traffic, cache accesses)
// are the utilization metrics of experiment E8; Cycles/IPC feed E9/E10.
type Stats struct {
	Cycles    int64
	Committed int64

	// Physical-register management.
	PhysAllocs int64
	PhysFrees  int64

	// Register-file traffic.
	RFReads  int64
	RFWrites int64

	// Cache counters (accesses include loads at execute and stores at
	// commit; eliminated memory operations never reach the cache). L2 is
	// populated only when the configuration has a second level.
	Cache cache.Stats
	L2    cache.Stats

	// Front end.
	BranchMispredicts int64
	BTBMisses         int64
	ReturnMispredicts int64

	// Elimination.
	Eliminated      int64 // instructions committed without executing
	DeadPredictions int64 // instances predicted dead at rename
	DeadMispredicts int64 // recoveries (consumer read a poisoned value)

	// Stall accounting (cycles the rename stage could not advance).
	StallFreeList int64
	StallIQ       int64
	StallLSQ      int64
	StallROB      int64
	StallRecovery int64
}

// IPC is committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}
