package pipeline

import "repro/internal/cache"

// Stats are the machine's counters after a run. The resource counters
// (physical-register management, register-file traffic, cache accesses)
// are the utilization metrics of experiment E8; Cycles/IPC feed E9/E10.
type Stats struct {
	Cycles    int64
	Committed int64

	// Physical-register management.
	PhysAllocs int64
	PhysFrees  int64

	// Register-file traffic.
	RFReads  int64
	RFWrites int64

	// Cache counters (accesses include loads at execute and stores at
	// commit; eliminated memory operations never reach the cache). L2 is
	// populated only when the configuration has a second level.
	Cache cache.Stats
	L2    cache.Stats

	// Front end.
	BranchMispredicts int64
	BTBMisses         int64
	ReturnMispredicts int64

	// Elimination.
	Eliminated      int64 // instructions committed without executing
	DeadPredictions int64 // instances predicted dead at rename
	DeadMispredicts int64 // recoveries (consumer read a poisoned value)

	// Stall accounting (cycles the rename stage could not advance).
	StallFreeList int64
	StallIQ       int64
	StallLSQ      int64
	StallROB      int64
	StallRecovery int64

	// Clustering (populated only for Clusters == 2 configurations).
	// ClusterCommitted splits Committed by the cluster each instruction
	// retired from (eliminated instructions count as cluster 0);
	// ClusterOccupancy sums each cluster's issue-queue occupancy over all
	// cycles, so occupancy/Cycles is the mean waiting population.
	ClusterCommitted [2]int64
	ClusterOccupancy [2]int64
	// SteeredNarrow counts instances the steering predictor routed to the
	// narrow cluster; SteerMispredicts is the subset that was actually
	// effectual (useful work degraded to the slow lanes).
	SteeredNarrow    int64
	SteerMispredicts int64
}

// IPC is committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// ClusterIPC is one cluster's committed instructions per cycle.
func (s Stats) ClusterIPC(cluster int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ClusterCommitted[cluster]) / float64(s.Cycles)
}
