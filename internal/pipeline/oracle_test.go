package pipeline

import "testing"

func TestOracleEliminationIsCleanAndFaster(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	base, err := Run(tr, a, ContendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ContendedConfig()
	cfg.Elim = true
	cfg.OracleElim = true
	st, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != int64(tr.Len()) {
		t.Fatalf("committed %d of %d", st.Committed, tr.Len())
	}
	// Oracle elimination never mispredicts and eliminates every dead
	// candidate.
	if st.DeadMispredicts != 0 {
		t.Errorf("oracle elimination recovered %d times", st.DeadMispredicts)
	}
	dead := int64(0)
	for seq := 0; seq < tr.Len(); seq++ {
		if a.Kind[seq].Dead() {
			dead++
		}
	}
	if st.Eliminated != dead {
		t.Errorf("eliminated %d, oracle-dead %d", st.Eliminated, dead)
	}
	if st.Cycles > base.Cycles {
		t.Errorf("oracle elimination slower than baseline: %d vs %d", st.Cycles, base.Cycles)
	}
}

func TestOracleBeatsOrMatchesPredictor(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	dipCfg := ContendedConfig()
	dipCfg.Elim = true
	dipSt, err := Run(tr, a, dipCfg)
	if err != nil {
		t.Fatal(err)
	}
	oraCfg := dipCfg
	oraCfg.OracleElim = true
	oraSt, err := Run(tr, a, oraCfg)
	if err != nil {
		t.Fatal(err)
	}
	if oraSt.Eliminated < dipSt.Eliminated {
		t.Errorf("oracle eliminated fewer (%d) than the predictor (%d)",
			oraSt.Eliminated, dipSt.Eliminated)
	}
	if oraSt.Cycles > dipSt.Cycles {
		t.Errorf("oracle slower than predictor: %d vs %d cycles",
			oraSt.Cycles, dipSt.Cycles)
	}
}

func TestOracleElimValidatesWithoutDIPConfig(t *testing.T) {
	tr, a := prep(t, loopSrc, 1000)
	cfg := ContendedConfig()
	cfg.Elim = true
	cfg.OracleElim = true
	cfg.DIP.LogSets = -99 // invalid, but unused in oracle mode
	if _, err := Run(tr, a, cfg); err != nil {
		t.Errorf("oracle mode rejected: %v", err)
	}
}
