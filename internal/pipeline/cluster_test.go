package pipeline

import (
	"encoding/json"
	"strings"
	"testing"
)

// ineffLoopSrc mixes steady ineffectual work (an x+0 trivial op with a
// live consumer and a silent store) into a loop of effectual work, so a
// steered machine has something to learn and something to keep at full
// width.
const ineffLoopSrc = `
main:
    addi r1, r0, 400
    addi r2, r0, 0
    addi r4, r0, 4096
    addi r5, r0, 7
    sd   r5, 0(r4)        # first store: not silent
loop:
    add  r3, r5, r2       # x+0: trivial every iteration
    sd   r5, 0(r4)        # silent every iteration
    out  r3
    add  r2, r2, r1       # effectual
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
`

func TestClusteredMachineSteersIneffectualWork(t *testing.T) {
	tr, a := prep(t, ineffLoopSrc, 100000)
	cfg := ClusteredConfig()
	st, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != int64(tr.Len()) {
		t.Fatalf("committed %d of %d", st.Committed, tr.Len())
	}
	if got := st.ClusterCommitted[0] + st.ClusterCommitted[1]; got != st.Committed {
		t.Errorf("cluster commit counts sum to %d, want Committed = %d", got, st.Committed)
	}
	if st.SteeredNarrow < 100 {
		t.Errorf("steered only %d instances to the narrow cluster", st.SteeredNarrow)
	}
	if st.ClusterCommitted[1] == 0 {
		t.Error("narrow cluster committed nothing")
	}
	// The ineffectual PCs repeat every iteration; a per-PC predictor must
	// be right far more often than wrong once warm.
	if st.SteerMispredicts*4 > st.SteeredNarrow {
		t.Errorf("steering mispredicted %d of %d steered instances",
			st.SteerMispredicts, st.SteeredNarrow)
	}
	if st.ClusterOccupancy[0] == 0 {
		t.Error("full cluster occupancy never sampled")
	}
	if ipc := st.ClusterIPC(1); ipc <= 0 {
		t.Errorf("narrow-cluster IPC = %v, want > 0", ipc)
	}

	// Determinism: the steered machine is as replayable as the classic one.
	st2, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st != st2 {
		t.Errorf("two clustered runs differ:\n%+v\n%+v", st, st2)
	}
}

// TestSingleClusterUntouchedByClustering pins the compatibility story: a
// single-cluster machine never populates the clustering counters, and its
// canonical JSON — hence its digest, hence every pre-clustering cache key
// — does not mention the new fields at all.
func TestSingleClusterUntouchedByClustering(t *testing.T) {
	tr, a := prep(t, ineffLoopSrc, 100000)
	st, err := Run(tr, a, ContendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.SteeredNarrow != 0 || st.SteerMispredicts != 0 ||
		st.ClusterCommitted != [2]int64{} || st.ClusterOccupancy != [2]int64{} {
		t.Errorf("single-cluster run populated clustering counters: %+v", st)
	}

	b, err := json.Marshal(ContendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Clusters", "NarrowIssueWidth", "NarrowALUs", "SteerDir"} {
		if strings.Contains(string(b), field) {
			t.Errorf("single-cluster config JSON mentions %q — pre-clustering digests would shift", field)
		}
	}
	if ContendedConfig().Digest() == ClusteredConfig().Digest() {
		t.Error("clustered and single-cluster configs share a digest")
	}
}

func TestClusteredConfigValidation(t *testing.T) {
	good := ClusteredConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("ClusteredConfig invalid: %v", err)
	}
	if label := good.Label(); !strings.Contains(label, "+2c") {
		t.Errorf("clustered label %q does not mark the mode", label)
	}

	bad := ClusteredConfig()
	bad.Clusters = 3
	if err := bad.Validate(); err == nil {
		t.Error("3 clusters accepted")
	}
	bad = ClusteredConfig()
	bad.NarrowIssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("clustered config without narrow issue width accepted")
	}
	bad = ClusteredConfig()
	bad.SteerDir = "no-such-dir"
	if err := bad.Validate(); err == nil {
		t.Error("unknown steering predictor accepted")
	}
	alt := ClusteredConfig()
	alt.SteerDir = "bimodal-4k"
	if err := alt.Validate(); err != nil {
		t.Errorf("named steering predictor rejected: %v", err)
	}
	if alt.Digest() == ClusteredConfig().Digest() {
		t.Error("steering predictor choice does not reach the digest")
	}
}
