package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/deadness"
	"repro/internal/dip"
	"repro/internal/isa"
	"repro/internal/trace"
)

// memSystem is the data-memory access path (a cache or hierarchy).
type memSystem interface {
	Access(addr uint64, width int, write bool) int
}

type uopState uint8

const (
	sWaiting uopState = iota
	sIssued
	sDone
	sEliminated
)

type uop struct {
	seq       int
	state     uopState
	doneCycle int64
	allocated bool // holds a physical register, freed at commit
	hasDest   bool
	isLoad    bool
	isStore   bool
	// cluster is the execution cluster (always 0 on single-cluster
	// machines; 1 is the narrow degraded cluster of a steered machine).
	cluster uint8
	// pc caches the record's static PC so commit-time predictor training
	// does not re-derive a trace Ref on the commit hot path.
	pc int32
}

// pendingUpd is a dead-predictor training event waiting for its resolution
// instruction to commit.
type pendingUpd struct {
	pc   int32
	sig  uint16
	dead bool
}

// Machine is one pipeline simulation. Create with New, drive with Run.
type Machine struct {
	cfg Config
	tr  *trace.Trace
	n   int // trace length
	an  *deadness.Analysis

	look *bpred.Lookahead
	btb  *bpred.BTB
	ras  *bpred.RAS
	dc   *cache.Cache // L1 (statistics source)
	mem  memSystem    // access path: the L1 alone or an L1+L2 hierarchy
	l2   *cache.Cache
	pred *dip.Table
	// steer is the ineffectuality steering predictor of a two-cluster
	// machine ("taken" = ineffectual); nil on single-cluster configs.
	steer bpred.DirPredictor

	// Reorder buffer as a ring keyed by sequence number. Slots are values
	// in a fixed arena indexed seq%ROBSize, so renaming an instruction
	// reuses its slot instead of allocating a uop.
	rob     []uop
	headSeq int // oldest in-flight sequence
	tailSeq int // next sequence to rename
	count   int

	// iq holds the sequence numbers of waiting uops; issued entries are
	// marked -1 until compaction. Capacity is fixed at IQSize.
	iq       []int32
	lsqCount int
	// iqCount tracks the live (non -1) iq entries per cluster, maintained
	// at the two iq mutation sites so the per-cycle occupancy sample is
	// O(1) instead of a queue scan. Only maintained on a steered machine.
	iqCount [2]int

	freeRegs int
	// Architectural rename state: poisoned marks registers whose current
	// mapping belongs to an eliminated (not yet resurrected) producer.
	poisoned [isa.NumRegs]bool
	// elimStore[seq] marks eliminated stores whose bytes were never
	// re-read; nil unless elimination is enabled.
	elimStore []bool

	// Fetch queue: a fixed ring of sequence numbers waiting for rename.
	fq         []int
	fqHead     int
	fqLen      int
	fetchSeq   int   // next sequence to fetch
	fetchStall int64 // bubble cycles remaining
	redirect   int   // seq of unresolved mispredicted branch; -1 none

	renameStallUntil int64

	// Dead-predictor training events bucketed by resolution sequence: a
	// seq-indexed intrusive list (head/tail per resolve point, next links
	// through the event arena). Only allocated when a predictor trains.
	pendHead []int32
	pendTail []int32
	pendBuf  []pendingUpd
	pendNext []int32
	pendFree int32 // head of the free list threaded through pendNext

	now   int64
	stats Stats
	// simErr aborts the simulation: set by a pipeline stage that hits a
	// broken invariant it cannot report through its own signature (the
	// stages return nothing), checked once per cycle by Simulate.
	simErr error
}

// New prepares a machine over a linked, analyzed trace.
func New(t *trace.Trace, a *deadness.Analysis, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !t.Linked {
		return nil, fmt.Errorf("pipeline: trace must be linked")
	}
	if len(a.Candidate) != t.Len() {
		return nil, fmt.Errorf("pipeline: analysis covers %d records, trace has %d",
			len(a.Candidate), t.Len())
	}
	dc, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	var mem memSystem = dc
	var l2 *cache.Cache
	if cfg.L2 != nil {
		h, err := cache.NewHierarchy(cfg.Cache, *cfg.L2, cfg.MemLatency)
		if err != nil {
			return nil, err
		}
		dc, l2, mem = h.L1, h.L2, h
	}
	m := &Machine{
		cfg:      cfg,
		tr:       t,
		n:        t.Len(),
		an:       a,
		btb:      bpred.NewBTB(cfg.BTBLogEntries, 12),
		ras:      bpred.NewRAS(cfg.RASDepth),
		dc:       dc,
		mem:      mem,
		l2:       l2,
		rob:      make([]uop, ringSize(cfg.ROBSize)),
		iq:       make([]int32, 0, cfg.IQSize),
		fq:       make([]int, 4*cfg.FetchWidth),
		freeRegs: cfg.PhysRegs - isa.NumRegs,
		redirect: -1,
	}
	if cfg.Elim {
		m.elimStore = make([]bool, t.Len())
	}
	depth := 1
	if cfg.Elim && cfg.DIP.PathLen > 0 {
		depth = cfg.DIP.PathLen
	}
	m.look = bpred.NewLookahead(
		bpred.NewGshare(cfg.GshareLogEntries, cfg.GshareHistBits), t, depth)
	if cfg.Elim && !cfg.OracleElim {
		var err error
		if m.pred, err = dip.New(cfg.DIP); err != nil {
			return nil, err
		}
		m.pendHead = make([]int32, t.Len())
		for i := range m.pendHead {
			m.pendHead[i] = -1
		}
		m.pendTail = make([]int32, t.Len())
		m.pendFree = -1
	}
	if cfg.Clustered() {
		var err error
		if m.steer, err = bpred.NewDirByName(cfg.steerDirName()); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Run simulates to completion and returns the statistics.
func Run(t *trace.Trace, a *deadness.Analysis, cfg Config) (Stats, error) {
	m, err := New(t, a, cfg)
	if err != nil {
		return Stats{}, err
	}
	return m.Simulate()
}

// Simulate drives the machine until every trace record has committed.
func (m *Machine) Simulate() (Stats, error) {
	n := m.n
	maxCycles := int64(200)*int64(n) + 10_000
	for m.headSeq < n || m.count > 0 {
		m.commit()
		m.writeback()
		m.issue()
		m.rename()
		m.fetch()
		if m.simErr != nil {
			return m.stats, m.simErr
		}
		m.now++
		if m.now > maxCycles {
			return m.stats, fmt.Errorf("pipeline: no forward progress after %d cycles (head=%d)",
				m.now, m.headSeq)
		}
	}
	m.stats.Cycles = m.now
	m.stats.Cache = m.dc.Stats
	if m.l2 != nil {
		m.stats.L2 = m.l2.Stats
	}
	m.stats.BranchMispredicts = int64(m.look.Mispredicts)
	return m.stats, nil
}

// ringSize rounds the ROB capacity up to a power of two so the ring
// index in at is a mask instead of a modulo; occupancy is still gated by
// the configured size (see rename), so the extra slots stay unused.
func ringSize(n int) int {
	r := 1
	for r < n {
		r <<= 1
	}
	return r
}

func (m *Machine) at(seq int) *uop { return &m.rob[seq&(len(m.rob)-1)] }

// producerReady reports whether dynamic producer p no longer blocks a
// consumer: committed, finished executing, or eliminated (an eliminated
// producer is only ever "read" by consumers that are themselves eliminated
// or that already paid a recovery).
func (m *Machine) producerReady(p int32) bool {
	if p == trace.NoProducer || int(p) < m.headSeq {
		return true
	}
	u := m.at(int(p))
	return u.state == sDone || u.state == sEliminated
}

// ---------------------------------------------------------------- commit

func (m *Machine) commit() {
	for k := 0; k < m.cfg.CommitWidth && m.count > 0; k++ {
		u := m.at(m.headSeq)
		if u.state != sDone && u.state != sEliminated {
			return
		}
		if u.state == sEliminated {
			m.stats.Eliminated++
		} else {
			if u.isStore {
				r := m.tr.Ref(u.seq)
				m.mem.Access(r.Addr(), int(r.Width()), true)
			}
			if u.isLoad || u.isStore {
				m.lsqCount--
			}
		}
		if u.allocated {
			// Committing a register writer retires the previous mapping
			// of its architectural register to the free list.
			m.freeRegs++
			m.stats.PhysFrees++
		}
		if m.steer != nil {
			m.stats.ClusterCommitted[u.cluster]++
			if m.an.Candidate[u.seq] {
				// The steering predictor trains at commit with the actual
				// ineffectuality outcome, mirroring dip.FlavorSteer.
				m.steer.Update(int(u.pc), m.an.Ineff[u.seq].Ineffectual())
			}
		}
		// Dead-predictor training events resolved by this instruction.
		if m.pred != nil {
			idx := m.pendHead[u.seq]
			for idx >= 0 {
				up := &m.pendBuf[idx]
				m.pred.Update(int(up.pc), up.sig, up.dead)
				// Consumed events return to the free list, capping the
				// arena at the peak number of in-flight trainings.
				next := m.pendNext[idx]
				m.pendNext[idx] = m.pendFree
				m.pendFree = idx
				idx = next
			}
			m.pendHead[u.seq] = -1
		}
		m.headSeq++
		m.count--
		m.stats.Committed++
	}
}

// ------------------------------------------------------------- writeback

func (m *Machine) writeback() {
	ports := m.cfg.RFWritePorts
	used := 0
	for seq := m.headSeq; seq < m.tailSeq; seq++ {
		u := m.at(seq)
		if u.state != sIssued || u.doneCycle > m.now {
			continue
		}
		if u.hasDest {
			if ports > 0 && used >= ports {
				u.doneCycle = m.now + 1 // retry next cycle
				continue
			}
			used++
			m.stats.RFWrites++
		}
		u.state = sDone
	}
}

// ----------------------------------------------------------------- issue

func latencyClass(op isa.Op) int {
	switch {
	case op == isa.MUL:
		return 1
	case op == isa.DIVU || op == isa.REMU:
		return 2
	case op.IsMem():
		return 3
	}
	return 0
}

func (m *Machine) issue() {
	alus := m.cfg.IntALUs
	muldivs := m.cfg.MulDivs
	memPorts := m.cfg.MemPorts
	readPorts := m.cfg.RFReadPorts
	readsUsed := 0
	issued := 0

	// A steered machine has a second issue budget and a private narrow ALU
	// pool; mul/div units, memory ports, and register-file ports stay
	// shared between the clusters.
	narrowALUs := m.cfg.NarrowALUs
	narrowCap := 0
	if m.steer != nil {
		m.stats.ClusterOccupancy[0] += int64(m.iqCount[0])
		m.stats.ClusterOccupancy[1] += int64(m.iqCount[1])
		// The narrow budget only widens the scan bound when a narrow uop
		// is actually waiting; with none queued the extra scan could
		// never issue anything, so skipping it changes no decision.
		if m.iqCount[1] > 0 {
			narrowCap = m.cfg.NarrowIssueWidth
		}
	}
	narrowIssued := 0

	for i := 0; i < len(m.iq) && issued+narrowIssued < m.cfg.IssueWidth+narrowCap; i++ {
		s := m.iq[i]
		if s < 0 {
			continue
		}
		u := m.at(int(s))
		if u.state != sWaiting {
			continue
		}
		narrow := u.cluster == 1
		if narrow {
			if narrowIssued == narrowCap {
				continue
			}
		} else if issued == m.cfg.IssueWidth {
			continue
		}
		r := m.tr.Ref(u.seq)
		// Functional unit availability.
		var unit *int
		switch latencyClass(r.Op()) {
		case 1, 2:
			unit = &muldivs
		case 3:
			unit = &memPorts
		default:
			if narrow {
				unit = &narrowALUs
			} else {
				unit = &alus
			}
		}
		if *unit == 0 {
			continue
		}
		// Register-file read ports.
		nsrc := 0
		op := r.Op()
		if op.ReadsRs1() && r.Rs1() != isa.RZero {
			nsrc++
		}
		if op.ReadsRs2() && r.Rs2() != isa.RZero {
			nsrc++
		}
		if readPorts > 0 && readsUsed+nsrc > readPorts {
			continue
		}
		// Operand readiness.
		if !m.producerReady(r.Src1()) || !m.producerReady(r.Src2()) {
			continue
		}
		if u.isLoad && !m.memReady(r) {
			continue
		}

		*unit--
		readsUsed += nsrc
		if narrow {
			narrowIssued++
		} else {
			issued++
		}
		m.stats.RFReads += int64(nsrc)
		u.state = sIssued
		u.doneCycle = m.now + int64(m.execLatency(u, r))
		if narrow {
			// Cross-cluster bypass: results computed in the narrow cluster
			// reach full-cluster consumers one cycle later.
			u.doneCycle++
		}
		if m.steer != nil {
			m.iqCount[u.cluster]--
		}
		m.iq[i] = -1
	}
	m.compactIQ()
}

// memReady reports whether every in-flight producer store of a load has
// executed (address and data available for forwarding or visible in the
// cache order).
func (m *Machine) memReady(r trace.Ref) bool {
	for _, p := range r.MemProducers() {
		if int(p) < m.headSeq {
			continue
		}
		u := m.at(int(p))
		if u.state == sWaiting {
			return false
		}
		if u.state == sIssued && u.doneCycle > m.now {
			return false
		}
	}
	return true
}

func (m *Machine) execLatency(u *uop, r trace.Ref) int {
	switch {
	case u.isLoad:
		// A load whose youngest producer store is still in flight forwards
		// from the LSQ and never probes the cache.
		for _, p := range r.MemProducers() {
			if int(p) >= m.headSeq {
				return m.cfg.Cache.HitLatency
			}
		}
		return m.mem.Access(r.Addr(), int(r.Width()), false)
	case u.isStore:
		return 1 // address generation; data written at commit
	case r.Op() == isa.MUL:
		return m.cfg.MulLatency
	case r.Op() == isa.DIVU || r.Op() == isa.REMU:
		return m.cfg.DivLatency
	default:
		return 1
	}
}

func (m *Machine) compactIQ() {
	out := m.iq[:0]
	for _, s := range m.iq {
		if s >= 0 {
			out = append(out, s)
		}
	}
	m.iq = out
}

// ---------------------------------------------------------------- rename

func (m *Machine) rename() {
	if m.now < m.renameStallUntil {
		m.stats.StallRecovery++
		return
	}
	for k := 0; k < m.cfg.RenameWidth && m.fqLen > 0; k++ {
		seq := m.fq[m.fqHead]
		r := m.tr.Ref(seq)
		if m.count == m.cfg.ROBSize {
			m.stats.StallROB++
			return
		}

		// The slot for seq is free (its previous occupant committed when
		// count dropped below the ROB size), so build the uop in place; a
		// stall below simply leaves the slot to be rewritten on retry.
		u := m.at(seq)
		*u = uop{
			seq:     seq,
			isLoad:  r.Op().IsLoad(),
			isStore: r.Op().IsStore(),
			pc:      r.PC(),
		}
		if _, ok := rdest(r); ok {
			u.hasDest = true
		}

		elim := false
		switch {
		case m.cfg.Elim && m.cfg.OracleElim && m.an.Candidate[seq]:
			// Limit study: perfect deadness knowledge, no training.
			if m.an.Kind[seq].Dead() {
				elim = true
				m.stats.DeadPredictions++
			}
		case m.pred != nil && m.an.Candidate[seq]:
			var sig uint16
			if m.cfg.DIP.PathLen > 0 {
				sig = m.look.SigAfter(seq)
			}
			if m.pred.Predict(int(r.PC()), sig) {
				elim = true
				m.stats.DeadPredictions++
			}
			m.schedule(seq, r.PC(), sig)
		}

		if !elim {
			// A consumer of a poisoned value exposes a dead
			// misprediction: recover before this instruction renames.
			if m.checkPoison(r) {
				return
			}
			if len(m.iq) == m.cfg.IQSize {
				m.stats.StallIQ++
				return
			}
			if (u.isLoad || u.isStore) && m.lsqCount == m.cfg.LSQSize {
				m.stats.StallLSQ++
				return
			}
			if u.hasDest {
				if m.freeRegs == 0 {
					m.stats.StallFreeList++
					return
				}
				m.freeRegs--
				m.stats.PhysAllocs++
				u.allocated = true
			}
			// Cluster steering happens last, past every stall-return above,
			// so a rename retry cannot double-count a steering decision.
			if m.steer != nil && m.an.Candidate[seq] && m.steer.Predict(int(r.PC())) {
				u.cluster = 1
				m.stats.SteeredNarrow++
				if !m.an.Ineff[seq].Ineffectual() {
					m.stats.SteerMispredicts++
				}
			}
		}

		// Commit point of no return: consume the fetch queue entry.
		m.fqHead = (m.fqHead + 1) % len(m.fq)
		m.fqLen--
		if rd, ok := rdest(r); ok {
			m.poisoned[rd] = elim
		}
		if elim {
			u.state = sEliminated
			if u.isStore {
				m.elimStore[seq] = true
			}
		} else {
			u.state = sWaiting
			m.iq = append(m.iq, int32(seq))
			if m.steer != nil {
				m.iqCount[u.cluster]++
			}
			if u.isLoad || u.isStore {
				m.lsqCount++
			}
		}
		m.tailSeq = seq + 1
		m.count++
	}
}

// rdest returns the effective destination register of a record.
func rdest(r trace.Ref) (isa.Reg, bool) {
	if r.Op().HasDest() && r.Rd() != isa.RZero {
		return r.Rd(), true
	}
	return 0, false
}

// checkPoison fires a recovery if the instruction reads a value whose
// producer was eliminated. It returns true when rename must stall.
func (m *Machine) checkPoison(r trace.Ref) bool {
	hit := false
	if r.Op().ReadsRs1() && r.Rs1() != isa.RZero && m.poisoned[r.Rs1()] {
		m.poisoned[r.Rs1()] = false
		hit = true
	}
	if r.Op().ReadsRs2() && r.Rs2() != isa.RZero && m.poisoned[r.Rs2()] {
		m.poisoned[r.Rs2()] = false
		hit = true
	}
	if r.Op().IsLoad() && m.elimStore != nil {
		for _, p := range r.MemProducers() {
			if m.elimStore[p] {
				m.elimStore[p] = false
				// Resurrecting the store performs its cache write now.
				pr := m.tr.Ref(int(p))
				m.mem.Access(pr.Addr(), int(pr.Width()), true)
				hit = true
			}
		}
	}
	if !hit {
		return false
	}
	// Recovery: squash-and-reexecute of the eliminated producer, charged
	// as a flat rename stall plus the producer's resource costs.
	m.stats.DeadMispredicts++
	m.stats.PhysAllocs++
	m.stats.PhysFrees++
	m.stats.RFWrites++
	m.renameStallUntil = m.now + int64(m.cfg.DeadRecoveryPenalty)
	return true
}

// schedule queues the dead-predictor training event at the instruction's
// resolution point (when the pipeline learns the outcome). Events append
// to the arena and chain onto their resolve bucket in arrival order.
func (m *Machine) schedule(seq int, pc int32, sig uint16) {
	dead := m.an.Kind[seq].Dead()
	resolve := m.an.Resolve[seq]
	if int(resolve) >= m.n {
		// Resolves beyond the simulated window; train at own commit.
		resolve = int32(seq)
	}
	var idx int32
	if m.pendFree >= 0 {
		idx = m.pendFree
		m.pendFree = m.pendNext[idx]
		m.pendBuf[idx] = pendingUpd{pc, sig, dead}
		m.pendNext[idx] = -1
	} else {
		idx = int32(len(m.pendBuf))
		m.pendBuf = append(m.pendBuf, pendingUpd{pc, sig, dead})
		m.pendNext = append(m.pendNext, -1)
	}
	if m.pendHead[resolve] < 0 {
		m.pendHead[resolve] = idx
	} else {
		m.pendNext[m.pendTail[resolve]] = idx
	}
	m.pendTail[resolve] = idx
}

// ----------------------------------------------------------------- fetch

func (m *Machine) fetch() {
	if m.fetchStall > 0 {
		m.fetchStall--
		return
	}
	if m.redirect >= 0 {
		if m.redirect >= m.tailSeq {
			return // the branch has not even renamed yet
		}
		if m.redirect >= m.headSeq {
			u := m.at(m.redirect)
			if u.state != sDone || u.doneCycle > m.now {
				return
			}
		}
		m.redirect = -1
	}
	n := m.n
	for k := 0; k < m.cfg.FetchWidth; k++ {
		if m.fetchSeq >= n || m.fqLen >= len(m.fq) {
			return
		}
		seq := m.fetchSeq
		r := m.tr.Ref(seq)
		m.fq[(m.fqHead+m.fqLen)%len(m.fq)] = seq
		m.fqLen++
		m.fetchSeq++

		switch {
		case r.Op().IsCondBranch():
			pred, err := m.look.PredAt(seq)
			if err != nil {
				// Unreachable while the lookahead and the machine walk the
				// same trace; surface a desync instead of mispredicting.
				m.simErr = fmt.Errorf("pipeline: fetch at seq %d: %w", seq, err)
				return
			}
			if pred != r.Taken() {
				m.redirect = seq
				return
			}
			if r.Taken() && !m.btbHit(r) {
				return
			}
		case r.Op() == isa.JAL:
			if r.Rd() == isa.RLink {
				// A call: remember the return address.
				m.ras.Push(int(r.PC()) + 1)
			}
			if !m.btbHit(r) {
				return
			}
		case r.Op() == isa.JALR:
			if r.Rs1() == isa.RLink && r.Rd() == isa.RZero {
				// A return: the RAS predicts the target.
				if tgt, ok := m.ras.Pop(); ok && tgt == int(r.NextPC()) {
					continue // correctly predicted; keep fetching
				}
				m.stats.ReturnMispredicts++
				m.redirect = seq
				return
			}
			// Other indirect target: a BTB miss or a stale target stalls
			// the front end until the jump resolves.
			if tgt, ok := m.btb.Lookup(int(r.PC())); !ok || tgt != int(r.NextPC()) {
				m.btb.Update(int(r.PC()), int(r.NextPC()))
				m.stats.BTBMisses++
				m.redirect = seq
				return
			}
		}
	}
}

// btbHit looks up a taken control transfer, charging the miss bubble and
// installing the target on a miss. It reports whether fetch may continue
// this cycle.
func (m *Machine) btbHit(r trace.Ref) bool {
	if tgt, ok := m.btb.Lookup(int(r.PC())); ok && tgt == int(r.NextPC()) {
		return true
	}
	m.btb.Update(int(r.PC()), int(r.NextPC()))
	m.stats.BTBMisses++
	m.fetchStall = int64(m.cfg.BTBMissBubble)
	return false
}
