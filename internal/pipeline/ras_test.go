package pipeline

import "testing"

const callLoopSrc = `
main:
    addi r1, r0, 200
    addi r5, r0, 0
loop:
    call work
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r5
    halt
work:
    add  r5, r5, r1
    slli r6, r1, 1
    add  r5, r5, r6
    ret
`

func TestRASPredictsReturns(t *testing.T) {
	tr, a := prep(t, callLoopSrc, 100000)
	st, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != int64(tr.Len()) {
		t.Fatalf("committed %d of %d", st.Committed, tr.Len())
	}
	// Every return is predicted by the RAS after the first call.
	if st.ReturnMispredicts > 2 {
		t.Errorf("return mispredicts = %d, want <= 2", st.ReturnMispredicts)
	}
}

func TestNoRASIsSlower(t *testing.T) {
	tr, a := prep(t, callLoopSrc, 100000)
	good, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	tiny := BaselineConfig()
	tiny.RASDepth = 1 // still works for non-nested calls
	st, err := Run(tr, a, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReturnMispredicts != good.ReturnMispredicts {
		t.Errorf("depth-1 RAS mispredicts differ on leaf calls: %d vs %d",
			st.ReturnMispredicts, good.ReturnMispredicts)
	}
}

func TestNestedCallsNeedDepth(t *testing.T) {
	nested := `
main:
    addi r1, r0, 100
    addi r5, r0, 0
loop:
    call outer
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r5
    halt
outer:
    mv   r7, ra
    call inner
    mv   ra, r7
    addi r5, r5, 1
    ret
inner:
    addi r5, r5, 2
    ret
`
	tr, a := prep(t, nested, 100000)
	deep, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if deep.ReturnMispredicts > 4 {
		t.Errorf("deep RAS mispredicts = %d on nested calls", deep.ReturnMispredicts)
	}
	shallow := BaselineConfig()
	shallow.RASDepth = 1
	st, err := Run(tr, a, shallow)
	if err != nil {
		t.Fatal(err)
	}
	// A depth-1 RAS loses the outer return address on every inner call.
	if st.ReturnMispredicts <= deep.ReturnMispredicts {
		t.Errorf("depth-1 RAS not worse on nested calls: %d vs %d",
			st.ReturnMispredicts, deep.ReturnMispredicts)
	}
	if st.Cycles <= deep.Cycles {
		t.Errorf("return mispredicts cost no cycles: %d vs %d", st.Cycles, deep.Cycles)
	}
}
