package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/cache"
)

func TestConfigDigestCanonical(t *testing.T) {
	a, b := ContendedConfig(), ContendedConfig()
	if a.Digest() != b.Digest() {
		t.Error("identical configs digest differently")
	}
	if BaselineConfig().Digest() == ContendedConfig().Digest() {
		t.Error("different configs share a digest")
	}

	b.Elim = true
	if a.Digest() == b.Digest() {
		t.Error("elim on/off share a digest")
	}

	c := BaselineConfig()
	c.PhysRegs = 64
	d := BaselineConfig()
	d.PhysRegs = 64
	if c.Digest() != d.Digest() {
		t.Error("equal sweep points digest differently")
	}

	// L2 must be compared by content, not pointer identity.
	e, f := DeepMemoryConfig(), DeepMemoryConfig()
	if e.L2 == f.L2 {
		t.Fatal("test needs distinct L2 pointers")
	}
	if e.Digest() != f.Digest() {
		t.Error("equal L2 contents digest differently")
	}
	l2 := cache.Config{SizeBytes: 512 * 1024, LineBytes: 64, Ways: 8, HitLatency: 12, MissLatency: 90}
	f.L2 = &l2
	if e.Digest() == f.Digest() {
		t.Error("different L2 contents share a digest")
	}
	if e.Digest() == ContendedConfig().Digest() {
		t.Error("nil and non-nil L2 share a digest")
	}
}

// TestConfigDigestComposesDIP pins the composition rule: the machine
// digest incorporates the predictor geometry through dip.Config.Digest,
// so a DIP change — and only a DIP change — must change the machine
// digest exactly when the predictor digest changes.
func TestConfigDigestComposesDIP(t *testing.T) {
	a := BaselineConfig()
	b := BaselineConfig()
	b.DIP.Threshold++
	if a.DIP.Digest() == b.DIP.Digest() {
		t.Fatal("different predictor geometries share a dip digest")
	}
	if a.Digest() == b.Digest() {
		t.Error("a DIP geometry change did not change the machine digest")
	}
	b.DIP = a.DIP
	if a.Digest() != b.Digest() {
		t.Error("equal configs digest differently after DIP round-trip")
	}
}

// TestConfigLabelTiedToDigest: the human-readable label embeds a prefix
// of the canonical digest, so verbose logs and fault attributions can be
// matched to cache keys and never drift to a separate naming scheme.
func TestConfigLabelTiedToDigest(t *testing.T) {
	cases := []struct {
		cfg  Config
		mode string
	}{
		{BaselineConfig(), "base"},
		{func() Config { c := ContendedConfig(); c.Elim = true; return c }(), "elim"},
		{func() Config { c := ContendedConfig(); c.Elim = true; c.OracleElim = true; return c }(), "oracle"},
	}
	for _, tc := range cases {
		label := tc.cfg.Label()
		want := fmt.Sprintf("%s r%d [%s]", tc.mode, tc.cfg.PhysRegs, tc.cfg.Digest()[:8])
		if label != want {
			t.Errorf("Label() = %q, want %q", label, want)
		}
	}
}
