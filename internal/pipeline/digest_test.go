package pipeline

import (
	"testing"

	"repro/internal/cache"
)

func TestConfigDigestCanonical(t *testing.T) {
	a, b := ContendedConfig(), ContendedConfig()
	if a.Digest() != b.Digest() {
		t.Error("identical configs digest differently")
	}
	if BaselineConfig().Digest() == ContendedConfig().Digest() {
		t.Error("different configs share a digest")
	}

	b.Elim = true
	if a.Digest() == b.Digest() {
		t.Error("elim on/off share a digest")
	}

	c := BaselineConfig()
	c.PhysRegs = 64
	d := BaselineConfig()
	d.PhysRegs = 64
	if c.Digest() != d.Digest() {
		t.Error("equal sweep points digest differently")
	}

	// L2 must be compared by content, not pointer identity.
	e, f := DeepMemoryConfig(), DeepMemoryConfig()
	if e.L2 == f.L2 {
		t.Fatal("test needs distinct L2 pointers")
	}
	if e.Digest() != f.Digest() {
		t.Error("equal L2 contents digest differently")
	}
	l2 := cache.Config{SizeBytes: 512 * 1024, LineBytes: 64, Ways: 8, HitLatency: 12, MissLatency: 90}
	f.L2 = &l2
	if e.Digest() == f.Digest() {
		t.Error("different L2 contents share a digest")
	}
	if e.Digest() == ContendedConfig().Digest() {
		t.Error("nil and non-nil L2 share a digest")
	}
}
