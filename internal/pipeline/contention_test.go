package pipeline

import (
	"testing"

	"repro/internal/cache"
)

func TestRFReadPortContention(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	wide := BaselineConfig()
	narrow := BaselineConfig()
	narrow.RFReadPorts = 2
	w, err := Run(tr, a, wide)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(tr, a, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cycles <= w.Cycles {
		t.Errorf("2 read ports not slower than unlimited: %d vs %d", n.Cycles, w.Cycles)
	}
	if n.RFReads != w.RFReads {
		t.Errorf("total RF reads changed with ports: %d vs %d", n.RFReads, w.RFReads)
	}
}

func TestRFWritePortContention(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	narrow := BaselineConfig()
	narrow.RFWritePorts = 1
	w, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := Run(tr, a, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cycles <= w.Cycles {
		t.Errorf("1 write port not slower: %d vs %d", n.Cycles, w.Cycles)
	}
	if n.RFWrites != w.RFWrites {
		t.Errorf("total RF writes changed with ports: %d vs %d", n.RFWrites, w.RFWrites)
	}
}

func TestLSQContention(t *testing.T) {
	memSrc := `
.data
buf: .space 4096
.text
main:
    la   r1, buf
    addi r2, r0, 300
loop:
    sd   r2, 0(r1)
    ld   r3, 0(r1)
    sd   r3, 8(r1)
    ld   r4, 8(r1)
    out  r4
    addi r2, r2, -1
    bne  r2, r0, loop
    halt
`
	tr, a := prep(t, memSrc, 100000)
	tiny := BaselineConfig()
	tiny.LSQSize = 2
	st, err := Run(tr, a, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.StallLSQ == 0 {
		t.Error("no LSQ stalls with a 2-entry LSQ on a memory loop")
	}
	big, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= big.Cycles {
		t.Errorf("tiny LSQ not slower: %d vs %d", st.Cycles, big.Cycles)
	}
}

func TestIQContention(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	tiny := BaselineConfig()
	tiny.IQSize = 2
	st, err := Run(tr, a, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.StallIQ == 0 {
		t.Error("no IQ stalls with a 2-entry issue queue")
	}
}

func TestL2HierarchyStats(t *testing.T) {
	// Walk an array much larger than the L1 but within the L2.
	bigSrc := `
.data
buf: .space 8
.text
main:
    addi r1, r0, 0
    li   r5, 0x200000     # 2 MB region, untouched memory reads as zero
    addi r2, r0, 4000
loop:
    andi r3, r2, 2047
    slli r3, r3, 5        # stride 32: one line per access, 64 KB footprint
    add  r3, r5, r3
    ld   r4, 0(r3)
    add  r1, r1, r4
    addi r2, r2, -1
    bne  r2, r0, loop
    out  r1
    halt
`
	tr, a := prep(t, bigSrc, 200000)
	flat, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if flat.L2.Accesses != 0 {
		t.Error("flat config populated L2 stats")
	}

	deep := BaselineConfig()
	l2 := cache.Config{SizeBytes: 128 * 1024, LineBytes: 64, Ways: 8,
		HitLatency: 10, MissLatency: 90}
	deep.L2 = &l2
	deep.MemLatency = 80
	st, err := Run(tr, a, deep)
	if err != nil {
		t.Fatal(err)
	}
	if st.L2.Accesses == 0 {
		t.Fatal("L2 saw no accesses")
	}
	if st.L2.Accesses > st.Cache.Accesses {
		t.Errorf("L2 accesses (%d) exceed L1 accesses (%d)", st.L2.Accesses, st.Cache.Accesses)
	}
	// The 64 KB footprint thrashes the 16 KB L1 but fits in the 128 KB L2:
	// after warmup the L2 should hit far more often than the L1.
	if st.L2.HitRate() < st.Cache.HitRate() {
		t.Errorf("L2 hit rate %.2f below L1 %.2f on an L2-resident footprint",
			st.L2.HitRate(), st.Cache.HitRate())
	}
}

func TestDeepMemoryConfigValidates(t *testing.T) {
	if err := DeepMemoryConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	tr, a := prep(t, loopSrc, 10000)
	if _, err := Run(tr, a, DeepMemoryConfig()); err != nil {
		t.Fatal(err)
	}
	bad := DeepMemoryConfig()
	bad.MemLatency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory latency accepted with L2")
	}
}
