package pipeline_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/pipeline"
)

// Example runs the machine over a loop with an always-dead instruction,
// once without and once with dead-instruction elimination.
func Example() {
	prog, err := asm.Assemble("example", `
main:
    addi r1, r0, 1000
loop:
    slli r3, r1, 2     # dead every iteration
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r1
    halt
`)
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 100000)
	if err != nil {
		log.Fatal(err)
	}
	an, err := deadness.Analyze(tr)
	if err != nil {
		log.Fatal(err)
	}

	// Starve the register file so renaming is the bottleneck.
	cfg := pipeline.ContendedConfig()
	cfg.PhysRegs = 38
	base, err := pipeline.Run(tr, an, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Elim = true
	elim, err := pipeline.Run(tr, an, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all instructions commit:", elim.Committed == base.Committed)
	fmt.Println("eliminated most dead shifts:", elim.Eliminated > 900)
	fmt.Println("fewer register allocations:", elim.PhysAllocs < base.PhysAllocs)
	fmt.Println("fewer rename stalls:", elim.StallFreeList < base.StallFreeList)
	// Output:
	// all instructions commit: true
	// eliminated most dead shifts: true
	// fewer register allocations: true
	// fewer rename stalls: true
}
