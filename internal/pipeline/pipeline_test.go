package pipeline

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/trace"
)

// prep assembles, runs, and analyzes a program.
func prep(t *testing.T, src string, budget int) (*trace.Trace, *deadness.Analysis) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, a
}

const loopSrc = `
main:
    addi r1, r0, 500
    addi r2, r0, 0
loop:
    add  r2, r2, r1
    slli r3, r1, 2     # dead every iteration
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
`

func TestBaselineCompletes(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	st, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != int64(tr.Len()) {
		t.Errorf("committed %d of %d", st.Committed, tr.Len())
	}
	if st.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	ipc := st.IPC()
	if ipc <= 0 || ipc > float64(BaselineConfig().CommitWidth) {
		t.Errorf("IPC = %v out of range", ipc)
	}
	if st.Eliminated != 0 || st.DeadPredictions != 0 {
		t.Error("elimination active in baseline")
	}
}

func TestDeterminism(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	s1, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("two runs differ:\n%+v\n%+v", s1, s2)
	}
}

func TestResourceAccountingConsistency(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	st, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every committed register writer allocates exactly one register and
	// frees exactly one.
	writers := int64(0)
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		if r.HasResult() {
			writers++
		}
	}
	if st.PhysAllocs != writers {
		t.Errorf("allocs = %d, want %d", st.PhysAllocs, writers)
	}
	if st.PhysFrees != st.PhysAllocs {
		t.Errorf("frees = %d, allocs = %d", st.PhysFrees, st.PhysAllocs)
	}
	if st.RFWrites != writers {
		t.Errorf("RF writes = %d, want %d", st.RFWrites, writers)
	}
	if st.RFReads == 0 {
		t.Error("no RF reads counted")
	}
}

func TestCacheCounters(t *testing.T) {
	tr, a := prep(t, `
.data
buf: .space 256
.text
main:
    la   r1, buf
    addi r2, r0, 20
loop:
    sd   r2, 0(r1)
    ld   r3, 0(r1)
    out  r3
    addi r2, r2, -1
    bne  r2, r0, loop
    halt
`, 100000)
	st, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 20 stores commit; loads may forward from in-flight stores and skip
	// the cache, so accesses lie between 20 (stores only) and 40.
	if st.Cache.Accesses < 20 || st.Cache.Accesses > 40 {
		t.Errorf("cache accesses = %d, want within [20,40]", st.Cache.Accesses)
	}
}

func TestEliminationOnAlwaysDeadLoop(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	cfg := BaselineConfig()
	cfg.Elim = true
	st, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != int64(tr.Len()) {
		t.Fatalf("committed %d of %d", st.Committed, tr.Len())
	}
	// The slli is dead on all 500 iterations; after predictor warmup the
	// vast majority are eliminated.
	if st.Eliminated < 400 {
		t.Errorf("eliminated = %d, want >= 400", st.Eliminated)
	}
	if st.DeadMispredicts != 0 {
		t.Errorf("recoveries = %d on an always-dead instruction", st.DeadMispredicts)
	}

	base, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.PhysAllocs >= base.PhysAllocs {
		t.Errorf("elimination did not reduce allocations: %d vs %d",
			st.PhysAllocs, base.PhysAllocs)
	}
	if st.RFWrites >= base.RFWrites {
		t.Errorf("elimination did not reduce RF writes: %d vs %d",
			st.RFWrites, base.RFWrites)
	}
}

func TestEliminatedDeadLoadSkipsCache(t *testing.T) {
	tr, a := prep(t, `
.data
buf: .space 64
.text
main:
    la   r1, buf
    addi r2, r0, 200
loop:
    ld   r3, 0(r1)     # dead load: r3 never used
    addi r2, r2, -1
    bne  r2, r0, loop
    out  r2
    halt
`, 100000)
	base, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := BaselineConfig()
	cfg.Elim = true
	st, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Accesses >= base.Cache.Accesses {
		t.Errorf("eliminated loads still access the cache: %d vs %d",
			st.Cache.Accesses, base.Cache.Accesses)
	}
}

func TestDeadMispredictRecovery(t *testing.T) {
	// r3 is dead for 300 warm-up iterations, then suddenly becomes used
	// every iteration: the predictor's learned dead prediction must
	// trigger recoveries (not wrong results) until it decays.
	tr, a := prep(t, `
main:
    addi r1, r0, 300
    addi r5, r0, 0
warm:
    slli r3, r1, 2     # dead here
    addi r1, r1, -1
    bne  r1, r0, warm
    addi r1, r0, 50
use:
    slli r3, r1, 2     # same static instruction? no - different pc
    add  r5, r5, r3    # used here
    addi r1, r1, -1
    bne  r1, r0, use
    out  r5
    halt
`, 100000)
	_ = tr
	_ = a
	// The two slli instructions have different PCs, so instead exercise
	// recovery with one static instruction whose deadness flips by phase.
	tr2, a2 := prep(t, `
main:
    addi r1, r0, 400
    addi r5, r0, 0
loop:
    slli r3, r1, 2
    andi r2, r1, 255   # used only when i >= 256 (phase flip)
    blt  r1, r2, skip  # never true; keeps r2 live
    andi r2, r1, 256
    beq  r2, r0, skip
    add  r5, r5, r3    # consumes r3 during the first phase (i>=256)
skip:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r5
    halt
`, 100000)
	cfg := BaselineConfig()
	cfg.Elim = true
	st, err := Run(tr2, a2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != int64(tr2.Len()) {
		t.Fatalf("committed %d of %d", st.Committed, tr2.Len())
	}
	// Correctness invariant: every recovery was counted and stalled.
	if st.DeadMispredicts > 0 && st.StallRecovery == 0 {
		t.Error("recoveries charged no stall cycles")
	}
}

func TestFreeListContention(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	cfg := BaselineConfig()
	cfg.PhysRegs = 36 // 4 rename registers
	st, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.StallFreeList == 0 {
		t.Error("no free-list stalls with a tiny register file")
	}
	big, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= big.Cycles {
		t.Errorf("tiny register file not slower: %d vs %d cycles", st.Cycles, big.Cycles)
	}
}

func TestEliminationRelievesFreeListPressure(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	cfg := BaselineConfig()
	cfg.PhysRegs = 36
	base, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Elim = true
	elim, err := Run(tr, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elim.Cycles >= base.Cycles {
		t.Errorf("elimination did not speed up a register-starved machine: %d vs %d",
			elim.Cycles, base.Cycles)
	}
}

func TestBranchMispredictsSlowTheMachine(t *testing.T) {
	// A data-dependent, pseudo-random branch stream mispredicts often.
	randomSrc := `
.data
vals: .quad 7, 2, 9, 4, 1, 8, 3, 6, 0, 5, 11, 14, 13, 12, 10, 15
.text
main:
    addi r1, r0, 400
    la   r2, vals
    addi r5, r0, 0
loop:
    andi r3, r1, 15
    slli r3, r3, 3
    add  r3, r2, r3
    ld   r4, 0(r3)
    andi r4, r4, 1
    beq  r4, r0, even
    addi r5, r5, 1
even:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r5
    halt
`
	tr, a := prep(t, randomSrc, 100000)
	st, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchMispredicts == 0 {
		t.Error("no branch mispredicts on data-dependent branches")
	}
	// Predictable loop of comparable length for contrast.
	tr2, a2 := prep(t, loopSrc, 100000)
	st2, err := Run(tr2, a2, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() >= st2.IPC() {
		t.Errorf("unpredictable branches not slower: IPC %v vs %v", st.IPC(), st2.IPC())
	}
}

func TestConfigValidation(t *testing.T) {
	tr, a := prep(t, loopSrc, 1000)
	bad := BaselineConfig()
	bad.PhysRegs = 32
	if _, err := Run(tr, a, bad); err == nil {
		t.Error("invalid config accepted")
	}
	bad = BaselineConfig()
	bad.IssueWidth = 0
	if _, err := Run(tr, a, bad); err == nil {
		t.Error("zero issue width accepted")
	}
}

func TestUnlinkedTraceRejected(t *testing.T) {
	tr, a := prep(t, loopSrc, 1000)
	tr.Linked = false
	if _, err := Run(tr, a, BaselineConfig()); err == nil {
		t.Error("unlinked trace accepted")
	}
	tr.Linked = true
	short := &deadness.Analysis{Candidate: make([]bool, 1)}
	if _, err := Run(tr, short, BaselineConfig()); err == nil {
		t.Error("mismatched analysis accepted")
	}
}

func TestContendedSlowerThanBaseline(t *testing.T) {
	tr, a := prep(t, loopSrc, 100000)
	base, err := Run(tr, a, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Run(tr, a, ContendedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cont.Cycles < base.Cycles {
		t.Errorf("contended machine faster than baseline: %d vs %d", cont.Cycles, base.Cycles)
	}
}
