package cache

import "fmt"

// Hierarchy composes an L1 and an L2 data cache over a flat main memory.
// An access probes the L1; on a miss it probes the L2; on an L2 miss it
// pays the memory latency. Hit latencies accumulate down the hierarchy
// (the L1's MissLatency field is ignored when it sits in a hierarchy).
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	// MemLatency is the flat main-memory penalty paid on an L2 miss.
	MemLatency int
}

// NewHierarchy builds a two-level hierarchy; the L2 must be at least as
// large as the L1.
func NewHierarchy(l1, l2 Config, memLatency int) (*Hierarchy, error) {
	if memLatency < 1 {
		return nil, fmt.Errorf("cache: memory latency %d must be >= 1", memLatency)
	}
	if l2.SizeBytes < l1.SizeBytes {
		return nil, fmt.Errorf("cache: L2 (%d B) smaller than L1 (%d B)",
			l2.SizeBytes, l1.SizeBytes)
	}
	c1, err := New(l1)
	if err != nil {
		return nil, fmt.Errorf("cache: L1: %w", err)
	}
	c2, err := New(l2)
	if err != nil {
		return nil, fmt.Errorf("cache: L2: %w", err)
	}
	return &Hierarchy{L1: c1, L2: c2, MemLatency: memLatency}, nil
}

// Access performs the access and returns its latency in cycles.
func (h *Hierarchy) Access(addr uint64, width int, write bool) int {
	if h.L1.Probe(addr, width, write) {
		return h.L1.cfg.HitLatency
	}
	if h.L2.Probe(addr, width, write) {
		return h.L1.cfg.HitLatency + h.L2.cfg.HitLatency
	}
	return h.L1.cfg.HitLatency + h.L2.cfg.HitLatency + h.MemLatency
}
