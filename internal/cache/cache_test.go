package cache

import "testing"

func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{
		SizeBytes: 256, LineBytes: 32, Ways: 2,
		HitLatency: 2, MissLatency: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 0, Ways: 1, HitLatency: 1, MissLatency: 2},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1, HitLatency: 1, MissLatency: 2},
		{SizeBytes: 1024, LineBytes: 32, Ways: 0, HitLatency: 1, MissLatency: 2},
		{SizeBytes: 32, LineBytes: 32, Ways: 2, HitLatency: 1, MissLatency: 2},
		{SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 0, MissLatency: 2},
		{SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 4, MissLatency: 2},
		{SizeBytes: 96 * 32, LineBytes: 32, Ways: 32, HitLatency: 1, MissLatency: 2}, // 3 sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small(t)
	if lat := c.Access(0x100, 8, false); lat != 16 {
		t.Errorf("cold access latency = %d, want 16", lat)
	}
	if lat := c.Access(0x100, 8, false); lat != 2 {
		t.Errorf("warm access latency = %d, want 2", lat)
	}
	if c.Stats.Accesses != 2 || c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSameLineSharing(t *testing.T) {
	c := small(t)
	c.Access(0x100, 1, false)
	if lat := c.Access(0x11f, 1, false); lat != 2 {
		t.Errorf("same-line access missed: lat=%d", lat)
	}
	if lat := c.Access(0x120, 1, false); lat != 16 {
		t.Errorf("next line should miss: lat=%d", lat)
	}
}

func TestLineSpanningAccess(t *testing.T) {
	c := small(t)
	// 8-byte access at 0x11c spans lines 0x100 and 0x120.
	if lat := c.Access(0x11c, 8, false); lat != 16 {
		t.Errorf("spanning access latency = %d, want 16", lat)
	}
	if c.Stats.Misses != 2 {
		t.Errorf("spanning access misses = %d, want 2", c.Stats.Misses)
	}
	if lat := c.Access(0x11c, 8, false); lat != 2 {
		t.Errorf("warm spanning access = %d, want 2", lat)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small(t)                                             // 4 sets, 2 ways; set = (addr>>5)&3
	a0, a1, a2 := uint64(0x000), uint64(0x080), uint64(0x100) // all set 0
	c.Access(a0, 1, false)
	c.Access(a1, 1, false)
	c.Access(a0, 1, false) // a1 becomes LRU
	c.Access(a2, 1, false) // evicts a1
	if lat := c.Access(a0, 1, false); lat != 2 {
		t.Error("MRU line evicted")
	}
	if lat := c.Access(a1, 1, false); lat != 16 {
		t.Error("LRU line survived")
	}
}

func TestWritebackOfDirtyVictim(t *testing.T) {
	c := small(t)
	c.Access(0x000, 8, true)  // dirty line in set 0
	c.Access(0x080, 1, false) // set 0
	c.Access(0x100, 1, false) // set 0: evicts dirty 0x000
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Clean eviction does not write back.
	c.Access(0x180, 1, false)
	if c.Stats.Writebacks != 1 {
		t.Errorf("clean eviction wrote back: %d", c.Stats.Writebacks)
	}
}

func TestFlush(t *testing.T) {
	c := small(t)
	c.Access(0x40, 8, true)
	c.Access(0x60, 8, false)
	c.Flush()
	if c.Stats.Writebacks != 1 {
		t.Errorf("flush writebacks = %d, want 1", c.Stats.Writebacks)
	}
	if lat := c.Access(0x40, 8, false); lat != 16 {
		t.Error("line survived flush")
	}
}

func TestHitRate(t *testing.T) {
	c := small(t)
	if c.Stats.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	c.Access(0x40, 1, false)
	c.Access(0x40, 1, false)
	c.Access(0x40, 1, false)
	c.Access(0x40, 1, false)
	if hr := c.Stats.HitRate(); hr != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", hr)
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 16KB / (32B * 4 ways) = 128 sets.
	if len(c.sets) != 128 {
		t.Errorf("sets = %d, want 128", len(c.sets))
	}
}
