package cache

import "testing"

func hier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(
		Config{SizeBytes: 256, LineBytes: 32, Ways: 2, HitLatency: 2, MissLatency: 16},
		Config{SizeBytes: 2048, LineBytes: 32, Ways: 4, HitLatency: 8, MissLatency: 80},
		80,
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := hier(t)
	// Cold: L1 miss, L2 miss -> 2 + 8 + 80.
	if lat := h.Access(0x100, 8, false); lat != 90 {
		t.Errorf("cold access = %d, want 90", lat)
	}
	// Warm L1.
	if lat := h.Access(0x100, 8, false); lat != 2 {
		t.Errorf("L1 hit = %d, want 2", lat)
	}
	// Evict from L1 (2-way set; fill two conflicting lines) but stay in L2.
	h.Access(0x100+256, 8, false)
	h.Access(0x100+512, 8, false)
	if lat := h.Access(0x100, 8, false); lat != 10 {
		t.Errorf("L2 hit = %d, want 10", lat)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := hier(t)
	h.Access(0x40, 8, true)
	h.Access(0x40, 8, true)
	if h.L1.Stats.Accesses != 2 || h.L1.Stats.Hits != 1 {
		t.Errorf("L1 stats = %+v", h.L1.Stats)
	}
	// The L2 only sees L1 misses.
	if h.L2.Stats.Accesses != 1 {
		t.Errorf("L2 accesses = %d, want 1", h.L2.Stats.Accesses)
	}
}

func TestHierarchyValidation(t *testing.T) {
	l1 := DefaultConfig()
	l2 := DefaultConfig()
	l2.SizeBytes = l1.SizeBytes / 2
	if _, err := NewHierarchy(l1, l2, 80); err == nil {
		t.Error("L2 smaller than L1 accepted")
	}
	if _, err := NewHierarchy(l1, l1, 0); err == nil {
		t.Error("zero memory latency accepted")
	}
	bad := l1
	bad.Ways = 0
	if _, err := NewHierarchy(bad, l1, 80); err == nil {
		t.Error("invalid L1 accepted")
	}
	if _, err := NewHierarchy(l1, bad, 80); err == nil {
		t.Error("invalid L2 accepted")
	}
}

func TestProbeSpanningBothMiss(t *testing.T) {
	c, err := New(Config{SizeBytes: 256, LineBytes: 32, Ways: 2,
		HitLatency: 2, MissLatency: 16})
	if err != nil {
		t.Fatal(err)
	}
	if c.Probe(0x3c, 8, false) {
		t.Error("cold spanning probe hit")
	}
	if !c.Probe(0x3c, 8, false) {
		t.Error("warm spanning probe missed")
	}
	// One line warm, one cold: still a miss overall.
	c2, _ := New(Config{SizeBytes: 256, LineBytes: 32, Ways: 2,
		HitLatency: 2, MissLatency: 16})
	c2.Probe(0x20, 1, false)
	if c2.Probe(0x3c, 8, false) {
		t.Error("half-warm spanning probe reported hit")
	}
}
