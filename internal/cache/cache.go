// Package cache models the level-1 data cache used by the pipeline: a
// set-associative, write-back, write-allocate cache with true-LRU
// replacement and a flat miss penalty standing in for the rest of the
// memory hierarchy. The counters it exports (accesses, hits, misses,
// writebacks) feed experiment E8's "data cache accesses" resource metric.
package cache

import (
	"errors"
	"fmt"
)

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size.
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// HitLatency and MissLatency are in cycles; a miss pays MissLatency
	// total (not in addition to HitLatency).
	HitLatency  int
	MissLatency int
}

// DefaultConfig is a 16 KB, 4-way, 32 B-line L1D with a 2-cycle hit and a
// 16-cycle miss, in the spirit of the study's early-2000s machines.
func DefaultConfig() Config {
	return Config{
		SizeBytes:   16 * 1024,
		LineBytes:   32,
		Ways:        4,
		HitLatency:  2,
		MissLatency: 16,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes %d must be a positive power of two", c.LineBytes)
	case c.Ways < 1:
		return errors.New("cache: Ways must be >= 1")
	case c.SizeBytes < c.LineBytes*c.Ways:
		return fmt.Errorf("cache: size %d too small for %d ways of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	case c.HitLatency < 1 || c.MissLatency < c.HitLatency:
		return fmt.Errorf("cache: bad latencies hit=%d miss=%d", c.HitLatency, c.MissLatency)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Stats are the access counters.
type Stats struct {
	Accesses   int
	Hits       int
	Misses     int
	Writebacks int
}

// HitRate returns hits over accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	used  uint64
}

// Cache is one cache instance. Create with New.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64

	Stats Stats
}

// New builds a cache; the configuration must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, nsets),
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for 1<<c.lineBits < cfg.LineBytes {
		c.lineBits++
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access performs a load (write=false) or store (write=true) of the given
// byte span and returns the access latency in cycles. Accesses that span
// two lines probe both and pay the worse latency.
func (c *Cache) Access(addr uint64, width int, write bool) int {
	if c.Probe(addr, width, write) {
		return c.cfg.HitLatency
	}
	return c.cfg.MissLatency
}

// Probe performs the access (updating contents and statistics) and reports
// whether every touched line hit, letting multi-level hierarchies compose
// their own latencies. An access spanning two lines hits only if both do.
func (c *Cache) Probe(addr uint64, width int, write bool) bool {
	c.Stats.Accesses++
	hit := c.touch(addr, write)
	if width > 1 {
		last := addr + uint64(width) - 1
		if last>>c.lineBits != addr>>c.lineBits {
			hit = c.touch(last, write) && hit
		}
	}
	return hit
}

func (c *Cache) touch(addr uint64, write bool) bool {
	blk := addr >> c.lineBits
	set := c.sets[blk&c.setMask]
	tag := blk >> popBits(c.setMask)
	c.tick++
	for w := range set {
		l := &set[w]
		if l.valid && l.tag == tag {
			c.Stats.Hits++
			l.used = c.tick
			if write {
				l.dirty = true
			}
			return true
		}
	}
	c.Stats.Misses++
	victim := &set[0]
	for w := range set {
		l := &set[w]
		if !l.valid {
			victim = l
			break
		}
		if l.used < victim.used {
			victim = l
		}
	}
	if victim.valid && victim.dirty {
		c.Stats.Writebacks++
	}
	*victim = line{valid: true, dirty: write, tag: tag, used: c.tick}
	return false
}

// Flush invalidates every line, counting writebacks of dirty lines.
func (c *Cache) Flush() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				c.Stats.Writebacks++
			}
			*l = line{}
		}
	}
}

func popBits(mask uint64) uint {
	var n uint
	for mask != 0 {
		n += uint(mask & 1)
		mask >>= 1
	}
	return n
}
