package cache_test

import (
	"fmt"
	"log"

	"repro/internal/cache"
)

func ExampleCache_Access() {
	c, err := cache.New(cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold:", c.Access(0x1000, 8, false), "cycles")
	fmt.Println("warm:", c.Access(0x1000, 8, false), "cycles")
	fmt.Printf("hit rate %.2f\n", c.Stats.HitRate())
	// Output:
	// cold: 16 cycles
	// warm: 2 cycles
	// hit rate 0.50
}

func ExampleHierarchy() {
	h, err := cache.NewHierarchy(
		cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 4, HitLatency: 2, MissLatency: 16},
		cache.Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitLatency: 10, MissLatency: 90},
		80,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold (miss both):", h.Access(0x4000, 8, false), "cycles")
	fmt.Println("L1 hit:", h.Access(0x4000, 8, false), "cycles")
	// Output:
	// cold (miss both): 92 cycles
	// L1 hit: 2 cycles
}
