// Package bytesize parses human-readable byte counts ("256MiB", "1GiB",
// "900000") for the CLI cache-budget flags. One parser serves every
// command so the accepted syntax cannot drift between flags.
package bytesize

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// suffixes in longest-match-first order: "MiB" must win over "B".
var suffixes = []struct {
	name string
	mult int64
}{
	{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
	{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
	{"B", 1},
}

// Parse parses a byte count with an optional decimal KB/MB/GB or binary
// KiB/MiB/GiB suffix (case-insensitive). Empty means 0 (callers treat
// zero as "unlimited"). Negative counts, garbage, and values that
// overflow int64 after scaling are errors.
func Parse(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	orig := s
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range suffixes {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			s = strings.TrimSpace(s[:len(s)-len(suf.name)])
			break
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bytesize: bad byte count %q (want e.g. 256MiB, 1GiB, 900000)", orig)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("bytesize: byte count %q overflows int64", orig)
	}
	return n * mult, nil
}
