package bytesize

import (
	"math"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"", 0},
		{"  ", 0},
		{"0", 0},
		{"900000", 900000},
		{"1B", 1},
		{"7b", 7},
		{"1KB", 1000},
		{"1KiB", 1024},
		{"1kib", 1024},
		{"256MiB", 256 << 20},
		{"256 MiB", 256 << 20},
		{"1GiB", 1 << 30},
		{"2GB", 2_000_000_000},
		{"3MB", 3_000_000},
		{" 8 KiB ", 8192},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseGarbage(t *testing.T) {
	for _, in := range []string{
		"abc", "-1", "-5MiB", "MiB", "12XB", "1.5GiB", "0x10", "1 2MiB", "∞",
	} {
		if n, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %d, want error", in, n)
		}
	}
}

func TestParseOverflow(t *testing.T) {
	// MaxInt64 with no suffix is fine; any scaling that would exceed it
	// must error instead of silently wrapping.
	if n, err := Parse("9223372036854775807"); err != nil || n != math.MaxInt64 {
		t.Errorf("Parse(MaxInt64) = %d, %v", n, err)
	}
	for _, in := range []string{
		"9223372036854775808", // > MaxInt64 before scaling
		"9007199254740993GiB", // overflows after scaling
		"10000000000GB",
	} {
		if n, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %d, want overflow error", in, n)
		}
	}
	// The largest representable scaled values still parse.
	if n, err := Parse("8589934591GiB"); err != nil || n != 8589934591<<30 {
		t.Errorf("Parse(8589934591GiB) = %d, %v", n, err)
	}
}
