package lebytes

import (
	"encoding/binary"
	"testing"
)

// TestLittleAgreesWithEncodingBinary pins the endianness probe against
// the standard library's arithmetic view: writing a multi-byte value
// through the reinterpreted view must read back identically through
// binary.LittleEndian exactly when Little is true.
func TestLittleAgreesWithEncodingBinary(t *testing.T) {
	s := []int32{0x04030201}
	b := I32(s)
	little := binary.LittleEndian.Uint32(b) == 0x04030201
	if little != Little {
		t.Fatalf("Little = %v, but byte order probe says little-endian = %v", Little, little)
	}
}

// TestViewsAliasAndSize checks each view covers exactly the backing
// array and writes through it are visible in the typed slice.
func TestViewsAliasAndSize(t *testing.T) {
	type kind uint8
	ks := []kind{1, 2, 3}
	if b := U8(ks); len(b) != 3 {
		t.Fatalf("U8 len = %d", len(b))
	} else {
		b[1] = 9
		if ks[1] != 9 {
			t.Fatalf("U8 view does not alias: %v", ks)
		}
	}

	bs := []bool{false, true}
	if b := Bool(bs); len(b) != 2 || b[0] != 0 || b[1] != 1 {
		t.Fatalf("Bool view = %v", b)
	} else {
		b[0] = 1
		if !bs[0] {
			t.Fatalf("Bool view does not alias: %v", bs)
		}
	}

	is := []int32{-1, 7}
	if b := I32(is); len(b) != 8 {
		t.Fatalf("I32 len = %d", len(b))
	}

	us := []uint64{1, 2, 3}
	if b := U64(us); len(b) != 24 {
		t.Fatalf("U64 len = %d", len(b))
	}

	if b := I32(nil); len(b) != 0 {
		t.Fatalf("nil I32 len = %d", len(b))
	}
}

// TestRoundTrip copies a wire image into typed columns through the
// views and checks the decoded values, the way the trace and profile
// codecs use the package.
func TestRoundTrip(t *testing.T) {
	if !Little {
		t.Skip("views are only used as wire images on little-endian hosts")
	}
	wire := make([]byte, 8)
	binary.LittleEndian.PutUint32(wire[0:], 0xFFFFFFFE) // -2
	binary.LittleEndian.PutUint32(wire[4:], 41)
	got := make([]int32, 2)
	copy(I32(got), wire)
	if got[0] != -2 || got[1] != 41 {
		t.Fatalf("decoded %v", got)
	}
}
