// Package lebytes provides little-endian bulk views over numeric slices,
// so serializers can move whole columns with one copy (memmove bandwidth)
// instead of an element-at-a-time decode loop. On a little-endian host a
// slice's in-memory image IS its little-endian wire image, so the views
// are exact; Little gates every use, and callers fall back to scalar
// encoding/binary loops when it is false.
//
// The views alias their argument's backing array via unsafe.Slice, which
// is valid because the element types carry no pointers and the byte
// length equals the original allocation's. Callers must not let a view
// outlive its slice.
package lebytes

import "unsafe"

// Little reports whether the host is little-endian.
var Little = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// U8 views a byte-sized-element slice (enums, flags) as raw bytes.
func U8[T ~uint8](s []T) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s))
}

// Bool views a bool slice as raw bytes. When writing through the view,
// the caller must store only 0 or 1: any other value is not a valid Go
// bool and comparisons on it misbehave.
func Bool(s []bool) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s))
}

// I32 views an int32 slice as raw bytes (4 bytes per element).
func I32(s []int32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), 4*len(s))
}

// U64 views a uint64 slice as raw bytes (8 bytes per element).
func U64(s []uint64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), 8*len(s))
}
