package asm

import (
	"fmt"
	"strings"

	"repro/internal/program"
)

// Format renders a program as assembly source that Assemble reproduces
// exactly (same instructions, same data segment). Control-transfer
// displacements are emitted numerically — the assembler accepts relative
// immediates wherever it accepts labels — and synthetic labels mark the
// entry point and branch targets for readability. Provenance tags are not
// representable in source and are dropped.
func Format(p *program.Program) string {
	var b strings.Builder
	if len(p.Data) > 0 {
		b.WriteString(".data\n")
		for i := 0; i < len(p.Data); i += 16 {
			end := min(i+16, len(p.Data))
			b.WriteString("    .byte ")
			for j := i; j < end; j++ {
				if j > i {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", p.Data[j])
			}
			b.WriteByte('\n')
		}
		b.WriteString(".text\n")
	}

	// Synthetic labels at branch targets, for human readers only (the
	// displacements below stay numeric and authoritative).
	targets := make(map[int]bool)
	for pc := range p.Insts {
		if t, ok := p.BranchTarget(pc); ok {
			targets[t] = true
		}
	}
	for pc, in := range p.Insts {
		if pc == p.Entry {
			b.WriteString("main:\n")
		} else if targets[pc] {
			fmt.Fprintf(&b, "L%d:\n", pc)
		}
		fmt.Fprintf(&b, "    %v\n", in)
	}
	return b.String()
}
