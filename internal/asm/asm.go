// Package asm implements a two-pass assembler for r64 programs.
//
// Source syntax, one statement per line:
//
//	# full-line or trailing comment (';' also starts a comment)
//	.text                      switch to the text section (default)
//	.data                      switch to the data section
//	label:                     define a label in the current section
//	.byte 1, 2, 0xff           emit bytes (data section)
//	.half / .word / .quad      emit 2-, 4-, 8-byte little-endian values
//	.space 64                  reserve zeroed bytes
//	.align 8                   pad the data section to a multiple of 8
//
//	add  r1, r2, r3            register-register ALU
//	addi r1, r2, -5            register-immediate ALU
//	lui  r1, 0x10              rd = imm << 16
//	ld   r1, 8(r2)             loads:  rd, offset(base)
//	sd   r5, 0(r2)             stores: data, offset(base)
//	beq  r1, r2, loop          branches take a text label or an immediate
//	jal  ra, func              direct jump-and-link
//	jalr r0, ra, 0             indirect jump
//	out  r1                    report r1 as a program output
//	halt
//
// Pseudo-instructions: li rd, imm (one or two instructions), la rd,
// datalabel (address of a data label), mv rd, rs, j label, b label,
// call label, ret, not rd, rs, neg rd, rs.
//
// Text labels resolve to instruction indexes; data labels resolve to
// absolute addresses in the data segment (program.DataBase + offset).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Error describes an assembly failure with its source location.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type pending struct {
	line  int
	mnem  string
	args  []string
	pc    int // instruction index assigned in pass 1
	count int // number of instructions this statement expands to
}

type assembler struct {
	name    string
	sec     section
	stmts   []pending
	nextPC  int
	data    []byte
	text    map[string]int    // label -> instruction index
	dataLbl map[string]uint64 // label -> absolute address
	prog    *program.Program
}

// Assemble translates source into a validated program.
func Assemble(name, src string) (*program.Program, error) {
	a := &assembler{
		name:    name,
		text:    make(map[string]int),
		dataLbl: make(map[string]uint64),
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	a.prog.Name = name
	a.prog.Labels = a.text
	a.prog.Data = a.data
	if entry, ok := a.text["main"]; ok {
		a.prog.Entry = entry
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) pass1(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := raw
		if j := strings.IndexAny(s, "#;"); j >= 0 {
			s = s[:j]
		}
		s = strings.TrimSpace(s)
		for s != "" {
			// Labels; several may share a line with a statement.
			if j := strings.Index(s, ":"); j >= 0 && isIdent(s[:j]) {
				if err := a.defineLabel(line, s[:j]); err != nil {
					return err
				}
				s = strings.TrimSpace(s[j+1:])
				continue
			}
			break
		}
		if s == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(s, " ")
		mnem = strings.ToLower(strings.TrimSpace(mnem))
		args := splitArgs(rest)
		if strings.HasPrefix(mnem, ".") {
			if err := a.directive(line, mnem, args); err != nil {
				return err
			}
			continue
		}
		if a.sec != secText {
			return errf(line, "instruction %q in data section", mnem)
		}
		n, err := expansionSize(line, mnem, args)
		if err != nil {
			return err
		}
		a.stmts = append(a.stmts, pending{line: line, mnem: mnem, args: args, pc: a.nextPC, count: n})
		a.nextPC += n
	}
	return nil
}

func (a *assembler) defineLabel(line int, name string) error {
	if _, dup := a.text[name]; dup {
		return errf(line, "label %q redefined", name)
	}
	if _, dup := a.dataLbl[name]; dup {
		return errf(line, "label %q redefined", name)
	}
	if a.sec == secText {
		a.text[name] = a.nextPC
	} else {
		a.dataLbl[name] = program.DataBase + uint64(len(a.data))
	}
	return nil
}

func (a *assembler) directive(line int, mnem string, args []string) error {
	switch mnem {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".byte", ".half", ".word", ".quad":
		if a.sec != secData {
			return errf(line, "%s outside data section", mnem)
		}
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".quad": 8}[mnem]
		if len(args) == 0 {
			return errf(line, "%s needs at least one value", mnem)
		}
		for _, arg := range args {
			v, err := parseImm(arg)
			if err != nil {
				return errf(line, "%s: %v", mnem, err)
			}
			for b := 0; b < size; b++ {
				a.data = append(a.data, byte(uint64(v)>>(8*b)))
			}
		}
	case ".space":
		if a.sec != secData {
			return errf(line, ".space outside data section")
		}
		if len(args) != 1 {
			return errf(line, ".space needs one argument")
		}
		n, err := parseImm(args[0])
		if err != nil || n < 0 {
			return errf(line, "bad .space size %q", args[0])
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		if a.sec != secData {
			return errf(line, ".align outside data section")
		}
		if len(args) != 1 {
			return errf(line, ".align needs one argument")
		}
		n, err := parseImm(args[0])
		if err != nil || n <= 0 {
			return errf(line, "bad .align %q", args[0])
		}
		for len(a.data)%int(n) != 0 {
			a.data = append(a.data, 0)
		}
	default:
		return errf(line, "unknown directive %q", mnem)
	}
	return nil
}

func (a *assembler) pass2() error {
	a.prog = &program.Program{Insts: make([]isa.Inst, 0, a.nextPC)}
	for _, st := range a.stmts {
		insts, err := a.emit(st)
		if err != nil {
			return err
		}
		if len(insts) != st.count {
			return errf(st.line, "internal: %q expanded to %d instructions, sized as %d",
				st.mnem, len(insts), st.count)
		}
		a.prog.Insts = append(a.prog.Insts, insts...)
	}
	return nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xffffffffffffffff.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}
