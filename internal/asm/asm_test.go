package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
# a tiny program
main:
    addi r1, r0, 5
    addi r2, r0, 7
    add  r3, r1, r2
    out  r3
    halt
`)
	if len(p.Insts) != 5 {
		t.Fatalf("got %d instructions, want 5", len(p.Insts))
	}
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: 1, Imm: 5},
		{Op: isa.ADDI, Rd: 2, Imm: 7},
		{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OUT, Rs1: 3},
		{Op: isa.HALT},
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %v, want %v", i, p.Insts[i], w)
		}
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
}

func TestBranchLabelResolution(t *testing.T) {
	p := mustAssemble(t, `
main:
    addi r1, r0, 10
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`)
	br := p.Insts[2]
	if br.Op != isa.BNE {
		t.Fatalf("inst 2 = %v, want bne", br)
	}
	// Target is PC 1 from PC 2: imm = 1 - (2+1) = -2.
	if br.Imm != -2 {
		t.Errorf("bne imm = %d, want -2", br.Imm)
	}
	if got, ok := p.BranchTarget(2); !ok || got != 1 {
		t.Errorf("BranchTarget(2) = %d,%v; want 1,true", got, ok)
	}
}

func TestForwardLabel(t *testing.T) {
	p := mustAssemble(t, `
main:
    beq r0, r0, done
    addi r1, r0, 1
done:
    halt
`)
	if tgt, _ := p.BranchTarget(0); tgt != 2 {
		t.Errorf("forward branch target = %d, want 2", tgt)
	}
}

func TestDataSection(t *testing.T) {
	p := mustAssemble(t, `
.data
vals:  .quad 0x1122334455667788, 2
small: .byte 1, 2, 3
       .align 8
more:  .word 0xdeadbeef
.text
main:
    la  r1, vals
    ld  r2, 0(r1)
    out r2
    halt
`)
	if len(p.Data) != 8+8+3+5+4 {
		t.Fatalf("data length = %d, want 28", len(p.Data))
	}
	// .quad little-endian
	if p.Data[0] != 0x88 || p.Data[7] != 0x11 {
		t.Errorf("quad bytes wrong: % x", p.Data[:8])
	}
	// la resolves to absolute address of vals.
	la := p.Insts[0]
	if la.Op != isa.ADDI || uint64(la.Imm) != program.DataBase {
		t.Errorf("la emitted %v, want addi with imm %#x", la, program.DataBase)
	}
	// .align padded to offset 24 before .word.
	if p.Data[24] != 0xef || p.Data[27] != 0xde {
		t.Errorf("word bytes wrong: % x", p.Data[24:28])
	}
}

func TestDataLabelAsImmediate(t *testing.T) {
	p := mustAssemble(t, `
.data
buf: .space 16
.text
main:
    ld r1, buf(r0)
    sd r1, buf(r0)
    halt
`)
	if uint64(p.Insts[0].Imm) != program.DataBase {
		t.Errorf("load imm = %#x, want %#x", p.Insts[0].Imm, program.DataBase)
	}
	if p.Insts[1].Op != isa.SD || p.Insts[1].Rs2 != 1 {
		t.Errorf("store = %v", p.Insts[1])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
main:
    li   r1, 42
    li   r2, 0x123456789
    mv   r3, r1
    not  r4, r1
    neg  r5, r1
    j    end
    nop
end:
    ret
    halt
`)
	if p.Insts[0].Op != isa.ADDI || p.Insts[0].Imm != 42 {
		t.Errorf("small li = %v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.LUI || p.Insts[2].Op != isa.ORI {
		t.Errorf("large li = %v, %v", p.Insts[1], p.Insts[2])
	}
	if p.Insts[3].Op != isa.ADDI || p.Insts[3].Rs1 != 1 {
		t.Errorf("mv = %v", p.Insts[3])
	}
	if p.Insts[4].Op != isa.XORI || p.Insts[4].Imm != -1 {
		t.Errorf("not = %v", p.Insts[4])
	}
	if p.Insts[5].Op != isa.SUB || p.Insts[5].Rs1 != isa.RZero {
		t.Errorf("neg = %v", p.Insts[5])
	}
	if p.Insts[6].Op != isa.JAL || p.Insts[6].Rd != isa.RZero {
		t.Errorf("j = %v", p.Insts[6])
	}
	if p.Insts[8].Op != isa.JALR || p.Insts[8].Rs1 != isa.RLink {
		t.Errorf("ret = %v", p.Insts[8])
	}
}

func TestLargeLiSizingMatchesLabels(t *testing.T) {
	// A li that expands to 2 instructions must shift later labels.
	p := mustAssemble(t, `
main:
    li r1, 0x1000000000
target:
    beq r0, r0, target
    halt
`)
	if got := p.Labels["target"]; got != 2 {
		t.Errorf("label after 2-wide li = %d, want 2", got)
	}
	if tgt, _ := p.BranchTarget(2); tgt != 2 {
		t.Errorf("self-branch target = %d, want 2", tgt)
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAssemble(t, `
main:
    add r1, zero, gp
    add r2, sp, ra
    halt
`)
	in := p.Insts[0]
	if in.Rs1 != isa.RZero || in.Rs2 != isa.RGbl {
		t.Errorf("aliases: %v", in)
	}
	in = p.Insts[1]
	if in.Rs1 != isa.RSP || in.Rs2 != isa.RLink {
		t.Errorf("aliases: %v", in)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
main:             # entry
    nop           ; semicolons too
    halt
`)
	if len(p.Insts) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Insts))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "main:\n frob r1, r2\n halt", "unknown mnemonic"},
		{"bad register", "main:\n add r1, r2, r99\n halt", "bad register"},
		{"unknown label", "main:\n beq r0, r0, nowhere\n halt", "unknown label"},
		{"redefined label", "main:\n nop\nmain:\n halt", "redefined"},
		{"missing halt", "main:\n nop", "no HALT"},
		{"data op in text", "main:\n .word 4\n halt", "outside data"},
		{"wrong arity", "main:\n add r1, r2\n halt", "needs"},
		{"bad mem operand", "main:\n ld r1, r2\n halt", "memory operand"},
		{"instruction in data", ".data\n add r1, r2, r3\n.text\nmain:\n halt", "data section"},
		{"unknown directive", ".fancy 3\nmain:\n halt", "unknown directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("bad", tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("bad", "main:\n nop\n frob r1\n halt")
	var aerr *Error
	if !asError(err, &aerr) {
		t.Fatalf("error %T is not *asm.Error", err)
	}
	if aerr.Line != 3 {
		t.Errorf("line = %d, want 3", aerr.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}
