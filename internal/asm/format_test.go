package asm

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/emu"
)

func TestFormatRoundTripsHandWrittenProgram(t *testing.T) {
	p := mustAssemble(t, `
.data
tbl: .quad 3, 5, 8
.text
main:
    la   r1, tbl
    addi r2, r0, 3
    addi r3, r0, 0
loop:
    ld   r4, 0(r1)
    add  r3, r3, r4
    addi r1, r1, 8
    addi r2, r2, -1
    bne  r2, r0, loop
    out  r3
    halt
`)
	src := Format(p)
	q, err := Assemble("roundtrip", src)
	if err != nil {
		t.Fatalf("reassemble:\n%s\nerror: %v", src, err)
	}
	if !reflect.DeepEqual(p.Insts, q.Insts) {
		t.Fatal("instructions differ after round trip")
	}
	if !reflect.DeepEqual(p.Data, q.Data) {
		t.Fatal("data differs after round trip")
	}
	if q.Entry != p.Entry {
		t.Fatalf("entry %d != %d", q.Entry, p.Entry)
	}
}

func TestFormatRoundTripsCompiledPrograms(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		rng := rand.New(rand.NewSource(int64(900 + seed)))
		f := compiler.RandomFunc(rng, 2+rng.Intn(6))
		p, _, err := compiler.Compile(f, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		q, err := Assemble("roundtrip", Format(p))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(p.Insts, q.Insts) {
			t.Fatalf("seed %d: instructions differ", seed)
		}
		if !reflect.DeepEqual(p.Data, q.Data) {
			t.Fatalf("seed %d: data differs", seed)
		}
		// Behaviour is identical too.
		_, m1, err := emu.Collect(p, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		_, m2, err := emu.Collect(q, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m1.Outputs, m2.Outputs) {
			t.Fatalf("seed %d: outputs differ", seed)
		}
	}
}

func TestFormatNoDataSection(t *testing.T) {
	p := mustAssemble(t, "main:\n nop\n halt\n")
	src := Format(p)
	if len(src) == 0 {
		t.Fatal("empty source")
	}
	if _, err := Assemble("r", src); err != nil {
		t.Fatalf("reassemble: %v", err)
	}
}
