package asm

import (
	"strings"

	"repro/internal/isa"
)

var regAliases = map[string]isa.Reg{
	"zero": isa.RZero,
	"gp":   isa.RGbl,
	"sp":   isa.RSP,
	"ra":   isa.RLink,
}

var mnemonics = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "and": isa.AND, "or": isa.OR,
	"xor": isa.XOR, "sll": isa.SLL, "srl": isa.SRL, "sra": isa.SRA,
	"slt": isa.SLT, "sltu": isa.SLTU, "mul": isa.MUL, "divu": isa.DIVU,
	"remu": isa.REMU,
	"addi": isa.ADDI, "andi": isa.ANDI, "ori": isa.ORI, "xori": isa.XORI,
	"slti": isa.SLTI, "slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI,
	"lui": isa.LUI,
	"lb":  isa.LB, "lh": isa.LH, "lw": isa.LW, "ld": isa.LD,
	"sb": isa.SB, "sh": isa.SH, "sw": isa.SW, "sd": isa.SD,
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"jal": isa.JAL, "jalr": isa.JALR,
	"out": isa.OUT, "halt": isa.HALT, "nop": isa.NOP,
}

// expansionSize returns how many instructions a statement assembles to.
// Only li depends on its operand; everything else is a single instruction.
func expansionSize(line int, mnem string, args []string) (int, error) {
	switch mnem {
	case "li":
		if len(args) != 2 {
			return 0, errf(line, "li needs rd, imm")
		}
		v, err := parseImm(args[1])
		if err != nil {
			return 0, errf(line, "li: %v", err)
		}
		return liSize(v), nil
	case "la", "mv", "j", "b", "call", "ret", "not", "neg":
		return 1, nil
	default:
		if _, ok := mnemonics[mnem]; !ok {
			return 0, errf(line, "unknown mnemonic %q", mnem)
		}
		return 1, nil
	}
}

func fitsInt32(v int64) bool { return v >= -1<<31 && v < 1<<31 }

func fitsInt48(v int64) bool { return v >= -1<<47 && v < 1<<47 }

// liSize returns the number of instructions li expands to: 1 for 32-bit
// immediates, 2 for 48-bit, 5 for full 64-bit constants.
func liSize(v int64) int {
	switch {
	case fitsInt32(v):
		return 1
	case fitsInt48(v):
		return 2
	default:
		return 5
	}
}

// expandLI materializes an arbitrary 64-bit constant into rd.
func expandLI(rd isa.Reg, v int64) []isa.Inst {
	switch {
	case fitsInt32(v):
		return []isa.Inst{{Op: isa.ADDI, Rd: rd, Rs1: isa.RZero, Imm: int32(v)}}
	case fitsInt48(v):
		return []isa.Inst{
			{Op: isa.LUI, Rd: rd, Imm: int32(v >> 16)},
			{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(v & 0xffff)},
		}
	default:
		// Build top-down 16 bits at a time: the first ADDI seeds the top 32
		// bits (sign extension is shifted out), then two shift+or steps
		// splice in the middle and low 16-bit chunks.
		return []isa.Inst{
			{Op: isa.ADDI, Rd: rd, Rs1: isa.RZero, Imm: int32(v >> 32)},
			{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 16},
			{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32((v >> 16) & 0xffff)},
			{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 16},
			{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(v & 0xffff)},
		}
	}
}

func (a *assembler) emit(st pending) ([]isa.Inst, error) {
	one := func(in isa.Inst) ([]isa.Inst, error) { return []isa.Inst{in}, nil }
	line, args := st.line, st.args

	// Pseudo-instructions first.
	switch st.mnem {
	case "li":
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		v, _ := parseImm(args[1])
		return expandLI(rd, v), nil
	case "la":
		if len(args) != 2 {
			return nil, errf(line, "la needs rd, datalabel")
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		addr, ok := a.dataLbl[args[1]]
		if !ok {
			return nil, errf(line, "unknown data label %q", args[1])
		}
		return one(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.RZero, Imm: int32(addr)})
	case "mv":
		if len(args) != 2 {
			return nil, errf(line, "mv needs rd, rs")
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		rs, err := parseReg(line, args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs})
	case "j", "b":
		if len(args) != 1 {
			return nil, errf(line, "%s needs a label", st.mnem)
		}
		off, err := a.branchOffset(line, args[0], st.pc)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JAL, Rd: isa.RZero, Imm: off})
	case "call":
		if len(args) != 1 {
			return nil, errf(line, "call needs a label")
		}
		off, err := a.branchOffset(line, args[0], st.pc)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JAL, Rd: isa.RLink, Imm: off})
	case "ret":
		return one(isa.Inst{Op: isa.JALR, Rd: isa.RZero, Rs1: isa.RLink})
	case "not":
		rd, rs, err := a.twoRegs(line, args)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, rs, err := a.twoRegs(line, args)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.SUB, Rd: rd, Rs1: isa.RZero, Rs2: rs})
	}

	op := mnemonics[st.mnem]
	switch {
	case op == isa.NOP, op == isa.HALT:
		if len(args) != 0 {
			return nil, errf(line, "%s takes no operands", st.mnem)
		}
		return one(isa.Inst{Op: op})
	case op == isa.OUT:
		if len(args) != 1 {
			return nil, errf(line, "out needs one register")
		}
		rs, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OUT, Rs1: rs})
	case op.IsALUReg():
		if len(args) != 3 {
			return nil, errf(line, "%s needs rd, rs1, rs2", st.mnem)
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(line, args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(line, args[2])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	case op == isa.LUI:
		if len(args) != 2 {
			return nil, errf(line, "lui needs rd, imm")
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.immOrData(line, args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.LUI, Rd: rd, Imm: imm})
	case op.IsALUImm():
		if len(args) != 3 {
			return nil, errf(line, "%s needs rd, rs1, imm", st.mnem)
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(line, args[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.immOrData(line, args[2])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	case op.IsLoad():
		if len(args) != 2 {
			return nil, errf(line, "%s needs rd, offset(base)", st.mnem)
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		imm, base, err := a.parseMemOperand(line, args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: imm})
	case op.IsStore():
		if len(args) != 2 {
			return nil, errf(line, "%s needs data, offset(base)", st.mnem)
		}
		data, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		imm, base, err := a.parseMemOperand(line, args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rs1: base, Rs2: data, Imm: imm})
	case op.IsCondBranch():
		if len(args) != 3 {
			return nil, errf(line, "%s needs rs1, rs2, target", st.mnem)
		}
		rs1, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(line, args[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(line, args[2], st.pc)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case op == isa.JAL:
		if len(args) != 2 {
			return nil, errf(line, "jal needs rd, target")
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(line, args[1], st.pc)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JAL, Rd: rd, Imm: off})
	case op == isa.JALR:
		if len(args) != 3 {
			return nil, errf(line, "jalr needs rd, rs1, imm")
		}
		rd, err := parseReg(line, args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(line, args[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.immOrData(line, args[2])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1, Imm: imm})
	}
	return nil, errf(line, "unhandled mnemonic %q", st.mnem)
}

func (a *assembler) twoRegs(line int, args []string) (rd, rs isa.Reg, err error) {
	if len(args) != 2 {
		return 0, 0, errf(line, "need rd, rs")
	}
	rd, err = parseReg(line, args[0])
	if err != nil {
		return
	}
	rs, err = parseReg(line, args[1])
	return
}

func parseReg(line int, s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := parseImm(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, errf(line, "bad register %q", s)
}

// immOrData resolves an operand that may be a numeric immediate or a data
// label (whose value is its absolute address).
func (a *assembler) immOrData(line int, s string) (int32, error) {
	if addr, ok := a.dataLbl[s]; ok {
		return int32(addr), nil
	}
	v, err := parseImm(s)
	if err != nil {
		return 0, errf(line, "%v", err)
	}
	if !fitsInt32(v) {
		return 0, errf(line, "immediate %d does not fit in 32 bits", v)
	}
	return int32(v), nil
}

// parseMemOperand parses "offset(base)" or "(base)" or a bare data label
// used with an implicit zero base, e.g. "ld r1, table(gp)".
func (a *assembler) parseMemOperand(line int, s string) (int32, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "bad memory operand %q, want offset(base)", s)
	}
	offStr := strings.TrimSpace(s[:open])
	base, err := parseReg(line, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	if offStr == "" {
		return 0, base, nil
	}
	off, err := a.immOrData(line, offStr)
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

// branchOffset resolves target (a text label or an absolute/relative
// immediate) into the instruction-relative displacement stored in Imm.
func (a *assembler) branchOffset(line int, target string, pc int) (int32, error) {
	if t, ok := a.text[target]; ok {
		return int32(t - (pc + 1)), nil
	}
	v, err := parseImm(target)
	if err != nil {
		return 0, errf(line, "unknown label %q", target)
	}
	return int32(v), nil
}
