package asm

import (
	"strings"
	"testing"
)

// FuzzAsmParse feeds arbitrary source text to the assembler. Assembly
// source arrives from files and generators, so the property is total:
// any input either assembles into a program that passes validation (which
// Assemble runs internally) or returns an error — never a panic.
func FuzzAsmParse(f *testing.F) {
	for _, src := range []string{
		"",
		"main:\n halt\n",
		"main:\n addi r1, r0, 1\n out r1\n halt\n",
		"main:\n addi r1, r0, 4\nloop:\n addi r1, r1, -1\n bne r1, r0, loop\n halt\n",
		".data\nbuf: .quad 1, 2, 3\n.text\nmain:\n la r1, buf\n ld r2, 0(r1)\n halt\n",
		"main:\n call fn\n halt\nfn:\n ret\n",
		"# comment only\n; and another\n",
		"main:\n addi r1, r0, 99999999999999999999\n halt\n", // overflowing immediate
		"main:\n ld r1, 8(r2\n halt\n",                       // unbalanced paren
		"dup:\ndup:\n halt\n",                                // duplicate label
	} {
		f.Add(src)
	}

	f.Fuzz(func(t *testing.T, src string) {
		// The assembler splits on newlines; gigantic single lines only
		// slow the fuzzer down without covering new parse states.
		if len(src) > 1<<16 {
			return
		}
		p, err := Assemble("fuzz", src)
		if err != nil {
			if p != nil {
				t.Fatal("error with non-nil program")
			}
			return
		}
		if p == nil {
			t.Fatal("nil program with nil error")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("assembled program fails validation: %v\nsource:\n%s", err, strings.TrimSpace(src))
		}
	})
}
