package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Chart renders one or more series as an ASCII line chart — the closest a
// terminal gets to the paper's figures. Each series is drawn with its own
// marker; x positions are scaled linearly (pass log-transformed x values
// for log-scale sweeps).
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	Width  int // plot columns (default 56)
	Height int // plot rows (default 12)
	Series []Series
}

var chartMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 12
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			total++
		}
	}
	if total == 0 {
		return c.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := chartMarkers[si%len(chartMarkers)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(w-1)))
			row := int(math.Round((p.Y - minY) / (maxY - minY) * float64(h-1)))
			grid[h-1-row][col] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", pad), w/2, minX, w-w/2, maxX)
	if len(c.Series) > 1 || c.Series[0].Name != "" {
		var legend []string
		for si, s := range c.Series {
			legend = append(legend, fmt.Sprintf("%c %s", chartMarkers[si%len(chartMarkers)], s.Name))
		}
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", pad), strings.Join(legend, "   "))
	}
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel)
	}
	return b.String()
}
