package stats

import (
	"strings"
	"testing"
)

func TestChartRendersPoints(t *testing.T) {
	c := &Chart{
		Title:  "speedup vs registers",
		XLabel: "phys regs",
		YLabel: "speedup %",
		Series: []Series{{
			Name:   "elim",
			Points: []Point{{40, 5.2}, {64, 1.1}, {128, -0.7}},
		}},
	}
	out := c.String()
	if !strings.Contains(out, "speedup vs registers") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing markers")
	}
	if !strings.Contains(out, "5.2") || !strings.Contains(out, "-0.7") {
		t.Errorf("missing y-axis range labels:\n%s", out)
	}
	if !strings.Contains(out, "40") || !strings.Contains(out, "128") {
		t.Errorf("missing x-axis range labels:\n%s", out)
	}
	if !strings.Contains(out, "x: phys regs") {
		t.Error("missing axis caption")
	}
}

func TestChartMultipleSeriesLegend(t *testing.T) {
	c := &Chart{
		Series: []Series{
			{Name: "cfi", Points: []Point{{1, 90}, {2, 95}}},
			{Name: "counter", Points: []Point{{1, 60}, {2, 62}}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "* cfi") || !strings.Contains(out, "o counter") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if out := c.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: both ranges degenerate; must not divide by zero.
	c := &Chart{Series: []Series{{Points: []Point{{5, 5}}}}}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestChartExtremesLandOnEdges(t *testing.T) {
	c := &Chart{Width: 20, Height: 5, Series: []Series{{
		Points: []Point{{0, 0}, {10, 10}},
	}}}
	lines := strings.Split(c.String(), "\n")
	top := lines[0]
	if top[len(top)-1] != '*' {
		t.Errorf("max point not at top-right: %q", top)
	}
	bottom := lines[4]
	if !strings.Contains(bottom, "|*") {
		t.Errorf("min point not at bottom-left: %q", bottom)
	}
}
