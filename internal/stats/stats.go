// Package stats provides the small numeric and presentation helpers shared
// by the experiment drivers: means, percentage formatting, and fixed-width
// text tables matching the rows the paper's tables and figures report.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; every element must be positive
// (non-positive elements are skipped, matching how speedup geomeans treat
// missing benchmarks).
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min returns the minimum of xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Table accumulates rows and renders them with aligned columns. The zero
// value is not usable; create with NewTable.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		cells = cells[:len(t.headers)]
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v except float64, which renders with three decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table: header, separator, then rows, each column
// padded to its widest cell. The first column is left-aligned, the rest
// right-aligned (numeric convention).
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
