package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{0, -1, 9}); math.Abs(got-9) > 1e-12 {
		t.Errorf("geomean with skips = %v, want 9", got)
	}
	if GeoMean([]float64{0, -3}) != 0 {
		t.Error("all-skipped geomean should be 0")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.0361); got != "3.6%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("bench", "dead%", "notes")
	tb.AddRow("gzip", "8.2%")
	tb.AddRowf("mcf", 0.5, "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[3], "0.500") {
		t.Errorf("float formatting: %q", lines[3])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", "1")
	tb.AddRow("longer", "22")
	out := tb.String()
	lines := strings.Split(out, "\n")
	// All rows render to the same width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableExtraAndMissingCells(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2", "3") // extra dropped
	tb.AddRow("only")        // missing rendered empty
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Errorf("extra cell leaked:\n%s", out)
	}
}
