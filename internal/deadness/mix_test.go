package deadness_test

import (
	"math"
	"repro/internal/deadness"
	"testing"
)

func TestComputeMix(t *testing.T) {
	tr, _, _ := analyzeSrc(t, `
.data
buf: .space 16
.text
main:
    addi r1, r0, 4     # alu
    la   r2, buf       # alu (addi)
loop:
    sd   r1, 0(r2)     # store
    ld   r3, 0(r2)     # load
    mul  r4, r3, r1    # muldiv
    addi r1, r1, -1    # alu
    bne  r1, r0, loop  # branch (taken 3, not taken 1)
    out  r4            # other
    halt               # other
`)
	m := deadness.ComputeMix(tr)
	if m.Total != tr.Len() {
		t.Fatalf("total = %d, want %d", m.Total, tr.Len())
	}
	if m.Loads != 4 || m.Stores != 4 || m.MulDiv != 4 {
		t.Errorf("mem/muldiv = %d/%d/%d, want 4/4/4", m.Loads, m.Stores, m.MulDiv)
	}
	if m.Branches != 4 || m.TakenBranches != 3 {
		t.Errorf("branches = %d taken %d, want 4/3", m.Branches, m.TakenBranches)
	}
	if m.ALU != 2+4 { // two init + one addi per iteration
		t.Errorf("alu = %d, want 6", m.ALU)
	}
	if m.Other != 2 {
		t.Errorf("other = %d, want 2 (out, halt)", m.Other)
	}
	if m.Jumps != 0 {
		t.Errorf("jumps = %d", m.Jumps)
	}
	sum := m.ALU + m.MulDiv + m.Loads + m.Stores + m.Branches + m.Jumps + m.Other
	if sum != m.Total {
		t.Errorf("classes sum to %d, total %d", sum, m.Total)
	}
	if math.Abs(m.TakenRate()-0.75) > 1e-9 {
		t.Errorf("taken rate = %v, want 0.75", m.TakenRate())
	}
	if math.Abs(m.Fraction(m.Loads)-4.0/float64(m.Total)) > 1e-9 {
		t.Errorf("fraction wrong")
	}
}

func TestMixZeroValues(t *testing.T) {
	var m deadness.Mix
	if m.Fraction(1) != 0 || m.TakenRate() != 0 {
		t.Error("zero-trace mix rates should be 0")
	}
}
