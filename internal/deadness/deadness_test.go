package deadness_test

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/trace"
)

// analyzeSrc assembles and runs src, then runs the oracle.
func analyzeSrc(t *testing.T, src string) (*trace.Trace, *deadness.Analysis, *program.Program) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	tr, _, err := emu.Collect(p, 100000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return tr, a, p
}

// kindAtPC returns the deadness.Kind of the single dynamic instance of static pc.
func kindAtPC(t *testing.T, tr *trace.Trace, a *deadness.Analysis, pc int) deadness.Kind {
	t.Helper()
	for seq := 0; seq < tr.Len(); seq++ {
		if int(tr.PCAt(seq)) == pc {
			return a.Kind[seq]
		}
	}
	t.Fatalf("pc %d not in trace", pc)
	return deadness.Live
}

func TestFirstLevelDeadOverwrite(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 1    # 0: dead, overwritten unread
    addi r1, r0, 2    # 1: live via out
    out  r1           # 2
    halt              # 3
`)
	if a.Kind[0] != deadness.FirstLevel {
		t.Errorf("inst 0 kind = %v, want first-level", a.Kind[0])
	}
	if a.Kind[1] != deadness.Live {
		t.Errorf("inst 1 kind = %v, want live", a.Kind[1])
	}
	if a.Resolve[0] != 1 {
		t.Errorf("resolve of dead write = %d, want 1 (overwrite)", a.Resolve[0])
	}
}

func TestFirstLevelDeadAtTraceEnd(t *testing.T) {
	tr, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 1    # 0: never read, trace ends
    halt
`)
	if a.Kind[0] != deadness.FirstLevel {
		t.Errorf("kind = %v, want first-level", a.Kind[0])
	}
	if a.Resolve[0] != int32(tr.Len()) {
		t.Errorf("resolve = %d, want trace length %d", a.Resolve[0], tr.Len())
	}
}

func TestTransitiveDeadChain(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 3    # 0: read only by dead inst 1 -> transitive
    add  r2, r1, r1   # 1: overwritten unread -> first-level
    addi r2, r0, 9    # 2: live
    out  r2
    halt
`)
	if a.Kind[0] != deadness.Transitive {
		t.Errorf("inst 0 = %v, want transitive", a.Kind[0])
	}
	if a.Kind[1] != deadness.FirstLevel {
		t.Errorf("inst 1 = %v, want first-level", a.Kind[1])
	}
	if !a.EverRead[0] || a.EverRead[1] {
		t.Errorf("everRead = %v,%v; want true,false", a.EverRead[0], a.EverRead[1])
	}
}

func TestDeepTransitiveChain(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 1    # 0: transitive (via 1,2)
    add  r2, r1, r0   # 1: transitive (via 2)
    add  r3, r2, r0   # 2: first-level
    halt
`)
	for pc, want := range map[int]deadness.Kind{0: deadness.Transitive, 1: deadness.Transitive, 2: deadness.FirstLevel} {
		if a.Kind[pc] != want {
			t.Errorf("inst %d = %v, want %v", pc, a.Kind[pc], want)
		}
	}
}

func TestBranchOperandsAreLive(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 1    # 0: live, feeds branch
    bne  r1, r0, done # 1
    nop
done:
    halt
`)
	if a.Kind[0] != deadness.Live {
		t.Errorf("branch operand producer = %v, want live", a.Kind[0])
	}
}

func TestOutOperandIsLive(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 7
    out  r1
    halt
`)
	if a.Kind[0] != deadness.Live {
		t.Errorf("out operand = %v, want live", a.Kind[0])
	}
}

func TestDeadStoreOverwritten(t *testing.T) {
	_, a, p := analyzeSrc(t, `
.data
buf: .space 8
.text
main:
    la  r1, buf       # 0 live (feeds stores)
    addi r2, r0, 5    # 1 live (stored then loaded)
    sd  r2, 0(r1)     # 2 dead store: fully overwritten
    sd  r2, 0(r1)     # 3 live store: loaded
    ld  r3, 0(r1)     # 4 live load
    out r3            # 5
    halt
`)
	_ = p
	if a.Kind[2] != deadness.FirstLevel {
		t.Errorf("overwritten store = %v, want first-level", a.Kind[2])
	}
	if a.Kind[3] != deadness.Live {
		t.Errorf("loaded store = %v, want live", a.Kind[3])
	}
	if a.Kind[4] != deadness.Live {
		t.Errorf("load feeding out = %v, want live", a.Kind[4])
	}
}

func TestStoreNeverLoadedIsDead(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
.data
buf: .space 8
.text
main:
    la r1, buf
    sd r1, 0(r1)      # 1: never loaded
    halt
`)
	if a.Kind[1] != deadness.FirstLevel {
		t.Errorf("unloaded store = %v, want first-level", a.Kind[1])
	}
}

func TestPartialOverwriteKeepsStoreLive(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
.data
buf: .space 16
.text
main:
    la  r1, buf
    addi r2, r0, 0x7f
    sd  r2, 0(r1)     # 2: low byte overwritten, byte 1 still read
    sb  r0, 0(r1)     # 3: overwrites byte 0 only; never itself read...
    lb  r3, 1(r1)     # 4: reads byte 1 of store 2
    out r3
    halt
`)
	if a.Kind[2] != deadness.Live {
		t.Errorf("partially overwritten store = %v, want live", a.Kind[2])
	}
	// Store 3's byte is never loaded.
	if a.Kind[3] != deadness.FirstLevel {
		t.Errorf("covering store = %v, want first-level", a.Kind[3])
	}
}

func TestStoreReadOnlyByDeadLoadIsTransitive(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
.data
buf: .space 8
.text
main:
    la  r1, buf
    sd  r1, 0(r1)     # 1: read only by dead load -> transitive
    ld  r2, 0(r1)     # 2: result unread -> first-level
    halt
`)
	if a.Kind[1] != deadness.Transitive {
		t.Errorf("store = %v, want transitive", a.Kind[1])
	}
	if a.Kind[2] != deadness.FirstLevel {
		t.Errorf("dead load = %v, want first-level", a.Kind[2])
	}
}

func TestControlInstructionsNeverDead(t *testing.T) {
	tr, a, _ := analyzeSrc(t, `
main:
    call f            # link register never used by ret path below
    halt
f:
    addi r1, r0, 1    # dead
    ret
`)
	for seq := 0; seq < tr.Len(); seq++ {
		op := tr.OpAt(seq)
		if op.IsControl() && a.Kind[seq].Dead() {
			t.Errorf("control inst %v at seq %d classified dead", op, seq)
		}
		if op.IsControl() && a.Candidate[seq] {
			t.Errorf("control inst %v at seq %d is a candidate", op, seq)
		}
	}
}

func TestLoopDeadness(t *testing.T) {
	// The shifted value r3 is only used on the taken path (never taken
	// here), so every instance is dead.
	tr, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 8    # counter
loop:
    slli r3, r1, 4    # dead every iteration (r4 path never taken)
    beq  r1, r0, use
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r1
    halt
use:
    out r3
    halt
`)
	deadShifts := 0
	for seq := 0; seq < tr.Len(); seq++ {
		if tr.PCAt(seq) == 1 && a.Kind[seq].Dead() {
			deadShifts++
		}
	}
	// 8 iterations: the slli result is overwritten next iteration or at
	// trace end without a read (branch to use never taken).
	if deadShifts != 8 {
		t.Errorf("dead shifts = %d, want 8", deadShifts)
	}
}

func TestSummarize(t *testing.T) {
	// The whole memory subgraph here is dead: the load's result is unread,
	// so the store it reads is transitively dead, and the address
	// computation feeding only dead memory operations is transitively dead
	// as well.
	tr, a, p := analyzeSrc(t, `
.data
buf: .space 8
.text
main:
    addi r1, r0, 1    # 0: dead ALU (overwritten), first-level
    addi r1, r0, 2    # 1: live via out
    la   r2, buf      # 2: transitively dead (feeds only dead mem ops)
    sd   r1, 0(r2)    # 3: transitively dead (read only by dead load)
    ld   r3, 0(r2)    # 4: first-level dead load (r3 unread)
    sd   r1, 0(r2)    # 5: first-level dead store (never loaded)
    out  r1
    halt
`)
	s := a.Summarize(tr, p)
	if s.Total != tr.Len() {
		t.Errorf("total = %d, want %d", s.Total, tr.Len())
	}
	if s.Dead != 5 {
		t.Errorf("dead = %d, want 5", s.Dead)
	}
	if s.DeadALU != 2 || s.DeadLoads != 1 || s.DeadStores != 2 {
		t.Errorf("breakdown = alu %d, loads %d, stores %d; want 2,1,2",
			s.DeadALU, s.DeadLoads, s.DeadStores)
	}
	if s.FirstLevel != 3 || s.Transitive != 2 {
		t.Errorf("levels = %d,%d; want 3,2", s.FirstLevel, s.Transitive)
	}
	if got := s.DeadFraction(); got <= 0 || got >= 1 {
		t.Errorf("dead fraction = %v", got)
	}
	if s.ByProv[program.ProvNormal].Dead != 5 {
		t.Errorf("normal-provenance dead = %d, want 5", s.ByProv[program.ProvNormal].Dead)
	}
}

func TestSummarizeProvenance(t *testing.T) {
	p, err := asm.Assemble("t", `
main:
    addi r1, r0, 1
    addi r1, r0, 2
    out  r1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	p.Prov = make([]program.Provenance, len(p.Insts))
	p.Prov[0] = program.ProvHoisted
	tr, _, err := emu.Collect(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summarize(tr, p)
	if s.ByProv[program.ProvHoisted].Dead != 1 {
		t.Errorf("hoisted dead = %d, want 1", s.ByProv[program.ProvHoisted].Dead)
	}
	if s.ByProv[program.ProvHoisted].Dyn != 1 {
		t.Errorf("hoisted dyn = %d, want 1", s.ByProv[program.ProvHoisted].Dyn)
	}
}

func TestAnalyzeRejectsUnlinkedTrace(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n addi r1, r0, 1\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	tr := &trace.Trace{}
	if err := m.Run(100, tr.Push); err != nil {
		t.Fatal(err)
	}
	if tr.Linked {
		t.Fatal("trace unexpectedly linked")
	}
	if _, err := deadness.Analyze(tr); !errors.Is(err, deadness.ErrUnlinked) {
		t.Fatalf("Analyze(unlinked) error = %v, want ErrUnlinked", err)
	}
	// The fused pass is the entry point for raw traces: it links in place.
	a, err := deadness.LinkAndAnalyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Linked {
		t.Error("LinkAndAnalyze did not mark the trace linked")
	}
	if a.Candidates() == 0 {
		t.Error("no candidates after LinkAndAnalyze")
	}
}

func TestResolveOfReadValue(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 1    # 0
    add  r2, r1, r1   # 1 reads r1 -> resolve of 0 is 1
    out  r2
    halt
`)
	if a.Resolve[0] != 1 {
		t.Errorf("resolve = %d, want 1 (first read)", a.Resolve[0])
	}
}
