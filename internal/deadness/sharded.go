// Sharded analysis: the fused link+analyze pass split across contiguous
// chunk ranges of the columnar trace, so the forward last-writer walk and
// the reverse usefulness walk run on multiple cores while producing an
// Analysis bit-identical to the serial Stream.
//
// # Design
//
// The trace is partitioned into contiguous ranges of rangeChunks chunks;
// each range is one shard. Every shard runs the forward pass of
// Stream.Chunk over its own records with private register and memory
// last-writer state. A shard other than the first cannot know the writers
// that precede it, so its private state distinguishes "no writer yet in
// this shard" from the serial pass's "no writer at all": whenever an
// operand's producer (or a store's overwritten writer) falls before the
// shard, the shard records a boundary fixup instead of a fact. Crucially,
// every fact a shard does write — Candidate, EverRead, Resolve, the Src
// producer columns — names only in-shard records, because the private
// last-writer state only ever holds in-shard sequence numbers. Shards
// therefore touch disjoint index ranges and run without locks.
//
// Reconciliation then walks the shards in order, maintaining the merged
// prefix writer state (registers plus a WriterMap), and replays each
// shard's fixups in sequence order against it before folding the shard's
// final writer summary into the prefix (WriterMap.MergeInto). The replay
// applies exactly the serial conditionals — EverRead |= true, and
// Resolve is set only while still unresolved — and those are first-
// resolver-wins: an in-shard resolver always precedes every cross-shard
// resolver of the same producer (it has a smaller sequence number), and
// cross-shard resolvers replay in global sequence order, so each record
// resolves at the same point the serial pass would pick. Boundary loads
// reserve a full-width producer span during the forward pass and are
// rewritten here byte-by-byte (shard-local writer if the byte was claimed
// in-shard, else the prefix writer), deduplicated in byte order — exactly
// WriterMap.AppendLoadProducers' semantics, so the producer lists match
// the serial link bit for bit.
//
// The reverse pass runs in three phases. R1 sweeps each shard backward in
// parallel, marking usefulness from in-shard roots (FlagRoot plus the
// truncated-trace unresolved-candidate rule, which reads the fully
// reconciled Resolve column) and routing marks that target earlier shards
// to a per-shard outbox. R2 merges the frontiers sequentially from the
// last shard to the first: marks only ever travel backward (a producer
// always precedes its consumer), so one back-to-front pass with a
// worklist reaches the fixpoint, expanding each newly-useful record at
// most once. R3 classifies each shard in parallel from the final useful
// set, rewrites the unresolved sentinel to the trace length, and counts
// candidates. useful is a monotone fixpoint, so the phase split cannot
// change it, and classification reads only fixpoint state — which is why
// it is a separate phase rather than fused into the sweep as in the
// serial finish.
package deadness

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"repro/internal/isa"
	"repro/internal/trace"
)

// DefaultShards is the shard count used when a caller passes shards <= 0:
// one shard per available CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// sanitizeShards maps a user-facing shard knob to a usable count.
func sanitizeShards(shards int) int {
	if shards <= 0 {
		shards = DefaultShards()
	}
	return min(shards, 256)
}

// Boundary fixup kinds, recorded by a shard's forward pass in scan order
// (so each shard's fixup list is sequence-ordered by construction).
const (
	fixRegRead  = iota // register read whose producer precedes the shard
	fixRegWrite        // first in-shard write of a register
	fixLoad            // load with at least one byte unclaimed in-shard
	fixStore           // store overwriting at least one pre-shard byte
)

// fixup is one unresolved boundary fact, replayed against the merged
// prefix writer state during reconciliation.
type fixup struct {
	seq   int32
	kind  uint8
	slot  uint8   // fixRegRead: 1 (Src1) or 2 (Src2)
	reg   isa.Reg // register events
	width uint8   // memory events
	mask  uint8   // fixStore: bit b set ⇒ byte b was unclaimed in-shard
	ci    int32   // fixRegRead/fixLoad: local index within c
	c     *trace.Chunk
	addr  uint64   // memory events
	wr    [8]int32 // fixLoad: in-shard per-byte writers at load time
}

// shardState is one shard's private forward-pass state. All fields are
// owned by the worker processing the shard until the stream is joined.
type shardState struct {
	base      int // global sequence number of the shard's first record
	n         int // records consumed so far
	auth      bool
	regWriter [isa.NumRegs]int32
	wm        *trace.WriterMap
	// Per-shard fact columns, indexed by seq - base; copied into the
	// global Analysis at assembly. Keeping them shard-local lets the
	// stream size storage to the actual trace instead of the budget.
	cand     []bool
	everRead []bool
	resolve  []int32
	ineff    []IneffKind
	fixups   []fixup
	prevBuf  []int32
	err      error
}

// ShardedStream is the parallel counterpart of Stream: feed completed
// trace chunks in order (Chunk), then Finish. Chunks are dispatched to
// worker goroutines by shard, so the forward pass overlaps both the
// producer (e.g. the emulator) and the other shards; errors surface at
// Finish, deterministically the one with the lowest sequence number.
type ShardedStream struct {
	rangeChunks int // chunks per shard
	workers     []chan dispatch
	wg          sync.WaitGroup
	states      []*shardState
	sent        int // chunks dispatched so far
	joined      bool
	closed      bool
}

type dispatch struct {
	c  *trace.Chunk
	st *shardState
}

// NewShardedStream starts a sharded analysis pass with the given worker
// count (shards <= 0 means DefaultShards). hint estimates the final trace
// length (the emulation budget is fine); it only tunes the shard
// granularity, not any allocation.
func NewShardedStream(hint, shards int) *ShardedStream {
	shards = sanitizeShards(shards)
	// Aim for a few shards per worker so the tail of the trace still
	// spreads across cores, with chunky enough ranges that boundary
	// fixups stay rare.
	estChunks := max(1, hint>>trace.ChunkBits)
	k := max(1, min(estChunks/(4*shards), 64))
	return newShardedStream(k, shards)
}

func newShardedStream(rangeChunks, workers int) *ShardedStream {
	ss := &ShardedStream{rangeChunks: max(1, rangeChunks)}
	for w := 0; w < workers; w++ {
		ch := make(chan dispatch, 4)
		ss.workers = append(ss.workers, ch)
		ss.wg.Add(1)
		go func() {
			defer ss.wg.Done()
			for d := range ch {
				// Keep draining after an error so the dispatcher never
				// blocks on a full channel.
				if d.st.err == nil {
					d.st.err = d.st.chunk(d.c)
				}
			}
		}()
	}
	return ss
}

// Chunk dispatches the next chunk of the trace to its shard's worker.
// Chunks must arrive in trace order; errors are reported by Finish.
func (ss *ShardedStream) Chunk(c *trace.Chunk) {
	r := ss.sent / ss.rangeChunks
	ss.sent++
	if r == len(ss.states) {
		st := &shardState{
			base: r * ss.rangeChunks << trace.ChunkBits,
			auth: r == 0,
			wm:   trace.NewWriterMap(),
		}
		for i := range st.regWriter {
			st.regWriter[i] = trace.NoProducer
		}
		ss.states = append(ss.states, st)
	}
	ss.workers[r%len(ss.workers)] <- dispatch{c: c, st: ss.states[r]}
}

// join closes the worker channels and waits for in-flight chunks.
func (ss *ShardedStream) join() {
	if ss.joined {
		return
	}
	ss.joined = true
	for _, ch := range ss.workers {
		close(ch)
	}
	ss.wg.Wait()
}

// Close joins the workers and releases every shard's writer-map pages
// back to the shared pool. It is idempotent and safe after an aborted
// pass; Finish calls it.
func (ss *ShardedStream) Close() {
	ss.join()
	if ss.closed {
		return
	}
	ss.closed = true
	for _, st := range ss.states {
		if st.wm != nil {
			st.wm.Reset()
			st.wm = nil
		}
		st.fixups = nil
	}
}

// Finish completes the pass over the fully collected trace: it joins the
// shard workers, assembles the per-shard facts, reconciles the shard
// boundaries, and runs the three-phase reverse pass. The stream must not
// be fed afterwards.
func (ss *ShardedStream) Finish(t *trace.Trace) (*Analysis, error) {
	ss.join()
	for _, st := range ss.states {
		// Shards hold disjoint ascending sequence ranges, so the first
		// erroring shard's error is the lowest-sequence one — the same
		// error the serial pass would have stopped at.
		if st.err != nil {
			ss.Close()
			return nil, st.err
		}
	}
	n := t.Len()
	a := newAnalysis(n)
	for _, st := range ss.states {
		copy(a.Candidate[st.base:], st.cand)
		copy(a.EverRead[st.base:], st.everRead)
		copy(a.Resolve[st.base:], st.resolve)
		copy(a.Ineff[st.base:], st.ineff)
	}
	ss.reconcile(a)
	ss.Close()
	t.Linked = true
	ss.reverse(t, a)
	return a, nil
}

// chunk is the shard-local forward pass: Stream.Chunk against private
// writer state, with boundary fixups where that state runs out.
func (st *shardState) chunk(c *trace.Chunk) error {
	base := st.base + st.n
	cn := c.Len()
	off := st.n
	end := off + cn
	st.cand = slices.Grow(st.cand, cn)[:end]
	st.everRead = slices.Grow(st.everRead, cn)[:end]
	st.resolve = slices.Grow(st.resolve, cn)[:end]
	st.ineff = slices.Grow(st.ineff, cn)[:end]
	clear(st.cand[off:end])
	clear(st.everRead[off:end])
	clear(st.resolve[off:end])
	clear(st.ineff[off:end])

	c.BeginLink()
	op, rd, rs1, rs2 := c.Op[:cn], c.Rd[:cn], c.Rs1[:cn], c.Rs2[:cn]
	memIdx := c.MemIdx[:cn]
	src1, src2 := c.Src1[:cn], c.Src2[:cn]
	hints := c.Ineff[:cn]
	resolve, everRead, cand := st.resolve, st.everRead, st.cand
	ineff := st.ineff
	lo := int32(st.base)
	for i := 0; i < cn; i++ {
		seq := int32(base + i)
		li := off + i
		f := op[i].Flags()
		// Ineffectuality classification is record-local (no cross-shard
		// state), so the shard applies the shared policy directly — no
		// boundary fixup can ever be needed for it.
		if h := hints[i]; h != 0 {
			ineff[li] = classifyIneff(f, rd[i], h)
		}
		s1, s2 := trace.NoProducer, trace.NoProducer
		if f&isa.FlagReadsRs1 != 0 && rs1[i] != isa.RZero {
			if s1 = st.regWriter[rs1[i]]; s1 != trace.NoProducer {
				everRead[s1-lo] = true
				if resolve[s1-lo] == unresolved {
					resolve[s1-lo] = seq
				}
			} else if !st.auth {
				st.fixups = append(st.fixups, fixup{kind: fixRegRead, seq: seq, reg: rs1[i], slot: 1, c: c, ci: int32(i)})
			}
		}
		if f&isa.FlagReadsRs2 != 0 && rs2[i] != isa.RZero {
			if s2 = st.regWriter[rs2[i]]; s2 != trace.NoProducer {
				everRead[s2-lo] = true
				if resolve[s2-lo] == unresolved {
					resolve[s2-lo] = seq
				}
			} else if !st.auth {
				st.fixups = append(st.fixups, fixup{kind: fixRegRead, seq: seq, reg: rs2[i], slot: 2, c: c, ci: int32(i)})
			}
		}
		src1[i], src2[i] = s1, s2
		if mi := memIdx[i]; mi >= 0 {
			o := op[i]
			w := c.Width[mi]
			if w == 0 || w != o.MemWidthFast() {
				return fmt.Errorf("deadness: seq %d: %v has width %d, want %d",
					seq, o, w, o.MemWidth())
			}
			addr := c.Addr[mi]
			if f&isa.FlagLoad != 0 {
				covered := st.auth
				var bw [8]int32
				if !covered {
					covered = st.wm.ByteWriters(addr, int(w), &bw)
				}
				if covered {
					for _, p := range c.LinkLoadProducers(i, st.wm) {
						if p != trace.NoProducer {
							everRead[p-lo] = true
							if resolve[p-lo] == unresolved {
								resolve[p-lo] = seq
							}
						}
					}
				} else {
					// Boundary load: keep the in-shard producers now and
					// reserve room for the reconciled full-width list (a
					// width-w load has at most w distinct byte writers).
					var buf [trace.MaxMemProducers]int32
					local := appendDistinct(bw[:w], buf[:0])
					c.ReserveLoadProducers(i, int(w), local)
					for _, p := range local {
						everRead[p-lo] = true
						if resolve[p-lo] == unresolved {
							resolve[p-lo] = seq
						}
					}
					st.fixups = append(st.fixups, fixup{kind: fixLoad, seq: seq, c: c, ci: int32(i), addr: addr, width: w, wr: bw})
				}
			} else {
				cand[li] = true
				if !st.auth {
					var bw [8]int32
					if !st.wm.ByteWriters(addr, int(w), &bw) {
						var m uint8
						for b := 0; b < int(w); b++ {
							if bw[b] == trace.NoProducer {
								m |= 1 << b
							}
						}
						st.fixups = append(st.fixups, fixup{kind: fixStore, seq: seq, addr: addr, width: w, mask: m})
					}
				}
				st.prevBuf = st.wm.Overwrite(addr, int(w), seq, st.prevBuf[:0])
				for _, prev := range st.prevBuf {
					if resolve[prev-lo] == unresolved {
						resolve[prev-lo] = seq
					}
				}
			}
		}
		if f&isa.FlagHasDest != 0 && rd[i] != isa.RZero {
			if f&isa.FlagControl == 0 {
				cand[li] = true
			}
			if prev := st.regWriter[rd[i]]; prev != trace.NoProducer {
				if resolve[prev-lo] == unresolved {
					resolve[prev-lo] = seq
				}
			} else if !st.auth {
				st.fixups = append(st.fixups, fixup{kind: fixRegWrite, seq: seq, reg: rd[i]})
			}
			st.regWriter[rd[i]] = seq
		}
	}
	st.n += cn
	return nil
}

// appendDistinct appends the distinct writers of a per-byte span to dst
// in byte order, skipping NoProducer and capped at MaxMemProducers —
// WriterMap.AppendLoadProducers' dedup, applied to materialized bytes.
func appendDistinct(bw []int32, dst []int32) []int32 {
outer:
	for _, p := range bw {
		if p == trace.NoProducer {
			continue
		}
		for _, q := range dst {
			if q == p {
				continue outer
			}
		}
		if len(dst) < trace.MaxMemProducers {
			dst = append(dst, p)
		}
	}
	return dst
}

// reconcile replays every shard's boundary fixups, in global sequence
// order, against the merged prefix writer state of the shards before it.
func (ss *ShardedStream) reconcile(a *Analysis) {
	var preg [isa.NumRegs]int32
	for i := range preg {
		preg[i] = trace.NoProducer
	}
	pwm := trace.NewWriterMap()
	defer pwm.Reset()
	resolve, everRead := a.Resolve, a.EverRead
	for _, st := range ss.states {
		for fi := range st.fixups {
			f := &st.fixups[fi]
			switch f.kind {
			case fixRegRead:
				p := preg[f.reg]
				if f.slot == 1 {
					f.c.Src1[f.ci] = p
				} else {
					f.c.Src2[f.ci] = p
				}
				if p != trace.NoProducer {
					everRead[p] = true
					if resolve[p] == unresolved {
						resolve[p] = f.seq
					}
				}
			case fixRegWrite:
				if p := preg[f.reg]; p != trace.NoProducer && resolve[p] == unresolved {
					resolve[p] = f.seq
				}
			case fixStore:
				for b := 0; b < int(f.width); b++ {
					if f.mask&(1<<b) == 0 {
						continue
					}
					if p := pwm.Get(f.addr + uint64(b)); p != trace.NoProducer && resolve[p] == unresolved {
						resolve[p] = f.seq
					}
				}
			case fixLoad:
				var bw [8]int32
				for b := 0; b < int(f.width); b++ {
					bw[b] = f.wr[b]
					if bw[b] == trace.NoProducer {
						bw[b] = pwm.Get(f.addr + uint64(b))
					}
				}
				var buf [trace.MaxMemProducers]int32
				list := appendDistinct(bw[:f.width], buf[:0])
				f.c.SetLoadProducers(int(f.ci), list)
				for _, p := range list {
					everRead[p] = true
					if resolve[p] == unresolved {
						resolve[p] = f.seq
					}
				}
			}
		}
		for r, w := range st.regWriter {
			if w != trace.NoProducer {
				preg[r] = w
			}
		}
		st.wm.MergeInto(pwm)
	}
}

// reverse is the sharded counterpart of Analysis.finish: parallel
// per-shard usefulness sweeps (R1), a sequential back-to-front frontier
// merge (R2), and parallel classification (R3).
func (ss *ShardedStream) reverse(t *trace.Trace, a *Analysis) {
	n := t.Len()
	trunc := truncated(t)
	useful := make([]bool, n)
	nr := len(ss.states)
	outbox := make([][]int32, nr)

	// R1: each shard sweeps backward from its own roots, marking in-shard
	// producers directly and routing cross-shard marks to its outbox.
	ss.parallelRanges(func(r int) {
		outbox[r] = ss.sweep(t, a, r, trunc, useful)
	})

	// R2: drain the frontiers from the last shard to the first. Marks
	// only travel backward (producers precede consumers), so one pass
	// reaches the fixpoint; each record is expanded at most once.
	rangeRecs := ss.rangeChunks << trace.ChunkBits
	pending := make([][]int32, nr)
	for _, out := range outbox {
		for _, p := range out {
			pending[int(p)/rangeRecs] = append(pending[int(p)/rangeRecs], p)
		}
	}
	var stack []int32
	for r := nr - 1; r >= 0; r-- {
		stack = append(stack[:0], pending[r]...)
		lo := int32(ss.states[r].base)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if useful[p] {
				continue
			}
			useful[p] = true
			c := t.Chunk(int(p) >> trace.ChunkBits)
			i := int(p) & (trace.ChunkSize - 1)
			mark := func(q int32) {
				if q == trace.NoProducer {
					return
				}
				if q >= lo {
					stack = append(stack, q)
				} else {
					pending[int(q)/rangeRecs] = append(pending[int(q)/rangeRecs], q)
				}
			}
			mark(c.Src1[i])
			mark(c.Src2[i])
			if c.MemIdx[i] >= 0 {
				for _, q := range c.MemProducers(i) {
					mark(q)
				}
			}
		}
	}

	// R3: classify from the fixpoint useful set and rewrite the
	// unresolved sentinel, each shard independently.
	counts := make([]int, nr)
	ss.parallelRanges(func(r int) {
		counts[r] = ss.classify(t, a, r, useful)
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	a.candidates = total
}

// parallelRanges runs fn(r) for every shard index, spread over the
// stream's worker count.
func (ss *ShardedStream) parallelRanges(fn func(r int)) {
	nr := len(ss.states)
	nw := min(len(ss.workers), nr)
	if nw <= 1 {
		for r := 0; r < nr; r++ {
			fn(r)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < nr; r += nw {
				fn(r)
			}
		}(w)
	}
	wg.Wait()
}

// sweep is one shard's R1 backward walk. It writes useful only at
// in-shard indexes; marks for earlier shards are returned.
func (ss *ShardedStream) sweep(t *trace.Trace, a *Analysis, r int, trunc bool, useful []bool) []int32 {
	st := ss.states[r]
	lo := int32(st.base)
	resolve, cand := a.Resolve, a.Candidate
	var out []int32
	firstChunk := st.base >> trace.ChunkBits
	lastChunk := firstChunk + (st.n-1)>>trace.ChunkBits
	for ci := lastChunk; ci >= firstChunk; ci-- {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		cn := c.Len()
		op, src1, src2, memIdx := c.Op[:cn], c.Src1[:cn], c.Src2[:cn], c.MemIdx[:cn]
		for i := cn - 1; i >= 0; i-- {
			seq := base + i
			if !useful[seq] {
				if op[i].Flags()&isa.FlagRoot == 0 {
					// The conservative truncated-trace rule: an unresolved
					// candidate may still be used beyond the horizon.
					if !trunc || !cand[seq] || resolve[seq] != unresolved {
						continue
					}
				}
				useful[seq] = true
			}
			if p := src1[i]; p != trace.NoProducer {
				if p >= lo {
					useful[p] = true
				} else {
					out = append(out, p)
				}
			}
			if p := src2[i]; p != trace.NoProducer {
				if p >= lo {
					useful[p] = true
				} else {
					out = append(out, p)
				}
			}
			if memIdx[i] >= 0 {
				for _, p := range c.MemProducers(i) {
					if p >= lo {
						useful[p] = true
					} else {
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// classify is one shard's R3 pass: kind, candidate count, and the
// unresolved→n sentinel rewrite, from the final useful set.
func (ss *ShardedStream) classify(t *trace.Trace, a *Analysis, r int, useful []bool) int {
	st := ss.states[r]
	kind, cand, everRead, resolve := a.Kind, a.Candidate, a.EverRead, a.Resolve
	n32 := int32(t.Len())
	count := 0
	for seq := st.base; seq < st.base+st.n; seq++ {
		isCand := cand[seq]
		if isCand {
			count++
		}
		if resolve[seq] == unresolved {
			resolve[seq] = n32
		}
		switch {
		case useful[seq] || !isCand:
			kind[seq] = Live
		case everRead[seq]:
			kind[seq] = Transitive
		default:
			kind[seq] = FirstLevel
		}
	}
	return count
}

// LinkAndAnalyzeSharded is LinkAndAnalyze with the forward and reverse
// passes spread across shards (shards <= 0 means DefaultShards). The
// resulting Analysis and producer links are bit-identical to the serial
// pass for every shard count, including shard counts exceeding the
// trace's chunk count.
func LinkAndAnalyzeSharded(t *trace.Trace, shards int) (*Analysis, error) {
	shards = sanitizeShards(shards)
	nc := t.NumChunks()
	k := max(1, (nc+shards-1)/shards)
	ss := newShardedStream(k, shards)
	for ci := 0; ci < nc; ci++ {
		ss.Chunk(t.Chunk(ci))
	}
	return ss.Finish(t)
}
