package deadness_test

import "testing"

func TestResolveDistances(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 1    # 0: dead, resolved by overwrite at 2 (distance 2)
    nop               # 1
    addi r1, r0, 2    # 2: live, resolved by read at 3 (distance 1)
    out  r1           # 3
    addi r2, r0, 9    # 4: dead, unresolved (trace ends at halt)
    halt              # 5
`)
	dead := a.ResolveDistances(true)
	if dead.Count != 1 {
		t.Fatalf("dead resolved = %d, want 1 (the overwritten addi)", dead.Count)
	}
	if dead.P50 != 2 || dead.Mean != 2 {
		t.Errorf("distance = p50 %d mean %v, want 2", dead.P50, dead.Mean)
	}
	// Trace ends at HALT, so the final write is genuinely dead but its
	// resolve point is the trace end: counted unresolved.
	if dead.Unresolved != 1 {
		t.Errorf("unresolved = %d, want 1", dead.Unresolved)
	}
	if dead.WithinROB != 1 {
		t.Errorf("withinROB = %v, want 1", dead.WithinROB)
	}

	all := a.ResolveDistances(false)
	if all.Count != 2 {
		t.Errorf("all resolved = %d, want 2", all.Count)
	}
}

func TestResolveDistancesEmpty(t *testing.T) {
	_, a, _ := analyzeSrc(t, "main:\n halt\n")
	st := a.ResolveDistances(true)
	if st.Count != 0 || st.Mean != 0 {
		t.Errorf("empty distances = %+v", st)
	}
}

func TestResolveDistancesLoop(t *testing.T) {
	_, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 100
loop:
    slli r3, r1, 2    # dead; overwritten next iteration (distance 3)
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r1
    halt
`)
	st := a.ResolveDistances(true)
	if st.Count < 99 {
		t.Fatalf("resolved dead = %d", st.Count)
	}
	if st.P50 != 3 {
		t.Errorf("p50 = %d, want 3 (loop body length)", st.P50)
	}
}
