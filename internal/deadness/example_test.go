package deadness_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
)

// Example walks the whole trace-level flow: assemble a program in which
// one value is overwritten before use, run it, and ask the oracle.
func Example() {
	prog, err := asm.Assemble("example", `
main:
    addi r1, r0, 1    # dead: overwritten before any read
    addi r1, r0, 2
    out  r1
    halt
`)
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := emu.Collect(prog, 1000)
	if err != nil {
		log.Fatal(err)
	}
	an, err := deadness.Analyze(tr)
	if err != nil {
		log.Fatal(err)
	}
	for seq := 0; seq < tr.Len(); seq++ {
		fmt.Printf("%-16v %v\n", prog.Insts[tr.PCAt(seq)], an.Kind[seq])
	}
	// Output:
	// addi r1, r0, 1   first-level
	// addi r1, r0, 2   live
	// out r1           live
	// halt             live
}

func ExampleComputeLocality() {
	profile := []deadness.StaticStat{
		{PC: 4, Dyn: 100, Dead: 90},
		{PC: 9, Dyn: 100, Dead: 10},
	}
	loc := deadness.ComputeLocality(profile, []int{1, 2})
	fmt.Printf("top-1 covers %.0f%%, %d partially dead statics\n",
		100*loc.CoverageAt[0], loc.PartiallyDeadStatics)
	// Output: top-1 covers 90%, 2 partially dead statics
}
