package deadness_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// ineffAtPC returns the IneffKind of the n-th dynamic instance of static
// pc (n is zero-based).
func ineffAtPC(t *testing.T, tr *trace.Trace, a *deadness.Analysis, pc, n int) deadness.IneffKind {
	t.Helper()
	for seq := 0; seq < tr.Len(); seq++ {
		if int(tr.PCAt(seq)) == pc {
			if n == 0 {
				return a.Ineff[seq]
			}
			n--
		}
	}
	t.Fatalf("instance %d of pc %d not in trace", n, pc)
	return deadness.IneffNone
}

func TestSilentStoreDetected(t *testing.T) {
	tr, a, p := analyzeSrc(t, `
.data
buf: .space 8
.text
main:
    la   r1, buf
    addi r2, r0, 7
    sd   r2, 0(r1)    # 2: memory held 0, writes 7 -> not silent
    sd   r2, 0(r1)    # 3: rewrites 7 over 7 -> silent
    sd   r0, 8(r1)    # 4: writes 0 over fresh zeroed memory -> silent
    ld   r3, 0(r1)
    out  r3
    halt
`)
	if got := ineffAtPC(t, tr, a, 2, 0); got != deadness.IneffNone {
		t.Errorf("first store = %v, want none", got)
	}
	if got := ineffAtPC(t, tr, a, 3, 0); got != deadness.SilentStore {
		t.Errorf("same-value store = %v, want silent-store", got)
	}
	if got := ineffAtPC(t, tr, a, 4, 0); got != deadness.SilentStore {
		t.Errorf("zero-over-zero store = %v, want silent-store", got)
	}
	s := a.Summarize(tr, p)
	if s.SilentStores != 2 || s.Stores != 3 {
		t.Errorf("summary silent/stores = %d/%d, want 2/3", s.SilentStores, s.Stores)
	}
}

func TestTrivialOpsDetected(t *testing.T) {
	tr, a, p := analyzeSrc(t, `
main:
    addi r1, r0, 5    # 0: result 5 != rs1 value 0 -> none
    add  r2, r1, r0   # 1: x+0 -> trivial
    or   r3, r1, r0   # 2: x|0 -> trivial
    and  r4, r1, r1   # 3: x&x -> trivial
    addi r5, r0, 1    # 4: none
    mul  r6, r1, r5   # 5: x*1 -> trivial
    mul  r7, r1, r0   # 6: x*0 == r0's value -> trivial
    add  r7, r1, r5   # 7: 5+1 -> none
    out  r7
    halt
`)
	want := map[int]deadness.IneffKind{
		0: deadness.IneffNone,
		1: deadness.TrivialOp,
		2: deadness.TrivialOp,
		3: deadness.TrivialOp,
		4: deadness.IneffNone,
		5: deadness.TrivialOp,
		6: deadness.TrivialOp,
		7: deadness.IneffNone,
	}
	for pc, w := range want {
		if got := ineffAtPC(t, tr, a, pc, 0); got != w {
			t.Errorf("pc %d = %v, want %v", pc, got, w)
		}
	}
	if s := a.Summarize(tr, p); s.TrivialOps != 5 {
		t.Errorf("summary trivial ops = %d, want 5", s.TrivialOps)
	}
}

func TestTrivialOpIsValueDriven(t *testing.T) {
	// The same static x+r2 instruction flips between trivial and
	// effectual as r2's runtime value changes — ineffectuality is a
	// dynamic fact, not a static pattern match.
	tr, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 9
    addi r2, r0, 0
    add  r3, r1, r2   # 2, instance 0: r2 == 0 -> trivial
    addi r2, r0, 4
    add  r3, r1, r2   # 4 (same shape, different pc): r2 == 4 -> none
    out  r3
    halt
`)
	if got := ineffAtPC(t, tr, a, 2, 0); got != deadness.TrivialOp {
		t.Errorf("x+0 instance = %v, want trivial-op", got)
	}
	if got := ineffAtPC(t, tr, a, 4, 0); got != deadness.IneffNone {
		t.Errorf("x+4 instance = %v, want none", got)
	}
}

// TestIneffOrthogonalToDeadness pins that the two fact columns are
// independent: a silent store can be live (its value is later loaded) and
// a trivial op can be dead (its result is never read).
func TestIneffOrthogonalToDeadness(t *testing.T) {
	tr, a, _ := analyzeSrc(t, `
.data
buf: .space 8
.text
main:
    la   r1, buf
    addi r2, r0, 3
    sd   r2, 0(r1)    # 2: live store, not silent
    sd   r2, 0(r1)    # 3: silent AND live (load below reads it)
    ld   r4, 0(r1)    # 4
    add  r5, r4, r0   # 5: trivial AND dead (r5 never read)
    out  r4
    halt
`)
	if k, in := kindAtPC(t, tr, a, 3), ineffAtPC(t, tr, a, 3, 0); k != deadness.Live || in != deadness.SilentStore {
		t.Errorf("silent live store: kind=%v ineff=%v, want live/silent-store", k, in)
	}
	if k, in := kindAtPC(t, tr, a, 5), ineffAtPC(t, tr, a, 5, 0); !k.Dead() || in != deadness.TrivialOp {
		t.Errorf("dead trivial op: kind=%v ineff=%v, want dead/trivial-op", k, in)
	}
}

// collectRawSrc assembles src and emulates it into an unlinked columnar
// trace, so each analysis path below can run on its own clone.
func collectRawSrc(t *testing.T, src string, budget int) *trace.Trace {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := emu.New(p)
	tr := &trace.Trace{}
	if err := m.Run(budget, tr.Push); err != nil && !errors.Is(err, emu.ErrBudget) {
		t.Fatalf("run: %v", err)
	}
	return tr
}

// TestIneffChainAcrossChunkBoundary runs a loop long enough that its
// silent stores and x+0 trivial chains span multiple trace chunks, and
// requires the serial, sharded, and per-instance facts to agree — the
// chunk seam must be invisible to the ineffectuality column.
func TestIneffChainAcrossChunkBoundary(t *testing.T) {
	// 7 instructions per iteration; 1400 iterations ≈ 9800 records,
	// crossing the 8192-record chunk boundary mid-loop.
	const iters = 1400
	src := `
.data
buf: .space 8
.text
main:
    la   r1, buf
    addi r2, r0, 9
    sd   r2, 0(r1)       # prime memory: loop stores rewrite 9 over 9
    addi r4, r0, ` + itoa(iters) + `
loop:
    sd   r2, 0(r1)       # 4: silent every iteration
    add  r5, r2, r0      # 5: x+0 chain head
    add  r6, r5, r0      # 6: chain link, also trivial
    add  r7, r6, r0      # 7: chain tail, also trivial
    addi r4, r4, -1
    bne  r4, r0, loop
    out  r7
    halt
`
	raw := collectRawSrc(t, src, 20_000)
	if raw.NumChunks() < 2 {
		t.Fatalf("trace has %d chunks; loop too short to cross a boundary", raw.NumChunks())
	}

	serialTr := raw.Clone()
	serial, err := deadness.LinkAndAnalyze(serialTr)
	if err != nil {
		t.Fatal(err)
	}

	// Every dynamic instance of the loop body classifies, on both sides
	// of the chunk seam.
	silent, trivial := 0, 0
	for seq := 0; seq < serialTr.Len(); seq++ {
		switch pc := serialTr.PCAt(seq); pc {
		case 4:
			if serial.Ineff[seq] != deadness.SilentStore {
				t.Fatalf("seq %d (loop store): %v, want silent-store", seq, serial.Ineff[seq])
			}
			silent++
		case 5, 6, 7:
			if serial.Ineff[seq] != deadness.TrivialOp {
				t.Fatalf("seq %d (chain pc %d): %v, want trivial-op", seq, pc, serial.Ineff[seq])
			}
			trivial++
		}
	}
	if silent != iters || trivial != 3*iters {
		t.Errorf("instances: silent=%d trivial=%d, want %d/%d", silent, trivial, iters, 3*iters)
	}

	for _, shards := range []int{1, 3, 64} {
		tr := raw.Clone()
		a, err := deadness.LinkAndAnalyzeSharded(tr, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Ineff, serial.Ineff) {
			t.Errorf("shards=%d: Ineff column diverges from serial", shards)
		}
		if !reflect.DeepEqual(a.Kind, serial.Kind) {
			t.Errorf("shards=%d: Kind column diverges from serial", shards)
		}
	}
}

// randIneffRecords generates a random well-formed record stream with
// random emulator-producible hint bits: ALU ops with result-equality
// hints, stores with silent-store hints, loads, and branches. The hints
// are adversarial inputs to classification, not required to be mutually
// consistent with the values — classification must be a pure function of
// the record either way.
func randIneffRecords(rng *rand.Rand, n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		pc := int32(rng.Intn(97))
		rd := isa.Reg(1 + rng.Intn(7))
		rs1 := isa.Reg(rng.Intn(8))
		rs2 := isa.Reg(rng.Intn(8))
		r := trace.Record{PC: pc, Rd: rd, Rs1: rs1, Rs2: rs2}
		switch rng.Intn(10) {
		case 0, 1, 2:
			r.Op = isa.ADD
			if rng.Intn(3) == 0 {
				r.Ineff |= trace.HintResultEqRs1
			}
			if rng.Intn(3) == 0 {
				r.Ineff |= trace.HintResultEqRs2
			}
		case 3, 4:
			r.Op = isa.ADDI
			if rng.Intn(3) == 0 {
				r.Ineff = trace.HintResultEqRs1
			}
		case 5, 6:
			r.Op = isa.SD
			r.Addr = uint64(0x1000 + 8*rng.Intn(101))
			r.Width = 8
			if rng.Intn(2) == 0 {
				r.Ineff = trace.HintSilentStore
			}
		case 7:
			r.Op = isa.SW
			r.Addr = uint64(0x1000 + 4*rng.Intn(211))
			r.Width = 4
			if rng.Intn(2) == 0 {
				r.Ineff = trace.HintSilentStore
			}
		case 8:
			r.Op = isa.LD
			r.Addr = uint64(0x1000 + 8*rng.Intn(101))
			r.Width = 8
		case 9:
			r.Op = isa.BNE
			r.Taken = rng.Intn(2) == 0
		}
		r.NextPC = int32((i + 1) % 97)
		recs[i] = r
	}
	return recs
}

// TestIneffShardedMatchesSerialRandom is the randomized property guard:
// for random traces with random hint bits, at lengths straddling chunk
// boundaries, the sharded pass must reproduce every serial fact column —
// including Ineff — at every shard count.
func TestIneffShardedMatchesSerialRandom(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	totalIneff := 0
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(9200 + seed)))
		n := 1 + rng.Intn(3*trace.ChunkSize)
		if rng.Intn(4) == 0 {
			// Force an exact chunk-multiple length: the cut lands on a
			// shard boundary.
			n = trace.ChunkSize * (1 + rng.Intn(3))
		}
		recs := randIneffRecords(rng, n)

		serialTr := trace.FromRecords(recs)
		serial, err := deadness.LinkAndAnalyze(serialTr)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		for _, k := range serial.Ineff {
			if k.Ineffectual() {
				totalIneff++
			}
		}

		for _, shards := range []int{1, 2, 5, 64} {
			tr := trace.FromRecords(recs)
			a, err := deadness.LinkAndAnalyzeSharded(tr, shards)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if !reflect.DeepEqual(a.Ineff, serial.Ineff) {
				t.Fatalf("seed %d shards %d: Ineff diverges", seed, shards)
			}
			if !reflect.DeepEqual(a.Kind, serial.Kind) {
				t.Fatalf("seed %d shards %d: Kind diverges", seed, shards)
			}
			if !reflect.DeepEqual(a.Candidate, serial.Candidate) {
				t.Fatalf("seed %d shards %d: Candidate diverges", seed, shards)
			}
			if !reflect.DeepEqual(a.EverRead, serial.EverRead) {
				t.Fatalf("seed %d shards %d: EverRead diverges", seed, shards)
			}
			if !reflect.DeepEqual(a.Resolve, serial.Resolve) {
				t.Fatalf("seed %d shards %d: Resolve diverges", seed, shards)
			}
		}
	}
	if totalIneff == 0 {
		t.Fatal("no ineffectual instances across all seeds; property test is vacuous")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
