package deadness_test

import (
	"math"
	"repro/internal/deadness"
	"testing"
)

func TestStaticProfile(t *testing.T) {
	tr, a, _ := analyzeSrc(t, `
main:
    addi r1, r0, 4    # pc 0: loop counter, live
loop:
    slli r2, r1, 1    # pc 1: dead every iteration (r2 unread before redef)
    addi r2, r0, 7    # pc 2: dead except last iteration (out below)
    addi r1, r1, -1   # pc 3: live
    bne  r1, r0, loop # pc 4
    out  r2           # pc 5
    halt
`)
	prof := a.StaticProfile(tr)
	if len(prof) != 2 {
		t.Fatalf("profile = %+v, want 2 static instructions", prof)
	}
	// pc 1 executes 4 times, dead 4 times; pc 2 executes 4, dead 3.
	if prof[0].PC != 1 || prof[0].Dyn != 4 || prof[0].Dead != 4 {
		t.Errorf("top static = %+v, want pc 1, 4/4 dead", prof[0])
	}
	if prof[1].PC != 2 || prof[1].Dyn != 4 || prof[1].Dead != 3 {
		t.Errorf("second static = %+v, want pc 2, 3/4 dead", prof[1])
	}
	if r := prof[1].Ratio(); math.Abs(r-0.75) > 1e-9 {
		t.Errorf("ratio = %v, want 0.75", r)
	}
}

func TestComputeLocality(t *testing.T) {
	profile := []deadness.StaticStat{
		{PC: 10, Dyn: 100, Dead: 100}, // fully dead
		{PC: 20, Dyn: 100, Dead: 60},  // partially, mostly dead
		{PC: 30, Dyn: 100, Dead: 40},  // partially, not mostly
	}
	loc := deadness.ComputeLocality(profile, []int{1, 2, 3, 10})
	if loc.DeadStatics != 3 || loc.TotalDead != 200 {
		t.Fatalf("loc = %+v", loc)
	}
	wantCov := []float64{0.5, 0.8, 1.0, 1.0}
	for i, w := range wantCov {
		if math.Abs(loc.CoverageAt[i]-w) > 1e-9 {
			t.Errorf("coverage[%d] = %v, want %v", i, loc.CoverageAt[i], w)
		}
	}
	if loc.FullyDeadStatics != 1 || loc.PartiallyDeadStatics != 2 {
		t.Errorf("fully=%d partially=%d", loc.FullyDeadStatics, loc.PartiallyDeadStatics)
	}
	if math.Abs(loc.DeadFromPartial-0.5) > 1e-9 {
		t.Errorf("DeadFromPartial = %v, want 0.5", loc.DeadFromPartial)
	}
	// 100 (fully) + 60 (60%) of 200 are from mostly-dead statics.
	if math.Abs(loc.MostlyDeadShare-0.8) > 1e-9 {
		t.Errorf("MostlyDeadShare = %v, want 0.8", loc.MostlyDeadShare)
	}
}

func TestComputeLocalityEmpty(t *testing.T) {
	loc := deadness.ComputeLocality(nil, nil)
	if loc.TotalDead != 0 || loc.DeadStatics != 0 {
		t.Errorf("empty locality = %+v", loc)
	}
	if len(loc.CoverageAt) != len(deadness.DefaultCoveragePoints) {
		t.Errorf("default points not applied")
	}
}

func TestKindString(t *testing.T) {
	if deadness.Live.String() != "live" || deadness.FirstLevel.String() != "first-level" ||
		deadness.Transitive.String() != "transitive" {
		t.Error("kind names wrong")
	}
	if !deadness.FirstLevel.Dead() || !deadness.Transitive.Dead() || deadness.Live.Dead() {
		t.Error("Dead() wrong")
	}
}
