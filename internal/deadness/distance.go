package deadness

import "sort"

// DistanceStats summarizes how far (in dynamic instructions) outcomes
// resolve after the producing instruction: the overwrite or read that
// proves a value dead or useful. Short distances mean the hardware learns
// outcomes while the producer's context is still warm — the property that
// makes commit-time predictor training timely.
type DistanceStats struct {
	Count int
	Mean  float64
	P50   int
	P90   int
	P99   int
	// WithinROB is the fraction of outcomes resolving within a 128-entry
	// reorder buffer's worth of instructions.
	WithinROB float64
	// Unresolved counts instances whose outcome never resolved inside the
	// trace (excluded from the distribution above).
	Unresolved int
}

// ResolveDistances computes the resolve-distance distribution over the
// analysis's candidates; deadOnly restricts it to oracle-dead instances.
func (a *Analysis) ResolveDistances(deadOnly bool) DistanceStats {
	const robSize = 128
	n := len(a.Candidate)
	var dists []int
	var st DistanceStats
	within := 0
	var sum float64
	for seq := 0; seq < n; seq++ {
		if !a.Candidate[seq] {
			continue
		}
		if deadOnly && !a.Kind[seq].Dead() {
			continue
		}
		r := int(a.Resolve[seq])
		if r >= n {
			st.Unresolved++
			continue
		}
		d := r - seq
		dists = append(dists, d)
		sum += float64(d)
		if d <= robSize {
			within++
		}
	}
	st.Count = len(dists)
	if st.Count == 0 {
		return st
	}
	sort.Ints(dists)
	st.Mean = sum / float64(st.Count)
	st.P50 = dists[st.Count/2]
	st.P90 = dists[st.Count*9/10]
	st.P99 = dists[st.Count*99/100]
	st.WithinROB = float64(within) / float64(st.Count)
	return st
}
