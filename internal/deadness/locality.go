package deadness

import (
	"sort"

	"repro/internal/trace"
)

// StaticStat aggregates the dynamic behaviour of one static instruction.
type StaticStat struct {
	PC   int
	Dyn  int // candidate dynamic instances
	Dead int // of which dead
}

// Ratio is the deadness ratio of the static instruction.
func (s StaticStat) Ratio() float64 {
	if s.Dyn == 0 {
		return 0
	}
	return float64(s.Dead) / float64(s.Dyn)
}

// StaticProfile groups candidates by static PC and returns the stats of
// every static instruction with at least one dead instance, sorted by
// descending dead count (ties broken by PC for determinism).
func (a *Analysis) StaticProfile(t *trace.Trace) []StaticStat {
	byPC := make(map[int32]*StaticStat)
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		for i := 0; i < c.Len(); i++ {
			seq := base + i
			if !a.Candidate[seq] {
				continue
			}
			pc := c.PC[i]
			st, ok := byPC[pc]
			if !ok {
				st = &StaticStat{PC: int(pc)}
				byPC[pc] = st
			}
			st.Dyn++
			if a.Kind[seq].Dead() {
				st.Dead++
			}
		}
	}
	out := make([]StaticStat, 0, len(byPC))
	for _, st := range byPC {
		if st.Dead > 0 {
			out = append(out, *st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dead != out[j].Dead {
			return out[i].Dead > out[j].Dead
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Locality summarizes claim 3 of the paper: most dynamic dead instances
// come from a small set of static instructions that are dead most of the
// time, and (claim 2) the majority of those static instructions also
// produce useful results.
type Locality struct {
	// DeadStatics is the number of static instructions with ≥1 dead
	// instance; TotalDead is the dynamic dead instance count.
	DeadStatics int
	TotalDead   int

	// CoverageAt[i] is the fraction of dynamic dead instances produced by
	// the top CoveragePoints[i] static instructions.
	CoveragePoints []int
	CoverageAt     []float64

	// PartiallyDeadStatics counts dead-producing static instructions that
	// also produce useful results; FullyDeadStatics are dead every time.
	PartiallyDeadStatics int
	FullyDeadStatics     int
	// DeadFromPartial is the fraction of dynamic dead instances that come
	// from partially dead static instructions.
	DeadFromPartial float64
	// MostlyDeadShare is the fraction of dynamic dead instances from
	// static instructions dead in more than half of their instances.
	MostlyDeadShare float64
}

// DefaultCoveragePoints are the top-N cutoffs reported by the locality
// experiment.
var DefaultCoveragePoints = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// ComputeLocality derives the locality summary from a static profile.
func ComputeLocality(profile []StaticStat, points []int) Locality {
	if points == nil {
		points = DefaultCoveragePoints
	}
	loc := Locality{
		DeadStatics:    len(profile),
		CoveragePoints: points,
		CoverageAt:     make([]float64, len(points)),
	}
	totalDead := 0
	fromPartial := 0
	fromMostlyDead := 0
	for _, st := range profile {
		totalDead += st.Dead
		if st.Dead == st.Dyn {
			loc.FullyDeadStatics++
		} else {
			loc.PartiallyDeadStatics++
			fromPartial += st.Dead
		}
		if st.Ratio() > 0.5 {
			fromMostlyDead += st.Dead
		}
	}
	loc.TotalDead = totalDead
	if totalDead == 0 {
		return loc
	}
	loc.DeadFromPartial = float64(fromPartial) / float64(totalDead)
	loc.MostlyDeadShare = float64(fromMostlyDead) / float64(totalDead)

	cum := 0
	pi := 0
	for i, st := range profile {
		cum += st.Dead
		for pi < len(points) && points[pi] == i+1 {
			loc.CoverageAt[pi] = float64(cum) / float64(totalDead)
			pi++
		}
	}
	for ; pi < len(points); pi++ {
		loc.CoverageAt[pi] = 1.0
	}
	return loc
}
