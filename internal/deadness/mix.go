package deadness

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Mix is the dynamic instruction-class distribution of a trace — the
// benchmark-characterization table architecture papers lead with. It both
// documents the synthetic suite's realism and normalizes the resource
// metrics of experiment E8 (e.g. dead loads against total loads).
type Mix struct {
	Total    int
	ALU      int // register-register and register-immediate compute
	MulDiv   int
	Loads    int
	Stores   int
	Branches int // conditional
	Jumps    int
	Other    int // NOP, OUT, HALT

	// TakenBranches counts taken conditional branches.
	TakenBranches int
}

// Fraction returns part/Total.
func (m Mix) Fraction(part int) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(part) / float64(m.Total)
}

// TakenRate is the fraction of conditional branches that were taken.
func (m Mix) TakenRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.TakenBranches) / float64(m.Branches)
}

// ComputeMix tallies the dynamic instruction classes of a trace.
func ComputeMix(t *trace.Trace) Mix {
	var m Mix
	m.Total = t.Len()
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		for i := 0; i < c.Len(); i++ {
			op := c.Op[i]
			switch {
			case op == isa.MUL || op == isa.DIVU || op == isa.REMU:
				m.MulDiv++
			case op.IsALUReg() || op.IsALUImm():
				m.ALU++
			case op.IsLoad():
				m.Loads++
			case op.IsStore():
				m.Stores++
			case op.IsCondBranch():
				m.Branches++
				if c.Taken[i] {
					m.TakenBranches++
				}
			case op.IsJump():
				m.Jumps++
			default:
				m.Other++
			}
		}
	}
	return m
}
