// Package deadness implements the oracle dead-instruction analysis at the
// heart of the study: given a linked dynamic trace, it decides for every
// result-producing dynamic instruction whether its result was ever useful.
//
// Definitions follow Butts & Sohi (ASPLOS 2002):
//
//   - A dynamic instruction instance is *dead* if the value it produces (a
//     register write or the bytes of a store) is never used by any useful
//     instruction.
//   - *First-level dead*: the result is never read at all — the register is
//     overwritten (or the trace ends) before any read; a store's bytes are
//     overwritten or never loaded.
//   - *Transitively dead*: the result is read, but only by instructions
//     that are themselves dead.
//
// Usefulness roots are instructions with architectural side effects beyond
// producing a value: control transfers (branches and jumps, which steer the
// PC), OUT (program output), and HALT. Control instructions are never
// classified dead, conservatively, even when a JAL link value goes unread.
package deadness

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// ErrUnlinked is returned by Analyze when the trace has not been linked.
// Callers holding a raw (unlinked) trace should use LinkAndAnalyze, which
// links and analyzes in a single pass instead of duplicating the walk.
var ErrUnlinked = errors.New("deadness: trace is not linked (use LinkAndAnalyze)")

// Kind classifies one dynamic instruction instance.
type Kind uint8

const (
	// Live means the instruction's effect reached a usefulness root (or
	// the instruction produces no predictable result, e.g. a branch).
	Live Kind = iota
	// FirstLevel means the result was never read before being overwritten
	// or the trace ending.
	FirstLevel
	// Transitive means the result was read only by dead instructions.
	Transitive
)

func (k Kind) String() string {
	switch k {
	case Live:
		return "live"
	case FirstLevel:
		return "first-level"
	case Transitive:
		return "transitive"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dead reports whether the kind is one of the dead classes.
func (k Kind) Dead() bool { return k != Live }

// Analysis holds per-dynamic-instruction oracle results. Index every slice
// by the dynamic sequence number.
type Analysis struct {
	// Kind classifies each record.
	Kind []Kind
	// Candidate marks records whose deadness is defined at all: register
	// writers that are not control instructions, plus stores.
	Candidate []bool
	// EverRead marks records whose result was read by at least one later
	// instruction (dead or alive).
	EverRead []bool
	// Resolve is the sequence number at which hardware could know the
	// outcome: the overwriting write (dead) or the first read (read).
	// Records resolved only by the end of the trace get the trace length.
	Resolve []int32

	// candidates is the number of true entries in Candidate, counted once
	// during classification.
	candidates int
}

// Candidates counts the records with defined deadness.
func (a *Analysis) Candidates() int { return a.candidates }

// isRoot reports usefulness roots: instructions whose execution matters
// regardless of any produced value.
func isRoot(op isa.Op) bool {
	return op.IsControl() || op == isa.OUT || op == isa.HALT
}

func newAnalysis(n int) *Analysis {
	a := &Analysis{
		Kind:      make([]Kind, n),
		Candidate: make([]bool, n),
		EverRead:  make([]bool, n),
		Resolve:   make([]int32, n),
	}
	for i := range a.Resolve {
		a.Resolve[i] = int32(n)
	}
	return a
}

// markRead records that reader consumed producer's result.
func (a *Analysis) markRead(producer, reader int32) {
	if producer != trace.NoProducer {
		a.EverRead[producer] = true
		if a.Resolve[producer] == int32(len(a.Resolve)) {
			a.Resolve[producer] = reader
		}
	}
}

// Analyze runs the oracle over a linked trace (the legacy two-pass path:
// Link first, then a second full walk for the forward deadness facts). It
// returns ErrUnlinked rather than silently re-deriving the links; callers
// with a raw trace should use LinkAndAnalyze.
func Analyze(t *trace.Trace) (*Analysis, error) {
	if !t.Linked {
		return nil, ErrUnlinked
	}
	n := t.Len()
	a := newAnalysis(n)

	// Forward pass: candidates, everRead, and resolve points.
	var lastRegWriter [isa.NumRegs]int32
	for i := range lastRegWriter {
		lastRegWriter[i] = trace.NoProducer
	}
	memWriter := trace.NewWriterMap()
	defer memWriter.Reset()
	var prevBuf []int32
	for seq := range t.Recs {
		r := &t.Recs[seq]
		a.markRead(r.Src1, int32(seq))
		a.markRead(r.Src2, int32(seq))
		for _, s := range r.MemProducers() {
			a.markRead(s, int32(seq))
		}
		if r.Op.IsStore() {
			a.Candidate[seq] = true
			prevBuf = memWriter.Overwrite(r.Addr, int(r.Width), int32(seq), prevBuf[:0])
			for _, prev := range prevBuf {
				if a.Resolve[prev] == int32(n) {
					a.Resolve[prev] = int32(seq) // overwrite resolves the old store
				}
			}
		}
		if r.HasResult() {
			if !r.Op.IsControl() {
				a.Candidate[seq] = true
			}
			if prev := lastRegWriter[r.Rd]; prev != trace.NoProducer && a.Resolve[prev] == int32(n) {
				a.Resolve[prev] = int32(seq) // overwrite resolves the old value
			}
			lastRegWriter[r.Rd] = int32(seq)
		}
	}
	return a.finish(t), nil
}

// LinkAndAnalyze links the trace and runs the oracle's forward pass in one
// fused walk over the records: the def-use links and the deadness facts
// (candidates, everRead, resolve points) maintain identical last-writer
// state, so deriving both at once halves the substrate's passes. The
// record producer fields are (re)written exactly as trace.Link would.
func LinkAndAnalyze(t *trace.Trace) (*Analysis, error) {
	n := t.Len()
	a := newAnalysis(n)

	var regWriter [isa.NumRegs]int32
	for i := range regWriter {
		regWriter[i] = trace.NoProducer
	}
	memWriter := trace.NewWriterMap()
	defer memWriter.Reset()
	var prevBuf []int32
	for seq := range t.Recs {
		r := &t.Recs[seq]
		r.Src1, r.Src2 = trace.NoProducer, trace.NoProducer
		r.NumMemSrcs = 0
		if r.Op.ReadsRs1() && r.Rs1 != isa.RZero {
			r.Src1 = regWriter[r.Rs1]
			a.markRead(r.Src1, int32(seq))
		}
		if r.Op.ReadsRs2() && r.Rs2 != isa.RZero {
			r.Src2 = regWriter[r.Rs2]
			a.markRead(r.Src2, int32(seq))
		}
		if r.Op.IsMem() {
			if r.Width == 0 || int(r.Width) != r.Op.MemWidth() {
				return nil, fmt.Errorf("deadness: seq %d: %v has width %d, want %d",
					seq, r.Op, r.Width, r.Op.MemWidth())
			}
		}
		if r.Op.IsLoad() {
			memWriter.LoadProducers(r)
			for _, s := range r.MemProducers() {
				a.markRead(s, int32(seq))
			}
		}
		if r.Op.IsStore() {
			a.Candidate[seq] = true
			prevBuf = memWriter.Overwrite(r.Addr, int(r.Width), int32(seq), prevBuf[:0])
			for _, prev := range prevBuf {
				if a.Resolve[prev] == int32(n) {
					a.Resolve[prev] = int32(seq) // overwrite resolves the old store
				}
			}
		}
		if r.HasResult() {
			if !r.Op.IsControl() {
				a.Candidate[seq] = true
			}
			if prev := regWriter[r.Rd]; prev != trace.NoProducer && a.Resolve[prev] == int32(n) {
				a.Resolve[prev] = int32(seq) // overwrite resolves the old value
			}
			regWriter[r.Rd] = int32(seq)
		}
	}
	t.Linked = true
	return a.finish(t), nil
}

// finish runs the shared tail of both analysis paths over the forward
// facts: the reverse usefulness pass, the classification, and the
// candidate count.
func (a *Analysis) finish(t *trace.Trace) *Analysis {
	n := t.Len()
	// Reverse pass: propagate usefulness from roots to producers. When the
	// trace was truncated by an instruction budget rather than ending at
	// HALT, a value that never resolved (neither read nor overwritten)
	// might still be used beyond the horizon; hardware could never prove
	// it dead, so the oracle conservatively treats unresolved candidates
	// as useful roots.
	truncated := n > 0 && t.Recs[n-1].Op != isa.HALT
	useful := make([]bool, n)
	mark := func(producer int32) {
		if producer != trace.NoProducer {
			useful[producer] = true
		}
	}
	for seq := n - 1; seq >= 0; seq-- {
		r := &t.Recs[seq]
		unresolved := truncated && a.Candidate[seq] && a.Resolve[seq] == int32(n)
		if !useful[seq] && !isRoot(r.Op) && !unresolved {
			continue
		}
		useful[seq] = true
		mark(r.Src1)
		mark(r.Src2)
		for _, s := range r.MemProducers() {
			mark(s)
		}
	}

	// Classification.
	for seq := range t.Recs {
		switch {
		case !a.Candidate[seq], useful[seq]:
			a.Kind[seq] = Live
		case a.EverRead[seq]:
			a.Kind[seq] = Transitive
		default:
			a.Kind[seq] = FirstLevel
		}
		if a.Candidate[seq] {
			a.candidates++
		}
	}
	return a
}

// Summary aggregates an analysis over a whole trace.
type Summary struct {
	Total      int // dynamic instructions
	Candidates int // result-producing instructions
	Dead       int
	FirstLevel int
	Transitive int

	DeadALU    int // dead register-writing ALU results
	DeadLoads  int
	DeadStores int

	// ByProv attributes dynamic candidates and dead instances to the
	// compiler transformation that emitted the static instruction.
	ByProv [program.NumProvenances]ProvCount
}

// ProvCount is the per-provenance dynamic instance count.
type ProvCount struct {
	Dyn  int // candidate instances
	Dead int
}

// DeadFraction is dead candidates over all dynamic instructions, the
// paper's headline "3 to 16%" metric.
func (s Summary) DeadFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Dead) / float64(s.Total)
}

// Summarize aggregates the analysis. prog supplies provenance; it may be
// nil, in which case everything is attributed to ProvNormal.
func (a *Analysis) Summarize(t *trace.Trace, prog *program.Program) Summary {
	var s Summary
	s.Total = t.Len()
	for seq := range t.Recs {
		if !a.Candidate[seq] {
			continue
		}
		r := &t.Recs[seq]
		s.Candidates++
		prov := program.ProvNormal
		if prog != nil {
			prov = prog.ProvenanceOf(int(r.PC))
		}
		s.ByProv[prov].Dyn++
		if !a.Kind[seq].Dead() {
			continue
		}
		s.Dead++
		s.ByProv[prov].Dead++
		switch {
		case a.Kind[seq] == FirstLevel:
			s.FirstLevel++
		default:
			s.Transitive++
		}
		switch {
		case r.Op.IsLoad():
			s.DeadLoads++
		case r.Op.IsStore():
			s.DeadStores++
		default:
			s.DeadALU++
		}
	}
	return s
}
