// Package deadness implements the oracle dead-instruction analysis at the
// heart of the study: given a linked dynamic trace, it decides for every
// result-producing dynamic instruction whether its result was ever useful.
//
// Definitions follow Butts & Sohi (ASPLOS 2002):
//
//   - A dynamic instruction instance is *dead* if the value it produces (a
//     register write or the bytes of a store) is never used by any useful
//     instruction.
//   - *First-level dead*: the result is never read at all — the register is
//     overwritten (or the trace ends) before any read; a store's bytes are
//     overwritten or never loaded.
//   - *Transitively dead*: the result is read, but only by instructions
//     that are themselves dead.
//
// Usefulness roots are instructions with architectural side effects beyond
// producing a value: control transfers (branches and jumps, which steer the
// PC), OUT (program output), and HALT. Control instructions are never
// classified dead, conservatively, even when a JAL link value goes unread.
package deadness

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// ErrUnlinked is returned by Analyze when the trace has not been linked.
// Callers holding a raw (unlinked) trace should use LinkAndAnalyze, which
// links and analyzes in a single pass instead of duplicating the walk.
var ErrUnlinked = errors.New("deadness: trace is not linked (use LinkAndAnalyze)")

// Kind classifies one dynamic instruction instance.
type Kind uint8

const (
	// Live means the instruction's effect reached a usefulness root (or
	// the instruction produces no predictable result, e.g. a branch).
	Live Kind = iota
	// FirstLevel means the result was never read before being overwritten
	// or the trace ending.
	FirstLevel
	// Transitive means the result was read only by dead instructions.
	Transitive
)

func (k Kind) String() string {
	switch k {
	case Live:
		return "live"
	case FirstLevel:
		return "first-level"
	case Transitive:
		return "transitive"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dead reports whether the kind is one of the dead classes.
func (k Kind) Dead() bool { return k != Live }

// IneffKind classifies one dynamic instruction instance along the
// *ineffectuality* axis, which generalizes deadness: a dead instruction's
// result is never useful, while an ineffectual one computes something the
// machine state already held. The two taxonomies are deliberately
// orthogonal columns — Kind is the paper's oracle, pinned bit-identical
// across refactors, and IneffKind is the generalized fact layered beside
// it (a record can be both, e.g. a dead silent store).
type IneffKind uint8

const (
	// IneffNone means the record is not provably ineffectual.
	IneffNone IneffKind = iota
	// SilentStore means the store wrote the value its bytes already held.
	SilentStore
	// TrivialOp means the result provably equals one of the instruction's
	// register source values (x+0, x|0, x&x, mov-self, mul-by-1/0).
	TrivialOp
)

func (k IneffKind) String() string {
	switch k {
	case IneffNone:
		return "none"
	case SilentStore:
		return "silent-store"
	case TrivialOp:
		return "trivial-op"
	}
	return fmt.Sprintf("ineff(%d)", uint8(k))
}

// Ineffectual reports whether the kind is one of the ineffectual classes.
func (k IneffKind) Ineffectual() bool { return k != IneffNone }

// classifyIneff is the one policy that turns the emulator's raw
// value-equality hints into an ineffectuality class. All three forward
// walks (Stream.Chunk, Analyze, the sharded shard walk) call exactly this
// function per record, so the three paths cannot disagree: the input is
// purely record-local (op flags, destination, hint bits), never
// cross-record state.
func classifyIneff(f isa.OpFlags, rd isa.Reg, h uint8) IneffKind {
	if h == 0 {
		return IneffNone
	}
	if f&isa.FlagStore != 0 {
		if h&trace.HintSilentStore != 0 {
			return SilentStore
		}
		return IneffNone
	}
	if f&(isa.FlagHasDest|isa.FlagControl|isa.FlagLoad) != isa.FlagHasDest || rd == isa.RZero {
		return IneffNone
	}
	eq := uint8(0)
	if f&isa.FlagReadsRs1 != 0 {
		eq |= trace.HintResultEqRs1
	}
	if f&isa.FlagReadsRs2 != 0 {
		eq |= trace.HintResultEqRs2
	}
	if h&eq != 0 {
		return TrivialOp
	}
	return IneffNone
}

// unresolved is the internal Resolve sentinel used while the forward pass
// runs: a streaming analysis cannot pre-fill "trace length" because the
// length is unknown until the last chunk arrives. finish rewrites every
// surviving sentinel to int32(n), so exported Resolve values are exactly
// the documented ones.
//
// The sentinel is zero so freshly cleared (or freshly allocated) fact
// arrays are already in the initial state. Zero can never collide with a
// real resolve point: a producer is resolved by a strictly later record,
// so every recorded resolve sequence is at least 1.
const unresolved int32 = 0

// Analysis holds per-dynamic-instruction oracle results. Index every slice
// by the dynamic sequence number.
type Analysis struct {
	// Kind classifies each record.
	Kind []Kind
	// Candidate marks records whose deadness is defined at all: register
	// writers that are not control instructions, plus stores.
	Candidate []bool
	// EverRead marks records whose result was read by at least one later
	// instruction (dead or alive).
	EverRead []bool
	// Resolve is the sequence number at which hardware could know the
	// outcome: the overwriting write (dead) or the first read (read).
	// Records resolved only by the end of the trace get the trace length.
	Resolve []int32
	// Ineff classifies each record along the ineffectuality axis
	// (silent stores, trivial ops), orthogonal to Kind.
	Ineff []IneffKind

	// candidates is the number of true entries in Candidate, counted once
	// during classification.
	candidates int
}

// Candidates counts the records with defined deadness.
func (a *Analysis) Candidates() int { return a.candidates }

// SizeBytes estimates the memory the analysis retains (its per-record
// fact arrays), for artifact-cache byte accounting.
func (a *Analysis) SizeBytes() int64 {
	return int64(cap(a.Kind) + cap(a.Candidate) + cap(a.EverRead) + cap(a.Resolve)*4 + cap(a.Ineff))
}

// Restore reconstructs a finished Analysis from its serialized fact
// arrays (a persisted profile artifact) for a trace of n records. The
// arrays are untrusted input, so the post-finish invariants are checked:
// equal lengths, valid kinds, non-candidates classified Live, and every
// resolve point in [1, n] (the sentinel never survives finish). The
// candidate count is recomputed rather than trusted.
func Restore(n int, kind []Kind, candidate, everRead []bool, resolve []int32, ineff []IneffKind) (*Analysis, error) {
	if len(kind) != n || len(candidate) != n || len(everRead) != n || len(resolve) != n || len(ineff) != n {
		return nil, fmt.Errorf("deadness: restore: array lengths %d/%d/%d/%d/%d, want %d",
			len(kind), len(candidate), len(everRead), len(resolve), len(ineff), n)
	}
	candidates := 0
	for i := 0; i < n; i++ {
		if kind[i] > Transitive {
			return nil, fmt.Errorf("deadness: restore: record %d: invalid kind %d", i, uint8(kind[i]))
		}
		if ineff[i] > TrivialOp {
			return nil, fmt.Errorf("deadness: restore: record %d: invalid ineff kind %d", i, uint8(ineff[i]))
		}
		if !candidate[i] && kind[i] != Live {
			return nil, fmt.Errorf("deadness: restore: record %d: non-candidate classified %v", i, kind[i])
		}
		if !candidate[i] && ineff[i] != IneffNone {
			// Silent stores are stores and trivial ops are non-control
			// register writers; both are candidates by construction.
			return nil, fmt.Errorf("deadness: restore: record %d: non-candidate classified %v", i, ineff[i])
		}
		if resolve[i] < 1 || resolve[i] > int32(n) {
			return nil, fmt.Errorf("deadness: restore: record %d: resolve point %d out of range", i, resolve[i])
		}
		if candidate[i] {
			candidates++
		}
	}
	return &Analysis{
		Kind:       kind,
		Candidate:  candidate,
		EverRead:   everRead,
		Resolve:    resolve,
		Ineff:      ineff,
		candidates: candidates,
	}, nil
}

// isRoot reports usefulness roots: instructions whose execution matters
// regardless of any produced value.
func isRoot(op isa.Op) bool {
	return op.IsControl() || op == isa.OUT || op == isa.HALT
}

// truncated reports whether the trace was cut off by an instruction
// budget rather than ending at HALT. Both the serial and the sharded
// reverse passes key the conservative unresolved-candidate root rule on
// this one predicate, so the two paths cannot disagree on it — including
// when the cut lands exactly on a chunk boundary.
func truncated(t *trace.Trace) bool {
	n := t.Len()
	return n > 0 && t.OpAt(n-1) != isa.HALT
}

func newAnalysis(n int) *Analysis {
	// The zero value of every column is the initial state: Live,
	// non-candidate, unread, unresolved.
	return &Analysis{
		Kind:      make([]Kind, n),
		Candidate: make([]bool, n),
		EverRead:  make([]bool, n),
		Resolve:   make([]int32, n),
		Ineff:     make([]IneffKind, n),
	}
}

// markRead records that reader consumed producer's result.
func (a *Analysis) markRead(producer, reader int32) {
	if producer != trace.NoProducer {
		a.EverRead[producer] = true
		if a.Resolve[producer] == unresolved {
			a.Resolve[producer] = reader
		}
	}
}

// Stream is the incremental fused link+analyze pass: feed it completed
// trace chunks in order (Chunk), then Finish. The forward deadness facts
// and the producer links are derived exactly as LinkAndAnalyze would —
// the stream just lets the analysis run one chunk behind the emulator
// (see emu.CollectAnalyzed) instead of after it.
type Stream struct {
	a         *Analysis
	regWriter [isa.NumRegs]int32
	memWriter *trace.WriterMap
	prevBuf   []int32
	n         int // records consumed so far
}

// NewStream starts a fused analysis pass. hint pre-sizes the fact arrays
// (pass the emulation budget or trace length; 0 is fine).
func NewStream(hint int) *Stream {
	s := &Stream{
		a: &Analysis{
			Kind:      make([]Kind, 0, hint),
			Candidate: make([]bool, 0, hint),
			EverRead:  make([]bool, 0, hint),
			Resolve:   make([]int32, 0, hint),
			Ineff:     make([]IneffKind, 0, hint),
		},
		memWriter: trace.NewWriterMap(),
	}
	for i := range s.regWriter {
		s.regWriter[i] = trace.NoProducer
	}
	return s
}

// Chunk links and analyzes the next chunk of the trace. Chunks must
// arrive in trace order; the chunk's Src1/Src2 columns and load producer
// tables are (re)written exactly as trace.Link would write them.
func (s *Stream) Chunk(c *trace.Chunk) error {
	a := s.a
	base := s.n
	cn := c.Len()
	end := base + cn
	if cap(a.Resolve) < end {
		// Grow every fact column together, at least doubling and by no
		// less than four chunks: a streaming pass (final length unknown)
		// then reallocates O(log n) times with little discarded churn,
		// which keeps the GC quiet enough that the trace chunk pool
		// survives between collections. An exact NewStream hint never
		// takes this branch.
		newCap := max(end, 2*cap(a.Resolve), 4*trace.ChunkSize)
		a.Kind = append(make([]Kind, 0, newCap), a.Kind...)
		a.Candidate = append(make([]bool, 0, newCap), a.Candidate...)
		a.EverRead = append(make([]bool, 0, newCap), a.EverRead...)
		a.Resolve = append(make([]int32, 0, newCap), a.Resolve...)
		a.Ineff = append(make([]IneffKind, 0, newCap), a.Ineff...)
	}
	a.Kind = a.Kind[:end]
	a.Candidate = a.Candidate[:end]
	a.EverRead = a.EverRead[:end]
	a.Resolve = a.Resolve[:end]
	a.Ineff = a.Ineff[:end]
	// The zero value of every column is the initial state (Live,
	// non-candidate, unread, unresolved), so bulk clears replace the
	// old element-wise init loop.
	clear(a.Kind[base:end])
	clear(a.Candidate[base:end])
	clear(a.EverRead[base:end])
	clear(a.Resolve[base:end])
	clear(a.Ineff[base:end])

	c.BeginLink()
	// Slice every column to the chunk length once so the loop body indexes
	// bounds-check-free, and hoist the fact arrays out of the Analysis —
	// with markRead inlined this keeps the per-record path branch + load
	// only (one Flags table hit replaces the predicate range chains).
	op, rd, rs1, rs2 := c.Op[:cn], c.Rd[:cn], c.Rs1[:cn], c.Rs2[:cn]
	memIdx := c.MemIdx[:cn]
	src1, src2 := c.Src1[:cn], c.Src2[:cn]
	hints := c.Ineff[:cn]
	resolve, everRead, cand := a.Resolve, a.EverRead, a.Candidate
	ineff := a.Ineff
	for i := 0; i < cn; i++ {
		seq := int32(base + i)
		f := op[i].Flags()
		if h := hints[i]; h != 0 {
			ineff[seq] = classifyIneff(f, rd[i], h)
		}
		s1, s2 := trace.NoProducer, trace.NoProducer
		if f&isa.FlagReadsRs1 != 0 && rs1[i] != isa.RZero {
			if s1 = s.regWriter[rs1[i]]; s1 != trace.NoProducer {
				everRead[s1] = true
				if resolve[s1] == unresolved {
					resolve[s1] = seq
				}
			}
		}
		if f&isa.FlagReadsRs2 != 0 && rs2[i] != isa.RZero {
			if s2 = s.regWriter[rs2[i]]; s2 != trace.NoProducer {
				everRead[s2] = true
				if resolve[s2] == unresolved {
					resolve[s2] = seq
				}
			}
		}
		src1[i], src2[i] = s1, s2
		if mi := memIdx[i]; mi >= 0 {
			o := op[i]
			w := c.Width[mi]
			if w == 0 || w != o.MemWidthFast() {
				return fmt.Errorf("deadness: seq %d: %v has width %d, want %d",
					seq, o, w, o.MemWidth())
			}
			if f&isa.FlagLoad != 0 {
				for _, p := range c.LinkLoadProducers(i, s.memWriter) {
					if p != trace.NoProducer {
						everRead[p] = true
						if resolve[p] == unresolved {
							resolve[p] = seq
						}
					}
				}
			} else {
				cand[seq] = true
				s.prevBuf = s.memWriter.Overwrite(c.Addr[mi], int(w), seq, s.prevBuf[:0])
				for _, prev := range s.prevBuf {
					if resolve[prev] == unresolved {
						resolve[prev] = seq // overwrite resolves the old store
					}
				}
			}
		}
		if f&isa.FlagHasDest != 0 && rd[i] != isa.RZero {
			if f&isa.FlagControl == 0 {
				cand[seq] = true
			}
			if prev := s.regWriter[rd[i]]; prev != trace.NoProducer && resolve[prev] == unresolved {
				resolve[prev] = seq // overwrite resolves the old value
			}
			s.regWriter[rd[i]] = seq
		}
	}
	s.n += cn
	return nil
}

// Finish completes the pass over the fully collected trace (whose chunks
// must all have been fed through Chunk): it releases the writer map,
// marks the trace linked, and runs the reverse usefulness pass and
// classification. The stream must not be used afterwards.
func (s *Stream) Finish(t *trace.Trace) *Analysis {
	s.Close()
	t.Linked = true
	return s.a.finish(t)
}

// Close releases the stream's writer-map pages back to the shared pool.
// It is idempotent and safe after an aborted pass; Finish calls it.
func (s *Stream) Close() {
	if s.memWriter != nil {
		s.memWriter.Reset()
		s.memWriter = nil
	}
}

// Analyze runs the oracle over a linked trace (the legacy two-pass path:
// Link first, then a second full walk for the forward deadness facts). It
// returns ErrUnlinked rather than silently re-deriving the links; callers
// with a raw trace should use LinkAndAnalyze.
func Analyze(t *trace.Trace) (*Analysis, error) {
	if !t.Linked {
		return nil, ErrUnlinked
	}
	n := t.Len()
	a := newAnalysis(n)

	// Forward pass: candidates, everRead, and resolve points.
	var lastRegWriter [isa.NumRegs]int32
	for i := range lastRegWriter {
		lastRegWriter[i] = trace.NoProducer
	}
	memWriter := trace.NewWriterMap()
	defer memWriter.Reset()
	var prevBuf []int32
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		for i := 0; i < c.Len(); i++ {
			seq := int32(base + i)
			a.markRead(c.Src1[i], seq)
			a.markRead(c.Src2[i], seq)
			for _, p := range c.MemProducers(i) {
				a.markRead(p, seq)
			}
			o := c.Op[i]
			if h := c.Ineff[i]; h != 0 {
				a.Ineff[seq] = classifyIneff(o.Flags(), c.Rd[i], h)
			}
			if o.IsStore() {
				a.Candidate[seq] = true
				mi := c.MemIdx[i]
				prevBuf = memWriter.Overwrite(c.Addr[mi], int(c.Width[mi]), seq, prevBuf[:0])
				for _, prev := range prevBuf {
					if a.Resolve[prev] == unresolved {
						a.Resolve[prev] = seq // overwrite resolves the old store
					}
				}
			}
			if o.HasDest() && c.Rd[i] != isa.RZero {
				if !o.IsControl() {
					a.Candidate[seq] = true
				}
				if prev := lastRegWriter[c.Rd[i]]; prev != trace.NoProducer && a.Resolve[prev] == unresolved {
					a.Resolve[prev] = seq // overwrite resolves the old value
				}
				lastRegWriter[c.Rd[i]] = seq
			}
		}
	}
	return a.finish(t), nil
}

// LinkAndAnalyze links the trace and runs the oracle's forward pass in one
// fused walk over the records: the def-use links and the deadness facts
// (candidates, everRead, resolve points) maintain identical last-writer
// state, so deriving both at once halves the substrate's passes. The
// chunk producer columns are (re)written exactly as trace.Link would.
func LinkAndAnalyze(t *trace.Trace) (*Analysis, error) {
	s := NewStream(t.Len())
	for ci := 0; ci < t.NumChunks(); ci++ {
		if err := s.Chunk(t.Chunk(ci)); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s.Finish(t), nil
}

// finish runs the shared tail of both analysis paths over the forward
// facts: the reverse usefulness pass, the classification, and the
// candidate count. It also rewrites the internal unresolved sentinel to
// the documented "trace length" value.
func (a *Analysis) finish(t *trace.Trace) *Analysis {
	n := t.Len()
	// Reverse pass: propagate usefulness from roots to producers. When the
	// trace was truncated by an instruction budget rather than ending at
	// HALT, a value that never resolved (neither read nor overwritten)
	// might still be used beyond the horizon; hardware could never prove
	// it dead, so the oracle conservatively treats unresolved candidates
	// as useful roots.
	truncated := truncated(t)
	useful := make([]bool, n)
	resolve, cand := a.Resolve, a.Candidate
	kind, everRead := a.Kind, a.EverRead
	candidates := 0
	// Classification fuses into the reverse pass: by the time the walk
	// reaches seq, every record that could mark it useful (all are later
	// in the trace) has been visited, so useful[seq] is final and the
	// record can be classified, counted, and sentinel-fixed in place.
	for ci := t.NumChunks() - 1; ci >= 0; ci-- {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		cn := c.Len()
		op, src1, src2, memIdx := c.Op[:cn], c.Src1[:cn], c.Src2[:cn], c.MemIdx[:cn]
		for i := cn - 1; i >= 0; i-- {
			seq := base + i
			isCand := cand[seq]
			if isCand {
				candidates++
			}
			u := useful[seq]
			if !u && op[i].Flags()&isa.FlagRoot == 0 {
				// Unresolved-candidate check only on the cold path: most
				// records are neither useful yet nor roots.
				if !truncated || !isCand || resolve[seq] != unresolved {
					if resolve[seq] == unresolved {
						resolve[seq] = int32(n)
					}
					switch {
					case !isCand: // u is known false here
						kind[seq] = Live
					case everRead[seq]:
						kind[seq] = Transitive
					default:
						kind[seq] = FirstLevel
					}
					continue
				}
			}
			if resolve[seq] == unresolved {
				resolve[seq] = int32(n)
			}
			kind[seq] = Live
			useful[seq] = true
			if p := src1[i]; p != trace.NoProducer {
				useful[p] = true
			}
			if p := src2[i]; p != trace.NoProducer {
				useful[p] = true
			}
			if memIdx[i] >= 0 {
				for _, p := range c.MemProducers(i) {
					useful[p] = true
				}
			}
		}
	}
	a.candidates = candidates
	return a
}

// Summary aggregates an analysis over a whole trace.
type Summary struct {
	Total      int // dynamic instructions
	Candidates int // result-producing instructions
	Dead       int
	FirstLevel int
	Transitive int

	DeadALU    int // dead register-writing ALU results
	DeadLoads  int
	DeadStores int

	// Ineffectuality classes, orthogonal to the dead counts above: a
	// record can be both (e.g. a dead silent store), so these do not sum
	// with Dead.
	SilentStores int // stores that rewrote the bytes already in memory
	TrivialOps   int // results provably equal to a source value
	// Stores counts all dynamic stores, the denominator for the
	// silent-store rate.
	Stores int

	// ByProv attributes dynamic candidates and dead instances to the
	// compiler transformation that emitted the static instruction.
	ByProv [program.NumProvenances]ProvCount
}

// ProvCount is the per-provenance dynamic instance count.
type ProvCount struct {
	Dyn  int // candidate instances
	Dead int
	// Silent and Trivial are the provenance's ineffectual instances.
	Silent  int
	Trivial int
}

// DeadFraction is dead candidates over all dynamic instructions, the
// paper's headline "3 to 16%" metric.
func (s Summary) DeadFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Dead) / float64(s.Total)
}

// IneffFraction is ineffectual instances (silent stores plus trivial
// ops) over all dynamic instructions — the generalized counterpart of
// DeadFraction.
func (s Summary) IneffFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.SilentStores+s.TrivialOps) / float64(s.Total)
}

// Summarize aggregates the analysis. prog supplies provenance; it may be
// nil, in which case everything is attributed to ProvNormal.
func (a *Analysis) Summarize(t *trace.Trace, prog *program.Program) Summary {
	var s Summary
	s.Total = t.Len()
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		for i := 0; i < c.Len(); i++ {
			seq := base + i
			if !a.Candidate[seq] {
				continue
			}
			s.Candidates++
			if c.Op[i].IsStore() {
				s.Stores++
			}
			prov := program.ProvNormal
			if prog != nil {
				prov = prog.ProvenanceOf(int(c.PC[i]))
			}
			s.ByProv[prov].Dyn++
			switch a.Ineff[seq] {
			case SilentStore:
				s.SilentStores++
				s.ByProv[prov].Silent++
			case TrivialOp:
				s.TrivialOps++
				s.ByProv[prov].Trivial++
			}
			if !a.Kind[seq].Dead() {
				continue
			}
			s.Dead++
			s.ByProv[prov].Dead++
			switch {
			case a.Kind[seq] == FirstLevel:
				s.FirstLevel++
			default:
				s.Transitive++
			}
			switch {
			case c.Op[i].IsLoad():
				s.DeadLoads++
			case c.Op[i].IsStore():
				s.DeadStores++
			default:
				s.DeadALU++
			}
		}
	}
	return s
}
