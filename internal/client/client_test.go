package client

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/faults"
)

// fakeDaemon speaks the daemon's artifact wire protocol over an
// in-memory map: PUT bodies are unframed and verified like the real
// server, GETs re-frame the stored payload.
type fakeDaemon struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int
}

func newFakeDaemon() *fakeDaemon { return &fakeDaemon{entries: make(map[string][]byte)} }

func (d *fakeDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/v1/artifact/") {
		http.NotFound(w, r)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	d.mu.Lock()
	defer d.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		d.gets++
		payload, ok := d.entries[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(artifact.Frame(payload))
	case http.MethodPut:
		d.puts++
		framed, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload, err := artifact.Unframe(framed)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		d.entries[key] = append([]byte(nil), payload...)
		w.WriteHeader(http.StatusCreated)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func TestNewValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:7333", "ftp://x", "http://"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted an invalid URL", bad)
		}
	}
	c, err := New("http://127.0.0.1:7333/")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://127.0.0.1:7333" {
		t.Errorf("base = %q, want trailing slash trimmed", c.BaseURL())
	}
}

func TestFetchStoreRoundTrip(t *testing.T) {
	d := newFakeDaemon()
	srv := httptest.NewServer(d)
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	k := artifact.Key{Kind: "profile", Digest: "abc123"}

	if _, found, err := c.Fetch(k); err != nil || found {
		t.Fatalf("cold fetch: found=%v err=%v, want clean miss", found, err)
	}
	payload := []byte("columnar profile bytes")
	if err := c.Store(k, payload); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.Fetch(k)
	if err != nil || !found {
		t.Fatalf("warm fetch: found=%v err=%v", found, err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip: %q != %q", got, payload)
	}
}

func TestFetchRejectsCorruptFrame(t *testing.T) {
	// A daemon that returns a frame with one payload byte flipped after
	// framing: the CRC no longer matches and Fetch must error, not return
	// mangled bytes.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		framed := artifact.Frame([]byte("intact payload"))
		framed[len(framed)-1] ^= 0x01
		w.Write(framed)
	}))
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Fetch(artifact.Key{Kind: "profile", Digest: "x"}); err == nil {
		t.Fatal("corrupt frame fetched without error")
	}
}

// TestCorruptFetchFallsBackToRebuild is the satellite contract: a
// Corrupt rule at client.fetch mangles the response in flight, frame
// verification rejects it, and the store rebuilds locally — counted as a
// remote failure, never served as a wrong answer.
func TestCorruptFetchFallsBackToRebuild(t *testing.T) {
	d := newFakeDaemon()
	srv := httptest.NewServer(d)
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	codec := artifact.JSONCodec[string]{Size: 8}
	k := artifact.Key{Kind: "run", Digest: artifact.Digest("spec")}

	// Seed the daemon with the intact artifact.
	seed, err := encodeVia(codec, "the value")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(k, seed); err != nil {
		t.Fatal(err)
	}

	in := faults.NewInjector(7).Arm(SiteFetch, faults.Rule{Kind: faults.Corrupt, Rate: 1})
	faults.Set(in)
	defer faults.Set(nil)

	s := artifact.New(0)
	s.RegisterCodec("run", codec)
	s.SetRemote(c)
	rebuilds := 0
	v, release, err := artifact.Get(s, k, func() (string, int64, error) {
		rebuilds++
		return "the value", 8, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if v != "the value" || rebuilds != 1 {
		t.Fatalf("degraded get: v=%q rebuilds=%d, want intact value from 1 local rebuild", v, rebuilds)
	}
	ks := s.Stats().Kinds["run"]
	if ks.RemoteFailures == 0 {
		t.Errorf("remote_failures = 0, want the corrupt fetch counted")
	}
	if in.Fired(SiteFetch) == 0 {
		t.Error("corruption rule never fired; test is vacuous")
	}

	// Disarmed, the same store setup serves the remote entry.
	faults.Set(nil)
	s2 := artifact.New(0)
	s2.RegisterCodec("run", codec)
	s2.SetRemote(c)
	v2, release2, err := artifact.Get(s2, k, func() (string, int64, error) {
		t.Error("rebuilt despite intact remote entry")
		return "", 8, nil
	})
	if err != nil || v2 != "the value" {
		t.Fatalf("clean fetch: v=%q err=%v", v2, err)
	}
	release2()
}

func TestStoreSurfacesServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	k := artifact.Key{Kind: "run", Digest: "x"}
	if err := c.Store(k, []byte("p")); err == nil {
		t.Error("500 on store went unreported")
	}
	if _, _, err := c.Fetch(k); err == nil {
		t.Error("500 on fetch went unreported")
	}
}

// encodeVia runs a codec to bytes the way the store's write path does.
func encodeVia(c artifact.Codec, v any) ([]byte, error) {
	var sb strings.Builder
	if err := c.Encode(&sb, v); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}
