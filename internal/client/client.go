// Package client is the HTTP side of the remote artifact tier: a thin
// cache client that fetches and pushes framed artifact payloads against
// a deadd daemon's /v1/artifact endpoints. It implements
// artifact.RemoteTier, so attaching it to a store (Store.SetRemote, or
// the -remote-cache flag on the CLI tools) makes the daemon's cache the
// third lookup tier behind memory and disk.
//
// Integrity is end to end: payloads travel in the same
// magic/version/length/CRC-32C frame the disk tier writes
// (artifact.Frame), and Fetch verifies the frame before handing bytes to
// a codec — a corrupt or truncated response is an error the store
// degrades to a local rebuild, never a wrong answer. The fault site
// "client.fetch" injects transport errors and in-flight corruption for
// chaos coverage.
package client

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/faults"
)

// SiteFetch fires once per remote fetch attempt; Corrupt rules mangle
// the response bytes in flight, which frame verification must catch.
const SiteFetch faults.Site = "client.fetch"

func init() { faults.RegisterSite(SiteFetch) }

// maxPayload bounds a fetched artifact image. The largest real artifacts
// (columnar profiles) are tens of megabytes; anything past this is a
// misbehaving server, not a cache entry.
const maxPayload = 1 << 31

// Cache is a remote artifact cache backed by a deadd daemon.
type Cache struct {
	base string
	hc   *http.Client
}

// New validates baseURL (e.g. "http://127.0.0.1:7333") and returns a
// cache client for the daemon at that address. No connection is made
// until the first fetch or store.
func New(baseURL string) (*Cache, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: remote cache URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: remote cache URL %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: remote cache URL %q: missing host", baseURL)
	}
	return &Cache{
		base: strings.TrimRight(u.String(), "/"),
		// The timeout covers the whole exchange; artifact payloads are at
		// most tens of megabytes, so a slow-but-alive daemon still fits.
		hc: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// BaseURL returns the daemon address this cache talks to.
func (c *Cache) BaseURL() string { return c.base }

func (c *Cache) entryURL(key artifact.Key) string {
	return c.base + "/v1/artifact/" + url.PathEscape(string(key.Kind)) + "/" + url.PathEscape(key.Digest)
}

// Fetch retrieves the payload stored under key, verifying the transport
// frame. A 404 is a clean miss (found=false, no error); any transport,
// status, or verification failure is an error the store treats as a
// degraded lookup.
func (c *Cache) Fetch(key artifact.Key) ([]byte, bool, error) {
	if err := faults.Fire(SiteFetch); err != nil {
		return nil, false, fmt.Errorf("client: fetch %s: %w", key, err)
	}
	resp, err := c.hc.Get(c.entryURL(key))
	if err != nil {
		return nil, false, fmt.Errorf("client: fetch %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("client: fetch %s: daemon returned %s", key, resp.Status)
	}
	framed, err := io.ReadAll(io.LimitReader(resp.Body, maxPayload))
	if err != nil {
		return nil, false, fmt.Errorf("client: fetch %s: %w", key, err)
	}
	// Model in-flight corruption: the daemon framed intact bytes, the wire
	// flipped some. Verification below must reject the mangled image.
	faults.Mangle(SiteFetch, framed)
	payload, err := artifact.Unframe(framed)
	if err != nil {
		return nil, false, fmt.Errorf("client: fetch %s: %w", key, err)
	}
	return payload, true, nil
}

// Store pushes a freshly built payload under key, framed for integrity.
// Best-effort by contract: the caller's local artifact is unaffected by
// a failed push.
func (c *Cache) Store(key artifact.Key, payload []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.entryURL(key), bytes.NewReader(artifact.Frame(payload)))
	if err != nil {
		return fmt.Errorf("client: store %s: %w", key, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: store %s: %w", key, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("client: store %s: daemon returned %s", key, resp.Status)
	}
	return nil
}

// Cache implements artifact.RemoteTier.
var _ artifact.RemoteTier = (*Cache)(nil)
