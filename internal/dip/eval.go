package dip

import (
	"fmt"
	"sync"

	"repro/internal/bpred"
	"repro/internal/deadness"
	"repro/internal/trace"
)

// Result summarizes a trace-level evaluation of a dead-instruction
// predictor: how many dead instances it covered and how often a "dead"
// prediction was right. These are the paper's two headline predictor
// metrics (coverage >91%, accuracy 93% at <5 KB).
type Result struct {
	Name       string
	Candidates int // dynamic result-producing instances
	Dead       int // of which oracle-dead
	Predicted  int // predicted dead
	TruePos    int // predicted dead and oracle-dead
	StateBits  int
	// BranchAccuracy is the direction-predictor accuracy underlying the
	// path signatures.
	BranchAccuracy float64
}

// Coverage is the fraction of dead instances that were predicted dead.
func (r Result) Coverage() float64 {
	if r.Dead == 0 {
		return 0
	}
	return float64(r.TruePos) / float64(r.Dead)
}

// Accuracy is the fraction of dead predictions that were correct.
func (r Result) Accuracy() float64 {
	if r.Predicted == 0 {
		return 1 // no predictions, no mispredictions
	}
	return float64(r.TruePos) / float64(r.Predicted)
}

// FalsePositives is the number of useful instances predicted dead — each
// would cost a recovery in the elimination pipeline.
func (r Result) FalsePositives() int { return r.Predicted - r.TruePos }

func (r Result) String() string {
	return fmt.Sprintf("%s: cov=%.1f%% acc=%.1f%% (%d/%d dead, %d false+, %.2f KB)",
		r.Name, 100*r.Coverage(), 100*r.Accuracy(), r.TruePos, r.Dead,
		r.FalsePositives(), float64(r.StateBits)/8192)
}

// Options configures an evaluation run.
type Options struct {
	Config Config
	// Dir supplies branch directions for path signatures; nil selects the
	// pipeline's default gshare predictor.
	Dir bpred.DirPredictor
	// UseActualPath replaces predicted future directions with actual
	// outcomes — the oracle upper bound of control-flow information.
	UseActualPath bool
}

// DefaultDir returns the direction predictor used when Options.Dir is nil:
// a 4K-entry gshare with 10 bits of history.
func DefaultDir() bpred.DirPredictor { return bpred.NewGshare(12, 10) }

// nilPend terminates a pending-update list.
const nilPend = int32(-1)

// evalScratch carries Evaluate's working arrays between runs through a
// pool: the engine evaluates dozens of predictor configurations over the
// same budget, and recycling the arrays keeps each run's allocation cost
// near zero instead of O(candidates).
type evalScratch struct {
	pendHead []int32
	pendPC   []int32
	pendSig  []uint16
	pendDead []bool
	pendNext []int32
	scratch  []int32
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

// Evaluate runs the predictor over a linked, analyzed trace. An invalid
// predictor geometry returns a *ConfigError.
//
// The walk models the hardware timeline: a prediction for instance i uses
// the branch-predictor lookahead at i; the predictor trains only when the
// instance's deadness *resolves* (its register is overwritten or read, its
// stored bytes are overwritten or loaded — deadness.Analysis.Resolve), not
// at prediction time. Predictions awaiting resolution live in intrusive
// lists headed by resolve point (parallel flat arrays indexed by a next
// pointer), not a map: the walk allocates a handful of slices total
// instead of one map entry per in-flight prediction.
func Evaluate(t *trace.Trace, a *deadness.Analysis, opt Options) (Result, error) {
	dir := opt.Dir
	if dir == nil {
		dir = DefaultDir()
	}
	p, err := New(opt.Config)
	if err != nil {
		return Result{}, err
	}
	look := bpred.NewLookahead(dir, t, max(opt.Config.PathLen, 1))
	res := Result{Name: opt.Config.Name(), StateBits: opt.Config.StateBits()}

	n := t.Len()
	es := evalPool.Get().(*evalScratch)
	pendHead := es.pendHead
	if cap(pendHead) < n {
		pendHead = make([]int32, n)
	}
	pendHead = pendHead[:n]
	for i := range pendHead {
		pendHead[i] = nilPend
	}
	pendPC := es.pendPC[:0]
	pendSig := es.pendSig[:0]
	pendDead := es.pendDead[:0]
	pendNext := es.pendNext[:0]
	scratch := es.scratch
	// Replayed nodes go onto a free list threaded through pendNext, so the
	// flat arrays grow to the peak number of in-flight predictions (bounded
	// by the longest resolve distance), not one slot per candidate.
	freeHead := nilPend
	useCFI := opt.Config.UseCFI()
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		for i := 0; i < c.Len(); i++ {
			seq := base + i
			// Outcomes that resolve here train the predictor first, in
			// prediction order (the intrusive list is LIFO, so replay it
			// reversed through a scratch buffer).
			if h := pendHead[seq]; h != nilPend {
				scratch = scratch[:0]
				for u := h; u != nilPend; u = pendNext[u] {
					scratch = append(scratch, u)
				}
				for k := len(scratch) - 1; k >= 0; k-- {
					u := scratch[k]
					p.Update(int(pendPC[u]), pendSig[u], pendDead[u])
				}
				for _, u := range scratch {
					pendNext[u] = freeHead
					freeHead = u
				}
			}

			look.EnsureThrough(seq)
			if !a.Candidate[seq] {
				continue
			}
			var sig uint16
			if useCFI {
				if opt.UseActualPath {
					sig = look.ActualSigAfter(seq)
				} else {
					sig = look.SigAfter(seq)
				}
			}
			pc := c.PC[i]
			dead := a.Kind[seq].Dead()
			res.Candidates++
			if dead {
				res.Dead++
			}
			if p.Predict(int(pc), sig) {
				res.Predicted++
				if dead {
					res.TruePos++
				}
			}
			resolve := a.Resolve[seq]
			if int(resolve) >= n {
				// Resolves past the end of the trace; train immediately so
				// short traces still learn end-of-trace deadness.
				p.Update(int(pc), sig, dead)
			} else {
				var idx int32
				if freeHead != nilPend {
					idx = freeHead
					freeHead = pendNext[idx]
					pendPC[idx] = pc
					pendSig[idx] = sig
					pendDead[idx] = dead
					pendNext[idx] = pendHead[resolve]
				} else {
					idx = int32(len(pendPC))
					pendPC = append(pendPC, pc)
					pendSig = append(pendSig, sig)
					pendDead = append(pendDead, dead)
					pendNext = append(pendNext, pendHead[resolve])
				}
				pendHead[resolve] = idx
			}
		}
	}
	res.BranchAccuracy = look.Accuracy()
	es.pendHead, es.pendPC, es.pendSig = pendHead, pendPC, pendSig
	es.pendDead, es.pendNext, es.scratch = pendDead, pendNext, scratch
	evalPool.Put(es)
	return res, nil
}
