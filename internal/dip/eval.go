package dip

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/deadness"
	"repro/internal/trace"
)

// Result summarizes a trace-level evaluation of a dead-instruction
// predictor: how many dead instances it covered and how often a "dead"
// prediction was right. These are the paper's two headline predictor
// metrics (coverage >91%, accuracy 93% at <5 KB).
type Result struct {
	Name       string
	Candidates int // dynamic result-producing instances
	Dead       int // of which oracle-dead
	Predicted  int // predicted dead
	TruePos    int // predicted dead and oracle-dead
	StateBits  int
	// BranchAccuracy is the direction-predictor accuracy underlying the
	// path signatures.
	BranchAccuracy float64
}

// Coverage is the fraction of dead instances that were predicted dead.
func (r Result) Coverage() float64 {
	if r.Dead == 0 {
		return 0
	}
	return float64(r.TruePos) / float64(r.Dead)
}

// Accuracy is the fraction of dead predictions that were correct.
func (r Result) Accuracy() float64 {
	if r.Predicted == 0 {
		return 1 // no predictions, no mispredictions
	}
	return float64(r.TruePos) / float64(r.Predicted)
}

// FalsePositives is the number of useful instances predicted dead — each
// would cost a recovery in the elimination pipeline.
func (r Result) FalsePositives() int { return r.Predicted - r.TruePos }

func (r Result) String() string {
	return fmt.Sprintf("%s: cov=%.1f%% acc=%.1f%% (%d/%d dead, %d false+, %.2f KB)",
		r.Name, 100*r.Coverage(), 100*r.Accuracy(), r.TruePos, r.Dead,
		r.FalsePositives(), float64(r.StateBits)/8192)
}

// Options configures an evaluation run.
type Options struct {
	Config Config
	// Dir supplies branch directions for path signatures; nil selects the
	// pipeline's default gshare predictor.
	Dir bpred.DirPredictor
	// UseActualPath replaces predicted future directions with actual
	// outcomes — the oracle upper bound of control-flow information.
	UseActualPath bool
}

// DefaultDir returns the direction predictor used when Options.Dir is nil:
// a 4K-entry gshare with 10 bits of history.
func DefaultDir() bpred.DirPredictor { return bpred.NewGshare(12, 10) }

// pendingUpdate is a prediction awaiting its resolution point.
type pendingUpdate struct {
	pc   int32
	sig  uint16
	dead bool
}

// Evaluate runs the predictor over a linked, analyzed trace. An invalid
// predictor geometry returns a *ConfigError.
//
// The walk models the hardware timeline: a prediction for instance i uses
// the branch-predictor lookahead at i; the predictor trains only when the
// instance's deadness *resolves* (its register is overwritten or read, its
// stored bytes are overwritten or loaded — deadness.Analysis.Resolve), not
// at prediction time.
func Evaluate(t *trace.Trace, a *deadness.Analysis, opt Options) (Result, error) {
	dir := opt.Dir
	if dir == nil {
		dir = DefaultDir()
	}
	p, err := New(opt.Config)
	if err != nil {
		return Result{}, err
	}
	look := bpred.NewLookahead(dir, t, max(opt.Config.PathLen, 1))
	res := Result{Name: opt.Config.Name(), StateBits: opt.Config.StateBits()}

	n := t.Len()
	pending := make(map[int32][]pendingUpdate)
	for seq := 0; seq < n; seq++ {
		// Outcomes that resolve here train the predictor first.
		for _, u := range pending[int32(seq)] {
			p.Update(int(u.pc), u.sig, u.dead)
		}
		delete(pending, int32(seq))

		look.EnsureThrough(seq)
		if !a.Candidate[seq] {
			continue
		}
		var sig uint16
		if opt.Config.UseCFI() {
			if opt.UseActualPath {
				sig = look.ActualSigAfter(seq)
			} else {
				sig = look.SigAfter(seq)
			}
		}
		r := &t.Recs[seq]
		dead := a.Kind[seq].Dead()
		res.Candidates++
		if dead {
			res.Dead++
		}
		if p.Predict(int(r.PC), sig) {
			res.Predicted++
			if dead {
				res.TruePos++
			}
		}
		resolve := a.Resolve[seq]
		if int(resolve) >= n {
			// Resolves past the end of the trace; train immediately so
			// short traces still learn end-of-trace deadness.
			p.Update(int(r.PC), sig, dead)
		} else {
			pending[resolve] = append(pending[resolve], pendingUpdate{r.PC, sig, dead})
		}
	}
	res.BranchAccuracy = look.Accuracy()
	return res, nil
}
