package dip

import (
	"strings"
	"testing"
)

func TestSpecCanonicalDedup(t *testing.T) {
	cfg := DefaultConfig()

	// The default direction predictor named explicitly is the same
	// computation as leaving Dir empty.
	implicit := Spec{Flavor: FlavorCFI, Config: cfg}
	explicit := Spec{Flavor: FlavorCFI, Config: cfg, Dir: DefaultDirName}
	if implicit.Digest() != explicit.Digest() {
		t.Error("empty Dir and explicit default Dir digest differently")
	}

	// A CFI spec whose geometry disables path signatures is the counter
	// flavor — one artifact, not two.
	noCFI := cfg
	noCFI.PathLen = 0
	asCFI := Spec{Flavor: FlavorCFI, Config: noCFI}
	asCounter := Spec{Flavor: FlavorCounter, Config: noCFI}
	if asCFI.Digest() != asCounter.Digest() {
		t.Error("cfi-with-PathLen-0 and counter digest differently")
	}
	if asCFI.Canonical().Flavor != FlavorCounter {
		t.Errorf("cfi with PathLen 0 canonicalizes to %q, want counter", asCFI.Canonical().Flavor)
	}

	// The counter flavor ignores PathLen entirely.
	withPath := Spec{Flavor: FlavorCounter, Config: cfg}
	if withPath.Digest() != asCounter.Digest() {
		t.Error("counter specs with different (ignored) PathLen digest differently")
	}

	// The static hint ignores the table geometry and direction predictor.
	h1 := Spec{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.9, Config: cfg, Dir: "bimodal-4k"}
	h2 := Spec{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.9}
	if h1.Digest() != h2.Digest() {
		t.Error("static-hint specs with different (ignored) table fields digest differently")
	}
}

func TestSpecDigestCollisions(t *testing.T) {
	cfg := DefaultConfig()
	specs := []Spec{
		{Flavor: FlavorCFI, Config: cfg},
		{Flavor: FlavorCounter, Config: cfg},
		{Flavor: FlavorOracle, Config: cfg},
		{Flavor: FlavorCFI, Config: cfg, Dir: "bimodal-4k"},
		{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.9},
		{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.5},
	}
	seen := make(map[string]Spec)
	for _, s := range specs {
		d := s.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("distinct specs %+v and %+v share digest %s", prev, s, d[:8])
		}
		seen[d] = s
	}

	// Geometry changes must change the digest.
	big := cfg
	big.LogSets++
	if (Spec{Flavor: FlavorCFI, Config: big}).Digest() == (Spec{Flavor: FlavorCFI, Config: cfg}).Digest() {
		t.Error("different geometries share a digest")
	}
}

func TestSpecValidate(t *testing.T) {
	cfg := DefaultConfig()
	good := []Spec{
		{Flavor: FlavorCFI, Config: cfg},
		{Flavor: FlavorOracle, Config: cfg, Dir: "tournament-4k"},
		{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.9},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %+v rejected: %v", s, err)
		}
		if _, err := s.New(); err != nil {
			t.Errorf("valid spec %+v not buildable: %v", s, err)
		}
	}

	bad := []struct {
		spec Spec
		want string
	}{
		{Spec{Flavor: "nope", Config: cfg}, "unknown predictor flavor"},
		{Spec{Flavor: FlavorCFI}, ""}, // zero geometry: Config.Validate error
		{Spec{Flavor: FlavorCFI, Config: cfg, Dir: "no-such-dir"}, "no-such-dir"},
		{Spec{Flavor: FlavorStaticHint, TrainFrac: 0, HintThreshold: 0.5}, "training fraction"},
		{Spec{Flavor: FlavorStaticHint, TrainFrac: 1.5, HintThreshold: 0.5}, "training fraction"},
		{Spec{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 1.5}, "threshold"},
	}
	for _, tc := range bad {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("invalid spec %+v accepted", tc.spec)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %+v: error %q does not mention %q", tc.spec, err, tc.want)
		}
		if _, nerr := tc.spec.New(); nerr == nil {
			t.Errorf("invalid spec %+v buildable by New", tc.spec)
		}
	}
}

func TestFlavorsRegistry(t *testing.T) {
	want := []string{FlavorCFI, FlavorCounter, FlavorOracle, FlavorStaticHint, FlavorSteer}
	got := Flavors()
	if len(got) != len(want) {
		t.Fatalf("Flavors() = %v, want %d entries", got, len(want))
	}
	have := make(map[string]bool)
	for _, f := range got {
		have[f] = true
	}
	for _, f := range want {
		if !have[f] {
			t.Errorf("flavor %q missing from registry", f)
		}
	}
}

func TestSpecLabels(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Flavor: FlavorCFI, Config: cfg}, cfg.Name()},
		{Spec{Flavor: FlavorOracle, Config: cfg}, cfg.Name() + "-oracle"},
		{Spec{Flavor: FlavorCFI, Config: cfg, Dir: "bimodal-4k"}, cfg.Name() + "+bimodal-4k"},
		{Spec{Flavor: FlavorStaticHint, TrainFrac: 0.5, HintThreshold: 0.9}, "statichint-f0.5-t0.9"},
		{Spec{Flavor: FlavorSteer}, "steer+" + DefaultDirName},
		{Spec{Flavor: FlavorSteer, Dir: "bimodal-4k"}, "steer+bimodal-4k"},
	}
	for _, tc := range cases {
		if got := tc.spec.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.spec, got, tc.want)
		}
	}
}
