package dip

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/deadness"
	"repro/internal/emu"
)

// pathDeadProgram builds a loop where one static instruction's deadness is
// perfectly correlated with the direction of the next branch: r3 is
// consumed only when the inner condition (i%4 == 0) holds. The pattern is
// periodic, so a history-based branch predictor learns it, and the CFI
// dead predictor should approach oracle behaviour while the counter
// variant is stuck: the same static slli is dead 3/4 of the time.
const pathDeadSrc = `
main:
    addi r1, r0, 400      # i = 400
    addi r5, r0, 0        # acc
loop:
    slli r3, r1, 2        # candidate: dead unless the branch below falls through
    andi r2, r1, 3
    bne  r2, r0, skip     # taken 3 of 4 iterations
    add  r5, r5, r3       # consumes r3
skip:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r5
    halt
`

func evalSrc(t *testing.T, src string, opt Options) Result {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(tr, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvaluateCFIOnPathCorrelatedDeadness(t *testing.T) {
	res := evalSrc(t, pathDeadSrc, Options{Config: DefaultConfig()})
	if res.Dead == 0 {
		t.Fatal("no dead instances in workload")
	}
	if cov := res.Coverage(); cov < 0.85 {
		t.Errorf("CFI coverage = %.3f, want >= 0.85 (%+v)", cov, res)
	}
	if acc := res.Accuracy(); acc < 0.9 {
		t.Errorf("CFI accuracy = %.3f, want >= 0.9 (%+v)", acc, res)
	}
	if res.BranchAccuracy < 0.9 {
		t.Errorf("branch accuracy = %.3f, want >= 0.9", res.BranchAccuracy)
	}
}

func TestCFIOutperformsCounterOnPathDeadness(t *testing.T) {
	cfi := evalSrc(t, pathDeadSrc, Options{Config: DefaultConfig()})

	counter := DefaultConfig()
	counter.PathLen = 0
	noCfi := evalSrc(t, pathDeadSrc, Options{Config: counter})

	// The counter predictor must either miss coverage (stays below
	// threshold) or mispredict the useful instances (above threshold);
	// either way its accuracy*coverage product is far below CFI's.
	cfiScore := cfi.Accuracy() * cfi.Coverage()
	ctrScore := noCfi.Accuracy() * noCfi.Coverage()
	if cfiScore <= ctrScore {
		t.Errorf("CFI score %.3f not better than counter score %.3f\ncfi: %v\nctr: %v",
			cfiScore, ctrScore, cfi, noCfi)
	}
}

func TestActualPathIsUpperBound(t *testing.T) {
	pred := evalSrc(t, pathDeadSrc, Options{Config: DefaultConfig()})
	oracle := evalSrc(t, pathDeadSrc, Options{Config: DefaultConfig(), UseActualPath: true})
	if oracle.Coverage() < pred.Coverage()-0.02 {
		t.Errorf("actual-path coverage %.3f unexpectedly below predicted-path %.3f",
			oracle.Coverage(), pred.Coverage())
	}
	if oracle.Accuracy() < 0.95 {
		t.Errorf("oracle-path accuracy = %.3f, want >= 0.95", oracle.Accuracy())
	}
}

func TestEvaluateAlwaysLiveProgram(t *testing.T) {
	res := evalSrc(t, `
main:
    addi r1, r0, 50
loop:
    addi r2, r1, 1
    out  r2
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`, Options{Config: DefaultConfig()})
	if res.Dead != 0 {
		t.Fatalf("expected no dead instances, got %d", res.Dead)
	}
	if res.FalsePositives() != 0 {
		t.Errorf("false positives on all-live program: %d", res.FalsePositives())
	}
	if res.Accuracy() != 1 {
		t.Errorf("accuracy with no predictions = %v, want 1", res.Accuracy())
	}
}

func TestEvaluateDelayedTraining(t *testing.T) {
	// A single always-dead instruction in a tight loop: training is
	// delayed to the overwrite in the next iteration, so the predictor
	// needs a few iterations before covering instances; after warmup,
	// coverage should be high but strictly below 1 in a short run.
	res := evalSrc(t, `
main:
    addi r1, r0, 50
loop:
    slli r3, r1, 1     # dead every iteration
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r1
    halt
`, Options{Config: DefaultConfig()})
	if res.Dead != 50 {
		t.Fatalf("dead = %d, want 50", res.Dead)
	}
	if res.TruePos < 40 || res.TruePos >= 50 {
		t.Errorf("true positives = %d, want warmup-limited high coverage", res.TruePos)
	}
}

func TestEvaluateWithExplicitDirPredictor(t *testing.T) {
	p, err := asm.Assemble("t", pathDeadSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// A static not-taken predictor produces constant signatures, so CFI
	// degenerates; evaluation must still run and report sane totals.
	res, err := Evaluate(tr, a, Options{Config: DefaultConfig(), Dir: bpred.Static{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 || res.Dead == 0 {
		t.Fatalf("bad totals: %+v", res)
	}
	if res.TruePos > res.Predicted || res.TruePos > res.Dead {
		t.Errorf("inconsistent tallies: %+v", res)
	}
}

func TestResultStringAndMetrics(t *testing.T) {
	r := Result{Name: "x", Candidates: 100, Dead: 10, Predicted: 9, TruePos: 8, StateBits: 8192}
	if r.Coverage() != 0.8 {
		t.Errorf("coverage = %v", r.Coverage())
	}
	if r.FalsePositives() != 1 {
		t.Errorf("false+ = %d", r.FalsePositives())
	}
	if s := r.String(); s == "" {
		t.Error("empty string")
	}
	zero := Result{}
	if zero.Coverage() != 0 || zero.Accuracy() != 1 {
		t.Error("zero-value metrics wrong")
	}
}

// sanity check: the evaluation does not mutate the trace.
func TestEvaluateLeavesTraceIntact(t *testing.T) {
	p, err := asm.Assemble("t", pathDeadSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Records()
	if _, err := Evaluate(tr, a, Options{Config: DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	after := tr.Records()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("record %d mutated", i)
		}
	}
}
