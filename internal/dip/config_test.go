package dip

import "testing"

func TestSweepConfigsAllValid(t *testing.T) {
	cfgs := SweepConfigs()
	if len(cfgs) < 4 {
		t.Fatalf("sweep has only %d points", len(cfgs))
	}
	prev := 0.0
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
		}
		if cfg.StateKB() <= prev {
			t.Errorf("sweep not monotone in state: %s at %.2f KB after %.2f",
				cfg.Name(), cfg.StateKB(), prev)
		}
		prev = cfg.StateKB()
	}
}

func TestStateBitsMonotoneInEveryKnob(t *testing.T) {
	base := DefaultConfig()
	grow := []func(*Config){
		func(c *Config) { c.LogSets++ },
		func(c *Config) { c.Ways *= 2 },
		func(c *Config) { c.TagBits++ },
		func(c *Config) { c.PathLen++ },
		func(c *Config) { c.SigSlots++ },
		func(c *Config) { c.CounterBits++ },
	}
	for i, g := range grow {
		c := base
		g(&c)
		if c.StateBits() <= base.StateBits() {
			t.Errorf("knob %d did not grow state: %d vs %d", i, c.StateBits(), base.StateBits())
		}
	}
}

func TestPredictorIsDeterministic(t *testing.T) {
	run := func() []bool {
		p := mustNew(t, DefaultConfig())
		var out []bool
		for i := 0; i < 5000; i++ {
			pc := (i * 37) & 1023
			sig := uint16(i & 3)
			out = append(out, p.Predict(pc, sig))
			p.Update(pc, sig, i%3 == 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between identical runs", i)
		}
	}
}
