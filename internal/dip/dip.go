// Package dip implements the paper's central contribution: the dead-
// instruction predictor. The predictor is a tagged, set-associative table
// indexed by the PC of a result-producing instruction. Each entry holds a
// small number of *dead-path signatures* — patterns of predicted directions
// for the next few conditional branches — with a saturating confidence
// counter per signature. An instance is predicted dead only when the
// current future-control-flow signature (from the branch predictor's
// lookahead, see bpred.Lookahead) matches a signature whose counter has
// reached the confidence threshold.
//
// Keying on future control flow is what lets the predictor distinguish
// useless from useful instances of the same static instruction: a value
// computed before a branch is typically dead exactly when the upcoming
// branches take the path that skips its consumer.
//
// Setting Config.PathLen to zero degenerates the predictor into the no-CFI
// baseline — a plain per-PC confidence counter — used by ablation E6.
package dip

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Config describes a predictor geometry. The zero value is invalid; start
// from DefaultConfig.
type Config struct {
	// LogSets is log2 of the number of sets.
	LogSets int
	// Ways is the set associativity.
	Ways int
	// TagBits is the partial tag width.
	TagBits int
	// PathLen is the number of future branch directions in a signature
	// (0..16). Zero disables control-flow information entirely.
	PathLen int
	// SigSlots is the number of dead-path signatures per entry.
	SigSlots int
	// CounterBits is the confidence counter width (1..8).
	CounterBits int
	// Threshold is the counter value at or above which the instance is
	// predicted dead.
	Threshold int
}

// DefaultConfig is the paper-point configuration: a 512-entry, 4-way table
// with 2-branch path signatures, four signature slots per entry (one per
// distinct dead path a static instruction commonly exhibits), and 2-bit
// confidence — comfortably below the paper's 5 KB state budget (~2 KB).
//
// Two future branches is the sweet spot measured by cmd/predsweep: the
// next branch usually decides whether a value's consumer executes, while
// longer signatures fragment (a static instruction's dead path splits into
// many rarely-repeating patterns) and are corrupted by any one branch
// misprediction among the lookahead, costing coverage with no accuracy
// gain.
func DefaultConfig() Config {
	return Config{
		LogSets:     7,
		Ways:        4,
		TagBits:     8,
		PathLen:     2,
		SigSlots:    4,
		CounterBits: 2,
		Threshold:   2,
	}
}

// ConfigError reports an invalid predictor geometry. It is the typed
// error returned by Config.Validate and New, so callers wiring
// user-supplied geometry can distinguish a bad configuration from other
// failures with errors.As.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("dip: %s %s", e.Field, e.Reason) }

// Validate reports configuration errors (as a *ConfigError).
func (c Config) Validate() error {
	switch {
	case c.LogSets < 0 || c.LogSets > 20:
		return &ConfigError{"LogSets", fmt.Sprintf("%d out of range", c.LogSets)}
	case c.Ways < 1:
		return &ConfigError{"Ways", "must be >= 1"}
	case c.TagBits < 1 || c.TagBits > 30:
		return &ConfigError{"TagBits", fmt.Sprintf("%d out of range", c.TagBits)}
	case c.PathLen < 0 || c.PathLen > 16:
		return &ConfigError{"PathLen", fmt.Sprintf("%d out of range", c.PathLen)}
	case c.SigSlots < 1:
		return &ConfigError{"SigSlots", "must be >= 1"}
	case c.CounterBits < 1 || c.CounterBits > 8:
		return &ConfigError{"CounterBits", fmt.Sprintf("%d out of range", c.CounterBits)}
	case c.Threshold < 1 || c.Threshold > 1<<c.CounterBits-1:
		return &ConfigError{"Threshold", fmt.Sprintf("%d out of range for %d-bit counters",
			c.Threshold, c.CounterBits)}
	}
	return nil
}

// UseCFI reports whether the configuration uses future control flow.
func (c Config) UseCFI() bool { return c.PathLen > 0 }

// StateBits is the hardware budget: per entry, a valid bit, the tag, an
// LRU stamp (log2(Ways) bits), and SigSlots slots of (signature valid bit +
// PathLen signature + counter).
func (c Config) StateBits() int {
	perSlot := 1 + c.PathLen + c.CounterBits
	perEntry := 1 + c.TagBits + logCeil(c.Ways) + c.SigSlots*perSlot
	return (1 << c.LogSets) * c.Ways * perEntry
}

// StateKB is StateBits in kilobytes.
func (c Config) StateKB() float64 { return float64(c.StateBits()) / 8192 }

// Name identifies the configuration for reports.
func (c Config) Name() string {
	kind := "cfi"
	if !c.UseCFI() {
		kind = "counter"
	}
	return fmt.Sprintf("dip-%s-%de-%dw-p%d-s%d-t%d",
		kind, (1<<c.LogSets)*c.Ways, c.Ways, c.PathLen, c.SigSlots, c.Threshold)
}

// Digest returns a canonical fingerprint of the geometry: two configs
// describing the same predictor produce equal digests. It composes into
// pipeline.Config.Digest and the experiment workspace's artifact keys.
func (c Config) Digest() string {
	// Every field is a plain exported int, so JSON is a stable canonical
	// encoding (the same convention as pipeline.Config.Digest).
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("dip: config not digestible: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SweepConfigs returns the state-budget design points of experiment E7:
// the default geometry scaled from 64 to 2048 entries (~0.4 to 13.8 KB).
func SweepConfigs() []Config {
	var out []Config
	for logSets := 4; logSets <= 9; logSets++ {
		cfg := DefaultConfig()
		cfg.LogSets = logSets
		out = append(out, cfg)
	}
	return out
}

func logCeil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

type slot struct {
	valid bool
	sig   uint16
	ctr   uint8
}

type entry struct {
	valid bool
	tag   uint32
	used  uint64 // LRU stamp
	slots []slot
}

// Table is the hardware dead-instruction predictor structure: the tagged
// set-associative table of dead-path signatures. Create with New. The
// trace-level evaluation flavors that drive it (and its baselines) live
// behind the Predictor interface.
type Table struct {
	cfg     Config
	sets    [][]entry
	setMask uint32
	sigMask uint16
	ctrMax  uint8
	tick    uint64

	// Allocations counts entry fills, Evictions counts valid entries
	// replaced; both are reported by the design-space sweep.
	Allocations int
	Evictions   int
}

// New creates a predictor. An invalid configuration returns a typed
// *ConfigError instead of panicking: geometry is routinely user input
// (sweep flags, experiment configs), so the caller must be able to
// handle it.
func New(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := 1 << cfg.LogSets
	p := &Table{
		cfg:     cfg,
		sets:    make([][]entry, nsets),
		setMask: uint32(nsets - 1),
		sigMask: uint16(1<<cfg.PathLen - 1),
		ctrMax:  uint8(1<<cfg.CounterBits - 1),
	}
	for i := range p.sets {
		ways := make([]entry, cfg.Ways)
		for w := range ways {
			ways[w].slots = make([]slot, cfg.SigSlots)
		}
		p.sets[i] = ways
	}
	return p, nil
}

// Config returns the predictor's configuration.
func (p *Table) Config() Config { return p.cfg }

func (p *Table) index(pc int) (set uint32, tag uint32) {
	set = uint32(pc) & p.setMask
	tag = (uint32(pc) >> p.cfg.LogSets) & (1<<p.cfg.TagBits - 1)
	return
}

func (p *Table) find(pc int) *entry {
	set, tag := p.index(pc)
	for w := range p.sets[set] {
		e := &p.sets[set][w]
		if e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

// Predict returns true when the instruction at pc, on the future path
// described by sig, is predicted dead. Predict does not modify predictor
// state except the LRU stamp of a hit entry.
func (p *Table) Predict(pc int, sig uint16) bool {
	e := p.find(pc)
	if e == nil {
		return false
	}
	p.tick++
	e.used = p.tick
	sig &= p.sigMask
	for i := range e.slots {
		s := &e.slots[i]
		if s.valid && s.sig == sig {
			return int(s.ctr) >= p.cfg.Threshold
		}
	}
	return false
}

// Update trains the predictor with an instance's resolved outcome: the
// instruction at pc, whose lookahead signature at prediction time was sig,
// turned out dead or not.
//
// Entries are allocated lazily, on the first dead outcome for a PC, so
// always-live instructions consume no table space. Within an entry, a dead
// outcome reinforces (or allocates) the matching signature slot; a live
// outcome decays the matching slot if present and is otherwise ignored.
func (p *Table) Update(pc int, sig uint16, dead bool) {
	sig &= p.sigMask
	e := p.find(pc)
	if e == nil {
		if !dead {
			return
		}
		e = p.allocate(pc)
	}
	p.tick++
	e.used = p.tick

	for i := range e.slots {
		s := &e.slots[i]
		if s.valid && s.sig == sig {
			if dead {
				if s.ctr < p.ctrMax {
					s.ctr++
				}
			} else if s.ctr > 0 {
				s.ctr--
			}
			return
		}
	}
	if !dead {
		return
	}
	// Steal the weakest slot (an invalid one if any) for the new dead path.
	victim := &e.slots[0]
	for i := 1; i < len(e.slots) && victim.valid; i++ {
		s := &e.slots[i]
		if !s.valid || s.ctr < victim.ctr {
			victim = s
		}
	}
	*victim = slot{valid: true, sig: sig, ctr: 1}
}

func (p *Table) allocate(pc int) *entry {
	set, tag := p.index(pc)
	ways := p.sets[set]
	victim := &ways[0]
	for w := range ways {
		e := &ways[w]
		if !e.valid {
			victim = e
			break
		}
		if e.used < victim.used {
			victim = e
		}
	}
	if victim.valid {
		p.Evictions++
	}
	p.Allocations++
	victim.valid = true
	victim.tag = tag
	for i := range victim.slots {
		victim.slots[i] = slot{}
	}
	return victim
}

// Reset clears all predictor state but keeps the configuration.
func (p *Table) Reset() {
	for s := range p.sets {
		for w := range p.sets[s] {
			e := &p.sets[s][w]
			e.valid = false
			e.used = 0
			for i := range e.slots {
				e.slots[i] = slot{}
			}
		}
	}
	p.tick = 0
	p.Allocations = 0
	p.Evictions = 0
}
