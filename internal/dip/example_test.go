package dip_test

import (
	"fmt"

	"repro/internal/dip"
)

// ExamplePredictor shows the path-signature mechanism directly: the same
// static instruction (one PC) is dead on one future path and useful on
// another, and the predictor learns to separate the two.
func ExamplePredictor() {
	p, _ := dip.New(dip.DefaultConfig())
	const pc = 0x40
	const deadPath, livePath = 0b01, 0b00 // next-branch taken vs not

	// Train: instances on deadPath resolve dead, on livePath useful.
	for i := 0; i < 3; i++ {
		p.Update(pc, deadPath, true)
		p.Update(pc, livePath, false)
	}
	fmt.Println("predict dead on dead path:", p.Predict(pc, deadPath))
	fmt.Println("predict dead on live path:", p.Predict(pc, livePath))
	// Output:
	// predict dead on dead path: true
	// predict dead on live path: false
}

func ExampleConfig_StateKB() {
	cfg := dip.DefaultConfig()
	fmt.Printf("%s uses %.2f KB\n", cfg.Name(), cfg.StateKB())
	// Output: dip-cfi-512e-4w-p2-s4-t2 uses 1.94 KB
}
