package dip

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
)

func TestStaticHintOnFullyDeadInstruction(t *testing.T) {
	// One always-dead static: a strict hint covers it perfectly.
	p, err := asm.Assemble("t", `
main:
    addi r1, r0, 400
loop:
    slli r3, r1, 2     # dead every iteration
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := StaticHintResult(tr, a, 0.5, 0.9)
	if res.Coverage() < 0.95 {
		t.Errorf("coverage = %v on an always-dead static", res.Coverage())
	}
	if res.Accuracy() < 0.99 {
		t.Errorf("accuracy = %v", res.Accuracy())
	}
}

func TestStaticHintCappedByDeadnessRatio(t *testing.T) {
	// The slli is dead on 3 of 4 iterations: a loose hint (threshold 0.5)
	// marks it dead always, capping accuracy near 75%; a strict hint
	// (threshold 0.9) never marks it, giving zero coverage.
	p, err := asm.Assemble("t", pathDeadSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	loose := StaticHintResult(tr, a, 0.5, 0.5)
	if loose.Coverage() < 0.9 {
		t.Errorf("loose coverage = %v, want high", loose.Coverage())
	}
	if loose.Accuracy() < 0.70 || loose.Accuracy() > 0.80 {
		t.Errorf("loose accuracy = %v, want ~0.75 (the deadness ratio)", loose.Accuracy())
	}
	strict := StaticHintResult(tr, a, 0.5, 0.9)
	if strict.Predicted != 0 {
		t.Errorf("strict hint predicted %d on a 75%%-dead static", strict.Predicted)
	}
	if strict.Accuracy() != 1 {
		t.Errorf("no predictions should report accuracy 1, got %v", strict.Accuracy())
	}
	// The dynamic CFI predictor beats both horns of the dilemma.
	dyn, err := Evaluate(tr, a, Options{Config: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Coverage() < loose.Coverage()-0.1 || dyn.Accuracy() < loose.Accuracy()+0.1 {
		t.Errorf("dynamic predictor (%v) not clearly better than hints (%v)", dyn, loose)
	}
}

func TestStaticHintDegenerateSplits(t *testing.T) {
	p, err := asm.Assemble("t", "main:\n addi r1, r0, 1\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.5, 1, 2} {
		res := StaticHintResult(tr, a, frac, 0.5)
		if res.TruePos > res.Predicted || res.TruePos > res.Dead {
			t.Errorf("frac %v: inconsistent tallies %+v", frac, res)
		}
	}
}
