package dip

import (
	"repro/internal/deadness"
	"repro/internal/trace"
)

// StaticHintResult evaluates the *compiler-hint* baseline: a profiling run
// observes each static instruction's deadness ratio over a training prefix
// of the trace; instructions whose ratio exceeds the threshold are then
// marked dead unconditionally for the rest of the run — the strongest
// prediction a static (per-instruction, path-oblivious) hint can make,
// idealized with unbounded profile storage.
//
// The evaluation region is the post-training suffix, so the comparison
// against the dynamic predictor is a warmed-predictor comparison. The
// baseline's accuracy is structurally capped by each marked instruction's
// deadness ratio: a static hint cannot distinguish the useful instances of
// a partially dead instruction, which is exactly the gap the paper's
// future-control-flow predictor closes.
func StaticHintResult(t *trace.Trace, a *deadness.Analysis, trainFrac, threshold float64) Result {
	n := t.Len()
	split := int(float64(n) * trainFrac)
	if split < 1 {
		split = 1
	}
	if split > n {
		split = n
	}

	type ratio struct{ dead, dyn int }
	profile := make(map[int32]*ratio)
	for seq := 0; seq < split; seq++ {
		if !a.Candidate[seq] {
			continue
		}
		pc := t.PCAt(seq)
		r := profile[pc]
		if r == nil {
			r = &ratio{}
			profile[pc] = r
		}
		r.dyn++
		if a.Kind[seq].Dead() {
			r.dead++
		}
	}
	hint := make(map[int32]bool, len(profile))
	for pc, r := range profile {
		if r.dyn > 0 && float64(r.dead)/float64(r.dyn) >= threshold {
			hint[pc] = true
		}
	}

	res := Result{Name: "static-hint"}
	for seq := split; seq < n; seq++ {
		if !a.Candidate[seq] {
			continue
		}
		res.Candidates++
		dead := a.Kind[seq].Dead()
		if dead {
			res.Dead++
		}
		if hint[t.PCAt(seq)] {
			res.Predicted++
			if dead {
				res.TruePos++
			}
		}
	}
	return res
}
