package dip

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/bpred"
	"repro/internal/deadness"
	"repro/internal/trace"
)

// Predictor is a trace-level dead-instruction predictor evaluation: one
// flavor of the design space run over a linked, analyzed trace. All four
// flavors the experiments compare — the paper's CFI predictor, the no-CFI
// counter baseline, the oracle-path upper bound, and the profile-guided
// static hint — implement it, so experiments request evaluations
// declaratively through a Spec instead of special-casing each flavor.
//
// Evaluations are deterministic pure functions of (trace, analysis,
// spec): any internal state (the table, the direction predictor) is
// constructed fresh per call.
type Predictor interface {
	Evaluate(t *trace.Trace, a *deadness.Analysis) (Result, error)
}

// Flavor names for Spec.Flavor.
const (
	// FlavorCFI is the paper's predictor: dead-path signatures over
	// predicted future branch directions.
	FlavorCFI = "cfi"
	// FlavorCounter is the no-CFI baseline: the same table driven with
	// empty signatures (PathLen forced to zero), i.e. a per-PC confidence
	// counter.
	FlavorCounter = "counter"
	// FlavorOracle replaces predicted future directions with actual
	// outcomes — the control-flow-information upper bound.
	FlavorOracle = "oracle"
	// FlavorStaticHint is the profile-guided per-instruction hint
	// baseline (see StaticHintResult).
	FlavorStaticHint = "statichint"
	// FlavorSteer is the cluster-steering predictor: a per-PC binary
	// predictor (a bpred direction predictor reinterpreted over
	// ineffectuality outcomes) deciding which instances route to the
	// narrow degraded cluster (see steer).
	FlavorSteer = "steer"
)

// DefaultDirName is the registered name of the direction predictor used
// when Spec.Dir is empty: the pipeline's default 4K-entry gshare (see
// DefaultDir).
const DefaultDirName = "gshare-4k"

// Spec declaratively describes one predictor evaluation. It is plain
// exported data, so it digests canonically (after Canonical normalizes
// the flavor-dependent fields) and serves as an artifact-cache key: two
// specs describing the same computation share one evaluation.
type Spec struct {
	// Flavor selects the evaluation flavor (FlavorCFI & co.).
	Flavor string
	// Config is the table geometry (ignored by FlavorStaticHint).
	Config Config
	// Dir names the direction predictor supplying path signatures (see
	// bpred.NewDirByName); empty selects DefaultDirName. Ignored by
	// FlavorStaticHint.
	Dir string
	// TrainFrac and HintThreshold parameterize FlavorStaticHint: the
	// training prefix fraction and the deadness ratio at which a static
	// instruction is hinted dead.
	TrainFrac     float64
	HintThreshold float64
}

// flavors is the registry mapping Spec.Flavor to a constructor. The spec
// passed in is already canonical.
var flavors = map[string]func(Spec) (Predictor, error){
	FlavorCFI:        newEvalPredictor,
	FlavorCounter:    newEvalPredictor,
	FlavorOracle:     newEvalPredictor,
	FlavorStaticHint: func(s Spec) (Predictor, error) { return staticHint{s.TrainFrac, s.HintThreshold}, nil },
	FlavorSteer:      newSteer,
}

// Flavors lists the registered flavor names, sorted.
func Flavors() []string {
	names := make([]string, 0, len(flavors))
	for name := range flavors {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Canonical normalizes a spec so that equal computations have equal
// digests: the default direction predictor is named explicitly, a
// counter flavor zeroes the (unused) path length, a CFI spec whose
// geometry disables path signatures *is* the counter flavor, and the
// static-hint and steer flavors zero the fields they ignore (steer has no
// table — its only state is the named direction predictor).
func (s Spec) Canonical() Spec {
	switch s.Flavor {
	case FlavorCFI, FlavorCounter, FlavorOracle:
		if s.Dir == "" {
			s.Dir = DefaultDirName
		}
		if s.Flavor == FlavorCounter {
			s.Config.PathLen = 0
		}
		if s.Flavor == FlavorCFI && !s.Config.UseCFI() {
			s.Flavor = FlavorCounter
		}
		s.TrainFrac, s.HintThreshold = 0, 0
	case FlavorStaticHint:
		s.Config, s.Dir = Config{}, ""
	case FlavorSteer:
		if s.Dir == "" {
			s.Dir = DefaultDirName
		}
		s.Config = Config{}
		s.TrainFrac, s.HintThreshold = 0, 0
	}
	return s
}

// Validate reports spec errors: an unregistered flavor, an invalid table
// geometry, an unknown direction predictor, or out-of-range hint
// parameters. Validate normalizes first, so a spec that passes here is
// buildable by New.
func (s Spec) Validate() error {
	s = s.Canonical()
	if _, ok := flavors[s.Flavor]; !ok {
		return fmt.Errorf("dip: unknown predictor flavor %q (have %v)", s.Flavor, Flavors())
	}
	if s.Flavor == FlavorStaticHint {
		if s.TrainFrac <= 0 || s.TrainFrac >= 1 {
			return fmt.Errorf("dip: static-hint training fraction %g outside (0, 1)", s.TrainFrac)
		}
		if s.HintThreshold < 0 || s.HintThreshold > 1 {
			return fmt.Errorf("dip: static-hint threshold %g outside [0, 1]", s.HintThreshold)
		}
		return nil
	}
	if s.Flavor == FlavorSteer {
		// Steer carries no table geometry; the direction predictor is its
		// whole configuration.
		if _, err := bpred.NewDirByName(s.Dir); err != nil {
			return err
		}
		return nil
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if _, err := bpred.NewDirByName(s.Dir); err != nil {
		return err
	}
	return nil
}

// Digest canonically fingerprints the evaluation the spec describes.
func (s Spec) Digest() string {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		panic(fmt.Sprintf("dip: spec not digestible: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Label is the short human-readable form used in verbose progress lines.
func (s Spec) Label() string {
	s = s.Canonical()
	switch s.Flavor {
	case FlavorStaticHint:
		return fmt.Sprintf("statichint-f%g-t%g", s.TrainFrac, s.HintThreshold)
	case FlavorSteer:
		return "steer+" + s.Dir
	case FlavorOracle:
		return s.Config.Name() + "-oracle"
	default:
		label := s.Config.Name()
		if s.Dir != DefaultDirName {
			label += "+" + s.Dir
		}
		return label
	}
}

// New builds the predictor the spec describes. An invalid spec returns
// the Validate error.
func (s Spec) New() (Predictor, error) {
	s = s.Canonical()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return flavors[s.Flavor](s)
}

// evalPredictor drives the table-based flavors (cfi, counter, oracle)
// through Evaluate, constructing a fresh direction predictor per call so
// evaluations stay independent and deterministic.
type evalPredictor struct {
	cfg        Config
	dirName    string
	actualPath bool
}

func newEvalPredictor(s Spec) (Predictor, error) {
	return evalPredictor{cfg: s.Config, dirName: s.Dir, actualPath: s.Flavor == FlavorOracle}, nil
}

func (p evalPredictor) Evaluate(t *trace.Trace, a *deadness.Analysis) (Result, error) {
	dir, err := bpred.NewDirByName(p.dirName)
	if err != nil {
		return Result{}, err
	}
	return Evaluate(t, a, Options{Config: p.cfg, Dir: dir, UseActualPath: p.actualPath})
}

// staticHint adapts StaticHintResult to the Predictor interface.
type staticHint struct {
	trainFrac, threshold float64
}

func (p staticHint) Evaluate(t *trace.Trace, a *deadness.Analysis) (Result, error) {
	return StaticHintResult(t, a, p.trainFrac, p.threshold), nil
}
