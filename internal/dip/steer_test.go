package dip

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/deadness"
	"repro/internal/emu"
)

// steadyIneffSrc loops over one always-trivial op (x+0 with a live
// consumer, so it is ineffectual but NOT dead) and one always-silent
// store, plus effectual work. A per-PC predictor should learn the two
// ineffectual PCs after a brief warmup.
const steadyIneffSrc = `
main:
    addi r1, r0, 200
    addi r2, r0, 0
    addi r4, r0, 4096
    addi r5, r0, 7
    sd   r5, 0(r4)        # first store to fresh memory: not silent (7 != 0)
loop:
    add  r3, r5, r2       # x+0: trivial every iteration
    sd   r5, 0(r4)        # rewrites the same bytes: silent every iteration
    out  r3
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`

func TestSteerLearnsSteadyIneffectuality(t *testing.T) {
	p, err := asm.Assemble("t", steadyIneffSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.Collect(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := deadness.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Flavor: FlavorSteer, Dir: "bimodal-4k"}
	pred, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pred.Evaluate(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	// The positive class is ineffectuality, so Dead must agree with the
	// analysis' own per-class counts.
	sum := a.Summarize(tr, p)
	if want := sum.SilentStores + sum.TrivialOps; res.Dead != want {
		t.Errorf("steer saw %d ineffectual instances, analysis counted %d", res.Dead, want)
	}
	if res.Dead < 300 {
		t.Fatalf("workload produced only %d ineffectual instances", res.Dead)
	}
	if cov := res.Coverage(); cov < 0.9 {
		t.Errorf("steer coverage %.3f, want >= 0.9 on a steady pattern", cov)
	}
	if acc := res.Accuracy(); acc < 0.9 {
		t.Errorf("steer accuracy %.3f, want >= 0.9 on a steady pattern", acc)
	}
	if res.StateBits <= 0 {
		t.Error("steer result carries no state budget")
	}
}

// TestSteerSpecCanonicalization pins the digest behaviour the artifact
// cache keys on: table geometry is irrelevant to a steer spec, the
// direction predictor is not, and steer never collides with the
// table-based flavors.
func TestSteerSpecCanonicalization(t *testing.T) {
	base := Spec{Flavor: FlavorSteer}
	withCfg := Spec{Flavor: FlavorSteer, Config: DefaultConfig(), TrainFrac: 0.5}
	if base.Digest() != withCfg.Digest() {
		t.Error("steer digest depends on the ignored table geometry")
	}
	otherDir := Spec{Flavor: FlavorSteer, Dir: "bimodal-4k"}
	if base.Digest() == otherDir.Digest() {
		t.Error("steer digest ignores the direction predictor")
	}
	cfi := Spec{Flavor: FlavorCFI, Config: DefaultConfig()}
	if base.Digest() == cfi.Digest() {
		t.Error("steer digest collides with cfi")
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default steer spec invalid: %v", err)
	}
	if err := (Spec{Flavor: FlavorSteer, Dir: "no-such-dir"}).Validate(); err == nil {
		t.Error("steer spec with unknown direction predictor accepted")
	}
}
