package dip

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t testing.TB, cfg Config) *Table {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultConfigValidAndSmall(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if kb := cfg.StateKB(); kb >= 5 {
		t.Errorf("default config is %.2f KB, want < 5 KB", kb)
	}
	if !cfg.UseCFI() {
		t.Error("default config should use CFI")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LogSets: -1, Ways: 1, TagBits: 4, SigSlots: 1, CounterBits: 2, Threshold: 1},
		{LogSets: 4, Ways: 0, TagBits: 4, SigSlots: 1, CounterBits: 2, Threshold: 1},
		{LogSets: 4, Ways: 1, TagBits: 0, SigSlots: 1, CounterBits: 2, Threshold: 1},
		{LogSets: 4, Ways: 1, TagBits: 4, PathLen: 17, SigSlots: 1, CounterBits: 2, Threshold: 1},
		{LogSets: 4, Ways: 1, TagBits: 4, SigSlots: 0, CounterBits: 2, Threshold: 1},
		{LogSets: 4, Ways: 1, TagBits: 4, SigSlots: 1, CounterBits: 0, Threshold: 1},
		{LogSets: 4, Ways: 1, TagBits: 4, SigSlots: 1, CounterBits: 2, Threshold: 4},
		{LogSets: 4, Ways: 1, TagBits: 4, SigSlots: 1, CounterBits: 2, Threshold: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestStateBitsFormula(t *testing.T) {
	cfg := Config{LogSets: 3, Ways: 2, TagBits: 8, PathLen: 8,
		SigSlots: 2, CounterBits: 2, Threshold: 2}
	// Per slot: 1+8+2 = 11. Per entry: 1+8+1(lru)+2*11 = 32. 16 entries.
	if got := cfg.StateBits(); got != 16*32 {
		t.Errorf("StateBits = %d, want 512", got)
	}
}

func TestCounterVariantName(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathLen = 0
	if cfg.UseCFI() {
		t.Error("PathLen 0 should disable CFI")
	}
	if !strings.Contains(cfg.Name(), "counter") {
		t.Errorf("name %q should say counter", cfg.Name())
	}
}

func TestLearnsDeadPC(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	const pc, sig = 100, 0b1010
	if p.Predict(pc, sig) {
		t.Fatal("cold predictor predicted dead")
	}
	p.Update(pc, sig, true)
	if p.Predict(pc, sig) {
		t.Fatal("one observation reached threshold 2")
	}
	p.Update(pc, sig, true)
	if !p.Predict(pc, sig) {
		t.Fatal("two dead observations should predict dead")
	}
}

func TestPathSignatureSeparatesInstances(t *testing.T) {
	// Same PC: dead on path A, live on path B. CFI keeps them apart.
	p := mustNew(t, DefaultConfig())
	const pc = 7
	const deadPath, livePath = 0b0001, 0b0000
	for i := 0; i < 4; i++ {
		p.Update(pc, deadPath, true)
		p.Update(pc, livePath, false)
	}
	if !p.Predict(pc, deadPath) {
		t.Error("dead path not predicted dead")
	}
	if p.Predict(pc, livePath) {
		t.Error("live path predicted dead")
	}
}

func TestNoCFICannotSeparatePaths(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathLen = 0
	p := mustNew(t, cfg)
	const pc = 7
	// Alternating outcomes keep the single counter oscillating below a
	// confident dead prediction on at least one phase; crucially the two
	// "paths" are indistinguishable (signature masked to 0).
	for i := 0; i < 4; i++ {
		p.Update(pc, 0b0001, true)
		p.Update(pc, 0b0000, false)
	}
	a := p.Predict(pc, 0b0001)
	b := p.Predict(pc, 0b0000)
	if a != b {
		t.Error("no-CFI predictor distinguished paths it cannot see")
	}
}

func TestLiveOutcomeDecaysConfidence(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	const pc, sig = 3, 0b11
	for i := 0; i < 4; i++ {
		p.Update(pc, sig, true)
	}
	if !p.Predict(pc, sig) {
		t.Fatal("not learned")
	}
	for i := 0; i < 3; i++ {
		p.Update(pc, sig, false)
	}
	if p.Predict(pc, sig) {
		t.Error("confidence did not decay after live outcomes")
	}
}

func TestLiveOnlyPCAllocatesNothing(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	for pc := 0; pc < 100; pc++ {
		p.Update(pc, 0, false)
	}
	if p.Allocations != 0 {
		t.Errorf("allocations = %d, want 0 for live-only updates", p.Allocations)
	}
}

func TestSlotReplacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SigSlots = 2
	p := mustNew(t, cfg)
	const pc = 11
	// Fill both slots with strong signatures.
	for i := 0; i < 3; i++ {
		p.Update(pc, 1, true)
		p.Update(pc, 2, true)
	}
	// Weaken signature 2, then introduce signature 3: slot 2 is stolen.
	p.Update(pc, 2, false)
	p.Update(pc, 2, false)
	p.Update(pc, 2, false)
	p.Update(pc, 3, true)
	p.Update(pc, 3, true)
	if !p.Predict(pc, 1) {
		t.Error("strong signature 1 lost")
	}
	if !p.Predict(pc, 3) {
		t.Error("new signature 3 not learned")
	}
	if p.Predict(pc, 2) {
		t.Error("evicted signature 2 still predicted dead")
	}
}

func TestEntryEvictionLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogSets = 0 // single set
	cfg.Ways = 2
	p := mustNew(t, cfg)
	train := func(pc int) {
		p.Update(pc, 0, true)
		p.Update(pc, 0, true)
	}
	train(1)
	train(2)
	_ = p.Predict(1, 0) // touch 1, making 2 the LRU victim
	train(3)            // evicts 2
	if !p.Predict(1, 0) {
		t.Error("recently used entry evicted")
	}
	if p.Predict(2, 0) {
		t.Error("LRU entry survived eviction")
	}
	if !p.Predict(3, 0) {
		t.Error("new entry not present")
	}
	if p.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", p.Evictions)
	}
}

func TestReset(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.Update(5, 0, true)
	p.Update(5, 0, true)
	if !p.Predict(5, 0) {
		t.Fatal("not learned")
	}
	p.Reset()
	if p.Predict(5, 0) {
		t.Error("state survived Reset")
	}
	if p.Allocations != 0 || p.Evictions != 0 {
		t.Error("counters survived Reset")
	}
}

func TestSignatureMasking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathLen = 4
	p := mustNew(t, cfg)
	// Bits above PathLen must be ignored.
	p.Update(9, 0xfff3, true)
	p.Update(9, 0x0003, true)
	if !p.Predict(9, 0xa3) {
		t.Error("signature masking broken: high bits should be ignored")
	}
}

func TestPredictIsSideEffectFreeOnMisses(t *testing.T) {
	f := func(pc uint16, sig uint16) bool {
		p := mustNew(t, DefaultConfig())
		before := p.Allocations
		_ = p.Predict(int(pc), sig)
		_ = p.Predict(int(pc), sig)
		return p.Allocations == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	p, err := New(Config{})
	if p != nil || err == nil {
		t.Fatalf("New(Config{}) = %v, %v; want nil, error", p, err)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Errorf("error %v is not a *ConfigError", err)
	}
}
